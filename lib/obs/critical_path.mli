(** Critical-path reconstruction and bottleneck attribution from trace
    JSON alone.

    The engine model records, for every span, the dependency edges
    (lane program order, engine queue order, commit/wait-group
    retirement, fences, [await_engine], [wait_all] joins,
    overlap-section boundaries) that explain its issue time, and the
    Chrome export carries them as flow events together with exact
    block-local cycle endpoints ([args.c0]/[args.c1]). This module
    parses those bytes back, re-runs the forward pass over the DAG and
    insists the recomputed issue times match the recorded ones
    {e bitwise} — the reconstruction contract — then extracts the
    critical path of every block, per-span slack, and a blame table
    attributing cycles of the end-to-end makespan to engines, ops and
    queues alongside the launch-latency, SyncAll and HBM-bandwidth
    terms of the launch composition.

    Pod traces (schema ["ascend-pod-trace-1"]) carry no flow events;
    their DAG is structural — per-track span order plus link-transfer
    arrival edges — and is profiled at kernel/link granularity with
    microsecond units ([clock_hz = 1e6]). *)

type span = {
  x_sid : int;  (** Trace-unique span id (issue order within block). *)
  x_binst : int;  (** Block occurrence the span belongs to. *)
  x_pid : int;  (** Trace process: core + 1. *)
  x_tid : int;  (** Trace track: engine index. *)
  x_track : string;  (** Engine name from thread_name metadata. *)
  x_queue : string;  (** Queue class (event [cat]): MTE2, V, M, ... *)
  x_op : string;  (** Op label (event name). *)
  x_c0 : float;  (** Exact block-local issue cycle. *)
  x_c1 : float;  (** Exact block-local completion cycle. *)
  x_bytes : int;  (** Bytes moved (data ops), else 0. *)
  x_ts : float;  (** File timestamp (us), for phase attribution. *)
}

type edge = { ed_src : int; ed_dst : int; ed_kind : string }

type block = {
  bk_binst : int;
  bk_core : int;
  bk_spans : span array;  (** Ascending sid — a topological order. *)
  bk_edges : edge array;
  bk_cycles : float;  (** Reconstructed critical-path length; equals the
                          engine-model block makespan bitwise. *)
  bk_cp : int list;  (** Sids on the critical path, in time order. The
                         path is temporally contiguous from cycle 0 to
                         the makespan. *)
  bk_slack : float array;  (** Per-span slack (cycles each span could
                               slip without growing the makespan),
                               aligned with [bk_spans]. *)
}

type phase = {
  ph_launch : string;
  ph_index : int;
  ph_seconds : float;
  ph_compute_seconds : float;
  ph_bandwidth_seconds : float;
  ph_bound : string;  (** ["compute"] or ["bandwidth"]. *)
  ph_gm_bytes : int;
  ph_blocks : block list;
  ph_cores : (int * float) list;
      (** Core -> serialised block-chain cycles, ascending core. *)
  ph_bounding_core : int;  (** Slowest core; [-1] if no blocks. *)
}

type launch = {
  ln_name : string;
  ln_cycles : float;
  ln_latency_cycles : float;
  ln_sync_cycles : float;
  ln_phases : phase list;
}

type t = {
  schema : string;
  clock_hz : float;
  total_cycles : float;
  launches : launch list;
  blame : (string * float) list;
      (** Resource -> cycles of makespan, descending. Engine tracks for
          compute-bound phases' critical paths, plus ["HBM/L2
          bandwidth"], ["launch latency"], ["sync_all"], ["phase
          overhead"] and ["launch overhead"] aggregates. *)
  op_blame : (string * float) list;
  queue_blame : (string * float) list;
  spans_total : int;
  edges_total : int;
  cp_spans : int;
}

val of_json : Jsonw.t -> (t, string) result
(** Profile a parsed trace document. Dispatches on
    [otherData.schema]; fails if the trace is not a simulator trace or
    if any span's recomputed issue time differs bitwise from the
    recorded one (a corrupted or hand-edited trace). *)

val report : t -> Jsonw.t
(** Deterministic profile document (schema ["ascend-profile-1"]) — the
    bytes of [Jsonw.to_string (report t)] are identical for traces of
    the same kernel at any [--domains] setting. *)

val pp : Format.formatter -> t -> unit
(** Human-readable report: blame table, top critical-path ops, and
    per-phase bounding cores. *)
