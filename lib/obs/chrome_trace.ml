module Trace = Ascend.Trace

let arg_to_json = function
  | Trace.I i -> Jsonw.Int i
  | Trace.F f -> Jsonw.Float f
  | Trace.S s -> Jsonw.String s
  | Trace.B b -> Jsonw.Bool b

let json tr =
  let placed = Trace.assemble tr in
  let clock = Trace.clock_hz tr in
  let us cycles = cycles /. clock *. 1e6 in
  (* Metadata: name every process and track we are about to emit, in
     (pid, tid) order so the byte output is stable. *)
  let procs = Hashtbl.create 8 in
  let tracks = Hashtbl.create 64 in
  List.iter
    (fun (p : Trace.placed) ->
      if not (Hashtbl.mem procs p.Trace.p_pid) then
        Hashtbl.add procs p.Trace.p_pid ();
      let key = (p.Trace.p_pid, p.Trace.p_tid) in
      if not (Hashtbl.mem tracks key) then
        Hashtbl.add tracks key p.Trace.p_tname)
    placed;
  let pids = List.sort Int.compare (Hashtbl.fold (fun k () acc -> k :: acc) procs []) in
  let track_list =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tracks [])
  in
  let meta =
    List.concat_map
      (fun pid ->
        let name = if pid = 0 then "device" else Printf.sprintf "core %d" (pid - 1) in
        [
          Jsonw.Obj
            [
              ("name", Jsonw.String "process_name");
              ("ph", Jsonw.String "M");
              ("pid", Jsonw.Int pid);
              ("args", Jsonw.Obj [ ("name", Jsonw.String name) ]);
            ];
          Jsonw.Obj
            [
              ("name", Jsonw.String "process_sort_index");
              ("ph", Jsonw.String "M");
              ("pid", Jsonw.Int pid);
              ("args", Jsonw.Obj [ ("sort_index", Jsonw.Int pid) ]);
            ];
        ])
      pids
    @ List.concat_map
        (fun ((pid, tid), tname) ->
          [
            Jsonw.Obj
              [
                ("name", Jsonw.String "thread_name");
                ("ph", Jsonw.String "M");
                ("pid", Jsonw.Int pid);
                ("tid", Jsonw.Int tid);
                ("args", Jsonw.Obj [ ("name", Jsonw.String tname) ]);
              ];
            Jsonw.Obj
              [
                ("name", Jsonw.String "thread_sort_index");
                ("ph", Jsonw.String "M");
                ("pid", Jsonw.Int pid);
                ("tid", Jsonw.Int tid);
                ("args", Jsonw.Obj [ ("sort_index", Jsonw.Int tid) ]);
              ];
          ])
        track_list
  in
  let events =
    List.map
      (fun (p : Trace.placed) ->
        let args =
          match p.Trace.p_args with
          | [] -> []
          | args ->
              [
                ( "args",
                  Jsonw.Obj (List.map (fun (k, v) -> (k, arg_to_json v)) args)
                );
              ]
        in
        match p.Trace.p_dur with
        | Some dur ->
            Jsonw.Obj
              ([
                 ("name", Jsonw.String p.Trace.p_name);
                 ("cat", Jsonw.String p.Trace.p_cat);
                 ("ph", Jsonw.String "X");
                 ("pid", Jsonw.Int p.Trace.p_pid);
                 ("tid", Jsonw.Int p.Trace.p_tid);
                 ("ts", Jsonw.Float (us p.Trace.p_ts));
                 ("dur", Jsonw.Float (us dur));
               ]
              @ args)
        | None when
            p.Trace.p_cat = "flow_out" || p.Trace.p_cat = "flow_in" ->
            (* Dependency edges ride the Perfetto flow-event pair: ph
               "s" at the source span's end, ph "f" (binding to the
               enclosing slice's end) at the target's start, correlated
               by the numeric id arg. *)
            let flow_id =
              match List.assoc_opt "id" p.Trace.p_args with
              | Some (Trace.I i) -> i
              | _ -> 0
            in
            Jsonw.Obj
              ([
                 ("name", Jsonw.String p.Trace.p_name);
                 ("cat", Jsonw.String "flow");
                 ( "ph",
                   Jsonw.String
                     (if p.Trace.p_cat = "flow_out" then "s" else "f") );
               ]
              @ (if p.Trace.p_cat = "flow_in" then
                   [ ("bp", Jsonw.String "e") ]
                 else [])
              @ [
                  ("id", Jsonw.Int flow_id);
                  ("pid", Jsonw.Int p.Trace.p_pid);
                  ("tid", Jsonw.Int p.Trace.p_tid);
                  ("ts", Jsonw.Float (us p.Trace.p_ts));
                ]
              @ args)
        | None ->
            Jsonw.Obj
              ([
                 ("name", Jsonw.String p.Trace.p_name);
                 ("cat", Jsonw.String p.Trace.p_cat);
                 ("ph", Jsonw.String "i");
                 ("s", Jsonw.String "p");
                 ("pid", Jsonw.Int p.Trace.p_pid);
                 ("tid", Jsonw.Int p.Trace.p_tid);
                 ("ts", Jsonw.Float (us p.Trace.p_ts));
               ]
              @ args))
      placed
  in
  Jsonw.Obj
    [
      ("traceEvents", Jsonw.List (meta @ events));
      ("displayTimeUnit", Jsonw.String "us");
      ( "otherData",
        Jsonw.Obj
          [
            ("generator", Jsonw.String "ascend-scan-sim");
            ("schema", Jsonw.String "ascend-trace-1");
            ("clock_hz", Jsonw.Float clock);
            ("spans", Jsonw.Int (Trace.span_count tr));
            ("instants", Jsonw.Int (Trace.mark_count tr));
            ("edges", Jsonw.Int (Trace.edge_count tr));
            ("dropped", Jsonw.Int (Trace.dropped tr));
          ] );
    ]

let to_string tr = Jsonw.to_string (json tr)

type counts = {
  events : int;
  spans : int;
  instants : int;
  flows : int;  (** Matched ph "s"/"f" pairs (dependency edges). *)
  processes : int;
}

let validate doc =
  let ( let* ) r f = Result.bind r f in
  let* events =
    match Option.bind (Jsonw.member "traceEvents" doc) Jsonw.to_list_opt with
    | Some l -> Ok l
    | None -> Error "missing traceEvents array"
  in
  (* Complete events sharing a track form a stack in the Chrome trace
     model: a span may start inside the previous one only if it also
     ends inside it (proper nesting — e.g. phase spans under their
     launch span on the device timeline). Partial overlap is the
     corruption this check exists to catch. *)
  let module Track = struct
    type t = { mutable stack : float list; mutable last_ts : float }
  end in
  let tracks : (int * int, Track.t) Hashtbl.t = Hashtbl.create 64 in
  let procs = Hashtbl.create 8 in
  let spans = ref 0 and instants = ref 0 in
  (* Flow pairing: every "s" must meet exactly one "f" with the same
     id (and vice versa). [flow_open] maps id -> how many "s" seen
     minus "f" seen; all entries must return to 0. *)
  let flow_open : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let flows = ref 0 in
  (* Printing ts/dur at microsecond scale rounds in the last ulp; allow
     a nanosecond of slack when checking track monotonicity. *)
  let slack = 1e-3 in
  let rec go i = function
    | [] -> Ok ()
    | ev :: rest ->
        let err fmt =
          Printf.ksprintf (fun m -> Error (Printf.sprintf "event %d: %s" i m)) fmt
        in
        let num k = Option.bind (Jsonw.member k ev) Jsonw.number_opt in
        let* () =
          match Option.bind (Jsonw.member "ph" ev) Jsonw.string_opt with
          | Some "M" -> Ok ()
          | Some (("s" | "f") as ph) -> (
              match
                ( Option.bind (Jsonw.member "pid" ev) Jsonw.int_opt,
                  Option.bind (Jsonw.member "tid" ev) Jsonw.int_opt,
                  num "ts",
                  Option.bind (Jsonw.member "id" ev) Jsonw.int_opt )
              with
              | Some _, Some _, Some ts, Some id ->
                  if ts < -.slack then err "negative flow ts %g" ts
                  else begin
                    let d = if ph = "s" then 1 else -1 in
                    let open_n =
                      d + Option.value ~default:0 (Hashtbl.find_opt flow_open id)
                    in
                    if open_n < -1 || open_n > 1 then
                      err "flow id %d has repeated %S events" id ph
                    else begin
                      Hashtbl.replace flow_open id open_n;
                      if ph = "f" then incr flows;
                      Ok ()
                    end
                  end
              | None, _, _, _ -> err "flow missing pid"
              | _, None, _, _ -> err "flow missing tid"
              | _, _, None, _ -> err "flow missing ts"
              | _, _, _, None -> err "flow missing id")
          | Some (("X" | "i") as ph) -> (
              match
                ( Option.bind (Jsonw.member "pid" ev) Jsonw.int_opt,
                  Option.bind (Jsonw.member "tid" ev) Jsonw.int_opt,
                  num "ts",
                  Option.bind (Jsonw.member "name" ev) Jsonw.string_opt )
              with
              | Some pid, Some tid, Some ts, Some _ ->
                  if not (Hashtbl.mem procs pid) then Hashtbl.add procs pid ();
                  if ts < -.slack then err "negative ts %g" ts
                  else if ph = "i" then begin
                    incr instants;
                    Ok ()
                  end
                  else begin
                    match num "dur" with
                    | None -> err "span without dur"
                    | Some dur when dur < 0.0 -> err "negative dur %g" dur
                    | Some dur ->
                        incr spans;
                        let key = (pid, tid) in
                        let tr =
                          match Hashtbl.find_opt tracks key with
                          | Some tr -> tr
                          | None ->
                              let tr =
                                { Track.stack = []; last_ts = neg_infinity }
                              in
                              Hashtbl.add tracks key tr;
                              tr
                        in
                        if ts < tr.Track.last_ts -. slack then
                          err
                            "track (%d,%d) not sorted: span at ts %g after \
                             one at ts %g"
                            pid tid ts tr.Track.last_ts
                        else begin
                          tr.Track.last_ts <- ts;
                          (* Close every span that ended before this one
                             starts. *)
                          let rec close = function
                            | e :: rest when e <= ts +. slack -> close rest
                            | stack -> stack
                          in
                          tr.Track.stack <- close tr.Track.stack;
                          match tr.Track.stack with
                          | enclosing :: _ when ts +. dur > enclosing +. slack
                            ->
                              err
                                "track (%d,%d) spans partially overlap: \
                                 [%g,%g] crosses enclosing end %g"
                                pid tid ts (ts +. dur) enclosing
                          | stack ->
                              tr.Track.stack <- (ts +. dur) :: stack;
                              Ok ()
                        end
                  end
              | None, _, _, _ -> err "missing pid"
              | _, None, _, _ -> err "missing tid"
              | _, _, None, _ -> err "missing ts"
              | _, _, _, None -> err "missing name")
          | Some ph -> err "unknown ph %S" ph
          | None -> err "missing ph"
        in
        go (i + 1) rest
  in
  let* () = go 0 events in
  let* () =
    Hashtbl.fold
      (fun id open_n acc ->
        Result.bind acc (fun () ->
            if open_n <> 0 then
              Error
                (Printf.sprintf "flow id %d is unmatched (%s without %s)" id
                   (if open_n > 0 then "\"s\"" else "\"f\"")
                   (if open_n > 0 then "\"f\"" else "\"s\""))
            else Ok ()))
      flow_open (Ok ())
  in
  Ok
    {
      events = List.length events;
      spans = !spans;
      instants = !instants;
      flows = !flows;
      processes = Hashtbl.length procs;
    }
