module Stats = Ascend.Stats
module Trace = Ascend.Trace

type series =
  | Counter of float ref
  | Gauge of float ref
  | Histogram of {
      bounds : float array;
      counts : int array; (* length = Array.length bounds + 1 (+Inf) *)
      mutable sum : float;
      mutable count : int;
    }

type metric = {
  help : string;
  mutable series : ((string * string) list * series) list; (* insertion order *)
}

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* reversed registration order *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let sort_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let metric t ~help name =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
      let m = { help; series = [] } in
      Hashtbl.add t.tbl name m;
      t.order <- name :: t.order;
      m

let series m ~labels ~make =
  match List.assoc_opt labels m.series with
  | Some s -> s
  | None ->
      let s = make () in
      m.series <- m.series @ [ (labels, s) ];
      s

let inc t ?(labels = []) ?(help = "") name v =
  let labels = sort_labels labels in
  let m = metric t ~help name in
  match series m ~labels ~make:(fun () -> Counter (ref 0.0)) with
  | Counter r -> r := !r +. Float.max 0.0 v
  | Gauge _ | Histogram _ ->
      invalid_arg (Printf.sprintf "Metrics.inc: %s is not a counter" name)

let set t ?(labels = []) ?(help = "") name v =
  let labels = sort_labels labels in
  let m = metric t ~help name in
  match series m ~labels ~make:(fun () -> Gauge (ref v)) with
  | Gauge r -> r := v
  | Counter _ | Histogram _ ->
      invalid_arg (Printf.sprintf "Metrics.set: %s is not a gauge" name)

let observe t ?(labels = []) ?(help = "") ~buckets name v =
  let labels = sort_labels labels in
  let m = metric t ~help name in
  match
    series m ~labels ~make:(fun () ->
        Histogram
          {
            bounds = buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            sum = 0.0;
            count = 0;
          })
  with
  | Counter _ | Gauge _ ->
      invalid_arg (Printf.sprintf "Metrics.observe: %s is not a histogram" name)
  | Histogram h ->
      let n = Array.length h.bounds in
      let i = ref 0 in
      while !i < n && v > h.bounds.(!i) do
        incr i
      done;
      h.counts.(!i) <- h.counts.(!i) + 1;
      h.sum <- h.sum +. v;
      h.count <- h.count + 1

(* Bucket ladders: phase durations span sub-microsecond reductions to
   millisecond sweeps; transfer sizes span a cache line to a UB tile. *)
let seconds_buckets =
  [| 1e-7; 3e-7; 1e-6; 3e-6; 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2 |]

let bytes_buckets =
  [| 64.; 256.; 1024.; 4096.; 16384.; 65536.; 262144.; 1048576.; 4194304.;
     16777216. |]

let observe_stats t (st : Stats.t) =
  inc t "ascend_launches_total" ~help:"Device launches folded into the stats"
    (float_of_int st.Stats.launches);
  inc t "ascend_simulated_seconds_total"
    ~help:"End-to-end simulated device time" st.Stats.seconds;
  inc t "ascend_host_seconds_total"
    ~help:"Host wall-clock spent simulating" st.Stats.host_seconds;
  inc t "ascend_gm_bytes_total" ~help:"Global-memory traffic"
    ~labels:[ ("dir", "read") ]
    (float_of_int st.Stats.gm_read_bytes);
  inc t "ascend_gm_bytes_total" ~help:"Global-memory traffic"
    ~labels:[ ("dir", "write") ]
    (float_of_int st.Stats.gm_write_bytes);
  List.iter
    (fun (op, c) ->
      inc t "ascend_op_issues_total" ~help:"Instructions issued, by op"
        ~labels:[ ("op", op) ] (float_of_int c))
    st.Stats.op_counts;
  List.iter
    (fun (e, cycles) ->
      if cycles > 0.0 then
        inc t "ascend_engine_busy_cycles_total"
          ~help:"Busy cycles per engine, summed over blocks"
          ~labels:[ ("engine", e) ] cycles)
    st.Stats.engine_busy;
  inc t "ascend_faults_injected_total" ~help:"Faults injected"
    (float_of_int (List.length st.Stats.faults));
  inc t "ascend_retries_total" ~help:"Resilient-runner re-executions"
    (float_of_int st.Stats.retries);
  inc t "ascend_degraded_total" ~help:"Resilient-runner fallback switches"
    (float_of_int st.Stats.degraded);
  List.iter
    (fun (p : Stats.phase) ->
      inc t "ascend_phases_total" ~help:"Launch phases executed"
        ~labels:
          [ ("bound", if p.Stats.bandwidth_bound then "bandwidth" else "compute") ]
        1.0;
      observe t "ascend_phase_seconds" ~help:"Per-phase simulated duration"
        ~buckets:seconds_buckets p.Stats.seconds;
      observe t "ascend_phase_gm_bytes" ~help:"Per-phase GM traffic"
        ~buckets:bytes_buckets
        (float_of_int p.Stats.gm_bytes))
    st.Stats.phases

(* Resilience counters: the retry/degrade/fallback story of the
   resilient runners and the degradation controller, as monotonic
   Prometheus series. *)
let observe_report t (r : _ Runtime.Resilient.report) =
  inc t "resilient_attempts_total" ~help:"Kernel executions incl. fallback"
    (float_of_int r.Runtime.Resilient.attempts);
  inc t "resilient_detections_total" ~help:"Validation failures observed"
    (float_of_int r.Runtime.Resilient.detections);
  inc t "resilient_retries_total" ~help:"Re-executions after a detection"
    (float_of_int (max 0 (r.Runtime.Resilient.attempts - 1)));
  inc t "resilient_fallbacks_total" ~help:"Fallback-path switches"
    (if r.Runtime.Resilient.degraded then 1.0 else 0.0);
  inc t "resilient_backoff_seconds_total"
    ~help:"Simulated retry backoff charged"
    r.Runtime.Resilient.backoff_seconds;
  inc t "resilient_runs_total" ~help:"Resilient runs, by outcome"
    ~labels:[ ("ok", if r.Runtime.Resilient.ok then "true" else "false") ]
    1.0

let observe_batched_report t (r : Runtime.Resilient.batched_report) =
  let open Runtime.Resilient in
  inc t "resilient_group_attempts_total"
    ~help:"Batched-scan group launches incl. replays"
    (float_of_int r.group_attempts);
  inc t "resilient_replayed_rows_total"
    ~help:"Rows re-executed after a failed group attempt"
    (float_of_int r.replayed_rows);
  inc t "resilient_restored_rows_total"
    ~help:"Rows recovered from the checkpoint store on resume"
    (float_of_int r.restored_rows);
  inc t "resilient_shed_rows_total"
    ~help:"Rows abandoned by the brownout floor"
    (float_of_int r.shed_rows);
  inc t "resilient_committed_rows_total" ~help:"Rows validated and committed"
    (float_of_int (Runtime.Checkpoint.done_count r.checkpoint));
  inc t "resilient_backoff_seconds_total"
    ~help:"Simulated retry backoff charged" r.backoff_seconds;
  inc t "resilient_runs_total" ~help:"Resilient runs, by outcome"
    ~labels:[ ("ok", if r.bok then "true" else "false") ]
    1.0

let observe_decision t (d : Runtime.Degrade_ctl.decision) =
  inc t "degrade_ctl_decisions_total"
    ~help:"Degradation-controller transitions, by resulting state and level"
    ~labels:
      [
        ("state", Runtime.Degrade_ctl.state_to_string d.Runtime.Degrade_ctl.d_state);
        ("level", Runtime.Degrade_ctl.level_to_string d.Runtime.Degrade_ctl.d_level);
      ]
    1.0;
  if d.Runtime.Degrade_ctl.d_cooldown_s > 0.0 then
    inc t "degrade_ctl_cooldown_seconds_total"
      ~help:"Simulated breaker cooldown charged"
      d.Runtime.Degrade_ctl.d_cooldown_s

let observe_ctl t ctl =
  List.iter (observe_decision t) (Runtime.Degrade_ctl.decisions ctl);
  inc t "degrade_ctl_opens_total" ~help:"Times the breaker opened"
    (float_of_int (Runtime.Degrade_ctl.opens ctl))

let observe_trace t tr =
  List.iter
    (fun (l : Trace.launch_rec) ->
      List.iter
        (fun (p : Trace.phase_rec) ->
          List.iter
            (fun (b : Trace.block_rec) ->
              List.iter
                (fun (s : Trace.span) ->
                  inc t "ascend_trace_spans_total"
                    ~help:"Recorded instruction spans, by issue queue"
                    ~labels:[ ("queue", s.Trace.sp_queue) ] 1.0;
                  if s.Trace.sp_bytes > 0 then
                    observe t "ascend_transfer_bytes"
                      ~help:"MTE transfer payload sizes (tile sizes)"
                      ~buckets:bytes_buckets
                      (float_of_int s.Trace.sp_bytes))
                b.Trace.b_spans;
              List.iter
                (fun (m : Trace.mark) ->
                  inc t "ascend_trace_instants_total"
                    ~help:"Recorded instant events, by kind"
                    ~labels:[ ("kind", Trace.kind_to_string m.Trace.mk_kind) ]
                    1.0)
                b.Trace.b_marks)
            p.Trace.ph_blocks)
        l.Trace.ln_phases)
    (Trace.launches tr);
  if Trace.dropped tr > 0 then
    inc t "ascend_trace_dropped_total" ~help:"Spans dropped by the cap"
      (float_of_int (Trace.dropped tr))

(* Critical-path profile gauges: makespan blame per resource and the
   per-phase MTE/compute overlap ratio, recomputed from each phase's
   block spans with the interval primitives of {!Trace_summary}. *)
let observe_profile t (p : Critical_path.t) =
  let module Cp = Critical_path in
  set t "ascend_cp_total_cycles"
    ~help:"End-to-end makespan of the profiled trace (simulated cycles)"
    p.Cp.total_cycles;
  List.iter
    (fun (resource, cycles) ->
      set t "ascend_cp_blame_cycles"
        ~help:"Critical-path cycles of the makespan attributed to each resource"
        ~labels:[ ("resource", resource) ]
        cycles)
    p.Cp.blame;
  List.iteri
    (fun li (l : Cp.launch) ->
      List.iter
        (fun (ph : Cp.phase) ->
          (* Busy intervals are block-local; overlap is meaningful
             within a block, so intersections and denominators
             accumulate per block before the ratio is taken. *)
          let inter = ref 0.0 and denom = ref 0.0 in
          List.iter
            (fun (b : Cp.block) ->
              let miv = ref [] and civ = ref [] in
              Array.iter
                (fun (s : Cp.span) ->
                  if s.Cp.x_c1 > s.Cp.x_c0 then
                    let iv = (s.Cp.x_c0, s.Cp.x_c1) in
                    match s.Cp.x_queue with
                    | "MTE2" | "MTE3" -> miv := iv :: !miv
                    | _ -> civ := iv :: !civ)
                b.Cp.bk_spans;
              let m = Trace_summary.union_length !miv
              and c = Trace_summary.union_length !civ in
              denom := !denom +. Float.min m c;
              inter := !inter +. Trace_summary.intersection_length !miv !civ)
            ph.Cp.ph_blocks;
          let ratio = if !denom <= 0.0 then 0.0 else !inter /. !denom in
          set t "ascend_phase_mte_compute_overlap_ratio"
            ~help:
              "Per-phase MTE/compute overlap: busy-interval intersection \
               over the smaller busy union (0 = serial, 1 = data movement \
               fully hidden)"
            ~labels:
              [
                ("launch", l.Cp.ln_name);
                ("seq", string_of_int li);
                ("phase", string_of_int ph.Cp.ph_index);
              ]
            ratio)
        l.Cp.ln_phases)
    p.Cp.launches

let value_str = Jsonw.float_to_string

let labels_str labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let pp_prometheus ppf t =
  List.iter
    (fun name ->
      let m = Hashtbl.find t.tbl name in
      if m.help <> "" then Format.fprintf ppf "# HELP %s %s@." name m.help;
      let kind =
        match m.series with
        | (_, Counter _) :: _ -> "counter"
        | (_, Gauge _) :: _ -> "gauge"
        | (_, Histogram _) :: _ -> "histogram"
        | [] -> "untyped"
      in
      Format.fprintf ppf "# TYPE %s %s@." name kind;
      List.iter
        (fun (labels, s) ->
          match s with
          | Counter r | Gauge r ->
              Format.fprintf ppf "%s%s %s@." name (labels_str labels)
                (value_str !r)
          | Histogram h ->
              let cum = ref 0 in
              Array.iteri
                (fun i c ->
                  cum := !cum + c;
                  let le =
                    if i < Array.length h.bounds then value_str h.bounds.(i)
                    else "+Inf"
                  in
                  Format.fprintf ppf "%s_bucket%s %d@." name
                    (labels_str (labels @ [ ("le", le) ]))
                    !cum)
                h.counts;
              Format.fprintf ppf "%s_sum%s %s@." name (labels_str labels)
                (value_str h.sum);
              Format.fprintf ppf "%s_count%s %d@." name (labels_str labels)
                h.count)
        m.series)
    (List.rev t.order)
