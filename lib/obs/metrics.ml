module Stats = Ascend.Stats
module Trace = Ascend.Trace

type series =
  | Counter of float ref
  | Histogram of {
      bounds : float array;
      counts : int array; (* length = Array.length bounds + 1 (+Inf) *)
      mutable sum : float;
      mutable count : int;
    }

type metric = {
  help : string;
  mutable series : ((string * string) list * series) list; (* insertion order *)
}

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list; (* reversed registration order *)
}

let create () = { tbl = Hashtbl.create 32; order = [] }

let sort_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

let metric t ~help name =
  match Hashtbl.find_opt t.tbl name with
  | Some m -> m
  | None ->
      let m = { help; series = [] } in
      Hashtbl.add t.tbl name m;
      t.order <- name :: t.order;
      m

let series m ~labels ~make =
  match List.assoc_opt labels m.series with
  | Some s -> s
  | None ->
      let s = make () in
      m.series <- m.series @ [ (labels, s) ];
      s

let inc t ?(labels = []) ?(help = "") name v =
  let labels = sort_labels labels in
  let m = metric t ~help name in
  match series m ~labels ~make:(fun () -> Counter (ref 0.0)) with
  | Counter r -> r := !r +. Float.max 0.0 v
  | Histogram _ ->
      invalid_arg (Printf.sprintf "Metrics.inc: %s is a histogram" name)

let observe t ?(labels = []) ?(help = "") ~buckets name v =
  let labels = sort_labels labels in
  let m = metric t ~help name in
  match
    series m ~labels ~make:(fun () ->
        Histogram
          {
            bounds = buckets;
            counts = Array.make (Array.length buckets + 1) 0;
            sum = 0.0;
            count = 0;
          })
  with
  | Counter _ ->
      invalid_arg (Printf.sprintf "Metrics.observe: %s is a counter" name)
  | Histogram h ->
      let n = Array.length h.bounds in
      let i = ref 0 in
      while !i < n && v > h.bounds.(!i) do
        incr i
      done;
      h.counts.(!i) <- h.counts.(!i) + 1;
      h.sum <- h.sum +. v;
      h.count <- h.count + 1

(* Bucket ladders: phase durations span sub-microsecond reductions to
   millisecond sweeps; transfer sizes span a cache line to a UB tile. *)
let seconds_buckets =
  [| 1e-7; 3e-7; 1e-6; 3e-6; 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2 |]

let bytes_buckets =
  [| 64.; 256.; 1024.; 4096.; 16384.; 65536.; 262144.; 1048576.; 4194304.;
     16777216. |]

let observe_stats t (st : Stats.t) =
  inc t "ascend_launches_total" ~help:"Device launches folded into the stats"
    (float_of_int st.Stats.launches);
  inc t "ascend_simulated_seconds_total"
    ~help:"End-to-end simulated device time" st.Stats.seconds;
  inc t "ascend_host_seconds_total"
    ~help:"Host wall-clock spent simulating" st.Stats.host_seconds;
  inc t "ascend_gm_bytes_total" ~help:"Global-memory traffic"
    ~labels:[ ("dir", "read") ]
    (float_of_int st.Stats.gm_read_bytes);
  inc t "ascend_gm_bytes_total" ~help:"Global-memory traffic"
    ~labels:[ ("dir", "write") ]
    (float_of_int st.Stats.gm_write_bytes);
  List.iter
    (fun (op, c) ->
      inc t "ascend_op_issues_total" ~help:"Instructions issued, by op"
        ~labels:[ ("op", op) ] (float_of_int c))
    st.Stats.op_counts;
  List.iter
    (fun (e, cycles) ->
      if cycles > 0.0 then
        inc t "ascend_engine_busy_cycles_total"
          ~help:"Busy cycles per engine, summed over blocks"
          ~labels:[ ("engine", e) ] cycles)
    st.Stats.engine_busy;
  inc t "ascend_faults_injected_total" ~help:"Faults injected"
    (float_of_int (List.length st.Stats.faults));
  inc t "ascend_retries_total" ~help:"Resilient-runner re-executions"
    (float_of_int st.Stats.retries);
  inc t "ascend_degraded_total" ~help:"Resilient-runner fallback switches"
    (float_of_int st.Stats.degraded);
  List.iter
    (fun (p : Stats.phase) ->
      inc t "ascend_phases_total" ~help:"Launch phases executed"
        ~labels:
          [ ("bound", if p.Stats.bandwidth_bound then "bandwidth" else "compute") ]
        1.0;
      observe t "ascend_phase_seconds" ~help:"Per-phase simulated duration"
        ~buckets:seconds_buckets p.Stats.seconds;
      observe t "ascend_phase_gm_bytes" ~help:"Per-phase GM traffic"
        ~buckets:bytes_buckets
        (float_of_int p.Stats.gm_bytes))
    st.Stats.phases

let observe_trace t tr =
  List.iter
    (fun (l : Trace.launch_rec) ->
      List.iter
        (fun (p : Trace.phase_rec) ->
          List.iter
            (fun (b : Trace.block_rec) ->
              List.iter
                (fun (s : Trace.span) ->
                  inc t "ascend_trace_spans_total"
                    ~help:"Recorded instruction spans, by issue queue"
                    ~labels:[ ("queue", s.Trace.sp_queue) ] 1.0;
                  if s.Trace.sp_bytes > 0 then
                    observe t "ascend_transfer_bytes"
                      ~help:"MTE transfer payload sizes (tile sizes)"
                      ~buckets:bytes_buckets
                      (float_of_int s.Trace.sp_bytes))
                b.Trace.b_spans;
              List.iter
                (fun (m : Trace.mark) ->
                  inc t "ascend_trace_instants_total"
                    ~help:"Recorded instant events, by kind"
                    ~labels:[ ("kind", Trace.kind_to_string m.Trace.mk_kind) ]
                    1.0)
                b.Trace.b_marks)
            p.Trace.ph_blocks)
        l.Trace.ln_phases)
    (Trace.launches tr);
  if Trace.dropped tr > 0 then
    inc t "ascend_trace_dropped_total" ~help:"Spans dropped by the cap"
      (float_of_int (Trace.dropped tr))

let value_str = Jsonw.float_to_string

let labels_str labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let pp_prometheus ppf t =
  List.iter
    (fun name ->
      let m = Hashtbl.find t.tbl name in
      if m.help <> "" then Format.fprintf ppf "# HELP %s %s@." name m.help;
      let kind =
        match m.series with
        | (_, Counter _) :: _ -> "counter"
        | (_, Histogram _) :: _ -> "histogram"
        | [] -> "untyped"
      in
      Format.fprintf ppf "# TYPE %s %s@." name kind;
      List.iter
        (fun (labels, s) ->
          match s with
          | Counter r ->
              Format.fprintf ppf "%s%s %s@." name (labels_str labels)
                (value_str !r)
          | Histogram h ->
              let cum = ref 0 in
              Array.iteri
                (fun i c ->
                  cum := !cum + c;
                  let le =
                    if i < Array.length h.bounds then value_str h.bounds.(i)
                    else "+Inf"
                  in
                  Format.fprintf ppf "%s_bucket%s %d@." name
                    (labels_str (labels @ [ ("le", le) ]))
                    !cum)
                h.counts;
              Format.fprintf ppf "%s_sum%s %s@." name (labels_str labels)
                (value_str h.sum);
              Format.fprintf ppf "%s_count%s %d@." name (labels_str labels)
                h.count)
        m.series)
    (List.rev t.order)
