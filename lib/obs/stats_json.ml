module Stats = Ascend.Stats
module Fault = Ascend.Fault

let phase_json (p : Stats.phase) =
  Jsonw.Obj
    [
      ("compute_seconds", Jsonw.Float p.Stats.compute_seconds);
      ("bandwidth_seconds", Jsonw.Float p.Stats.bandwidth_seconds);
      ("seconds", Jsonw.Float p.Stats.seconds);
      ("gm_bytes", Jsonw.Int p.Stats.gm_bytes);
      ("footprint_bytes", Jsonw.Int p.Stats.footprint_bytes);
      ("bandwidth_bound", Jsonw.Bool p.Stats.bandwidth_bound);
    ]

let json ?(simulated_only = false) (st : Stats.t) =
  let host =
    if simulated_only then []
    else
      [
        ("host_seconds", Jsonw.Float st.Stats.host_seconds);
        ("domains", Jsonw.Int st.Stats.domains);
        ("launches", Jsonw.Int st.Stats.launches);
      ]
  in
  Jsonw.Obj
    ([
       ("name", Jsonw.String st.Stats.name);
       ("seconds", Jsonw.Float st.Stats.seconds);
       ("phases", Jsonw.List (List.map phase_json st.Stats.phases));
       ("blocks", Jsonw.Int st.Stats.blocks);
       ("cores_used", Jsonw.Int st.Stats.cores_used);
       ("gm_read_bytes", Jsonw.Int st.Stats.gm_read_bytes);
       ("gm_write_bytes", Jsonw.Int st.Stats.gm_write_bytes);
       ( "engine_busy",
         Jsonw.Obj
           (List.map (fun (e, c) -> (e, Jsonw.Float c)) st.Stats.engine_busy)
       );
       ( "core_busy",
         Jsonw.List
           (Array.to_list
              (Array.map (fun b -> Jsonw.Float b) st.Stats.core_busy)) );
       ( "op_counts",
         Jsonw.Obj
           (List.map (fun (o, c) -> (o, Jsonw.Int c)) st.Stats.op_counts) );
       ( "faults",
         Jsonw.List
           (List.map
              (fun (e : Fault.event) ->
                Jsonw.String (Format.asprintf "%a" Fault.pp_event e))
              st.Stats.faults) );
       ("retries", Jsonw.Int st.Stats.retries);
       ("degraded", Jsonw.Int st.Stats.degraded);
     ]
    @ host)

let to_string ?simulated_only st = Jsonw.to_string (json ?simulated_only st)
