(** Counterfactual re-timing of a reconstructed launch DAG: "which
    resource, sped up, buys the most makespan?"

    Each scenario re-runs the forward pass over every block's DAG with
    modified span durations or a restructured edge set, then
    recomposes phase and launch times from the launch-composition args
    the trace carries (latency, SyncAll, compute vs bandwidth roof,
    residual overheads preserved). Everything is computed from the
    {!Critical_path.t} profile alone — no re-simulation. *)

type scenario =
  | Speedup of { label : string; queues : string list; factor : float }
      (** Scale the duration of every span on the named queue classes
          (["MTE2"], ["MTE3"], ["V"], ["M"], ["S"]) by [1/factor];
          [infinity] zeroes them. *)
  | Hbm of float  (** Scale the HBM/L2 bandwidth roof of every phase. *)
  | Pipeline
      (** Structural: drop the serial schedule's per-item barriers
          (join/section edges and lane edges into loads), keep the RAW
          dataflow (queue order, load->compute->store), and pace loads
          by double-buffer slot reuse (load k waits for load k-2's
          consumer). Predicts what the Double/Triple walker schedules
          buy over Serial — gated against BENCH_9 in BENCH_10. *)

val label : scenario -> string

val default_scenarios : scenario list
(** [Pipeline], 2x/inf speedups of MTE, vector and cube, scalar inf,
    and HBM 2x. *)

val retime_block : scenario -> Critical_path.block -> float
(** New makespan of one block under the scenario. With a no-op
    scenario (e.g. [Speedup] with factor 1) this reproduces
    [bk_cycles] bitwise. *)

val predict_compute_cycles : Critical_path.t -> scenario -> float
(** Sum over phases of the retimed bounding-core block chain, in
    cycles — the quantity BENCH_9 gates on (per-phase
    [compute_seconds] x clock, no launch latency or SyncAll), so the
    pipeline prediction can be compared directly against a measured
    schedule gain. *)

type prediction = {
  wi_label : string;
  wi_cycles : float;  (** Predicted end-to-end cycles. *)
  wi_gain : float;  (** Fraction of the baseline makespan saved. *)
}

val predict : Critical_path.t -> scenario -> prediction
val rank : ?scenarios:scenario list -> Critical_path.t -> prediction list
(** Predictions sorted by gain, descending (ties by label). *)

type roof = {
  rf_name : string;  (** Engine track, or ["HBM (device)"]. *)
  rf_bytes : int;
  rf_busy_cycles : float;
  rf_achieved : float;  (** bytes per busy cycle. *)
  rf_peak : float;  (** Cost-model ceiling, bytes per cycle. *)
}

val roofline : ?cm:Ascend.Cost_model.t -> Critical_path.t -> roof list
(** Achieved vs peak bytes/cycle per MTE and vector track (tracks that
    moved bytes), plus the device-level HBM roof over the end-to-end
    makespan. *)

val report :
  ?scenarios:scenario list -> ?cm:Ascend.Cost_model.t -> Critical_path.t ->
  Jsonw.t
(** Deterministic what-if + roofline document, embedded in the CLI's
    [profile.json]. *)

val pp :
  ?scenarios:scenario list -> ?cm:Ascend.Cost_model.t ->
  Format.formatter -> Critical_path.t -> unit
