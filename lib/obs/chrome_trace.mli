(** Chrome trace-event JSON export of a {!Ascend.Trace.t} — the format
    Perfetto and chrome://tracing load directly.

    Layout: one trace {e process} per simulated AI core (pid = core +
    1, named ["core N"]) plus a device-level process (pid 0) carrying
    the launch/phase timeline and global instants; one {e thread}
    (track) per engine per core (tid = {!Ascend.Engine.index}, named
    after the engine), plus an ["events"] track for instants.
    Instruction spans are ["X"] complete events with [ts]/[dur] in
    microseconds ([cycles / clock_hz * 1e6]); faults, deaths, retries,
    barriers and checkpoints are ["i"] instant events; process and
    thread names ride on ["M"] metadata events.

    The byte output is deterministic: events come pre-sorted from
    {!Ascend.Trace.assemble} and numbers print through
    {!Jsonw.float_to_string}, so recordings of the same kernel at
    different [--domains] settings serialize identically. *)

val json : Ascend.Trace.t -> Jsonw.t
(** The trace as a JSON value: [{"traceEvents": [...], "displayTimeUnit":
    "us", "otherData": {...}}], with the recorder clock and event
    totals under ["otherData"]. *)

val to_string : Ascend.Trace.t -> string
(** [Jsonw.to_string (json t)] — the exact bytes written by the CLI's
    [--trace]. *)

type counts = {
  events : int;  (** All events incl. metadata. *)
  spans : int;  (** ["X"] events. *)
  instants : int;  (** ["i"] events. *)
  flows : int;  (** Matched ["s"]/["f"] pairs (dependency edges). *)
  processes : int;  (** Distinct pids. *)
}

val validate : Jsonw.t -> (counts, string) result
(** Structural validation of a parsed trace document (the CLI's [trace
    validate]): a [traceEvents] array whose members carry a [ph] of
    ["X"]/["i"]/["M"]/["s"]/["f"], numeric [pid]/[tid]/[ts] (and
    non-negative [dur] on spans), per (pid, tid) track spans sorted by
    [ts] with no overlap beyond float-printing slack, and every flow
    ["s"] matched by exactly one ["f"] with the same [id]. *)
