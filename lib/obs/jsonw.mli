(** Minimal self-contained JSON: a value type, a deterministic writer
    and a recursive-descent parser. No external dependencies — the
    observability layer must not change the repo's dependency
    footprint, and determinism of the byte output (for the
    cross-domain trace-identity contract) is easier to guarantee in a
    writer we own.

    {2 Determinism}

    [to_string] is a pure function of the value: object members are
    written in the order given, floats print through one canonical
    formatter (shortest round-trip style, ["%.17g"] fallback), and no
    whitespace depends on ambient state. Two structurally equal values
    always serialize to identical bytes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val float_to_string : float -> string
(** The canonical number formatter used by the writer: the shortest
    of ["%.12g"]/["%.17g"] that round-trips, integral values without
    an exponent where possible; non-finite values (invalid JSON)
    raise [Invalid_argument]. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize. [pretty] (default false) adds newlines and 2-space
    indentation; the compact form has no whitespace. *)

val to_channel : ?pretty:bool -> out_channel -> t -> unit

val parse : string -> (t, string) result
(** Parse a complete JSON document (trailing whitespace allowed,
    trailing garbage rejected). Numbers parse to [Int] when they are
    integral and fit, else [Float]; [\uXXXX] escapes decode to UTF-8
    (surrogate pairs supported). [Error] carries a message with the
    byte offset of the failure. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Object member lookup; [None] on missing key or non-object. *)

val to_list_opt : t -> t list option
val string_opt : t -> string option

val number_opt : t -> float option
(** [Int] or [Float] as a float. *)

val int_opt : t -> int option
(** [Int], or a [Float] with an integral value. *)
