(** Chrome trace-event JSON export of a {!Pod}'s event log — the
    pod-level sibling of {!Chrome_trace}.

    Layout: pid 0 is the ["pod"] process, whose single track carries
    the distributed scan's phase timeline as [cat = "phase"] spans
    (with the [launch]/[index]/[bound] args {!Trace_summary} groups
    by); pid [d + 1] is process ["device d"] with a ["compute"] track
    (local-scan and fixup spans), a ["link"] track (link-transfer
    spans, [dst] in args) and an ["events"] track for instants
    (device kills, reroutes, notes). Times are the pod's simulated
    clocks in microseconds. Every track is emitted time-sorted, so the
    output passes {!Chrome_trace.validate}; serialization is
    deterministic ({!Jsonw}). *)

val json : Pod.t -> Jsonw.t

val to_string : Pod.t -> string
(** The exact bytes written by the CLI's [--pod-trace]. *)
