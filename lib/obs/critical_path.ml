(* Critical-path reconstruction from trace JSON alone.

   The event-timeline engine model ({!Ascend.Block}) records, next to
   every span, the dependency edges that explain its issue time; the
   Chrome export carries them as flow events plus exact cycle
   endpoints (args [c0]/[c1] — the microsecond ts/dur do not round-trip
   to cycles). This module rebuilds the per-block launch DAG from those
   bytes, recomputes every span's issue time as the max end of its
   predecessors (bit-identical to the engine model: [Float.max] over
   non-negative floats is order-independent and the endpoints are the
   very floats the model produced), extracts the critical path and
   per-span slack, and rolls the whole run up into a blame table —
   cycles of end-to-end makespan attributed to each engine, op and
   queue, plus the launch latency, SyncAll and bandwidth terms of the
   phase composition.

   Pod traces (schema "ascend-pod-trace-1") carry no flow events; their
   DAG is structural — per-track span order plus link-transfer arrivals
   — and is profiled at link/kernel granularity in microseconds. *)

type span = {
  x_sid : int;
  x_binst : int;
  x_pid : int;
  x_tid : int;
  x_track : string;
  x_queue : string;
  x_op : string;
  x_c0 : float;
  x_c1 : float;
  x_bytes : int;
  x_ts : float; (* file ts (us), for phase attribution *)
}

type edge = { ed_src : int; ed_dst : int; ed_kind : string }

type block = {
  bk_binst : int;
  bk_core : int;
  bk_spans : span array; (* ascending sid = issue (topological) order *)
  bk_edges : edge array;
  bk_cycles : float; (* reconstructed critical-path length (makespan) *)
  bk_cp : int list; (* sids on the critical path, in time order *)
  bk_slack : float array; (* per-span slack, aligned with bk_spans *)
}

type phase = {
  ph_launch : string;
  ph_index : int;
  ph_seconds : float;
  ph_compute_seconds : float;
  ph_bandwidth_seconds : float;
  ph_bound : string;
  ph_gm_bytes : int;
  ph_blocks : block list; (* in assembly order *)
  ph_cores : (int * float) list; (* core -> serialised chain cycles *)
  ph_bounding_core : int; (* -1 when the phase recorded no blocks *)
}

type launch = {
  ln_name : string;
  ln_cycles : float;
  ln_latency_cycles : float;
  ln_sync_cycles : float;
  ln_phases : phase list;
}

type t = {
  schema : string;
  clock_hz : float;
  total_cycles : float;
  launches : launch list;
  blame : (string * float) list; (* resource -> CP cycles, descending *)
  op_blame : (string * float) list;
  queue_blame : (string * float) list;
  spans_total : int;
  edges_total : int;
  cp_spans : int;
}

(* ------------------------------------------------------------------ *)
(* JSON helpers. *)

let member k j = Jsonw.member k j
let str_of k j = Option.bind (member k j) Jsonw.string_opt
let int_of k j = Option.bind (member k j) Jsonw.int_opt
let num_of k j = Option.bind (member k j) Jsonw.number_opt
let arg k j = Option.bind (member "args" j) (member k)
let arg_str k j = Option.bind (arg k j) Jsonw.string_opt
let arg_int k j = Option.bind (arg k j) Jsonw.int_opt
let arg_num k j = Option.bind (arg k j) Jsonw.number_opt

let tally tbl key v =
  Hashtbl.replace tbl key (v +. Option.value ~default:0.0 (Hashtbl.find_opt tbl key))

let sorted_blame tbl =
  List.sort
    (fun (na, ca) (nb, cb) ->
      let c = Float.compare cb ca in
      if c <> 0 then c else String.compare na nb)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* ------------------------------------------------------------------ *)
(* Per-block DAG analysis: forward pass (verifying the recorded issue
   times), critical-path extraction, backward slack pass. *)

exception Inconsistent of string

let analyze_block ~binst ~core spans edges =
  let n = Array.length spans in
  let lo = if n = 0 then 0 else spans.(0).x_sid in
  let idx sid = sid - lo in
  let in_range sid = sid >= lo && sid < lo + n in
  (* Predecessor / successor adjacency over local indices. *)
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  Array.iter
    (fun e ->
      if not (in_range e.ed_src && in_range e.ed_dst) then
        raise
          (Inconsistent
             (Printf.sprintf "block %d: edge %d->%d outside span range" binst
                e.ed_src e.ed_dst));
      preds.(idx e.ed_dst) <- idx e.ed_src :: preds.(idx e.ed_dst);
      succs.(idx e.ed_src) <- idx e.ed_dst :: succs.(idx e.ed_src))
    edges;
  (* Forward: recomputed issue time must equal the recorded c0 bitwise
     — the reconstruction contract. *)
  for i = 0 to n - 1 do
    let s = spans.(i) in
    let start =
      List.fold_left (fun m p -> Float.max m spans.(p).x_c1) 0.0 preds.(i)
    in
    if not (Float.equal start s.x_c0) then
      raise
        (Inconsistent
           (Printf.sprintf
              "block %d span %d (%s %s): recomputed start %h <> recorded %h"
              binst s.x_sid s.x_track s.x_op start s.x_c0))
  done;
  let makespan =
    Array.fold_left (fun m s -> Float.max m s.x_c1) 0.0 spans
  in
  (* Critical path: walk back from the (deterministically first) span
     achieving the makespan, at each step to the first predecessor
     whose end equals the span's start. The path is temporally
     contiguous: every span starts exactly when its chosen predecessor
     ends, and the root starts at 0. *)
  let sink = ref (-1) in
  for i = n - 1 downto 0 do
    if Float.equal spans.(i).x_c1 makespan then sink := i
  done;
  let cp = ref [] in
  (if n > 0 then
     let cur = ref !sink in
     let continue = ref true in
     while !continue do
       cp := spans.(!cur).x_sid :: !cp;
       let s = spans.(!cur) in
       if s.x_c0 = 0.0 && preds.(!cur) = [] then continue := false
       else begin
         let next =
           List.fold_left
             (fun best p ->
               if Float.equal spans.(p).x_c1 s.x_c0 then
                 match best with
                 | Some b when b <= p -> Some b
                 | _ -> Some p
               else best)
             None preds.(!cur)
         in
         match next with
         | Some p -> cur := p
         | None ->
             (* start time reached without a binding predecessor: the
                span starts at 0 on an idle engine. *)
             continue := false
       end
     done);
  (* Backward slack: latest end of each span without growing the
     makespan. Sinks may end at the makespan; an edge src->dst forces
     src to end by dst's latest start. *)
  let lat_end = Array.make n 0.0 in
  let slack = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = spans.(i) in
    let le =
      List.fold_left
        (fun m j ->
          let d = spans.(j) in
          Float.min m (lat_end.(j) -. (d.x_c1 -. d.x_c0)))
        makespan succs.(i)
    in
    lat_end.(i) <- le;
    slack.(i) <- le -. s.x_c1
  done;
  {
    bk_binst = binst;
    bk_core = core;
    bk_spans = spans;
    bk_edges = edges;
    bk_cycles = makespan;
    bk_cp = !cp;
    bk_slack = slack;
  }

(* ------------------------------------------------------------------ *)
(* Device-trace profile. *)

type raw_phase = {
  rp_launch : string;
  rp_index : int;
  rp_ts : float;
  rp_dur : float;
  rp_seconds : float;
  rp_compute : float;
  rp_bandwidth : float;
  rp_bound : string;
  rp_gm : int;
  mutable rp_binsts : int list; (* newest first *)
}

let of_device_json ~clock_hz events =
  (* One pass: launches, phases (file order = time order), spans with
     profiler args, flow edges. *)
  let launches = ref [] in
  let phases = ref [] in
  let spans = ref [] in
  let edges = ref [] in
  List.iter
    (fun ev ->
      match str_of "ph" ev with
      | Some "X" -> (
          match (str_of "cat" ev, int_of "pid" ev) with
          | Some "launch", _ ->
              launches :=
                ( Option.value ~default:"?" (str_of "name" ev),
                  Option.value ~default:0.0 (arg_num "seconds" ev),
                  Option.value ~default:0.0 (arg_num "latency_cycles" ev),
                  Option.value ~default:0.0 (arg_num "sync_cycles" ev),
                  arg_int "phases" ev )
                :: !launches
          | Some "phase", _ ->
              phases :=
                {
                  rp_launch = Option.value ~default:"?" (arg_str "launch" ev);
                  rp_index = Option.value ~default:0 (arg_int "index" ev);
                  rp_ts = Option.value ~default:0.0 (num_of "ts" ev);
                  rp_dur = Option.value ~default:0.0 (num_of "dur" ev);
                  rp_seconds = Option.value ~default:0.0 (arg_num "seconds" ev);
                  rp_compute =
                    Option.value ~default:0.0 (arg_num "compute_seconds" ev);
                  rp_bandwidth =
                    Option.value ~default:0.0 (arg_num "bandwidth_seconds" ev);
                  rp_bound = Option.value ~default:"compute" (arg_str "bound" ev);
                  rp_gm = Option.value ~default:0 (arg_int "gm_bytes" ev);
                  rp_binsts = [];
                }
                :: !phases
          | _, Some pid when pid > 0 -> (
              match
                (arg_int "sid" ev, arg_int "binst" ev, arg_num "c0" ev,
                 arg_num "c1" ev)
              with
              | Some sid, Some binst, Some c0, Some c1 ->
                  spans :=
                    {
                      x_sid = sid;
                      x_binst = binst;
                      x_pid = pid;
                      x_tid = Option.value ~default:0 (int_of "tid" ev);
                      x_track = "?";
                      x_queue = Option.value ~default:"?" (str_of "cat" ev);
                      x_op = Option.value ~default:"?" (str_of "name" ev);
                      x_c0 = c0;
                      x_c1 = c1;
                      x_bytes = Option.value ~default:0 (arg_int "bytes" ev);
                      x_ts = Option.value ~default:0.0 (num_of "ts" ev);
                    }
                    :: !spans
              | _ -> ())
          | _ -> ())
      | Some "s" -> (
          (* flow start: carries src/dst sids and the edge kind. *)
          match (arg_int "src" ev, arg_int "dst" ev) with
          | Some src, Some dst ->
              edges :=
                {
                  ed_src = src;
                  ed_dst = dst;
                  ed_kind = Option.value ~default:"?" (arg_str "kind" ev);
                }
                :: !edges
          | _ -> ())
      | _ -> ())
    events;
  let phases = Array.of_list (List.rev !phases) in
  let spans = List.rev !spans in
  let edges = List.rev !edges in
  if Array.length phases = 0 then Error "not a simulator trace: no phase spans"
  else begin
    (* The span's op is its event name; the engine (track) name rides
       on thread_name metadata keyed by (pid, tid). *)
    let track_names : (int * int, string) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun ev ->
        if str_of "ph" ev = Some "M" && str_of "name" ev = Some "thread_name"
        then
          match (int_of "pid" ev, int_of "tid" ev, arg_str "name" ev) with
          | Some pid, Some tid, Some name ->
              Hashtbl.replace track_names (pid, tid) name
          | _ -> ())
      events;
    let spans =
      List.map
        (fun s ->
          match Hashtbl.find_opt track_names (s.x_pid, s.x_tid) with
          | Some name -> { s with x_track = name }
          | None -> s)
        spans
    in
    (* Group spans into blocks and attribute each block (by its first
       span, in ts order — the file is ts-sorted) to the phase window
       containing it. *)
    let by_binst : (int, span list) Hashtbl.t = Hashtbl.create 64 in
    let binst_order = ref [] in
    let binst_phase : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let eps = 1e-6 in
    let cursor = ref 0 in
    List.iter
      (fun s ->
        (match Hashtbl.find_opt by_binst s.x_binst with
        | Some l -> Hashtbl.replace by_binst s.x_binst (s :: l)
        | None ->
            Hashtbl.add by_binst s.x_binst [ s ];
            binst_order := s.x_binst :: !binst_order;
            (* phase attribution by the block's first span *)
            while
              !cursor < Array.length phases - 1
              && s.x_ts
                 >= phases.(!cursor).rp_ts +. phases.(!cursor).rp_dur -. eps
              && s.x_ts >= phases.(!cursor + 1).rp_ts -. eps
            do
              incr cursor
            done;
            Hashtbl.replace binst_phase s.x_binst !cursor;
            phases.(!cursor).rp_binsts <-
              s.x_binst :: phases.(!cursor).rp_binsts))
      spans;
    (* Edges grouped by the block of their source sid. *)
    let sid_binst : (int, int) Hashtbl.t = Hashtbl.create 256 in
    List.iter (fun s -> Hashtbl.replace sid_binst s.x_sid s.x_binst) spans;
    let block_edges : (int, edge list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun e ->
        match Hashtbl.find_opt sid_binst e.ed_src with
        | Some b ->
            Hashtbl.replace block_edges b
              (e
              :: Option.value ~default:[] (Hashtbl.find_opt block_edges b))
        | None -> ())
      edges;
    match
      List.rev_map
        (fun binst ->
          let sp =
            Array.of_list (List.rev (Hashtbl.find by_binst binst))
          in
          Array.sort (fun a b -> Int.compare a.x_sid b.x_sid) sp;
          let ed =
            Array.of_list
              (List.rev (Option.value ~default:[] (Hashtbl.find_opt block_edges binst)))
          in
          analyze_block ~binst ~core:(sp.(0).x_pid - 1) sp ed)
        !binst_order
    with
    | exception Inconsistent msg -> Error msg
    | blocks_rev ->
        let blocks = List.rev blocks_rev in
        let block_tbl = Hashtbl.create 64 in
        List.iter (fun b -> Hashtbl.add block_tbl b.bk_binst b) blocks;
        (* Assemble phases with per-core serial chains. *)
        let mk_phase rp =
          let blks =
            List.rev_map
              (fun binst -> Hashtbl.find block_tbl binst)
              rp.rp_binsts
          in
          let cores = Hashtbl.create 16 in
          List.iter
            (fun b -> tally cores b.bk_core b.bk_cycles)
            blks;
          let cores =
            List.sort
              (fun (a, _) (b, _) -> Int.compare a b)
              (Hashtbl.fold (fun k v acc -> (k, v) :: acc) cores [])
          in
          let bounding_core, _ =
            List.fold_left
              (fun (bc, bcy) (c, cy) ->
                if cy > bcy then (c, cy) else (bc, bcy))
              (-1, neg_infinity) cores
          in
          {
            ph_launch = rp.rp_launch;
            ph_index = rp.rp_index;
            ph_seconds = rp.rp_seconds;
            ph_compute_seconds = rp.rp_compute;
            ph_bandwidth_seconds = rp.rp_bandwidth;
            ph_bound = rp.rp_bound;
            ph_gm_bytes = rp.rp_gm;
            ph_blocks = blks;
            ph_cores = cores;
            ph_bounding_core = (if blks = [] then -1 else bounding_core);
          }
        in
        let phase_list = Array.to_list (Array.map mk_phase phases) in
        (* Group phases under their launch occurrences. Both lists are
           in file (= time) order and launches are sequential, so each
           launch owns the next run of phases — exactly the count its
           span advertises. A kernel that re-launches under one name
           (radix passes, the scans inside top-p) must NOT see its
           phases pooled by name: that would repeat every block under
           every same-named occurrence. Traces without the count fall
           back to consuming the maximal run of matching names. *)
        let remaining = ref phase_list in
        let consume_phases name = function
          | Some n ->
              let rec take n acc rest =
                if n = 0 then (List.rev acc, rest)
                else
                  match rest with
                  | [] -> (List.rev acc, [])
                  | p :: tl -> take (n - 1) (p :: acc) tl
              in
              let taken, rest = take n [] !remaining in
              remaining := rest;
              taken
          | None ->
              let rec take acc rest =
                match rest with
                | p :: tl when p.ph_launch = name -> take (p :: acc) tl
                | _ -> (List.rev acc, rest)
              in
              let taken, rest = take [] !remaining in
              remaining := rest;
              taken
        in
        let launch_list =
          List.rev
            (List.fold_left
               (fun acc (name, seconds, latency, sync, nphases) ->
                 {
                   ln_name = name;
                   ln_cycles = seconds *. clock_hz;
                   ln_latency_cycles = latency;
                   ln_sync_cycles = sync;
                   ln_phases = consume_phases name nphases;
                 }
                 :: acc)
               []
               (List.rev !launches))
        in
        (* Blame: decompose the end-to-end makespan. *)
        let blame = Hashtbl.create 32 in
        let op_blame = Hashtbl.create 64 in
        let queue_blame = Hashtbl.create 16 in
        let cp_spans = ref 0 in
        let total = ref 0.0 in
        List.iter
          (fun ln ->
            total := !total +. ln.ln_cycles;
            tally blame "launch latency" ln.ln_latency_cycles;
            let nph = List.length ln.ln_phases in
            if nph > 1 then
              tally blame "sync_all"
                (float_of_int (nph - 1) *. ln.ln_sync_cycles);
            let covered = ref ln.ln_latency_cycles in
            if nph > 1 then
              covered :=
                !covered +. (float_of_int (nph - 1) *. ln.ln_sync_cycles);
            List.iter
              (fun p ->
                let pc = p.ph_seconds *. clock_hz in
                covered := !covered +. pc;
                if p.ph_bound = "bandwidth" then
                  tally blame "HBM/L2 bandwidth" pc
                else begin
                  (* Blame the bounding core's serialised block chain;
                     within each block, its critical-path spans. *)
                  let chain = ref 0.0 in
                  List.iter
                    (fun b ->
                      if b.bk_core = p.ph_bounding_core then begin
                        chain := !chain +. b.bk_cycles;
                        let on_cp = Hashtbl.create 64 in
                        List.iter
                          (fun sid -> Hashtbl.replace on_cp sid ())
                          b.bk_cp;
                        Array.iter
                          (fun s ->
                            if Hashtbl.mem on_cp s.x_sid then begin
                              incr cp_spans;
                              let d = s.x_c1 -. s.x_c0 in
                              tally blame s.x_track d;
                              tally op_blame s.x_op d;
                              tally queue_blame s.x_queue d
                            end)
                          b.bk_spans
                      end)
                    p.ph_blocks;
                  (* Replay delays, launch-composition padding and the
                     cycles-to-seconds round trip land here. *)
                  tally blame "phase overhead" (pc -. !chain)
                end)
              ln.ln_phases;
            tally blame "launch overhead" (ln.ln_cycles -. !covered))
          launch_list;
        Ok
          {
            schema = "ascend-trace-1";
            clock_hz;
            total_cycles = !total;
            launches = launch_list;
            blame = sorted_blame blame;
            op_blame = sorted_blame op_blame;
            queue_blame = sorted_blame queue_blame;
            spans_total = List.length spans;
            edges_total = List.length edges;
            cp_spans = !cp_spans;
          }
  end

(* ------------------------------------------------------------------ *)
(* Pod-trace profile: structural DAG over kernel/link spans — per-track
   program order plus link-transfer arrival edges. Units are
   microseconds (clock_hz = 1e6 makes the cycle/us conversion the
   identity). *)

let of_pod_json events =
  (* Collect spans per (pid, tid) with device processes only. *)
  let all = ref [] in
  List.iter
    (fun ev ->
      match (str_of "ph" ev, int_of "pid" ev, int_of "tid" ev) with
      | Some "X", Some pid, Some tid when pid > 0 -> (
          match (num_of "ts" ev, num_of "dur" ev) with
          | Some ts, Some dur ->
              let cat = Option.value ~default:"?" (str_of "cat" ev) in
              all :=
                ( pid,
                  tid,
                  cat,
                  Option.value ~default:"?" (str_of "name" ev),
                  ts,
                  dur,
                  arg_int "dst" ev )
                :: !all
          | _ -> ())
      | _ -> ())
    events;
  let arr = Array.of_list (List.rev !all) in
  if Array.length arr = 0 then Error "pod trace has no device spans"
  else begin
    let n = Array.length arr in
    let preds = Array.make n [] in
    (* Track order. *)
    let last_on : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
    Array.iteri
      (fun i (pid, tid, _, _, _, _, _) ->
        (match Hashtbl.find_opt last_on (pid, tid) with
        | Some j -> preds.(i) <- j :: preds.(i)
        | None -> ());
        Hashtbl.replace last_on (pid, tid) i)
      arr;
    (* Link arrivals: a link span on device d with args.dst = p gates
       the earliest span on device p starting at or after its end. *)
    let slack_us = 1e-6 in
    Array.iteri
      (fun i (_, _, cat, _, ts, dur, dst) ->
        match (cat, dst) with
        | "link", Some peer ->
            let e = ts +. dur in
            let best = ref (-1) in
            Array.iteri
              (fun j (pid', _, _, _, ts', _, _) ->
                if
                  pid' = peer + 1 && ts' >= e -. slack_us
                  && (!best < 0
                     ||
                     let _, _, _, _, bts, _, _ = arr.(!best) in
                     ts' < bts)
                then best := j)
              arr;
            if !best >= 0 then preds.(!best) <- i :: preds.(!best)
        | _ -> ())
      arr;
    (* Longest path by end time; walk back over preds, counting gaps
       as idle wait. *)
    let ends = Array.map (fun (_, _, _, _, ts, dur, _) -> ts +. dur) arr in
    let sink = ref 0 in
    Array.iteri (fun i e -> if e > ends.(!sink) then sink := i) ends;
    let blame = Hashtbl.create 16 in
    let op_blame = Hashtbl.create 16 in
    let cp = ref [] in
    let cur = ref !sink in
    let continue = ref true in
    let total = ends.(!sink) in
    while !continue do
      cp := !cur :: !cp;
      let pid, tid, cat, name, ts, dur, _ = arr.(!cur) in
      let track =
        Printf.sprintf "device %d:%s" (pid - 1)
          (if tid = 1 then "link" else "compute")
      in
      ignore cat;
      tally blame track dur;
      tally op_blame name dur;
      let best = ref (-1) in
      List.iter
        (fun j ->
          if !best < 0 || ends.(j) > ends.(!best) then best := j)
        preds.(!cur);
      if !best >= 0 then begin
        let gap = ts -. ends.(!best) in
        if gap > 0.0 then tally blame "idle wait" gap;
        cur := !best
      end
      else begin
        if ts > 0.0 then tally blame "idle wait" ts;
        continue := false
      end
    done;
    ignore !cp;
    Ok
      {
        schema = "ascend-pod-trace-1";
        clock_hz = 1e6;
        total_cycles = total;
        launches = [];
        blame = sorted_blame blame;
        op_blame = sorted_blame op_blame;
        queue_blame = [];
        spans_total = n;
        edges_total = 0;
        cp_spans = List.length !cp;
      }
  end

let of_json doc =
  match Option.bind (member "traceEvents" doc) Jsonw.to_list_opt with
  | None -> Error "not a trace: missing traceEvents array"
  | Some events -> (
      let schema =
        Option.bind (member "otherData" doc) (fun o ->
            Option.bind (member "schema" o) Jsonw.string_opt)
      in
      match schema with
      | Some "ascend-pod-trace-1" -> of_pod_json events
      | _ ->
          let clock_hz =
            Option.value ~default:1.8e9
              (Option.bind (member "otherData" doc) (fun o ->
                   Option.bind (member "clock_hz" o) Jsonw.number_opt))
          in
          of_device_json ~clock_hz events)

(* ------------------------------------------------------------------ *)
(* Reports. *)

let us_of t cycles = cycles /. t.clock_hz *. 1e6

let report t =
  let pairs l =
    Jsonw.List
      (List.map
         (fun (k, v) ->
           Jsonw.Obj
             [
               ("name", Jsonw.String k);
               ("cycles", Jsonw.Float v);
               ( "share",
                 Jsonw.Float
                   (if t.total_cycles > 0.0 then v /. t.total_cycles else 0.0)
               );
             ])
         l)
  in
  let phase p =
    Jsonw.Obj
      [
        ("launch", Jsonw.String p.ph_launch);
        ("index", Jsonw.Int p.ph_index);
        ("seconds", Jsonw.Float p.ph_seconds);
        ("compute_seconds", Jsonw.Float p.ph_compute_seconds);
        ("bandwidth_seconds", Jsonw.Float p.ph_bandwidth_seconds);
        ("bound", Jsonw.String p.ph_bound);
        ("gm_bytes", Jsonw.Int p.ph_gm_bytes);
        ("blocks", Jsonw.Int (List.length p.ph_blocks));
        ("bounding_core", Jsonw.Int p.ph_bounding_core);
        ( "cores",
          Jsonw.List
            (List.map
               (fun (c, cy) ->
                 Jsonw.Obj
                   [ ("core", Jsonw.Int c); ("chain_cycles", Jsonw.Float cy) ])
               p.ph_cores) );
      ]
  in
  let launch l =
    Jsonw.Obj
      [
        ("name", Jsonw.String l.ln_name);
        ("cycles", Jsonw.Float l.ln_cycles);
        ("latency_cycles", Jsonw.Float l.ln_latency_cycles);
        ("sync_cycles", Jsonw.Float l.ln_sync_cycles);
        ("phases", Jsonw.List (List.map phase l.ln_phases));
      ]
  in
  Jsonw.Obj
    [
      ("schema", Jsonw.String "ascend-profile-1");
      ("trace_schema", Jsonw.String t.schema);
      ("clock_hz", Jsonw.Float t.clock_hz);
      ("total_cycles", Jsonw.Float t.total_cycles);
      ("total_us", Jsonw.Float (us_of t t.total_cycles));
      ("spans", Jsonw.Int t.spans_total);
      ("edges", Jsonw.Int t.edges_total);
      ("critical_path_spans", Jsonw.Int t.cp_spans);
      ("blame", pairs t.blame);
      ("op_blame", pairs t.op_blame);
      ("queue_blame", pairs t.queue_blame);
      ("launches", Jsonw.List (List.map launch t.launches));
    ]

let pp ppf t =
  Format.fprintf ppf "critical path: %.0f cycles (%.3f us), %d spans on path@."
    t.total_cycles (us_of t t.total_cycles) t.cp_spans;
  Format.fprintf ppf "blame (cycles of end-to-end makespan):@.";
  List.iter
    (fun (name, cy) ->
      if Float.abs cy > 1e-9 then
        Format.fprintf ppf "  %-24s %14.1f  %5.1f%%@." name cy
          (if t.total_cycles > 0.0 then 100.0 *. cy /. t.total_cycles else 0.0))
    t.blame;
  (match t.op_blame with
  | [] -> ()
  | ops ->
      Format.fprintf ppf "top critical-path ops:@.";
      List.iteri
        (fun i (name, cy) ->
          if i < 8 then
            Format.fprintf ppf "  %-24s %14.1f  %5.1f%%@." name cy
              (if t.total_cycles > 0.0 then 100.0 *. cy /. t.total_cycles
               else 0.0))
        ops);
  List.iter
    (fun l ->
      List.iter
        (fun p ->
          Format.fprintf ppf
            "launch %s phase %d: %s-bound, bounding core %d, %d blocks@."
            l.ln_name p.ph_index p.ph_bound p.ph_bounding_core
            (List.length p.ph_blocks))
        l.ln_phases)
    t.launches
