type phase_sum = {
  launch : string;
  index : int;
  ts_us : float;
  dur_us : float;
  bound : string;
  bounding : string;
  engines : (string * float) list;
  overlap : float;
}

type phase_acc = {
  a_launch : string;
  a_index : int;
  a_ts : float;
  a_dur : float;
  a_bound : string;
  busy : (string, float) Hashtbl.t; (* engine name -> busy us *)
  mutable mte_iv : (float * float) list; (* MTE-track spans (ts, te) *)
  mutable comp_iv : (float * float) list; (* compute-track spans *)
}

(* An engine track is an MTE track iff its (possibly device-qualified)
   name carries the ".mte" suffix component; everything else — cube,
   vec cores, scalar — counts as compute. *)
let is_mte_track name =
  let n = String.length name in
  let rec scan i =
    if i + 4 > n then false
    else if String.sub name i 4 = ".mte" then true
    else scan (i + 1)
  in
  scan 0

(* Total length of the union of a span list. *)
let union_length ivs =
  let ivs = List.sort compare ivs in
  let rec go acc cur ivs =
    match (cur, ivs) with
    | None, [] -> acc
    | Some (s, e), [] -> acc +. (e -. s)
    | None, iv :: tl -> go acc (Some iv) tl
    | Some (s, e), (s', e') :: tl ->
        if s' <= e then go acc (Some (s, Float.max e e')) tl
        else go (acc +. (e -. s)) (Some (s', e')) tl
  in
  go 0.0 None ivs

(* Length of the intersection of two span unions. *)
let intersection_length a b =
  let merge ivs =
    let ivs = List.sort compare ivs in
    let rec go acc cur ivs =
      match (cur, ivs) with
      | None, [] -> List.rev acc
      | Some iv, [] -> List.rev (iv :: acc)
      | None, iv :: tl -> go acc (Some iv) tl
      | Some (s, e), (s', e') :: tl ->
          if s' <= e then go acc (Some (s, Float.max e e')) tl
          else go ((s, e) :: acc) (Some (s', e')) tl
    in
    go [] None ivs
  in
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> acc
    | (sa, ea) :: ta, (sb, eb) :: tb ->
        let lo = Float.max sa sb and hi = Float.min ea eb in
        let acc = if hi > lo then acc +. (hi -. lo) else acc in
        if ea < eb then go acc ta b else go acc a tb
  in
  go 0.0 (merge a) (merge b)

let of_json doc =
  match Option.bind (Jsonw.member "traceEvents" doc) Jsonw.to_list_opt with
  | None -> Error "not a trace: missing traceEvents array"
  | Some events ->
      (* Process names first: pod traces carry one process per device
         ("device N"), and an engine track must stay distinct across
         devices — a "compute" track on device 0 and one on device 1
         are different hardware. Device traces name their processes
         "core N" / "device", which keeps the legacy bare engine key
         (and byte-identical output). *)
      let process_names : (int, string) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun ev ->
          let str k = Option.bind (Jsonw.member k ev) Jsonw.string_opt in
          let int k = Option.bind (Jsonw.member k ev) Jsonw.int_opt in
          if str "ph" = Some "M" && str "name" = Some "process_name" then
            match
              ( int "pid",
                Option.bind
                  (Option.bind (Jsonw.member "args" ev) (Jsonw.member "name"))
                  Jsonw.string_opt )
            with
            | Some pid, Some name -> Hashtbl.replace process_names pid name
            | _ -> ())
        events;
      let qualify pid name =
        match Hashtbl.find_opt process_names pid with
        | Some pname when String.length pname > 7 && String.sub pname 0 7 = "device "
          ->
            pname ^ ":" ^ name
        | _ -> name
      in
      (* Track names from thread_name metadata. *)
      let track_names : (int * int, string) Hashtbl.t = Hashtbl.create 64 in
      (* Distinct tracks per engine name (to average across cores). *)
      let tracks_of : (string, (int * int, unit) Hashtbl.t) Hashtbl.t =
        Hashtbl.create 32
      in
      List.iter
        (fun ev ->
          let str k = Option.bind (Jsonw.member k ev) Jsonw.string_opt in
          let int k = Option.bind (Jsonw.member k ev) Jsonw.int_opt in
          if str "ph" = Some "M" && str "name" = Some "thread_name" then
            match
              ( int "pid",
                int "tid",
                Option.bind
                  (Option.bind (Jsonw.member "args" ev) (Jsonw.member "name"))
                  Jsonw.string_opt )
            with
            | Some pid, Some tid, Some name when pid > 0 && name <> "events" ->
                let name = qualify pid name in
                Hashtbl.replace track_names (pid, tid) name;
                let set =
                  match Hashtbl.find_opt tracks_of name with
                  | Some s -> s
                  | None ->
                      let s = Hashtbl.create 8 in
                      Hashtbl.add tracks_of name s;
                      s
                in
                Hashtbl.replace set (pid, tid) ()
            | _ -> ())
        events;
      (* Phase windows (device process, cat = "phase"), in file order
         (assemble sorts by ts). *)
      let phases = ref [] in
      List.iter
        (fun ev ->
          let str k = Option.bind (Jsonw.member k ev) Jsonw.string_opt in
          let num k = Option.bind (Jsonw.member k ev) Jsonw.number_opt in
          let args = Jsonw.member "args" ev in
          let arg_str k = Option.bind (Option.bind args (Jsonw.member k)) Jsonw.string_opt in
          let arg_int k = Option.bind (Option.bind args (Jsonw.member k)) Jsonw.int_opt in
          if str "ph" = Some "X" && str "cat" = Some "phase" then
            match (num "ts", num "dur") with
            | Some ts, Some dur ->
                phases :=
                  {
                    a_launch = Option.value ~default:"?" (arg_str "launch");
                    a_index = Option.value ~default:0 (arg_int "index");
                    a_ts = ts;
                    a_dur = dur;
                    a_bound = Option.value ~default:"compute" (arg_str "bound");
                    busy = Hashtbl.create 16;
                    mte_iv = [];
                    comp_iv = [];
                  }
                  :: !phases
            | _ -> ())
        events;
      let phases = Array.of_list (List.rev !phases) in
      if Array.length phases = 0 then
        Error "not a simulator trace: no phase spans found"
      else begin
        (* Attribute engine spans to the phase containing their start.
           Events and phases are both ts-sorted, so a moving cursor
           suffices. *)
        let eps = 1e-6 in
        let cursor = ref 0 in
        List.iter
          (fun ev ->
            let str k = Option.bind (Jsonw.member k ev) Jsonw.string_opt in
            let int k = Option.bind (Jsonw.member k ev) Jsonw.int_opt in
            let num k = Option.bind (Jsonw.member k ev) Jsonw.number_opt in
            match (str "ph", int "pid", int "tid", num "ts", num "dur") with
            | Some "X", Some pid, Some tid, Some ts, Some dur when pid > 0 -> (
                match Hashtbl.find_opt track_names (pid, tid) with
                | None -> ()
                | Some name ->
                    while
                      !cursor < Array.length phases - 1
                      && ts >= phases.(!cursor).a_ts +. phases.(!cursor).a_dur -. eps
                      && ts >= phases.(!cursor + 1).a_ts -. eps
                    do
                      incr cursor
                    done;
                    let p = phases.(!cursor) in
                    if ts >= p.a_ts -. eps && ts < p.a_ts +. p.a_dur +. eps
                    then begin
                      Hashtbl.replace p.busy name
                        (dur
                        +. Option.value ~default:0.0
                             (Hashtbl.find_opt p.busy name));
                      let iv = (ts, ts +. dur) in
                      if is_mte_track name then p.mte_iv <- iv :: p.mte_iv
                      else p.comp_iv <- iv :: p.comp_iv
                    end)
            | _ -> ())
          events;
        let summaries =
          Array.to_list
            (Array.map
               (fun p ->
                 let engines =
                   Hashtbl.fold
                     (fun name busy acc ->
                       let n_tracks =
                         match Hashtbl.find_opt tracks_of name with
                         | Some s -> max 1 (Hashtbl.length s)
                         | None -> 1
                       in
                       let occ =
                         if p.a_dur <= 0.0 then 0.0
                         else busy /. (p.a_dur *. float_of_int n_tracks)
                       in
                       (name, occ) :: acc)
                     p.busy []
                 in
                 let engines =
                   List.sort
                     (fun (na, oa) (nb, ob) ->
                       let c = Float.compare ob oa in
                       if c <> 0 then c else String.compare na nb)
                     engines
                 in
                 let bounding =
                   if p.a_bound = "bandwidth" then "HBM/L2 bandwidth"
                   else
                     match engines with
                     | (name, _) :: _ -> name
                     | [] -> "launch overhead"
                 in
                 let overlap =
                   let m = union_length p.mte_iv
                   and c = union_length p.comp_iv in
                   let denom = Float.min m c in
                   if denom <= 0.0 then 0.0
                   else intersection_length p.mte_iv p.comp_iv /. denom
                 in
                 {
                   launch = p.a_launch;
                   index = p.a_index;
                   ts_us = p.a_ts;
                   dur_us = p.a_dur;
                   bound = p.a_bound;
                   bounding;
                   engines;
                   overlap;
                 })
               phases)
        in
        Ok summaries
      end

let pp ppf summaries =
  let current = ref "" in
  List.iter
    (fun s ->
      if s.launch <> !current then begin
        current := s.launch;
        Format.fprintf ppf "launch %s@." s.launch
      end;
      Format.fprintf ppf "  phase %d: %.3f us, %s-bound, bounded by %s@."
        s.index s.dur_us s.bound s.bounding;
      match List.filter (fun (_, o) -> o > 0.0005) s.engines with
      | [] -> ()
      | engines ->
          Format.fprintf ppf "    occupancy:";
          List.iter
            (fun (name, occ) ->
              Format.fprintf ppf " %s %.1f%%" name (100.0 *. occ))
            engines;
          Format.fprintf ppf "@.";
          if s.overlap > 0.0005 then
            Format.fprintf ppf "    mte/compute overlap %.1f%%@."
              (100.0 *. s.overlap))
    summaries
