(* Perfetto export of a pod's event log: one trace process per pod
   device plus a pod-level process carrying the distributed-scan phase
   timeline, mirroring the per-core layout of Chrome_trace at the next
   level of the hierarchy. *)

module Pod = Pod

let phases_tid = 0
let compute_tid = 0
let link_tid = 1
let events_tid = 2

(* (pid, tid, sort-key extras) placement for one pod event; None means
   the event does not reach the trace (there are none today). *)
let place (ev : Pod.event) =
  match ev.Pod.ev_kind with
  | Pod.Phase -> (0, phases_tid)
  | Pod.Local_scan | Pod.Fixup -> (ev.Pod.ev_device + 1, compute_tid)
  | Pod.Link_send -> (ev.Pod.ev_device + 1, link_tid)
  | Pod.Reroute | Pod.Device_kill | Pod.Note ->
      (ev.Pod.ev_device + 1, events_tid)

let is_span (ev : Pod.event) =
  match ev.Pod.ev_kind with
  | Pod.Phase | Pod.Local_scan | Pod.Fixup | Pod.Link_send -> true
  | Pod.Reroute | Pod.Device_kill | Pod.Note -> false

let cat (ev : Pod.event) =
  match ev.Pod.ev_kind with
  | Pod.Phase -> "phase"
  | Pod.Local_scan | Pod.Fixup -> "kernel"
  | Pod.Link_send -> "link"
  | Pod.Reroute | Pod.Device_kill | Pod.Note -> "pod"

let json pod =
  let events = Pod.events pod in
  (* Global stable time order: pod events append in issue order across
     devices, but the trace must be ts-sorted — both per Perfetto
     track (validate checks it) and globally (the summary's
     phase-attribution cursor walks the file in time order). *)
  let indexed = List.mapi (fun i ev -> (i, ev)) events in
  let sorted =
    List.sort
      (fun (ia, a) (ib, b) ->
        let c = Float.compare a.Pod.ev_start_s b.Pod.ev_start_s in
        if c <> 0 then c else Int.compare ia ib)
      indexed
  in
  let us s = s *. 1e6 in
  let tracks_present = Hashtbl.create 16 in
  List.iter
    (fun (_, ev) -> Hashtbl.replace tracks_present (place ev) ())
    indexed;
  (* The pod process always exists (even for an event-free pod), and
     every device contributes its tracks only if it has events. *)
  Hashtbl.replace tracks_present (0, phases_tid) ();
  let track_list =
    List.sort compare
      (Hashtbl.fold (fun k () acc -> k :: acc) tracks_present [])
  in
  let pids =
    List.sort_uniq Int.compare (List.map fst track_list)
  in
  let pname pid = if pid = 0 then "pod" else Printf.sprintf "device %d" (pid - 1) in
  let tname (pid, tid) =
    if pid = 0 then "phases"
    else if tid = compute_tid then "compute"
    else if tid = link_tid then "link"
    else "events"
  in
  let meta =
    List.concat_map
      (fun pid ->
        [
          Jsonw.Obj
            [
              ("name", Jsonw.String "process_name");
              ("ph", Jsonw.String "M");
              ("pid", Jsonw.Int pid);
              ("args", Jsonw.Obj [ ("name", Jsonw.String (pname pid)) ]);
            ];
          Jsonw.Obj
            [
              ("name", Jsonw.String "process_sort_index");
              ("ph", Jsonw.String "M");
              ("pid", Jsonw.Int pid);
              ("args", Jsonw.Obj [ ("sort_index", Jsonw.Int pid) ]);
            ];
        ])
      pids
    @ List.concat_map
        (fun ((pid, tid) as key) ->
          [
            Jsonw.Obj
              [
                ("name", Jsonw.String "thread_name");
                ("ph", Jsonw.String "M");
                ("pid", Jsonw.Int pid);
                ("tid", Jsonw.Int tid);
                ("args", Jsonw.Obj [ ("name", Jsonw.String (tname key)) ]);
              ];
            Jsonw.Obj
              [
                ("name", Jsonw.String "thread_sort_index");
                ("ph", Jsonw.String "M");
                ("pid", Jsonw.Int pid);
                ("tid", Jsonw.Int tid);
                ("args", Jsonw.Obj [ ("sort_index", Jsonw.Int tid) ]);
              ];
          ])
        track_list
  in
  let phase_index = ref (-1) in
  let body =
    List.map
      (fun (_, ev) ->
        let pid, tid = place ev in
        let base =
          [
            ("name", Jsonw.String ev.Pod.ev_label);
            ("cat", Jsonw.String (cat ev));
          ]
        in
        if is_span ev then
          let args =
            match ev.Pod.ev_kind with
            | Pod.Phase ->
                incr phase_index;
                [
                  ( "args",
                    Jsonw.Obj
                      [
                        ("launch", Jsonw.String "dist_scan");
                        ("index", Jsonw.Int !phase_index);
                        ( "bound",
                          Jsonw.String
                            (if ev.Pod.ev_label = "prefix exchange" then
                               "bandwidth"
                             else "compute") );
                      ] );
                ]
            | Pod.Link_send -> (
                match ev.Pod.ev_peer with
                | Some peer -> [ ("args", Jsonw.Obj [ ("dst", Jsonw.Int peer) ]) ]
                | None -> [])
            | _ -> []
          in
          Jsonw.Obj
            (base
            @ [
                ("ph", Jsonw.String "X");
                ("pid", Jsonw.Int pid);
                ("tid", Jsonw.Int tid);
                ("ts", Jsonw.Float (us ev.Pod.ev_start_s));
                ("dur", Jsonw.Float (us ev.Pod.ev_dur_s));
              ]
            @ args)
        else
          Jsonw.Obj
            (base
            @ [
                ("ph", Jsonw.String "i");
                ("s", Jsonw.String "p");
                ("pid", Jsonw.Int pid);
                ("tid", Jsonw.Int tid);
                ("ts", Jsonw.Float (us ev.Pod.ev_start_s));
              ]))
      sorted
  in
  let n_spans = List.length (List.filter (fun (_, e) -> is_span e) indexed) in
  Jsonw.Obj
    [
      ("traceEvents", Jsonw.List (meta @ body));
      ("displayTimeUnit", Jsonw.String "us");
      ( "otherData",
        Jsonw.Obj
          [
            ("generator", Jsonw.String "ascend-scan-sim");
            ("schema", Jsonw.String "ascend-pod-trace-1");
            ("devices", Jsonw.Int (Pod.num_devices pod));
            ("topology", Jsonw.String (Pod.topology_to_string (Pod.topology pod)));
            ("spans", Jsonw.Int n_spans);
            ("instants", Jsonw.Int (List.length indexed - n_spans));
          ] );
    ]

let to_string pod = Jsonw.to_string (json pod)
