type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let float_to_string f =
  if not (Float.is_finite f) then
    invalid_arg "Jsonw: non-finite numbers are not valid JSON";
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let write_to ~pretty buf v =
  let indent n =
    if pretty then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_to_string f)
    | String s -> escape_to buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            go (depth + 1) item)
          items;
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj members ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape_to buf k;
            Buffer.add_char buf ':';
            if pretty then Buffer.add_char buf ' ';
            go (depth + 1) item)
          members;
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?(pretty = false) v =
  let buf = Buffer.create 4096 in
  write_to ~pretty buf v;
  Buffer.contents buf

let to_channel ?(pretty = false) oc v =
  let buf = Buffer.create 65536 in
  write_to ~pretty buf v;
  Buffer.output_buffer oc buf

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
    match v with
    | Some v ->
        pos := !pos + 4;
        v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'u' ->
               let cp = hex4 () in
               let cp =
                 (* High surrogate: consume the paired low surrogate. *)
                 if cp >= 0xD800 && cp <= 0xDBFF then begin
                   if
                     !pos + 2 <= n && s.[!pos] = '\\'
                     && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo < 0xDC00 || lo > 0xDFFF then
                       fail "invalid low surrogate";
                     0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                   end
                   else fail "lone high surrogate"
                 end
                 else if cp >= 0xDC00 && cp <= 0xDFFF then
                   fail "lone low surrogate"
                 else cp
               in
               Buffer.add_utf_8_uchar buf (Uchar.of_int cp)
           | _ -> fail "bad escape");
          go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value depth =
    if depth > 256 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            members := (k, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                member ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          member ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value (depth + 1) in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                item ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          item ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function Obj m -> List.assoc_opt k m | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
let string_opt = function String s -> Some s | _ -> None

let number_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
