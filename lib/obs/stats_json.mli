(** Full {!Ascend.Stats.t} serialization to JSON (the CLI's
    [--stats-json]).

    Unlike the trace export, this includes the host-side fields
    ([host_seconds], [domains], [launches]) — stats JSON describes one
    concrete run, it is not covered by the cross-domain byte-identity
    contract. Pass [~simulated_only:true] to drop those fields and get
    output that {e is} identical across [--domains] settings
    (mirroring {!Ascend.Stats.equal_simulated}). *)

val json : ?simulated_only:bool -> Ascend.Stats.t -> Jsonw.t
val to_string : ?simulated_only:bool -> Ascend.Stats.t -> string
