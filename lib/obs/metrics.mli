(** A small metrics registry: monotonic counters, gauges and
    fixed-bucket histograms with labels, rendered as Prometheus text
    exposition (the CLI's [--metrics]).

    Series are keyed by (metric name, sorted label set); observing the
    same key twice accumulates. {!pp_prometheus} prints metrics in
    registration order and label sets in sorted order, so the output
    is deterministic for a given observation sequence. *)

type t

val create : unit -> t

val inc :
  t -> ?labels:(string * string) list -> ?help:string -> string -> float -> unit
(** Add to a counter (created on first use). Negative increments are
    clamped to 0 — counters are monotonic. *)

val set :
  t -> ?labels:(string * string) list -> ?help:string -> string -> float -> unit
(** Set a gauge (created on first use) to the given value — last
    write wins, unlike the accumulating {!inc}. *)

val observe :
  t ->
  ?labels:(string * string) list ->
  ?help:string ->
  buckets:float array ->
  string ->
  float ->
  unit
(** Record one observation into a histogram with the given upper
    bounds (sorted ascending; a [+Inf] bucket is implicit). The
    [buckets] of the first observation win; later calls reuse them. *)

val observe_stats : t -> Ascend.Stats.t -> unit
(** Fold one launch's (or combined) statistics in: launch/seconds/GM
    byte counters, per-op issue counters, per-engine busy-cycle
    counters, fault/retry/degrade counters and per-phase seconds +
    GM-byte histograms. *)

val observe_report : t -> _ Runtime.Resilient.report -> unit
(** Fold one resilient run's retry/detection/fallback/backoff story
    into [resilient_*_total] counters (runs labelled by outcome). *)

val observe_batched_report : t -> Runtime.Resilient.batched_report -> unit
(** Fold one checkpointed batched scan in: group attempts, replayed /
    restored / shed / committed row counters, backoff and outcome. *)

val observe_decision : t -> Runtime.Degrade_ctl.decision -> unit
(** Count one degradation-controller transition, labelled by the
    resulting breaker state and brownout level; cooldown seconds
    accumulate separately. Pass as [Degrade_ctl.create]'s
    [on_decision] to stream decisions as they happen. *)

val observe_ctl : t -> Runtime.Degrade_ctl.t -> unit
(** {!observe_decision} over a controller's whole decision log, plus
    the breaker-open counter — the after-the-fact alternative to the
    [on_decision] hook. *)

val observe_profile : t -> Critical_path.t -> unit
(** Fold a critical-path profile in as gauges:
    [ascend_cp_total_cycles], per-resource [ascend_cp_blame_cycles],
    and [ascend_phase_mte_compute_overlap_ratio] per launch phase
    (labels [launch]/[seq]/[phase]) — the busy-interval intersection
    of MTE vs compute tracks over the smaller of the two busy unions,
    accumulated per block. *)

val observe_trace : t -> Ascend.Trace.t -> unit
(** Fold a recording in: span/instant counters per issue queue and
    instant kind, and an MTE transfer-size histogram (the tile-size
    distribution the paper tunes). *)

val pp_prometheus : Format.formatter -> t -> unit
(** Prometheus text exposition format: [# HELP]/[# TYPE] headers,
    [name{labels} value] samples, [_bucket]/[_sum]/[_count] triplets
    for histograms. *)
