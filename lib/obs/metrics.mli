(** A small metrics registry: monotonic counters and fixed-bucket
    histograms with labels, rendered as Prometheus text exposition
    (the CLI's [--metrics]).

    Series are keyed by (metric name, sorted label set); observing the
    same key twice accumulates. {!pp_prometheus} prints metrics in
    registration order and label sets in sorted order, so the output
    is deterministic for a given observation sequence. *)

type t

val create : unit -> t

val inc :
  t -> ?labels:(string * string) list -> ?help:string -> string -> float -> unit
(** Add to a counter (created on first use). Negative increments are
    clamped to 0 — counters are monotonic. *)

val observe :
  t ->
  ?labels:(string * string) list ->
  ?help:string ->
  buckets:float array ->
  string ->
  float ->
  unit
(** Record one observation into a histogram with the given upper
    bounds (sorted ascending; a [+Inf] bucket is implicit). The
    [buckets] of the first observation win; later calls reuse them. *)

val observe_stats : t -> Ascend.Stats.t -> unit
(** Fold one launch's (or combined) statistics in: launch/seconds/GM
    byte counters, per-op issue counters, per-engine busy-cycle
    counters, fault/retry/degrade counters and per-phase seconds +
    GM-byte histograms. *)

val observe_trace : t -> Ascend.Trace.t -> unit
(** Fold a recording in: span/instant counters per issue queue and
    instant kind, and an MTE transfer-size histogram (the tile-size
    distribution the paper tunes). *)

val pp_prometheus : Format.formatter -> t -> unit
(** Prometheus text exposition format: [# HELP]/[# TYPE] headers,
    [name{labels} value] samples, [_bucket]/[_sum]/[_count] triplets
    for histograms. *)
