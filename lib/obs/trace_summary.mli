(** Per-phase engine-occupancy analysis of an exported trace — the
    paper's "cube idle / MTE bound" timeline reading, reproduced from
    our own trace files (the CLI's [trace summary]).

    Works from the parsed Chrome-trace JSON (not the live recorder),
    so it can analyse any previously written [--trace] file: device
    phase spans give the windows, engine-track spans give the busy
    time, and thread-name metadata maps tracks back to engines. *)

type phase_sum = {
  launch : string;
  index : int;  (** Phase index within the launch. *)
  ts_us : float;
  dur_us : float;
  bound : string;  (** ["compute"] or ["bandwidth"] (from the phase args). *)
  bounding : string;
      (** What limits the phase: ["HBM/L2 bandwidth"] for
          bandwidth-bound phases, else the busiest engine. *)
  engines : (string * float) list;
      (** Mean occupancy per engine name over the tracks of that
          engine, as a fraction of the phase duration in [0, 1],
          sorted descending. *)
  overlap : float;
      (** MTE/compute overlap ratio in [0, 1]: the time the union of
          MTE-track spans intersects the union of compute-track (cube /
          vector / scalar) spans, divided by the smaller of the two
          union lengths. [0] under a fully serial schedule (or when a
          phase uses only one side); approaches [1] when data movement
          hides entirely behind compute. *)
}

val union_length : (float * float) list -> float
(** Total length of the union of (start, end) intervals. *)

val intersection_length :
  (float * float) list -> (float * float) list -> float
(** Length of the intersection of two interval unions — the overlap
    primitive shared with {!Metrics.observe_profile}. *)

val of_json : Jsonw.t -> (phase_sum list, string) result
(** Analyse a parsed trace document; [Error] when it is not a trace
    (no [traceEvents]) or has no phase spans. *)

val pp : Format.formatter -> phase_sum list -> unit
(** Human-readable report: one block per launch, one line per phase
    with its bounding engine, then occupancy percentages. *)
