(* Counterfactual re-timing of a reconstructed launch DAG.

   Given a {!Critical_path.t} profile, re-run the forward pass over
   every block's DAG with modified span durations (engine-queue
   speedups), a scaled HBM roof, or a restructured edge set (the
   [Pipeline] scenario: replace the serial schedule's per-item
   barriers with double-buffered load pacing), and recompose phase and
   launch times from the launch-composition args the trace carries.
   The ranked report answers "which resource, sped up, buys the most
   makespan" — and the pipeline prediction is gated in BENCH_10
   against the measured serial->triple gain of BENCH_9. *)

module Cp = Critical_path

type scenario =
  | Speedup of { label : string; queues : string list; factor : float }
      (* [factor = infinity] zeroes the matching spans. *)
  | Hbm of float (* scale the HBM/L2 bandwidth roof *)
  | Pipeline (* structural: serial barriers -> double-buffered overlap *)

let label = function
  | Speedup { label; _ } -> label
  | Hbm f -> Printf.sprintf "HBM %gx" f
  | Pipeline -> "pipelined overlap"

let default_scenarios =
  [
    Pipeline;
    Speedup { label = "MTE 2x"; queues = [ "MTE2"; "MTE3" ]; factor = 2.0 };
    Speedup
      { label = "MTE inf"; queues = [ "MTE2"; "MTE3" ]; factor = infinity };
    Speedup { label = "vector 2x"; queues = [ "V" ]; factor = 2.0 };
    Speedup { label = "vector inf"; queues = [ "V" ]; factor = infinity };
    Speedup { label = "cube 2x"; queues = [ "M" ]; factor = 2.0 };
    Speedup { label = "cube inf"; queues = [ "M" ]; factor = infinity };
    Speedup { label = "scalar inf"; queues = [ "S" ]; factor = infinity };
    Hbm 2.0;
  ]

(* ------------------------------------------------------------------ *)
(* Block re-timing. *)

let dur_scale scenario (s : Cp.span) =
  match scenario with
  | Speedup { queues; factor; _ } when List.mem s.Cp.x_queue queues -> factor
  | _ -> 1.0

(* Forward pass over (possibly restructured) edges with scaled
   durations; returns the new block makespan. Topological order is sid
   order (edges always point forward). *)
let retime_block scenario (b : Cp.block) =
  let n = Array.length b.Cp.bk_spans in
  if n = 0 then 0.0
  else begin
    let lo = b.Cp.bk_spans.(0).Cp.x_sid in
    let edges =
      match scenario with
      | Pipeline ->
          (* Load positions per MTE2 engine (track, not queue class —
             each engine paces its own slots; mixing engines would
             serialise independent lanes against each other). *)
          let qpos : (string, int list) Hashtbl.t = Hashtbl.create 8 in
          Array.iteri
            (fun i s ->
              if s.Cp.x_queue = "MTE2" then
                let q = s.Cp.x_track in
                Hashtbl.replace qpos q
                  (i :: Option.value ~default:[] (Hashtbl.find_opt qpos q)))
            b.Cp.bk_spans;
          (* First non-MTE2 consumer of each span, via lane/group
             edges: the compute span that reads the loaded tile. *)
          let consumer = Array.make n (-1) in
          Array.iter
            (fun (e : Cp.edge) ->
              match e.Cp.ed_kind with
              | "lane" | "group" ->
                  let si = e.Cp.ed_src - lo and di = e.Cp.ed_dst - lo in
                  if
                    si >= 0 && si < n && di >= 0 && di < n
                    && b.Cp.bk_spans.(di).Cp.x_queue <> "MTE2"
                    && (consumer.(si) < 0 || di < consumer.(si))
                  then consumer.(si) <- di
              | _ -> ())
            b.Cp.bk_edges;
          (* Keep RAW structure, drop serial artifacts:
             - every queue edge stays (engines issue in order);
             - lane/group/fence/await edges into non-load spans stay
               (work needs its load, store needs its work);
             - join/section barriers and lane edges into loads go
               (those are the serial schedule, not the dataflow). *)
          let kept =
            Array.to_list b.Cp.bk_edges
            |> List.filter (fun (e : Cp.edge) ->
                   let di = e.Cp.ed_dst - lo in
                   let dst_is_load =
                     di >= 0 && di < n
                     && b.Cp.bk_spans.(di).Cp.x_queue = "MTE2"
                   in
                   match e.Cp.ed_kind with
                   | "join" | "section" -> false
                   | "lane" -> not dst_is_load
                   | _ -> not dst_is_load || e.Cp.ed_kind = "queue")
          in
          (* Double-buffer pacing: load k reuses the slot load k-2
             filled, so it waits for load k-2's consumer. *)
          let pacing = ref [] in
          Hashtbl.iter
            (fun _track rev_members ->
              let members = Array.of_list (List.rev rev_members) in
              Array.iteri
                (fun k i ->
                  if k >= 2 then
                    let c = consumer.(members.(k - 2)) in
                    if c >= 0 && c < i then
                      pacing :=
                        { Cp.ed_src = c + lo; ed_dst = i + lo; ed_kind = "slot" }
                        :: !pacing)
                members)
            qpos;
          kept @ !pacing
      | _ -> Array.to_list b.Cp.bk_edges
    in
    let preds = Array.make n [] in
    List.iter
      (fun (e : Cp.edge) ->
        let si = e.Cp.ed_src - lo and di = e.Cp.ed_dst - lo in
        if si >= 0 && si < n && di >= 0 && di < n && si < di then
          preds.(di) <- si :: preds.(di))
      edges;
    let finish = Array.make n 0.0 in
    let makespan = ref 0.0 in
    for i = 0 to n - 1 do
      let s = b.Cp.bk_spans.(i) in
      let scale = dur_scale scenario s in
      let dur =
        if scale = infinity then 0.0
        else (s.Cp.x_c1 -. s.Cp.x_c0) /. scale
      in
      let start =
        List.fold_left (fun m p -> Float.max m finish.(p)) 0.0 preds.(i)
      in
      finish.(i) <- start +. dur;
      if finish.(i) > !makespan then makespan := finish.(i)
    done;
    !makespan
  end

(* ------------------------------------------------------------------ *)
(* Phase / launch recomposition. *)

let predict_cycles (t : Cp.t) scenario =
  let clock = t.Cp.clock_hz in
  List.fold_left
    (fun acc (l : Cp.launch) ->
      let nph = List.length l.Cp.ln_phases in
      let phases' =
        List.fold_left
          (fun acc (p : Cp.phase) ->
            let compute' =
              match p.Cp.ph_blocks with
              | [] -> p.Cp.ph_compute_seconds
              | blocks ->
                  (* Serialised chain per core; the slowest core bounds
                     the phase. *)
                  let cores = Hashtbl.create 16 in
                  List.iter
                    (fun (b : Cp.block) ->
                      let cy = retime_block scenario b in
                      Hashtbl.replace cores b.Cp.bk_core
                        (cy
                        +. Option.value ~default:0.0
                             (Hashtbl.find_opt cores b.Cp.bk_core)))
                    blocks;
                  Hashtbl.fold (fun _ cy m -> Float.max m cy) cores 0.0
                  /. clock
            in
            let bandwidth' =
              match scenario with
              | Hbm f -> p.Cp.ph_bandwidth_seconds /. f
              | _ -> p.Cp.ph_bandwidth_seconds
            in
            let base =
              Float.max p.Cp.ph_compute_seconds p.Cp.ph_bandwidth_seconds
            in
            (* Preserve whatever the phase spent beyond its roofline
               terms (replay delays, padding). *)
            let overhead = p.Cp.ph_seconds -. base in
            acc +. Float.max compute' bandwidth' +. overhead)
          0.0 l.Cp.ln_phases
      in
      let covered =
        l.Cp.ln_latency_cycles
        +. (if nph > 1 then float_of_int (nph - 1) *. l.Cp.ln_sync_cycles
            else 0.0)
        +. List.fold_left
             (fun a (p : Cp.phase) -> a +. (p.Cp.ph_seconds *. clock))
             0.0 l.Cp.ln_phases
      in
      let residual = l.Cp.ln_cycles -. covered in
      acc +. l.Cp.ln_latency_cycles
      +. (if nph > 1 then float_of_int (nph - 1) *. l.Cp.ln_sync_cycles
          else 0.0)
      +. (phases' *. clock) +. residual)
    0.0 t.Cp.launches

(* Compute-only prediction: the sum over phases of the retimed
   bounding-core chain, in cycles — the same quantity BENCH_9 gates on
   (sum of per-phase compute_seconds x clock), so BENCH_10 can compare
   the profiler's pipeline prediction directly against the measured
   schedule gain. *)
let predict_compute_cycles (t : Cp.t) scenario =
  List.fold_left
    (fun acc (l : Cp.launch) ->
      List.fold_left
        (fun acc (p : Cp.phase) ->
          match p.Cp.ph_blocks with
          | [] -> acc +. (p.Cp.ph_compute_seconds *. t.Cp.clock_hz)
          | blocks ->
              let cores = Hashtbl.create 16 in
              List.iter
                (fun (b : Cp.block) ->
                  Hashtbl.replace cores b.Cp.bk_core
                    (retime_block scenario b
                    +. Option.value ~default:0.0
                         (Hashtbl.find_opt cores b.Cp.bk_core)))
                blocks;
              acc +. Hashtbl.fold (fun _ cy m -> Float.max m cy) cores 0.0)
        acc l.Cp.ln_phases)
    0.0 t.Cp.launches

type prediction = {
  wi_label : string;
  wi_cycles : float;
  wi_gain : float; (* fraction of baseline makespan saved *)
}

let predict t scenario =
  let cycles = predict_cycles t scenario in
  {
    wi_label = label scenario;
    wi_cycles = cycles;
    wi_gain =
      (if t.Cp.total_cycles > 0.0 then
         1.0 -. (cycles /. t.Cp.total_cycles)
       else 0.0);
  }

let rank ?(scenarios = default_scenarios) t =
  List.sort
    (fun a b ->
      let c = Float.compare b.wi_gain a.wi_gain in
      if c <> 0 then c else String.compare a.wi_label b.wi_label)
    (List.map (predict t) scenarios)

(* ------------------------------------------------------------------ *)
(* Roofline: achieved bytes/cycle per engine track vs the cost-model
   ceiling for its queue class, plus the device-level HBM roof. *)

type roof = {
  rf_name : string;
  rf_bytes : int;
  rf_busy_cycles : float;
  rf_achieved : float; (* bytes / busy cycle *)
  rf_peak : float; (* cost-model ceiling, bytes / cycle *)
}

let peak_of_queue (cm : Ascend.Cost_model.t) = function
  | "MTE2" | "MTE3" ->
      Some (cm.Ascend.Cost_model.mte_stream_bandwidth /. cm.Ascend.Cost_model.clock_hz)
  | "V" -> Some cm.Ascend.Cost_model.vec_bytes_per_cycle
  | _ -> None

let roofline ?(cm = Ascend.Cost_model.default) (t : Cp.t) =
  let tracks : (string, string * int * float) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (l : Cp.launch) ->
      List.iter
        (fun (p : Cp.phase) ->
          List.iter
            (fun (b : Cp.block) ->
              Array.iter
                (fun (s : Cp.span) ->
                  if s.Cp.x_bytes > 0 then
                    let q, by, cy =
                      Option.value
                        ~default:(s.Cp.x_queue, 0, 0.0)
                        (Hashtbl.find_opt tracks s.Cp.x_track)
                    in
                    Hashtbl.replace tracks s.Cp.x_track
                      (q, by + s.Cp.x_bytes, cy +. (s.Cp.x_c1 -. s.Cp.x_c0)))
                b.Cp.bk_spans)
            p.Cp.ph_blocks)
        l.Cp.ln_phases)
    t.Cp.launches;
  let rows =
    Hashtbl.fold
      (fun name (q, bytes, busy) acc ->
        match peak_of_queue cm q with
        | Some peak when busy > 0.0 ->
            {
              rf_name = name;
              rf_bytes = bytes;
              rf_busy_cycles = busy;
              rf_achieved = float_of_int bytes /. busy;
              rf_peak = peak;
            }
            :: acc
        | _ -> acc)
      tracks []
  in
  let rows =
    List.sort (fun a b -> String.compare a.rf_name b.rf_name) rows
  in
  (* Device-level HBM roof: global-memory traffic of every phase over
     the end-to-end makespan. *)
  let gm_bytes =
    List.fold_left
      (fun a (l : Cp.launch) ->
        List.fold_left
          (fun a (p : Cp.phase) -> a + p.Cp.ph_gm_bytes)
          a l.Cp.ln_phases)
      0 t.Cp.launches
  in
  if gm_bytes > 0 && t.Cp.total_cycles > 0.0 then
    rows
    @ [
        {
          rf_name = "HBM (device)";
          rf_bytes = gm_bytes;
          rf_busy_cycles = t.Cp.total_cycles;
          rf_achieved = float_of_int gm_bytes /. t.Cp.total_cycles;
          rf_peak =
            cm.Ascend.Cost_model.hbm_bandwidth /. cm.Ascend.Cost_model.clock_hz;
        };
      ]
  else rows

(* ------------------------------------------------------------------ *)
(* Reports. *)

let report ?scenarios ?cm t =
  (* Pod-schema profiles carry no launch composition — there is
     nothing to re-time. *)
  if t.Cp.launches = [] then Jsonw.Obj []
  else
  let preds = rank ?scenarios t in
  let roofs = roofline ?cm t in
  Jsonw.Obj
    [
      ("baseline_cycles", Jsonw.Float t.Cp.total_cycles);
      ( "whatif",
        Jsonw.List
          (List.map
             (fun w ->
               Jsonw.Obj
                 [
                   ("scenario", Jsonw.String w.wi_label);
                   ("predicted_cycles", Jsonw.Float w.wi_cycles);
                   ("gain", Jsonw.Float w.wi_gain);
                 ])
             preds) );
      ( "roofline",
        Jsonw.List
          (List.map
             (fun r ->
               Jsonw.Obj
                 [
                   ("name", Jsonw.String r.rf_name);
                   ("bytes", Jsonw.Int r.rf_bytes);
                   ("busy_cycles", Jsonw.Float r.rf_busy_cycles);
                   ("achieved_bytes_per_cycle", Jsonw.Float r.rf_achieved);
                   ("peak_bytes_per_cycle", Jsonw.Float r.rf_peak);
                   ( "utilization",
                     Jsonw.Float
                       (if r.rf_peak > 0.0 then r.rf_achieved /. r.rf_peak
                        else 0.0) );
                 ])
             roofs) );
    ]

let pp ?scenarios ?cm ppf t =
  if t.Cp.launches = [] then ()
  else
  let preds = rank ?scenarios t in
  Format.fprintf ppf "what-if (predicted from the reconstructed DAG):@.";
  List.iter
    (fun w ->
      Format.fprintf ppf "  %-20s %14.0f cycles  %+6.1f%%@." w.wi_label
        w.wi_cycles (-100.0 *. w.wi_gain))
    preds;
  match roofline ?cm t with
  | [] -> ()
  | roofs ->
      Format.fprintf ppf "roofline (achieved vs peak bytes/cycle):@.";
      List.iter
        (fun r ->
          Format.fprintf ppf "  %-20s %8.1f / %-8.1f  %5.1f%%@." r.rf_name
            r.rf_achieved r.rf_peak
            (if r.rf_peak > 0.0 then 100.0 *. r.rf_achieved /. r.rf_peak
             else 0.0))
        roofs
