open Ascend

let bitcast_f16_to_u16 device x =
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Ops_util.bitcast_f16_to_u16: input must be f16";
  let n = Global_tensor.length x in
  let u =
    Device.alloc device Dtype.U16 n ~name:(Global_tensor.name x ^ "_bits")
  in
  if Device.functional device then
    for i = 0 to n - 1 do
      Global_tensor.set u i
        (float_of_int (Fp16.of_float (Global_tensor.get x i)))
    done;
  u

let bitcast_u16_to_f16 device u =
  if not (Dtype.equal (Global_tensor.dtype u) Dtype.U16) then
    invalid_arg "Ops_util.bitcast_u16_to_f16: input must be u16";
  let n = Global_tensor.length u in
  let x =
    Device.alloc device Dtype.F16 n ~name:(Global_tensor.name u ^ "_vals")
  in
  if Device.functional device then
    for i = 0 to n - 1 do
      Global_tensor.set x i
        (Fp16.to_float (int_of_float (Global_tensor.get u i)))
    done;
  x

let read_scalar gt i ~default =
  if Global_tensor.is_backed gt then Global_tensor.get gt i else default

let ub_tile = 8192

let slice device gt ~off ~len =
  if off < 0 || len <= 0 || off + len > Global_tensor.length gt then
    invalid_arg "Ops_util.slice: range out of bounds";
  let dt = Global_tensor.dtype gt in
  let out =
    Device.alloc device dt len ~name:(Global_tensor.name gt ^ "_slice")
  in
  let blocks = Scheduler.blocks (Scheduler.plan device ~n:len) in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let vchunk = Scan.Kernel_util.ceil_div len (blocks * vpc) in
  let body ctx =
    let i = Block.idx ctx in
    let ubs =
      Array.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) dt ub_tile)
    in
    let max_tiles = Scan.Kernel_util.ceil_div vchunk ub_tile in
    Block.pipelined ctx ~iters:(max 1 max_tiles) (fun () ->
        for t = 0 to max_tiles - 1 do
          for v = 0 to vpc - 1 do
            let lo = ((i * vpc) + v) * vchunk in
            let hi = min len (lo + vchunk) in
            let o = lo + (t * ub_tile) in
            if o < hi then begin
              let l = min ub_tile (hi - o) in
              Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:gt
                ~src_off:(off + o) ~dst:ubs.(v) ~len:l ();
              Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:ubs.(v)
                ~dst:out ~dst_off:o ~len:l ()
            end
          done
        done)
  in
  let stats = Launch.run ~name:"slice" device ~blocks body in
  (out, stats)

let blit device ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  if len <= 0 || src_off < 0 || dst_off < 0
     || src_off + len > Global_tensor.length src
     || dst_off + len > Global_tensor.length dst
  then invalid_arg "Ops_util.blit: range out of bounds";
  if not (Dtype.equal (Global_tensor.dtype src) (Global_tensor.dtype dst))
  then invalid_arg "Ops_util.blit: data types differ";
  let dt = Global_tensor.dtype src in
  let blocks = Scheduler.blocks (Scheduler.plan device ~n:len) in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let vchunk = Scan.Kernel_util.ceil_div len (blocks * vpc) in
  let body ctx =
    let i = Block.idx ctx in
    let ubs =
      Array.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) dt ub_tile)
    in
    let max_tiles = Scan.Kernel_util.ceil_div vchunk ub_tile in
    Block.pipelined ctx ~iters:(max 1 max_tiles) (fun () ->
        for t = 0 to max_tiles - 1 do
          for v = 0 to vpc - 1 do
            let lo = ((i * vpc) + v) * vchunk in
            let hi = min len (lo + vchunk) in
            let o = lo + (t * ub_tile) in
            if o < hi then begin
              let l = min ub_tile (hi - o) in
              Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src
                ~src_off:(src_off + o) ~dst:ubs.(v) ~len:l ();
              Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:ubs.(v)
                ~dst ~dst_off:(dst_off + o) ~len:l ()
            end
          done
        done)
  in
  Launch.run ~name:"blit" device ~blocks body
