open Ascend

let bitcast_f16_to_u16 device x =
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Ops_util.bitcast_f16_to_u16: input must be f16";
  let n = Global_tensor.length x in
  let u =
    Device.alloc device Dtype.U16 n ~name:(Global_tensor.name x ^ "_bits")
  in
  if Device.functional device then
    for i = 0 to n - 1 do
      Global_tensor.set u i
        (float_of_int (Fp16.of_float (Global_tensor.get x i)))
    done;
  u

let bitcast_u16_to_f16 device u =
  if not (Dtype.equal (Global_tensor.dtype u) Dtype.U16) then
    invalid_arg "Ops_util.bitcast_u16_to_f16: input must be u16";
  let n = Global_tensor.length u in
  let x =
    Device.alloc device Dtype.F16 n ~name:(Global_tensor.name u ^ "_vals")
  in
  if Device.functional device then
    for i = 0 to n - 1 do
      Global_tensor.set x i
        (Fp16.to_float (int_of_float (Global_tensor.get u i)))
    done;
  x

let read_scalar gt i ~default =
  if Global_tensor.is_backed gt then Global_tensor.get gt i else default

let ub_tile = 8192

let slice device gt ~off ~len =
  if off < 0 || len <= 0 || off + len > Global_tensor.length gt then
    invalid_arg "Ops_util.slice: range out of bounds";
  let dt = Global_tensor.dtype gt in
  let out =
    Device.alloc device dt len ~name:(Global_tensor.name gt ^ "_slice")
  in
  let blocks = Scheduler.blocks (Scheduler.plan device ~n:len) in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let vchunk = Scan.Kernel_util.ceil_div len (blocks * vpc) in
  let body ctx =
    let i = Block.idx ctx in
    let schedule = Scan.Scan_core.current_schedule () in
    let ubs =
      Array.init vpc (fun v ->
          Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) dt ub_tile))
    in
    for v = 0 to vpc - 1 do
      let vlo = ((i * vpc) + v) * vchunk in
      let vhi = min len (vlo + vchunk) in
      if vhi > vlo then
        (* The staged tile doubles as the store source, so the store
           stays synchronous (the slot is only reused once its store
           retired); loads overlap via the walker's ping-pong slots. *)
        Scan.Scan_core.pipeline_tiles ctx ~schedule
          ~in_engine:(Engine.Vec_mte_in v) ~tile:ub_tile ~n:(vhi - vlo)
          ~load:(fun ~slot ~off:o ~len:l ->
            Scan.Scan_core.stage_in ctx ~schedule
              ~engine:(Engine.Vec_mte_in v) ~src:gt
              ~src_off:(off + vlo + o) ~dst:ubs.(v).(slot) ~len:l ())
          ~work:(fun ~slot ~off:o ~len:l ->
            Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v)
              ~src:ubs.(v).(slot) ~dst:out ~dst_off:(vlo + o) ~len:l ())
          ()
    done
  in
  let stats = Launch.run ~name:"slice" device ~blocks body in
  (out, stats)

let blit device ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  if len <= 0 || src_off < 0 || dst_off < 0
     || src_off + len > Global_tensor.length src
     || dst_off + len > Global_tensor.length dst
  then invalid_arg "Ops_util.blit: range out of bounds";
  if not (Dtype.equal (Global_tensor.dtype src) (Global_tensor.dtype dst))
  then invalid_arg "Ops_util.blit: data types differ";
  let dt = Global_tensor.dtype src in
  let blocks = Scheduler.blocks (Scheduler.plan device ~n:len) in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let vchunk = Scan.Kernel_util.ceil_div len (blocks * vpc) in
  let body ctx =
    let i = Block.idx ctx in
    let schedule = Scan.Scan_core.current_schedule () in
    let ubs =
      Array.init vpc (fun v ->
          Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) dt ub_tile))
    in
    for v = 0 to vpc - 1 do
      let vlo = ((i * vpc) + v) * vchunk in
      let vhi = min len (vlo + vchunk) in
      if vhi > vlo then
        Scan.Scan_core.pipeline_tiles ctx ~schedule
          ~in_engine:(Engine.Vec_mte_in v) ~tile:ub_tile ~n:(vhi - vlo)
          ~load:(fun ~slot ~off:o ~len:l ->
            Scan.Scan_core.stage_in ctx ~schedule
              ~engine:(Engine.Vec_mte_in v) ~src
              ~src_off:(src_off + vlo + o) ~dst:ubs.(v).(slot) ~len:l ())
          ~work:(fun ~slot ~off:o ~len:l ->
            Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v)
              ~src:ubs.(v).(slot) ~dst ~dst_off:(dst_off + vlo + o) ~len:l ())
          ()
    done
  in
  Launch.run ~name:"blit" device ~blocks body
