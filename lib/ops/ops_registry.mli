(** Registry entries for the scan-based operators.

    Linking this library and calling {!install} registers compress,
    split, radix sort, top-k (quickselect and radix-select), top-p and
    weighted sampling in {!Scan.Op_registry}, making them enumerable
    and dispatchable by the same front-ends as the scan kernels. *)

val install : unit -> unit
(** Forces this module's initialisation (OCaml linkers drop
    unreferenced modules together with their registration side
    effects). Idempotent. *)
