open Ascend

let sample ?(s = 128) device ~weights ~theta =
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Weighted_sampling.sample: theta out of [0, 1)";
  if not (Dtype.equal (Global_tensor.dtype weights) Dtype.F16) then
    invalid_arg "Weighted_sampling.sample: weights must be f16";
  let n = Global_tensor.length weights in
  if n = 0 then invalid_arg "Weighted_sampling.sample: empty weights";
  let cdf, st_scan = Scan.Mcscan.run ~s device weights in
  let total = Ops_util.read_scalar cdf (n - 1) ~default:1.0 in
  if Device.functional device && not (total > 0.0) then
    invalid_arg "Weighted_sampling.sample: weights must have positive sum";
  let target = theta *. total in
  (* flags.(i) = cdf.(i) > target; the sample is the first flagged
     index (at least one exists since cdf.(n-1) = total > target). *)
  let flags = Device.alloc device Dtype.I8 n ~name:"wsample_flags" in
  let st_cmp =
    Map_kernel.run ~name:"wsample_cmp" device ~inputs:[ cdf ] ~output:flags
      ~f:(fun ctx ~vec ~ins ~out ~scratch:_ ~len ->
        match ins with
        | [ src ] ->
            Vec.compare_scalar ctx ~vec Vec.Gt ~src ~dst:out ~scalar:target
              ~len ()
        | _ -> assert false)
  in
  (* SplitInd on the cdf itself; only the index permutation matters:
     the first true's original index is the sample. *)
  let r =
    Split.run ~s ~with_indices:true ~expected_density:(1.0 -. theta) device
      ~x:cdf ~flags ()
  in
  let idx =
    match r.Split.indices with
    | Some gi -> int_of_float (Ops_util.read_scalar gi 0 ~default:0.0)
    | None -> 0
  in
  let stats =
    Stats.combine ~name:"weighted_sampling" [ st_scan; st_cmp; r.Split.stats ]
  in
  (idx, stats)

let ub_tile = 8192

let sample_many ?(s = 128) device ~weights ~thetas =
  let k = Array.length thetas in
  if k = 0 then invalid_arg "Weighted_sampling.sample_many: no draws";
  Array.iter
    (fun theta ->
      if theta < 0.0 || theta >= 1.0 then
        invalid_arg "Weighted_sampling.sample_many: theta out of [0, 1)")
    thetas;
  if not (Dtype.equal (Global_tensor.dtype weights) Dtype.F16) then
    invalid_arg "Weighted_sampling.sample_many: weights must be f16";
  let n = Global_tensor.length weights in
  if n = 0 then invalid_arg "Weighted_sampling.sample_many: empty weights";
  let cdf, st_scan = Scan.Mcscan.run ~s device weights in
  let total = Ops_util.read_scalar cdf (n - 1) ~default:1.0 in
  if Device.functional device && not (total > 0.0) then
    invalid_arg "Weighted_sampling.sample_many: weights must have positive sum";
  (* Search the draws in ascending target order with one cdf pass. *)
  let order = Array.init k Fun.id in
  Array.sort (fun a b -> Float.compare thetas.(a) thetas.(b)) order;
  let samples = Array.make k (n - 1) in
  let functional = Device.functional device in
  let body ctx =
    if Block.idx ctx = 0 then begin
      let schedule = Scan.Scan_core.current_schedule () in
      let ub =
        Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 ub_tile)
      in
      let mask = Block.alloc ctx (Mem_kind.Ub 0) Dtype.I8 ub_tile in
      let next = ref 0 in
      let ntiles = Scan.Kernel_util.ceil_div n ub_tile in
      Scan.Scan_core.pipeline_tiles ctx ~schedule
        ~in_engine:(Engine.Vec_mte_in 0) ~tile:ub_tile ~n
        ~load:(fun ~slot ~off ~len ->
          Scan.Scan_core.stage_in ctx ~schedule
            ~engine:(Engine.Vec_mte_in 0) ~src:cdf ~src_off:off
            ~dst:ub.(slot) ~len ())
        ~work:(fun ~slot ~off ~len ->
          let t = off / ub_tile in
          let ub = ub.(slot) in
          if functional then begin
            let tile_last = Vec.get ctx ub (len - 1) in
            (* Resolve every pending draw whose target this tile
               covers: count the strictly-greater suffix. *)
            while
              !next < k
              && (t = ntiles - 1
                 || thetas.(order.(!next)) *. total < tile_last)
            do
              let target = thetas.(order.(!next)) *. total in
              Vec.compare_scalar ctx Vec.Gt ~src:ub ~dst:mask ~scalar:target
                ~len ();
              let above =
                int_of_float (Vec.reduce_sum ctx ~src:mask ~len ())
              in
              samples.(order.(!next)) <- min (n - 1) (off + (len - above));
              incr next
            done
          end
          else begin
            (* Cost-only: draws spread uniformly over the tiles. *)
            let per_tile = Scan.Kernel_util.ceil_div k ntiles in
            for _ = 1 to per_tile do
              Vec.compare_scalar ctx Vec.Gt ~src:ub ~dst:mask ~scalar:0.5
                ~len ();
              ignore (Vec.reduce_sum ctx ~src:mask ~len ())
            done
          end)
        ()
    end
  in
  let st_pass = Launch.run ~name:"sample_many_search" device ~blocks:1 body in
  (samples, Stats.combine ~name:"weighted_sample_many" [ st_scan; st_pass ])
