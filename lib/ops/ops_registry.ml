open Ascend
open Scan.Op_registry

(* The [ops] operators' registry entries. Registration happens at this
   module's initialisation; [install] is the forcing function a
   front-end calls so the linker keeps this module (OCaml drops
   unreferenced library modules, side effects included). *)

let caps ?(dtypes = [ Dtype.F16 ]) ?(masked = false) () =
  {
    dtypes;
    exclusive = false;
    batched = false;
    segmented = false;
    masked;
  }

let masked_in name = function
  | Masked { x; mask } -> (x, mask)
  | Tensor _ -> invalid_arg (name ^ " requires a mask/flags input")

let tensor_in name = function
  | Tensor x -> x
  | Masked _ -> invalid_arg (name ^ " takes a single tensor input")

let required name field = function
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "%s requires %s" name field)

let () =
  register
    {
      name = "compress";
      aliases = [];
      kind = `Op;
      caps = caps ~dtypes:[ Dtype.F16; Dtype.I16; Dtype.U16 ] ~masked:true ();
      monoid = None;
      describe = "Mask-compaction via exclusive-scan addressing";
      run =
        (fun cfg device input ->
          let x, mask = masked_in "compress" input in
          let r = Compress.run ?s:cfg.s device ~x ~mask () in
          ( {
              y = Some r.Compress.values;
              aux = [ ("count", float_of_int r.Compress.count) ];
            },
            r.Compress.stats ));
    };
  register
    {
      name = "split";
      aliases = [];
      kind = `Op;
      caps = caps ~dtypes:[ Dtype.F16; Dtype.I16; Dtype.U16 ] ~masked:true ();
      monoid = None;
      describe = "Stable flag-partition (trues first, then falses)";
      run =
        (fun cfg device input ->
          let x, flags = masked_in "split" input in
          let r = Split.run ?s:cfg.s device ~x ~flags () in
          ( {
              y = Some r.Split.values;
              aux = [ ("true_count", float_of_int r.Split.true_count) ];
            },
            r.Split.stats ));
    };
  register
    {
      name = "radix_sort";
      aliases = [ "sort" ];
      kind = `Op;
      caps = caps ~dtypes:[ Dtype.F16; Dtype.U16 ] ();
      monoid = None;
      describe = "LSD radix sort from repeated split";
      run =
        (fun cfg device input ->
          let x = tensor_in "radix_sort" input in
          let r = Radix_sort.run ?s:cfg.s ?bits:cfg.bits device x in
          ({ y = Some r.Radix_sort.values; aux = [] }, r.Radix_sort.stats));
    };
  register
    {
      name = "topk";
      aliases = [ "quickselect" ];
      kind = `Op;
      caps = caps ();
      monoid = None;
      describe = "Top-k selection by iterative quickselect";
      run =
        (fun cfg device input ->
          let x = tensor_in "topk" input in
          let k = required "topk" "k" cfg.k in
          let y, stats = Topk.run ?s:cfg.s ?seed:cfg.seed device x ~k in
          ({ y = Some y; aux = [] }, stats));
    };
  register
    {
      name = "radix_select";
      aliases = [];
      kind = `Op;
      caps = caps ();
      monoid = None;
      describe = "Top-k selection by bitwise radix descent";
      run =
        (fun cfg device input ->
          let x = tensor_in "radix_select" input in
          let k = required "radix_select" "k" cfg.k in
          let y, stats = Radix_select.run ?s:cfg.s device x ~k in
          ({ y = Some y; aux = [] }, stats));
    };
  register
    {
      name = "topp";
      aliases = [ "top_p" ];
      kind = `Op;
      caps = caps ();
      monoid = None;
      describe = "Nucleus (top-p) sampling via sort + cumsum";
      run =
        (fun cfg device input ->
          let probs = tensor_in "topp" input in
          let p = required "topp" "p" cfg.p in
          let theta = required "topp" "theta" cfg.theta in
          let r = Topp.sample ?s:cfg.s device ~probs ~p ~theta in
          ( {
              y = None;
              aux =
                (match r.Topp.token with
                | Some t -> [ ("token", float_of_int t) ]
                | None -> [])
                @ [ ("kept", float_of_int r.Topp.kept) ];
            },
            r.Topp.stats ));
    };
  register
    {
      name = "weighted_sampling";
      aliases = [ "sample" ];
      kind = `Op;
      caps = caps ();
      monoid = None;
      describe = "Inverse-CDF weighted sampling over a scan";
      run =
        (fun cfg device input ->
          let weights = tensor_in "weighted_sampling" input in
          let theta = required "weighted_sampling" "theta" cfg.theta in
          let token, stats =
            Weighted_sampling.sample ?s:cfg.s device ~weights ~theta
          in
          ({ y = None; aux = [ ("token", float_of_int token) ] }, stats));
    }

let install () = ()
