open Ascend

let ub_tile = 8192

(* Streaming copy through every vector core's MTE pair. *)
let clone device x =
  let n = Global_tensor.length x in
  if n = 0 then invalid_arg "Baseline.clone: empty input";
  let dt = Global_tensor.dtype x in
  let y = Device.alloc device dt n ~name:(Global_tensor.name x ^ "_clone") in
  let blocks = Scheduler.blocks (Scheduler.plan device ~n) in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let vchunk = Scan.Kernel_util.ceil_div n (blocks * vpc) in
  let body ctx =
    let i = Block.idx ctx in
    let schedule = Scan.Scan_core.current_schedule () in
    let ubs =
      Array.init vpc (fun v ->
          Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) dt ub_tile))
    in
    for v = 0 to vpc - 1 do
      let lo = ((i * vpc) + v) * vchunk in
      let hi = min n (lo + vchunk) in
      if hi > lo then
        Scan.Scan_core.pipeline_tiles ctx ~schedule
          ~in_engine:(Engine.Vec_mte_in v) ~tile:ub_tile ~n:(hi - lo)
          ~load:(fun ~slot ~off ~len ->
            Scan.Scan_core.stage_in ctx ~schedule
              ~engine:(Engine.Vec_mte_in v) ~src:x ~src_off:(lo + off)
              ~dst:ubs.(v).(slot) ~len ())
          ~work:(fun ~slot ~off ~len ->
            Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v)
              ~src:ubs.(v).(slot) ~dst:y ~dst_off:(lo + off) ~len ())
          ()
    done
  in
  let stats = Launch.run ~name:"torch_clone" device ~blocks body in
  (y, stats)

let cumsum device x =
  let y, stats = Scan.Scan_vec_only.run device x in
  (y, { stats with Stats.name = "torch_cumsum" })

(* Element-by-element scalar-unit loop: the engine usage the paper
   reports for the stock masked_select. *)
let masked_select device ~x ~mask =
  let n = Global_tensor.length x in
  if Global_tensor.length mask <> n then
    invalid_arg "Baseline.masked_select: length mismatch";
  if n = 0 then invalid_arg "Baseline.masked_select: empty input";
  let y =
    Device.alloc device (Global_tensor.dtype x) n
      ~name:(Global_tensor.name x ^ "_msel")
  in
  let count = ref 0 in
  let body ctx =
    for i = 0 to n - 1 do
      let m = Scalar_unit.gm_read ctx mask i in
      Scalar_unit.ops ctx ~count:2;
      if (not (Block.functional ctx)) && i land 1 = 0 then
        (* Cost-only: charge the expected half of the value accesses. *)
        ignore (Scalar_unit.gm_read ctx x i)
      else if Block.functional ctx && m <> 0.0 then begin
        let v = Scalar_unit.gm_read ctx x i in
        Scalar_unit.gm_write ctx y !count v;
        incr count
      end
    done
  in
  let stats = Launch.run ~name:"torch_masked_select" device ~blocks:1 body in
  (y, !count, stats)

(* The torch.sort baseline: a bitonic network on the vector cores.
   Stages with stride >= tile are full read-modify-write passes over
   global memory (two strided tiles, vector Min/Max, write back).
   For each outer size k, all remaining sub-stages with stride < tile
   are fused into a single pass per tile: the tile is loaded once and
   the in-UB compare-exchange network runs on generic (unspecialised)
   vector code — modelled at [local_substage_instrs] region-sized
   vector instructions per sub-stage, which is what makes the stock
   operator lose to the radix sort at large input sizes while still
   winning below ~0.5M elements where the radix pass overheads
   dominate. *)

let local_substage_instrs = 20

(* Direction of the bitonic segment containing [base]: ascending when
   [base land k = 0]. *)
let stage_dir ~k base = base land k = 0

(* One global stage (k, d) with d >= tile: lows and highs live in
   distinct tiles; within any tile the direction is constant. *)
let bitonic_global_stage ~x ~n ~k ~d ~tile ctx =
  let blocks = Block.num_blocks ctx in
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let dt = Global_tensor.dtype x in
  let schedule = Scan.Scan_core.current_schedule () in
  (* The low/high operand tiles are staged ahead under the pipeline
     walker, so they ping-pong; min/max results are consumed by the
     synchronous stores in the same item. *)
  let lo_t =
    Array.init vpc (fun v ->
        Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) dt tile))
  in
  let hi_t =
    Array.init vpc (fun v ->
        Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) dt tile))
  in
  let mn_t = Array.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) dt tile) in
  let mx_t = Array.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) dt tile) in
  let items = ref [] in
  let seg = ref 0 in
  while !seg < n do
    let toff = ref 0 in
    while !toff < d do
      items := (!seg + !toff, !seg + !toff + d) :: !items;
      toff := !toff + tile
    done;
    seg := !seg + (2 * d)
  done;
  let items = Array.of_list (List.rev !items) in
  let mine = ref [] in
  Array.iteri (fun j it -> if j mod blocks = i then mine := it :: !mine) items;
  let mine = Array.of_list (List.rev !mine) in
  (* All compare-exchange pairs of one stage are disjoint, so
     prefetching item [t+1]'s operands before item [t]'s writes land
     reads the same values the serial order would. *)
  for v = 0 to vpc - 1 do
    let mine_v = ref [] in
    Array.iteri
      (fun j it -> if j mod vpc = v then mine_v := it :: !mine_v)
      mine;
    let mine_v = Array.of_list (List.rev !mine_v) in
    if Array.length mine_v > 0 then
      Scan.Scan_core.pipeline ctx ~schedule ~in_engine:(Engine.Vec_mte_in v)
        ~n:(Array.length mine_v)
        ~load:(fun ~slot t ->
          let off_lo, off_hi = mine_v.(t) in
          let len = min tile (n - off_lo) in
          Scan.Scan_core.stage_in ctx ~schedule
            ~engine:(Engine.Vec_mte_in v) ~src:x ~src_off:off_lo
            ~dst:lo_t.(v).(slot) ~len ();
          Scan.Scan_core.stage_in ctx ~schedule
            ~engine:(Engine.Vec_mte_in v) ~src:x ~src_off:off_hi
            ~dst:hi_t.(v).(slot) ~len ())
        ~work:(fun ~slot t ->
          let off_lo, off_hi = mine_v.(t) in
          let len = min tile (n - off_lo) in
          let up = stage_dir ~k off_lo in
          Vec.binop ctx ~vec:v Vec.Min ~src0:lo_t.(v).(slot)
            ~src1:hi_t.(v).(slot) ~dst:(mn_t.(v)) ~len ();
          Vec.binop ctx ~vec:v Vec.Max ~src0:lo_t.(v).(slot)
            ~src1:hi_t.(v).(slot) ~dst:(mx_t.(v)) ~len ();
          let first, second =
            if up then (mn_t.(v), mx_t.(v)) else (mx_t.(v), mn_t.(v))
          in
          Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:first ~dst:x
            ~dst_off:off_lo ~len ();
          Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:second ~dst:x
            ~dst_off:off_hi ~len ())
        ()
  done

(* Host-side compare-exchange of all sub-stages [d0 .. 1] of outer size
   [k] inside one UB tile starting at global offset [base]. Semantics
   of the generic vector code the cost is charged for. *)
let local_network buf ~base ~len ~k ~d0 =
  let d = ref d0 in
  while !d >= 1 do
    for i = 0 to len - 1 do
      let j = i lxor !d in
      if j > i && j < len then begin
        let up = stage_dir ~k (base + i) in
        let a = Ascend.Host_buffer.get buf i
        and b = Ascend.Host_buffer.get buf j in
        if (up && a > b) || ((not up) && a < b) then begin
          Ascend.Host_buffer.set buf i b;
          Ascend.Host_buffer.set buf j a
        end
      end
    done;
    d := !d / 2
  done

(* Fused pass: for outer size k, runs every sub-stage with stride
   d0 = min (k/2) (tile/2) down to 1 over each tile in one load/store. *)
let bitonic_fused_stage ~x ~n ~k ~tile ctx =
  let blocks = Block.num_blocks ctx in
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let dt = Global_tensor.dtype x in
  let schedule = Scan.Scan_core.current_schedule () in
  let tiles =
    Array.init vpc (fun v ->
        Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) dt tile))
  in
  let ntiles = (n + tile - 1) / tile in
  let mine = ref [] in
  for t = ntiles - 1 downto 0 do
    if t mod blocks = i then mine := t :: !mine
  done;
  let mine = Array.of_list !mine in
  let d0 = min (k / 2) (tile / 2) in
  let substages =
    let rec count d acc = if d < 1 then acc else count (d / 2) (acc + 1) in
    count d0 0
  in
  let cm = Block.cost ctx in
  (* Tiles are disjoint, so prefetching the next tile under the walker
     never observes an in-flight write-back. *)
  for v = 0 to vpc - 1 do
    let mine_v = ref [] in
    Array.iteri (fun j t -> if j mod vpc = v then mine_v := t :: !mine_v) mine;
    let mine_v = Array.of_list (List.rev !mine_v) in
    if Array.length mine_v > 0 then
      Scan.Scan_core.pipeline ctx ~schedule ~in_engine:(Engine.Vec_mte_in v)
        ~n:(Array.length mine_v)
        ~load:(fun ~slot j ->
          let t = mine_v.(j) in
          let off = t * tile in
          let len = min tile (n - off) in
          Scan.Scan_core.stage_in ctx ~schedule
            ~engine:(Engine.Vec_mte_in v) ~src:x ~src_off:off
            ~dst:tiles.(v).(slot) ~len ())
        ~work:(fun ~slot j ->
          let t = mine_v.(j) in
          let off = t * tile in
          let len = min tile (n - off) in
          (* Generic vector code for the in-tile network. *)
          Block.charge ~op:"scan_network" ctx (Engine.Vec v)
            (float_of_int (local_substage_instrs * substages)
            *. Cost_model.vec_op_cycles cm
                 ~bytes:(len * Dtype.size_bytes dt));
          if Block.functional ctx then begin
            Local_tensor.touch tiles.(v).(slot);
            local_network
              (Local_tensor.buffer tiles.(v).(slot))
              ~base:off ~len ~k ~d0
          end;
          Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v)
            ~src:tiles.(v).(slot) ~dst:x ~dst_off:off ~len ())
        ()
  done

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let sort ?(descending = false) device x =
  let n = Global_tensor.length x in
  if not (is_power_of_two n) then
    invalid_arg "Baseline.sort: length must be a power of two";
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Baseline.sort: input must be f16";
  let y, clone_stats = clone device x in
  let tile = ub_tile in
  let phases = ref [] in
  let k = ref 2 in
  while !k <= n do
    let kk = !k in
    let d = ref (!k / 2) in
    while !d >= tile do
      let dd = !d in
      phases := bitonic_global_stage ~x:y ~n ~k:kk ~d:dd ~tile :: !phases;
      d := !d / 2
    done;
    (* All remaining sub-stages (stride < tile) fuse into one pass. *)
    phases := bitonic_fused_stage ~x:y ~n ~k:kk ~tile :: !phases;
    k := !k * 2
  done;
  let blocks = Scheduler.blocks (Scheduler.plan device ~n) in
  let stats =
    Launch.run_phases ~name:"torch_sort" device ~blocks (List.rev !phases)
  in
  (* Descending order: reverse is folded into the last pass on real
     hardware; modelled as one extra streaming pass. *)
  let y, stats =
    if descending then begin
      let rev =
        Device.alloc device Dtype.F16 n ~name:(Global_tensor.name x ^ "_rev")
      in
      let rstats =
        Map_kernel.run ~name:"torch_sort_reverse" device ~inputs:[ y ]
          ~output:rev
          ~f:(fun ctx ~vec ~ins ~out ~scratch:_ ~len ->
            match ins with
            | [ src ] -> Vec.copy ctx ~vec ~src ~dst:out ~len ()
            | _ -> assert false)
      in
      (* The in-tile copy above charges the pass; the global reversal
         itself is a strided addressing mode of the MTE writes. *)
      if Device.functional device then begin
        for i = 0 to n - 1 do
          Global_tensor.set rev i (Global_tensor.get y (n - 1 - i))
        done
      end;
      (rev, Stats.combine ~name:"torch_sort" [ clone_stats; stats; rstats ])
    end
    else (y, Stats.combine ~name:"torch_sort" [ clone_stats; stats ])
  in
  (y, stats)

(* Streaming top-k: sort each tile with the vector-sort instructions,
   keep the k best, and merge into a running candidate buffer. *)
let topk device x ~k =
  if not (Device.functional device) then
    invalid_arg "Baseline.topk: functional mode only";
  let n = Global_tensor.length x in
  if k <= 0 || k > 4096 || k > n then
    invalid_arg "Baseline.topk: k out of range (1..4096, <= n)";
  let dt = Global_tensor.dtype x in
  let out = Device.alloc device dt k ~name:(Global_tensor.name x ^ "_topk") in
  let blocks = Scheduler.blocks (Scheduler.plan device ~n) in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let nvec = blocks * vpc in
  let vchunk = Scan.Kernel_util.ceil_div n nvec in
  (* Per-vector-core candidates land in GM; a final single-core pass
     sorts the (nvec * k)-element candidate list. *)
  let cand = Device.alloc device dt (nvec * k) ~name:"topk_cand" in
  let phase1 ctx =
    let i = Block.idx ctx in
    let schedule = Scan.Scan_core.current_schedule () in
    let tiles =
      Array.init vpc (fun v ->
          Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) dt ub_tile))
    in
    let accs = Array.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) dt (2 * k)) in
    for v = 0 to vpc - 1 do
      let lo = ((i * vpc) + v) * vchunk in
      let hi = min n (lo + vchunk) in
      if hi > lo then begin
        Vec.dup ctx ~vec:v ~dst:(accs.(v)) ~scalar:neg_infinity ~len:(2 * k) ();
        (* The running-candidate merge is a serial chain through
           [accs.(v)]; only the tile loads ping-pong. *)
        Scan.Scan_core.pipeline_tiles ctx ~schedule
          ~in_engine:(Engine.Vec_mte_in v) ~tile:ub_tile ~n:(hi - lo)
          ~load:(fun ~slot ~off ~len ->
            Scan.Scan_core.stage_in ctx ~schedule
              ~engine:(Engine.Vec_mte_in v) ~src:x ~src_off:(lo + off)
              ~dst:tiles.(v).(slot) ~len ())
          ~work:(fun ~slot ~off:_ ~len ->
            Vec.sort_region ctx ~vec:v ~descending:true ~src:tiles.(v).(slot)
              ~dst:tiles.(v).(slot) ~len ();
            (* Merge the tile's top-k with the running candidates. *)
            Vec.copy ctx ~vec:v ~src:tiles.(v).(slot) ~dst:(accs.(v))
              ~dst_off:k ~len:(min k len) ();
            Vec.sort_region ctx ~vec:v ~descending:true ~src:(accs.(v))
              ~dst:(accs.(v)) ~len:(2 * k) ())
          ();
        let kidx = (i * vpc) + v in
        Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:(accs.(v))
          ~dst:cand ~dst_off:(kidx * k) ~len:k ()
      end
    done
  in
  let phase2 ctx =
    if Block.idx ctx = 0 then begin
      (* Sequentially merge the per-vector-core candidate lists into a
         single running top-k buffer on one vector core. *)
      let buf = Block.alloc ctx (Mem_kind.Ub 0) dt (2 * k) in
      Vec.dup ctx ~dst:buf ~scalar:neg_infinity ~len:(2 * k) ();
      for g = 0 to nvec - 1 do
        Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:cand
          ~src_off:(g * k) ~dst:buf ~dst_off:k ~len:k ();
        Vec.sort_region ctx ~descending:true ~src:buf ~dst:buf ~len:(2 * k) ()
      done;
      Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:buf ~dst:out ~len:k ()
    end
  in
  let stats =
    Launch.run_phases ~name:"torch_topk" device ~blocks [ phase1; phase2 ]
  in
  (out, stats)

let max_multinomial_support = 1 lsl 24

(* Single-core cumulative sum plus scalar binary search, with the stock
   operator's 2^24 support limit. *)
let multinomial device ~weights ~theta =
  let n = Global_tensor.length weights in
  if n > max_multinomial_support then
    invalid_arg
      (Printf.sprintf "Baseline.multinomial: support %d exceeds 2^24" n);
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Baseline.multinomial: theta out of [0, 1)";
  let cdf, scan_stats = cumsum device weights in
  let sample = ref 0 in
  let body ctx =
    (* log2 n scalar probes of the cdf. *)
    let steps = int_of_float (Float.ceil (Float.log2 (float_of_int (max 2 n)))) in
    if Block.functional ctx then begin
      let total = Global_tensor.get cdf (n - 1) in
      let target = theta *. total in
      let lo = ref 0 and hi = ref (n - 1) in
      for _ = 1 to steps do
        if !lo < !hi then begin
          let mid = (!lo + !hi) / 2 in
          let v = Scalar_unit.gm_read ctx cdf mid in
          if v <= target then lo := mid + 1 else hi := mid
        end
        else ignore (Scalar_unit.gm_read ctx cdf !lo)
      done;
      sample := !lo
    end
    else
      for _ = 1 to steps do
        ignore (Scalar_unit.gm_read ctx cdf 0)
      done
  in
  let search_stats = Launch.run ~name:"multinomial_search" device ~blocks:1 body in
  (!sample, Stats.combine ~name:"torch_multinomial" [ scan_stats; search_stats ])
