open Ascend

let tile_elems = 8192

let run ?(name = "map") ?(scratch = []) device ~inputs ~output ~f =
  let n = Global_tensor.length output in
  List.iter
    (fun gt ->
      if Global_tensor.length gt <> n then
        invalid_arg "Map_kernel.run: input/output length mismatch")
    inputs;
  if n = 0 then invalid_arg "Map_kernel.run: empty tensors";
  let blocks = Scheduler.blocks (Scheduler.plan device ~n) in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let vchunk = Scan.Kernel_util.ceil_div n (blocks * vpc) in
  let body ctx =
    let i = Block.idx ctx in
    let schedule = Scan.Scan_core.current_schedule () in
    let alloc v dt = Block.alloc ctx (Mem_kind.Ub v) dt tile_elems in
    (* Input tiles ping-pong under the walker; the output and scratch
       tiles are produced and stored within one item, so one of each
       suffices. *)
    let per_vec =
      Array.init vpc (fun v ->
          let ins =
            Array.init 2 (fun _ ->
                List.map (fun gt -> alloc v (Global_tensor.dtype gt)) inputs)
          in
          let out = alloc v (Global_tensor.dtype output) in
          let scr = List.map (alloc v) scratch in
          (ins, out, scr))
    in
    for v = 0 to vpc - 1 do
      let lo = ((i * vpc) + v) * vchunk in
      let hi = min n (lo + vchunk) in
      if hi > lo then
        Scan.Scan_core.pipeline_tiles ctx ~schedule
          ~in_engine:(Engine.Vec_mte_in v) ~tile:tile_elems ~n:(hi - lo)
          ~load:(fun ~slot ~off ~len ->
            let ins, _, _ = per_vec.(v) in
            List.iter2
              (fun gt lt ->
                Scan.Scan_core.stage_in ctx ~schedule
                  ~engine:(Engine.Vec_mte_in v) ~src:gt ~src_off:(lo + off)
                  ~dst:lt ~len ())
              inputs ins.(slot))
          ~work:(fun ~slot ~off ~len ->
            let ins, out, scr = per_vec.(v) in
            f ctx ~vec:v ~ins:ins.(slot) ~out ~scratch:scr ~len;
            Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:out
              ~dst:output ~dst_off:(lo + off) ~len ())
          ()
    done
  in
  Launch.run ~name device ~blocks body
