open Ascend

let tile_elems = 8192

let run ?(name = "map") ?(scratch = []) device ~inputs ~output ~f =
  let n = Global_tensor.length output in
  List.iter
    (fun gt ->
      if Global_tensor.length gt <> n then
        invalid_arg "Map_kernel.run: input/output length mismatch")
    inputs;
  if n = 0 then invalid_arg "Map_kernel.run: empty tensors";
  let blocks = Scheduler.blocks (Scheduler.plan device ~n) in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let vchunk = Scan.Kernel_util.ceil_div n (blocks * vpc) in
  let body ctx =
    let i = Block.idx ctx in
    let alloc v dt = Block.alloc ctx (Mem_kind.Ub v) dt tile_elems in
    let per_vec =
      Array.init vpc (fun v ->
          let ins =
            List.map (fun gt -> alloc v (Global_tensor.dtype gt)) inputs
          in
          let out = alloc v (Global_tensor.dtype output) in
          let scr = List.map (alloc v) scratch in
          (ins, out, scr))
    in
    let ranges =
      Array.init vpc (fun v ->
          let lo = ((i * vpc) + v) * vchunk in
          (lo, min n (lo + vchunk)))
    in
    let max_tiles = Scan.Kernel_util.ceil_div vchunk tile_elems in
    if Array.exists (fun (lo, hi) -> hi > lo) ranges then
      Block.pipelined ctx ~iters:(max 1 max_tiles) (fun () ->
          for t = 0 to max_tiles - 1 do
            for v = 0 to vpc - 1 do
              let lo, hi = ranges.(v) in
              let off = lo + (t * tile_elems) in
              if off < hi then begin
                let len = min tile_elems (hi - off) in
                let ins, out, scr = per_vec.(v) in
                List.iter2
                  (fun gt lt ->
                    Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:gt
                      ~src_off:off ~dst:lt ~len ())
                  inputs ins;
                f ctx ~vec:v ~ins ~out ~scratch:scr ~len;
                Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:out
                  ~dst:output ~dst_off:off ~len ()
              end
            done
          done)
  in
  Launch.run ~name device ~blocks body
