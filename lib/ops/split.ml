open Ascend

type result = {
  values : Global_tensor.t;
  indices : Global_tensor.t option;
  true_count : int;
  stats : Stats.t;
}

let ub_tile = 8192

(* Per-vector-core buffer set for the gather phase. The GatherMask
   operand tiles ([xt]/[ft]) ping-pong under the pipeline walker; the
   remaining tiles are staged or produced within one item (UB cannot
   hold a second copy of all five input tiles at once). *)
type bufs = {
  xt : Local_tensor.t array;
  ft : Local_tensor.t array;
  nft : Local_tensor.t;
  et : Local_tensor.t;
  gbuf : Local_tensor.t;
  it : Local_tensor.t option;
  gi : Local_tensor.t option;
}

let alloc_bufs ctx ~v ~xdt ~with_indices =
  let ub k dt = Block.alloc ctx (Mem_kind.Ub k) dt ub_tile in
  let ub2 k dt = Array.init 2 (fun _ -> ub k dt) in
  {
    xt = ub2 v xdt;
    ft = ub2 v Dtype.I8;
    nft = ub v Dtype.I8;
    et = ub v Dtype.I32;
    gbuf = ub v xdt;
    it = (if with_indices then Some (ub v Dtype.I32) else None);
    gi = (if with_indices then Some (ub v Dtype.I32) else None);
  }

(* Stage one tile's GatherMask operands into ping-pong slot [slot]. *)
let load_tile ctx ~schedule ~v ~b ~x ~flags ~slot ~off ~len =
  let stage ~src ~dst =
    Scan.Scan_core.stage_in ctx ~schedule ~engine:(Engine.Vec_mte_in v) ~src
      ~src_off:off ~dst ~len ()
  in
  stage ~src:x ~dst:b.xt.(slot);
  stage ~src:flags ~dst:b.ft.(slot)

(* One tile of the gather phase on vector core [v]: two GatherMask
   compactions, written at the offsets dictated by the exclusive scan.
   [x]/[flags] were staged into slot [slot] by [load_tile]; the scan
   tile (and index tile) load synchronously here, single-buffered. *)
let gather_tile ctx ~v ~b ~slot ~e ~indices_in ~z ~zi ~total_true
    ~expected_density ~emit_falses ~off ~len =
  let functional = Block.functional ctx in
  let xt = b.xt.(slot) and ft = b.ft.(slot) and et = b.et in
  let it = b.it in
  Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:e ~src_off:off ~dst:et
    ~len ();
  (* In cost-only mode the per-tile counts come from the expected
     density; floor rounding can overshoot the output end by one
     element, so writes are clamped (traffic error <= 1 element). *)
  let clamp ~dst_off cnt =
    if functional then cnt
    else max 0 (min cnt (Global_tensor.length z - dst_off))
  in
  let base_true =
    let got = Vec.get ctx ~vec:v et 0 in
    if functional then int_of_float got
    else int_of_float (expected_density *. float_of_int off)
  in
  (* True run. *)
  let cnt_true =
    let got = Vec.gather_mask ctx ~vec:v ~src:xt ~mask:ft ~dst:b.gbuf ~len () in
    if functional then got
    else int_of_float (expected_density *. float_of_int len)
  in
  let cnt_true_w = clamp ~dst_off:base_true cnt_true in
  if cnt_true_w > 0 then
    Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:b.gbuf ~dst:z
      ~dst_off:base_true ~len:cnt_true_w ();
  (* False run, at [total_true + #falses before the tile]. *)
  if emit_falses then begin
    Vec.compare_scalar ctx ~vec:v Vec.Eq ~src:ft ~dst:b.nft ~scalar:0.0 ~len ();
    let cnt_false =
      let got = Vec.gather_mask ctx ~vec:v ~src:xt ~mask:b.nft ~dst:b.gbuf ~len () in
      if functional then got else len - cnt_true
    in
    let cnt_false_w = clamp ~dst_off:(total_true + off - base_true) cnt_false in
    if cnt_false_w > 0 then
      Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:b.gbuf ~dst:z
        ~dst_off:(total_true + off - base_true) ~len:cnt_false_w ()
  end;
  (* Source indices, permuted the same way. *)
  match zi, it, b.gi with
  | Some zi, Some it, Some gi ->
      (match indices_in with
      | Some src_idx ->
          Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:src_idx
            ~src_off:off ~dst:it ~len ()
      | None ->
          Vec.arange ctx ~vec:v ~dst:it ~start:(float_of_int off) ~len ());
      let cnt =
        let got = Vec.gather_mask ctx ~vec:v ~src:it ~mask:ft ~dst:gi ~len () in
        if functional then got else cnt_true
      in
      let cnt_w = clamp ~dst_off:base_true cnt in
      if cnt_w > 0 then
        Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:gi ~dst:zi
          ~dst_off:base_true ~len:cnt_w ();
      if emit_falses then begin
        let cntf =
          let got = Vec.gather_mask ctx ~vec:v ~src:it ~mask:b.nft ~dst:gi ~len () in
          if functional then got else len - cnt
        in
        let cntf_w = clamp ~dst_off:(total_true + off - base_true) cntf in
        if cntf_w > 0 then
          Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:gi ~dst:zi
            ~dst_off:(total_true + off - base_true) ~len:cntf_w ()
      end
  | _, _, _ -> ()

let run ?(s = 128) ?(expected_density = 0.5) ?(with_indices = false)
    ?indices_in ?(emit_falses = true) device ~x ~flags () =
  let n = Global_tensor.length x in
  (match Global_tensor.dtype x with
  | Dtype.F16 | Dtype.I16 | Dtype.U16 -> ()
  | d ->
      invalid_arg
        (Printf.sprintf "Split.run: x must be a 16-bit dtype (got %s)"
           (Dtype.to_string d)));
  if not (Dtype.equal (Global_tensor.dtype flags) Dtype.I8) then
    invalid_arg "Split.run: flags must be i8";
  if Global_tensor.length flags <> n then
    invalid_arg "Split.run: flags length mismatch";
  (match indices_in with
  | Some ix ->
      if Global_tensor.length ix <> n
         || not (Dtype.equal (Global_tensor.dtype ix) Dtype.I32)
      then invalid_arg "Split.run: indices_in must be i32 of the same length"
  | None -> ());
  if n = 0 then invalid_arg "Split.run: empty input";
  let name = Global_tensor.name x in
  (* Exclusive scan of the flags: e.(i) = #true flags before i. *)
  let e, scan_stats = Scan.Mcscan.run ~s ~exclusive:true device flags in
  let total_true =
    if Device.functional device then
      int_of_float (Global_tensor.get e (n - 1) +. Global_tensor.get flags (n - 1))
    else int_of_float (expected_density *. float_of_int n)
  in
  let z = Device.alloc device (Global_tensor.dtype x) n ~name:(name ^ "_split") in
  let zi =
    if with_indices then
      Some (Device.alloc device Dtype.I32 n ~name:(name ^ "_split_idx"))
    else None
  in
  let blocks = Scheduler.blocks (Scheduler.plan device ~n) in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let nvec = blocks * vpc in
  let vchunk = Scan.Kernel_util.ceil_div n nvec in
  let body ctx =
    let i = Block.idx ctx in
    (* Hazard annotation: blocks write z/zi at scan-computed offsets
       whose bounding spans interleave, but the exclusive scan proves
       the actual element ranges disjoint. *)
    Block.assume_disjoint_writes ctx z
      ~reason:"split gather: scan-computed scatter offsets are disjoint";
    (match zi with
    | Some zi ->
        Block.assume_disjoint_writes ctx zi
          ~reason:"split gather: scan-computed scatter offsets are disjoint"
    | None -> ());
    let xdt = Global_tensor.dtype x in
    let schedule = Scan.Scan_core.current_schedule () in
    let bufs = Array.init vpc (fun v -> alloc_bufs ctx ~v ~xdt ~with_indices) in
    (* Each vector core walks its sub-block under the pipeline walker:
       the next tile's x/flags loads overlap the current tile's
       GatherMask compactions and scatter stores. *)
    for v = 0 to vpc - 1 do
      let vlo = ((i * vpc) + v) * vchunk in
      let vhi = min n (vlo + vchunk) in
      if vhi > vlo then
        Scan.Scan_core.pipeline_tiles ctx ~schedule
          ~in_engine:(Engine.Vec_mte_in v) ~tile:ub_tile ~n:(vhi - vlo)
          ~load:(fun ~slot ~off ~len ->
            load_tile ctx ~schedule ~v ~b:bufs.(v) ~x ~flags ~slot
              ~off:(vlo + off) ~len)
          ~work:(fun ~slot ~off ~len ->
            gather_tile ctx ~v ~b:bufs.(v) ~slot ~e ~indices_in ~z ~zi
              ~total_true ~expected_density ~emit_falses ~off:(vlo + off)
              ~len)
          ()
    done
  in
  let gather_stats = Launch.run ~name:"split_gather" device ~blocks body in
  {
    values = z;
    indices = zi;
    true_count = (if Device.functional device then total_true else 0);
    stats = Stats.combine ~name:"split_ind" [ scan_stats; gather_stats ];
  }
