(* Flat Bigarray storage: one float64 payload word per element, with
   the declared dtype enforced on every write. Bigarray data lives
   outside the OCaml heap, so the GC never scans simulator tensors
   (which matters under domain parallelism) and same-dtype [blit] is a
   plain memmove. The scalar [get]/[set] API is kept as a compatibility
   shim; hot paths go through the bulk kernels below, which validate
   ranges once and run dtype-specialised unsafe loops — the per-element
   closure indirection and bounds checks of the historical
   [float array] representation are gone. *)

module BA1 = Bigarray.Array1

type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) BA1.t
type t = { dtype : Dtype.t; data : ba; mutable retired : bool }

(* Float rounding, local to this module. The classic (non-flambda)
   native backend boxes every float crossing a non-inlined call
   boundary, and the dev profile compiles with -opaque, which disables
   cross-module inlining altogether — a bulk kernel calling
   [Fp16.round] per element would allocate 4 words per element and
   keep the GC busy. The fp16 encode trick is therefore replicated
   here as an [@inline] local (pinned bit-for-bit to [Fp16.of_float]
   by the exhaustive suites in test_fp16.ml / test_bulk.ml); the
   decode table is shared with [Fp16]. *)

let f16_decode_table = Fp16.to_float_table

let[@inline] f16_encode f =
  let b = Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF in
  let sign = (b lsr 16) land 0x8000 in
  let a = b land 0x7FFFFFFF in
  if a >= 0x47800000 then
    if a > 0x7F800000 then sign lor 0x7E00 else sign lor 0x7C00
  else if a >= 0x38800000 then
    let odd = (a lsr 13) land 1 in
    let a = a + 0xFFF + odd - (112 lsl 23) in
    sign lor (a lsr 13)
  else if a >= 0x33000000 then
    let m = a land 0x7FFFFF lor 0x800000 in
    let shift = 126 - (a lsr 23) in
    let base = m lsr shift in
    let rest = m land ((1 lsl shift) - 1) in
    let half = 1 lsl (shift - 1) in
    if rest > half || (rest = half && base land 1 = 1) then sign lor (base + 1)
    else sign lor base
  else sign

let[@inline] round_f16 f = Array.unsafe_get f16_decode_table (f16_encode f)
let[@inline] round_f32 f =
  (* NaN payloads pass through untouched, exactly as [Dtype.round_f32]:
     the f32 bit roundtrip would truncate them, which the equivalence
     suite in test_bulk.ml observes bit for bit. *)
  if Float.is_nan f then f else Int32.float_of_bits (Int32.bits_of_float f)

(* Storage pool. Simulated scratchpads are allocated per block per
   launch — without reuse, a 20-block McScan launch maps, faults in and
   unmaps ~10 MB of 128 KB Bigarrays per run, and the GC's custom-block
   accounting paces dozens of major slices per run to reclaim them.
   Retired payloads are kept on a size-keyed free list (capped; excess
   falls back to the GC) and handed back out by [create], zero-filled,
   so steady-state launches allocate no storage at all. The pool is
   shared across domains (blocks allocate and finish concurrently under
   domain-parallel launches), hence the mutex. *)
let pool : (int, ba list ref) Hashtbl.t = Hashtbl.create 16
let pool_mutex = Mutex.create ()
let pool_bytes = ref 0
let pool_cap_bytes = 64 * 1024 * 1024

let pool_take n =
  Mutex.lock pool_mutex;
  let r =
    match Hashtbl.find_opt pool n with
    | Some ({ contents = ba :: rest } as cell) ->
        cell := rest;
        pool_bytes := !pool_bytes - (n * 8);
        Some ba
    | _ -> None
  in
  Mutex.unlock pool_mutex;
  r

let pool_put (data : ba) =
  let n = BA1.dim data in
  let bytes = n * 8 in
  if n > 0 then begin
    Mutex.lock pool_mutex;
    if !pool_bytes + bytes <= pool_cap_bytes then begin
      (match Hashtbl.find_opt pool n with
      | Some cell -> cell := data :: !cell
      | None -> Hashtbl.add pool n (ref [ data ]));
      pool_bytes := !pool_bytes + bytes
    end;
    Mutex.unlock pool_mutex
  end

let create dtype n =
  if n < 0 then invalid_arg "Host_buffer.create: negative length";
  let data =
    match pool_take n with
    | Some data -> data
    | None -> BA1.create Bigarray.float64 Bigarray.c_layout n
  in
  BA1.fill data 0.0;
  (* Array1.create does not zero; pooled payloads hold stale data *)
  { dtype; data; retired = false }

let retire t =
  if not t.retired then begin
    t.retired <- true;
    pool_put t.data
  end

let dtype t = t.dtype
let data t = t.data
let length t = BA1.dim t.data
let size_bytes t = length t * Dtype.size_bytes t.dtype

(* Bounds-checked Array1 access raises the same
   [Invalid_argument "index out of bounds"] the historical array
   representation did. *)
let get t i = BA1.get t.data i
let set t i v = BA1.set t.data i (Dtype.round t.dtype v)
let set_cast t i ~from v = BA1.set t.data i (Dtype.cast ~from ~into:t.dtype v)

(* Unsafe accessors for validated inner loops (Cube's structured
   matmul evaluators). [unsafe_set] still rounds through the dtype. *)
let[@inline] unsafe_get t i = BA1.unsafe_get t.data i
let[@inline] unsafe_set t i v = BA1.unsafe_set t.data i (Dtype.round t.dtype v)

let check_range name t off len =
  if len < 0 || off < 0 || off + len > length t then
    invalid_arg (Printf.sprintf "Host_buffer.%s: range out of bounds" name)

let fill t v =
  let v = Dtype.round t.dtype v in
  BA1.fill t.data v

let fill_range t ~off ~len v =
  check_range "fill_range" t off len;
  if len > 0 then BA1.fill (BA1.sub t.data off len) (Dtype.round t.dtype v)

(* Bulk element conversion with the dtype dispatch hoisted out of the
   loop; ranges must already be validated. Shared by the converting
   [blit] path and [of_array]. The F16/F32 arms call the codec directly
   so the rounding inlines instead of re-dispatching per element. *)
let convert_into ~from ~(dst : t) ~(src : ba) ~src_off ~dst_off ~len =
  let d = dst.data in
  match from, dst.dtype with
  | (Dtype.F16 | Dtype.F32), Dtype.F16 | Dtype.I8, Dtype.F16 ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (dst_off + i)
          (round_f16 (BA1.unsafe_get src (src_off + i)))
      done
  | (Dtype.F16 | Dtype.F32), Dtype.F32 | Dtype.I8, Dtype.F32 ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (dst_off + i)
          (round_f32 (BA1.unsafe_get src (src_off + i)))
      done
  | _, _ ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (dst_off + i)
          (Dtype.cast ~from ~into:dst.dtype (BA1.unsafe_get src (src_off + i)))
      done

let blit ~src ~src_off ~dst ~dst_off ~len =
  if
    len < 0 || src_off < 0 || dst_off < 0
    || src_off + len > length src
    || dst_off + len > length dst
  then invalid_arg "Host_buffer.blit: range out of bounds";
  if len > 0 then
    if Dtype.equal src.dtype dst.dtype then
      (* Stored values are already canonical for the dtype: move them
         wholesale (memmove; overlap-safe), no per-element rounding. *)
      BA1.blit (BA1.sub src.data src_off len) (BA1.sub dst.data dst_off len)
    else
      convert_into ~from:src.dtype ~dst ~src:src.data ~src_off ~dst_off ~len

let of_array dt a =
  let n = Array.length a in
  let t = create dt n in
  let d = t.data in
  (match dt with
  | Dtype.F16 ->
      for i = 0 to n - 1 do
        BA1.unsafe_set d i (round_f16 (Array.unsafe_get a i))
      done
  | Dtype.F32 ->
      for i = 0 to n - 1 do
        BA1.unsafe_set d i (round_f32 (Array.unsafe_get a i))
      done
  | dt ->
      for i = 0 to n - 1 do
        BA1.unsafe_set d i (Dtype.round dt (Array.unsafe_get a i))
      done);
  t

let load_array t a =
  let n = Array.length a in
  check_range "load_array" t 0 n;
  let d = t.data in
  match t.dtype with
  | Dtype.F16 ->
      for i = 0 to n - 1 do
        BA1.unsafe_set d i (round_f16 (Array.unsafe_get a i))
      done
  | Dtype.F32 ->
      for i = 0 to n - 1 do
        BA1.unsafe_set d i (round_f32 (Array.unsafe_get a i))
      done
  | dt ->
      for i = 0 to n - 1 do
        BA1.unsafe_set d i (Dtype.round dt (Array.unsafe_get a i))
      done

let to_array t = Array.init (length t) (fun i -> BA1.unsafe_get t.data i)

let copy t =
  let n = length t in
  let data = BA1.create Bigarray.float64 Bigarray.c_layout n in
  BA1.blit t.data data;
  { dtype = t.dtype; data; retired = false }

(* ------------------------------------------------------------------ *)
(* Bulk kernels. Each validates its ranges once, hoists the dtype and
   operator dispatch out of the loop, and preserves the exact operand
   order and rounding of the scalar shim it replaces (NaN payloads and
   float non-associativity make the order observable bit for bit). *)

type binop = Add | Sub | Mul | Max | Min
type scalar_op = Adds | Muls | Maxs | Mins

(* dst.(i) <- round (src0.(i) op src1.(i)); src0 is the left operand,
   as in [Vec.binop]'s historical [fun_of_binop] closures. *)
let map2_binop op ~src0 ~src0_off ~src1 ~src1_off ~dst ~dst_off ~len =
  check_range "map2_binop" src0 src0_off len;
  check_range "map2_binop" src1 src1_off len;
  check_range "map2_binop" dst dst_off len;
  let a = src0.data and b = src1.data and d = dst.data in
  let finish_generic dt f =
    for i = 0 to len - 1 do
      BA1.unsafe_set d (dst_off + i)
        (Dtype.round dt
           (f (BA1.unsafe_get a (src0_off + i)) (BA1.unsafe_get b (src1_off + i))))
    done
  in
  match op, dst.dtype with
  | Add, Dtype.F16 ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (dst_off + i)
          (round_f16
             (BA1.unsafe_get a (src0_off + i) +. BA1.unsafe_get b (src1_off + i)))
      done
  | Add, Dtype.F32 ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (dst_off + i)
          (round_f32
             (BA1.unsafe_get a (src0_off + i) +. BA1.unsafe_get b (src1_off + i)))
      done
  | Max, Dtype.F16 ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (dst_off + i)
          (round_f16
             (Float.max
                (BA1.unsafe_get a (src0_off + i))
                (BA1.unsafe_get b (src1_off + i))))
      done
  | Max, Dtype.F32 ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (dst_off + i)
          (round_f32
             (Float.max
                (BA1.unsafe_get a (src0_off + i))
                (BA1.unsafe_get b (src1_off + i))))
      done
  | Add, dt -> finish_generic dt ( +. )
  | Sub, dt -> finish_generic dt ( -. )
  | Mul, dt -> finish_generic dt ( *. )
  | Max, dt -> finish_generic dt Float.max
  | Min, dt -> finish_generic dt Float.min

(* dst.(i) <- round (src.(i) op scalar), with the operand order of the
   historical [Vec] closures: [adds]/[muls] put the element first,
   [maxs]/[mins] partially applied the scalar first. *)
let map1_scalar op ~src ~src_off ~dst ~dst_off ~scalar ~len =
  check_range "map1_scalar" src src_off len;
  check_range "map1_scalar" dst dst_off len;
  let s = src.data and d = dst.data in
  let finish_generic dt f =
    for i = 0 to len - 1 do
      BA1.unsafe_set d (dst_off + i)
        (Dtype.round dt (f (BA1.unsafe_get s (src_off + i))))
    done
  in
  match op, dst.dtype with
  | Adds, Dtype.F16 ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (dst_off + i)
          (round_f16 (BA1.unsafe_get s (src_off + i) +. scalar))
      done
  | Adds, Dtype.F32 ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (dst_off + i)
          (round_f32 (BA1.unsafe_get s (src_off + i) +. scalar))
      done
  | Maxs, Dtype.F16 ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (dst_off + i)
          (round_f16 (Float.max scalar (BA1.unsafe_get s (src_off + i))))
      done
  | Maxs, Dtype.F32 ->
      for i = 0 to len - 1 do
        BA1.unsafe_set d (dst_off + i)
          (round_f32 (Float.max scalar (BA1.unsafe_get s (src_off + i))))
      done
  | Adds, dt -> finish_generic dt (fun v -> v +. scalar)
  | Muls, dt -> finish_generic dt (fun v -> v *. scalar)
  | Maxs, dt -> finish_generic dt (Float.max scalar)
  | Mins, dt -> finish_generic dt (Float.min scalar)

(* Closure fall-backs for the cold element-wise paths (compare, bit
   ops, exp, ...): still one range validation and no per-element
   bounds checks, but the element function stays a closure. *)
let map1_f f ~src ~src_off ~dst ~dst_off ~len =
  check_range "map1_f" src src_off len;
  check_range "map1_f" dst dst_off len;
  let s = src.data and d = dst.data in
  let dt = dst.dtype in
  for i = 0 to len - 1 do
    BA1.unsafe_set d (dst_off + i)
      (Dtype.round dt (f (BA1.unsafe_get s (src_off + i))))
  done

let map2_f f ~src0 ~src0_off ~src1 ~src1_off ~dst ~dst_off ~len =
  check_range "map2_f" src0 src0_off len;
  check_range "map2_f" src1 src1_off len;
  check_range "map2_f" dst dst_off len;
  let a = src0.data and b = src1.data and d = dst.data in
  let dt = dst.dtype in
  for i = 0 to len - 1 do
    BA1.unsafe_set d (dst_off + i)
      (Dtype.round dt
         (f (BA1.unsafe_get a (src0_off + i)) (BA1.unsafe_get b (src1_off + i))))
  done

let select_range ~mask ~mask_off ~src0 ~src0_off ~src1 ~src1_off ~dst ~dst_off
    ~len =
  check_range "select_range" mask mask_off len;
  check_range "select_range" src0 src0_off len;
  check_range "select_range" src1 src1_off len;
  check_range "select_range" dst dst_off len;
  let m = mask.data and a = src0.data and b = src1.data and d = dst.data in
  let dt = dst.dtype in
  for i = 0 to len - 1 do
    let v =
      if BA1.unsafe_get m (mask_off + i) <> 0.0 then
        BA1.unsafe_get a (src0_off + i)
      else BA1.unsafe_get b (src1_off + i)
    in
    BA1.unsafe_set d (dst_off + i) (Dtype.round dt v)
  done

let arange_range t ~off ~start ~len =
  check_range "arange_range" t off len;
  let d = t.data in
  let dt = t.dtype in
  for i = 0 to len - 1 do
    BA1.unsafe_set d (off + i) (Dtype.round dt (start +. float_of_int i))
  done

(* Raw double-accumulator reductions, forward order, no final rounding
   (the caller rounds, matching the historical [Vec] reductions). *)
let reduce_add t ~off ~len =
  check_range "reduce_add" t off len;
  let d = t.data in
  let acc = ref 0.0 in
  for i = off to off + len - 1 do
    acc := !acc +. BA1.unsafe_get d i
  done;
  !acc

let reduce_max t ~off ~len =
  check_range "reduce_max" t off len;
  let d = t.data in
  let acc = ref neg_infinity in
  for i = off to off + len - 1 do
    acc := Float.max !acc (BA1.unsafe_get d i)
  done;
  !acc

(* Linear inclusive scan rounding through [dst]'s dtype at every step:
   acc <- round (acc + src.(i)), the accumulation order of the
   historical [Vec.cumsum] loop. *)
let scan_accum ~src ~dst ~len =
  check_range "scan_accum" src 0 len;
  check_range "scan_accum" dst 0 len;
  let s = src.data and d = dst.data in
  let acc = ref 0.0 in
  (match dst.dtype with
  | Dtype.F16 ->
      for i = 0 to len - 1 do
        acc := round_f16 (!acc +. BA1.unsafe_get s i);
        BA1.unsafe_set d i !acc
      done
  | Dtype.F32 ->
      for i = 0 to len - 1 do
        acc := round_f32 (!acc +. BA1.unsafe_get s i);
        BA1.unsafe_set d i !acc
      done
  | dt ->
      for i = 0 to len - 1 do
        acc := Dtype.round dt (!acc +. BA1.unsafe_get s i);
        BA1.unsafe_set d i !acc
      done);
  !acc

(* In-place segment-carry propagation: for each row of [seg] elements,
   combine every element with the running carry in the exact
   [map1_scalar] operand order (Add/Mul put the element left, Max/Min
   the carry left) and pick up the row's last stored value as the next
   carry. [seg = len] is one scalar-op sweep; [Scan_core.propagate_rows]
   is the [seg = s] case. Returns the final carry. *)
let scan_segment op t ~off ~len ~seg ~init =
  if seg <= 0 then invalid_arg "Host_buffer.scan_segment: seg must be positive";
  check_range "scan_segment" t off len;
  let d = t.data in
  let dt = t.dtype in
  let carry = ref init in
  let pos = ref 0 in
  while !pos < len do
    let row_len = min seg (len - !pos) in
    let base = off + !pos in
    let c = !carry in
    (match op, dt with
    | Add, Dtype.F16 ->
        for j = base to base + row_len - 1 do
          BA1.unsafe_set d j (round_f16 (BA1.unsafe_get d j +. c))
        done
    | Add, Dtype.F32 ->
        for j = base to base + row_len - 1 do
          BA1.unsafe_set d j (round_f32 (BA1.unsafe_get d j +. c))
        done
    | Add, dt ->
        for j = base to base + row_len - 1 do
          BA1.unsafe_set d j (Dtype.round dt (BA1.unsafe_get d j +. c))
        done
    | Max, dt ->
        for j = base to base + row_len - 1 do
          BA1.unsafe_set d j (Dtype.round dt (Float.max c (BA1.unsafe_get d j)))
        done
    | Min, dt ->
        for j = base to base + row_len - 1 do
          BA1.unsafe_set d j (Dtype.round dt (Float.min c (BA1.unsafe_get d j)))
        done
    | Mul, dt ->
        for j = base to base + row_len - 1 do
          BA1.unsafe_set d j (Dtype.round dt (BA1.unsafe_get d j *. c))
        done
    | Sub, dt ->
        for j = base to base + row_len - 1 do
          BA1.unsafe_set d j (Dtype.round dt (BA1.unsafe_get d j -. c))
        done);
    carry := BA1.unsafe_get d (base + row_len - 1);
    pos := !pos + row_len
  done;
  !carry

let pp fmt t =
  let n = length t in
  let shown = min n 8 in
  Format.fprintf fmt "@[<h>%a[%d] = [" Dtype.pp t.dtype n;
  for i = 0 to shown - 1 do
    if i > 0 then Format.pp_print_string fmt "; ";
    Format.fprintf fmt "%g" (BA1.get t.data i)
  done;
  if shown < n then Format.pp_print_string fmt "; ...";
  Format.pp_print_string fmt "]@]"
