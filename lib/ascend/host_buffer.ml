type t = { dtype : Dtype.t; data : float array }

let create dtype n =
  if n < 0 then invalid_arg "Host_buffer.create: negative length";
  { dtype; data = Array.make n 0.0 }

let dtype t = t.dtype
let length t = Array.length t.data
let size_bytes t = length t * Dtype.size_bytes t.dtype
let get t i = t.data.(i)
let set t i v = t.data.(i) <- Dtype.round t.dtype v
let set_cast t i ~from v = t.data.(i) <- Dtype.cast ~from ~into:t.dtype v

let fill t v =
  let v = Dtype.round t.dtype v in
  Array.fill t.data 0 (Array.length t.data) v

(* Bulk element conversion with the dtype dispatch hoisted out of the
   loop; ranges must already be validated. Shared by the converting
   [blit] path and [of_array]. *)
let convert_into f ~src ~src_off ~dst ~dst_off ~len =
  for i = 0 to len - 1 do
    Array.unsafe_set dst (dst_off + i) (f (Array.unsafe_get src (src_off + i)))
  done

let blit ~src ~src_off ~dst ~dst_off ~len =
  if len < 0 || src_off < 0 || dst_off < 0
     || src_off + len > length src || dst_off + len > length dst
  then invalid_arg "Host_buffer.blit: range out of bounds";
  if Dtype.equal src.dtype dst.dtype then
    (* Stored values are already canonical for the dtype: move them
       wholesale, no per-element rounding. *)
    Array.blit src.data src_off dst.data dst_off len
  else
    convert_into
      (Dtype.caster ~from:src.dtype ~into:dst.dtype)
      ~src:src.data ~src_off ~dst:dst.data ~dst_off ~len

let of_array dtype a =
  let n = Array.length a in
  let t = create dtype n in
  (* Same dispatch-hoisted path as [blit]'s converting branch, instead
     of the historical [set] per element (bounds check + dtype match
     per value). *)
  convert_into (Dtype.rounder dtype) ~src:a ~src_off:0 ~dst:t.data ~dst_off:0
    ~len:n;
  t

let to_array t = Array.copy t.data
let copy t = { dtype = t.dtype; data = Array.copy t.data }

let pp fmt t =
  let n = length t in
  let shown = min n 8 in
  Format.fprintf fmt "@[<h>%a[%d] = [" Dtype.pp t.dtype n;
  for i = 0 to shown - 1 do
    if i > 0 then Format.pp_print_string fmt "; ";
    Format.fprintf fmt "%g" t.data.(i)
  done;
  if shown < n then Format.pp_print_string fmt "; ...";
  Format.pp_print_string fmt "]@]"
