(* Event-timeline execution model. Every engine is a queue with its own
   clock ([avail]); every sub-core program is a lane with a cursor
   ([lanes]). A synchronous charge issues at
   [max lane-cursor engine-clock] and advances both; an asynchronous
   charge (DataCopy on an MTE queue) advances only the engine clock and
   joins the lane again at its [wait_group]. The block's elapsed cycles
   are the makespan over all cursors and clocks. All state is
   block-local, so the schedule — and therefore Stats and traces — is
   bit-identical across host domain counts and pod placements. *)

type section = No_section | Section_serial | Section_overlap

(* One committed async-copy group on an engine queue: everything issued
   since the previous [commit_group]. [g_end] is the completion time
   (max end of the member copies); [g_dsts] the local destination
   tensors, tracked (under a sanitizer) until the group is waited;
   [g_last] the span id of the last member (whose end is [g_end] — the
   queue is in-order), -1 when no trace is armed. *)
type group = { g_end : float; g_dsts : Local_tensor.t list; g_last : int }

type t = {
  device : Device.t;
  idx : int;
  num_blocks : int;
  core : int;
  health : Health.t;
  kill_at : float;  (* seeded kill threshold of [core]; infinity = never *)
  clock0 : float;  (* [core]'s cumulative busy cycles at block start *)
  mutable charged : float;  (* busy cycles charged by this block so far *)
  vec_per_core : int;
  busy_total : float array;
  (* --- event timeline --- *)
  lanes : float array;  (* program cursor per lane (Engine.lane) *)
  avail : float array;  (* per-engine queue clock (end of last issue) *)
  pend_count : int array;  (* async ops issued since last commit, per engine *)
  pend_end : float array;  (* max end among them *)
  pend_dsts : Local_tensor.t list array;  (* their local dsts (sanitizer only) *)
  groups : group Queue.t array;  (* committed, un-waited groups per engine *)
  mutable section : section;  (* legacy [pipelined] lowering *)
  mutable sec_t0 : float;  (* program point at section start *)
  (* --- dependency recording (trace armed only) ---
     Invariants while recording: [last_id.(i)] is the last span issued
     on engine [i] (its end is [avail.(i)]); the max end over
     [lane_src.(l)]'s spans is exactly [lanes.(l)]; the max end over
     [sec_src]'s spans is exactly [sec_t0]. Each contributor carries
     the edge kind of the wait that introduced it, so the edges emitted
     at the next issue both explain the issue time bit-exactly and
     name the synchronisation mechanism. *)
  last_id : int array;  (* last span id per engine; -1 = none *)
  pend_last : int array;  (* last async span since commit, per engine *)
  lane_src : (int * Trace.edge_kind) list array;  (* per lane *)
  mutable sec_src : (int * Trace.edge_kind) list;  (* overlap-section entry *)
  (* --- accounting --- *)
  mutable gm_read : int;
  mutable gm_write : int;
  touched_tbl : (int, int) Hashtbl.t;
  ops_tbl : (string, int) Hashtbl.t;
  allocators : (Mem_kind.t * int ref) list;
  mutable scratch : Local_tensor.t list;  (* for recycling at [finish] *)
  tb : Trace.Block_builder.b option;
}

type result = {
  cycles : float;
  busy : float array;
  gm_read_bytes : int;
  gm_write_bytes : int;
  touched : (int * int) list;
  op_counts : (string * int) list;
  trace : Trace.block_rec option;
}

let make_on ~core ~device ~idx ~num_blocks =
  if num_blocks < 1 then
    invalid_arg
      (Printf.sprintf "Block.make: num_blocks must be >= 1 (got %d)" num_blocks);
  if idx < 0 || idx >= num_blocks then
    invalid_arg
      (Printf.sprintf "Block.make: block index %d out of range [0,%d)" idx
         num_blocks);
  let cm = Device.cost device in
  let health = Device.health device in
  let vec_per_core = cm.Cost_model.vec_per_core in
  let n = Engine.count ~vec_per_core in
  let kinds =
    Mem_kind.L1 :: Mem_kind.L0a :: Mem_kind.L0b :: Mem_kind.L0c
    :: List.init vec_per_core (fun i -> Mem_kind.Ub i)
  in
  {
    device;
    idx;
    num_blocks;
    core;
    health;
    kill_at = Health.kill_threshold health core;
    clock0 = Health.cycles_done health core;
    charged = 0.0;
    vec_per_core;
    busy_total = Array.make n 0.0;
    lanes = Array.make (Engine.lane_count ~vec_per_core) 0.0;
    avail = Array.make n 0.0;
    pend_count = Array.make n 0;
    pend_end = Array.make n 0.0;
    pend_dsts = Array.make n [];
    groups = Array.init n (fun _ -> Queue.create ());
    section = No_section;
    sec_t0 = 0.0;
    last_id = Array.make n (-1);
    pend_last = Array.make n (-1);
    lane_src = Array.make (Engine.lane_count ~vec_per_core) [];
    sec_src = [];
    gm_read = 0;
    gm_write = 0;
    touched_tbl = Hashtbl.create 8;
    ops_tbl = Hashtbl.create 16;
    allocators = List.map (fun k -> (k, ref 0)) kinds;
    scratch = [];
    tb =
      Option.map
        (fun tr -> Trace.block_builder tr ~idx ~core)
        (Device.trace device);
  }

let make ~device ~idx ~num_blocks =
  make_on ~core:(idx mod Device.num_cores device) ~device ~idx ~num_blocks

let idx t = t.idx
let num_blocks t = t.num_blocks
let core t = t.core
let charged_cycles t = t.charged
let device t = t.device
let cost t = Device.cost t.device
let functional t = Device.functional t.device
let fault t = Device.fault t.device
let sanitizer t = Device.sanitizer t.device

let assume_disjoint_writes t gt ~reason =
  match sanitizer t with
  | None -> ()
  | Some san ->
      Sanitizer.exempt_tensor san ~tensor_id:(Global_tensor.id gt) ~reason

let eindex t e = Engine.index ~vec_per_core:t.vec_per_core e
let elane t e = Engine.lane ~vec_per_core:t.vec_per_core e

let engine_clock t engine = t.avail.(eindex t engine)
let lane_clock t engine = t.lanes.(elane t engine)

(* Busy accounting and the kill check, shared by every charge path.
   [busy_total] and [charged] see the same values in the same
   per-accumulator addition order as before the event model, so
   Stats.engine_busy and the Health kill clock stay bit-identical. *)
let bump_busy t i cycles =
  t.busy_total.(i) <- t.busy_total.(i) +. cycles;
  t.charged <- t.charged +. cycles;
  if t.clock0 +. t.charged >= t.kill_at then begin
    (* Sync the health clock to the kill point so the death record
       carries the seeded cycle, then let note_cycles mark it dead. *)
    Health.note_cycles t.health ~core:t.core
      (Float.max 0.0 (t.kill_at -. Health.cycles_done t.health t.core));
    (match t.tb with
    | Some tb ->
        Trace.Block_builder.mark tb Trace.Death
          ~name:(Printf.sprintf "core %d dead" t.core)
          ~cycle:t.charged
    | None -> ());
    raise (Health.Core_dead { core = t.core; cycle = t.kill_at })
  end

(* Issue time of the next op on engine [i] from the program's point of
   view: the lane cursor outside sections, the section entry point
   inside an overlap section (where every engine queues from the
   section start — the legacy [pipelined] lowering). *)
let issue_start t i l =
  match t.section with
  | Section_overlap -> Float.max t.sec_t0 t.avail.(i)
  | No_section | Section_serial -> Float.max t.lanes.(l) t.avail.(i)

let emit_span t ~op ~bytes engine i ~start ~cycles =
  match t.tb with
  | Some tb ->
      Trace.Block_builder.span tb ~track:i ~engine:(Engine.to_string engine)
        ~queue:(Engine.queue engine) ~op ~start ~cycles ~bytes
  | None ->
      ignore i;
      -1

let recording t = Option.is_some t.tb

(* Emit the dependency edges of span [dst], deduplicating predecessors
   (the queue predecessor is often also a lane contributor); the first
   occurrence — listed in mechanism priority order by the caller —
   names the edge kind. *)
let emit_edges t ~dst preds =
  match t.tb with
  | None -> ()
  | Some tb ->
      let rec go seen = function
        | [] -> ()
        | (src, kind) :: tl ->
            if src >= 0 && not (List.mem src seen) then begin
              Trace.Block_builder.edge tb ~kind ~src ~dst;
              go (src :: seen) tl
            end
            else go seen tl
      in
      go [] preds

(* The program-order contributors a charge on engine [i] lane [l] sees:
   the overlap-section entry set inside a section, the lane's
   contributor set otherwise — exactly mirroring [issue_start]. *)
let issue_src t i l =
  let lane =
    match t.section with
    | Section_overlap -> t.sec_src
    | No_section | Section_serial -> t.lane_src.(l)
  in
  (t.last_id.(i), Trace.Queue) :: lane

let charge ?(op = "charge") ?(bytes = 0) t engine cycles =
  let i = eindex t engine in
  let l = elane t engine in
  let start = issue_start t i l in
  let stop = start +. cycles in
  let id = emit_span t ~op ~bytes engine i ~start ~cycles in
  if id >= 0 then begin
    emit_edges t ~dst:id (issue_src t i l);
    t.last_id.(i) <- id
  end;
  t.avail.(i) <- stop;
  (match t.section with
  | Section_overlap -> ()
  | No_section | Section_serial ->
      t.lanes.(l) <- stop;
      if id >= 0 then t.lane_src.(l) <- [ (id, Trace.Lane) ]);
  bump_busy t i cycles

let charge_async ?(op = "charge") ?(bytes = 0) ?dst t engine cycles =
  let i = eindex t engine in
  let l = elane t engine in
  let start = issue_start t i l in
  let stop = start +. cycles in
  let id = emit_span t ~op ~bytes engine i ~start ~cycles in
  if id >= 0 then begin
    emit_edges t ~dst:id (issue_src t i l);
    t.last_id.(i) <- id;
    t.pend_last.(i) <- id
  end;
  t.avail.(i) <- stop;
  t.pend_count.(i) <- t.pend_count.(i) + 1;
  if stop > t.pend_end.(i) then t.pend_end.(i) <- stop;
  (match dst with
  | Some lt when Option.is_some (sanitizer t) ->
      t.pend_dsts.(i) <- lt :: t.pend_dsts.(i)
  | _ -> ());
  bump_busy t i cycles

let commit_group t engine =
  let i = eindex t engine in
  if t.pend_count.(i) > 0 then begin
    Queue.push
      {
        g_end = t.pend_end.(i);
        g_dsts = t.pend_dsts.(i);
        g_last = t.pend_last.(i);
      }
      t.groups.(i);
    t.pend_count.(i) <- 0;
    t.pend_end.(i) <- 0.0;
    t.pend_dsts.(i) <- [];
    t.pend_last.(i) <- -1
  end

let wait_group t engine ~outstanding =
  if outstanding < 0 then
    invalid_arg "Block.wait_group: outstanding must be >= 0";
  let i = eindex t engine in
  let l = elane t engine in
  while Queue.length t.groups.(i) > outstanding do
    let g = Queue.pop t.groups.(i) in
    if g.g_end > t.lanes.(l) then t.lanes.(l) <- g.g_end;
    if recording t && g.g_last >= 0 then
      t.lane_src.(l) <- (g.g_last, Trace.Group) :: t.lane_src.(l)
  done

let fence t engine =
  (* Pipe barrier on one queue: the lane waits for everything issued on
     the engine, committed or not. *)
  let i = eindex t engine in
  let l = elane t engine in
  if t.avail.(i) > t.lanes.(l) then t.lanes.(l) <- t.avail.(i);
  if recording t && t.last_id.(i) >= 0 then
    t.lane_src.(l) <- (t.last_id.(i), Trace.Fence) :: t.lane_src.(l);
  Queue.clear t.groups.(i);
  t.pend_count.(i) <- 0;
  t.pend_end.(i) <- 0.0;
  t.pend_dsts.(i) <- [];
  t.pend_last.(i) <- -1

let await_engine t ~lane_of ~on =
  (* Cross-lane dependency: [lane_of]'s program waits until everything
     issued so far on engine [on] (typically another lane's MTE) has
     completed. Does not retire [on]'s groups — they still belong to
     the producing lane's wait discipline. *)
  let l = elane t lane_of in
  let i = eindex t on in
  if t.avail.(i) > t.lanes.(l) then t.lanes.(l) <- t.avail.(i);
  if recording t && t.last_id.(i) >= 0 then
    t.lane_src.(l) <- (t.last_id.(i), Trace.Await) :: t.lane_src.(l)

(* Contributor set of the block-wide maximum: the per-engine last spans
   cover the engine clocks, the lane contributor sets cover the lane
   cursors. Used by [wait_all] and the overlap-section close, which
   join every lane at the makespan. *)
let makespan_src t kind =
  let seen = Hashtbl.create 32 in
  let acc = ref [] in
  let add id =
    if id >= 0 && not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      acc := (id, kind) :: !acc
    end
  in
  Array.iter add t.last_id;
  Array.iter (List.iter (fun (id, _) -> add id)) t.lane_src;
  !acc

let wait_all t =
  (* Full intra-block barrier: every lane joins at the global maximum
     and all async state retires. Engine clocks are left in place —
     subsequent issues start at the joined cursor anyway. *)
  let m = ref 0.0 in
  Array.iter (fun c -> if c > !m then m := c) t.lanes;
  Array.iter (fun c -> if c > !m then m := c) t.avail;
  Array.fill t.lanes 0 (Array.length t.lanes) !m;
  if recording t then begin
    let joined = makespan_src t Trace.Join in
    Array.fill t.lane_src 0 (Array.length t.lane_src) joined
  end;
  Array.iter Queue.clear t.groups;
  Array.fill t.pend_count 0 (Array.length t.pend_count) 0;
  Array.fill t.pend_end 0 (Array.length t.pend_end) 0.0;
  Array.fill t.pend_dsts 0 (Array.length t.pend_dsts) [];
  Array.fill t.pend_last 0 (Array.length t.pend_last) (-1)

let async_in_flight t lt =
  let memq l = List.exists (fun x -> x == lt) l in
  let hit = ref false in
  Array.iter (fun dsts -> if memq dsts then hit := true) t.pend_dsts;
  Array.iter
    (fun q -> Queue.iter (fun g -> if memq g.g_dsts then hit := true) q)
    t.groups;
  !hit

let check_async_use t ~op lt =
  match sanitizer t with
  | None -> ()
  | Some san ->
      if async_in_flight t lt then
        Sanitizer.record_async_hazard san ~block:t.idx ~op
          ~tensor:(Mem_kind.to_string (Local_tensor.kind lt))
          ~message:
            (Printf.sprintf
               "%s touches a tile with an asynchronous DataCopy still in \
                flight (no wait_group between the async copy and this use)"
               op)

(* Tile-batched charging: repeat the charge sequence [entries] exactly
   [count] times, as [count] iterations of per-charge [charge] calls
   would (same engine accumulator, same float-addition order, zero
   payload bytes). With a trace armed or a finite kill threshold the
   slow per-charge path runs so span granularity and kill semantics
   are untouched; otherwise the dispatch (engine index, trace match,
   kill check) is paid once per tile instead of once per row. *)
let charge_rows t engine ~count entries =
  if count > 0 && Array.length entries > 0 then
    if Option.is_some t.tb || Float.is_finite t.kill_at then
      for _ = 1 to count do
        Array.iter (fun (op, c) -> charge ~op t engine c) entries
      done
    else begin
      let i = eindex t engine in
      let l = elane t engine in
      let n = Array.length entries in
      let clock = ref (issue_start t i l) in
      for _ = 1 to count do
        for j = 0 to n - 1 do
          let _, c = Array.unsafe_get entries j in
          t.busy_total.(i) <- t.busy_total.(i) +. c;
          t.charged <- t.charged +. c;
          clock := !clock +. c
        done
      done;
      t.avail.(i) <- !clock;
      match t.section with
      | Section_overlap -> ()
      | No_section | Section_serial -> t.lanes.(l) <- !clock
    end

let note_fault t =
  (match t.tb with
  | Some tb ->
      Trace.Block_builder.mark tb Trace.Fault ~name:"fault" ~cycle:t.charged
  | None -> ());
  Health.note_fault t.health ~core:t.core ~cycle:(t.clock0 +. t.charged)

let count_op t name =
  Hashtbl.replace t.ops_tbl name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.ops_tbl name))

let count_op_n t name k =
  if k > 0 then
    Hashtbl.replace t.ops_tbl name
      (k + Option.value ~default:0 (Hashtbl.find_opt t.ops_tbl name))

let note_gm_traffic t ~read ~write =
  t.gm_read <- t.gm_read + read;
  t.gm_write <- t.gm_write + write

let note_touched t gt =
  let id = Global_tensor.id gt in
  if not (Hashtbl.mem t.touched_tbl id) then
    Hashtbl.add t.touched_tbl id (Global_tensor.size_bytes gt)

let elapsed_cycles t =
  (* Makespan: queued async work is covered by the engine clocks. *)
  let m = ref 0.0 in
  Array.iter (fun c -> if c > !m then m := c) t.lanes;
  Array.iter (fun c -> if c > !m then m := c) t.avail;
  !m

(* Legacy analytic-pipeline sections, lowered onto the event model.
   [iters = 1] runs the body with plain event semantics (ops chain on
   their lane — the documented "no pipelining" meaning, which the old
   closed-form code only approximated). [iters > 1] queues every charge
   on its engine from the section entry point and joins all lanes at
   the section's makespan: the overlap the old formula estimated as
   [max_e busy + fill/iters], now computed from the actual issue
   timeline (the fill term is subsumed by real issue gaps). *)
let pipelined t ~iters f =
  if t.section <> No_section then
    invalid_arg "Block.pipelined: sections do not nest";
  if iters < 1 then invalid_arg "Block.pipelined: iters must be >= 1";
  if iters = 1 then begin
    t.section <- Section_serial;
    match f () with
    | v ->
        t.section <- No_section;
        v
    | exception e ->
        t.section <- No_section;
        raise e
  end
  else begin
    let t0 = ref 0.0 in
    Array.iter (fun c -> if c > !t0 then t0 := c) t.lanes;
    t.sec_t0 <- !t0;
    t.section <- Section_overlap;
    (* The section-entry contributor set spans the lane cursors only
       (not the engine clocks): [issue_start] queues section charges
       from [max sec_t0 avail], and the queue predecessor supplies the
       [avail] side. *)
    if recording t then begin
      let seen = Hashtbl.create 32 in
      let acc = ref [] in
      Array.iter
        (List.iter (fun (id, _) ->
             if not (Hashtbl.mem seen id) then begin
               Hashtbl.add seen id ();
               acc := (id, Trace.Section) :: !acc
             end))
        t.lane_src;
      t.sec_src <- !acc
    end;
    let close () =
      t.section <- No_section;
      let m = elapsed_cycles t in
      Array.fill t.lanes 0 (Array.length t.lanes) m;
      if recording t then begin
        let joined = makespan_src t Trace.Section in
        Array.fill t.lane_src 0 (Array.length t.lane_src) joined;
        t.sec_src <- []
      end
    in
    match f () with
    | v ->
        close ();
        v
    | exception e ->
        close ();
        raise e
  end

let allocator t kind =
  match List.find_opt (fun (k, _) -> Mem_kind.equal k kind) t.allocators with
  | Some (_, off) -> off
  | None ->
      invalid_arg
        (Printf.sprintf "Block.alloc: no memory %s on this core"
           (Mem_kind.to_string kind))

let alloc t kind dtype length =
  let off = allocator t kind in
  let bytes = length * Dtype.size_bytes dtype in
  let cap = Mem_kind.capacity_bytes kind in
  if !off + bytes > cap then
    failwith
      (Printf.sprintf
         "Block.alloc: %s overflow (%d B requested, %d of %d B in use)"
         (Mem_kind.to_string kind) bytes !off cap);
  off := !off + bytes;
  let lt = Local_tensor.make ~kind ~dtype ~length in
  t.scratch <- lt :: t.scratch;
  lt

let reset_mem t kind = allocator t kind := 0

let finish t =
  (* Local scratchpad tensors never outlive their block (mirroring the
     hardware); recycle their storage through the Host_buffer pool so
     steady-state launches allocate nothing. *)
  List.iter Local_tensor.retire t.scratch;
  t.scratch <- [];
  let cycles = elapsed_cycles t in
  {
    cycles;
    busy = Array.copy t.busy_total;
    gm_read_bytes = t.gm_read;
    gm_write_bytes = t.gm_write;
    touched = Hashtbl.fold (fun id b acc -> (id, b) :: acc) t.touched_tbl [];
    op_counts = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.ops_tbl [];
    trace = Option.map (fun tb -> Trace.Block_builder.finish tb ~cycles) t.tb;
  }
