type t = {
  device : Device.t;
  idx : int;
  num_blocks : int;
  core : int;
  health : Health.t;
  kill_at : float;  (* seeded kill threshold of [core]; infinity = never *)
  clock0 : float;  (* [core]'s cumulative busy cycles at block start *)
  mutable charged : float;  (* busy cycles charged by this block so far *)
  vec_per_core : int;
  mutable time_cycles : float;
  busy_total : float array;
  sec_busy : float array;
  mutable in_section : bool;
  mutable gm_read : int;
  mutable gm_write : int;
  touched_tbl : (int, int) Hashtbl.t;
  ops_tbl : (string, int) Hashtbl.t;
  allocators : (Mem_kind.t * int ref) list;
  mutable scratch : Local_tensor.t list;  (* for recycling at [finish] *)
  tb : Trace.Block_builder.b option;
}

type result = {
  cycles : float;
  busy : float array;
  gm_read_bytes : int;
  gm_write_bytes : int;
  touched : (int * int) list;
  op_counts : (string * int) list;
  trace : Trace.block_rec option;
}

let make_on ~core ~device ~idx ~num_blocks =
  if num_blocks < 1 then
    invalid_arg
      (Printf.sprintf "Block.make: num_blocks must be >= 1 (got %d)" num_blocks);
  if idx < 0 || idx >= num_blocks then
    invalid_arg
      (Printf.sprintf "Block.make: block index %d out of range [0,%d)" idx
         num_blocks);
  let cm = Device.cost device in
  let health = Device.health device in
  let vec_per_core = cm.Cost_model.vec_per_core in
  let n = Engine.count ~vec_per_core in
  let kinds =
    Mem_kind.L1 :: Mem_kind.L0a :: Mem_kind.L0b :: Mem_kind.L0c
    :: List.init vec_per_core (fun i -> Mem_kind.Ub i)
  in
  {
    device;
    idx;
    num_blocks;
    core;
    health;
    kill_at = Health.kill_threshold health core;
    clock0 = Health.cycles_done health core;
    charged = 0.0;
    vec_per_core;
    time_cycles = 0.0;
    busy_total = Array.make n 0.0;
    sec_busy = Array.make n 0.0;
    in_section = false;
    gm_read = 0;
    gm_write = 0;
    touched_tbl = Hashtbl.create 8;
    ops_tbl = Hashtbl.create 16;
    allocators = List.map (fun k -> (k, ref 0)) kinds;
    scratch = [];
    tb =
      Option.map
        (fun tr -> Trace.block_builder tr ~idx ~core)
        (Device.trace device);
  }

let make ~device ~idx ~num_blocks =
  make_on ~core:(idx mod Device.num_cores device) ~device ~idx ~num_blocks

let idx t = t.idx
let num_blocks t = t.num_blocks
let core t = t.core
let charged_cycles t = t.charged
let device t = t.device
let cost t = Device.cost t.device
let functional t = Device.functional t.device
let fault t = Device.fault t.device
let sanitizer t = Device.sanitizer t.device

let assume_disjoint_writes t gt ~reason =
  match sanitizer t with
  | None -> ()
  | Some san ->
      Sanitizer.exempt_tensor san ~tensor_id:(Global_tensor.id gt) ~reason

let charge ?(op = "charge") ?(bytes = 0) t engine cycles =
  let i = Engine.index ~vec_per_core:t.vec_per_core engine in
  (match t.tb with
  | Some tb ->
      (* The span starts where the previous one on this engine track
         ended: the accumulated busy total before this charge. *)
      Trace.Block_builder.span tb ~track:i ~engine:(Engine.to_string engine)
        ~queue:(Engine.queue engine) ~op ~start:t.busy_total.(i) ~cycles ~bytes
  | None -> ());
  t.busy_total.(i) <- t.busy_total.(i) +. cycles;
  t.charged <- t.charged +. cycles;
  if t.in_section then t.sec_busy.(i) <- t.sec_busy.(i) +. cycles
  else t.time_cycles <- t.time_cycles +. cycles;
  if t.clock0 +. t.charged >= t.kill_at then begin
    (* Sync the health clock to the kill point so the death record
       carries the seeded cycle, then let note_cycles mark it dead. *)
    Health.note_cycles t.health ~core:t.core
      (Float.max 0.0 (t.kill_at -. Health.cycles_done t.health t.core));
    (match t.tb with
    | Some tb ->
        Trace.Block_builder.mark tb Trace.Death
          ~name:(Printf.sprintf "core %d dead" t.core)
          ~cycle:t.charged
    | None -> ());
    raise (Health.Core_dead { core = t.core; cycle = t.kill_at })
  end

(* Tile-batched charging: repeat the charge sequence [entries] exactly
   [count] times, as [count] iterations of per-charge [charge] calls
   would (same engine accumulator, same float-addition order, zero
   payload bytes). With a trace armed or a finite kill threshold the
   slow per-charge path runs so span granularity and kill semantics
   are untouched; otherwise the dispatch (engine index, trace match,
   kill check) is paid once per tile instead of once per row. *)
let charge_rows t engine ~count entries =
  if count > 0 && Array.length entries > 0 then
    if Option.is_some t.tb || Float.is_finite t.kill_at then
      for _ = 1 to count do
        Array.iter (fun (op, c) -> charge ~op t engine c) entries
      done
    else begin
      let i = Engine.index ~vec_per_core:t.vec_per_core engine in
      let n = Array.length entries in
      if t.in_section then
        for _ = 1 to count do
          for j = 0 to n - 1 do
            let _, c = Array.unsafe_get entries j in
            t.busy_total.(i) <- t.busy_total.(i) +. c;
            t.charged <- t.charged +. c;
            t.sec_busy.(i) <- t.sec_busy.(i) +. c
          done
        done
      else
        for _ = 1 to count do
          for j = 0 to n - 1 do
            let _, c = Array.unsafe_get entries j in
            t.busy_total.(i) <- t.busy_total.(i) +. c;
            t.charged <- t.charged +. c;
            t.time_cycles <- t.time_cycles +. c
          done
        done
    end

let note_fault t =
  (match t.tb with
  | Some tb ->
      Trace.Block_builder.mark tb Trace.Fault ~name:"fault" ~cycle:t.charged
  | None -> ());
  Health.note_fault t.health ~core:t.core ~cycle:(t.clock0 +. t.charged)

let count_op t name =
  Hashtbl.replace t.ops_tbl name
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.ops_tbl name))

let count_op_n t name k =
  if k > 0 then
    Hashtbl.replace t.ops_tbl name
      (k + Option.value ~default:0 (Hashtbl.find_opt t.ops_tbl name))

let note_gm_traffic t ~read ~write =
  t.gm_read <- t.gm_read + read;
  t.gm_write <- t.gm_write + write

let note_touched t gt =
  let id = Global_tensor.id gt in
  if not (Hashtbl.mem t.touched_tbl id) then
    Hashtbl.add t.touched_tbl id (Global_tensor.size_bytes gt)

let pipelined t ~iters f =
  if t.in_section then invalid_arg "Block.pipelined: sections do not nest";
  if iters < 1 then invalid_arg "Block.pipelined: iters must be >= 1";
  Array.fill t.sec_busy 0 (Array.length t.sec_busy) 0.0;
  t.in_section <- true;
  let finish () =
    t.in_section <- false;
    let sum = Array.fold_left ( +. ) 0.0 t.sec_busy in
    let max_busy = Array.fold_left Float.max 0.0 t.sec_busy in
    t.time_cycles <-
      t.time_cycles +. max_busy +. ((sum -. max_busy) /. float_of_int iters)
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let allocator t kind =
  match List.find_opt (fun (k, _) -> Mem_kind.equal k kind) t.allocators with
  | Some (_, off) -> off
  | None ->
      invalid_arg
        (Printf.sprintf "Block.alloc: no memory %s on this core"
           (Mem_kind.to_string kind))

let alloc t kind dtype length =
  let off = allocator t kind in
  let bytes = length * Dtype.size_bytes dtype in
  let cap = Mem_kind.capacity_bytes kind in
  if !off + bytes > cap then
    failwith
      (Printf.sprintf
         "Block.alloc: %s overflow (%d B requested, %d of %d B in use)"
         (Mem_kind.to_string kind) bytes !off cap);
  off := !off + bytes;
  let lt = Local_tensor.make ~kind ~dtype ~length in
  t.scratch <- lt :: t.scratch;
  lt

let reset_mem t kind = allocator t kind := 0
let elapsed_cycles t = t.time_cycles

let finish t =
  (* Local scratchpad tensors never outlive their block (mirroring the
     hardware); recycle their storage through the Host_buffer pool so
     steady-state launches allocate nothing. *)
  List.iter Local_tensor.retire t.scratch;
  t.scratch <- [];
  {
    cycles = t.time_cycles;
    busy = Array.copy t.busy_total;
    gm_read_bytes = t.gm_read;
    gm_write_bytes = t.gm_write;
    touched = Hashtbl.fold (fun id b acc -> (id, b) :: acc) t.touched_tbl [];
    op_counts = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.ops_tbl [];
    trace =
      Option.map
        (fun tb -> Trace.Block_builder.finish tb ~cycles:t.time_cycles)
        t.tb;
  }
