(** A tensor resident in simulated global memory (HBM).

    Mirrors AscendC's [GlobalTensor]: kernel inputs and outputs always
    live here, and compute engines can only reach the data through MTE
    copies into local buffers.

    When the owning device runs in [Cost_only] mode (see {!Device}) the
    tensor carries no backing storage, allowing benchmarks to model
    multi-hundred-megabyte inputs; host-side accessors then raise. *)

type t

val make :
  id:int -> name:string -> dtype:Dtype.t -> length:int -> backed:bool -> t
(** Used by {!Device.alloc}; not intended for direct use. *)

val id : t -> int
val name : t -> string
val dtype : t -> Dtype.t
val length : t -> int
val size_bytes : t -> int

val is_backed : t -> bool
(** [false] for cost-only tensors without storage. *)

val buffer : t -> Host_buffer.t
(** Backing storage; raises [Invalid_argument] on a cost-only tensor. *)

val get : t -> int -> float
(** Host-side read (outside any kernel timing). *)

val set : t -> int -> float -> unit
(** Host-side write (outside any kernel timing). *)

val load : t -> float array -> unit
(** Host-side bulk initialisation from index 0. *)

val fill : t -> float -> unit
(** Host-side fill of the whole tensor with one (rounded) value. *)

val retire : t -> unit
(** Recycle the backing storage through the {!Host_buffer} pool (no-op
    on cost-only tensors). For kernel-internal intermediates that never
    escape their kernel — e.g. McScan's tile-local-scan and block-sum
    tensors — so repeated launches reuse instead of reallocating. The
    tensor must not be used afterwards. *)

val to_array : t -> float array
val pp : Format.formatter -> t -> unit
