(** IEEE-754 binary16 (half precision) codec and arithmetic.

    The Ascend cube and vector engines operate natively on [float16]
    values. The simulator stores all values as OCaml [float]s but rounds
    every value written to an fp16 buffer through this codec so that the
    numerical behaviour (precision loss, overflow to infinity, subnormal
    flush behaviour) matches the hardware.

    A value of type {!t} is the 16-bit pattern stored in the low bits of
    a non-negative [int]. *)

type t = int
(** Bit pattern of a binary16 value; always in [\[0, 0xFFFF\]]. *)

val zero : t
val one : t
val neg_zero : t
val pos_infinity : t
val neg_infinity : t
val nan : t

val max_value : float
(** Largest finite binary16 value, [65504.0]. *)

val min_positive_normal : float
(** Smallest positive normal binary16 value, [2^-14]. *)

val min_positive_subnormal : float
(** Smallest positive subnormal binary16 value, [2^-24]. *)

val of_float : float -> t
(** [of_float f] converts with round-to-nearest-even. Values above
    {!max_value} in magnitude become infinities; NaN is preserved. *)

val to_float : t -> float
(** Exact widening conversion. *)

val to_float_table : float array
(** The 65536-entry decode table backing {!to_float} (index = bit
    pattern). Exposed so hot in-module rounding loops ({!Host_buffer})
    can decode with a plain array read: the classic (non-flambda)
    native backend boxes floats at non-inlined call boundaries, and
    dev-profile [-opaque] compilation disables cross-module inlining,
    so per-element cross-module {!round} calls would allocate. *)

val round : float -> float
(** [round f] is [to_float (of_float f)]: the nearest representable
    binary16 value of [f]. *)

val is_nan : t -> bool
val is_infinite : t -> bool
val is_finite : t -> bool

val bits_sign : t -> int
(** Sign bit, [0] or [1]. *)

val bits_exponent : t -> int
(** Biased exponent field, in [\[0, 31\]]. *)

val bits_mantissa : t -> int
(** Mantissa field, in [\[0, 1023\]]. *)

val add : float -> float -> float
(** fp16-faithful addition: both operands are assumed representable;
    the result is rounded to binary16. *)

val mul : float -> float -> float
val sub : float -> float -> float

val equal_bits : t -> t -> bool

val compare_value : t -> t -> int
(** Total order on bit patterns by represented value (IEEE semantics,
    with [-0 = +0]; NaNs ordered last). *)

val pp : Format.formatter -> t -> unit
