type binop = Add | Sub | Mul | Max | Min
type cmp = Eq | Ne | Lt | Le | Gt | Ge

let require_ub what lt =
  match Local_tensor.kind lt with
  | Mem_kind.Ub _ -> ()
  | k ->
      invalid_arg
        (Printf.sprintf "Vec.%s: operand in %s; vector engines only access UB"
           what (Mem_kind.to_string k))

let check_range ctx what lt off len =
  if off < 0 || len < 0 || off + len > Local_tensor.length lt then begin
    let msg =
      Printf.sprintf "Vec.%s: range %d+%d out of bounds [0,%d)" what off len
        (Local_tensor.length lt)
    in
    (match Block.sanitizer ctx with
    | Some san ->
        Sanitizer.record_oob san ~block:(Block.idx ctx) ~op:("Vec." ^ what)
          ~tensor:(Mem_kind.to_string (Local_tensor.kind lt))
          ~message:msg
    | None -> ());
    invalid_arg msg
  end

(* Charge [instrs] vector instructions processing [len] elements of the
   widest operand involved. *)
let charge_op ctx ~vec ~op ~instrs ~len ~esize =
  let cm = Block.cost ctx in
  let per = Cost_model.vec_op_cycles cm ~bytes:(len * esize) in
  Block.charge ~op ctx (Engine.Vec vec) (float_of_int instrs *. per)

let tick = Block.count_op

let charge_scalar ctx ~vec ~op =
  let cm = Block.cost ctx in
  Block.charge ~op ctx (Engine.Vec vec) cm.Cost_model.scalar_access_cycles

let esize lt = Dtype.size_bytes (Local_tensor.dtype lt)

(* Generic element-wise loop writing through the dtype-rounding setter. *)
let map1 ctx f ~src ~src_off ~dst ~dst_off ~len =
  if Block.functional ctx then begin
    let sb = Local_tensor.buffer src and db = Local_tensor.buffer dst in
    Local_tensor.touch dst;
    for i = 0 to len - 1 do
      Host_buffer.set db (dst_off + i) (f (Host_buffer.get sb (src_off + i)))
    done
  end

let map2 ctx f ~src0 ~src0_off ~src1 ~src1_off ~dst ~dst_off ~len =
  if Block.functional ctx then begin
    let a = Local_tensor.buffer src0
    and b = Local_tensor.buffer src1
    and db = Local_tensor.buffer dst in
    Local_tensor.touch dst;
    for i = 0 to len - 1 do
      Host_buffer.set db (dst_off + i)
        (f (Host_buffer.get a (src0_off + i)) (Host_buffer.get b (src1_off + i)))
    done
  end

let fun_of_binop = function
  | Add -> ( +. )
  | Sub -> ( -. )
  | Mul -> ( *. )
  | Max -> Float.max
  | Min -> Float.min

let binop ctx ?(vec = 0) op ~src0 ?(src0_off = 0) ~src1 ?(src1_off = 0) ~dst
    ?(dst_off = 0) ~len () =
  require_ub "binop" src0;
  require_ub "binop" src1;
  require_ub "binop" dst;
  check_range ctx "binop" src0 src0_off len;
  check_range ctx "binop" src1 src1_off len;
  check_range ctx "binop" dst dst_off len;
  let name =
    match op with
    | Add -> "vadd" | Sub -> "vsub" | Mul -> "vmul" | Max -> "vmax"
    | Min -> "vmin"
  in
  tick ctx name;
  charge_op ctx ~vec ~op:name ~instrs:1 ~len ~esize:(esize dst);
  map2 ctx (fun_of_binop op) ~src0 ~src0_off ~src1 ~src1_off ~dst ~dst_off ~len

let add ctx ?(vec = 0) ~src0 ~src1 ~dst ~len () =
  binop ctx ~vec Add ~src0 ~src1 ~dst ~len ()

let scalar_map name f ctx ~vec ~src ~src_off ~dst ~dst_off ~len =
  tick ctx name;
  require_ub name src;
  require_ub name dst;
  check_range ctx name src src_off len;
  check_range ctx name dst dst_off len;
  charge_op ctx ~vec ~op:name ~instrs:1 ~len ~esize:(esize dst);
  map1 ctx f ~src ~src_off ~dst ~dst_off ~len

let adds ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~scalar ~len () =
  scalar_map "adds" (fun v -> v +. scalar) ctx ~vec ~src ~src_off ~dst ~dst_off ~len

let muls ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~scalar ~len () =
  scalar_map "muls" (fun v -> v *. scalar) ctx ~vec ~src ~src_off ~dst ~dst_off ~len

let maxs ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~scalar ~len () =
  scalar_map "maxs" (Float.max scalar) ctx ~vec ~src ~src_off ~dst ~dst_off ~len

let mins ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~scalar ~len () =
  scalar_map "mins" (Float.min scalar) ctx ~vec ~src ~src_off ~dst ~dst_off ~len

let exp ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  scalar_map "exp" Stdlib.exp ctx ~vec ~src ~src_off ~dst ~dst_off ~len

let fun_of_cmp = function
  | Eq -> ( = )
  | Ne -> ( <> )
  | Lt -> ( < )
  | Le -> ( <= )
  | Gt -> ( > )
  | Ge -> ( >= )

let compare_scalar ctx ?(vec = 0) cmp ~src ?(src_off = 0) ~dst ?(dst_off = 0)
    ~scalar ~len () =
  let test = fun_of_cmp cmp in
  scalar_map "compare_scalar"
    (fun v -> if test (Float.compare v scalar) 0 then 1.0 else 0.0)
    ctx ~vec ~src ~src_off ~dst ~dst_off ~len

let compare ctx ?(vec = 0) cmp ~src0 ~src1 ~dst ~len () =
  require_ub "compare" src0;
  require_ub "compare" src1;
  require_ub "compare" dst;
  check_range ctx "compare" src0 0 len;
  check_range ctx "compare" src1 0 len;
  check_range ctx "compare" dst 0 len;
  tick ctx "vcompare";
  charge_op ctx ~vec ~op:"vcompare" ~instrs:1 ~len ~esize:(esize src0);
  let test = fun_of_cmp cmp in
  map2 ctx
    (fun a b -> if test (Float.compare a b) 0 then 1.0 else 0.0)
    ~src0 ~src0_off:0 ~src1 ~src1_off:0 ~dst ~dst_off:0 ~len

let select ctx ?(vec = 0) ?(mask_off = 0) ~mask ?(src0_off = 0) ~src0
    ?(src1_off = 0) ~src1 ?(dst_off = 0) ~dst ~len () =
  require_ub "select" mask;
  require_ub "select" src0;
  require_ub "select" src1;
  require_ub "select" dst;
  check_range ctx "select" mask mask_off len;
  check_range ctx "select" src0 src0_off len;
  check_range ctx "select" src1 src1_off len;
  check_range ctx "select" dst dst_off len;
  tick ctx "vselect";
  charge_op ctx ~vec ~op:"vselect" ~instrs:1 ~len ~esize:(esize dst);
  if Block.functional ctx then begin
    let m = Local_tensor.buffer mask
    and a = Local_tensor.buffer src0
    and b = Local_tensor.buffer src1
    and db = Local_tensor.buffer dst in
    Local_tensor.touch dst;
    for i = 0 to len - 1 do
      let v =
        if Host_buffer.get m (mask_off + i) <> 0.0 then
          Host_buffer.get a (src0_off + i)
        else Host_buffer.get b (src1_off + i)
      in
      Host_buffer.set db (dst_off + i) v
    done
  end

(* Bit-wise ops view each element as the unsigned field of its dtype. *)
let unsigned_field dt v =
  let bits = Dtype.size_bytes dt * 8 in
  let m = 1 lsl bits in
  ((int_of_float v) mod m + m) mod m

let require_integer what lt =
  if not (Dtype.is_integer (Local_tensor.dtype lt)) then
    invalid_arg
      (Printf.sprintf "Vec.%s: bit-wise ops require an integer data type" what)

let bit_map name f ctx ~vec ~src ~src_off ~dst ~dst_off ~len =
  require_integer name src;
  require_integer name dst;
  let sdt = Local_tensor.dtype src in
  scalar_map name
    (fun v -> float_of_int (f (unsigned_field sdt v)))
    ctx ~vec ~src ~src_off ~dst ~dst_off ~len

let shift_right ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~bits
    ~len () =
  bit_map "shift_right" (fun u -> u lsr bits) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

let shift_left ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~bits
    ~len () =
  bit_map "shift_left" (fun u -> u lsl bits) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

let bit_ands ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~mask ~len () =
  bit_map "bit_ands" (fun u -> u land mask) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

let bit_ors ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~mask ~len () =
  bit_map "bit_ors" (fun u -> u lor mask) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

let bit_xors ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~mask ~len () =
  bit_map "bit_xors" (fun u -> u lxor mask) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

let bit_not ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  require_integer "bit_not" src;
  let bits = Dtype.size_bytes (Local_tensor.dtype src) * 8 in
  let full = (1 lsl bits) - 1 in
  bit_map "bit_not" (fun u -> u lxor full) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

type bitop = And | Or | Xor

let bit_op ctx ?(vec = 0) op ~src0 ?(src0_off = 0) ~src1 ?(src1_off = 0) ~dst
    ?(dst_off = 0) ~len () =
  require_integer "bit_op" src0;
  require_integer "bit_op" src1;
  require_integer "bit_op" dst;
  require_ub "bit_op" src0;
  require_ub "bit_op" src1;
  require_ub "bit_op" dst;
  check_range ctx "bit_op" src0 src0_off len;
  check_range ctx "bit_op" src1 src1_off len;
  check_range ctx "bit_op" dst dst_off len;
  tick ctx "vbitop";
  charge_op ctx ~vec ~op:"vbitop" ~instrs:1 ~len ~esize:(esize dst);
  let f = match op with
    | And -> ( land )
    | Or -> ( lor )
    | Xor -> ( lxor )
  in
  let d0 = Local_tensor.dtype src0 and d1 = Local_tensor.dtype src1 in
  map2 ctx
    (fun a b -> float_of_int (f (unsigned_field d0 a) (unsigned_field d1 b)))
    ~src0 ~src0_off ~src1 ~src1_off ~dst ~dst_off ~len

let arange ctx ?(vec = 0) ~dst ?(dst_off = 0) ~start ~len () =
  require_ub "arange" dst;
  check_range ctx "arange" dst dst_off len;
  tick ctx "arange";
  charge_op ctx ~vec ~op:"arange" ~instrs:1 ~len ~esize:(esize dst);
  if Block.functional ctx then begin
    let db = Local_tensor.buffer dst in
    Local_tensor.touch dst;
    for i = 0 to len - 1 do
      Host_buffer.set db (dst_off + i) (start +. float_of_int i)
    done
  end

let cast ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  require_ub "cast" src;
  require_ub "cast" dst;
  check_range ctx "cast" src src_off len;
  check_range ctx "cast" dst dst_off len;
  tick ctx "vcast";
  charge_op ctx ~vec ~op:"vcast" ~instrs:1 ~len ~esize:(max (esize src) (esize dst));
  if Block.functional ctx then begin
    let sb = Local_tensor.buffer src and db = Local_tensor.buffer dst in
    let from = Local_tensor.dtype src in
    Local_tensor.touch dst;
    for i = 0 to len - 1 do
      Host_buffer.set_cast db (dst_off + i) ~from
        (Host_buffer.get sb (src_off + i))
    done
  end

let dup ctx ?(vec = 0) ~dst ?(dst_off = 0) ~scalar ~len () =
  require_ub "dup" dst;
  check_range ctx "dup" dst dst_off len;
  tick ctx "duplicate";
  charge_op ctx ~vec ~op:"duplicate" ~instrs:1 ~len ~esize:(esize dst);
  if Block.functional ctx then begin
    let db = Local_tensor.buffer dst in
    Local_tensor.touch dst;
    for i = 0 to len - 1 do
      Host_buffer.set db (dst_off + i) scalar
    done
  end

let copy ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  scalar_map "copy" Fun.id ctx ~vec ~src ~src_off ~dst ~dst_off ~len

let reduce_sum ctx ?(vec = 0) ~src ?(src_off = 0) ~len () =
  require_ub "reduce_sum" src;
  check_range ctx "reduce_sum" src src_off len;
  tick ctx "reduce_sum";
  charge_op ctx ~vec ~op:"reduce_sum" ~instrs:1 ~len ~esize:(esize src);
  charge_scalar ctx ~vec ~op:"reduce_sum";
  if Block.functional ctx then begin
    let sb = Local_tensor.buffer src in
    let acc = ref 0.0 in
    for i = 0 to len - 1 do
      acc := !acc +. Host_buffer.get sb (src_off + i)
    done;
    Dtype.round Dtype.F32 !acc
  end
  else 0.0

let reduce_max ctx ?(vec = 0) ~src ?(src_off = 0) ~len () =
  require_ub "reduce_max" src;
  check_range ctx "reduce_max" src src_off len;
  if len = 0 then invalid_arg "Vec.reduce_max: empty range";
  tick ctx "reduce_max";
  charge_op ctx ~vec ~op:"reduce_max" ~instrs:1 ~len ~esize:(esize src);
  charge_scalar ctx ~vec ~op:"reduce_max";
  if Block.functional ctx then begin
    let sb = Local_tensor.buffer src in
    let acc = ref neg_infinity in
    for i = 0 to len - 1 do
      acc := Float.max !acc (Host_buffer.get sb (src_off + i))
    done;
    !acc
  end
  else 0.0

let cumsum ctx ?(vec = 0) ~src ~dst ~rows ~cols () =
  require_ub "cumsum" src;
  require_ub "cumsum" dst;
  let len = rows * cols in
  check_range ctx "cumsum" src 0 len;
  check_range ctx "cumsum" dst 0 len;
  let cm = Block.cost ctx in
  tick ctx "cumsum_api";
  let instrs =
    int_of_float (Float.ceil (cm.Cost_model.cumsum_instrs_per_row *. float_of_int rows))
  in
  charge_op ctx ~vec ~op:"cumsum_api" ~instrs:1 ~len:(instrs * cols) ~esize:(esize src);
  (* The per-row instruction count is charged through a single composite
     call above: [instrs] row-sized instructions. Re-express the issue
     overhead explicitly since charge_op only adds one issue cost. *)
  Block.charge ~op:"cumsum_api" ctx (Engine.Vec vec)
    (float_of_int (instrs - 1) *. cm.Cost_model.vec_issue_cycles);
  if Block.functional ctx then begin
    let sb = Local_tensor.buffer src and db = Local_tensor.buffer dst in
    let dt = Local_tensor.dtype dst in
    Local_tensor.touch dst;
    let acc = ref 0.0 in
    for i = 0 to len - 1 do
      acc := Dtype.round dt (!acc +. Host_buffer.get sb i);
      Host_buffer.set db i !acc
    done
  end

let sort_region ctx ?(vec = 0) ?(descending = false) ~src ~dst ~len () =
  require_ub "sort_region" src;
  require_ub "sort_region" dst;
  check_range ctx "sort_region" src 0 len;
  check_range ctx "sort_region" dst 0 len;
  if len = 0 then invalid_arg "Vec.sort_region: empty region";
  tick ctx "sort_region";
  (* One Sort32 sweep plus log4 merge passes, each region-sized. *)
  let merge_passes =
    let rec go runs acc = if runs <= 1 then acc else go ((runs + 3) / 4) (acc + 1) in
    go ((len + 31) / 32) 0
  in
  charge_op ctx ~vec ~op:"sort_region" ~instrs:(1 + (2 * merge_passes)) ~len ~esize:(esize src);
  if Block.functional ctx then begin
    let sb = Local_tensor.buffer src and db = Local_tensor.buffer dst in
    let a = Array.init len (fun i -> Host_buffer.get sb i) in
    Array.sort (fun x y -> Float.compare x y) a;
    Local_tensor.touch dst;
    for i = 0 to len - 1 do
      let v = if descending then a.(len - 1 - i) else a.(i) in
      Host_buffer.set db i v
    done
  end

let gather_mask ctx ?(vec = 0) ~src ?(src_off = 0) ~mask ?(mask_off = 0) ~dst
    ?(dst_off = 0) ~len () =
  require_ub "gather_mask" src;
  require_ub "gather_mask" mask;
  require_ub "gather_mask" dst;
  check_range ctx "gather_mask" src src_off len;
  check_range ctx "gather_mask" mask mask_off len;
  (* Destination holds at most [len] gathered elements. *)
  check_range ctx "gather_mask" dst dst_off 0;
  tick ctx "gather_mask";
  charge_op ctx ~vec ~op:"gather_mask" ~instrs:2 ~len ~esize:(esize src);
  charge_scalar ctx ~vec ~op:"gather_mask";
  if Block.functional ctx then begin
    let sb = Local_tensor.buffer src
    and mb = Local_tensor.buffer mask
    and db = Local_tensor.buffer dst in
    Local_tensor.touch dst;
    let k = ref 0 in
    for i = 0 to len - 1 do
      if Host_buffer.get mb (mask_off + i) <> 0.0 then begin
        Host_buffer.set db (dst_off + !k) (Host_buffer.get sb (src_off + i));
        incr k
      end
    done;
    !k
  end
  else 0

let gather_elements ctx ?(vec = 0) ~src ~idx ~dst ~len () =
  require_ub "gather_elements" src;
  require_ub "gather_elements" idx;
  require_ub "gather_elements" dst;
  require_integer "gather_elements" idx;
  check_range ctx "gather_elements" idx 0 len;
  check_range ctx "gather_elements" dst 0 len;
  tick ctx "gather";
  charge_op ctx ~vec ~op:"gather" ~instrs:2 ~len ~esize:(esize dst);
  if Block.functional ctx then begin
    let sb = Local_tensor.buffer src
    and ib = Local_tensor.buffer idx
    and db = Local_tensor.buffer dst in
    Local_tensor.touch dst;
    for i = 0 to len - 1 do
      let j = int_of_float (Host_buffer.get ib i) in
      if j < 0 || j >= Local_tensor.length src then
        invalid_arg
          (Printf.sprintf "Vec.gather_elements: index %d out of range" j);
      Host_buffer.set db i (Host_buffer.get sb j)
    done
  end

let get ctx ?(vec = 0) lt i =
  require_ub "get" lt;
  check_range ctx "get" lt i 0;
  tick ctx "scalar_get";
  charge_scalar ctx ~vec ~op:"scalar_get";
  if Block.functional ctx then Local_tensor.get lt i else 0.0

let set ctx ?(vec = 0) lt i v =
  require_ub "set" lt;
  check_range ctx "set" lt i 0;
  tick ctx "scalar_set";
  charge_scalar ctx ~vec ~op:"scalar_set";
  if Block.functional ctx then Local_tensor.set lt i v
