type binop = Add | Sub | Mul | Max | Min
type cmp = Eq | Ne | Lt | Le | Gt | Ge

let require_ub what lt =
  match Local_tensor.kind lt with
  | Mem_kind.Ub _ -> ()
  | k ->
      invalid_arg
        (Printf.sprintf "Vec.%s: operand in %s; vector engines only access UB"
           what (Mem_kind.to_string k))

let check_range ctx what lt off len =
  if off < 0 || len < 0 || off + len > Local_tensor.length lt then begin
    let msg =
      Printf.sprintf "Vec.%s: range %d+%d out of bounds [0,%d)" what off len
        (Local_tensor.length lt)
    in
    (match Block.sanitizer ctx with
    | Some san ->
        Sanitizer.record_oob san ~block:(Block.idx ctx) ~op:("Vec." ^ what)
          ~tensor:(Mem_kind.to_string (Local_tensor.kind lt))
          ~message:msg
    | None -> ());
    invalid_arg msg
  end;
  (* Every vector-op operand funnels through here, so this one hook
     covers the whole Vec surface for the async-copy hazard check. *)
  Block.check_async_use ctx ~op:("Vec." ^ what) lt

(* Charge [instrs] vector instructions processing [len] elements of the
   widest operand involved. *)
let charge_op ctx ~vec ~op ~instrs ~len ~esize =
  let cm = Block.cost ctx in
  let per = Cost_model.vec_op_cycles cm ~bytes:(len * esize) in
  Block.charge ~op ctx (Engine.Vec vec) (float_of_int instrs *. per)

let tick = Block.count_op

let charge_scalar ctx ~vec ~op =
  let cm = Block.cost ctx in
  Block.charge ~op ctx (Engine.Vec vec) cm.Cost_model.scalar_access_cycles

let esize lt = Dtype.size_bytes (Local_tensor.dtype lt)

(* Element-wise loops now route through the Host_buffer bulk kernels:
   one range validation, then a bounds-check-free dtype-specialised
   inner loop over the flat Bigarray storage. *)
let map1 ctx f ~src ~src_off ~dst ~dst_off ~len =
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    Host_buffer.map1_f f
      ~src:(Local_tensor.buffer src) ~src_off
      ~dst:(Local_tensor.buffer dst) ~dst_off ~len
  end

let map2 ctx f ~src0 ~src0_off ~src1 ~src1_off ~dst ~dst_off ~len =
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    Host_buffer.map2_f f
      ~src0:(Local_tensor.buffer src0) ~src0_off
      ~src1:(Local_tensor.buffer src1) ~src1_off
      ~dst:(Local_tensor.buffer dst) ~dst_off ~len
  end

let hb_binop = function
  | Add -> Host_buffer.Add
  | Sub -> Host_buffer.Sub
  | Mul -> Host_buffer.Mul
  | Max -> Host_buffer.Max
  | Min -> Host_buffer.Min

let binop ctx ?(vec = 0) op ~src0 ?(src0_off = 0) ~src1 ?(src1_off = 0) ~dst
    ?(dst_off = 0) ~len () =
  require_ub "binop" src0;
  require_ub "binop" src1;
  require_ub "binop" dst;
  check_range ctx "binop" src0 src0_off len;
  check_range ctx "binop" src1 src1_off len;
  check_range ctx "binop" dst dst_off len;
  let name =
    match op with
    | Add -> "vadd" | Sub -> "vsub" | Mul -> "vmul" | Max -> "vmax"
    | Min -> "vmin"
  in
  tick ctx name;
  charge_op ctx ~vec ~op:name ~instrs:1 ~len ~esize:(esize dst);
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    Host_buffer.map2_binop (hb_binop op)
      ~src0:(Local_tensor.buffer src0) ~src0_off
      ~src1:(Local_tensor.buffer src1) ~src1_off
      ~dst:(Local_tensor.buffer dst) ~dst_off ~len
  end

let add ctx ?(vec = 0) ~src0 ~src1 ~dst ~len () =
  binop ctx ~vec Add ~src0 ~src1 ~dst ~len ()

(* Shared tick / UB-residency / bounds / cost prologue of the
   tensor-scalar ops; the data path varies per caller. *)
let scalar_prologue name ctx ~vec ~src ~src_off ~dst ~dst_off ~len =
  tick ctx name;
  require_ub name src;
  require_ub name dst;
  check_range ctx name src src_off len;
  check_range ctx name dst dst_off len;
  charge_op ctx ~vec ~op:name ~instrs:1 ~len ~esize:(esize dst)

let scalar_map name f ctx ~vec ~src ~src_off ~dst ~dst_off ~len =
  scalar_prologue name ctx ~vec ~src ~src_off ~dst ~dst_off ~len;
  map1 ctx f ~src ~src_off ~dst ~dst_off ~len

let scalar_map_spec name op ctx ~vec ~src ~src_off ~dst ~dst_off ~scalar ~len =
  scalar_prologue name ctx ~vec ~src ~src_off ~dst ~dst_off ~len;
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    Host_buffer.map1_scalar op
      ~src:(Local_tensor.buffer src) ~src_off
      ~dst:(Local_tensor.buffer dst) ~dst_off ~scalar ~len
  end

let adds ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~scalar ~len () =
  scalar_map_spec "adds" Host_buffer.Adds ctx ~vec ~src ~src_off ~dst ~dst_off
    ~scalar ~len

let muls ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~scalar ~len () =
  scalar_map_spec "muls" Host_buffer.Muls ctx ~vec ~src ~src_off ~dst ~dst_off
    ~scalar ~len

let maxs ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~scalar ~len () =
  scalar_map_spec "maxs" Host_buffer.Maxs ctx ~vec ~src ~src_off ~dst ~dst_off
    ~scalar ~len

let mins ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~scalar ~len () =
  scalar_map_spec "mins" Host_buffer.Mins ctx ~vec ~src ~src_off ~dst ~dst_off
    ~scalar ~len

let exp ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  scalar_map "exp" Stdlib.exp ctx ~vec ~src ~src_off ~dst ~dst_off ~len

let fun_of_cmp = function
  | Eq -> ( = )
  | Ne -> ( <> )
  | Lt -> ( < )
  | Le -> ( <= )
  | Gt -> ( > )
  | Ge -> ( >= )

let compare_scalar ctx ?(vec = 0) cmp ~src ?(src_off = 0) ~dst ?(dst_off = 0)
    ~scalar ~len () =
  let test = fun_of_cmp cmp in
  scalar_map "compare_scalar"
    (fun v -> if test (Float.compare v scalar) 0 then 1.0 else 0.0)
    ctx ~vec ~src ~src_off ~dst ~dst_off ~len

let compare ctx ?(vec = 0) cmp ~src0 ~src1 ~dst ~len () =
  require_ub "compare" src0;
  require_ub "compare" src1;
  require_ub "compare" dst;
  check_range ctx "compare" src0 0 len;
  check_range ctx "compare" src1 0 len;
  check_range ctx "compare" dst 0 len;
  tick ctx "vcompare";
  charge_op ctx ~vec ~op:"vcompare" ~instrs:1 ~len ~esize:(esize src0);
  let test = fun_of_cmp cmp in
  map2 ctx
    (fun a b -> if test (Float.compare a b) 0 then 1.0 else 0.0)
    ~src0 ~src0_off:0 ~src1 ~src1_off:0 ~dst ~dst_off:0 ~len

let select ctx ?(vec = 0) ?(mask_off = 0) ~mask ?(src0_off = 0) ~src0
    ?(src1_off = 0) ~src1 ?(dst_off = 0) ~dst ~len () =
  require_ub "select" mask;
  require_ub "select" src0;
  require_ub "select" src1;
  require_ub "select" dst;
  check_range ctx "select" mask mask_off len;
  check_range ctx "select" src0 src0_off len;
  check_range ctx "select" src1 src1_off len;
  check_range ctx "select" dst dst_off len;
  tick ctx "vselect";
  charge_op ctx ~vec ~op:"vselect" ~instrs:1 ~len ~esize:(esize dst);
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    Host_buffer.select_range
      ~mask:(Local_tensor.buffer mask) ~mask_off
      ~src0:(Local_tensor.buffer src0) ~src0_off
      ~src1:(Local_tensor.buffer src1) ~src1_off
      ~dst:(Local_tensor.buffer dst) ~dst_off ~len
  end

(* Bit-wise ops view each element as the unsigned field of its dtype. *)
let unsigned_field dt v =
  let bits = Dtype.size_bytes dt * 8 in
  let m = 1 lsl bits in
  ((int_of_float v) mod m + m) mod m

let require_integer what lt =
  if not (Dtype.is_integer (Local_tensor.dtype lt)) then
    invalid_arg
      (Printf.sprintf "Vec.%s: bit-wise ops require an integer data type" what)

let bit_map name f ctx ~vec ~src ~src_off ~dst ~dst_off ~len =
  require_integer name src;
  require_integer name dst;
  let sdt = Local_tensor.dtype src in
  scalar_map name
    (fun v -> float_of_int (f (unsigned_field sdt v)))
    ctx ~vec ~src ~src_off ~dst ~dst_off ~len

let shift_right ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~bits
    ~len () =
  bit_map "shift_right" (fun u -> u lsr bits) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

let shift_left ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~bits
    ~len () =
  bit_map "shift_left" (fun u -> u lsl bits) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

let bit_ands ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~mask ~len () =
  bit_map "bit_ands" (fun u -> u land mask) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

let bit_ors ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~mask ~len () =
  bit_map "bit_ors" (fun u -> u lor mask) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

let bit_xors ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~mask ~len () =
  bit_map "bit_xors" (fun u -> u lxor mask) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

let bit_not ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  require_integer "bit_not" src;
  let bits = Dtype.size_bytes (Local_tensor.dtype src) * 8 in
  let full = (1 lsl bits) - 1 in
  bit_map "bit_not" (fun u -> u lxor full) ctx ~vec ~src ~src_off ~dst
    ~dst_off ~len

type bitop = And | Or | Xor

let bit_op ctx ?(vec = 0) op ~src0 ?(src0_off = 0) ~src1 ?(src1_off = 0) ~dst
    ?(dst_off = 0) ~len () =
  require_integer "bit_op" src0;
  require_integer "bit_op" src1;
  require_integer "bit_op" dst;
  require_ub "bit_op" src0;
  require_ub "bit_op" src1;
  require_ub "bit_op" dst;
  check_range ctx "bit_op" src0 src0_off len;
  check_range ctx "bit_op" src1 src1_off len;
  check_range ctx "bit_op" dst dst_off len;
  tick ctx "vbitop";
  charge_op ctx ~vec ~op:"vbitop" ~instrs:1 ~len ~esize:(esize dst);
  let f = match op with
    | And -> ( land )
    | Or -> ( lor )
    | Xor -> ( lxor )
  in
  let d0 = Local_tensor.dtype src0 and d1 = Local_tensor.dtype src1 in
  map2 ctx
    (fun a b -> float_of_int (f (unsigned_field d0 a) (unsigned_field d1 b)))
    ~src0 ~src0_off ~src1 ~src1_off ~dst ~dst_off ~len

let arange ctx ?(vec = 0) ~dst ?(dst_off = 0) ~start ~len () =
  require_ub "arange" dst;
  check_range ctx "arange" dst dst_off len;
  tick ctx "arange";
  charge_op ctx ~vec ~op:"arange" ~instrs:1 ~len ~esize:(esize dst);
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    Host_buffer.arange_range (Local_tensor.buffer dst) ~off:dst_off ~start ~len
  end

let cast ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  require_ub "cast" src;
  require_ub "cast" dst;
  check_range ctx "cast" src src_off len;
  check_range ctx "cast" dst dst_off len;
  tick ctx "vcast";
  charge_op ctx ~vec ~op:"vcast" ~instrs:1 ~len ~esize:(max (esize src) (esize dst));
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    (* Host_buffer.blit applies {!Dtype.cast} from the source dtype,
       exactly what the per-element set_cast loop did. *)
    Host_buffer.blit ~src:(Local_tensor.buffer src) ~src_off
      ~dst:(Local_tensor.buffer dst) ~dst_off ~len
  end

let dup ctx ?(vec = 0) ~dst ?(dst_off = 0) ~scalar ~len () =
  require_ub "dup" dst;
  check_range ctx "dup" dst dst_off len;
  tick ctx "duplicate";
  charge_op ctx ~vec ~op:"duplicate" ~instrs:1 ~len ~esize:(esize dst);
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    Host_buffer.fill_range (Local_tensor.buffer dst) ~off:dst_off ~len scalar
  end

let copy ctx ?(vec = 0) ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  scalar_prologue "copy" ctx ~vec ~src ~src_off ~dst ~dst_off ~len;
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    (* Same dtype degenerates to a memmove; converting copies share the
       cast path with [cast] (identical to the old rounding stores). *)
    Host_buffer.blit ~src:(Local_tensor.buffer src) ~src_off
      ~dst:(Local_tensor.buffer dst) ~dst_off ~len
  end

let reduce_sum ctx ?(vec = 0) ~src ?(src_off = 0) ~len () =
  require_ub "reduce_sum" src;
  check_range ctx "reduce_sum" src src_off len;
  tick ctx "reduce_sum";
  charge_op ctx ~vec ~op:"reduce_sum" ~instrs:1 ~len ~esize:(esize src);
  charge_scalar ctx ~vec ~op:"reduce_sum";
  if Block.functional ctx then
    Dtype.round Dtype.F32
      (Host_buffer.reduce_add (Local_tensor.buffer src) ~off:src_off ~len)
  else 0.0

let reduce_max ctx ?(vec = 0) ~src ?(src_off = 0) ~len () =
  require_ub "reduce_max" src;
  check_range ctx "reduce_max" src src_off len;
  if len = 0 then invalid_arg "Vec.reduce_max: empty range";
  tick ctx "reduce_max";
  charge_op ctx ~vec ~op:"reduce_max" ~instrs:1 ~len ~esize:(esize src);
  charge_scalar ctx ~vec ~op:"reduce_max";
  if Block.functional ctx then
    Host_buffer.reduce_max (Local_tensor.buffer src) ~off:src_off ~len
  else 0.0

let cumsum ctx ?(vec = 0) ~src ~dst ~rows ~cols () =
  require_ub "cumsum" src;
  require_ub "cumsum" dst;
  let len = rows * cols in
  check_range ctx "cumsum" src 0 len;
  check_range ctx "cumsum" dst 0 len;
  let cm = Block.cost ctx in
  tick ctx "cumsum_api";
  let instrs =
    int_of_float (Float.ceil (cm.Cost_model.cumsum_instrs_per_row *. float_of_int rows))
  in
  charge_op ctx ~vec ~op:"cumsum_api" ~instrs:1 ~len:(instrs * cols) ~esize:(esize src);
  (* The per-row instruction count is charged through a single composite
     call above: [instrs] row-sized instructions. Re-express the issue
     overhead explicitly since charge_op only adds one issue cost. *)
  Block.charge ~op:"cumsum_api" ctx (Engine.Vec vec)
    (float_of_int (instrs - 1) *. cm.Cost_model.vec_issue_cycles);
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    ignore
      (Host_buffer.scan_accum ~src:(Local_tensor.buffer src)
         ~dst:(Local_tensor.buffer dst) ~len)
  end

let sort_region ctx ?(vec = 0) ?(descending = false) ~src ~dst ~len () =
  require_ub "sort_region" src;
  require_ub "sort_region" dst;
  check_range ctx "sort_region" src 0 len;
  check_range ctx "sort_region" dst 0 len;
  if len = 0 then invalid_arg "Vec.sort_region: empty region";
  tick ctx "sort_region";
  (* One Sort32 sweep plus log4 merge passes, each region-sized. *)
  let merge_passes =
    let rec go runs acc = if runs <= 1 then acc else go ((runs + 3) / 4) (acc + 1) in
    go ((len + 31) / 32) 0
  in
  charge_op ctx ~vec ~op:"sort_region" ~instrs:(1 + (2 * merge_passes)) ~len ~esize:(esize src);
  if Block.functional ctx then begin
    let sb = Local_tensor.buffer src and db = Local_tensor.buffer dst in
    let a = Array.init len (fun i -> Host_buffer.get sb i) in
    Array.sort (fun x y -> Float.compare x y) a;
    Local_tensor.touch dst;
    for i = 0 to len - 1 do
      let v = if descending then a.(len - 1 - i) else a.(i) in
      Host_buffer.set db i v
    done
  end

let gather_mask ctx ?(vec = 0) ~src ?(src_off = 0) ~mask ?(mask_off = 0) ~dst
    ?(dst_off = 0) ~len () =
  require_ub "gather_mask" src;
  require_ub "gather_mask" mask;
  require_ub "gather_mask" dst;
  check_range ctx "gather_mask" src src_off len;
  check_range ctx "gather_mask" mask mask_off len;
  (* Destination holds at most [len] gathered elements. *)
  check_range ctx "gather_mask" dst dst_off 0;
  tick ctx "gather_mask";
  charge_op ctx ~vec ~op:"gather_mask" ~instrs:2 ~len ~esize:(esize src);
  charge_scalar ctx ~vec ~op:"gather_mask";
  if Block.functional ctx then begin
    let sb = Local_tensor.buffer src
    and mb = Local_tensor.buffer mask
    and db = Local_tensor.buffer dst in
    Local_tensor.touch dst;
    let k = ref 0 in
    for i = 0 to len - 1 do
      if Host_buffer.get mb (mask_off + i) <> 0.0 then begin
        Host_buffer.set db (dst_off + !k) (Host_buffer.get sb (src_off + i));
        incr k
      end
    done;
    !k
  end
  else 0

let gather_elements ctx ?(vec = 0) ~src ~idx ~dst ~len () =
  require_ub "gather_elements" src;
  require_ub "gather_elements" idx;
  require_ub "gather_elements" dst;
  require_integer "gather_elements" idx;
  check_range ctx "gather_elements" idx 0 len;
  check_range ctx "gather_elements" dst 0 len;
  tick ctx "gather";
  charge_op ctx ~vec ~op:"gather" ~instrs:2 ~len ~esize:(esize dst);
  if Block.functional ctx then begin
    let sb = Local_tensor.buffer src
    and ib = Local_tensor.buffer idx
    and db = Local_tensor.buffer dst in
    Local_tensor.touch dst;
    for i = 0 to len - 1 do
      let j = int_of_float (Host_buffer.get ib i) in
      if j < 0 || j >= Local_tensor.length src then
        invalid_arg
          (Printf.sprintf "Vec.gather_elements: index %d out of range" j);
      Host_buffer.set db i (Host_buffer.get sb j)
    done
  end

let get ctx ?(vec = 0) lt i =
  require_ub "get" lt;
  check_range ctx "get" lt i 0;
  tick ctx "scalar_get";
  charge_scalar ctx ~vec ~op:"scalar_get";
  if Block.functional ctx then Local_tensor.get lt i else 0.0

let set ctx ?(vec = 0) lt i v =
  require_ub "set" lt;
  check_range ctx "set" lt i 0;
  tick ctx "scalar_set";
  charge_scalar ctx ~vec ~op:"scalar_set";
  if Block.functional ctx then Local_tensor.set lt i v

(* Tile-batched row-carry propagation: semantically, for each row of
   [s] elements (last row possibly short),

     <scalar-op> buf[row] (op carry); carry <- scalar get of last elt

   i.e. exactly the adds/maxs + Vec.get loop scan kernels ran per UB
   tile, but issued as one op: costs are charged through
   Block.charge_rows in the same per-row (vector op, scalar_get)
   order, instruction counts through count_op_n, and the data pass is
   a single in-place Host_buffer.scan_segment sweep. *)
let scan_rows ctx ?(vec = 0) ~op ~buf ~len ~s ~init () =
  require_ub "scan_rows" buf;
  check_range ctx "scan_rows" buf 0 len;
  if s <= 0 then invalid_arg "Vec.scan_rows: s must be positive";
  if len = 0 then init
  else begin
    let name, hop =
      match op with
      | Add -> "adds", Host_buffer.Add
      | Mul -> "muls", Host_buffer.Mul
      | Max -> "maxs", Host_buffer.Max
      | Min -> "mins", Host_buffer.Min
      | Sub -> invalid_arg "Vec.scan_rows: Sub has no tensor-scalar form"
    in
    let cm = Block.cost ctx in
    let esz = esize buf in
    let full = len / s in
    let rem = len - (full * s) in
    let nrows = full + (if rem > 0 then 1 else 0) in
    Block.count_op_n ctx name nrows;
    Block.count_op_n ctx "scalar_get" nrows;
    let c_scalar = cm.Cost_model.scalar_access_cycles in
    Block.charge_rows ctx (Engine.Vec vec) ~count:full
      [|
        (name, Cost_model.vec_op_cycles cm ~bytes:(s * esz));
        ("scalar_get", c_scalar);
      |];
    if rem > 0 then begin
      Block.charge ~op:name ctx (Engine.Vec vec)
        (Cost_model.vec_op_cycles cm ~bytes:(rem * esz));
      Block.charge ~op:"scalar_get" ctx (Engine.Vec vec) c_scalar
    end;
    if Block.functional ctx then begin
      Local_tensor.touch buf;
      Host_buffer.scan_segment hop (Local_tensor.buffer buf) ~off:0 ~len
        ~seg:s ~init
    end
    else
      (* Cost-only devices return 0.0 from scalar reads; the carry after
         at least one row is therefore 0.0, matching the scalar path. *)
      0.0
  end
