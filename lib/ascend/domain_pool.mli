(** A small reusable pool of OCaml 5 domains for the host-side
    execution engine (stdlib [Domain]/[Mutex]/[Condition] only).

    The pool hands loop indices to its workers from a shared counter;
    the calling domain participates as one worker, so a request for
    [slots] uses at most [slots - 1] pool domains. Workers are spawned
    lazily and reused across calls; one process-wide pool (see
    {!global}) serves every {!Device} so repeated device creation
    never exhausts the runtime's domain budget. *)

type t

val create : ?max_workers:int -> unit -> t
(** A fresh pool. [max_workers] caps the number of spawned domains
    (beyond the caller); it defaults to, and is clamped to, 63.
    Raises [Invalid_argument] when negative. *)

val size : t -> int
(** Number of worker domains spawned so far (grows lazily). *)

val parallel_for : t -> ?grain:int -> slots:int -> n:int -> (int -> unit) -> unit
(** [parallel_for t ~slots ~n body] runs [body i] exactly once for
    every [i] in [[0, n)], using at most [slots] concurrent domains
    (the caller included), and returns after all of them finished.
    The body must deposit its results into caller-owned storage
    indexed by [i]; no ordering between indices is guaranteed while
    the loop runs. Runs the plain sequential loop when [slots <= 1],
    [n = 1], or when called from inside another [parallel_for] on the
    same pool (nested calls degrade rather than deadlock). If bodies
    raised, the exception of the {e smallest} failing index is
    re-raised after the join — the error a sequential left-to-right
    loop would have surfaced first.

    [grain] (default [1]) is the number of consecutive indices a
    worker claims per access to the shared counter: work-stealing
    stays index-exact, but the counter lock is amortised over [grain]
    body runs. An index that raises never prevents the other indices
    of its chunk from running. Raises [Invalid_argument] when
    [grain < 1]. *)

val shutdown : t -> unit
(** Stop and join all workers. Subsequent [parallel_for] calls on the
    pool degrade to sequential loops. *)

val global : unit -> t
(** The lazily created process-wide pool (joined automatically via
    [at_exit]). *)
