let gm_bytes gt len = len * Dtype.size_bytes (Global_tensor.dtype gt)
let local_bytes lt len = len * Dtype.size_bytes (Local_tensor.dtype lt)

let check ctx what ~tensor ~len ~src_off ~dst_off ~src_len ~dst_len =
  if len < 0 || src_off < 0 || dst_off < 0 || src_off + len > src_len
     || dst_off + len > dst_len
  then begin
    let msg =
      Printf.sprintf "Mte.%s: range out of bounds (len %d, src %d+/%d, dst %d+/%d)"
        what len src_off src_len dst_off dst_len
    in
    (match Block.sanitizer ctx with
    | Some san ->
        Sanitizer.record_oob san ~block:(Block.idx ctx) ~op:("Mte." ^ what)
          ~tensor ~message:msg
    | None -> ());
    invalid_arg msg
  end

(* Record one GM access span for the cross-block hazard analysis. *)
let san_access ctx gt ~write ~off ~len ~op =
  match Block.sanitizer ctx with
  | None -> ()
  | Some san ->
      Sanitizer.record_global_access san ~block:(Block.idx ctx)
        ~tensor_id:(Global_tensor.id gt) ~tensor_name:(Global_tensor.name gt)
        ~write ~off ~len ~op

(* Consult the device fault model about one GM<->UB transfer. *)
let draw_fault ctx ~engine ~op ~tensor ~dst_off ~len ~dst_dtype =
  match Block.fault ctx with
  | None -> Fault.No_fault
  | Some f ->
      let act =
        Fault.draw f ~engine ~op ~tensor ~dst_off ~len
          ~elem_bits:(8 * Dtype.size_bytes dst_dtype)
      in
      (* Persistent-health scoring: a core whose fault count trips the
         quarantine budget dies here, before the faulty payload lands. *)
      (match act with Fault.No_fault -> () | _ -> Block.note_fault ctx);
      act

let faulted_cycles act cycles =
  match act with Fault.Stall m -> cycles *. m | _ -> cycles

(* The functional payload of every copy executes eagerly at issue time
   (host blits), in program order — only the *timing* of an async copy
   floats until its wait_group. That keeps output buffers byte-identical
   between sync and async schedules; the sanitizer's async-hazard check
   is what models the race a real device would expose. *)
let copy_in_impl ~async ctx ~engine ~src ~src_off ~dst ~dst_off ~len =
  Block.count_op ctx "datacopy_in";
  check ctx "copy_in" ~tensor:(Global_tensor.name src) ~len ~src_off ~dst_off
    ~src_len:(Global_tensor.length src) ~dst_len:(Local_tensor.length dst);
  Block.check_async_use ctx ~op:"Mte.copy_in" dst;
  san_access ctx src ~write:false ~off:src_off ~len ~op:"datacopy_in";
  let bytes = gm_bytes src len in
  let act =
    draw_fault ctx ~engine ~op:"datacopy_in" ~tensor:(Global_tensor.name src)
      ~dst_off ~len ~dst_dtype:(Local_tensor.dtype dst)
  in
  let cycles =
    faulted_cycles act (Cost_model.mte_copy_cycles (Block.cost ctx) ~bytes)
  in
  if async then Block.charge_async ~op:"datacopy_in" ~bytes ~dst ctx engine cycles
  else Block.charge ~op:"datacopy_in" ~bytes ctx engine cycles;
  Block.note_gm_traffic ctx ~read:bytes ~write:0;
  Block.note_touched ctx src;
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    (match act with
    | Fault.Drop -> ()
    | Fault.Truncate keep ->
        if keep > 0 then
          Host_buffer.blit ~src:(Global_tensor.buffer src) ~src_off
            ~dst:(Local_tensor.buffer dst) ~dst_off ~len:keep
    | _ ->
        Host_buffer.blit ~src:(Global_tensor.buffer src) ~src_off
          ~dst:(Local_tensor.buffer dst) ~dst_off ~len);
    match act with
    | Fault.Flip { index; bit } ->
        Fault.flip_in_buffer (Local_tensor.buffer dst) ~index:(dst_off + index)
          ~bit
    | _ -> ()
  end

let copy_in ctx ~engine ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  copy_in_impl ~async:false ctx ~engine ~src ~src_off ~dst ~dst_off ~len

let copy_in_async ctx ~engine ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  copy_in_impl ~async:true ctx ~engine ~src ~src_off ~dst ~dst_off ~len

let copy_in_strided ctx ~engine ~src ~src_off ~src_stride ~dst ~dst_off
    ~dst_stride ~burst ~count =
  Block.count_op ctx "datacopy_in";
  Block.check_async_use ctx ~op:"Mte.copy_in_strided" dst;
  if burst < 0 || count < 0 then
    invalid_arg "Mte.copy_in_strided: negative burst or count";
  let len = burst * count in
  let bytes = gm_bytes src len in
  if count > 0 then
    san_access ctx src ~write:false ~off:src_off
      ~len:(((count - 1) * src_stride) + burst)
      ~op:"datacopy_in";
  let act =
    draw_fault ctx ~engine ~op:"datacopy_in" ~tensor:(Global_tensor.name src)
      ~dst_off ~len ~dst_dtype:(Local_tensor.dtype dst)
  in
  Block.charge ~op:"datacopy_in" ~bytes ctx engine
    (faulted_cycles act (Cost_model.mte_copy_cycles (Block.cost ctx) ~bytes));
  Block.note_gm_traffic ctx ~read:bytes ~write:0;
  Block.note_touched ctx src;
  if Block.functional ctx then begin
    Local_tensor.touch dst;
    let keep =
      match act with
      | Fault.Drop -> 0
      | Fault.Truncate k -> k
      | _ -> len
    in
    (* Degenerate strides describe one contiguous span: collapse the
       per-burst loop into a single bulk blit. *)
    if src_stride = burst && dst_stride = burst then begin
      let blen = min keep len in
      if blen > 0 then
        Host_buffer.blit ~src:(Global_tensor.buffer src) ~src_off
          ~dst:(Local_tensor.buffer dst) ~dst_off ~len:blen
    end
    else
      for c = 0 to count - 1 do
        let blen = min burst (max 0 (keep - (c * burst))) in
        if blen > 0 then
          Host_buffer.blit ~src:(Global_tensor.buffer src)
            ~src_off:(src_off + (c * src_stride))
            ~dst:(Local_tensor.buffer dst)
            ~dst_off:(dst_off + (c * dst_stride))
            ~len:blen
      done;
    match act with
    | Fault.Flip { index; bit } ->
        let c = index / burst and j = index mod burst in
        Fault.flip_in_buffer (Local_tensor.buffer dst)
          ~index:(dst_off + (c * dst_stride) + j) ~bit
    | _ -> ()
  end

let copy_out_impl ~async ctx ~engine ~src ~src_off ~dst ~dst_off ~len =
  Block.count_op ctx "datacopy_out";
  check ctx "copy_out" ~tensor:(Global_tensor.name dst) ~len ~src_off ~dst_off
    ~src_len:(Local_tensor.length src) ~dst_len:(Global_tensor.length dst);
  Block.check_async_use ctx ~op:"Mte.copy_out" src;
  san_access ctx dst ~write:true ~off:dst_off ~len ~op:"datacopy_out";
  let bytes = gm_bytes dst len in
  let act =
    draw_fault ctx ~engine ~op:"datacopy_out" ~tensor:(Global_tensor.name dst)
      ~dst_off ~len ~dst_dtype:(Global_tensor.dtype dst)
  in
  let cycles =
    faulted_cycles act (Cost_model.mte_copy_cycles (Block.cost ctx) ~bytes)
  in
  (* The destination is GM, so there is no local tile to track: an
     outbound group is only ever waited to pace the store queue. *)
  if async then Block.charge_async ~op:"datacopy_out" ~bytes ctx engine cycles
  else Block.charge ~op:"datacopy_out" ~bytes ctx engine cycles;
  Block.note_gm_traffic ctx ~read:0 ~write:bytes;
  Block.note_touched ctx dst;
  if Block.functional ctx then begin
    (match act with
    | Fault.Drop -> ()
    | Fault.Truncate keep ->
        if keep > 0 then
          Host_buffer.blit ~src:(Local_tensor.buffer src) ~src_off
            ~dst:(Global_tensor.buffer dst) ~dst_off ~len:keep
    | _ ->
        Host_buffer.blit ~src:(Local_tensor.buffer src) ~src_off
          ~dst:(Global_tensor.buffer dst) ~dst_off ~len);
    match act with
    | Fault.Flip { index; bit } ->
        Fault.flip_in_buffer (Global_tensor.buffer dst) ~index:(dst_off + index)
          ~bit
    | _ -> ()
  end

let copy_out ctx ~engine ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  copy_out_impl ~async:false ctx ~engine ~src ~src_off ~dst ~dst_off ~len

let copy_out_async ctx ~engine ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  copy_out_impl ~async:true ctx ~engine ~src ~src_off ~dst ~dst_off ~len

let copy_out_strided ctx ~engine ~src ~src_off ~src_stride ~dst ~dst_off
    ~dst_stride ~burst ~count =
  Block.count_op ctx "datacopy_out";
  Block.check_async_use ctx ~op:"Mte.copy_out_strided" src;
  if burst < 0 || count < 0 then
    invalid_arg "Mte.copy_out_strided: negative burst or count";
  let len = burst * count in
  let bytes = gm_bytes dst len in
  if count > 0 then
    san_access ctx dst ~write:true ~off:dst_off
      ~len:(((count - 1) * dst_stride) + burst)
      ~op:"datacopy_out";
  let act =
    draw_fault ctx ~engine ~op:"datacopy_out" ~tensor:(Global_tensor.name dst)
      ~dst_off ~len ~dst_dtype:(Global_tensor.dtype dst)
  in
  Block.charge ~op:"datacopy_out" ~bytes ctx engine
    (faulted_cycles act (Cost_model.mte_copy_cycles (Block.cost ctx) ~bytes));
  Block.note_gm_traffic ctx ~read:0 ~write:bytes;
  Block.note_touched ctx dst;
  if Block.functional ctx then begin
    let keep =
      match act with
      | Fault.Drop -> 0
      | Fault.Truncate k -> k
      | _ -> len
    in
    (* Contiguous-span collapse, as in [copy_in_strided]. *)
    if src_stride = burst && dst_stride = burst then begin
      let blen = min keep len in
      if blen > 0 then
        Host_buffer.blit ~src:(Local_tensor.buffer src) ~src_off
          ~dst:(Global_tensor.buffer dst) ~dst_off ~len:blen
    end
    else
      for c = 0 to count - 1 do
        let blen = min burst (max 0 (keep - (c * burst))) in
        if blen > 0 then
          Host_buffer.blit ~src:(Local_tensor.buffer src)
            ~src_off:(src_off + (c * src_stride))
            ~dst:(Global_tensor.buffer dst)
            ~dst_off:(dst_off + (c * dst_stride))
            ~len:blen
      done;
    match act with
    | Fault.Flip { index; bit } ->
        let c = index / burst and j = index mod burst in
        Fault.flip_in_buffer (Global_tensor.buffer dst)
          ~index:(dst_off + (c * dst_stride) + j) ~bit
    | _ -> ()
  end

(* On-chip transfers: the scratchpad SRAM paths are assumed reliable,
   so the fault model only targets the GM<->UB copies above. *)
let copy_local ctx ~engine ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len () =
  Block.count_op ctx "datacopy_local";
  check ctx "copy_local" ~tensor:"(local)" ~len ~src_off ~dst_off
    ~src_len:(Local_tensor.length src) ~dst_len:(Local_tensor.length dst);
  Block.check_async_use ctx ~op:"Mte.copy_local" src;
  Block.check_async_use ctx ~op:"Mte.copy_local" dst;
  let bytes = max (local_bytes src len) (local_bytes dst len) in
  Block.charge ~op:"datacopy_local" ~bytes ctx engine
    (Cost_model.local_copy_cycles (Block.cost ctx) ~bytes);
  if Block.functional ctx then begin
    let whole =
      src_off = 0 && dst_off = 0
      && len = Local_tensor.length src
      && len = Local_tensor.length dst
    in
    let src_structure = Local_tensor.structure src in
    Local_tensor.touch dst;
    Host_buffer.blit ~src:(Local_tensor.buffer src) ~src_off
      ~dst:(Local_tensor.buffer dst) ~dst_off ~len;
    if whole then Local_tensor.set_structure dst src_structure
  end

(* AscendC commit/wait-group discipline over the async copies above;
   thin delegations so kernels only ever import [Mte]. *)
let commit_group ctx ~engine = Block.commit_group ctx engine
let wait_group ctx ~engine ~outstanding = Block.wait_group ctx engine ~outstanding
