type mode = Functional | Cost_only

type t = {
  cost : Cost_model.t;
  mode : mode;
  mutable next_id : int;
  mutable allocated_bytes : int;
  fault : Fault.t option;
  sanitizer : Sanitizer.t option;
  health : Health.t;
  deadline_cycles : float option;
  domains : int;
  mutable trace : Trace.t option;
}

(* Default host-parallelism width: the ASCEND_SIM_DOMAINS environment
   variable when it parses as a positive integer, else 1 (sequential).
   A garbage value falls back to 1 rather than failing device
   creation; the CLI validates its own --domains flag separately. *)
let default_domains () =
  match Sys.getenv_opt "ASCEND_SIM_DOMAINS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> d
      | _ -> 1)

let create ?(cost = Cost_model.default) ?(mode = Functional) ?fault
    ?(sanitize = false) ?deadline_cycles ?domains () =
  (match deadline_cycles with
  | Some d when d <= 0.0 || Float.is_nan d ->
      invalid_arg "Device.create: deadline_cycles must be positive"
  | _ -> ());
  let domains =
    match domains with
    | None -> default_domains ()
    | Some d when d >= 1 -> d
    | Some d ->
        invalid_arg
          (Printf.sprintf "Device.create: domains must be >= 1 (got %d)" d)
  in
  let num_cores = cost.Cost_model.num_ai_cores in
  let health =
    match fault with
    | Some (cfg : Fault.config) ->
        Health.create ~num_cores ~kills:cfg.Fault.kills
          ?quarantine_after:cfg.Fault.quarantine_after ()
    | None -> Health.create ~num_cores ()
  in
  {
    cost;
    mode;
    next_id = 0;
    allocated_bytes = 0;
    fault = Option.map Fault.create fault;
    sanitizer = (if sanitize then Some (Sanitizer.create ()) else None);
    health;
    deadline_cycles;
    domains;
    trace = None;
  }

let cost t = t.cost
let mode t = t.mode
let fault t = t.fault
let sanitizer t = t.sanitizer
let health t = t.health
let deadline_cycles t = t.deadline_cycles
let domains t = t.domains
let trace t = t.trace
let set_trace t tr = t.trace <- tr

let arm_trace t =
  let tr = Trace.create ~clock_hz:t.cost.Cost_model.clock_hz () in
  t.trace <- Some tr;
  tr

let functional t =
  match t.mode with Functional -> true | Cost_only -> false

let num_cores t = t.cost.Cost_model.num_ai_cores
let num_vec_cores t = num_cores t * t.cost.Cost_model.vec_per_core

let alloc t dtype length ~name =
  if length < 0 then
    invalid_arg
      (Printf.sprintf "Device.alloc: negative length %d for %S" length name);
  let id = t.next_id in
  t.next_id <- id + 1;
  t.allocated_bytes <- t.allocated_bytes + (length * Dtype.size_bytes dtype);
  Global_tensor.make ~id ~name ~dtype ~length ~backed:(functional t)

let of_array t dtype ~name a =
  let gt = alloc t dtype (Array.length a) ~name in
  Global_tensor.load gt a;
  gt

let allocated_bytes t = t.allocated_bytes

let pp fmt t =
  Format.fprintf fmt "device(%s, %d/%d cores alive, %d MiB allocated%s%s)"
    (match t.mode with Functional -> "functional" | Cost_only -> "cost-only")
    (Health.num_alive t.health) (num_cores t)
    (t.allocated_bytes / 1024 / 1024)
    (match t.fault with
    | Some f ->
        let cfg = Fault.config_of f in
        Printf.sprintf ", faults seed=%d rate=%g" cfg.Fault.seed cfg.Fault.rate
    | None -> "")
    (match t.sanitizer with Some _ -> ", sanitized" | None -> "")
