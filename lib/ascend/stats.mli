(** Execution statistics of one kernel launch. *)

type phase = {
  compute_seconds : float;
      (** Critical-path time of the slowest core (before the bandwidth cap). *)
  bandwidth_seconds : float;
      (** Lower bound from aggregate GM traffic / effective bandwidth. *)
  seconds : float;  (** max of the two. *)
  gm_bytes : int;  (** GM traffic of this phase (read + write). *)
  footprint_bytes : int;
      (** Distinct global-tensor bytes touched; decides L2 vs HBM
          effective bandwidth. *)
  bandwidth_bound : bool;
}

type t = {
  name : string;
  seconds : float;  (** End-to-end launch time incl. launch + barriers. *)
  phases : phase list;
  blocks : int;
  cores_used : int;
  gm_read_bytes : int;
  gm_write_bytes : int;
  engine_busy : (string * float) list;
      (** Aggregate busy cycles per engine name, summed over blocks. *)
  core_busy : float array;
      (** Busy cycles per {e physical} AI core (index = core id, length
          = [num_cores]), summed over the engines of the blocks the
          core executed — including the partial work of blocks replayed
          after a core death. Dead or idle cores read 0, making
          degraded runs visible. *)
  op_counts : (string * int) list;
      (** Instructions issued per op name, summed over blocks (sorted
          descending by count). *)
  faults : Fault.event list;
      (** Faults injected during this launch (empty without a device
          fault model). *)
  retries : int;
      (** Re-executions folded in by the resilient launcher. *)
  degraded : int;
      (** Fallback switches (e.g. cube path -> vector-only) folded in
          by the resilient launcher. *)
  host_seconds : float;
      (** Host wall-clock spent executing the launch (the simulator's
          own runtime, not simulated device time). Sums under
          {!combine}. *)
  domains : int;
      (** Host execution width the launch ran with (see
          {!Device.create}'s [domains]); max under {!combine}. *)
  launches : int;
      (** Number of device launches folded into these stats: 1 from
          {!Launch.run_phases}, the sum under {!combine}. Divides the
          summed host metrics into per-launch averages (see
          {!host_seconds_per_launch}), which would otherwise be
          ill-defined for combined stats. *)
}

val op_count : t -> string -> int
(** Count for one op name (0 when absent). *)

val core_utilization : t -> float array
(** Per-core busy cycles divided by the launch's simulated seconds.

    {b Units: cycles per second, not a ratio.} A fully busy engine
    contributes [clock_hz] cycles/second, so a core with its cube and
    two vector cores (plus MTEs) saturated reads a multiple of
    [clock_hz]; divide by it to get an occupancy factor. When the
    launch took no simulated time ([seconds <= 0.]) every entry is 0
    (the array keeps its per-core length instead of collapsing to
    [[||]]). *)

val phase_occupancy : phase -> busy_cycles:float -> clock_hz:float -> float
(** [busy_cycles / (phase.seconds * clock_hz)]: occupancy of one engine
    (or engine group) over one phase as a dimensionless fraction of the
    phase duration, 0 when the phase took no time or the clock is
    invalid — the per-phase analogue of {!core_utilization} with the
    zero-duration divide guarded. *)

val host_seconds_per_launch : t -> float
(** [host_seconds / launches]: average host wall-clock per device
    launch — well-defined for combined stats because both fields sum
    under {!combine}; 0 when no launches were recorded. *)

val gm_bytes : t -> int

val host_speedup : baseline:t -> t -> float
(** [baseline.host_seconds / t.host_seconds]: host wall-clock speedup
    of [t] over [baseline] (e.g. a multi-domain run over its
    sequential twin); 0 when [t] recorded no wall-clock. *)

val equal_simulated : t -> t -> bool
(** Equality of every simulation-determined field — all of them except
    [host_seconds] and [domains], which depend on the host machine.
    Two runs of the same kernel at different [--domains] settings must
    satisfy this exactly (the determinism contract of {!Launch}). *)

val empty : name:string -> t
(** All-zero statistics with no launches folded in — the honest result
    of a resumed job whose checkpoint store already covered every row,
    so nothing was launched at all. *)

val combine : name:string -> t list -> t
(** Aggregate the statistics of a multi-launch operator (e.g. the 17
    scans inside a radix-sorted top-p): seconds and traffic add up,
    phases concatenate, and per-engine busy cycles sum. Raises
    [Invalid_argument] on an empty list. *)

val effective_bandwidth : t -> bytes:int -> float
(** [bytes / seconds]: the bandwidth metric of the paper's figures, with
    the caller choosing which bytes count (e.g. 2 x N x elem-size for a
    scan: N read + N written). *)

val elements_per_second : t -> elements:int -> float

val pp : Format.formatter -> t -> unit
val pp_summary : Format.formatter -> t -> unit
