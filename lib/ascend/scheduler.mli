(** Topology-aware work partitioning over the surviving core set.

    Kernels used to hard-wire their [parfor] width to
    [Device.num_cores]; they now request a plan, which sizes the launch
    to the cores the {!Health} monitor still considers alive. Because
    every kernel partitions its work purely from [(Block.idx,
    num_blocks)], shrinking the plan re-shards the same computation over
    fewer cores without changing the arithmetic: results are
    bit-identical for {e any} surviving subset, only the timeline
    stretches.

    On a fully healthy device the plan is [num_cores] blocks mapped
    round-robin in core order — exactly the historical launch shape, so
    the zero-failure path is bit- and time-identical. *)

type t

val plan : Device.t -> n:int -> t
(** [plan device ~n] partitions [n] work items over the surviving
    cores. Raises {!Health.All_cores_dead} when no core is alive and
    [Invalid_argument] when [n < 0]. *)

val blocks : t -> int
(** Launch width: the number of surviving cores (>= 1). *)

val alive : t -> int list
(** The surviving physical core ids behind the plan, ascending. *)

val total_cores : t -> int
val degraded : t -> bool

val chunk : t -> n:int -> grain:int -> int
(** Per-block contiguous chunk: [ceil (n / blocks)] rounded up to a
    multiple of [grain] (a tile size or vector width). *)

val pp : Format.formatter -> t -> unit
