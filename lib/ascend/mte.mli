(** Memory Transfer Engine operations (AscendC [DataCopy]).

    MTEs move data between global memory and local scratchpads (and
    between scratchpads). Global transfers are charged to the given MTE
    queue at the single-stream bandwidth and counted toward the
    launch-level HBM/L2 bandwidth cap; purely on-chip transfers use the
    faster local path.

    When source and destination data types differ, the copy applies the
    hardware cast (e.g. the L0C fp32 -> GM fp16 quantizing output path,
    or int32 -> int16 narrowing). Traffic is counted on the GM side.

    {2 Asynchronous copies}

    The [_async] variants model AscendC's asynchronous [DataCopy]: the
    copy queues on its MTE engine while the issuing program lane runs
    ahead (see {!Block} timing semantics). Copies issued since the last
    {!commit_group} form one group; {!wait_group} [~outstanding:n]
    blocks the lane until at most [n] committed groups remain in flight
    on the engine — the commit/wait idiom double-buffered pipelines are
    written in. Consuming an async-copied tile before its wait is
    flagged by the sanitizer as an {!Sanitizer.Async_hazard}.

    Simulation note: the functional payload still lands eagerly at
    issue, in program order, so outputs are byte-identical between
    sync and async schedules — only timing (and the hazard check)
    differ. *)

val copy_in :
  Block.t ->
  engine:Engine.t ->
  src:Global_tensor.t ->
  ?src_off:int ->
  dst:Local_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  unit
(** Copy [len] elements GM -> local. *)

val copy_in_async :
  Block.t ->
  engine:Engine.t ->
  src:Global_tensor.t ->
  ?src_off:int ->
  dst:Local_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  unit
(** {!copy_in}, queued asynchronously: the lane runs ahead and [dst]
    must not be consumed before a {!wait_group} retires the copy's
    group. *)

val copy_in_strided :
  Block.t ->
  engine:Engine.t ->
  src:Global_tensor.t ->
  src_off:int ->
  src_stride:int ->
  dst:Local_tensor.t ->
  dst_off:int ->
  dst_stride:int ->
  burst:int ->
  count:int ->
  unit
(** Copy [count] bursts of [burst] contiguous elements with independent
    source/destination strides (layout transformations). *)

val copy_out :
  Block.t ->
  engine:Engine.t ->
  src:Local_tensor.t ->
  ?src_off:int ->
  dst:Global_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  unit
(** Copy [len] elements local -> GM. *)

val copy_out_async :
  Block.t ->
  engine:Engine.t ->
  src:Local_tensor.t ->
  ?src_off:int ->
  dst:Global_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  unit
(** {!copy_out}, queued asynchronously. Waiting an outbound group
    paces the store queue: it makes re-use of [src]'s buffer safe
    (the WAR dependency of a ping-pong output tile). *)

val copy_out_strided :
  Block.t ->
  engine:Engine.t ->
  src:Local_tensor.t ->
  src_off:int ->
  src_stride:int ->
  dst:Global_tensor.t ->
  dst_off:int ->
  dst_stride:int ->
  burst:int ->
  count:int ->
  unit

val copy_local :
  Block.t ->
  engine:Engine.t ->
  src:Local_tensor.t ->
  ?src_off:int ->
  dst:Local_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  unit
(** On-chip copy (UB <-> UB, L1 <-> L0x, L0C -> L1...). Copying a whole
    structured tensor onto a whole destination preserves the structure
    tag. *)

val commit_group : Block.t -> engine:Engine.t -> unit
(** Close the current group of async copies on an MTE engine (AscendC
    commit). A commit with nothing pending is a no-op. *)

val wait_group : Block.t -> engine:Engine.t -> outstanding:int -> unit
(** Block the engine's lane until at most [outstanding] committed
    groups remain in flight on that engine; [~outstanding:0] drains
    it. Raises [Invalid_argument] on a negative [outstanding]. *)
