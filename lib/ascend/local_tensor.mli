(** A tensor in one of an AI core's local scratchpads.

    Mirrors AscendC's [LocalTensor]. Local tensors are always backed by
    host storage (they are at most a few hundred KiB), even in cost-only
    device mode; in that mode the engine ops simply skip computing their
    contents.

    A local tensor additionally carries a {e structure} tag used by the
    simulator to evaluate matrix products against the scan constant
    matrices (U, L, strict-L, all-ones) in O(s^2) host time instead of
    O(s^3). The tag is purely an evaluation shortcut: it never changes
    results or costs, and any engine write through the normal ops resets
    it to [General]. *)

type structure =
  | General
  | Upper_ones  (** U_s: upper-triangular all-ones incl. diagonal. *)
  | Lower_ones  (** L_s: lower-triangular all-ones incl. diagonal. *)
  | Strict_lower_ones  (** L_s^-: zero diagonal. *)
  | All_ones  (** 1_s. *)
  | Identity

type t

val make : kind:Mem_kind.t -> dtype:Dtype.t -> length:int -> t
(** Used by {!Block.alloc}; not intended for direct use. *)

val kind : t -> Mem_kind.t
val dtype : t -> Dtype.t
val length : t -> int
val size_bytes : t -> int
val buffer : t -> Host_buffer.t

val structure : t -> structure
val set_structure : t -> structure -> unit

val touch : t -> unit
(** Record an engine write: resets the structure tag to [General]. *)

val retire : t -> unit
(** Recycle the backing storage ({!Host_buffer.retire}). Called by
    {!Block.finish} on every tensor the block allocated; the tensor
    must not be used afterwards. *)

val get : t -> int -> float
val set : t -> int -> float -> unit

val pp : Format.formatter -> t -> unit
