(** Per-core health tracking: the monitor behind degraded-mode runs.

    Every device owns one [Health.t] covering its AI cores. The launch
    path consults it to map blocks onto the {e surviving} core set, and
    {!Scheduler.plan} sizes kernel partitions from it, so a dead core
    shifts work to the survivors instead of failing the run.

    Two persistent failure modes feed the monitor (configured through
    {!Fault.config} or the CLI):

    - a {e seeded kill}: core [c] dies once its cumulative charged busy
      cycles reach a configured threshold (cycle 0 = dead on arrival).
      {!Block.charge} raises {!Core_dead} at the crossing, so the death
      lands mid-block and the launch replays that block elsewhere;
    - {e quarantine}: when [quarantine_after] is set, the [n]-th
      injected fault attributed to a core permanently retires it (the
      score is the per-core fault count across the device's lifetime).

    Deaths are permanent for the life of the device. With no kills
    configured and no quarantine threshold the monitor is inert and the
    launch path is bit- and time-identical to a healthy device. *)

exception Core_dead of { core : int; cycle : float }
(** Raised (from {!Block.charge} / the fault hook) at the moment a core
    crosses its kill threshold or trips quarantine; caught by
    {!Launch.run_phases}, which replays the block on a surviving core. *)

exception All_cores_dead
(** Raised when work is scheduled but no core is left alive. *)

type reason = Killed | Quarantined of int | Marked

val reason_to_string : reason -> string

type t

val create :
  num_cores:int ->
  ?kills:(int * float) list ->
  ?quarantine_after:int ->
  unit ->
  t
(** [kills] lists [(core, cycle)] seeded deaths; [quarantine_after] is
    the per-core injected-fault budget. Raises [Invalid_argument] on an
    out-of-range core, a negative cycle or a quarantine budget < 1. *)

val num_cores : t -> int

val alive : t -> int -> bool
val alive_cores : t -> int list
(** Surviving physical core ids, ascending. *)

val num_alive : t -> int

val kill_threshold : t -> int -> float
(** The seeded kill cycle of a core ([infinity] when none). *)

val cycles_done : t -> int -> float
(** Cumulative charged busy cycles executed on a core (the clock the
    kill thresholds are measured against). *)

val fault_count : t -> int -> int
(** Injected faults attributed to a core (the quarantine score). *)

val note_cycles : t -> core:int -> float -> unit
(** Advance a core's cycle clock by one finished block's busy cycles;
    marks the core dead if the clock crossed its kill threshold. *)

val note_fault : t -> core:int -> cycle:float -> unit
(** Attribute one injected fault to a core. Raises {!Core_dead} when
    this trips the quarantine budget. *)

val mark_dead : ?reason:reason -> t -> core:int -> unit
(** Retire a core immediately (idempotent). *)

val revive : t -> core:int -> unit
(** Return a dead core to service (idempotent) — the substrate of
    {e transient} quarantines scheduled by [Runtime.Chaos]. A core
    retired past its seeded kill cycle comes back with the threshold
    cleared, so it does not instantly re-die. Only call between
    launches: the launch path snapshots the alive set per phase and
    refreshes it on {!generation} changes, not mid-block. *)

val deaths : t -> (int * float * reason) list
(** [(core, cycle, reason)] per death, in death order. *)

val death_count : t -> int
(** O(1) count of dead cores. *)

val generation : t -> int
(** O(1) alive-set generation stamp: bumps on every death {e and}
    every {!revive}, so the launch path can cheaply detect that an
    alive-core snapshot went stale in either direction. *)

val inert : t -> bool
(** O(1): the monitor can never raise {!Core_dead} nor shrink the
    alive set — no seeded kills, no quarantine budget, no core dead.
    The launch engine requires this (plus no fault model and no
    sanitizer) before dispatching a phase's blocks across host
    domains; any stateful monitor forces the sequential path. *)

val parse_kill_spec : string -> (int * float, string) result
(** Parse a CLI [CORE@CYCLE] kill spec (plain [CORE] = cycle 0). *)

val pp : Format.formatter -> t -> unit
