(** Kernel execution context of one block.

    A block is AscendC's smallest logical execution unit; the simulator
    maps one block onto one AI core (1 cube core + [vec_per_core] vector
    cores, with their MTEs and scratchpads). Kernels receive a block
    context and issue engine operations ({!Mte}, {!Vec}, {!Cube},
    {!Scalar_unit}) against it.

    {2 Timing semantics}

    Outside a {!pipelined} section, operations execute serially: the
    block's elapsed cycles are the sum of all op costs. Inside
    [pipelined ~iters f], op costs accumulate per engine and the section
    contributes

    {[ max_e busy(e) + (sum_e busy(e) - max_e busy(e)) / iters ]}

    cycles: the steady-state throughput of a software pipeline over
    [iters] iterations (the AscendC queue/double-buffering abstraction),
    plus an average-iteration fill term. With [iters = 1] this reduces
    to the serial sum. *)

type t

type result = {
  cycles : float;  (** Elapsed cycles of this block. *)
  busy : float array;  (** Per-engine busy cycles (index per {!Engine.index}). *)
  gm_read_bytes : int;
  gm_write_bytes : int;
  touched : (int * int) list;  (** Distinct global tensors touched: (id, bytes). *)
  op_counts : (string * int) list;  (** Instructions issued, by op name. *)
  trace : Trace.block_rec option;
      (** The block's recorded events when the device has a {!Trace.t}
          armed ({!Device.arm_trace}); [None] otherwise. *)
}

val make : device:Device.t -> idx:int -> num_blocks:int -> t
(** Used by {!Launch}; not intended for direct use. Runs the block on
    physical core [idx mod num_cores] (the healthy round-robin map). *)

val make_on : core:int -> device:Device.t -> idx:int -> num_blocks:int -> t
(** [make] with an explicit physical core: how {!Launch} pins blocks to
    the surviving core set of a degraded device. *)

val idx : t -> int
val num_blocks : t -> int

val core : t -> int
(** The physical AI core this block executes on. *)

val charged_cycles : t -> float
(** Busy cycles charged by this block so far (the clock the {!Health}
    kill thresholds are measured against). *)

val device : t -> Device.t
val cost : t -> Cost_model.t

val functional : t -> bool
(** Whether engine ops should compute data (device not in cost-only). *)

val fault : t -> Fault.t option
(** The device fault model, consulted by the MTE ops. *)

val sanitizer : t -> Sanitizer.t option
(** The device sanitizer, consulted by the engine-op modules. *)

val assume_disjoint_writes : t -> Global_tensor.t -> reason:string -> unit
(** Hazard annotation: exclude [gt] from the sanitizer's cross-block
    hazard analysis for the current phase. Used by scatter kernels
    whose blocks write data-dependent but provably disjoint ranges
    (e.g. the split/compress gather phase), which the span-based
    analysis would otherwise flag. No-op without a sanitizer. *)

val charge : ?op:string -> ?bytes:int -> t -> Engine.t -> float -> unit
(** Charge [cycles] to an engine; called by the engine-op modules.
    When the device has a trace armed, the charge is also recorded as
    a span labelled [op] (default ["charge"]) carrying [bytes] of
    transfer payload (default 0) — this is the single choke point all
    trace spans flow through. Raises {!Health.Core_dead} at the charge
    that carries the block's core past its seeded kill threshold (the
    partial work stays accounted; {!Launch} replays the block on a
    surviving core). *)

val note_fault : t -> unit
(** Attribute one injected fault to the block's core ({!Health}
    quarantine scoring); called by the MTE fault hook. Raises
    {!Health.Core_dead} when the core trips its quarantine budget. *)

val charge_rows : t -> Engine.t -> count:int -> (string * float) array -> unit
(** [charge_rows t e ~count entries] charges the sequence [entries]
    (op name, cycles) to engine [e] exactly [count] times, with the
    same accumulator-addition order — and therefore bit-identical
    {!result} cycles — as [count] rounds of individual {!charge}
    calls. When a trace is armed or the core has a finite kill
    threshold it degrades to exactly those per-charge calls, so span
    granularity and the kill point are unchanged; otherwise the
    engine/trace/kill dispatch is paid once per batch instead of once
    per row. Used by tile-batched engine ops ({!Vec.scan_rows}). *)

val count_op : t -> string -> unit
(** Record one issued instruction of the named op (the per-kernel
    instruction mix reported in {!Stats.t.op_counts}). *)

val count_op_n : t -> string -> int -> unit
(** [count_op_n t name k] records [k] issued instructions at once
    (no-op when [k <= 0]). *)

val note_gm_traffic : t -> read:int -> write:int -> unit
val note_touched : t -> Global_tensor.t -> unit

val pipelined : t -> iters:int -> (unit -> 'a) -> 'a
(** Run a software-pipelined section (see timing semantics above).
    Sections do not nest; raises [Invalid_argument] on nesting or on
    [iters < 1]. *)

val alloc : t -> Mem_kind.t -> Dtype.t -> int -> Local_tensor.t
(** Bump-allocate a local tensor; raises [Failure] when the scratchpad
    capacity of the memory kind is exceeded. *)

val reset_mem : t -> Mem_kind.t -> unit
(** Release all allocations in one scratchpad (arena reset). *)

val elapsed_cycles : t -> float
val finish : t -> result
