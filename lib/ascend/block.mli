(** Kernel execution context of one block.

    A block is AscendC's smallest logical execution unit; the simulator
    maps one block onto one AI core (1 cube core + [vec_per_core] vector
    cores, with their MTEs and scratchpads). Kernels receive a block
    context and issue engine operations ({!Mte}, {!Vec}, {!Cube},
    {!Scalar_unit}) against it.

    {2 Timing semantics (event timeline)}

    Time is modelled as an event timeline over the block's engines and
    program lanes:

    - every engine [e] is an in-order queue with its own clock
      [avail(e)] — the completion time of the last op issued on it;
    - every sub-core runs one instruction stream, a {e lane}
      ({!Engine.lane}): the cube core and scalar unit share lane 0,
      vector core [i] owns lane [1 + i]. Each lane has a program cursor.

    A {e synchronous} charge on engine [e] issues at
    [max (cursor (lane e)) (avail e)], and advances both to its end: the
    program waits for the op. An {e asynchronous} charge (AscendC
    [DataCopy] on an MTE queue, {!Mte.copy_in_async} /
    {!Mte.copy_out_async}) advances only [avail(e)] — the program runs
    ahead and re-joins the copy at a {!wait_group}. Async copies issued
    since the last {!commit_group} form a group; [wait_group ~outstanding:n]
    blocks the lane until at most [n] committed groups remain in flight
    (AscendC's [cp.async]-style commit/wait discipline). Because lanes
    advance independently, cube and vector work of one block overlap
    with no annotation at all; double buffering within a lane is
    expressed with async copies and wait groups.

    The block's elapsed cycles are the makespan — the maximum over all
    lane cursors and engine clocks. All state is block-local and the
    schedule is replayed identically regardless of host parallelism, so
    {!Stats} and traces are bit-identical across [--domains] settings
    and pod placements. *)

type t

type result = {
  cycles : float;  (** Elapsed cycles of this block (timeline makespan). *)
  busy : float array;  (** Per-engine busy cycles (index per {!Engine.index}). *)
  gm_read_bytes : int;
  gm_write_bytes : int;
  touched : (int * int) list;  (** Distinct global tensors touched: (id, bytes). *)
  op_counts : (string * int) list;  (** Instructions issued, by op name. *)
  trace : Trace.block_rec option;
      (** The block's recorded events when the device has a {!Trace.t}
          armed ({!Device.arm_trace}); [None] otherwise. *)
}

val make : device:Device.t -> idx:int -> num_blocks:int -> t
(** Used by {!Launch}; not intended for direct use. Runs the block on
    physical core [idx mod num_cores] (the healthy round-robin map). *)

val make_on : core:int -> device:Device.t -> idx:int -> num_blocks:int -> t
(** [make] with an explicit physical core: how {!Launch} pins blocks to
    the surviving core set of a degraded device. *)

val idx : t -> int
val num_blocks : t -> int

val core : t -> int
(** The physical AI core this block executes on. *)

val charged_cycles : t -> float
(** Busy cycles charged by this block so far (the clock the {!Health}
    kill thresholds are measured against). *)

val device : t -> Device.t
val cost : t -> Cost_model.t

val functional : t -> bool
(** Whether engine ops should compute data (device not in cost-only). *)

val fault : t -> Fault.t option
(** The device fault model, consulted by the MTE ops. *)

val sanitizer : t -> Sanitizer.t option
(** The device sanitizer, consulted by the engine-op modules. *)

val assume_disjoint_writes : t -> Global_tensor.t -> reason:string -> unit
(** Hazard annotation: exclude [gt] from the sanitizer's cross-block
    hazard analysis for the current phase. Used by scatter kernels
    whose blocks write data-dependent but provably disjoint ranges
    (e.g. the split/compress gather phase), which the span-based
    analysis would otherwise flag. No-op without a sanitizer. *)

val charge : ?op:string -> ?bytes:int -> t -> Engine.t -> float -> unit
(** Synchronously charge [cycles] to an engine; called by the engine-op
    modules. The op issues at [max lane-cursor engine-clock] and
    advances both (see timing semantics above). When the device has a
    trace armed, the charge is also recorded as a span labelled [op]
    (default ["charge"]) carrying [bytes] of transfer payload (default
    0) — this is the single choke point all trace spans flow through.
    Raises {!Health.Core_dead} at the charge that carries the block's
    core past its seeded kill threshold (the partial work stays
    accounted; {!Launch} replays the block on a surviving core). *)

val charge_async :
  ?op:string ->
  ?bytes:int ->
  ?dst:Local_tensor.t ->
  t ->
  Engine.t ->
  float ->
  unit
(** {!charge}, but asynchronous: the engine clock advances while the
    lane cursor does not — the program runs ahead of the op, which is
    retired by a later {!wait_group} (or {!fence}/{!wait_all}). [dst]
    registers the local tensor the op writes so the sanitizer can flag
    uses before the matching wait ({!check_async_use}). Busy-cycle
    accounting and the kill check are identical to {!charge}. *)

val commit_group : t -> Engine.t -> unit
(** Close the current group of async charges on an engine: everything
    issued by {!charge_async} since the previous [commit_group] becomes
    one in-flight group, retired as a unit by {!wait_group}. A commit
    with nothing pending is a no-op. *)

val wait_group : t -> Engine.t -> outstanding:int -> unit
(** Block the engine's lane until at most [outstanding] committed
    groups remain in flight on that engine, retiring the oldest groups
    (FIFO) and advancing the lane cursor to their completion times.
    [~outstanding:0] drains the queue. Raises [Invalid_argument] on a
    negative [outstanding]. *)

val fence : t -> Engine.t -> unit
(** Single-queue pipe barrier: the engine's lane waits for everything
    issued on the engine so far — committed, pending, or synchronous —
    and all of the engine's async state retires. *)

val wait_all : t -> unit
(** Full intra-block barrier: every lane joins at the timeline makespan
    and all async state on all engines retires. The serial-schedule
    ablation inserts this between tile iterations. *)

val await_engine : t -> lane_of:Engine.t -> on:Engine.t -> unit
(** Cross-lane dependency: [lane_of]'s lane waits until everything
    issued so far on engine [on] — typically another lane's MTE — has
    completed. Unlike {!wait_group} this retires nothing; [on]'s groups
    still belong to the issuing lane's wait discipline. *)

val engine_clock : t -> Engine.t -> float
(** [avail(e)]: completion time of the last op issued on the engine. *)

val lane_clock : t -> Engine.t -> float
(** Program cursor of the engine's lane. *)

val async_in_flight : t -> Local_tensor.t -> bool
(** Whether the tensor is the destination of an async copy that has not
    been retired by a wait. Tracked only while a sanitizer is armed;
    always [false] otherwise. *)

val check_async_use : t -> op:string -> Local_tensor.t -> unit
(** Record an {!Sanitizer.Async_hazard} diagnostic if [lt] is still
    {!async_in_flight} — the caller is about to consume a tile whose
    async copy has no intervening {!wait_group}. No-op without a
    sanitizer. Called by the engine-op modules on every local operand. *)

val note_fault : t -> unit
(** Attribute one injected fault to the block's core ({!Health}
    quarantine scoring); called by the MTE fault hook. Raises
    {!Health.Core_dead} when the core trips its quarantine budget. *)

val charge_rows : t -> Engine.t -> count:int -> (string * float) array -> unit
(** [charge_rows t e ~count entries] charges the sequence [entries]
    (op name, cycles) to engine [e] exactly [count] times, with the
    same accumulator-addition order — and therefore bit-identical
    {!result} cycles — as [count] rounds of individual {!charge}
    calls. When a trace is armed or the core has a finite kill
    threshold it degrades to exactly those per-charge calls, so span
    granularity and the kill point are unchanged; otherwise the
    engine/trace/kill dispatch is paid once per batch instead of once
    per row. Used by tile-batched engine ops ({!Vec.scan_rows}). *)

val count_op : t -> string -> unit
(** Record one issued instruction of the named op (the per-kernel
    instruction mix reported in {!Stats.t.op_counts}). *)

val count_op_n : t -> string -> int -> unit
(** [count_op_n t name k] records [k] issued instructions at once
    (no-op when [k <= 0]). *)

val note_gm_traffic : t -> read:int -> write:int -> unit
val note_touched : t -> Global_tensor.t -> unit

val pipelined : t -> iters:int -> (unit -> 'a) -> 'a
(** {b Deprecated} compatibility wrapper for the pre-event-model
    analytic pipeline sections; new kernels should issue async copies
    with {!Mte.copy_in_async}/{!Mte.copy_out_async} and wait groups
    instead. [pipelined ~iters f] lowers onto the event timeline:

    - [iters = 1] runs [f] with plain event semantics — ops chain on
      their lane, which is the documented "no pipelining" behaviour
      (the historical closed-form code only approximated it);
    - [iters > 1] treats the section as one fully-overlapped software
      pipeline: every charge inside queues on its engine from the
      section entry point, and at section exit all lanes join at the
      section makespan (the event-model refinement of the old
      [max_e busy + fill/iters] estimate).

    Sections do not nest; raises [Invalid_argument] on nesting or on
    [iters < 1]. *)

val alloc : t -> Mem_kind.t -> Dtype.t -> int -> Local_tensor.t
(** Bump-allocate a local tensor; raises [Failure] when the scratchpad
    capacity of the memory kind is exceeded. *)

val reset_mem : t -> Mem_kind.t -> unit
(** Release all allocations in one scratchpad (arena reset). *)

val elapsed_cycles : t -> float
val finish : t -> result
