type structure =
  | General
  | Upper_ones
  | Lower_ones
  | Strict_lower_ones
  | All_ones
  | Identity

type t = {
  kind : Mem_kind.t;
  buf : Host_buffer.t;
  mutable structure : structure;
}

let make ~kind ~dtype ~length =
  { kind; buf = Host_buffer.create dtype length; structure = General }

let kind t = t.kind
let dtype t = Host_buffer.dtype t.buf
let length t = Host_buffer.length t.buf
let size_bytes t = Host_buffer.size_bytes t.buf
let buffer t = t.buf
let structure t = t.structure
let set_structure t s = t.structure <- s
let touch t = t.structure <- General
let retire t = Host_buffer.retire t.buf
let get t i = Host_buffer.get t.buf i

let set t i v =
  touch t;
  Host_buffer.set t.buf i v

let pp fmt t =
  Format.fprintf fmt "%a:%a[%d]" Mem_kind.pp t.kind Dtype.pp (dtype t)
    (length t)
