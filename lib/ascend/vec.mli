(** Vector (AIV) engine operations.

    All operands must live in the Unified Buffer of the vector core the
    op runs on ([?vec], default 0). Each call models one (or a small
    fixed number of) vector instruction(s): a fixed issue cost plus the
    datapath time for the processed bytes. Scalar transfers ({!get},
    {!set}, and the implicit result readout of reductions) serialise the
    issuing vector core's pipeline and are charged to it.

    In cost-only device mode the data is not computed; value-returning
    ops return [0.] / [0] and callers must not branch on them (the
    kernels document the analytic expectations they substitute). *)

type binop = Add | Sub | Mul | Max | Min

type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** {2 Element-wise, tensor-tensor} *)

val binop :
  Block.t ->
  ?vec:int ->
  binop ->
  src0:Local_tensor.t ->
  ?src0_off:int ->
  src1:Local_tensor.t ->
  ?src1_off:int ->
  dst:Local_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  unit

val add :
  Block.t -> ?vec:int -> src0:Local_tensor.t -> src1:Local_tensor.t ->
  dst:Local_tensor.t -> len:int -> unit -> unit
(** [binop Add] over whole-tensor prefixes (convenience). *)

(** {2 Element-wise, tensor-scalar} *)

val adds :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> scalar:float -> len:int -> unit -> unit

val muls :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> scalar:float -> len:int -> unit -> unit

val maxs :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> scalar:float -> len:int -> unit -> unit

val mins :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> scalar:float -> len:int -> unit -> unit

val exp :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> len:int -> unit -> unit

(** {2 Comparison and selection} *)

val compare_scalar :
  Block.t -> ?vec:int -> cmp -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> scalar:float -> len:int -> unit -> unit
(** Writes a 0/1 mask (destination is typically int8). *)

val compare :
  Block.t -> ?vec:int -> cmp -> src0:Local_tensor.t -> src1:Local_tensor.t ->
  dst:Local_tensor.t -> len:int -> unit -> unit

val select :
  Block.t -> ?vec:int -> ?mask_off:int -> mask:Local_tensor.t ->
  ?src0_off:int -> src0:Local_tensor.t -> ?src1_off:int ->
  src1:Local_tensor.t -> ?dst_off:int -> dst:Local_tensor.t -> len:int ->
  unit -> unit
(** [dst.(i) <- if mask.(i) <> 0 then src0.(i) else src1.(i)] over the
    given sub-ranges. *)

(** {2 Integer / bit-wise} (integer data types only) *)

val shift_right :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> bits:int -> len:int -> unit -> unit
(** Logical shift on the unsigned field of the data type. *)

val shift_left :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> bits:int -> len:int -> unit -> unit

val bit_ands :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> mask:int -> len:int -> unit -> unit

val bit_ors :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> mask:int -> len:int -> unit -> unit

val bit_xors :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> mask:int -> len:int -> unit -> unit

val bit_not :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> len:int -> unit -> unit

type bitop = And | Or | Xor

val bit_op :
  Block.t -> ?vec:int -> bitop -> src0:Local_tensor.t -> ?src0_off:int ->
  src1:Local_tensor.t -> ?src1_off:int -> dst:Local_tensor.t ->
  ?dst_off:int -> len:int -> unit -> unit
(** Element-wise bit-wise op on the unsigned fields of two integer
    tensors. *)

val arange :
  Block.t -> ?vec:int -> dst:Local_tensor.t -> ?dst_off:int -> start:float ->
  len:int -> unit -> unit
(** AscendC [CreateVecIndex]: writes [start, start+1, ...]. *)

(** {2 Data movement / conversion} *)

val cast :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> len:int -> unit -> unit
(** Element-wise conversion between the two tensors' data types. *)

val dup :
  Block.t -> ?vec:int -> dst:Local_tensor.t -> ?dst_off:int ->
  scalar:float -> len:int -> unit -> unit
(** Broadcast a scalar (AscendC [Duplicate]). *)

val copy :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  dst:Local_tensor.t -> ?dst_off:int -> len:int -> unit -> unit
(** UB-to-UB move through the vector datapath. *)

(** {2 Reductions} *)

val reduce_sum :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int -> len:int ->
  unit -> float
(** fp32 accumulation; the scalar result readout is included in the
    charged cost. *)

val reduce_max :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int -> len:int ->
  unit -> float

(** {2 Composite instructions} *)

val cumsum :
  Block.t -> ?vec:int -> src:Local_tensor.t -> dst:Local_tensor.t ->
  rows:int -> cols:int -> unit -> unit
(** Model of the vector-only CumSum AscendC API over a [rows x cols]
    row-major UB tile: the result is the linear inclusive prefix sum of
    the flattened tile. Cost: {!Cost_model.t.cumsum_instrs_per_row}
    vector instructions per row (log-step intra-row passes plus
    inter-row propagation). *)

val scan_rows :
  Block.t -> ?vec:int -> op:binop -> buf:Local_tensor.t -> len:int ->
  s:int -> init:float -> unit -> float
(** Tile-batched row-carry propagation over a UB tile of [len] elements
    viewed as rows of [s] (last row possibly short): combine each row
    element-wise with the running carry via [op]'s tensor-scalar form
    ([Add] -> [adds], [Max] -> [maxs], ...), then re-read the carry from
    the row's last element; returns the final carry (the [init] when
    [len = 0]). Bit-identical — in output data, charged cycles, trace
    spans and instruction counts — to the per-row [adds]/[maxs] +
    {!get} loop scan kernels historically issued, but dispatched as a
    single op with one batched cost charge and one in-place data sweep.
    Raises [Invalid_argument] for [Sub] (no tensor-scalar form) or
    [s <= 0]. *)

val sort_region :
  Block.t -> ?vec:int -> ?descending:bool -> src:Local_tensor.t ->
  dst:Local_tensor.t -> len:int -> unit -> unit
(** Model of the Sort32 / MrgSort4 vector-sort instruction sequence:
    sorts [len] elements of a UB region (not stable). Cost: one Sort32
    pass over the region plus [ceil (log4 (len / 32))] merge passes,
    each a region-sized vector instruction. *)

val gather_mask :
  Block.t -> ?vec:int -> src:Local_tensor.t -> ?src_off:int ->
  mask:Local_tensor.t -> ?mask_off:int -> dst:Local_tensor.t ->
  ?dst_off:int -> len:int -> unit -> int
(** AscendC [GatherMask]: compact the elements of [src] whose mask is
    non-zero into contiguous positions of [dst]; returns the count. *)

val gather_elements :
  Block.t -> ?vec:int -> src:Local_tensor.t -> idx:Local_tensor.t ->
  dst:Local_tensor.t -> len:int -> unit -> unit
(** AscendC [Gather]: [dst.(i) <- src.(idx.(i))] for [i < len]; [idx]
    must be an integer tensor with in-range entries. *)

(** {2 Scalar access} *)

val get : Block.t -> ?vec:int -> Local_tensor.t -> int -> float
(** Read one element into a scalar register (pipeline-serialising). *)

val set : Block.t -> ?vec:int -> Local_tensor.t -> int -> float -> unit
