let ops ctx ~count =
  let cm = Block.cost ctx in
  Block.charge ~op:"scalar_ops" ctx Engine.Scalar
    (float_of_int count *. cm.Cost_model.scalar_op_cycles)

let access ctx gt =
  Block.count_op ctx "scalar_gm_access";
  let cm = Block.cost ctx in
  Block.charge ~op:"scalar_gm_access" ctx Engine.Scalar
    cm.Cost_model.scalar_gm_cycles_per_access;
  Block.note_touched ctx gt

let gm_read ctx gt i =
  access ctx gt;
  Block.note_gm_traffic ctx ~read:(Dtype.size_bytes (Global_tensor.dtype gt))
    ~write:0;
  if Block.functional ctx then Global_tensor.get gt i else 0.0

let gm_write ctx gt i v =
  access ctx gt;
  Block.note_gm_traffic ctx ~read:0
    ~write:(Dtype.size_bytes (Global_tensor.dtype gt));
  if Block.functional ctx then Global_tensor.set gt i v
