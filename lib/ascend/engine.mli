(** The hardware engines of one simulated AI core.

    An Ascend 910B AI core couples one AI Cube (AIC) core with
    [vec_per_core] AI Vector (AIV) cores. Each of these sub-cores has a
    compute engine and inbound/outbound Memory Transfer Engines (MTEs)
    with independent instruction queues, so within a software pipeline
    they all run in parallel (see {!Block.pipelined}). *)

type t =
  | Cube_mte_in  (** MTE queue moving GM/L1 data into the cube core. *)
  | Cube  (** Cube compute engine; also executes L1/L0 fixed-function moves. *)
  | Cube_mte_out  (** MTE queue moving L0C results out to GM. *)
  | Scalar  (** Scalar unit of the AI core (program flow, addresses). *)
  | Vec_mte_in of int  (** Inbound MTE of vector core [i]. *)
  | Vec of int  (** Vector compute engine of vector core [i]. *)
  | Vec_mte_out of int  (** Outbound MTE of vector core [i]. *)

val count : vec_per_core:int -> int
(** Number of distinct engines on one AI core. *)

val index : vec_per_core:int -> t -> int
(** Dense index in [\[0, count - 1\]]; raises [Invalid_argument] for a
    vector-core index outside [\[0, vec_per_core - 1\]]. *)

val lane_count : vec_per_core:int -> int
(** Number of program lanes (instruction streams) on one AI core:
    [1 + vec_per_core]. *)

val lane : vec_per_core:int -> t -> int
(** The program lane an engine's instructions are issued from: the
    cube core and scalar unit share lane 0 (the AI core's stream);
    vector core [i]'s engines live on lane [1 + i]. Lanes advance
    independently in the {!Block} event timeline, so engines on
    different lanes overlap without any pipelining annotation. *)

val is_mte : t -> bool

val queue : t -> string
(** AscendC issue-queue name of the engine — ["MTE2"] (GM -> local
    moves), ["MTE3"] (local -> GM), ["M"] (cube), ["V"] (vector),
    ["S"] (scalar) — used as the span category in traces. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val all : vec_per_core:int -> t list
(** All engines of one AI core, in {!index} order. *)
