(** Deterministic, seeded fault injection for the simulated device.

    Real accelerator fleets see silent data corruption, ECC events and
    stalled engines; this module turns the simulator into a testbed for
    detecting and surviving them. A fault model is attached to a device
    at {!Device.create} time and consulted by the MTEs on every
    [DataCopy] between global memory and the scratchpads:

    - {!Bit_flip}: one payload bit of one transferred element flips (in
      the binary16 encoding for fp16 lanes, in the two's-complement
      field for integer lanes);
    - {!Dropped_copy}: the transfer never lands (destination keeps its
      previous contents) but is still charged;
    - {!Truncated_copy}: only a prefix of the burst lands;
    - {!Engine_stall}: the transfer completes correctly but at a
      multiple of its normal latency.

    Faults are drawn from a seeded splitmix64 stream, so a given seed
    reproduces the exact same fault schedule. Every injected fault is
    appended to a log; {!Launch.run_phases} snapshots the log so each
    {!Stats.t} carries the faults injected during that launch. *)

type kind = Bit_flip | Dropped_copy | Truncated_copy | Engine_stall

val kind_to_string : kind -> string
val all_kinds : kind list

val corrupts_data : kind -> bool
(** Whether the kind corrupts payload data (everything except
    [Engine_stall], which only costs time). *)

type scope =
  | All_mtes  (** Inject on every MTE transfer. *)
  | Cube_mtes  (** Only cube-side MTEs (models a failing cube engine). *)
  | Vec_mtes  (** Only vector-side MTEs. *)

type config = {
  seed : int;
  rate : float;  (** Per-transfer injection probability in [0,1]. *)
  kinds : kind list;
  scope : scope;
  stall_factor : float;  (** Latency multiplier of an injected stall. *)
  kills : (int * float) list;
      (** Persistent mode 1 — seeded core deaths: [(core, cycle)] kills
          the core once its cumulative busy cycles reach [cycle]
          (cycle 0 = dead on arrival). Tracked by {!Health}. *)
  quarantine_after : int option;
      (** Persistent mode 2 — a core is permanently quarantined by
          {!Health} after this many injected faults land on it. *)
}

val config :
  ?kinds:kind list ->
  ?scope:scope ->
  ?stall_factor:float ->
  ?kills:(int * float) list ->
  ?quarantine_after:int ->
  seed:int ->
  rate:float ->
  unit ->
  config
(** Defaults: all kinds, [All_mtes], stall factor 8, no kills, no
    quarantine. Raises [Invalid_argument] on a rate outside [0,1], an
    empty kind list, a stall factor below 1, a negative kill core or
    cycle, or a quarantine budget below 1. *)

val parse_spec : string -> (int * float, string) result
(** Parse a CLI [SEED:RATE] fault spec: the seed must be a non-negative
    integer and the rate a probability in [0,1]; anything else (negative
    or fractional seeds, rates outside [0,1], nan, extra fields) is an
    [Error] with a usage message. *)

type event = {
  seq : int;  (** Injection order, 0-based. *)
  kind : kind;
  op : string;  (** The MTE op, e.g. ["datacopy_in"]. *)
  engine : string;
  tensor : string;  (** Name of the global tensor of the transfer. *)
  index : int;  (** Element index hit (flip/truncation point), -1 if n/a. *)
  bit : int;  (** Flipped bit, -1 if n/a. *)
  detail : string;
}

type action =
  | No_fault
  | Flip of { index : int; bit : int }
      (** [index] is relative to the copied range. *)
  | Drop
  | Truncate of int  (** Number of leading elements that still land. *)
  | Stall of float  (** Latency multiplier. *)

type t

val create : config -> t

val config_of : t -> config
(** The {e currently active} config (see {!set_config}). *)

val set_config : t -> config -> unit
(** Replace the active injection policy (rate/kinds/scope/stall
    factor) without resetting the random stream or the event log —
    the mechanism behind [Runtime.Chaos] fault storms. The [seed],
    [kills] and [quarantine_after] fields of the new config are
    ignored: the stream keeps its position and the {!Health} monitor
    keeps the wiring it was created with. *)

val draw :
  t ->
  engine:Engine.t ->
  op:string ->
  tensor:string ->
  dst_off:int ->
  len:int ->
  elem_bits:int ->
  action
(** Decide the fate of one transfer of [len] elements landing at
    [dst_off]; records an event when a fault is injected. Out-of-scope
    engines and empty transfers never fault. *)

val flip_in_buffer : Host_buffer.t -> index:int -> bit:int -> unit
(** Apply a bit flip to one element, respecting the buffer's dtype. *)

val events : t -> event list
(** All events, in injection order. *)

val events_since : t -> int -> event list
(** [events_since t n] returns events with [seq >= n], in order. *)

val count : t -> int
val count_kind : t -> kind -> int
val clear : t -> unit

val pp_event : Format.formatter -> event -> unit
val pp_summary : Format.formatter -> t -> unit
