exception
  Deadline_exceeded of {
    name : string;
    budget_cycles : float;
    spent_cycles : float;
  }

let () =
  Printexc.register_printer (function
    | Deadline_exceeded { name; budget_cycles; spent_cycles } ->
        Some
          (Printf.sprintf
             "Launch.Deadline_exceeded(%s: %.0f cycles spent of a %.0f-cycle \
              budget)"
             name spent_cycles budget_cycles)
    | _ -> None)

(* One phase over the surviving core set. Blocks are assigned
   round-robin over the cores currently alive (the full core grid when
   healthy, i.e. core [idx mod num_cores] — the historical mapping). A
   block whose core dies mid-flight (seeded kill or quarantine) raises
   [Health.Core_dead]; its partial timeline, traffic and instructions
   stay accounted and the block replays from scratch on the shrunken
   alive set. Kernel blocks are idempotent (they write deterministic
   ranges derived from the block index), so a replay restores the exact
   healthy result.

   When the device was created with [domains > 1] and the phase is
   provably stateless on the host side — no fault model, no sanitizer,
   inert health monitor — the blocks execute across a domain pool
   instead of sequentially. Determinism is preserved by construction:
   block bodies only write block-disjoint tensor ranges and
   block-local contexts, per-block results land in an array indexed by
   block id, and all shared accounting (core timelines, busy cycles,
   the health clock) is replayed from that array in block order after
   the join — the exact float-addition order of the sequential path.
   Any stateful feature forces the sequential path so that
   fault-injection, kill/replay and sanitizer semantics are
   untouched. *)

(* Execute the blocks of a provably-stateless phase across the global
   domain pool. Returns per-block results indexed by block id. *)
let exec_blocks_parallel device ~blocks ~alive body =
  let n_alive = Array.length alive in
  let out = Array.make blocks None in
  let slots = Device.domains device in
  (* Coarse dispatch grain: ~4 chunks per domain slot keeps enough
     chunks in the bag for load balancing while amortising the shared
     counter lock over whole runs of blocks — block bodies can be
     microseconds long, where a per-index claim is measurable. *)
  let grain = max 1 ((blocks + (slots * 4) - 1) / (slots * 4)) in
  Domain_pool.parallel_for (Domain_pool.global ()) ~grain ~slots ~n:blocks
    (fun idx ->
      let core = alive.(idx mod n_alive) in
      let ctx = Block.make_on ~core ~device ~idx ~num_blocks:blocks in
      body ctx;
      out.(idx) <- Some (Block.finish ctx));
  Array.map
    (function Some r -> r | None -> failwith "Launch: lost block result")
    out

let run_phase device ~blocks body =
  let cm = Device.cost device in
  let num_cores = Device.num_cores device in
  let health = Device.health device in
  let san = Device.sanitizer device in
  Option.iter Sanitizer.begin_phase san;
  let core_cycles = Array.make num_cores 0.0 in
  let core_busy = Array.make num_cores 0.0 in
  let core_used = Array.make num_cores false in
  let partials = ref [] in
  let account core (r : Block.result) =
    let busy = Array.fold_left ( +. ) 0.0 r.Block.busy in
    core_cycles.(core) <- core_cycles.(core) +. r.Block.cycles;
    core_busy.(core) <- core_busy.(core) +. busy;
    busy
  in
  (* Alive-core snapshot: taken once per phase and refreshed only when
     the health monitor records a new death (cheap generation check),
     so the per-block core lookup is O(1) instead of the historical
     O(alive) [List.nth] walk. *)
  let alive = ref (Array.of_list (Health.alive_cores health)) in
  let alive_gen = ref (Health.generation health) in
  let refresh_alive () =
    if Health.generation health <> !alive_gen then begin
      alive := Array.of_list (Health.alive_cores health);
      alive_gen := Health.generation health
    end
  in
  let parallel =
    Device.domains device > 1 && blocks > 1
    && Option.is_none (Device.fault device)
    && Option.is_none san && Health.inert health
  in
  let results =
    if parallel then begin
      let raw = exec_blocks_parallel device ~blocks ~alive:!alive body in
      (* Deterministic post-join merge: identical statements, in the
         identical block order, as the sequential loop below — the
         core timelines and the health clock see the same
         float-addition sequence bit for bit. *)
      let n_alive = Array.length !alive in
      Array.to_list
        (Array.mapi
           (fun idx r ->
             let core = !alive.(idx mod n_alive) in
             core_used.(core) <- true;
             let busy = account core r in
             Health.note_cycles health ~core busy;
             r)
           raw)
    end
    else
      List.init blocks (fun idx ->
          (* [delay] serialises a replay behind its failed predecessors:
             the replacement block cannot start before the victim died,
             so the dead time is charged to the replay core's
             timeline. *)
          let rec exec delay =
            refresh_alive ();
            let a = !alive in
            let n_alive = Array.length a in
            if n_alive = 0 then raise Health.All_cores_dead;
            let core = a.(idx mod n_alive) in
            core_used.(core) <- true;
            let ctx = Block.make_on ~core ~device ~idx ~num_blocks:blocks in
            match body ctx with
            | () ->
                let r = Block.finish ctx in
                let busy = account core r in
                core_cycles.(core) <- core_cycles.(core) +. delay;
                Health.note_cycles health ~core busy;
                r
            | exception Health.Core_dead _ ->
                (* The dying core's partial work happened: its timeline,
                   traffic and instruction counts are real, only its
                   writes are untrusted. Replay the block on a
                   survivor. *)
                let partial = Block.finish ctx in
                ignore (account core partial);
                partials := partial :: !partials;
                exec (delay +. partial.Block.cycles)
          in
          exec 0.0)
  in
  Option.iter Sanitizer.end_phase san;
  let results = results @ !partials in
  let compute_seconds =
    Cost_model.cycles_to_seconds cm (Array.fold_left Float.max 0.0 core_cycles)
  in
  let gm_bytes =
    List.fold_left
      (fun acc (r : Block.result) ->
        acc + r.Block.gm_read_bytes + r.Block.gm_write_bytes)
      0 results
  in
  let footprint =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (r : Block.result) ->
        List.iter
          (fun (id, bytes) ->
            if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id bytes)
          r.Block.touched)
      results;
    Hashtbl.fold (fun _ b acc -> acc + b) tbl 0
  in
  let effective_bw =
    if footprint <= cm.Cost_model.l2_capacity_bytes then
      cm.Cost_model.l2_bandwidth
    else cm.Cost_model.hbm_bandwidth
  in
  let bandwidth_seconds = float_of_int gm_bytes /. effective_bw in
  let phase =
    {
      Stats.compute_seconds;
      bandwidth_seconds;
      seconds = Float.max compute_seconds bandwidth_seconds;
      gm_bytes;
      footprint_bytes = footprint;
      bandwidth_bound = bandwidth_seconds > compute_seconds;
    }
  in
  (phase, results, core_busy, core_used)

let run_phases ?(name = "kernel") device ~blocks bodies =
  if blocks < 1 then invalid_arg "Launch.run_phases: blocks must be >= 1";
  if bodies = [] then invalid_arg "Launch.run_phases: no phases";
  let host_t0 = Unix.gettimeofday () in
  let cm = Device.cost device in
  let num_cores = Device.num_cores device in
  let fault_mark =
    match Device.fault device with Some f -> Fault.count f | None -> 0
  in
  (* Watchdog: the per-launch budget is on the cumulative compute
     critical path (stalled engines inflate it; launch latency and
     bandwidth floors do not count against it). *)
  let deadline = Device.deadline_cycles device in
  let spent_cycles = ref 0.0 in
  let total_core_busy = Array.make num_cores 0.0 in
  let total_core_used = Array.make num_cores false in
  let phases_results =
    List.map
      (fun body ->
        let phase, results, core_busy, core_used =
          run_phase device ~blocks body
        in
        Array.iteri
          (fun c b -> total_core_busy.(c) <- total_core_busy.(c) +. b)
          core_busy;
        Array.iteri
          (fun c u -> if u then total_core_used.(c) <- true)
          core_used;
        spent_cycles :=
          !spent_cycles
          +. Cost_model.seconds_to_cycles cm phase.Stats.compute_seconds;
        (match deadline with
        | Some budget when !spent_cycles > budget ->
            raise
              (Deadline_exceeded
                 {
                   name;
                   budget_cycles = budget;
                   spent_cycles = !spent_cycles;
                 })
        | _ -> ());
        (phase, results))
      bodies
  in
  let phases = List.map fst phases_results in
  let results = List.concat_map snd phases_results in
  let n_phases = List.length phases in
  let seconds =
    cm.Cost_model.kernel_launch_seconds
    +. List.fold_left (fun acc (p : Stats.phase) -> acc +. p.Stats.seconds) 0.0 phases
    +. (float_of_int (n_phases - 1) *. cm.Cost_model.sync_all_seconds)
  in
  let gm_read, gm_write =
    List.fold_left
      (fun (r, w) (res : Block.result) ->
        (r + res.Block.gm_read_bytes, w + res.Block.gm_write_bytes))
      (0, 0) results
  in
  let vec_per_core = cm.Cost_model.vec_per_core in
  let engines = Engine.all ~vec_per_core in
  let busy = Array.make (Engine.count ~vec_per_core) 0.0 in
  List.iter
    (fun (res : Block.result) ->
      Array.iteri (fun i c -> busy.(i) <- busy.(i) +. c) res.Block.busy)
    results;
  let engine_busy =
    List.map
      (fun e -> (Engine.to_string e, busy.(Engine.index ~vec_per_core e)))
      engines
  in
  let op_counts =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (res : Block.result) ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace tbl k
              (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          res.Block.op_counts)
      results;
    List.sort
      (fun (_, a) (_, b) -> compare b a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let cores_used =
    Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 total_core_used
  in
  (match Device.trace device with
  | Some tr ->
      Trace.record_launch tr ~name ~seconds
        ~latency_cycles:
          (Cost_model.seconds_to_cycles cm cm.Cost_model.kernel_launch_seconds)
        ~sync_cycles:
          (Cost_model.seconds_to_cycles cm cm.Cost_model.sync_all_seconds)
        ~phases:
          (List.map
             (fun (ph, rs) ->
               (ph, List.filter_map (fun r -> r.Block.trace) rs))
             phases_results)
  | None -> ());
  {
    Stats.name;
    seconds;
    phases;
    blocks;
    cores_used;
    gm_read_bytes = gm_read;
    gm_write_bytes = gm_write;
    engine_busy;
    core_busy = total_core_busy;
    op_counts;
    faults =
      (match Device.fault device with
      | Some f -> Fault.events_since f fault_mark
      | None -> []);
    retries = 0;
    degraded = 0;
    host_seconds = Unix.gettimeofday () -. host_t0;
    domains = Device.domains device;
    launches = 1;
  }

let run ?name device ~blocks body = run_phases ?name device ~blocks [ body ]
