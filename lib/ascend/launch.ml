let run_phase device ~blocks body =
  let cm = Device.cost device in
  let num_cores = Device.num_cores device in
  let san = Device.sanitizer device in
  Option.iter Sanitizer.begin_phase san;
  let results =
    List.init blocks (fun idx ->
        let ctx = Block.make ~device ~idx ~num_blocks:blocks in
        body ctx;
        Block.finish ctx)
  in
  Option.iter Sanitizer.end_phase san;
  (* Round-robin block -> core assignment; a core's critical path is the
     sum of the blocks it executes. *)
  let core_cycles = Array.make (min blocks num_cores) 0.0 in
  List.iteri
    (fun i (r : Block.result) ->
      let c = i mod num_cores in
      core_cycles.(c) <- core_cycles.(c) +. r.Block.cycles)
    results;
  let compute_seconds =
    Cost_model.cycles_to_seconds cm (Array.fold_left Float.max 0.0 core_cycles)
  in
  let gm_bytes =
    List.fold_left
      (fun acc (r : Block.result) ->
        acc + r.Block.gm_read_bytes + r.Block.gm_write_bytes)
      0 results
  in
  let footprint =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (r : Block.result) ->
        List.iter
          (fun (id, bytes) ->
            if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id bytes)
          r.Block.touched)
      results;
    Hashtbl.fold (fun _ b acc -> acc + b) tbl 0
  in
  let effective_bw =
    if footprint <= cm.Cost_model.l2_capacity_bytes then
      cm.Cost_model.l2_bandwidth
    else cm.Cost_model.hbm_bandwidth
  in
  let bandwidth_seconds = float_of_int gm_bytes /. effective_bw in
  let phase =
    {
      Stats.compute_seconds;
      bandwidth_seconds;
      seconds = Float.max compute_seconds bandwidth_seconds;
      gm_bytes;
      footprint_bytes = footprint;
      bandwidth_bound = bandwidth_seconds > compute_seconds;
    }
  in
  (phase, results)

let run_phases ?(name = "kernel") device ~blocks bodies =
  if blocks < 1 then invalid_arg "Launch.run_phases: blocks must be >= 1";
  if bodies = [] then invalid_arg "Launch.run_phases: no phases";
  let cm = Device.cost device in
  let fault_mark =
    match Device.fault device with Some f -> Fault.count f | None -> 0
  in
  let phases_results = List.map (run_phase device ~blocks) bodies in
  let phases = List.map fst phases_results in
  let results = List.concat_map snd phases_results in
  let n_phases = List.length phases in
  let seconds =
    cm.Cost_model.kernel_launch_seconds
    +. List.fold_left (fun acc (p : Stats.phase) -> acc +. p.Stats.seconds) 0.0 phases
    +. (float_of_int (n_phases - 1) *. cm.Cost_model.sync_all_seconds)
  in
  let gm_read, gm_write =
    List.fold_left
      (fun (r, w) (res : Block.result) ->
        (r + res.Block.gm_read_bytes, w + res.Block.gm_write_bytes))
      (0, 0) results
  in
  let vec_per_core = cm.Cost_model.vec_per_core in
  let engines = Engine.all ~vec_per_core in
  let busy = Array.make (Engine.count ~vec_per_core) 0.0 in
  List.iter
    (fun (res : Block.result) ->
      Array.iteri (fun i c -> busy.(i) <- busy.(i) +. c) res.Block.busy)
    results;
  let engine_busy =
    List.map
      (fun e -> (Engine.to_string e, busy.(Engine.index ~vec_per_core e)))
      engines
  in
  let op_counts =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (res : Block.result) ->
        List.iter
          (fun (k, v) ->
            Hashtbl.replace tbl k
              (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          res.Block.op_counts)
      results;
    List.sort
      (fun (_, a) (_, b) -> compare b a)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  {
    Stats.name;
    seconds;
    phases;
    blocks;
    cores_used = min blocks (Device.num_cores device);
    gm_read_bytes = gm_read;
    gm_write_bytes = gm_write;
    engine_busy;
    op_counts;
    faults =
      (match Device.fault device with
      | Some f -> Fault.events_since f fault_mark
      | None -> []);
    retries = 0;
    degraded = 0;
  }

let run ?name device ~blocks body = run_phases ?name device ~blocks [ body ]
