type t = F16 | F32 | I8 | I16 | U16 | I32

let size_bytes = function
  | F16 | I16 | U16 -> 2
  | F32 | I32 -> 4
  | I8 -> 1

let is_integer = function
  | I8 | I16 | U16 | I32 -> true
  | F16 | F32 -> false

let min_value = function
  | F16 -> -.Fp16.max_value
  | F32 -> -.Float.max_float
  | I8 -> -128.0
  | I16 -> -32768.0
  | U16 -> 0.0
  | I32 -> -2147483648.0

let max_value = function
  | F16 -> Fp16.max_value
  | F32 -> Float.max_float
  | I8 -> 127.0
  | I16 -> 32767.0
  | U16 -> 65535.0
  | I32 -> 2147483647.0

let[@inline] round_f32 v =
  if Float.is_nan v then v else Int32.float_of_bits (Int32.bits_of_float v)

(* Two's-complement wrap-around of a truncated float, for a field of
   [bits] bits. Mirrors what the hardware stores on integer overflow. *)
let wrap_signed bits v =
  let m = 1 lsl bits in
  let x = ((int_of_float v) mod m + m) mod m in
  if x >= m / 2 then float_of_int (x - m) else float_of_int x

let wrap_unsigned bits v =
  let m = 1 lsl bits in
  float_of_int (((int_of_float v) mod m + m) mod m)

let[@inline] round dt v =
  match dt with
  | F16 -> Fp16.round v
  | F32 -> round_f32 v
  | I8 -> wrap_signed 8 v
  | I16 -> wrap_signed 16 v
  | U16 -> wrap_unsigned 16 v
  | I32 -> wrap_signed 32 v

let cast ~from ~into v =
  match from, into with
  | (F16 | F32), (I8 | I16 | U16 | I32) -> round into (Float.of_int (int_of_float v))
  | _, _ -> round into v

(* Bulk-path variants: dispatch on the dtype once and return the bare
   element function, so tight copy/convert loops (Host_buffer, MTE
   DataCopy) hoist the per-element match out of the loop. *)
let rounder = function
  | F16 -> Fp16.round
  | F32 -> round_f32
  | I8 -> wrap_signed 8
  | I16 -> wrap_signed 16
  | U16 -> wrap_unsigned 16
  | I32 -> wrap_signed 32

let caster ~from ~into =
  match from, into with
  | (F16 | F32), (I8 | I16 | U16 | I32) ->
      let r = rounder into in
      fun v -> r (Float.of_int (int_of_float v))
  | _, _ -> rounder into

let equal a b =
  match a, b with
  | F16, F16 | F32, F32 | I8, I8 | I16, I16 | U16, U16 | I32, I32 -> true
  | (F16 | F32 | I8 | I16 | U16 | I32), _ -> false

let to_string = function
  | F16 -> "f16"
  | F32 -> "f32"
  | I8 -> "i8"
  | I16 -> "i16"
  | U16 -> "u16"
  | I32 -> "i32"

let pp fmt dt = Format.pp_print_string fmt (to_string dt)
