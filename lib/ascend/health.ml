exception Core_dead of { core : int; cycle : float }
exception All_cores_dead

type reason = Killed | Quarantined of int | Marked

let reason_to_string = function
  | Killed -> "killed at seeded cycle"
  | Quarantined n -> Printf.sprintf "quarantined after %d faults" n
  | Marked -> "marked dead"

type t = {
  num_cores : int;
  kill_at : float array;  (* cycle threshold per core; infinity = never *)
  cycles : float array;  (* cumulative charged busy cycles per core *)
  faults : int array;  (* injected faults attributed per core *)
  dead : bool array;
  quarantine_after : int option;
  inert_config : bool;  (* no kills seeded and no quarantine budget *)
  mutable num_dead : int;
  mutable total_deaths : int;  (* cumulative, never decremented *)
  mutable revivals : int;  (* chaos revivals, part of the generation stamp *)
  mutable deaths : (int * float * reason) list;  (* newest first *)
}

let create ~num_cores ?(kills = []) ?quarantine_after () =
  if num_cores < 1 then invalid_arg "Health.create: num_cores must be >= 1";
  (match quarantine_after with
  | Some n when n < 1 ->
      invalid_arg "Health.create: quarantine_after must be >= 1"
  | _ -> ());
  let kill_at = Array.make num_cores infinity in
  List.iter
    (fun (core, cycle) ->
      if core < 0 || core >= num_cores then
        invalid_arg
          (Printf.sprintf "Health.create: core %d out of range [0,%d)" core
             num_cores);
      if cycle < 0.0 then
        invalid_arg "Health.create: kill cycle must be >= 0";
      kill_at.(core) <- Float.min kill_at.(core) cycle)
    kills;
  {
    num_cores;
    kill_at;
    cycles = Array.make num_cores 0.0;
    faults = Array.make num_cores 0;
    dead = Array.make num_cores false;
    quarantine_after;
    inert_config =
      quarantine_after = None && Array.for_all (fun k -> k = infinity) kill_at;
    num_dead = 0;
    total_deaths = 0;
    revivals = 0;
    deaths = [];
  }

let num_cores t = t.num_cores

let check_core t core =
  if core < 0 || core >= t.num_cores then
    invalid_arg
      (Printf.sprintf "Health: core %d out of range [0,%d)" core t.num_cores)

let kill_threshold t core =
  check_core t core;
  t.kill_at.(core)

let cycles_done t core =
  check_core t core;
  t.cycles.(core)

let fault_count t core =
  check_core t core;
  t.faults.(core)

let alive t core =
  check_core t core;
  (not t.dead.(core)) && t.cycles.(core) < t.kill_at.(core)

let mark_dead ?(reason = Marked) t ~core =
  check_core t core;
  if not t.dead.(core) then begin
    t.dead.(core) <- true;
    t.num_dead <- t.num_dead + 1;
    t.total_deaths <- t.total_deaths + 1;
    t.deaths <- (core, t.cycles.(core), reason) :: t.deaths
  end

let alive_cores t =
  let acc = ref [] in
  for c = t.num_cores - 1 downto 0 do
    if alive t c then acc := c :: !acc
  done;
  !acc

let num_alive t =
  let n = ref 0 in
  for c = 0 to t.num_cores - 1 do
    if alive t c then incr n
  done;
  !n

let note_cycles t ~core cycles =
  check_core t core;
  t.cycles.(core) <- t.cycles.(core) +. cycles;
  if t.cycles.(core) >= t.kill_at.(core) then
    mark_dead ~reason:Killed t ~core

let note_fault t ~core ~cycle =
  check_core t core;
  t.faults.(core) <- t.faults.(core) + 1;
  match t.quarantine_after with
  | Some n when t.faults.(core) >= n && not t.dead.(core) ->
      t.cycles.(core) <- Float.max t.cycles.(core) cycle;
      mark_dead ~reason:(Quarantined t.faults.(core)) t ~core;
      raise (Core_dead { core; cycle })
  | _ -> ()

let revive t ~core =
  check_core t core;
  if t.dead.(core) then begin
    t.dead.(core) <- false;
    t.num_dead <- t.num_dead - 1;
    t.revivals <- t.revivals + 1;
    (* A seeded kill keeps [alive] false through the cycle clock; a
       revived core must not instantly re-die on its old threshold. *)
    if t.cycles.(core) >= t.kill_at.(core) then t.kill_at.(core) <- infinity
  end

let deaths t = List.rev t.deaths
let death_count t = t.num_dead
(* Monotonic: [num_dead] would alias a kill->revive cycle back to the
   starting stamp, leaving a snapshot taken while the core was dead
   looking fresh after the revive. *)
let generation t = t.total_deaths + t.revivals

(* An inert monitor can never raise [Core_dead] nor shrink the alive
   set: no seeded kills, no quarantine budget, nothing dead yet. The
   launch engine uses this to prove a phase safe for domain-parallel
   block execution. *)
let inert t = t.inert_config && t.num_dead = 0

let parse_kill_spec s =
  let fail () =
    Error
      (Printf.sprintf
         "invalid kill spec %S: expected CORE or CORE@CYCLE with CORE a \
          non-negative integer and CYCLE a non-negative number"
         s)
  in
  let parse_core c =
    match int_of_string_opt c with
    | Some core when core >= 0 -> Some core
    | _ -> None
  in
  match String.split_on_char '@' s with
  | [ c ] -> (
      match parse_core c with
      | Some core -> Ok (core, 0.0)
      | None -> fail ())
  | [ c; cyc ] -> (
      match (parse_core c, float_of_string_opt cyc) with
      | Some core, Some cycle when cycle >= 0.0 && Float.is_finite cycle ->
          Ok (core, cycle)
      | _ -> fail ())
  | _ -> fail ()

let pp fmt t =
  let n_alive = num_alive t in
  Format.fprintf fmt "@[<v>core health: %d/%d alive" n_alive t.num_cores;
  List.iter
    (fun (core, cycle, reason) ->
      Format.fprintf fmt "@   core %d dead at %.0f cycles (%s)" core cycle
        (reason_to_string reason))
    (deaths t);
  Format.fprintf fmt "@]"
