type t = {
  id : int;
  name : string;
  dtype : Dtype.t;
  length : int;
  data : Host_buffer.t option;
}

let make ~id ~name ~dtype ~length ~backed =
  let data = if backed then Some (Host_buffer.create dtype length) else None in
  { id; name; dtype; length; data }

let id t = t.id
let name t = t.name
let dtype t = t.dtype
let length t = t.length
let size_bytes t = t.length * Dtype.size_bytes t.dtype
let is_backed t = Option.is_some t.data

let buffer t =
  match t.data with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf
           "Global_tensor.buffer: %S is cost-only (no backing storage)" t.name)

let retire t = Option.iter Host_buffer.retire t.data
let get t i = Host_buffer.get (buffer t) i
let set t i v = Host_buffer.set (buffer t) i v

let load t a =
  let buf = buffer t in
  if Array.length a > t.length then
    invalid_arg "Global_tensor.load: array longer than tensor";
  Host_buffer.load_array buf a

let fill t v = Host_buffer.fill (buffer t) v

let to_array t = Host_buffer.to_array (buffer t)

let pp fmt t =
  Format.fprintf fmt "%s:%a[%d]%s" t.name Dtype.pp t.dtype t.length
    (if is_backed t then "" else " (cost-only)")
