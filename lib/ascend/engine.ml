type t =
  | Cube_mte_in
  | Cube
  | Cube_mte_out
  | Scalar
  | Vec_mte_in of int
  | Vec of int
  | Vec_mte_out of int

let count ~vec_per_core = 4 + (3 * vec_per_core)

let check_vec ~vec_per_core i =
  if i < 0 || i >= vec_per_core then
    invalid_arg
      (Printf.sprintf "Engine: vector core %d out of range [0,%d)" i
         vec_per_core)

let index ~vec_per_core = function
  | Cube_mte_in -> 0
  | Cube -> 1
  | Cube_mte_out -> 2
  | Scalar -> 3
  | Vec_mte_in i ->
      check_vec ~vec_per_core i;
      4 + (3 * i)
  | Vec i ->
      check_vec ~vec_per_core i;
      5 + (3 * i)
  | Vec_mte_out i ->
      check_vec ~vec_per_core i;
      6 + (3 * i)

(* Program lanes: each sub-core executes one instruction stream that
   issues onto its engines. The cube core and the scalar unit share the
   AI core's stream (lane 0); each vector core runs its own (lane
   1 + i). Lanes advance independently, which is what lets cube and
   vector work of one block overlap in the event-timeline model. *)
let lane_count ~vec_per_core = 1 + vec_per_core

let lane ~vec_per_core = function
  | Cube_mte_in | Cube | Cube_mte_out | Scalar -> 0
  | Vec_mte_in i | Vec i | Vec_mte_out i ->
      check_vec ~vec_per_core i;
      1 + i

let is_mte = function
  | Cube_mte_in | Cube_mte_out | Vec_mte_in _ | Vec_mte_out _ -> true
  | Cube | Scalar | Vec _ -> false

let equal a b =
  match a, b with
  | Cube_mte_in, Cube_mte_in
  | Cube, Cube
  | Cube_mte_out, Cube_mte_out
  | Scalar, Scalar ->
      true
  | Vec_mte_in i, Vec_mte_in j | Vec i, Vec j | Vec_mte_out i, Vec_mte_out j ->
      i = j
  | ( (Cube_mte_in | Cube | Cube_mte_out | Scalar | Vec_mte_in _ | Vec _
      | Vec_mte_out _),
      _ ) ->
      false

let to_string = function
  | Cube_mte_in -> "cube.mte_in"
  | Cube -> "cube"
  | Cube_mte_out -> "cube.mte_out"
  | Scalar -> "scalar"
  | Vec_mte_in i -> Printf.sprintf "vec%d.mte_in" i
  | Vec i -> Printf.sprintf "vec%d" i
  | Vec_mte_out i -> Printf.sprintf "vec%d.mte_out" i

let queue = function
  | Cube_mte_in | Vec_mte_in _ -> "MTE2"
  | Cube_mte_out | Vec_mte_out _ -> "MTE3"
  | Cube -> "M"
  | Vec _ -> "V"
  | Scalar -> "S"

let pp fmt e = Format.pp_print_string fmt (to_string e)

let all ~vec_per_core =
  let vec_engines =
    List.concat_map
      (fun i -> [ Vec_mte_in i; Vec i; Vec_mte_out i ])
      (List.init vec_per_core Fun.id)
  in
  [ Cube_mte_in; Cube; Cube_mte_out; Scalar ] @ vec_engines
