type t = { blocks : int; alive : int list; total_cores : int }

let plan device ~n =
  if n < 0 then invalid_arg "Scheduler.plan: negative work-item count";
  let health = Device.health device in
  let alive = Health.alive_cores health in
  if alive = [] then raise Health.All_cores_dead;
  { blocks = List.length alive; alive; total_cores = Device.num_cores device }

let blocks t = t.blocks
let alive t = t.alive
let total_cores t = t.total_cores
let degraded t = t.blocks < t.total_cores

let chunk t ~n ~grain =
  if grain < 1 then invalid_arg "Scheduler.chunk: grain must be >= 1";
  let per = (n + t.blocks - 1) / t.blocks in
  (per + grain - 1) / grain * grain

let pp fmt t =
  if degraded t then
    Format.fprintf fmt "plan(%d blocks on %d/%d cores)" t.blocks t.blocks
      t.total_cores
  else Format.fprintf fmt "plan(%d blocks, all cores healthy)" t.blocks
