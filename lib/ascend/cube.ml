let require what lt kind =
  if not (Mem_kind.equal (Local_tensor.kind lt) kind) then
    invalid_arg
      (Printf.sprintf "Cube.mmad: %s operand must live in %s (got %s)" what
         (Mem_kind.to_string kind)
         (Mem_kind.to_string (Local_tensor.kind lt)))

let check_shape what lt elems =
  if Local_tensor.length lt < elems then
    invalid_arg
      (Printf.sprintf "Cube.mmad: %s operand too short (%d < %d)" what
         (Local_tensor.length lt) elems)

(* Functional evaluation. The structure tags of the constant scan
   matrices admit O(m*n) evaluation; the general path is the O(m*k*n)
   triple loop. All paths accumulate in double and round to the
   accumulator data type on store, matching fp32/int32 accumulators.

   The loops run over the raw Bigarray storage
   ({!Host_buffer.data}): operand shapes were validated by [mmad], so
   bounds checks are dropped and the accumulator-dtype rounding is
   hoisted out of the loop — as a direct {!Dtype.round_f32} call on
   the hot fp32-accumulator path, as a {!Dtype.rounder} closure
   otherwise. The accumulation order (raw double adds, one rounding on
   store) is that of the historical scalar get/set loops. *)

module BA1 = Bigarray.Array1

let raw lt = Host_buffer.data (Local_tensor.buffer lt)
let acc_rounder lt = Dtype.rounder (Local_tensor.dtype lt)

(* F32 rounding through a one-element float32 Bigarray: the store/load
   pair compiles to inline single-precision conversion instructions,
   where the [Int32.bits_of_float] route costs two C calls per element
   (and a cross-module [Dtype.round_f32] call would additionally box
   under classic-mode/-opaque compilation). The scratch cell is
   allocated per kernel call — blocks evaluate concurrently under
   domain-parallel launches, so a shared cell would race. *)
type f32cell = (float, Bigarray.float32_elt, Bigarray.c_layout) BA1.t

let f32scratch () : f32cell = BA1.create Bigarray.float32 Bigarray.c_layout 1

let[@inline] round_f32 (tmp : f32cell) f =
  (* NaN payloads pass through untouched, as [Dtype.round_f32] (the
     [acc_rounder] arms) does — the cell roundtrip would quiet them. *)
  if Float.is_nan f then f
  else begin
    BA1.unsafe_set tmp 0 f;
    BA1.unsafe_get tmp 0
  end

let eval_general a b c ~m ~k ~n ~accumulate =
  let ab = raw a and bb = raw b and cb = raw c in
  let round = acc_rounder c in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref (if accumulate then BA1.unsafe_get cb ((i * n) + j) else 0.0) in
      for t = 0 to k - 1 do
        acc :=
          !acc
          +. (BA1.unsafe_get ab ((i * k) + t) *. BA1.unsafe_get bb ((t * n) + j))
      done;
      BA1.unsafe_set cb ((i * n) + j) (round !acc)
    done
  done

(* C[i,j] (+)= sum_{t <= j} A[i,t]  — B = U (upper-triangular ones).
   Requires k = n; row-wise running sums. This is McScan's tile-local
   scan and the simulator's hottest cube path, so the fp32-accumulator
   case gets its own loop with the rounding call inlined. *)
let eval_b_upper_ones a c ~m ~k ~n ~accumulate =
  let ab = raw a and cb = raw c in
  (match Local_tensor.dtype c with
  | Dtype.F32 when k = n && not accumulate ->
      (* McScan's exact shape: every element of the row contributes and
         the output overwrites — no per-element branches left. *)
      let tmp = f32scratch () in
      for i = 0 to m - 1 do
        let run = ref 0.0 in
        let arow = i * k and crow = i * n in
        for j = 0 to n - 1 do
          run := !run +. BA1.unsafe_get ab (arow + j);
          BA1.unsafe_set cb (crow + j) (round_f32 tmp !run)
        done
      done
  | Dtype.F32 ->
      let tmp = f32scratch () in
      for i = 0 to m - 1 do
        let run = ref 0.0 in
        let arow = i * k and crow = i * n in
        for j = 0 to n - 1 do
          if j < k then run := !run +. BA1.unsafe_get ab (arow + j);
          let base = if accumulate then BA1.unsafe_get cb (crow + j) else 0.0 in
          BA1.unsafe_set cb (crow + j) (round_f32 tmp (base +. !run))
        done
      done
  | _ ->
      let round = acc_rounder c in
      for i = 0 to m - 1 do
        let run = ref 0.0 in
        let arow = i * k and crow = i * n in
        for j = 0 to n - 1 do
          if j < k then run := !run +. BA1.unsafe_get ab (arow + j);
          let base = if accumulate then BA1.unsafe_get cb (crow + j) else 0.0 in
          BA1.unsafe_set cb (crow + j) (round (base +. !run))
        done
      done)

(* C[i,j] (+)= sum_{t >= j} A[i,t]  — B = L (lower-triangular ones). *)
let eval_b_lower_ones a c ~m ~k ~n ~accumulate =
  let ab = raw a and cb = raw c in
  let round = acc_rounder c in
  for i = 0 to m - 1 do
    (* suffix sums of row i of A *)
    let run = ref 0.0 in
    let suffix = Array.make n 0.0 in
    for j = n - 1 downto 0 do
      if j < k then run := !run +. BA1.unsafe_get ab ((i * k) + j);
      suffix.(j) <- !run
    done;
    for j = 0 to n - 1 do
      let base = if accumulate then BA1.unsafe_get cb ((i * n) + j) else 0.0 in
      BA1.unsafe_set cb ((i * n) + j) (round (base +. suffix.(j)))
    done
  done

(* C[i,j] (+)= sum_t A[i,t]  — B = all-ones. *)
let eval_b_all_ones a c ~m ~k ~n ~accumulate =
  let ab = raw a and cb = raw c in
  let round = acc_rounder c in
  for i = 0 to m - 1 do
    let sum = ref 0.0 in
    for t = 0 to k - 1 do
      sum := !sum +. BA1.unsafe_get ab ((i * k) + t)
    done;
    for j = 0 to n - 1 do
      let base = if accumulate then BA1.unsafe_get cb ((i * n) + j) else 0.0 in
      BA1.unsafe_set cb ((i * n) + j) (round (base +. !sum))
    done
  done

(* C[i,j] (+)= sum_{t < i} B[t,j]  — A = strict lower-triangular ones:
   column-wise exclusive prefix sums of B. *)
let eval_a_strict_lower_ones b c ~m ~k ~n ~accumulate =
  let bb = raw b and cb = raw c in
  let round = acc_rounder c in
  for j = 0 to n - 1 do
    let run = ref 0.0 in
    for i = 0 to m - 1 do
      let base = if accumulate then BA1.unsafe_get cb ((i * n) + j) else 0.0 in
      BA1.unsafe_set cb ((i * n) + j) (round (base +. !run));
      if i < k then run := !run +. BA1.unsafe_get bb ((i * n) + j)
    done
  done

(* C[i,j] (+)= sum_{t <= i} B[t,j]  — A = lower-triangular ones. *)
let eval_a_lower_ones b c ~m ~k ~n ~accumulate =
  let bb = raw b and cb = raw c in
  let round = acc_rounder c in
  for j = 0 to n - 1 do
    let run = ref 0.0 in
    for i = 0 to m - 1 do
      if i < k then run := !run +. BA1.unsafe_get bb ((i * n) + j);
      let base = if accumulate then BA1.unsafe_get cb ((i * n) + j) else 0.0 in
      BA1.unsafe_set cb ((i * n) + j) (round (base +. !run))
    done
  done

let mmad ctx ~a ~b ~c ~m ~k ~n ~accumulate =
  require "left" a Mem_kind.L0a;
  require "right" b Mem_kind.L0b;
  require "output" c Mem_kind.L0c;
  if m <= 0 || k <= 0 || n <= 0 then
    invalid_arg "Cube.mmad: dimensions must be positive";
  check_shape "left" a (m * k);
  check_shape "right" b (k * n);
  check_shape "output" c (m * n);
  let int8 =
    match Local_tensor.dtype a, Local_tensor.dtype b, Local_tensor.dtype c with
    | Dtype.F16, Dtype.F16, Dtype.F32 -> false
    | Dtype.I8, Dtype.I8, Dtype.I32 -> true
    | da, db, dc ->
        invalid_arg
          (Printf.sprintf
             "Cube.mmad: unsupported dtype combination %s x %s -> %s"
             (Dtype.to_string da) (Dtype.to_string db) (Dtype.to_string dc))
  in
  Block.check_async_use ctx ~op:"Cube.mmad" a;
  Block.check_async_use ctx ~op:"Cube.mmad" b;
  Block.check_async_use ctx ~op:"Cube.mmad" c;
  Block.count_op ctx "mmad";
  Block.charge ~op:"mmad" ctx Engine.Cube
    (Cost_model.mmad_cycles (Block.cost ctx) ~m ~k ~n ~int8);
  if Block.functional ctx then begin
    Local_tensor.touch c;
    match Local_tensor.structure b, Local_tensor.structure a with
    | Local_tensor.Upper_ones, _ when k = n ->
        eval_b_upper_ones a c ~m ~k ~n ~accumulate
    | Local_tensor.Lower_ones, _ when k = n ->
        eval_b_lower_ones a c ~m ~k ~n ~accumulate
    | Local_tensor.All_ones, _ -> eval_b_all_ones a c ~m ~k ~n ~accumulate
    | _, Local_tensor.Strict_lower_ones when m = k ->
        eval_a_strict_lower_ones b c ~m ~k ~n ~accumulate
    | _, Local_tensor.Lower_ones when m = k ->
        eval_a_lower_ones b c ~m ~k ~n ~accumulate
    | _, _ -> eval_general a b c ~m ~k ~n ~accumulate
  end
