let require what lt kind =
  if not (Mem_kind.equal (Local_tensor.kind lt) kind) then
    invalid_arg
      (Printf.sprintf "Cube.mmad: %s operand must live in %s (got %s)" what
         (Mem_kind.to_string kind)
         (Mem_kind.to_string (Local_tensor.kind lt)))

let check_shape what lt elems =
  if Local_tensor.length lt < elems then
    invalid_arg
      (Printf.sprintf "Cube.mmad: %s operand too short (%d < %d)" what
         (Local_tensor.length lt) elems)

(* Functional evaluation. The structure tags of the constant scan
   matrices admit O(m*n) evaluation; the general path is the O(m*k*n)
   triple loop. All paths accumulate in double and round to the
   accumulator data type on store, matching fp32/int32 accumulators. *)

let eval_general a b c ~m ~k ~n ~accumulate =
  let ab = Local_tensor.buffer a
  and bb = Local_tensor.buffer b
  and cb = Local_tensor.buffer c in
  let dt = Host_buffer.dtype cb in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref (if accumulate then Host_buffer.get cb ((i * n) + j) else 0.0) in
      for t = 0 to k - 1 do
        acc :=
          !acc
          +. (Host_buffer.get ab ((i * k) + t) *. Host_buffer.get bb ((t * n) + j))
      done;
      Host_buffer.set cb ((i * n) + j) (Dtype.round dt !acc)
    done
  done

(* C[i,j] (+)= sum_{t <= j} A[i,t]  — B = U (upper-triangular ones).
   Requires k = n; row-wise running sums. *)
let eval_b_upper_ones a c ~m ~k ~n ~accumulate =
  let ab = Local_tensor.buffer a and cb = Local_tensor.buffer c in
  let dt = Host_buffer.dtype cb in
  for i = 0 to m - 1 do
    let run = ref 0.0 in
    for j = 0 to n - 1 do
      if j < k then run := !run +. Host_buffer.get ab ((i * k) + j);
      let base = if accumulate then Host_buffer.get cb ((i * n) + j) else 0.0 in
      Host_buffer.set cb ((i * n) + j) (Dtype.round dt (base +. !run))
    done
  done

(* C[i,j] (+)= sum_{t >= j} A[i,t]  — B = L (lower-triangular ones). *)
let eval_b_lower_ones a c ~m ~k ~n ~accumulate =
  let ab = Local_tensor.buffer a and cb = Local_tensor.buffer c in
  let dt = Host_buffer.dtype cb in
  for i = 0 to m - 1 do
    (* suffix sums of row i of A *)
    let run = ref 0.0 in
    let suffix = Array.make n 0.0 in
    for j = n - 1 downto 0 do
      if j < k then run := !run +. Host_buffer.get ab ((i * k) + j);
      suffix.(j) <- !run
    done;
    for j = 0 to n - 1 do
      let base = if accumulate then Host_buffer.get cb ((i * n) + j) else 0.0 in
      Host_buffer.set cb ((i * n) + j) (Dtype.round dt (base +. suffix.(j)))
    done
  done

(* C[i,j] (+)= sum_t A[i,t]  — B = all-ones. *)
let eval_b_all_ones a c ~m ~k ~n ~accumulate =
  let ab = Local_tensor.buffer a and cb = Local_tensor.buffer c in
  let dt = Host_buffer.dtype cb in
  for i = 0 to m - 1 do
    let sum = ref 0.0 in
    for t = 0 to k - 1 do
      sum := !sum +. Host_buffer.get ab ((i * k) + t)
    done;
    for j = 0 to n - 1 do
      let base = if accumulate then Host_buffer.get cb ((i * n) + j) else 0.0 in
      Host_buffer.set cb ((i * n) + j) (Dtype.round dt (base +. !sum))
    done
  done

(* C[i,j] (+)= sum_{t < i} B[t,j]  — A = strict lower-triangular ones:
   column-wise exclusive prefix sums of B. *)
let eval_a_strict_lower_ones b c ~m ~k ~n ~accumulate =
  let bb = Local_tensor.buffer b and cb = Local_tensor.buffer c in
  let dt = Host_buffer.dtype cb in
  for j = 0 to n - 1 do
    let run = ref 0.0 in
    for i = 0 to m - 1 do
      let base = if accumulate then Host_buffer.get cb ((i * n) + j) else 0.0 in
      Host_buffer.set cb ((i * n) + j) (Dtype.round dt (base +. !run));
      if i < k then run := !run +. Host_buffer.get bb ((i * n) + j)
    done
  done

(* C[i,j] (+)= sum_{t <= i} B[t,j]  — A = lower-triangular ones. *)
let eval_a_lower_ones b c ~m ~k ~n ~accumulate =
  let bb = Local_tensor.buffer b and cb = Local_tensor.buffer c in
  let dt = Host_buffer.dtype cb in
  for j = 0 to n - 1 do
    let run = ref 0.0 in
    for i = 0 to m - 1 do
      if i < k then run := !run +. Host_buffer.get bb ((i * n) + j);
      let base = if accumulate then Host_buffer.get cb ((i * n) + j) else 0.0 in
      Host_buffer.set cb ((i * n) + j) (Dtype.round dt (base +. !run))
    done
  done

let mmad ctx ~a ~b ~c ~m ~k ~n ~accumulate =
  require "left" a Mem_kind.L0a;
  require "right" b Mem_kind.L0b;
  require "output" c Mem_kind.L0c;
  if m <= 0 || k <= 0 || n <= 0 then
    invalid_arg "Cube.mmad: dimensions must be positive";
  check_shape "left" a (m * k);
  check_shape "right" b (k * n);
  check_shape "output" c (m * n);
  let int8 =
    match Local_tensor.dtype a, Local_tensor.dtype b, Local_tensor.dtype c with
    | Dtype.F16, Dtype.F16, Dtype.F32 -> false
    | Dtype.I8, Dtype.I8, Dtype.I32 -> true
    | da, db, dc ->
        invalid_arg
          (Printf.sprintf
             "Cube.mmad: unsupported dtype combination %s x %s -> %s"
             (Dtype.to_string da) (Dtype.to_string db) (Dtype.to_string dc))
  in
  Block.count_op ctx "mmad";
  Block.charge ~op:"mmad" ctx Engine.Cube
    (Cost_model.mmad_cycles (Block.cost ctx) ~m ~k ~n ~int8);
  if Block.functional ctx then begin
    Local_tensor.touch c;
    match Local_tensor.structure b, Local_tensor.structure a with
    | Local_tensor.Upper_ones, _ when k = n ->
        eval_b_upper_ones a c ~m ~k ~n ~accumulate
    | Local_tensor.Lower_ones, _ when k = n ->
        eval_b_lower_ones a c ~m ~k ~n ~accumulate
    | Local_tensor.All_ones, _ -> eval_b_all_ones a c ~m ~k ~n ~accumulate
    | _, Local_tensor.Strict_lower_ones when m = k ->
        eval_a_strict_lower_ones b c ~m ~k ~n ~accumulate
    | _, Local_tensor.Lower_ones when m = k ->
        eval_a_lower_ones b c ~m ~k ~n ~accumulate
    | _, _ -> eval_general a b c ~m ~k ~n ~accumulate
  end
