(* A small reusable pool of OCaml 5 domains (stdlib Domain + Mutex +
   Condition only). One global pool is shared by every Device so that
   repeated device creation (tests, benches) never exhausts the
   runtime's domain budget; workers are spawned lazily, on first use,
   up to [max_workers].

   [parallel_for] hands out loop indices from a shared counter under
   the pool mutex; the calling domain participates too, so a request
   for [slots = n] uses at most [n - 1] pool workers. Results must be
   deposited by the body into caller-owned, index-disjoint storage —
   the pool itself guarantees only that every index in [0, n) runs
   exactly once and that the call returns after all of them finished.
   Exceptions raised by the body are collected and the one belonging
   to the smallest index is re-raised in the caller after the join,
   mirroring the error a sequential left-to-right loop would surface
   first. *)

type task = {
  run : int -> unit;
  total : int;
  grain : int;  (* indices claimed per counter access *)
  mutable next_idx : int;  (* next unclaimed index *)
  mutable in_flight : int;  (* chunks claimed but not yet finished *)
  mutable slots : int;  (* worker slots still allowed to join *)
  mutable errors : (int * exn) list;
}

type t = {
  mutex : Mutex.t;
  has_work : Condition.t;
  finished : Condition.t;
  mutable task : task option;
  mutable stop : bool;
  mutable spawned : int;
  mutable workers : unit Domain.t list;
  max_workers : int;
}

let max_pool_workers = 63

let create ?(max_workers = max_pool_workers) () =
  if max_workers < 0 then
    invalid_arg "Domain_pool.create: max_workers must be >= 0";
  {
    mutex = Mutex.create ();
    has_work = Condition.create ();
    finished = Condition.create ();
    task = None;
    stop = false;
    spawned = 0;
    workers = [];
    max_workers = min max_workers max_pool_workers;
  }

let size t = t.spawned

(* Drain loop indices of [task], [task.grain] indices per claim.
   Called and returned with [t.mutex] held; the mutex is released
   around the body invocations, so a larger grain amortises the
   counter lock over a whole chunk of indices. Every index still runs
   exactly once: an index that raises is recorded and the rest of its
   chunk runs anyway (matching the one-index-per-claim behaviour,
   where other workers kept claiming past a failed index). *)
let drain t task =
  while task.next_idx < task.total do
    let i0 = task.next_idx in
    let i1 = min task.total (i0 + task.grain) in
    task.next_idx <- i1;
    task.in_flight <- task.in_flight + 1;
    Mutex.unlock t.mutex;
    let errs = ref [] in
    for i = i0 to i1 - 1 do
      match task.run i with
      | () -> ()
      | exception e -> errs := (i, e) :: !errs
    done;
    Mutex.lock t.mutex;
    task.errors <- List.rev_append !errs task.errors;
    task.in_flight <- task.in_flight - 1;
    if task.in_flight = 0 && task.next_idx >= task.total then
      Condition.broadcast t.finished
  done

let rec worker_loop t =
  match t.task with
  | _ when t.stop -> ()
  | Some task when task.slots > 0 && task.next_idx < task.total ->
      task.slots <- task.slots - 1;
      drain t task;
      worker_loop t
  | _ ->
      Condition.wait t.has_work t.mutex;
      worker_loop t

let worker t =
  Mutex.lock t.mutex;
  worker_loop t;
  Mutex.unlock t.mutex

(* With [t.mutex] held: grow the pool towards [wanted] extra workers. *)
let ensure_workers t wanted =
  let target = min wanted t.max_workers in
  while t.spawned < target do
    t.spawned <- t.spawned + 1;
    t.workers <- Domain.spawn (fun () -> worker t) :: t.workers
  done

let run_sequential ~n body =
  for i = 0 to n - 1 do
    body i
  done

let parallel_for t ?(grain = 1) ~slots ~n body =
  if n < 0 then invalid_arg "Domain_pool.parallel_for: negative bound";
  if grain < 1 then invalid_arg "Domain_pool.parallel_for: grain must be >= 1";
  if n > 0 then
    if slots <= 1 || n = 1 || t.max_workers = 0 then run_sequential ~n body
    else begin
      Mutex.lock t.mutex;
      if t.task <> None || t.stop then begin
        (* Nested or post-shutdown call: degrade to the plain loop
           rather than deadlocking on our own pool. *)
        Mutex.unlock t.mutex;
        run_sequential ~n body
      end
      else begin
        let slots = min slots n in
        ensure_workers t (slots - 1);
        let task =
          { run = body; total = n; grain; next_idx = 0; in_flight = 0;
            slots; errors = [] }
        in
        t.task <- Some task;
        Condition.broadcast t.has_work;
        (* The caller takes one slot and drains alongside the pool. *)
        task.slots <- task.slots - 1;
        drain t task;
        while task.in_flight > 0 || task.next_idx < task.total do
          Condition.wait t.finished t.mutex
        done;
        t.task <- None;
        let errors = task.errors in
        Mutex.unlock t.mutex;
        match errors with
        | [] -> ()
        | errs ->
            let _, first =
              List.fold_left
                (fun ((bi, _) as best) ((i, _) as cand) ->
                  if i < bi then cand else best)
                (List.hd errs) (List.tl errs)
            in
            raise first
      end
    end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.has_work;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

(* The process-wide pool. Sized generously; workers only exist once a
   launch actually requests parallelism. *)
let global_pool = ref None

let global () =
  match !global_pool with
  | Some p -> p
  | None ->
      let p = create () in
      global_pool := Some p;
      at_exit (fun () -> shutdown p);
      p
