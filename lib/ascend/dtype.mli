(** Element data types supported by the simulated Ascend engines.

    The cube unit supports [F16] inputs with [F32] accumulation and [I8]
    inputs with [I32] accumulation. The vector unit additionally operates
    on 16-bit integers (used for radix extraction on fp16 bit patterns).

    All host-side storage is in OCaml [float]s; {!round} maps an
    arbitrary float to the value the hardware would actually hold in a
    buffer of this data type (fp16 rounding, integer wrap-around). *)

type t =
  | F16 (** IEEE binary16; cube-unit input type. *)
  | F32 (** IEEE binary32; cube-unit accumulator type. *)
  | I8 (** Two's-complement 8-bit; mask / low-precision input type. *)
  | I16 (** Two's-complement 16-bit. *)
  | U16 (** Unsigned 16-bit; bit patterns of fp16 keys during sorting. *)
  | I32 (** Two's-complement 32-bit; integer accumulator type. *)

val size_bytes : t -> int
(** Storage size of one element in bytes. *)

val round : t -> float -> float
(** [round dt v] is the value actually stored when [v] is written to a
    buffer of type [dt]: fp16/fp32 rounding for float types, truncation
    toward zero followed by wrap-around for integer types. *)

val round_f32 : float -> float
(** The [F32] arm of {!round} directly (one binary32 roundtrip, NaN
    passed through); exposed so bulk kernels can specialise their
    inner loops without the dtype dispatch. *)

val is_integer : t -> bool

val min_value : t -> float
(** Smallest representable finite value ([neg_infinity] for floats
    means most-negative finite: [-. max_value]). *)

val max_value : t -> float
(** Largest representable finite value. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val cast : from:t -> into:t -> float -> float
(** Hardware cast semantics: integer-to-integer wraps, float-to-integer
    truncates toward zero then wraps, anything-to-float rounds. *)

val rounder : t -> float -> float
(** [rounder dt] is {!round}[ dt] with the dtype dispatch paid once;
    partially apply it outside a loop and the loop body is the bare
    per-element function. *)

val caster : from:t -> into:t -> float -> float
(** [caster ~from ~into] is {!cast}[ ~from ~into] with the dispatch
    paid once, for bulk converting copies. *)
