type kind = Bit_flip | Dropped_copy | Truncated_copy | Engine_stall

let kind_to_string = function
  | Bit_flip -> "bit_flip"
  | Dropped_copy -> "dropped_copy"
  | Truncated_copy -> "truncated_copy"
  | Engine_stall -> "engine_stall"

let all_kinds = [ Bit_flip; Dropped_copy; Truncated_copy; Engine_stall ]

let corrupts_data = function
  | Bit_flip | Dropped_copy | Truncated_copy -> true
  | Engine_stall -> false

type scope = All_mtes | Cube_mtes | Vec_mtes

type config = {
  seed : int;
  rate : float;
  kinds : kind list;
  scope : scope;
  stall_factor : float;
  kills : (int * float) list;
  quarantine_after : int option;
}

let config ?(kinds = all_kinds) ?(scope = All_mtes) ?(stall_factor = 8.0)
    ?(kills = []) ?quarantine_after ~seed ~rate () =
  if rate < 0.0 || rate > 1.0 || Float.is_nan rate then
    invalid_arg "Fault.config: rate must be in [0,1]";
  if kinds = [] then invalid_arg "Fault.config: empty kind list";
  if stall_factor < 1.0 then
    invalid_arg "Fault.config: stall_factor must be >= 1";
  List.iter
    (fun (core, cycle) ->
      if core < 0 then invalid_arg "Fault.config: negative core id in kills";
      if cycle < 0.0 then invalid_arg "Fault.config: negative kill cycle")
    kills;
  (match quarantine_after with
  | Some n when n < 1 ->
      invalid_arg "Fault.config: quarantine_after must be >= 1"
  | _ -> ());
  { seed; rate; kinds; scope; stall_factor; kills; quarantine_after }

let parse_spec spec =
  let fail () =
    Error
      (Printf.sprintf
         "invalid fault spec %S: expected SEED:RATE with SEED a \
          non-negative integer and RATE a probability in [0,1]"
         spec)
  in
  match String.split_on_char ':' spec with
  | [ seed_s; rate_s ] -> (
      match (int_of_string_opt seed_s, float_of_string_opt rate_s) with
      | Some seed, Some rate
        when seed >= 0 && rate >= 0.0 && rate <= 1.0 && not (Float.is_nan rate)
        ->
          Ok (seed, rate)
      | _ -> fail ())
  | _ -> fail ()

type event = {
  seq : int;
  kind : kind;
  op : string;
  engine : string;
  tensor : string;
  index : int;
  bit : int;
  detail : string;
}

type action =
  | No_fault
  | Flip of { index : int; bit : int }
  | Drop
  | Truncate of int
  | Stall of float

type t = {
  mutable cfg : config;
  mutable state : int64;
  mutable events : event list;  (* newest first *)
  mutable n_events : int;
}

let create cfg = { cfg; state = Int64.of_int cfg.seed; events = []; n_events = 0 }

let config_of t = t.cfg

(* Swap the live injection policy without touching the splitmix64
   stream: the chaos scheduler raises and restores storm windows
   mid-job while the draw sequence stays a pure function of the
   original seed and the transfer sequence. *)
let set_config t cfg = t.cfg <- cfg

(* splitmix64: a small, high-quality, deterministic stream. *)
let next_u64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform t =
  Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) *. 0x1p-53

let rand_below t bound =
  if bound <= 1 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1)
                       (Int64.of_int bound))

let in_scope t engine =
  match t.cfg.scope, engine with
  | All_mtes, _ -> true
  | Cube_mtes, (Engine.Cube_mte_in | Engine.Cube_mte_out) -> true
  | Cube_mtes, _ -> false
  | Vec_mtes, (Engine.Vec_mte_in _ | Engine.Vec_mte_out _) -> true
  | Vec_mtes, _ -> false

let record t ~kind ~op ~engine ~tensor ~index ~bit ~detail =
  let ev =
    { seq = t.n_events; kind; op; engine = Engine.to_string engine; tensor;
      index; bit; detail }
  in
  t.events <- ev :: t.events;
  t.n_events <- t.n_events + 1

let draw t ~engine ~op ~tensor ~dst_off ~len ~elem_bits =
  if len <= 0 || not (in_scope t engine) then No_fault
  else if uniform t >= t.cfg.rate then No_fault
  else begin
    let kind = List.nth t.cfg.kinds (rand_below t (List.length t.cfg.kinds)) in
    match kind with
    | Bit_flip ->
        let rel = rand_below t len in
        let bit = rand_below t elem_bits in
        record t ~kind ~op ~engine ~tensor ~index:(dst_off + rel) ~bit
          ~detail:(Printf.sprintf "flip bit %d of element %d" bit (dst_off + rel));
        Flip { index = rel; bit }
    | Dropped_copy ->
        record t ~kind ~op ~engine ~tensor ~index:dst_off ~bit:(-1)
          ~detail:(Printf.sprintf "dropped %d-element copy at %d" len dst_off);
        Drop
    | Truncated_copy ->
        let keep = rand_below t len in
        record t ~kind ~op ~engine ~tensor ~index:(dst_off + keep) ~bit:(-1)
          ~detail:(Printf.sprintf "copy truncated to %d of %d elements" keep len);
        Truncate keep
    | Engine_stall ->
        record t ~kind ~op ~engine ~tensor ~index:(-1) ~bit:(-1)
          ~detail:(Printf.sprintf "engine stalled %.1fx on %d elements"
                     t.cfg.stall_factor len);
        Stall t.cfg.stall_factor
  end

(* Flip one payload bit of element [index] of [buf], respecting the
   buffer's storage dtype (fp16 lanes flip in the binary16 encoding). *)
let flip_in_buffer buf ~index ~bit =
  let v = Host_buffer.get buf index in
  let dt = Host_buffer.dtype buf in
  let flipped =
    match dt with
    | Dtype.F16 -> Fp16.to_float (Fp16.of_float v lxor (1 lsl (bit mod 16)))
    | Dtype.F32 ->
        Int32.float_of_bits
          (Int32.logxor (Int32.bits_of_float v)
             (Int32.shift_left 1l (bit mod 32)))
    | Dtype.I8 | Dtype.I16 | Dtype.U16 | Dtype.I32 ->
        let bits = Dtype.size_bytes dt * 8 in
        let m = 1 lsl bits in
        let u = ((int_of_float v) mod m + m) mod m in
        Dtype.round dt (float_of_int (u lxor (1 lsl (bit mod bits))))
  in
  Host_buffer.set buf index flipped

let events t = List.rev t.events
let count t = t.n_events

let events_since t n =
  (* Events [n..] in injection order. *)
  let rec take k acc = function
    | [] -> acc
    | e :: tl -> if k <= 0 then acc else take (k - 1) (e :: acc) tl
  in
  take (t.n_events - n) [] t.events

let count_kind t kind =
  List.fold_left (fun acc e -> if e.kind = kind then acc + 1 else acc) 0 t.events

let clear t =
  t.events <- [];
  t.n_events <- 0

let pp_event fmt e =
  Format.fprintf fmt "#%d %s %s on %s[%s]: %s" e.seq (kind_to_string e.kind)
    e.op e.tensor e.engine e.detail

let pp_summary fmt t =
  Format.fprintf fmt "@[<v>fault log: %d events (seed %d, rate %g)" t.n_events
    t.cfg.seed t.cfg.rate;
  List.iter
    (fun k ->
      let c = count_kind t k in
      if c > 0 then Format.fprintf fmt "@   %s: %d" (kind_to_string k) c)
    all_kinds;
  Format.fprintf fmt "@]"
