type kind = Fault | Death | Retry | Degrade | Checkpoint | Barrier | Info

let kind_to_string = function
  | Fault -> "fault"
  | Death -> "core_death"
  | Retry -> "retry"
  | Degrade -> "degrade"
  | Checkpoint -> "checkpoint"
  | Barrier -> "sync_all"
  | Info -> "info"

type span = {
  sp_id : int;
  sp_block : int;
  sp_track : int;
  sp_engine : string;
  sp_queue : string;
  sp_op : string;
  sp_start : float;
  sp_end : float;
  sp_bytes : int;
}

type edge_kind = Lane | Queue | Group | Fence | Await | Join | Section

let edge_kind_to_string = function
  | Lane -> "lane"
  | Queue -> "queue"
  | Group -> "group"
  | Fence -> "fence"
  | Await -> "await"
  | Join -> "join"
  | Section -> "section"

type edge = { e_src : int; e_dst : int; e_kind : edge_kind }

type mark = {
  mk_block : int;
  mk_kind : kind;
  mk_name : string;
  mk_cycle : float;
}

type block_rec = {
  b_idx : int;
  b_core : int;
  b_cycles : float;
  b_spans : span list;
  b_edges : edge list;
  b_marks : mark list;
  b_dropped : int;
}

type phase_rec = { ph_stats : Stats.phase; ph_blocks : block_rec list }

type launch_rec = {
  ln_name : string;
  ln_seconds : float;
  ln_latency_cycles : float;
  ln_sync_cycles : float;
  ln_phases : phase_rec list;
}

type item = Launch of launch_rec | Note of kind * string

type t = {
  clock_hz : float;
  cap : int;
  mutable items : item list; (* newest first *)
  mutable spans : int;
  mutable edges : int;
  mutable marks : int;
  mutable notes : int;
  mutable drops : int;
}

let create ?clock_hz ?(max_spans_per_block = max_int) () =
  let clock_hz =
    match clock_hz with
    | Some hz -> hz
    | None -> Cost_model.default.Cost_model.clock_hz
  in
  {
    clock_hz;
    cap = max_spans_per_block;
    items = [];
    spans = 0;
    edges = 0;
    marks = 0;
    notes = 0;
    drops = 0;
  }

let clock_hz t = t.clock_hz
let span_count t = t.spans
let edge_count t = t.edges
let mark_count t = t.marks
let event_count t = t.spans + t.marks + t.notes
let dropped t = t.drops

let launches t =
  List.rev
    (List.filter_map (function Launch l -> Some l | Note _ -> None) t.items)

module Block_builder = struct
  type b = {
    idx : int;
    core : int;
    cap : int;
    mutable rspans : span list; (* newest first *)
    mutable redges : edge list; (* newest first *)
    mutable rmarks : mark list;
    mutable nspans : int;
    mutable next_id : int; (* ids also cover dropped spans, so they stay stable *)
    mutable ndropped : int;
  }

  let span b ~track ~engine ~queue ~op ~start ~cycles ~bytes =
    let id = b.next_id in
    b.next_id <- id + 1;
    if b.nspans >= b.cap then b.ndropped <- b.ndropped + 1
    else begin
      b.rspans <-
        {
          sp_id = id;
          sp_block = b.idx;
          sp_track = track;
          sp_engine = engine;
          sp_queue = queue;
          sp_op = op;
          sp_start = start;
          sp_end = start +. cycles;
          sp_bytes = bytes;
        }
        :: b.rspans;
      b.nspans <- b.nspans + 1
    end;
    id

  let edge b ~kind ~src ~dst =
    if src >= 0 && dst >= 0 && src <> dst then
      b.redges <- { e_src = src; e_dst = dst; e_kind = kind } :: b.redges

  let mark b kind ~name ~cycle =
    b.rmarks <-
      { mk_block = b.idx; mk_kind = kind; mk_name = name; mk_cycle = cycle }
      :: b.rmarks

  let finish b ~cycles =
    {
      b_idx = b.idx;
      b_core = b.core;
      b_cycles = cycles;
      b_spans = List.rev b.rspans;
      b_edges = List.rev b.redges;
      b_marks = List.rev b.rmarks;
      b_dropped = b.ndropped;
    }
end

let block_builder t ~idx ~core =
  {
    Block_builder.idx;
    core;
    cap = t.cap;
    rspans = [];
    redges = [];
    rmarks = [];
    nspans = 0;
    next_id = 0;
    ndropped = 0;
  }

let record_launch t ~name ~seconds ~latency_cycles ~sync_cycles ~phases =
  let phases =
    List.map (fun (ph, blocks) -> { ph_stats = ph; ph_blocks = blocks }) phases
  in
  List.iter
    (fun p ->
      List.iter
        (fun b ->
          t.spans <- t.spans + List.length b.b_spans;
          t.edges <- t.edges + List.length b.b_edges;
          t.marks <- t.marks + List.length b.b_marks;
          t.drops <- t.drops + b.b_dropped)
        p.ph_blocks)
    phases;
  t.items <-
    Launch
      {
        ln_name = name;
        ln_seconds = seconds;
        ln_latency_cycles = latency_cycles;
        ln_sync_cycles = sync_cycles;
        ln_phases = phases;
      }
    :: t.items

let note t kind ~name =
  t.notes <- t.notes + 1;
  t.items <- Note (kind, name) :: t.items

(* Invariants: spans on one (block, engine-track) carry real event-
   timeline issue times from {!Block.charge}/[charge_async]. An engine
   is an in-order queue, so per track the spans are monotone and never
   overlap — each starts at or after the previous one's end (gaps are
   stalls where the lane waited on another engine). Tracks of the same
   block DO overlap each other; that is the pipelining the model
   exists to express. An overlap within one track means recording and
   queue accounting have diverged. *)
let check t =
  let eps = 1e-9 in
  let bad = ref None in
  let fail fmt = Format.kasprintf (fun s -> bad := Some s) fmt in
  if t.drops > 0 then fail "%d spans dropped by the per-block cap" t.drops;
  let check_block ln b =
    (* last seen end per engine track *)
    let tracks = Hashtbl.create 8 in
    List.iter
      (fun s ->
        if !bad = None then begin
          if s.sp_end < s.sp_start -. eps then
            fail "launch %s block %d %s: span %s has negative duration" ln
              b.b_idx s.sp_engine s.sp_op;
          match Hashtbl.find_opt tracks s.sp_track with
          | Some prev_end when s.sp_start < prev_end -. eps ->
              fail
                "launch %s block %d %s: span %s starts at %.3f before track \
                 end %.3f"
                ln b.b_idx s.sp_engine s.sp_op s.sp_start prev_end
          | _ -> Hashtbl.replace tracks s.sp_track s.sp_end
        end)
      b.b_spans;
    Hashtbl.iter
      (fun _ last ->
        if !bad = None && last > b.b_cycles +. eps then
          fail "launch %s block %d: engine track ends at %.3f after block \
                elapsed %.3f"
            ln b.b_idx last b.b_cycles)
      tracks;
    (* Dependency edges must fully explain every span's issue time: a
       span starts exactly (bitwise — Float.max over non-negative ends
       is order-independent) at the max end of its edge predecessors,
       0.0 with none. This is the contract the critical-path profiler
       rebuilds the timeline from. *)
    let by_id = Hashtbl.create 64 in
    List.iter (fun s -> Hashtbl.replace by_id s.sp_id s) b.b_spans;
    let preds = Hashtbl.create 64 in
    List.iter
      (fun e ->
        if !bad = None then begin
          if not (Hashtbl.mem by_id e.e_src) then
            fail "launch %s block %d: edge source span %d not recorded" ln
              b.b_idx e.e_src
          else if not (Hashtbl.mem by_id e.e_dst) then
            fail "launch %s block %d: edge target span %d not recorded" ln
              b.b_idx e.e_dst
          else if e.e_src >= e.e_dst then
            fail "launch %s block %d: edge %d -> %d not in issue order" ln
              b.b_idx e.e_src e.e_dst;
          Hashtbl.add preds e.e_dst e.e_src
        end)
      b.b_edges;
    List.iter
      (fun s ->
        if !bad = None then
          let start =
            List.fold_left
              (fun m src ->
                match Hashtbl.find_opt by_id src with
                | Some p -> Float.max m p.sp_end
                | None -> m)
              0.0
              (Hashtbl.find_all preds s.sp_id)
          in
          if not (Float.equal start s.sp_start) then
            fail
              "launch %s block %d %s: span %d (%s) starts at %h but its edge \
               predecessors end at %h"
              ln b.b_idx s.sp_engine s.sp_id s.sp_op s.sp_start start)
      b.b_spans
  in
  List.iter
    (function
      | Note _ -> ()
      | Launch l ->
          List.iter
            (fun p -> List.iter (check_block l.ln_name) p.ph_blocks)
            l.ln_phases)
    t.items;
  match !bad with None -> Ok () | Some msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Assembly: compute the global timeline in simulated cycles.          *)

type arg = I of int | F of float | S of string | B of bool

type placed = {
  p_pid : int;
  p_tid : int;
  p_tname : string;
  p_name : string;
  p_cat : string;
  p_ts : float;
  p_dur : float option;
  p_args : (string * arg) list;
}

(* Device-level track ids (pid 0). *)
let device_timeline_tid = 0
let device_events_tid = 1

(* Per-core instant track sits after the engine tracks. *)
let core_events_tid = 1000

let assemble t =
  let out = ref [] in
  let emit e = out := e :: !out in
  let cursor = ref 0.0 in
  (* Global counters for the profiler-facing identities: every placed
     span gets a trace-unique [sid], every placed block occurrence a
     [binst] (the grouping key of the per-block dependency DAG), every
     flow a trace-unique id. All three are assigned in assembly order,
     which is deterministic. *)
  let next_sid = ref 0 in
  let next_binst = ref 0 in
  let next_flow = ref 0 in
  let seconds_to_cycles s = s *. t.clock_hz in
  let place_launch l =
    let launch_start = !cursor in
    let launch_cycles = seconds_to_cycles l.ln_seconds in
    emit
      {
        p_pid = 0;
        p_tid = device_timeline_tid;
        p_tname = "timeline";
        p_name = l.ln_name;
        p_cat = "launch";
        p_ts = launch_start;
        p_dur = Some launch_cycles;
        p_args =
          [
            ("seconds", F l.ln_seconds);
            ("phases", I (List.length l.ln_phases));
            ("latency_cycles", F l.ln_latency_cycles);
            ("sync_cycles", F l.ln_sync_cycles);
          ];
      };
    (* Phases start after the launch latency and are separated by
       SyncAll barriers. *)
    let ph_cursor = ref (launch_start +. l.ln_latency_cycles) in
    List.iteri
      (fun i p ->
        let st = p.ph_stats in
        if i > 0 then begin
          emit
            {
              p_pid = 0;
              p_tid = device_events_tid;
              p_tname = "events";
              p_name = "sync_all";
              p_cat = kind_to_string Barrier;
              p_ts = !ph_cursor;
              p_dur = None;
              p_args = [ ("launch", S l.ln_name) ];
            };
          ph_cursor := !ph_cursor +. l.ln_sync_cycles
        end;
        let phase_start = !ph_cursor in
        let phase_cycles = seconds_to_cycles st.Stats.seconds in
        let bound = if st.Stats.bandwidth_bound then "bandwidth" else "compute" in
        emit
          {
            p_pid = 0;
            p_tid = device_timeline_tid;
            p_tname = "timeline";
            p_name = Printf.sprintf "%s/phase%d" l.ln_name i;
            p_cat = "phase";
            p_ts = phase_start;
            p_dur = Some phase_cycles;
            p_args =
              [
                ("launch", S l.ln_name);
                ("index", I i);
                ("seconds", F st.Stats.seconds);
                ("compute_seconds", F st.Stats.compute_seconds);
                ("bandwidth_seconds", F st.Stats.bandwidth_seconds);
                ("bound", S bound);
                ("gm_bytes", I st.Stats.gm_bytes);
                ("footprint_bytes", I st.Stats.footprint_bytes);
              ];
          };
        (* Blocks of one core serialise in block order; distinct cores
           overlap. Per-core cursors start at the phase start. *)
        let core_cursor = Hashtbl.create 32 in
        List.iter
          (fun b ->
            let start =
              match Hashtbl.find_opt core_cursor b.b_core with
              | Some c -> c
              | None -> phase_start
            in
            Hashtbl.replace core_cursor b.b_core (start +. b.b_cycles);
            let pid = b.b_core + 1 in
            let binst = !next_binst in
            incr next_binst;
            (* Local span id -> (global sid, span), for this block
               occurrence; edges then resolve through it. *)
            let by_id = Hashtbl.create 64 in
            List.iter
              (fun s ->
                let sid = !next_sid in
                incr next_sid;
                Hashtbl.replace by_id s.sp_id (sid, s);
                emit
                  {
                    p_pid = pid;
                    p_tid = s.sp_track;
                    p_tname = s.sp_engine;
                    p_name = s.sp_op;
                    p_cat = s.sp_queue;
                    p_ts = start +. s.sp_start;
                    p_dur = Some (s.sp_end -. s.sp_start);
                    p_args =
                      (("block", I s.sp_block)
                      :: ("sid", I sid)
                      :: ("binst", I binst)
                      :: ("c0", F s.sp_start)
                      :: ("c1", F s.sp_end)
                      ::
                      (if s.sp_bytes > 0 then [ ("bytes", I s.sp_bytes) ]
                       else []));
                  })
              b.b_spans;
            (* Dependency edges as paired flow points: one at the source
               span's end on its track, one at the target's start on
               its. The Chrome writer turns them into ph "s"/"f" flow
               events; the profiler reads src/dst sids directly. *)
            List.iter
              (fun e ->
                match
                  (Hashtbl.find_opt by_id e.e_src, Hashtbl.find_opt by_id e.e_dst)
                with
                | Some (src_sid, src), Some (dst_sid, dst) ->
                    let fid = !next_flow in
                    incr next_flow;
                    let args =
                      [
                        ("id", I fid);
                        ("kind", S (edge_kind_to_string e.e_kind));
                        ("src", I src_sid);
                        ("dst", I dst_sid);
                      ]
                    in
                    emit
                      {
                        p_pid = pid;
                        p_tid = src.sp_track;
                        p_tname = src.sp_engine;
                        p_name = edge_kind_to_string e.e_kind;
                        p_cat = "flow_out";
                        p_ts = start +. src.sp_end;
                        p_dur = None;
                        p_args = args;
                      };
                    emit
                      {
                        p_pid = pid;
                        p_tid = dst.sp_track;
                        p_tname = dst.sp_engine;
                        p_name = edge_kind_to_string e.e_kind;
                        p_cat = "flow_in";
                        p_ts = start +. dst.sp_start;
                        p_dur = None;
                        p_args = args;
                      }
                | _ -> ())
              b.b_edges;
            List.iter
              (fun m ->
                (* Clamp into the block window: a death mark carries the
                   cycle position at which the threshold tripped, which
                   the block's elapsed time already includes. *)
                let c = Float.min m.mk_cycle b.b_cycles in
                emit
                  {
                    p_pid = pid;
                    p_tid = core_events_tid;
                    p_tname = "events";
                    p_name = m.mk_name;
                    p_cat = kind_to_string m.mk_kind;
                    p_ts = start +. c;
                    p_dur = None;
                    p_args = [ ("block", I m.mk_block) ];
                  })
              b.b_marks)
          p.ph_blocks;
        ph_cursor := phase_start +. phase_cycles)
      l.ln_phases;
    cursor := launch_start +. launch_cycles
  in
  List.iter
    (function
      | Launch l -> place_launch l
      | Note (kind, name) ->
          emit
            {
              p_pid = 0;
              p_tid = device_events_tid;
              p_tname = "events";
              p_name = name;
              p_cat = kind_to_string kind;
              p_ts = !cursor;
              p_dur = None;
              p_args = [];
            })
    (List.rev t.items);
  List.stable_sort
    (fun a b ->
      let c = Float.compare a.p_ts b.p_ts in
      if c <> 0 then c
      else
        let c = Int.compare a.p_pid b.p_pid in
        if c <> 0 then c
        else
          let c = Int.compare a.p_tid b.p_tid in
          if c <> 0 then c else String.compare a.p_name b.p_name)
    (List.rev !out)

let pp_summary ppf t =
  Format.fprintf ppf "trace: %d events (%d spans, %d instants) across %d \
                      launches%s"
    (event_count t) t.spans (t.marks + t.notes)
    (List.length (launches t))
    (if t.drops > 0 then Printf.sprintf ", %d DROPPED" t.drops else "")
