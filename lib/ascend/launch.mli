(** Kernel launch and multi-block scheduling.

    A launch executes one or more {e phases}. Within a phase, [blocks]
    block bodies run in parallel across the device's {e surviving} AI
    cores: block [i] is assigned round-robin over the cores the
    {!Health} monitor reports alive (the full grid on a healthy device,
    i.e. core [i mod num_cores] — the historical mapping, so the
    zero-failure path is bit- and time-identical). Blocks beyond the
    core count are scheduled round-robin, so a core's time is the sum
    of its blocks. Consecutive phases are separated by a [SyncAll]
    global barrier, matching Algorithm 3's structure.

    {2 Degraded mode}

    A core that crosses its seeded kill threshold or trips quarantine
    mid-block raises {!Health.Core_dead} from inside the block body.
    The launch absorbs it: the dead core's partial timeline, traffic
    and instruction counts stay in the stats (that work really
    happened), the core is retired, and the block replays from scratch
    on the shrunken alive set. Kernel blocks derive the ranges they
    write purely from their block index, so the replay is idempotent
    and the final output is bit-identical to a healthy run. When every
    core has died, {!Health.All_cores_dead} escapes to the caller
    (e.g. {!Runtime.Resilient}).

    {2 Host parallel execution}

    The launch is also the simulator's own hot loop, and it runs on a
    multicore host. When the device was created with [domains > 1]
    {e and} the phase is provably stateless on the host side — no
    fault model, no sanitizer, {!Health.inert} monitor — its blocks
    are dispatched across a pool of OCaml domains instead of being
    replayed sequentially. The contract is strict determinism: tensor
    outputs are bit-identical and the resulting {!Stats.t} is
    {!Stats.equal_simulated} to the sequential run for {e any} domain
    count, because block bodies only touch block-disjoint tensor
    ranges, per-block results land in an array indexed by block id,
    and all shared accounting (core timelines, engine busy cycles, the
    health clock) is replayed from that array in block order after the
    join. Fault injection, seeded kills/quarantine and the sanitizer
    are inherently order-dependent, so their presence forces the
    deterministic sequential path and their semantics are untouched.

    {2 Watchdog}

    When the device was created with [~deadline_cycles], the cumulative
    compute critical path of the launch (stalls included; launch
    latency and bandwidth floors excluded) is checked after every
    phase; crossing the budget raises {!Deadline_exceeded} instead of
    silently inflating the stats.

    Phase time is [max(compute, traffic / effective_bandwidth)] where
    compute is the slowest core's critical path and the effective
    bandwidth is the L2 figure when the phase's distinct global-tensor
    footprint fits in L2, the HBM figure otherwise. The launch adds the
    host-side kernel-launch latency once. *)

exception
  Deadline_exceeded of {
    name : string;
    budget_cycles : float;
    spent_cycles : float;
  }
(** The structured watchdog abort: the launch's compute critical path
    crossed the device deadline budget. *)

val run_phases :
  ?name:string -> Device.t -> blocks:int -> (Block.t -> unit) list -> Stats.t
(** Raises [Invalid_argument] when [blocks < 1] or the phase list is
    empty; {!Deadline_exceeded} on a watchdog abort;
    {!Health.All_cores_dead} when core deaths leave nothing to run on. *)

val run : ?name:string -> Device.t -> blocks:int -> (Block.t -> unit) -> Stats.t
(** Single-phase convenience wrapper. *)
