type phase = {
  compute_seconds : float;
  bandwidth_seconds : float;
  seconds : float;
  gm_bytes : int;
  footprint_bytes : int;
  bandwidth_bound : bool;
}

type t = {
  name : string;
  seconds : float;
  phases : phase list;
  blocks : int;
  cores_used : int;
  gm_read_bytes : int;
  gm_write_bytes : int;
  engine_busy : (string * float) list;
  core_busy : float array;
  op_counts : (string * int) list;
  faults : Fault.event list;
  retries : int;
  degraded : int;
  host_seconds : float;
  domains : int;
  launches : int;
}

let host_speedup ~baseline t =
  if t.host_seconds <= 0.0 then 0.0 else baseline.host_seconds /. t.host_seconds

let host_seconds_per_launch t =
  if t.launches <= 0 then 0.0 else t.host_seconds /. float_of_int t.launches

(* Zero-duration guard: a launch (or combined stats) can legitimately
   report [seconds = 0.] — keep the array shape so callers can still
   index per core instead of crashing on [[||]]. *)
let core_utilization t =
  if t.seconds <= 0.0 then Array.make (Array.length t.core_busy) 0.0
  else Array.map (fun b -> b /. t.seconds) t.core_busy

let phase_occupancy (p : phase) ~busy_cycles ~clock_hz =
  if p.seconds <= 0.0 || clock_hz <= 0.0 then 0.0
  else busy_cycles /. (p.seconds *. clock_hz)

let op_count t name =
  Option.value ~default:0 (List.assoc_opt name t.op_counts)

let gm_bytes t = t.gm_read_bytes + t.gm_write_bytes

let empty ~name =
  {
    name;
    seconds = 0.0;
    phases = [];
    blocks = 0;
    cores_used = 0;
    gm_read_bytes = 0;
    gm_write_bytes = 0;
    engine_busy = [];
    core_busy = [||];
    op_counts = [];
    faults = [];
    retries = 0;
    degraded = 0;
    host_seconds = 0.0;
    domains = 1;
    launches = 0;
  }

let combine ~name = function
  | [] -> invalid_arg "Stats.combine: empty list"
  | first :: _ as stats ->
      {
        name;
        seconds = List.fold_left (fun acc s -> acc +. s.seconds) 0.0 stats;
        phases = List.concat_map (fun s -> s.phases) stats;
        blocks = List.fold_left (fun acc s -> max acc s.blocks) 0 stats;
        cores_used =
          List.fold_left (fun acc s -> max acc s.cores_used) 0 stats;
        gm_read_bytes =
          List.fold_left (fun acc s -> acc + s.gm_read_bytes) 0 stats;
        gm_write_bytes =
          List.fold_left (fun acc s -> acc + s.gm_write_bytes) 0 stats;
        engine_busy =
          List.map
            (fun (e, _) ->
              ( e,
                List.fold_left
                  (fun acc s ->
                    match List.assoc_opt e s.engine_busy with
                    | Some c -> acc +. c
                    | None -> acc)
                  0.0 stats ))
            first.engine_busy;
        core_busy =
          (let n =
             List.fold_left
               (fun acc s -> max acc (Array.length s.core_busy))
               0 stats
           in
           let acc = Array.make n 0.0 in
           List.iter
             (fun s ->
               Array.iteri (fun c b -> acc.(c) <- acc.(c) +. b) s.core_busy)
             stats;
           acc);
        op_counts =
          (let tbl = Hashtbl.create 16 in
           List.iter
             (fun s ->
               List.iter
                 (fun (k, v) ->
                   Hashtbl.replace tbl k
                     (v + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
                 s.op_counts)
             stats;
           List.sort
             (fun (_, a) (_, b) -> compare b a)
             (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []));
        faults = List.concat_map (fun s -> s.faults) stats;
        retries = List.fold_left (fun acc s -> acc + s.retries) 0 stats;
        degraded = List.fold_left (fun acc s -> acc + s.degraded) 0 stats;
        host_seconds =
          List.fold_left (fun acc s -> acc +. s.host_seconds) 0.0 stats;
        domains = List.fold_left (fun acc s -> max acc s.domains) 1 stats;
        launches = List.fold_left (fun acc s -> acc + s.launches) 0 stats;
      }
(* Equality of everything the simulation determines — i.e. every field
   except the host-side wall clock and execution width. The domain
   determinism suite asserts this across --domains settings. *)
let equal_simulated a b =
  a.name = b.name && a.seconds = b.seconds && a.phases = b.phases
  && a.blocks = b.blocks && a.cores_used = b.cores_used
  && a.gm_read_bytes = b.gm_read_bytes
  && a.gm_write_bytes = b.gm_write_bytes
  && a.engine_busy = b.engine_busy
  && a.core_busy = b.core_busy
  && a.op_counts = b.op_counts && a.faults = b.faults
  && a.retries = b.retries && a.degraded = b.degraded
  && a.launches = b.launches

let effective_bandwidth t ~bytes = float_of_int bytes /. t.seconds
let elements_per_second t ~elements = float_of_int elements /. t.seconds

let pp_summary fmt t =
  Format.fprintf fmt "%-24s %10.3f us  %8.2f GB/s moved  %d blocks" t.name
    (t.seconds *. 1e6)
    (float_of_int (gm_bytes t) /. t.seconds /. 1e9)
    t.blocks

let pp fmt t =
  Format.fprintf fmt "@[<v>kernel %s: %.3f us, %d blocks on %d cores@ " t.name
    (t.seconds *. 1e6) t.blocks t.cores_used;
  Format.fprintf fmt "GM: %.2f MiB read, %.2f MiB written@ "
    (float_of_int t.gm_read_bytes /. 1048576.0)
    (float_of_int t.gm_write_bytes /. 1048576.0);
  List.iteri
    (fun i (p : phase) ->
      Format.fprintf fmt
        "phase %d: %.3f us (%s-bound; compute %.3f us, bw %.3f us, %.2f MiB \
         traffic, %.2f MiB footprint)@ "
        i (p.seconds *. 1e6)
        (if p.bandwidth_bound then "bandwidth" else "compute")
        (p.compute_seconds *. 1e6)
        (p.bandwidth_seconds *. 1e6)
        (float_of_int p.gm_bytes /. 1048576.0)
        (float_of_int p.footprint_bytes /. 1048576.0))
    t.phases;
  Format.fprintf fmt "engine busy (kcycles):";
  List.iter
    (fun (e, c) ->
      if c > 0.0 then Format.fprintf fmt " %s=%.1f" e (c /. 1e3))
    t.engine_busy;
  if Array.exists (fun b -> b > 0.0) t.core_busy then begin
    Format.fprintf fmt "@ per-core busy (kcycles):";
    Array.iteri
      (fun c b -> Format.fprintf fmt " c%d=%.1f" c (b /. 1e3))
      t.core_busy
  end;
  (match t.op_counts with
  | [] -> ()
  | ops ->
      Format.fprintf fmt "@ instruction mix:";
      List.iteri
        (fun i (o, c) -> if i < 8 then Format.fprintf fmt " %s=%d" o c)
        ops);
  if t.faults <> [] then begin
    Format.fprintf fmt "@ faults injected: %d" (List.length t.faults);
    List.iteri
      (fun i e -> if i < 4 then Format.fprintf fmt "@   %a" Fault.pp_event e)
      t.faults
  end;
  if t.retries > 0 || t.degraded > 0 then
    Format.fprintf fmt "@ resilience: %d retries, %d degradations" t.retries
      t.degraded;
  if t.host_seconds > 0.0 then
    Format.fprintf fmt "@ host: %.2f ms wall-clock on %d domain%s%s"
      (t.host_seconds *. 1e3) t.domains
      (if t.domains = 1 then "" else "s")
      (if t.launches > 1 then Printf.sprintf " (%d launches)" t.launches
       else "");
  Format.fprintf fmt "@]"
