(** Typed host-side storage backing every simulated memory.

    A buffer stores elements as OCaml [float]s but enforces the declared
    {!Dtype.t} on every write: fp16 values are rounded through the
    binary16 codec, integers are truncated and wrapped. Reads return the
    stored (already canonical) value. *)

type t

val create : Dtype.t -> int -> t
(** [create dt n] is a zero-initialised buffer of [n] elements. *)

val dtype : t -> Dtype.t
val length : t -> int

val size_bytes : t -> int
(** [length * Dtype.size_bytes dtype]. *)

val get : t -> int -> float
(** O(1); raises [Invalid_argument] when out of bounds. *)

val set : t -> int -> float -> unit
(** Stores [Dtype.round (dtype t) v]. *)

val set_cast : t -> int -> from:Dtype.t -> float -> unit
(** Stores with hardware cast semantics from another data type (see
    {!Dtype.cast}); used by casting data copies such as the L0C(fp32) to
    GM(fp16) path. *)

val fill : t -> float -> unit

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Copy applying the destination's rounding. Same-dtype copies move
    the (already canonical) values wholesale via [Array.blit];
    converting copies pay the dtype dispatch once, not per element. *)

val of_array : Dtype.t -> float array -> t
(** Allocate and fill, rounding every element through the dtype codec
    with the dispatch hoisted out of the loop. *)

val to_array : t -> float array
val copy : t -> t

val pp : Format.formatter -> t -> unit
(** Debug printer showing dtype, length and the first few elements. *)
