(** Typed host-side storage backing every simulated memory.

    A buffer stores elements as float64 words in a flat
    [Bigarray.Array1] (off the OCaml heap, so the GC never scans tensor
    payloads and domain-parallel launches share them safely) but
    enforces the declared {!Dtype.t} on every write: fp16 values are
    rounded through the binary16 codec, integers are truncated and
    wrapped. Reads return the stored (already canonical) value.

    The scalar {!get}/{!set} API is the compatibility shim; the bulk
    kernels below validate their ranges once and run dtype-specialised
    unsafe inner loops. Every bulk kernel reproduces the operand order
    and rounding of an equivalent scalar [get]/[set] loop bit for bit
    (NaN payloads and float non-associativity make the order
    observable); [test_bulk.ml] holds the QCheck equivalence suite. *)

type t

type ba = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The flat storage representation. *)

val data : t -> ba
(** The backing Bigarray — the escape hatch for engine evaluation
    loops that validate their ranges up front and round explicitly
    (see {!Cube}). Every element written must be canonical for
    {!dtype} (pass it through {!Dtype.round} or a hoisted
    {!Dtype.rounder}); the scalar/bulk APIs above maintain that
    invariant automatically. *)

val create : Dtype.t -> int -> t
(** [create dt n] is a zero-initialised buffer of [n] elements. The
    storage may be recycled from the retired-buffer pool (see
    {!retire}); contents are zeroed either way. *)

val retire : t -> unit
(** Return the buffer's storage to the internal free pool for reuse by
    a later {!create} of the same length. Idempotent. The caller
    asserts the buffer is dead: reading or writing it after [retire]
    may observe or corrupt an unrelated buffer that inherited the
    storage. Used by {!Block.finish} to recycle a finished block's
    scratchpad tensors — simulated local memories never outlive their
    block, mirroring the hardware. The pool is domain-safe and
    size-capped (excess storage falls back to the GC). *)

val dtype : t -> Dtype.t
val length : t -> int

val size_bytes : t -> int
(** [length * Dtype.size_bytes dtype]. *)

val get : t -> int -> float
(** O(1); raises [Invalid_argument] when out of bounds. *)

val set : t -> int -> float -> unit
(** Stores [Dtype.round (dtype t) v]. *)

val set_cast : t -> int -> from:Dtype.t -> float -> unit
(** Stores with hardware cast semantics from another data type (see
    {!Dtype.cast}); used by casting data copies such as the L0C(fp32) to
    GM(fp16) path. *)

val unsafe_get : t -> int -> float
(** Unchecked read for loops that validated their range up front. *)

val unsafe_set : t -> int -> float -> unit
(** Unchecked {!set} (still rounds through the dtype). *)

val fill : t -> float -> unit

val fill_range : t -> off:int -> len:int -> float -> unit
(** Fill a sub-range with one rounded value (bulk [Vec.dup]). *)

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Copy applying the destination's rounding. Same-dtype copies move
    the (already canonical) values wholesale via a Bigarray blit
    (memmove, overlap-safe); converting copies pay the dtype dispatch
    once, not per element. *)

val of_array : Dtype.t -> float array -> t
(** Allocate and fill, rounding every element through the dtype codec
    with the dispatch hoisted out of the loop. *)

val load_array : t -> float array -> unit
(** Store [a] into the buffer's prefix, rounding each element; raises
    [Invalid_argument] when [a] is longer than the buffer. *)

val to_array : t -> float array
val copy : t -> t

(** {2 Bulk kernels}

    Dtype-specialised loops over validated ranges. All raise
    [Invalid_argument] on out-of-range spans. *)

type binop = Add | Sub | Mul | Max | Min

type scalar_op = Adds | Muls | Maxs | Mins

val map2_binop :
  binop ->
  src0:t -> src0_off:int -> src1:t -> src1_off:int ->
  dst:t -> dst_off:int -> len:int -> unit
(** [dst.(i) <- round (src0.(i) op src1.(i))]; [src0] is the left
    operand. *)

val map1_scalar :
  scalar_op ->
  src:t -> src_off:int -> dst:t -> dst_off:int -> scalar:float ->
  len:int -> unit
(** [dst.(i) <- round (src.(i) op scalar)] in the historical [Vec]
    operand order: [Adds]/[Muls] put the element left, [Maxs]/[Mins]
    the scalar left. *)

val map1_f :
  (float -> float) ->
  src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Closure fall-back for the cold element-wise paths; still a single
    range validation and a bounds-check-free loop. *)

val map2_f :
  (float -> float -> float) ->
  src0:t -> src0_off:int -> src1:t -> src1_off:int ->
  dst:t -> dst_off:int -> len:int -> unit

val select_range :
  mask:t -> mask_off:int -> src0:t -> src0_off:int -> src1:t ->
  src1_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** [dst.(i) <- if mask.(i) <> 0 then src0.(i) else src1.(i)]. *)

val arange_range : t -> off:int -> start:float -> len:int -> unit
(** [t.(off+i) <- round (start + i)]. *)

val reduce_add : t -> off:int -> len:int -> float
(** Forward-order raw double accumulation, no final rounding (the
    caller rounds, as the engine ops always did). *)

val reduce_max : t -> off:int -> len:int -> float
(** [Float.max] fold from [neg_infinity], accumulator left. *)

val scan_accum : src:t -> dst:t -> len:int -> float
(** Linear inclusive scan: [acc <- round_dst (acc + src.(i));
    dst.(i) <- acc]; returns the final accumulator ([Vec.cumsum]'s
    historical loop). *)

val scan_segment : binop -> t -> off:int -> len:int -> seg:int -> init:float -> float
(** In-place segment-carry propagation: combine each row of [seg]
    elements with the running carry (exact {!map1_scalar} operand
    order), the carry re-read from the row's last stored value.
    Returns the final carry. [seg = 1] degenerates to an element-wise
    carry chain; raises [Invalid_argument] when [seg <= 0]. *)

val pp : Format.formatter -> t -> unit
(** Debug printer showing dtype, length and the first few elements. *)
