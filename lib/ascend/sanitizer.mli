(** Hardware sanitizer: opt-in validation of kernel execution.

    Enabled per device ([Device.create ~sanitize:true ()]), the
    sanitizer reports structured diagnostics instead of letting kernels
    silently compute garbage:

    - {!Out_of_bounds}: an engine op addressed a range outside a
      global or local tensor (recorded before the op raises);
    - {!Write_write_hazard} / {!Read_write_hazard}: two different
      blocks touched overlapping ranges of the same global tensor
      within one phase, with at least one write — i.e. a missing
      [SyncAll]. The simulator executes blocks sequentially, so such
      kernels appear to work here but race on real hardware;
    - {!Queue_violation}: an AscendC queue was enqueued with no free
      buffer or dequeued while empty (see {!Queue});
    - {!Async_hazard}: an engine op consumed a local tile that is still
      the destination of an in-flight asynchronous [DataCopy] — the
      kernel issued {!Mte.copy_in_async} but used the tile before the
      matching [wait_group]. In the simulator the data happens to be
      there (host blits are eager); on hardware the read races the
      copy.

    Hazard tracking coalesces each block's accesses per tensor into a
    bounding span, which is exact for tiled kernels. Kernels that
    legitimately interleave data-dependent disjoint writes (scatter
    stores) annotate the output via {!Block.assume_disjoint_writes}. *)

type kind =
  | Out_of_bounds
  | Queue_violation
  | Write_write_hazard
  | Read_write_hazard
  | Async_hazard

val kind_to_string : kind -> string

type diag = {
  kind : kind;
  phase : int;  (** 0-based phase index within the current launch. *)
  block : int;  (** First offending block (-1 when not block-specific). *)
  op : string;
  tensor : string;
  message : string;
}

type t

val create : unit -> t

val begin_phase : t -> unit
(** Called by {!Launch} at the start of every phase. *)

val end_phase : t -> unit
(** Called by {!Launch} at the end of every phase; runs the cross-block
    hazard analysis over the accesses recorded since [begin_phase]. *)

val record_global_access :
  t ->
  block:int ->
  tensor_id:int ->
  tensor_name:string ->
  write:bool ->
  off:int ->
  len:int ->
  op:string ->
  unit
(** Called by the MTE ops on every GM transfer. *)

val exempt_tensor : t -> tensor_id:int -> reason:string -> unit
(** Exclude a tensor from hazard analysis for the current phase. *)

val record_oob : t -> block:int -> op:string -> tensor:string -> message:string -> unit

val record_queue_violation :
  t -> block:int -> queue:string -> message:string -> unit

val record_async_hazard :
  t -> block:int -> op:string -> tensor:string -> message:string -> unit
(** Called by {!Block.check_async_use} when an engine op consumes a
    tile with an un-waited asynchronous copy in flight. *)

val diagnostics : t -> diag list
(** All diagnostics, oldest first (capped at 256). *)

val count : t -> int
val count_kind : t -> kind -> int
val clear : t -> unit

val pp_diag : Format.formatter -> diag -> unit
val pp_report : Format.formatter -> t -> unit

(** Checked AscendC queue discipline (EnQue/DeQue over a fixed buffer
    pool). Violations are recorded as {!Queue_violation} diagnostics
    rather than raising, mirroring how a hardware sanitizer reports. *)
module Queue : sig
  type q

  val make : t -> block:int -> name:string -> depth:int -> q
  (** Raises [Invalid_argument] when [depth < 1]. *)

  val in_flight : q -> int
  val enqueue : q -> unit
  val dequeue : q -> unit
end
