(** Engine-level execution tracing: the event recorder behind the
    observability layer.

    The paper's evaluation argues from profiler timelines — cube /
    vector / MTE overlap read off msprof traces. The simulator computes
    exactly those per-engine timelines but (without this module) throws
    the event-level detail away, keeping only {!Stats} aggregates. A
    [Trace.t] attached to a device ({!Device.arm_trace}) turns every
    simulated instruction into a {e span} [{core; block; engine; op;
    start_cycle; end_cycle; bytes; queue}] and every fault, core death,
    retry, degradation, SyncAll barrier and checkpoint commit into an
    {e instant} event, recorded at the single choke points in {!Block},
    {!Launch} and [Runtime.Resilient] — kernels need no edits.

    {2 Determinism}

    Tracing is deterministic across host execution widths
    ({!Device.create}'s [domains]): spans carry {e block-local}
    engine-track positions computed inside each block (identical on any
    schedule), blocks are folded into the trace in block-id order (the
    same deterministic post-join merge {!Launch} uses for stats), and
    {!assemble} sorts events by simulated time and track before any
    writer sees them. Serialising the same kernel's trace at
    [--domains 1] and [--domains 4] yields byte-identical output — the
    {!Stats.equal_simulated} contract extended to traces.

    {2 Timeline model}

    Global placement is reconstructed at {!assemble} time: launches are
    laid end to end; inside a launch, phases follow the launch latency
    and are separated by SyncAll instants; inside a phase, the blocks
    of one core serialise in block order while different cores (and
    the engines within a block) overlap — one Perfetto track per
    engine per core, processes = AI cores. All positions are simulated
    cycles; writers convert with [cycles / clock_hz * 1e6] to the
    microseconds of the Chrome trace-event format. *)

type kind =
  | Fault  (** An injected fault landed (from {!Block.note_fault}). *)
  | Death  (** A core crossed its kill threshold mid-block. *)
  | Retry  (** A resilient-runner re-execution. *)
  | Degrade  (** A resilient-runner fallback switch. *)
  | Checkpoint  (** A validated row group committed. *)
  | Barrier  (** A SyncAll between launch phases (assembly-generated). *)
  | Info

val kind_to_string : kind -> string

type span = {
  sp_id : int;  (** Block-local span sequence id (issue order). *)
  sp_block : int;
  sp_track : int;  (** {!Engine.index} of the engine within its core. *)
  sp_engine : string;  (** {!Engine.to_string} name, e.g. ["vec0.mte_in"]. *)
  sp_queue : string;  (** Issue queue ({!Engine.queue}): MTE2/MTE3/M/V/S. *)
  sp_op : string;  (** Instruction name, e.g. ["mmad"], ["datacopy_in"]. *)
  sp_start : float;  (** Block-local event-timeline issue time, cycles. *)
  sp_end : float;
  sp_bytes : int;  (** Transfer payload (0 for non-MTE ops). *)
}

(** Why a span could not issue earlier: the dependency-edge kinds of
    the event timeline, recorded by {!Block} alongside the spans. *)
type edge_kind =
  | Lane  (** Program order: previous synchronous op on the same lane. *)
  | Queue  (** Engine order: previous op issued on the same in-order queue. *)
  | Group  (** A {!Block.wait_group} retired the source's async group. *)
  | Fence  (** A {!Block.fence} joined the lane to the source's engine. *)
  | Await  (** A {!Block.await_engine} cross-lane join. *)
  | Join  (** A {!Block.wait_all} full-block barrier. *)
  | Section  (** Legacy {!Block.pipelined} overlap-section entry/exit. *)

val edge_kind_to_string : edge_kind -> string

type edge = {
  e_src : int;  (** {!span.sp_id} of the predecessor. *)
  e_dst : int;  (** {!span.sp_id} of the dependent span. *)
  e_kind : edge_kind;
}
(** One dependency edge: span [e_dst] could not issue before [e_src]
    ended. The edge set fully explains the timeline — every span's
    start is exactly the max end of its predecessors ({!check} enforces
    this), so the critical path recomputed from spans + edges is
    bit-identical to the engine-model makespan. *)

type mark = {
  mk_block : int;
  mk_kind : kind;
  mk_name : string;
  mk_cycle : float;  (** Block-local charged cycles at the instant. *)
}

type block_rec = {
  b_idx : int;
  b_core : int;
  b_cycles : float;  (** Elapsed (pipelined) cycles of the block. *)
  b_spans : span list;  (** In issue order. *)
  b_edges : edge list;  (** Dependency edges, in recording order. *)
  b_marks : mark list;
  b_dropped : int;  (** Spans discarded by the per-block cap. *)
}

type phase_rec = { ph_stats : Stats.phase; ph_blocks : block_rec list }

type launch_rec = {
  ln_name : string;
  ln_seconds : float;  (** End-to-end simulated launch seconds. *)
  ln_latency_cycles : float;
  ln_sync_cycles : float;
  ln_phases : phase_rec list;
}

type t

val create : ?clock_hz:float -> ?max_spans_per_block:int -> unit -> t
(** A fresh recorder. [clock_hz] (default {!Cost_model.default}'s
    clock) converts cycles to trace microseconds;
    [max_spans_per_block] (default unbounded) caps per-block span
    memory — excess spans are counted as dropped, never silently
    lost. *)

val clock_hz : t -> float

val span_count : t -> int
(** Spans recorded so far (across all launches). *)

val edge_count : t -> int
(** Dependency edges recorded so far. *)

val mark_count : t -> int

val event_count : t -> int
(** [span_count + mark_count] plus one note per global instant. *)

val dropped : t -> int
(** Spans discarded by the per-block cap; 0 in any healthy recording. *)

val launches : t -> launch_rec list
(** Recorded launches, oldest first. *)

(** Per-block span builder, owned by one {!Block.t}. Builders are
    block-local (no shared mutable state), so blocks recorded on
    parallel host domains produce the same events as the sequential
    schedule. *)
module Block_builder : sig
  type b

  val span :
    b ->
    track:int ->
    engine:string ->
    queue:string ->
    op:string ->
    start:float ->
    cycles:float ->
    bytes:int ->
    int
  (** Returns the span's block-local id ({!span.sp_id}); ids are also
      consumed by spans dropped under the per-block cap, so edge
      endpoints stay stable. *)

  val edge : b -> kind:edge_kind -> src:int -> dst:int -> unit
  (** Record that span [dst] could not issue before [src] ended.
      Negative ids and self-edges are ignored. *)

  val mark : b -> kind -> name:string -> cycle:float -> unit
  val finish : b -> cycles:float -> block_rec
end

val block_builder : t -> idx:int -> core:int -> Block_builder.b

val record_launch :
  t ->
  name:string ->
  seconds:float ->
  latency_cycles:float ->
  sync_cycles:float ->
  phases:(Stats.phase * block_rec list) list ->
  unit
(** Fold one completed launch into the trace; called by
    {!Launch.run_phases} after its deterministic post-join merge, with
    [phases] blocks in block-id order (partial blocks of mid-flight
    core deaths appended after the full set, as in the stats). *)

val note : t -> kind -> name:string -> unit
(** Record a global instant (retry, degradation, checkpoint commit)
    at the current end of the timeline. *)

val check : t -> (unit, string) result
(** Recorder invariants: zero dropped spans, non-negative span
    durations, and per-(block, engine-track) non-overlap — each span
    starts at or after the previous one on its track ended (engines
    are in-order queues; gaps are stalls), and no span outruns the
    block's makespan. Tracks of one block are allowed — expected — to
    overlap each other. Dependency edges must reference recorded spans
    in issue order, and every span's issue time must equal — bitwise —
    the max end of its edge predecessors (0.0 with none): the recorded
    DAG fully explains the timeline. [Error] carries the first
    violation. *)

(** {2 Assembly} *)

type arg = I of int | F of float | S of string | B of bool

type placed = {
  p_pid : int;  (** 0 = device-level track; core [c] = [c + 1]. *)
  p_tid : int;  (** Track id within the process (engine index). *)
  p_tname : string;  (** Track label, e.g. ["cube.mte_in"], ["events"]. *)
  p_name : string;
  p_cat : string;  (** Span category (issue queue) or instant kind. *)
  p_ts : float;  (** Global position, simulated cycles. *)
  p_dur : float option;  (** [None] = instant event. *)
  p_args : (string * arg) list;
}

val assemble : t -> placed list
(** The full trace as globally-placed events, sorted by
    [(ts, pid, tid, name)] — deterministic for a given recording
    regardless of host schedule. Device-level events (pid 0) include
    one span per launch, one span per phase (with compute/bandwidth
    attribution in its args) and SyncAll {!Barrier} instants.

    Profiler-facing identities ride in the args: every span carries a
    trace-unique [sid], its block occurrence [binst], and its
    block-local cycle endpoints [c0]/[c1] (exact — the microsecond
    [ts]/[dur] do not round-trip to cycles); every dependency edge
    becomes a pair of zero-duration events with [p_cat] ["flow_out"]
    (at the source span's end) and ["flow_in"] (at the target's start),
    both carrying [id]/[kind]/[src]/[dst] args — the Chrome writer maps
    them onto ph ["s"]/["f"] flow events. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line recorder summary (events, launches, drops). *)
