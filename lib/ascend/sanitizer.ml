type kind =
  | Out_of_bounds
  | Queue_violation
  | Write_write_hazard
  | Read_write_hazard
  | Async_hazard

let kind_to_string = function
  | Out_of_bounds -> "out_of_bounds"
  | Queue_violation -> "queue_violation"
  | Write_write_hazard -> "write_write_hazard"
  | Read_write_hazard -> "read_write_hazard"
  | Async_hazard -> "async_copy_hazard"

type diag = {
  kind : kind;
  phase : int;
  block : int;
  op : string;
  tensor : string;
  message : string;
}

(* One coalesced global-memory access span of a block within the
   current phase: the bounding interval of everything the block read
   (resp. wrote) of one tensor. Exact for tiled kernels, conservative
   for scatters (which annotate themselves with [exempt_tensor]). *)
type span = {
  s_block : int;
  s_tensor : int;
  s_name : string;
  s_write : bool;
  mutable s_lo : int;
  mutable s_hi : int;
  s_op : string;
}

type t = {
  mutable phase : int;
  mutable diags : diag list;  (* newest first *)
  mutable n_diags : int;
  spans : (int * int * bool, span) Hashtbl.t;  (* (tensor, block, write) *)
  exempt : (int, string) Hashtbl.t;  (* tensor id -> reason, current phase *)
  mutable max_diags : int;
}

let create () =
  {
    phase = -1;
    diags = [];
    n_diags = 0;
    spans = Hashtbl.create 32;
    exempt = Hashtbl.create 8;
    max_diags = 256;
  }

let add_diag t d =
  if t.n_diags < t.max_diags then begin
    t.diags <- d :: t.diags;
    t.n_diags <- t.n_diags + 1
  end

let begin_phase t =
  t.phase <- t.phase + 1;
  Hashtbl.reset t.spans;
  Hashtbl.reset t.exempt

let record_global_access t ~block ~tensor_id ~tensor_name ~write ~off ~len ~op =
  if len > 0 then begin
    let key = (tensor_id, block, write) in
    match Hashtbl.find_opt t.spans key with
    | Some s ->
        s.s_lo <- min s.s_lo off;
        s.s_hi <- max s.s_hi (off + len)
    | None ->
        Hashtbl.add t.spans key
          { s_block = block; s_tensor = tensor_id; s_name = tensor_name;
            s_write = write; s_lo = off; s_hi = off + len; s_op = op }
  end

let exempt_tensor t ~tensor_id ~reason =
  if not (Hashtbl.mem t.exempt tensor_id) then
    Hashtbl.add t.exempt tensor_id reason

let overlaps a b =
  a.s_tensor = b.s_tensor && a.s_block <> b.s_block
  && (a.s_write || b.s_write)
  && a.s_lo < b.s_hi && b.s_lo < a.s_hi

let end_phase t =
  let spans = Hashtbl.fold (fun _ s acc -> s :: acc) t.spans [] in
  let spans =
    List.filter (fun s -> not (Hashtbl.mem t.exempt s.s_tensor)) spans
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a.s_block < b.s_block && overlaps a b then begin
            let kind =
              if a.s_write && b.s_write then Write_write_hazard
              else Read_write_hazard
            in
            let key = (a.s_tensor, a.s_block, b.s_block, kind) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.add seen key ();
              add_diag t
                {
                  kind;
                  phase = t.phase;
                  block = a.s_block;
                  op = a.s_op;
                  tensor = a.s_name;
                  message =
                    Printf.sprintf
                      "blocks %d and %d touch %s[%d,%d) x [%d,%d) in the same \
                       phase (%s vs %s) without an intervening SyncAll"
                      a.s_block b.s_block a.s_name a.s_lo a.s_hi b.s_lo b.s_hi
                      (if a.s_write then "write" else "read")
                      (if b.s_write then "write" else "read");
                }
            end
          end)
        spans)
    spans;
  Hashtbl.reset t.spans;
  Hashtbl.reset t.exempt

let record_oob t ~block ~op ~tensor ~message =
  add_diag t
    { kind = Out_of_bounds; phase = t.phase; block; op; tensor; message }

let record_queue_violation t ~block ~queue ~message =
  add_diag t
    { kind = Queue_violation; phase = t.phase; block; op = "queue";
      tensor = queue; message }

let record_async_hazard t ~block ~op ~tensor ~message =
  add_diag t
    { kind = Async_hazard; phase = t.phase; block; op; tensor; message }

let diagnostics t = List.rev t.diags
let count t = t.n_diags
let count_kind t k =
  List.fold_left (fun acc d -> if d.kind = k then acc + 1 else acc) 0 t.diags

let clear t =
  t.diags <- [];
  t.n_diags <- 0;
  t.phase <- -1;
  Hashtbl.reset t.spans;
  Hashtbl.reset t.exempt

let pp_diag fmt d =
  Format.fprintf fmt "[%s] phase %d block %d op %s tensor %s: %s"
    (kind_to_string d.kind) d.phase d.block d.op d.tensor d.message

let pp_report fmt t =
  if t.n_diags = 0 then Format.fprintf fmt "sanitizer: clean"
  else begin
    Format.fprintf fmt "@[<v>sanitizer: %d diagnostic%s" t.n_diags
      (if t.n_diags = 1 then "" else "s");
    List.iter (fun d -> Format.fprintf fmt "@   %a" pp_diag d) (diagnostics t);
    Format.fprintf fmt "@]"
  end

(* AscendC queue discipline (EnQue/DeQue over a fixed buffer pool),
   checked rather than simulated: kernels written against the queue
   API can assert they never enqueue without a free buffer or dequeue
   an empty queue. *)
module Queue = struct
  type nonrec q = {
    san : t;
    name : string;
    depth : int;
    block : int;
    mutable in_flight : int;
  }

  let make san ~block ~name ~depth =
    if depth < 1 then invalid_arg "Sanitizer.Queue.make: depth must be >= 1";
    { san; name; depth; block; in_flight = 0 }

  let in_flight q = q.in_flight

  let enqueue q =
    if q.in_flight >= q.depth then
      record_queue_violation q.san ~block:q.block ~queue:q.name
        ~message:
          (Printf.sprintf "enqueue with all %d buffers in flight (no free \
                           buffer)" q.depth)
    else q.in_flight <- q.in_flight + 1

  let dequeue q =
    if q.in_flight <= 0 then
      record_queue_violation q.san ~block:q.block ~queue:q.name
        ~message:"dequeue on an empty queue (double-dequeue)"
    else q.in_flight <- q.in_flight - 1
end
