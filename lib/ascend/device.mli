(** A simulated Ascend accelerator: global memory plus a grid of AI
    cores described by a {!Cost_model.t}.

    The device owns tensor allocation and the execution mode:

    - [Functional] (default): every engine op computes numerically
      faithful results in host memory {e and} charges costs. Used by
      tests, examples and moderate-size benchmark points.
    - [Cost_only]: tensors above are unbacked and ops only charge
      costs. Used to model inputs far larger than host memory allows;
      kernels with data-dependent control flow document the analytic
      expectation they substitute (see e.g. {!val:Device.mode}). *)

type mode = Functional | Cost_only

type t

val create :
  ?cost:Cost_model.t ->
  ?mode:mode ->
  ?fault:Fault.config ->
  ?sanitize:bool ->
  unit ->
  t
(** Defaults: {!Cost_model.default}, [Functional], no fault injection,
    no sanitizer. [fault] attaches a seeded {!Fault} model consulted by
    the MTEs on every GM<->UB [DataCopy]; [sanitize] enables the
    {!Sanitizer} (out-of-bounds, queue and missing-[SyncAll] hazard
    diagnostics). *)

val cost : t -> Cost_model.t
val mode : t -> mode
val functional : t -> bool

val fault : t -> Fault.t option
(** The device fault model, if fault injection is enabled. *)

val sanitizer : t -> Sanitizer.t option
(** The device sanitizer, if validation mode is enabled. *)

val num_cores : t -> int
val num_vec_cores : t -> int

val alloc : t -> Dtype.t -> int -> name:string -> Global_tensor.t
(** Allocate a global tensor (zero-initialised when backed). *)

val of_array : t -> Dtype.t -> name:string -> float array -> Global_tensor.t
(** Allocate and initialise; raises in cost-only mode. *)

val allocated_bytes : t -> int
(** Total global memory footprint allocated so far. *)

val pp : Format.formatter -> t -> unit
