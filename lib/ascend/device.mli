(** A simulated Ascend accelerator: global memory plus a grid of AI
    cores described by a {!Cost_model.t}.

    The device owns tensor allocation and the execution mode:

    - [Functional] (default): every engine op computes numerically
      faithful results in host memory {e and} charges costs. Used by
      tests, examples and moderate-size benchmark points.
    - [Cost_only]: tensors above are unbacked and ops only charge
      costs. Used to model inputs far larger than host memory allows;
      kernels with data-dependent control flow document the analytic
      expectation they substitute (see e.g. {!val:Device.mode}). *)

type mode = Functional | Cost_only

type t

val create :
  ?cost:Cost_model.t ->
  ?mode:mode ->
  ?fault:Fault.config ->
  ?sanitize:bool ->
  ?deadline_cycles:float ->
  ?domains:int ->
  unit ->
  t
(** Defaults: {!Cost_model.default}, [Functional], no fault injection,
    no sanitizer, no deadline. [fault] attaches a seeded {!Fault} model
    consulted by the MTEs on every GM<->UB [DataCopy]; its [kills] and
    [quarantine_after] fields seed the device {!Health} monitor.
    [sanitize] enables the {!Sanitizer} (out-of-bounds, queue and
    missing-[SyncAll] hazard diagnostics). [deadline_cycles] arms the
    launch watchdog: a launch whose cumulative compute critical path
    exceeds the budget raises {!Launch.Deadline_exceeded}. Raises
    [Invalid_argument] on a non-positive deadline.

    [domains] sets the host-side execution width: with [domains > 1] a
    launch dispatches a phase's blocks across that many OCaml domains
    (results stay bit- and Stats-identical to [domains = 1]; see
    {!Launch}); it defaults to the [ASCEND_SIM_DOMAINS] environment
    variable when set to a positive integer, else 1. Raises
    [Invalid_argument] when [domains < 1] is passed explicitly. *)

val cost : t -> Cost_model.t
val mode : t -> mode
val functional : t -> bool

val fault : t -> Fault.t option
(** The device fault model, if fault injection is enabled. *)

val sanitizer : t -> Sanitizer.t option
(** The device sanitizer, if validation mode is enabled. *)

val health : t -> Health.t
(** The per-core health monitor (always present; inert when no kills or
    quarantine are configured and no core has been marked dead). *)

val deadline_cycles : t -> float option
(** The watchdog budget, if armed. *)

val domains : t -> int
(** Host execution width used by {!Launch} (>= 1; 1 = sequential). *)

val trace : t -> Trace.t option
(** The armed event recorder, if any. When present, {!Block} records a
    span per issued instruction and {!Launch} folds each completed
    launch into it. *)

val arm_trace : t -> Trace.t
(** Attach (and return) a fresh {!Trace.t} using the device clock.
    Replaces any previously armed recorder. *)

val set_trace : t -> Trace.t option -> unit
(** Attach a custom recorder, or [None] to stop recording. *)

val num_cores : t -> int
val num_vec_cores : t -> int

val alloc : t -> Dtype.t -> int -> name:string -> Global_tensor.t
(** Allocate a global tensor (zero-initialised when backed). *)

val of_array : t -> Dtype.t -> name:string -> float array -> Global_tensor.t
(** Allocate and initialise; raises in cost-only mode. *)

val allocated_bytes : t -> int
(** Total global memory footprint allocated so far. *)

val pp : Format.formatter -> t -> unit
