type t = int

let zero = 0x0000
let neg_zero = 0x8000
let one = 0x3C00
let pos_infinity = 0x7C00
let neg_infinity = 0xFC00
let nan = 0x7E00
let max_value = 65504.0
let min_positive_normal = 0x1p-14
let min_positive_subnormal = 0x1p-24

let bits_sign h = (h lsr 15) land 1
let bits_exponent h = (h lsr 10) land 0x1F
let bits_mantissa h = h land 0x3FF
let is_nan h = bits_exponent h = 31 && bits_mantissa h <> 0
let is_infinite h = bits_exponent h = 31 && bits_mantissa h = 0
let is_finite h = bits_exponent h <> 31

(* Conversion goes through the IEEE binary32 representation: OCaml's
   [Int32.bits_of_float] first rounds the double to float32, and binary16
   rounding of a float32 value equals binary16 rounding of the original
   double except for values in a measure-zero double-rounding band that
   does not arise from fp16-representable operands; this matches how the
   hardware converts as well (fp32 accumulators quantized to fp16). *)

(* The encode side of the codec is the hottest write-path scalar (every
   fp16 store rounds through it), so the normal range uses the
   carry-propagating bias trick instead of the historical
   extract/compare/reassemble sequence: adding [0xFFF + odd] below the
   13 dropped mantissa bits implements round-to-nearest-even in one
   add, and a mantissa carry overflows into the exponent field — at the
   top of the range correctly producing the infinity encoding. The
   subnormal band keeps the exact integer-shift rounding (OCaml has no
   float32 arithmetic, so the denormal-magic float-add variant of the
   trick would double-round); it is off the hot path. The exhaustive
   65536-pattern roundtrip and the encode-equivalence suite in
   [test_fp16.ml] lock both paths to the historical rounding. *)
let[@inline] of_float f =
  let b = Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF in
  let sign = (b lsr 16) land 0x8000 in
  let a = b land 0x7FFFFFFF in
  if a >= 0x47800000 then
    (* >= 65536.0f after f32 rounding: infinity, or NaN (canonicalized
       to the quiet pattern, as the hardware converts). *)
    if a > 0x7F800000 then sign lor 0x7E00 else sign lor 0x7C00
  else if a >= 0x38800000 then
    (* Normal binary16 range [2^-14, 65536): rebias the exponent and
       round-to-nearest-even the 13 dropped bits in a single add.
       Finite f32 values in [65520, 65536) carry all the way into the
       exponent and yield 0x7C00 = infinity, matching RNE. *)
    let odd = (a lsr 13) land 1 in
    let a = a + 0xFFF + odd - (112 lsl 23) in
    sign lor (a lsr 13)
  else if a >= 0x33000000 then
    (* Subnormal range [2^-25, 2^-14): the implicit leading 1 joins the
       mantissa and the whole significand is shifted right, with exact
       integer round-to-nearest-even on the dropped bits. *)
    let m = a land 0x7FFFFF lor 0x800000 in
    let shift = 126 - (a lsr 23) in
    (* = -exp - 14 + 13 for exp = e - 127 in [-25, -15] *)
    let base = m lsr shift in
    let rest = m land ((1 lsl shift) - 1) in
    let half = 1 lsl (shift - 1) in
    if rest > half || (rest = half && base land 1 = 1) then sign lor (base + 1)
    else sign lor base
  else sign (* below 2^-25: underflow to (signed) zero *)

(* [to_float] is the simulator's hottest scalar: every fp16 store
   rounds through [of_float]/[to_float], so a 1M-element kernel decodes
   millions of half words. The historical implementation paid a
   [Float.pow] per normal value; this decodes once per bit pattern into
   a 65536-entry table at module initialisation (exactly 512 KiB of
   unboxed doubles) and makes [to_float] a single array read. [ldexp]
   by an exact power of two is bit-identical to the old
   [*. Float.pow 2.0 (float (e - 25))] path — both are exact scalings —
   which the exhaustive 65536-pattern test locks in. The eager (not
   lazy) build keeps the table domain-safe for parallel launches. *)
let decode h =
  let sign = if bits_sign h = 1 then -1.0 else 1.0 in
  let e = bits_exponent h in
  let m = bits_mantissa h in
  if e = 31 then if m = 0 then sign *. infinity else Float.nan
  else if e = 0 then sign *. float_of_int m *. 0x1p-24
  else sign *. Float.ldexp (float_of_int (m lor 0x400)) (e - 25)

let to_float_table = Array.init 65536 decode

(* Masking to 16 bits matches the historical field extractions, which
   only ever read bits 0-15. *)
let[@inline] to_float h = Array.unsafe_get to_float_table (h land 0xFFFF)

let[@inline] round f = to_float (of_float f)
let add a b = round (a +. b)
let sub a b = round (a -. b)
let mul a b = round (a *. b)
let equal_bits = Int.equal

let compare_value a b =
  let fa = to_float a and fb = to_float b in
  match Float.is_nan fa, Float.is_nan fb with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare fa fb

let pp fmt h = Format.fprintf fmt "%h(0x%04X)" (to_float h) h
