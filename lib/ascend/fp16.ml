type t = int

let zero = 0x0000
let neg_zero = 0x8000
let one = 0x3C00
let pos_infinity = 0x7C00
let neg_infinity = 0xFC00
let nan = 0x7E00
let max_value = 65504.0
let min_positive_normal = 0x1p-14
let min_positive_subnormal = 0x1p-24

let bits_sign h = (h lsr 15) land 1
let bits_exponent h = (h lsr 10) land 0x1F
let bits_mantissa h = h land 0x3FF
let is_nan h = bits_exponent h = 31 && bits_mantissa h <> 0
let is_infinite h = bits_exponent h = 31 && bits_mantissa h = 0
let is_finite h = bits_exponent h <> 31

(* Conversion goes through the IEEE binary32 representation: OCaml's
   [Int32.bits_of_float] first rounds the double to float32, and binary16
   rounding of a float32 value equals binary16 rounding of the original
   double except for values in a measure-zero double-rounding band that
   does not arise from fp16-representable operands; this matches how the
   hardware converts as well (fp32 accumulators quantized to fp16). *)

let of_float f =
  let b = Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF in
  let sign = (b lsr 16) land 0x8000 in
  let e = (b lsr 23) land 0xFF in
  let m = b land 0x7FFFFF in
  if e = 0xFF then
    if m = 0 then sign lor 0x7C00 (* infinity *)
    else sign lor 0x7E00 (* NaN: canonicalize *)
  else
    (* Unbiased exponent of the float32 value. *)
    let exp = e - 127 in
    if exp > 15 then sign lor 0x7C00 (* overflow to infinity *)
    else if exp >= -14 then begin
      (* Normal range of binary16: round 23-bit mantissa to 10 bits,
         round-to-nearest-even on the 13 dropped bits. *)
      let e16 = exp + 15 in
      let base = (e16 lsl 10) lor (m lsr 13) in
      let rest = m land 0x1FFF in
      let half = 0x1000 in
      if rest > half || (rest = half && base land 1 = 1) then
        (* Carry out of the mantissa propagates into the exponent and,
           at the top of the range, correctly yields infinity. *)
        sign lor (base + 1)
      else sign lor base
    end
    else if exp >= -25 then begin
      (* Subnormal range: the implicit leading 1 joins the mantissa and
         the whole significand is shifted right. *)
      let sig32 = m lor 0x800000 in
      let shift = -exp - 14 + 13 in
      let base = sig32 lsr shift in
      let rest = sig32 land ((1 lsl shift) - 1) in
      let half = 1 lsl (shift - 1) in
      if rest > half || (rest = half && base land 1 = 1) then
        sign lor (base + 1)
      else sign lor base
    end
    else sign (* underflow to (signed) zero *)

(* [to_float] is the simulator's hottest scalar: every fp16 store
   rounds through [of_float]/[to_float], so a 1M-element kernel decodes
   millions of half words. The historical implementation paid a
   [Float.pow] per normal value; this decodes once per bit pattern into
   a 65536-entry table at module initialisation (exactly 512 KiB of
   unboxed doubles) and makes [to_float] a single array read. [ldexp]
   by an exact power of two is bit-identical to the old
   [*. Float.pow 2.0 (float (e - 25))] path — both are exact scalings —
   which the exhaustive 65536-pattern test locks in. The eager (not
   lazy) build keeps the table domain-safe for parallel launches. *)
let decode h =
  let sign = if bits_sign h = 1 then -1.0 else 1.0 in
  let e = bits_exponent h in
  let m = bits_mantissa h in
  if e = 31 then if m = 0 then sign *. infinity else Float.nan
  else if e = 0 then sign *. float_of_int m *. 0x1p-24
  else sign *. Float.ldexp (float_of_int (m lor 0x400)) (e - 25)

let to_float_table = Array.init 65536 decode

(* Masking to 16 bits matches the historical field extractions, which
   only ever read bits 0-15. *)
let to_float h = Array.unsafe_get to_float_table (h land 0xFFFF)

let round f = to_float (of_float f)
let add a b = round (a +. b)
let sub a b = round (a -. b)
let mul a b = round (a *. b)
let equal_bits = Int.equal

let compare_value a b =
  let fa = to_float a and fb = to_float b in
  match Float.is_nan fa, Float.is_nan fb with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare fa fb

let pp fmt h = Format.fprintf fmt "%h(0x%04X)" (to_float h) h
