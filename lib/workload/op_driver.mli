(** Uniform registry-entry runner: execute any {!Scan.Op_registry}
    entry once on deterministic synthetic inputs sized to its
    capabilities (dtype-appropriate data, an I8 flags tensor for
    masked entries, [batch = 4] rows for batched ones, selection /
    sampling parameters for the operators that need them).

    This is the one place front-ends go to "just run" every registered
    op the same way: the CLI's [--trace-smoke], the trace-determinism
    test matrix and CI all share it, so an op added to the registry is
    automatically covered by each. *)

val run :
  ?n:int ->
  ?s:int ->
  ?domains:int ->
  ?traced:bool ->
  Scan.Op_registry.entry ->
  (Ascend.Stats.t * Ascend.Trace.t option, string) result
(** Run one entry on a fresh device. [n] (default 4096, min 16) is the
    total input length; [s] overrides the tile side; [domains] the
    host width ({!Ascend.Device.create}); [traced] (default true) arms
    an event recorder and returns it alongside the stats. [Error] is
    the registry's uniform validation/parameter failure. Raises
    [Invalid_argument] on [n < 16]. *)

val run_all :
  ?n:int ->
  ?s:int ->
  ?domains:int ->
  ?traced:bool ->
  unit ->
  (Scan.Op_registry.entry
  * (Ascend.Stats.t * Ascend.Trace.t option, string) result)
  list
(** {!run} over every registry entry, in registration order. The
    caller must have installed the operator entries first
    ([Ops.Ops_registry.install ()]) if it wants them included. *)
