open Ascend
module Reg = Scan.Op_registry

(* Deterministic inputs per dtype: strictly synthetic (no RNG), so
   every front-end sharing the driver — CLI smoke, trace tests, CI —
   sees the same tensors for the same (entry, n). Float data is kept
   positive so probability-consuming operators (top-p, weighted
   sampling) get a valid distribution from the same generator. *)
let input_data (entry : Reg.entry) n =
  let dt = match entry.Reg.caps.Reg.dtypes with d :: _ -> d | [] -> Dtype.F16 in
  let gen =
    match dt with
    | Dtype.I8 -> fun i -> float_of_int ((i mod 7) - 3)
    | Dtype.U16 -> fun i -> float_of_int ((i * 131) mod 251)
    | Dtype.I16 | Dtype.I32 -> fun i -> float_of_int (((i * 131) mod 251) - 125)
    | Dtype.F16 | Dtype.F32 ->
        fun i -> if i mod 37 = 0 then 2.0 else 0.25
  in
  (dt, Array.init n gen)

let flags_data n =
  Array.init n (fun i -> if (i * 7) mod 13 < 2 then 1.0 else 0.0)

let config_for (entry : Reg.entry) ~n ~s =
  let batched = entry.Reg.caps.Reg.batched in
  {
    Reg.default_config with
    Reg.s;
    batch = (if batched then Some 4 else None);
    len = (if batched then Some (n / 4) else None);
    k = Some 64;
    p = Some 0.9;
    theta = Some 0.4;
    seed = Some 3;
  }

let run ?(n = 4096) ?s ?domains ?(traced = true) (entry : Reg.entry) =
  if n < 16 then invalid_arg "Op_driver.run: n must be >= 16";
  let device = Device.create ?domains () in
  let trace = if traced then Some (Device.arm_trace device) else None in
  let dt, data = input_data entry n in
  let x = Device.of_array device dt ~name:"drv_x" data in
  let input =
    if entry.Reg.caps.Reg.masked then
      Reg.Masked
        {
          x;
          mask = Device.of_array device Dtype.I8 ~name:"drv_m" (flags_data n);
        }
    else Reg.Tensor x
  in
  match Reg.run entry (config_for entry ~n ~s) device input with
  | Ok (_out, stats) -> Ok (stats, trace)
  | Error e -> Error e

let run_all ?n ?s ?domains ?traced () =
  List.map
    (fun (entry : Reg.entry) ->
      (entry, run ?n ?s ?domains ?traced entry))
    (Reg.all ())
