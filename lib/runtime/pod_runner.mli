(** Checkpointed distributed batched scan over a {!Pod}: the
    pod-level sibling of {!Resilient.batched_scan}.

    Each checkpoint group's rows run as {!Scan.Dist_scan} across the
    pod at the next chaos boundary, are validated against the fp16
    host reference, and commit to the optional {!Checkpoint_store}.
    On top of the single-device runner's retry/validate/commit
    storyline this adds the pod failure modes:

    - {b device death} — a [kill device] chaos event, or a device
      whose last core dies, permanently retires the device; the
      failed group's retry re-runs the distributed scan, whose
      failover rule re-shards around the dead device, and because
      shard geometry is fixed by the pod's creation geometry the
      retried output is bit-identical;
    - {b partition} — a send that fails on the direct link and every
      relay counts as a failed group attempt (quarantine plus the
      brownout ladder take it from there);
    - {b pod brownout} — at {!Degrade_ctl.level}[Shrink_exchange] the
      runner halves the exchange group ([shards]), shedding link
      traffic before it sheds rows. *)

open Ascend

type report = {
  py : Global_tensor.t;  (** [batch * len] output on the primary *)
  pstats : Stats.t;
      (** combined per-row dist-scan stats plus charged backoff;
          [retries] counts group attempts that did not commit *)
  pcheckpoint : Checkpoint.t;
  pgroup_attempts : int;
  preplayed_rows : int;  (** row re-executions due to retries *)
  prestored_rows : int;  (** rows restored from the store, not run *)
  pshed_rows : int;
  pbackoff_seconds : float;
  plink_seconds : float;  (** link time charged during this run *)
  plink_sends : int;
  plink_retries : int;
  prerouted : int;
  pdevices_lost : int;  (** pod devices retired during this run *)
  pok : bool;  (** every row committed (none shed, pod survived) *)
}

val batched_scan :
  ?s:int ->
  ?max_attempts:int ->
  ?granularity:int ->
  ?schedule:Scan.Dist_scan.schedule ->
  ?store:Checkpoint_store.t ->
  ?ctl:Degrade_ctl.t ->
  ?chaos:Chaos.t ->
  Pod.t ->
  batch:int ->
  len:int ->
  input:float array ->
  report
(** Scan [batch] independent rows of [len] fp16 values across the
    pod. [schedule] defaults to the pod topology's schedule;
    [granularity] defaults to quarter-batch groups. With [store],
    already-committed groups are restored (never re-executed) and
    every newly validated group is durably committed. Raises
    [Ascend.Health.All_cores_dead] when the pod dies before anything
    ran or was restored; [Invalid_argument] on a non-functional pod
    or bad dimensions. *)

val pp_report : Format.formatter -> report -> unit
