open Ascend

type oracle = Checksum | Reference

let oracle_to_string = function
  | Checksum -> "checksum"
  | Reference -> "reference"

type 'a report = {
  value : 'a;
  stats : Stats.t;
  attempts : int;
  detections : int;
  degraded : bool;
  backoff_seconds : float;
  ok : bool;
}

let run ?(name = "resilient") ?(max_attempts = 3) ?(backoff_s = 0.0) ?fallback
    ?(on_event = fun _ -> ()) ~validate attempt =
  if max_attempts < 1 then
    invalid_arg "Resilient.run: max_attempts must be >= 1";
  if backoff_s < 0.0 then invalid_arg "Resilient.run: negative backoff";
  let stats_acc = ref [] in
  let detections = ref 0 in
  let attempts = ref 0 in
  let backoff = ref 0.0 in
  let last_exn = ref None in
  (* Exponential backoff before the k-th retry: backoff_s * 2^(k-1)
     simulated seconds, folded into the combined stats. *)
  let note_backoff () =
    if backoff_s > 0.0 then
      backoff := !backoff +. (backoff_s *. (2.0 ** float_of_int (!attempts - 1)))
  in
  (* A launch aborted by the watchdog or by running out of cores is a
     detection like any other: the structured exceptions below count
     against the attempt budget instead of escaping mid-loop. *)
  let guarded f =
    match f () with
    | v, st ->
        stats_acc := st :: !stats_acc;
        Some v
    | exception ((Launch.Deadline_exceeded _ | Health.All_cores_dead) as e) ->
        last_exn := Some e;
        None
  in
  let rec primary () =
    incr attempts;
    match guarded attempt with
    | Some v -> (
        match validate v with
        | Ok () -> (Some v, true)
        | Error _ ->
            incr detections;
            if !attempts < max_attempts then begin
              note_backoff ();
              on_event `Retry;
              primary ()
            end
            else (Some v, false))
    | None ->
        incr detections;
        if !attempts < max_attempts then begin
          note_backoff ();
          on_event `Retry;
          primary ()
        end
        else (None, false)
  in
  let v, ok = primary () in
  let v, ok, degraded =
    if ok then (v, ok, false)
    else
      match fallback with
      | None -> (v, false, false)
      | Some fb -> (
          incr attempts;
          on_event `Degrade;
          match guarded fb with
          | None -> (v, false, true)
          | Some fv ->
              let fok =
                match validate fv with
                | Ok () -> true
                | Error _ ->
                    incr detections;
                    false
              in
              (Some fv, fok, true))
  in
  let v =
    match (v, !last_exn) with
    | Some v, _ -> v
    | None, Some e -> raise e
    | None, None -> assert false
  in
  let stats = Stats.combine ~name (List.rev !stats_acc) in
  let stats =
    { stats with
      Stats.seconds = stats.Stats.seconds +. !backoff;
      retries = !attempts - 1;
      degraded = (if degraded then 1 else 0) }
  in
  { value = v; stats; attempts = !attempts; detections = !detections;
    degraded; backoff_seconds = !backoff; ok }

let trace_events device name =
  match Device.trace device with
  | None -> fun _ -> ()
  | Some tr -> (
      function
      | `Retry -> Trace.note tr Trace.Retry ~name:(name ^ " retry")
      | `Degrade -> Trace.note tr Trace.Degrade ~name:(name ^ " degraded"))

let launch ?name ?max_attempts ?fallback device ~blocks ~validate bodies =
  run ?name ?max_attempts ?fallback
    ~on_event:
      (trace_events device (Option.value ~default:"resilient launch" name))
    ~validate:(fun () -> validate ())
    (fun () -> ((), Launch.run_phases ?name device ~blocks bodies))

(* Cheap scan oracle: one host pass chaining the dtype rounding, with
   comparisons only at [checksum_samples] strided positions plus the
   last element. O(n) time, O(1) space, no expected-array allocation.
   Generic in the monoid: [combine]/[init] default to the sum scan. *)
let checksum_samples = 64

let scan_checksum ?(combine = ( +. )) ?(init = 0.0) ~round ~exclusive ~input
    output =
  let n = Array.length input in
  if Global_tensor.length output <> n then
    Error
      (Printf.sprintf "length mismatch: expected %d, got %d" n
         (Global_tensor.length output))
  else begin
    let step = max 1 (n / checksum_samples) in
    let acc = ref init in
    let bad = ref None in
    for i = 0 to n - 1 do
      let expect =
        if exclusive then begin
          let e = !acc in
          acc := round (combine !acc input.(i));
          e
        end
        else begin
          acc := round (combine !acc input.(i));
          !acc
        end
      in
      if (i mod step = 0 || i = n - 1) && !bad = None then begin
        let got = Global_tensor.get output i in
        if got <> expect then bad := Some (i, expect, got)
      end
    done;
    match !bad with
    | None -> Ok ()
    | Some (i, want, got) ->
        Error
          (Printf.sprintf "checksum mismatch at index %d: expected %g, got %g"
             i want got)
  end

let validate_scan ~oracle ~round ~exclusive ~algo ~input output =
  match oracle with
  | Checksum ->
      let combine, init =
        match algo.Scan.Op_registry.monoid with
        | Some (module Op : Scan.Scan_op.S) ->
            (Op.combine, Op.identity Dtype.F16)
        | None -> (( +. ), 0.0)
      in
      scan_checksum ~combine ~init ~round ~exclusive ~input output
  | Reference ->
      Scan.Scan_api.check_scan ~round ~exclusive ~algo ~dtype:Dtype.F16 ~input
        ~output ()

let scan ?(s = 128) ?max_attempts ?backoff_s ?(oracle = Checksum) ?fallback
    ?(exclusive = false) ~algo device ~input =
  if not (Device.functional device) then
    invalid_arg "Resilient.scan: requires a functional-mode device";
  let round = Fp16.round in
  let validate = validate_scan ~oracle ~round ~exclusive ~algo ~input in
  let attempt () =
    let x = Device.of_array device Dtype.F16 ~name:"resilient_x" input in
    Scan.Scan_api.run ~s ~exclusive ~algo device x
  in
  let fallback =
    (* Entries hold closures: compare by name, never structurally. *)
    match fallback with
    | Some fb when not (Scan.Op_registry.equal fb algo) ->
        Some
          (fun () ->
            let x =
              Device.of_array device Dtype.F16 ~name:"resilient_x_fb" input
            in
            Scan.Scan_api.run ~s ~exclusive ~algo:fb device x)
    | _ -> None
  in
  run
    ~name:("resilient_" ^ Scan.Scan_api.algo_to_string algo)
    ~on_event:
      (trace_events device
         ("resilient_" ^ Scan.Scan_api.algo_to_string algo))
    ?max_attempts ?backoff_s ?fallback ~validate attempt

type batched_schedule = U | Ul1

let batched_schedule_to_string = function U -> "u" | Ul1 -> "ul1"
let other_schedule = function U -> Ul1 | Ul1 -> U

type batched_report = {
  y : Global_tensor.t;
  bstats : Stats.t;
  checkpoint : Checkpoint.t;
  group_attempts : int;
  replayed_rows : int;
  restored_rows : int;
  shed_rows : int;
  backoff_seconds : float;
  bok : bool;
}

(* Validate rows [lo, hi): chain the fp16 host reference per row and
   compare every 64th element plus the row tail. *)
let validate_batched_rows ~input ~len y ~lo ~hi =
  let ok = ref true in
  for r = lo to hi - 1 do
    if !ok then begin
      let acc = ref 0.0 in
      for i = 0 to len - 1 do
        acc := Fp16.round (!acc +. input.((r * len) + i));
        if
          (i land 63 = 0 || i = len - 1)
          && Global_tensor.get y ((r * len) + i) <> !acc
        then ok := false
      done
    end
  done;
  !ok

let batched_scan ?(s = 128) ?(max_attempts = 3) ?(backoff_s = 0.0)
    ?granularity ?(schedule = U) ?store ?ctl ?chaos device ~batch ~len ~input =
  if not (Device.functional device) then
    invalid_arg "Resilient.batched_scan: requires a functional-mode device";
  if batch < 1 || len < 1 then
    invalid_arg "Resilient.batched_scan: batch and len must be positive";
  if Array.length input < batch * len then
    invalid_arg "Resilient.batched_scan: input shorter than batch * len";
  if max_attempts < 1 then
    invalid_arg "Resilient.batched_scan: max_attempts must be >= 1";
  let base_granularity =
    match granularity with
    | None -> max 1 ((batch + 3) / 4)
    | Some g when g >= 1 -> g
    | Some _ -> invalid_arg "Resilient.batched_scan: granularity must be >= 1"
  in
  let x = Device.of_array device Dtype.F16 ~name:"bscan_x" input in
  let y = Device.alloc device Dtype.F16 (batch * len) ~name:"bscan_y" in
  let ck = Checkpoint.create ~rows:batch in
  let note kind name =
    match Device.trace device with
    | Some tr -> Trace.note tr kind ~name
    | None -> ()
  in
  (* Resume: replay the store's validated groups into the checkpoint
     and the output tensor before touching the device — committed rows
     are never re-executed, and their bytes are exactly the ones the
     killed process validated. *)
  let restored_rows =
    match store with
    | None -> 0
    | Some st ->
        if Checkpoint_store.rows st <> batch || Checkpoint_store.len st <> len
        then
          invalid_arg
            (Printf.sprintf
               "Resilient.batched_scan: store is %d rows x %d, run is %d x %d"
               (Checkpoint_store.rows st) (Checkpoint_store.len st) batch len);
        List.iter
          (fun (lo, hi, values) ->
            for r = lo to hi - 1 do
              for i = 0 to len - 1 do
                Global_tensor.set y ((r * len) + i)
                  values.(((r - lo) * len) + i)
              done
            done;
            Checkpoint.mark ck ~lo ~hi;
            note Trace.Checkpoint
              (Printf.sprintf "rows %d-%d restored from store" lo hi))
          (Checkpoint_store.groups st);
        Checkpoint.done_count ck
  in
  let commits0 = Checkpoint.commits ck in
  let run_rows sched rows =
    match sched with
    | U -> Scan.Batched_scan.run_u ~s ~rows ~y device ~batch ~len x
    | Ul1 -> Scan.Batched_scan.run_ul1 ~s ~rows ~y device ~batch ~len x
  in
  let stats_acc = ref [] in
  let group_attempts = ref 0 in
  let replayed_rows = ref 0 in
  let backoff = ref 0.0 in
  let elapsed = ref 0.0 in
  let dead_device = ref false in
  let fail_count = Array.make batch 0 in
  let shed = Array.make batch false in
  let charge_backoff sec =
    if sec > 0.0 then begin
      backoff := !backoff +. sec;
      elapsed := !elapsed +. sec
    end
  in
  (* One group: retry until its rows validate or the attempt budget is
     spent. Already-checkpointed rows are never touched again — a
     mid-batch failure replays only the unfinished remainder. The
     budget, backoff and schedule come from the degradation controller
     when one is armed, else from the fixed legacy constants. *)
  let run_group (lo, hi) =
    let rec go attempt =
      (* Every group launch is a chaos boundary: due scenario events
         (kills, storms, crashes, expiries) land exactly here, so a
         storyline is a pure function of the attempt sequence. *)
      (match chaos with
      | Some ch ->
          Chaos.before_launch ch device ~launch_index:!group_attempts
            ~elapsed_s:!elapsed
      | None -> ());
      if !dead_device then false
      else begin
        (match ctl with
        | Some c ->
            charge_backoff (Degrade_ctl.before_attempt c ~retry:(attempt > 1))
        | None ->
            if attempt > 1 && backoff_s > 0.0 then
              charge_backoff
                (backoff_s *. (2.0 ** float_of_int (attempt - 2))));
        incr group_attempts;
        if attempt > 1 then begin
          replayed_rows := !replayed_rows + (hi - lo);
          note Trace.Retry
            (Printf.sprintf "bscan rows %d-%d attempt %d" lo hi attempt)
        end;
        let sched =
          match ctl with
          | Some c when Degrade_ctl.switch_schedule c ->
              other_schedule schedule
          | _ -> schedule
        in
        let budget =
          match ctl with
          | Some c -> Degrade_ctl.attempts_allowed c
          | None -> max_attempts
        in
        let outcome =
          match run_rows sched (lo, hi) with
          | _, st ->
              stats_acc := st :: !stats_acc;
              elapsed := !elapsed +. st.Stats.seconds;
              if validate_batched_rows ~input ~len y ~lo ~hi then `Ok
              else `Failed
          | exception Launch.Deadline_exceeded _ -> `Failed
          | exception Health.All_cores_dead ->
              dead_device := true;
              `Dead
        in
        match outcome with
        | `Ok ->
            (match ctl with
            | Some c -> Degrade_ctl.record c ~ok:true
            | None -> ());
            Checkpoint.mark ck ~lo ~hi;
            note Trace.Checkpoint
              (Printf.sprintf "rows %d-%d committed" lo hi);
            (match store with
            | Some st ->
                let values =
                  Array.init
                    ((hi - lo) * len)
                    (fun i -> Global_tensor.get y ((lo * len) + i))
                in
                Checkpoint_store.commit st ~lo ~hi ~values
            | None -> ());
            true
        | `Failed -> (
            (match ctl with
            | Some c -> Degrade_ctl.record c ~ok:false
            | None -> ());
            for r = lo to hi - 1 do
              fail_count.(r) <- fail_count.(r) + 1
            done;
            match ctl with
            | Some c when Degrade_ctl.shed c ~group_attempts:fail_count.(lo)
              ->
                (* Brownout floor: give the rows up so the rest of the
                   batch completes instead of burning the budget. *)
                for r = lo to hi - 1 do
                  shed.(r) <- true
                done;
                note Trace.Degrade (Printf.sprintf "rows %d-%d shed" lo hi);
                false
            | _ -> if attempt < budget then go (attempt + 1) else false)
        | `Dead -> false
      end
    in
    go 1
  in
  (* Pending groups at the controller's brownout granularity, with
     shed rows carved out (they stay un-done but are never retried). *)
  let pending_groups () =
    let g =
      match ctl with
      | Some c -> Degrade_ctl.granularity c ~base:base_granularity
      | None -> base_granularity
    in
    Checkpoint.pending ck ~granularity:g
    |> List.concat_map (fun (lo, hi) ->
           let acc = ref [] in
           let start = ref (-1) in
           for r = lo to hi - 1 do
             if shed.(r) then begin
               if !start >= 0 then begin
                 acc := (!start, r) :: !acc;
                 start := -1
               end
             end
             else if !start < 0 then start := r
           done;
           if !start >= 0 then acc := (!start, hi) :: !acc;
           List.rev !acc)
  in
  (* Keep sweeping while any group makes progress. With a controller
     armed, a few zero-progress sweeps are tolerated: an open breaker
     fails its probes by design and needs a sweep or two before the
     cooldown, the brownout ladder or a chaos expiry turns the tide. *)
  let grace = if ctl <> None then 3 else 0 in
  let rec drain stalled =
    match pending_groups () with
    | [] -> ()
    | groups ->
        let any_ok =
          List.fold_left
            (fun acc g -> if !dead_device then acc else run_group g || acc)
            false groups
        in
        if !dead_device then ()
        else if any_ok then drain 0
        else if stalled < grace then drain (stalled + 1)
  in
  drain 0;
  let bstats =
    match List.rev !stats_acc with
    | [] ->
        (* Nothing launched: legitimate when the store already covered
           every row; otherwise the device died before any launch. *)
        if restored_rows > 0 then
          Stats.empty
            ~name:("resilient_bscan_" ^ batched_schedule_to_string schedule)
        else raise Health.All_cores_dead
    | stats ->
        let st =
          Stats.combine
            ~name:("resilient_bscan_" ^ batched_schedule_to_string schedule)
            stats
        in
        { st with
          Stats.seconds = st.Stats.seconds +. !backoff;
          retries = !group_attempts - (Checkpoint.commits ck - commits0) }
  in
  {
    y;
    bstats;
    checkpoint = ck;
    group_attempts = !group_attempts;
    replayed_rows = !replayed_rows;
    restored_rows;
    shed_rows =
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 shed;
    backoff_seconds = !backoff;
    bok = Checkpoint.complete ck;
  }

let pp_batched_report fmt r =
  Format.fprintf fmt
    "@[<v>%s: %s, %a, %d group attempts, %d rows replayed%s%s%s@ %a@]"
    r.bstats.Stats.name
    (if r.bok then "ok"
     else if r.shed_rows > 0 then "DEGRADED (rows shed)"
     else "FAILED")
    Checkpoint.pp r.checkpoint r.group_attempts r.replayed_rows
    (if r.restored_rows > 0 then
       Printf.sprintf ", %d rows restored from store" r.restored_rows
     else "")
    (if r.shed_rows > 0 then Printf.sprintf ", %d rows shed" r.shed_rows
     else "")
    (if r.backoff_seconds > 0.0 then
       Printf.sprintf ", %.1f us backoff" (r.backoff_seconds *. 1e6)
     else "")
    Stats.pp_summary r.bstats

let pp_report pp_value fmt r =
  Format.fprintf fmt
    "@[<v>resilient %s: %s after %d attempt%s (%d detection%s%s)@ %a@]"
    r.stats.Stats.name
    (if r.ok then "ok" else "FAILED")
    r.attempts
    (if r.attempts = 1 then "" else "s")
    r.detections
    (if r.detections = 1 then "" else "s")
    (if r.degraded then ", degraded to fallback" else "")
    pp_value r.value
