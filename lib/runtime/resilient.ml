open Ascend

type oracle = Checksum | Reference

let oracle_to_string = function
  | Checksum -> "checksum"
  | Reference -> "reference"

type 'a report = {
  value : 'a;
  stats : Stats.t;
  attempts : int;
  detections : int;
  degraded : bool;
  backoff_seconds : float;
  ok : bool;
}

let run ?(name = "resilient") ?(max_attempts = 3) ?(backoff_s = 0.0) ?fallback
    ?(on_event = fun _ -> ()) ~validate attempt =
  if max_attempts < 1 then
    invalid_arg "Resilient.run: max_attempts must be >= 1";
  if backoff_s < 0.0 then invalid_arg "Resilient.run: negative backoff";
  let stats_acc = ref [] in
  let detections = ref 0 in
  let attempts = ref 0 in
  let backoff = ref 0.0 in
  let last_exn = ref None in
  (* Exponential backoff before the k-th retry: backoff_s * 2^(k-1)
     simulated seconds, folded into the combined stats. *)
  let note_backoff () =
    if backoff_s > 0.0 then
      backoff := !backoff +. (backoff_s *. (2.0 ** float_of_int (!attempts - 1)))
  in
  (* A launch aborted by the watchdog or by running out of cores is a
     detection like any other: the structured exceptions below count
     against the attempt budget instead of escaping mid-loop. *)
  let guarded f =
    match f () with
    | v, st ->
        stats_acc := st :: !stats_acc;
        Some v
    | exception ((Launch.Deadline_exceeded _ | Health.All_cores_dead) as e) ->
        last_exn := Some e;
        None
  in
  let rec primary () =
    incr attempts;
    match guarded attempt with
    | Some v -> (
        match validate v with
        | Ok () -> (Some v, true)
        | Error _ ->
            incr detections;
            if !attempts < max_attempts then begin
              note_backoff ();
              on_event `Retry;
              primary ()
            end
            else (Some v, false))
    | None ->
        incr detections;
        if !attempts < max_attempts then begin
          note_backoff ();
          on_event `Retry;
          primary ()
        end
        else (None, false)
  in
  let v, ok = primary () in
  let v, ok, degraded =
    if ok then (v, ok, false)
    else
      match fallback with
      | None -> (v, false, false)
      | Some fb -> (
          incr attempts;
          on_event `Degrade;
          match guarded fb with
          | None -> (v, false, true)
          | Some fv ->
              let fok =
                match validate fv with
                | Ok () -> true
                | Error _ ->
                    incr detections;
                    false
              in
              (Some fv, fok, true))
  in
  let v =
    match (v, !last_exn) with
    | Some v, _ -> v
    | None, Some e -> raise e
    | None, None -> assert false
  in
  let stats = Stats.combine ~name (List.rev !stats_acc) in
  let stats =
    { stats with
      Stats.seconds = stats.Stats.seconds +. !backoff;
      retries = !attempts - 1;
      degraded = (if degraded then 1 else 0) }
  in
  { value = v; stats; attempts = !attempts; detections = !detections;
    degraded; backoff_seconds = !backoff; ok }

let trace_events device name =
  match Device.trace device with
  | None -> fun _ -> ()
  | Some tr -> (
      function
      | `Retry -> Trace.note tr Trace.Retry ~name:(name ^ " retry")
      | `Degrade -> Trace.note tr Trace.Degrade ~name:(name ^ " degraded"))

let launch ?name ?max_attempts ?fallback device ~blocks ~validate bodies =
  run ?name ?max_attempts ?fallback
    ~on_event:
      (trace_events device (Option.value ~default:"resilient launch" name))
    ~validate:(fun () -> validate ())
    (fun () -> ((), Launch.run_phases ?name device ~blocks bodies))

(* Cheap scan oracle: one host pass chaining the dtype rounding, with
   comparisons only at [checksum_samples] strided positions plus the
   last element. O(n) time, O(1) space, no expected-array allocation.
   Generic in the monoid: [combine]/[init] default to the sum scan. *)
let checksum_samples = 64

let scan_checksum ?(combine = ( +. )) ?(init = 0.0) ~round ~exclusive ~input
    output =
  let n = Array.length input in
  if Global_tensor.length output <> n then
    Error
      (Printf.sprintf "length mismatch: expected %d, got %d" n
         (Global_tensor.length output))
  else begin
    let step = max 1 (n / checksum_samples) in
    let acc = ref init in
    let bad = ref None in
    for i = 0 to n - 1 do
      let expect =
        if exclusive then begin
          let e = !acc in
          acc := round (combine !acc input.(i));
          e
        end
        else begin
          acc := round (combine !acc input.(i));
          !acc
        end
      in
      if (i mod step = 0 || i = n - 1) && !bad = None then begin
        let got = Global_tensor.get output i in
        if got <> expect then bad := Some (i, expect, got)
      end
    done;
    match !bad with
    | None -> Ok ()
    | Some (i, want, got) ->
        Error
          (Printf.sprintf "checksum mismatch at index %d: expected %g, got %g"
             i want got)
  end

let validate_scan ~oracle ~round ~exclusive ~algo ~input output =
  match oracle with
  | Checksum ->
      let combine, init =
        match algo.Scan.Op_registry.monoid with
        | Some (module Op : Scan.Scan_op.S) ->
            (Op.combine, Op.identity Dtype.F16)
        | None -> (( +. ), 0.0)
      in
      scan_checksum ~combine ~init ~round ~exclusive ~input output
  | Reference ->
      Scan.Scan_api.check_scan ~round ~exclusive ~algo ~dtype:Dtype.F16 ~input
        ~output ()

let scan ?(s = 128) ?max_attempts ?backoff_s ?(oracle = Checksum) ?fallback
    ?(exclusive = false) ~algo device ~input =
  if not (Device.functional device) then
    invalid_arg "Resilient.scan: requires a functional-mode device";
  let round = Fp16.round in
  let validate = validate_scan ~oracle ~round ~exclusive ~algo ~input in
  let attempt () =
    let x = Device.of_array device Dtype.F16 ~name:"resilient_x" input in
    Scan.Scan_api.run ~s ~exclusive ~algo device x
  in
  let fallback =
    (* Entries hold closures: compare by name, never structurally. *)
    match fallback with
    | Some fb when not (Scan.Op_registry.equal fb algo) ->
        Some
          (fun () ->
            let x =
              Device.of_array device Dtype.F16 ~name:"resilient_x_fb" input
            in
            Scan.Scan_api.run ~s ~exclusive ~algo:fb device x)
    | _ -> None
  in
  run
    ~name:("resilient_" ^ Scan.Scan_api.algo_to_string algo)
    ~on_event:
      (trace_events device
         ("resilient_" ^ Scan.Scan_api.algo_to_string algo))
    ?max_attempts ?backoff_s ?fallback ~validate attempt

type batched_schedule = U | Ul1

let batched_schedule_to_string = function U -> "u" | Ul1 -> "ul1"

type batched_report = {
  y : Global_tensor.t;
  bstats : Stats.t;
  checkpoint : Checkpoint.t;
  group_attempts : int;
  replayed_rows : int;
  bbackoff_seconds : float;
  bok : bool;
}

(* Validate rows [lo, hi): chain the fp16 host reference per row and
   compare every 64th element plus the row tail. *)
let validate_batched_rows ~input ~len y ~lo ~hi =
  let ok = ref true in
  for r = lo to hi - 1 do
    if !ok then begin
      let acc = ref 0.0 in
      for i = 0 to len - 1 do
        acc := Fp16.round (!acc +. input.((r * len) + i));
        if
          (i land 63 = 0 || i = len - 1)
          && Global_tensor.get y ((r * len) + i) <> !acc
        then ok := false
      done
    end
  done;
  !ok

let batched_scan ?(s = 128) ?(max_attempts = 3) ?(backoff_s = 0.0)
    ?granularity ?(schedule = U) device ~batch ~len ~input =
  if not (Device.functional device) then
    invalid_arg "Resilient.batched_scan: requires a functional-mode device";
  if batch < 1 || len < 1 then
    invalid_arg "Resilient.batched_scan: batch and len must be positive";
  if Array.length input < batch * len then
    invalid_arg "Resilient.batched_scan: input shorter than batch * len";
  if max_attempts < 1 then
    invalid_arg "Resilient.batched_scan: max_attempts must be >= 1";
  let granularity =
    match granularity with
    | None -> max 1 ((batch + 3) / 4)
    | Some g when g >= 1 -> g
    | Some _ -> invalid_arg "Resilient.batched_scan: granularity must be >= 1"
  in
  let x = Device.of_array device Dtype.F16 ~name:"bscan_x" input in
  let y = Device.alloc device Dtype.F16 (batch * len) ~name:"bscan_y" in
  let ck = Checkpoint.create ~rows:batch in
  let run_rows rows =
    match schedule with
    | U -> Scan.Batched_scan.run_u ~s ~rows ~y device ~batch ~len x
    | Ul1 -> Scan.Batched_scan.run_ul1 ~s ~rows ~y device ~batch ~len x
  in
  let stats_acc = ref [] in
  let group_attempts = ref 0 in
  let replayed_rows = ref 0 in
  let backoff = ref 0.0 in
  let dead_device = ref false in
  (* One group: retry with exponential backoff until its rows validate
     or the attempt budget is spent. Already-checkpointed rows are
     never touched again — a mid-batch failure replays only the
     unfinished remainder. *)
  let run_group (lo, hi) =
    let rec go attempt =
      incr group_attempts;
      if attempt > 1 then begin
        replayed_rows := !replayed_rows + (hi - lo);
        (match Device.trace device with
        | Some tr ->
            Trace.note tr Trace.Retry
              ~name:(Printf.sprintf "bscan rows %d-%d attempt %d" lo hi attempt)
        | None -> ());
        if backoff_s > 0.0 then
          backoff :=
            !backoff +. (backoff_s *. (2.0 ** float_of_int (attempt - 2)))
      end;
      match run_rows (lo, hi) with
      | _, st ->
          stats_acc := st :: !stats_acc;
          if validate_batched_rows ~input ~len y ~lo ~hi then begin
            Checkpoint.mark ck ~lo ~hi;
            (match Device.trace device with
            | Some tr ->
                Trace.note tr Trace.Checkpoint
                  ~name:(Printf.sprintf "rows %d-%d committed" lo hi)
            | None -> ());
            true
          end
          else if attempt < max_attempts then go (attempt + 1)
          else false
      | exception Launch.Deadline_exceeded _ ->
          if attempt < max_attempts then go (attempt + 1) else false
      | exception Health.All_cores_dead ->
          dead_device := true;
          false
    in
    go 1
  in
  let rec drain () =
    match Checkpoint.pending ck ~granularity with
    | [] -> ()
    | groups ->
        let any_ok =
          List.fold_left
            (fun acc g -> if !dead_device then acc else run_group g || acc)
            false groups
        in
        (* Re-derive pending after this sweep; stop once no group makes
           progress (budget exhausted or no cores left). *)
        if any_ok && not !dead_device then drain ()
  in
  drain ();
  let bstats =
    match List.rev !stats_acc with
    | [] ->
        raise Health.All_cores_dead
    | stats ->
        let st =
          Stats.combine
            ~name:("resilient_bscan_" ^ batched_schedule_to_string schedule)
            stats
        in
        { st with
          Stats.seconds = st.Stats.seconds +. !backoff;
          retries = !group_attempts - Checkpoint.commits ck }
  in
  {
    y;
    bstats;
    checkpoint = ck;
    group_attempts = !group_attempts;
    replayed_rows = !replayed_rows;
    bbackoff_seconds = !backoff;
    bok = Checkpoint.complete ck;
  }

let pp_batched_report fmt r =
  Format.fprintf fmt
    "@[<v>%s: %s, %a, %d group attempts, %d rows replayed%s@ %a@]"
    r.bstats.Stats.name
    (if r.bok then "ok" else "FAILED")
    Checkpoint.pp r.checkpoint r.group_attempts r.replayed_rows
    (if r.bbackoff_seconds > 0.0 then
       Printf.sprintf ", %.1f us backoff" (r.bbackoff_seconds *. 1e6)
     else "")
    Stats.pp_summary r.bstats

let pp_report pp_value fmt r =
  Format.fprintf fmt
    "@[<v>resilient %s: %s after %d attempt%s (%d detection%s%s)@ %a@]"
    r.stats.Stats.name
    (if r.ok then "ok" else "FAILED")
    r.attempts
    (if r.attempts = 1 then "" else "s")
    r.detections
    (if r.detections = 1 then "" else "s")
    (if r.degraded then ", degraded to fallback" else "")
    pp_value r.value
