open Ascend

type oracle = Checksum | Reference

let oracle_to_string = function
  | Checksum -> "checksum"
  | Reference -> "reference"

type 'a report = {
  value : 'a;
  stats : Stats.t;
  attempts : int;
  detections : int;
  degraded : bool;
  ok : bool;
}

let run ?(name = "resilient") ?(max_attempts = 3) ?fallback ~validate attempt =
  if max_attempts < 1 then
    invalid_arg "Resilient.run: max_attempts must be >= 1";
  let stats_acc = ref [] in
  let detections = ref 0 in
  let attempts = ref 0 in
  let rec primary () =
    incr attempts;
    let v, st = attempt () in
    stats_acc := st :: !stats_acc;
    match validate v with
    | Ok () -> (v, true)
    | Error _ ->
        incr detections;
        if !attempts < max_attempts then primary () else (v, false)
  in
  let v, ok = primary () in
  let v, ok, degraded =
    if ok then (v, ok, false)
    else
      match fallback with
      | None -> (v, false, false)
      | Some fb ->
          let fv, fst_ = fb () in
          stats_acc := fst_ :: !stats_acc;
          incr attempts;
          let fok =
            match validate fv with
            | Ok () -> true
            | Error _ ->
                incr detections;
                false
          in
          (fv, fok, true)
  in
  let stats = Stats.combine ~name (List.rev !stats_acc) in
  let stats =
    { stats with
      Stats.retries = !attempts - 1;
      degraded = (if degraded then 1 else 0) }
  in
  { value = v; stats; attempts = !attempts; detections = !detections;
    degraded; ok }

let launch ?name ?max_attempts ?fallback device ~blocks ~validate bodies =
  run ?name ?max_attempts ?fallback
    ~validate:(fun () -> validate ())
    (fun () -> ((), Launch.run_phases ?name device ~blocks bodies))

(* Cheap scan oracle: one host pass chaining the dtype rounding, with
   comparisons only at [checksum_samples] strided positions plus the
   last element. O(n) time, O(1) space, no expected-array allocation. *)
let checksum_samples = 64

let scan_checksum ~round ~exclusive ~input output =
  let n = Array.length input in
  if Global_tensor.length output <> n then
    Error
      (Printf.sprintf "length mismatch: expected %d, got %d" n
         (Global_tensor.length output))
  else begin
    let step = max 1 (n / checksum_samples) in
    let acc = ref 0.0 in
    let bad = ref None in
    for i = 0 to n - 1 do
      let expect =
        if exclusive then begin
          let e = !acc in
          acc := round (!acc +. input.(i));
          e
        end
        else begin
          acc := round (!acc +. input.(i));
          !acc
        end
      in
      if (i mod step = 0 || i = n - 1) && !bad = None then begin
        let got = Global_tensor.get output i in
        if got <> expect then bad := Some (i, expect, got)
      end
    done;
    match !bad with
    | None -> Ok ()
    | Some (i, want, got) ->
        Error
          (Printf.sprintf "checksum mismatch at index %d: expected %g, got %g"
             i want got)
  end

let validate_scan ~oracle ~round ~exclusive ~input output =
  match oracle with
  | Checksum -> scan_checksum ~round ~exclusive ~input output
  | Reference ->
      Scan.Scan_api.check_against_reference ~round ~exclusive ~input ~output ()

let scan ?(s = 128) ?max_attempts ?(oracle = Checksum) ?fallback
    ?(exclusive = false) ~algo device ~input =
  if not (Device.functional device) then
    invalid_arg "Resilient.scan: requires a functional-mode device";
  let round = Fp16.round in
  let validate = validate_scan ~oracle ~round ~exclusive ~input in
  let attempt () =
    let x = Device.of_array device Dtype.F16 ~name:"resilient_x" input in
    Scan.Scan_api.run ~s ~exclusive ~algo device x
  in
  let fallback =
    match fallback with
    | Some fb when fb <> algo ->
        Some
          (fun () ->
            let x =
              Device.of_array device Dtype.F16 ~name:"resilient_x_fb" input
            in
            Scan.Scan_api.run ~s ~exclusive ~algo:fb device x)
    | _ -> None
  in
  run
    ~name:("resilient_" ^ Scan.Scan_api.algo_to_string algo)
    ?max_attempts ?fallback ~validate attempt

let pp_report pp_value fmt r =
  Format.fprintf fmt
    "@[<v>resilient %s: %s after %d attempt%s (%d detection%s%s)@ %a@]"
    r.stats.Stats.name
    (if r.ok then "ok" else "FAILED")
    r.attempts
    (if r.attempts = 1 then "" else "s")
    r.detections
    (if r.detections = 1 then "" else "s")
    (if r.degraded then ", degraded to fallback" else "")
    pp_value r.value
