(** Crash-consistent on-disk persistence for {!Checkpoint} state and
    committed row payloads.

    PR 2's row-granular checkpoints die with the host process: a job
    killed mid-batch restarts from row zero. This store makes each
    validated row group durable, so a resumed process continues
    exactly at the last committed group and the final output is
    bit-identical to an uninterrupted run.

    {2 On-disk format (little-endian)}

    {v
    header : "ASCKPT" | version u16 | rows u32 | len u32
           | meta_len u32 | meta bytes | crc32(header) u32
    record : lo u32 | hi u32 | payload_len u32
           | payload ((hi-lo)*len float64 bit patterns)
           | crc32(record) u32
    v}

    Payload elements are the {e exact} IEEE-754 bit patterns of the
    committed output rows ({!Ascend.Global_tensor.get} values), so a
    restore is bit-identical regardless of dtype.

    {2 Crash consistency}

    Every {!commit} serialises the complete store to [path ^ ".tmp"],
    flushes and fsyncs it, then atomically renames it over [path] — a
    [SIGKILL] at any instant leaves either the previous fully-valid
    snapshot or the new one, never a mix. Belt and braces, {!load}
    additionally verifies the header and every record CRC and treats a
    truncated or corrupt tail (a torn write under a filesystem without
    atomic rename, or bit rot) as the end of the log: the damaged
    record and everything after it are discarded and reported through
    [torn], rather than poisoning the resume. *)

type t

val create : path:string -> rows:int -> len:int -> ?meta:string -> unit -> t
(** A fresh store: writes an empty (header-only) snapshot at [path],
    replacing any existing file. [meta] is an opaque caller string
    (the CLI records the scenario file and seed) checked on resume.
    Raises [Invalid_argument] on non-positive dimensions, [Sys_error]
    when the path is unwritable. *)

type loaded = {
  l_rows : int;
  l_len : int;
  l_meta : string;
  l_groups : (int * int * float array) list;
      (** Validated commits in commit order: rows [lo, hi) and their
          [(hi-lo)*len] payload values. *)
  l_torn : bool;
      (** A truncated or CRC-corrupt tail was detected and dropped. *)
}

val load : path:string -> (loaded, string) result
(** Parse a snapshot. [Error] on a missing file, bad magic, or an
    unsupported version — a torn {e tail} is not an error (see
    {!type:loaded}[.l_torn]). A file with valid magic but a format
    version this build does not write is refused with an error naming
    both versions (a newer-build store must never be misparsed). *)

val version : int
(** The store format version this build reads and writes. *)

val reopen : path:string -> (t * loaded, string) result
(** {!load}, then return a store handle that continues committing to
    the same path with the surviving records preserved. *)

val commit : t -> lo:int -> hi:int -> values:float array -> unit
(** Durably append one validated row group (rows [lo <= r < hi],
    [values] their row-major payload of length [(hi-lo)*len]) with the
    atomic snapshot-rename protocol above. Raises [Invalid_argument]
    on a bad range or payload length. *)

val path : t -> string
val rows : t -> int
val len : t -> int
val meta : t -> string

val commits : t -> int
(** Records currently in the store (restored + appended). *)

val groups : t -> (int * int * float array) list
(** The store's records in commit order — what a resumed
    [Resilient.batched_scan] restores before touching the device. *)

val restore : loaded -> Checkpoint.t -> Ascend.Global_tensor.t -> int
(** Mark every stored group done in the checkpoint and write its
    payload back into the output tensor; returns the number of
    distinct rows restored. Raises [Invalid_argument] when the
    checkpoint rows or tensor length do not match the store header. *)

val crc32 : Bytes.t -> int
(** The store's CRC-32 (IEEE 802.3, reflected 0xEDB88320) over a
    buffer — exposed for tests. *)

val pp_loaded : Format.formatter -> loaded -> unit
