type t = {
  rows : int;
  done_rows : bool array;
  mutable commits : int;
}

let create ~rows =
  if rows < 1 then invalid_arg "Checkpoint.create: rows must be >= 1";
  { rows; done_rows = Array.make rows false; commits = 0 }

let rows t = t.rows

let is_done t row =
  if row < 0 || row >= t.rows then
    invalid_arg "Checkpoint.is_done: row out of range";
  t.done_rows.(row)

let mark t ~lo ~hi =
  if lo < 0 || hi > t.rows || lo >= hi then
    invalid_arg "Checkpoint.mark: bad row range";
  for r = lo to hi - 1 do
    t.done_rows.(r) <- true
  done;
  t.commits <- t.commits + 1

let commits t = t.commits

let done_count t =
  Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 t.done_rows

let complete t = done_count t = t.rows

let pending t ~granularity =
  if granularity < 1 then
    invalid_arg "Checkpoint.pending: granularity must be >= 1";
  let groups = ref [] in
  let run_start = ref (-1) in
  let close_run stop =
    if !run_start >= 0 then begin
      (* Split a maximal undone run into granularity-sized groups. *)
      let lo = ref !run_start in
      while !lo < stop do
        let hi = min stop (!lo + granularity) in
        groups := (!lo, hi) :: !groups;
        lo := hi
      done;
      run_start := -1
    end
  in
  for r = 0 to t.rows - 1 do
    if t.done_rows.(r) then close_run r
    else if !run_start < 0 then run_start := r
  done;
  close_run t.rows;
  List.rev !groups

let pp fmt t =
  Format.fprintf fmt "checkpoint: %d/%d rows done in %d commits" (done_count t)
    t.rows t.commits
