(** Row-granular checkpoint state for resumable batched kernels.

    A checkpoint tracks which rows of a batched operation have been
    computed {e and validated}. After a mid-batch failure (a core
    death, a watchdog abort, detected corruption) the runner asks for
    the {!pending} row groups and replays only those — finished rows
    are never re-executed. Used by [Resilient.batched_scan]. *)

type t

val create : rows:int -> t
(** Raises [Invalid_argument] when [rows < 1]. *)

val rows : t -> int

val mark : t -> lo:int -> hi:int -> unit
(** Commit rows [lo <= r < hi] as done (one commit). *)

val is_done : t -> int -> bool
val done_count : t -> int
val complete : t -> bool

val commits : t -> int
(** Number of {!mark} commits so far. *)

val pending : t -> granularity:int -> (int * int) list
(** Unfinished rows as [(lo, hi)] groups of at most [granularity]
    rows each, ascending. Raises [Invalid_argument] when
    [granularity < 1]. *)

val pp : Format.formatter -> t -> unit
