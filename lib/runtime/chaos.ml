open Ascend

exception Host_crash of string

type action =
  | Kill of { core : int }
  | Kill_device of { device : int }
  | Quarantine of { core : int; for_launches : int }
  | Link_down of { src : int; dst : int; for_launches : int }
  | Storm of {
      rate : float;
      kinds : Fault.kind list;
      scope : Fault.scope;
      stall_factor : float option;
      for_launches : int;
    }
  | Crash

type trigger = At_launch of int | At_time of float

type event = { trigger : trigger; action : action }

type scenario = {
  sc_name : string;
  sc_seed : int;
  sc_rate : float;
  sc_events : event list;
}

let scope_to_string = function
  | Fault.All_mtes -> "all"
  | Fault.Cube_mtes -> "cube"
  | Fault.Vec_mtes -> "vec"

let action_to_string = function
  | Kill { core } -> Printf.sprintf "kill core=%d" core
  | Kill_device { device } -> Printf.sprintf "kill device=%d" device
  | Quarantine { core; for_launches } ->
      Printf.sprintf "quarantine core=%d for=%d" core for_launches
  | Link_down { src; dst; for_launches } ->
      Printf.sprintf "link src=%d dst=%d for=%d" src dst for_launches
  | Storm { rate; kinds; scope; stall_factor; for_launches } ->
      Printf.sprintf "storm rate=%g kinds=%s scope=%s%s for=%d" rate
        (String.concat "," (List.map Fault.kind_to_string kinds))
        (scope_to_string scope)
        (match stall_factor with
        | Some f -> Printf.sprintf " factor=%g" f
        | None -> "")
        for_launches
  | Crash -> "crash"

let trigger_to_string = function
  | At_launch n -> Printf.sprintf "launch %d" n
  | At_time t -> Printf.sprintf "time %g" t

let pp_scenario fmt sc =
  Format.fprintf fmt "@[<v>scenario %S: seed %d, base rate %g, %d event%s"
    sc.sc_name sc.sc_seed sc.sc_rate
    (List.length sc.sc_events)
    (if List.length sc.sc_events = 1 then "" else "s");
  List.iter
    (fun e ->
      Format.fprintf fmt "@   at %s %s"
        (trigger_to_string e.trigger)
        (action_to_string e.action))
    sc.sc_events;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Parser *)

let fail_line ln msg = Error (Printf.sprintf "line %d: %s" ln msg)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.trim (strip_comment line))
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

(* key=value arguments of an event action. *)
let parse_kv ln tok =
  match String.index_opt tok '=' with
  | Some i when i > 0 && i < String.length tok - 1 ->
      Ok
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
  | _ -> fail_line ln (Printf.sprintf "expected key=value, got %S" tok)

let parse_int ln key s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> fail_line ln (Printf.sprintf "%s: expected an integer, got %S" key s)

let parse_float ln key s =
  match float_of_string_opt s with
  | Some v when not (Float.is_nan v) -> Ok v
  | _ -> fail_line ln (Printf.sprintf "%s: expected a number, got %S" key s)

let parse_kind ln s =
  match
    List.find_opt (fun k -> Fault.kind_to_string k = s) Fault.all_kinds
  with
  | Some k -> Ok k
  | None ->
      fail_line ln
        (Printf.sprintf "unknown fault kind %S (expected one of %s)" s
           (String.concat ", " (List.map Fault.kind_to_string Fault.all_kinds)))

let parse_scope ln s =
  match s with
  | "all" -> Ok Fault.All_mtes
  | "cube" -> Ok Fault.Cube_mtes
  | "vec" -> Ok Fault.Vec_mtes
  | _ -> fail_line ln (Printf.sprintf "scope: expected all|cube|vec, got %S" s)

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let rec parse_kvs ln = function
  | [] -> Ok []
  | tok :: rest ->
      let* kv = parse_kv ln tok in
      let* kvs = parse_kvs ln rest in
      Ok (kv :: kvs)

let find_kv kvs key = List.assoc_opt key kvs

let require_kv ln kvs key =
  match find_kv kvs key with
  | Some v -> Ok v
  | None -> fail_line ln (Printf.sprintf "missing required argument %s=..." key)

let reject_unknown ln kvs allowed =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) kvs with
  | Some (k, _) -> fail_line ln (Printf.sprintf "unknown argument %S" k)
  | None -> Ok ()

let parse_for ln kvs ~default =
  match find_kv kvs "for" with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> fail_line ln "missing required argument for=LAUNCHES")
  | Some s ->
      let* v = parse_int ln "for" s in
      if v < 1 then fail_line ln "for: window must be >= 1 launches" else Ok v

let parse_action ln = function
  | [] -> fail_line ln "missing action"
  | verb :: args -> (
      let* kvs = parse_kvs ln args in
      match verb with
      | "kill" -> (
          let* () = reject_unknown ln kvs [ "core"; "device" ] in
          match (find_kv kvs "core", find_kv kvs "device") with
          | Some _, Some _ ->
              fail_line ln "kill: give exactly one of core=C or device=D"
          | None, None ->
              fail_line ln "kill: missing required argument core=C or device=D"
          | Some core_s, None ->
              let* core = parse_int ln "core" core_s in
              if core < 0 then fail_line ln "core: must be >= 0"
              else Ok (Kill { core })
          | None, Some dev_s ->
              let* device = parse_int ln "device" dev_s in
              if device < 0 then fail_line ln "device: must be >= 0"
              else Ok (Kill_device { device }))
      | "quarantine" ->
          let* () = reject_unknown ln kvs [ "core"; "for" ] in
          let* core_s = require_kv ln kvs "core" in
          let* core = parse_int ln "core" core_s in
          let* for_launches = parse_for ln kvs ~default:None in
          if core < 0 then fail_line ln "core: must be >= 0"
          else Ok (Quarantine { core; for_launches })
      | "storm" ->
          let* () =
            reject_unknown ln kvs [ "rate"; "kinds"; "scope"; "factor"; "for" ]
          in
          let* rate_s = require_kv ln kvs "rate" in
          let* rate = parse_float ln "rate" rate_s in
          if rate < 0.0 || rate > 1.0 then
            fail_line ln "rate: must be a probability in [0,1]"
          else
            let* kinds =
              match find_kv kvs "kinds" with
              | None ->
                  Ok (List.filter Fault.corrupts_data Fault.all_kinds)
              | Some s ->
                  let rec go = function
                    | [] -> Ok []
                    | k :: rest ->
                        let* kind = parse_kind ln k in
                        let* kinds = go rest in
                        Ok (kind :: kinds)
                  in
                  let* ks = go (String.split_on_char ',' s) in
                  if ks = [] then fail_line ln "kinds: empty list" else Ok ks
            in
            let* scope =
              match find_kv kvs "scope" with
              | None -> Ok Fault.All_mtes
              | Some s -> parse_scope ln s
            in
            let* stall_factor =
              match find_kv kvs "factor" with
              | None -> Ok None
              | Some s ->
                  let* f = parse_float ln "factor" s in
                  if f < 1.0 then fail_line ln "factor: must be >= 1"
                  else Ok (Some f)
            in
            let* for_launches = parse_for ln kvs ~default:None in
            Ok (Storm { rate; kinds; scope; stall_factor; for_launches })
      | "stall" ->
          let* () = reject_unknown ln kvs [ "factor"; "for" ] in
          let* factor_s = require_kv ln kvs "factor" in
          let* factor = parse_float ln "factor" factor_s in
          if factor < 1.0 then fail_line ln "factor: must be >= 1"
          else
            let* for_launches = parse_for ln kvs ~default:None in
            Ok
              (Storm
                 {
                   rate = 1.0;
                   kinds = [ Fault.Engine_stall ];
                   scope = Fault.All_mtes;
                   stall_factor = Some factor;
                   for_launches;
                 })
      | "link" ->
          let* () = reject_unknown ln kvs [ "src"; "dst"; "for" ] in
          let* src_s = require_kv ln kvs "src" in
          let* src = parse_int ln "src" src_s in
          let* dst_s = require_kv ln kvs "dst" in
          let* dst = parse_int ln "dst" dst_s in
          if src < 0 || dst < 0 then
            fail_line ln "src/dst: device indices must be >= 0"
          else if src = dst then
            fail_line ln "link: src and dst must be different devices"
          else
            let* for_launches = parse_for ln kvs ~default:None in
            Ok (Link_down { src; dst; for_launches })
      | "crash" ->
          let* () = reject_unknown ln kvs [] in
          Ok Crash
      | _ ->
          fail_line ln
            (Printf.sprintf
               "unknown action %S (expected kill, quarantine, storm, stall, \
                link or crash)"
               verb))

let parse contents =
  let lines = String.split_on_char '\n' contents in
  let name = ref "" in
  let seed = ref 0 in
  let rate = ref 0.0 in
  let events = ref [] in
  let rec go ln = function
    | [] -> Ok ()
    | line :: rest -> (
        let* () =
          match tokens line with
          | [] -> Ok ()
          | [ "name"; n ] ->
              name := n;
              Ok ()
          | [ "seed"; s ] ->
              let* v = parse_int ln "seed" s in
              if v < 0 then fail_line ln "seed: must be >= 0"
              else begin
                seed := v;
                Ok ()
              end
          | [ "rate"; s ] ->
              let* v = parse_float ln "rate" s in
              if v < 0.0 || v > 1.0 then
                fail_line ln "rate: must be a probability in [0,1]"
              else begin
                rate := v;
                Ok ()
              end
          | "at" :: "launch" :: n :: action ->
              let* idx = parse_int ln "launch" n in
              if idx < 0 then fail_line ln "launch: index must be >= 0"
              else
                let* act = parse_action ln action in
                events := { trigger = At_launch idx; action = act } :: !events;
                Ok ()
          | "at" :: "time" :: t :: action ->
              let* time = parse_float ln "time" t in
              if time < 0.0 then fail_line ln "time: must be >= 0 seconds"
              else
                let* act = parse_action ln action in
                events := { trigger = At_time time; action = act } :: !events;
                Ok ()
          | tok :: _ ->
              fail_line ln
                (Printf.sprintf
                   "unknown directive %S (expected name, seed, rate, or 'at \
                    launch N ...' / 'at time T ...')"
                   tok)
        in
        go (ln + 1) rest)
  in
  match go 1 lines with
  | Error e ->
      Error
        (Printf.sprintf
           "invalid chaos scenario: %s" e)
  | Ok () ->
      Ok
        {
          sc_name = !name;
          sc_seed = !seed;
          sc_rate = !rate;
          sc_events = List.rev !events;
        }

let load path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error msg
  | contents -> (
      match parse contents with
      | Error e -> Error (Printf.sprintf "%s: %s" path e)
      | Ok sc ->
          let name = if sc.sc_name = "" then Filename.basename path else sc.sc_name in
          Ok { sc with sc_name = name })

let fault_config sc =
  Fault.config ~seed:sc.sc_seed ~rate:sc.sc_rate ()

(* ------------------------------------------------------------------ *)
(* Armed scheduler *)

type expiry = Restore_fault of Fault.config | Revive of int | Link_up of int * int

type t = {
  sc : scenario;
  skip_crashes : bool;
  on_crash : string -> unit;
  mutable pending : event list;  (* unfired, file order *)
  mutable expiries : (int * expiry) list;  (* (due launch index, action) *)
  mutable log : (int * string) list;  (* newest first *)
  mutable did_crash : bool;
}

let arm ?(skip_crashes = false) ?on_crash sc =
  {
    sc;
    skip_crashes;
    on_crash =
      (match on_crash with
      | Some f -> f
      | None -> fun msg -> raise (Host_crash msg));
    pending = sc.sc_events;
    expiries = [];
    log = [];
    did_crash = false;
  }

let scenario t = t.sc
let fired t = List.rev t.log
let crashed t = t.did_crash

let note t device ~launch_index msg =
  t.log <- (launch_index, msg) :: t.log;
  match Device.trace device with
  | Some tr -> Trace.note tr Trace.Info ~name:("chaos: " ^ msg)
  | None -> ()

let apply_expiry t device ?pod ~launch_index = function
  | Restore_fault cfg -> (
      match Device.fault device with
      | Some f ->
          Fault.set_config f cfg;
          note t device ~launch_index "storm expired, base policy restored"
      | None -> ())
  | Revive core ->
      Health.revive (Device.health device) ~core;
      note t device ~launch_index
        (Printf.sprintf "quarantine expired, core %d revived" core)
  | Link_up (src, dst) -> (
      match pod with
      | Some p when src < Pod.num_devices p && dst < Pod.num_devices p ->
          Pod.Link.set_down (Pod.link p ~src ~dst) false;
          note t device ~launch_index
            (Printf.sprintf "link outage expired, link %d->%d up" src dst)
      | _ ->
          note t device ~launch_index
            (Printf.sprintf "link restore skipped: no pod armed (%d->%d)" src
               dst))

let apply t device ?pod ~launch_index = function
  | Kill_device { device = d } -> (
      match pod with
      | None ->
          note t device ~launch_index
            (Printf.sprintf "kill device skipped: no pod armed (device %d)" d)
      | Some p ->
          if d >= Pod.num_devices p then
            note t device ~launch_index
              (Printf.sprintf "kill skipped: device %d out of range" d)
          else if not (Pod.alive p d) then
            note t device ~launch_index
              (Printf.sprintf "kill skipped: device %d already dead" d)
          else begin
            Pod.kill_device p d;
            note t device ~launch_index (Printf.sprintf "killed device %d" d)
          end)
  | Link_down { src; dst; for_launches } -> (
      match pod with
      | None ->
          note t device ~launch_index
            (Printf.sprintf "link outage skipped: no pod armed (%d->%d)" src
               dst)
      | Some p ->
          if src >= Pod.num_devices p || dst >= Pod.num_devices p then
            note t device ~launch_index
              (Printf.sprintf "link outage skipped: %d->%d out of range" src
                 dst)
          else begin
            Pod.Link.set_down (Pod.link p ~src ~dst) true;
            t.expiries <-
              t.expiries @ [ (launch_index + for_launches, Link_up (src, dst)) ];
            note t device ~launch_index
              (Printf.sprintf "link %d->%d down for %d launches" src dst
                 for_launches)
          end)
  | Kill { core } ->
      if core < Device.num_cores device then begin
        Health.mark_dead (Device.health device) ~core;
        note t device ~launch_index (Printf.sprintf "killed core %d" core)
      end
      else
        note t device ~launch_index
          (Printf.sprintf "kill skipped: core %d out of range" core)
  | Quarantine { core; for_launches } ->
      if core < Device.num_cores device then begin
        Health.mark_dead (Device.health device) ~core;
        t.expiries <-
          t.expiries @ [ (launch_index + for_launches, Revive core) ];
        note t device ~launch_index
          (Printf.sprintf "quarantined core %d for %d launches" core
             for_launches)
      end
      else
        note t device ~launch_index
          (Printf.sprintf "quarantine skipped: core %d out of range" core)
  | Storm { rate; kinds; scope; stall_factor; for_launches } -> (
      match Device.fault device with
      | None ->
          note t device ~launch_index
            "storm skipped: device has no fault model"
      | Some f ->
          let base = Fault.config_of f in
          (* Stack discipline: a storm landing inside a storm restores
             to the original base config, never the inner override. *)
          let restore_to =
            match
              List.find_opt
                (function _, Restore_fault _ -> true | _ -> false)
                t.expiries
            with
            | Some (_, Restore_fault cfg) -> cfg
            | _ -> base
          in
          t.expiries <-
            List.filter
              (function _, Restore_fault _ -> false | _ -> true)
              t.expiries
            @ [ (launch_index + for_launches, Restore_fault restore_to) ];
          Fault.set_config f
            (Fault.config ~seed:base.Fault.seed ~rate ~kinds ~scope
               ?stall_factor ~kills:base.Fault.kills
               ?quarantine_after:base.Fault.quarantine_after ());
          note t device ~launch_index
            (Printf.sprintf "storm: rate %g, %d kind%s, scope %s, %d launches"
               rate (List.length kinds)
               (if List.length kinds = 1 then "" else "s")
               (scope_to_string scope) for_launches))
  | Crash ->
      t.did_crash <- true;
      if t.skip_crashes then
        note t device ~launch_index "crash skipped (resume)"
      else begin
        note t device ~launch_index "host crash";
        t.on_crash
          (Printf.sprintf "chaos crash event at launch %d" launch_index)
      end

let due trigger ~launch_index ~elapsed_s =
  match trigger with
  | At_launch n -> launch_index >= n
  | At_time s -> elapsed_s >= s

let step t device ?pod ~launch_index ~elapsed_s () =
  let due_exp, rest =
    List.partition (fun (at, _) -> launch_index >= at) t.expiries
  in
  t.expiries <- rest;
  List.iter (fun (_, e) -> apply_expiry t device ?pod ~launch_index e) due_exp;
  let fire, keep =
    List.partition (fun e -> due e.trigger ~launch_index ~elapsed_s) t.pending
  in
  t.pending <- keep;
  List.iter (fun e -> apply t device ?pod ~launch_index e.action) fire

let before_launch t device ~launch_index ~elapsed_s =
  step t device ~launch_index ~elapsed_s ()

(* The pod-aware boundary: device-level actions land on the pod's
   primary, kill-device and link events on the pod itself. *)
let before_launch_pod t p ~launch_index ~elapsed_s =
  step t (Pod.primary p) ~pod:p ~launch_index ~elapsed_s ()
