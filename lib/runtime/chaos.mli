(** Deterministic, seeded chaos scheduling: failure storylines as
    replayable artifacts.

    PR 1–2 gave the simulator the {e mechanisms} of failure — seeded
    MTE faults, core kills, quarantine, watchdog deadlines. This
    module adds the {e storyline}: a declarative scenario compiled
    into {!Ascend.Fault} / {!Ascend.Health} injections applied at
    group-launch boundaries of a checkpointed batched run. The same
    scenario file and seed reproduce the exact same fault schedule,
    recovery decisions and metrics, so a failure mode seen once can be
    committed to the repo and replayed forever (the CI chaos suite).

    {2 Scenario DSL}

    Line-based; [#] starts a comment. Header directives, then events:

    {v
    name cube-storm          # optional scenario name
    seed 42                  # splitmix64 stream seed (default 0)
    rate 0.001               # base per-transfer fault rate (default 0)
    at launch 2 storm rate=0.8 kinds=bit_flip,dropped_copy scope=cube for=3
    at launch 4 kill core=3
    at launch 6 quarantine core=5 for=4
    at time 2.5e-3 stall factor=16 for=2
    at launch 9 crash
    v}

    Triggers are [launch N] (the N-th group launch, 0-based) or
    [time T] (simulated seconds elapsed reaches T); each event fires
    once. Actions:

    - [kill core=C] — permanent core death;
    - [kill device=D] — permanent {e whole-device} death (pod runs
      only; a single-device run notes and skips it);
    - [link src=D dst=E for=K] — take the directed pod link D->E down
      for K launches (pod runs only);
    - [quarantine core=C for=K] — {e transient} quarantine: the core
      is retired now and revived K launches later;
    - [storm rate=R \[kinds=..\] \[scope=all|cube|vec\] \[factor=F\]
      for=K] — raise the MTE fault-injection policy for K launches,
      then restore the base policy (the stream position is never
      reset, so storms do not perturb later draws);
    - [stall factor=F for=K] — a watchdog-stall storm: sugar for
      [storm rate=1 kinds=engine_stall] with the given latency factor;
    - [crash] — a simulated host crash (see {!arm}). *)

exception Host_crash of string
(** Raised (by default) when a [crash] event fires; the process dies
    mid-batch from the runner's point of view. The CLI's [chaos run]
    turns it into a real [SIGKILL] instead. *)

type action =
  | Kill of { core : int }
  | Kill_device of { device : int }
  | Quarantine of { core : int; for_launches : int }
  | Link_down of { src : int; dst : int; for_launches : int }
  | Storm of {
      rate : float;
      kinds : Ascend.Fault.kind list;
      scope : Ascend.Fault.scope;
      stall_factor : float option;
      for_launches : int;
    }
  | Crash

type trigger = At_launch of int | At_time of float

type event = { trigger : trigger; action : action }

type scenario = {
  sc_name : string;
  sc_seed : int;
  sc_rate : float;
  sc_events : event list;
}

val parse : string -> (scenario, string) result
(** Parse scenario file contents; [Error] carries the offending line
    number and a usage hint (the CLI maps it to exit 2, consistent
    with {!Ascend.Fault.parse_spec}). *)

val load : string -> (scenario, string) result
(** {!parse} the file at a path; unreadable files are [Error]s. *)

val action_to_string : action -> string
val pp_scenario : Format.formatter -> scenario -> unit

val fault_config : scenario -> Ascend.Fault.config
(** The base fault config a chaos device must be created with: the
    scenario seed and base rate, all kinds, all MTEs. Storms override
    it in place through {!Ascend.Fault.set_config}. *)

type t
(** An armed scheduler: the scenario plus firing state. Arm a fresh
    one per run — replays need a fresh cursor. *)

val arm : ?skip_crashes:bool -> ?on_crash:(string -> unit) -> scenario -> t
(** [skip_crashes] (used by resume: one storyline, one host crash)
    logs crash events instead of firing them. [on_crash] defaults to
    raising {!Host_crash}; the CLI substitutes a self-[SIGKILL]. *)

val scenario : t -> scenario

val before_launch :
  t -> Ascend.Device.t -> launch_index:int -> elapsed_s:float -> unit
(** Apply every due event, in file order: expire storm/quarantine
    windows first, then fire events whose launch index or simulated
    time has arrived. Mutates the device's fault model and health
    monitor; notes each application on the device trace. Called by
    [Resilient.batched_scan] before every group launch. Pod-scale
    actions (kill device, link) are noted and skipped — arm the
    scenario through {!before_launch_pod} to make them bite. *)

val before_launch_pod : t -> Pod.t -> launch_index:int -> elapsed_s:float -> unit
(** {!before_launch} against a pod: device-level actions apply to the
    pod's primary device, [kill device=D] kills pod device [D] (cores
    marked dead, shards re-placed by the distributed scan's failover
    rule) and [link src dst for] takes the directed link down until its
    window expires. Called by [Pod_runner.batched_scan] before every
    group launch. *)

val fired : t -> (int * string) list
(** [(launch_index, description)] log of applied events, oldest
    first — the scenario's replayable evidence. *)

val crashed : t -> bool
(** Whether a crash event fired (even when [skip_crashes] ate it). *)
