type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type level =
  | Normal
  | Shrink_groups
  | Switch_schedule
  | Shrink_exchange
  | Shed_rows

let level_to_string = function
  | Normal -> "normal"
  | Shrink_groups -> "shrink_groups"
  | Switch_schedule -> "switch_schedule"
  | Shrink_exchange -> "shrink_exchange"
  | Shed_rows -> "shed_rows"

let level_rank = function
  | Normal -> 0
  | Shrink_groups -> 1
  | Switch_schedule -> 2
  | Shrink_exchange -> 3
  | Shed_rows -> 4

let level_of_rank = function
  | 0 -> Normal
  | 1 -> Shrink_groups
  | 2 -> Switch_schedule
  | 3 -> Shrink_exchange
  | _ -> Shed_rows

type config = {
  window : int;
  min_samples : int;
  open_threshold : float;
  cooldown_s : float;
  max_cooldown_s : float;
  base_backoff_s : float;
  max_backoff_s : float;
  max_attempts : int;
  probe_attempts : int;
  shed_attempts : int;
  recover_after : int;
}

let default_config =
  {
    window = 8;
    min_samples = 4;
    open_threshold = 0.5;
    cooldown_s = 4e-6;
    max_cooldown_s = 1e-3;
    base_backoff_s = 1e-6;
    max_backoff_s = 1e-4;
    max_attempts = 3;
    probe_attempts = 1;
    shed_attempts = 6;
    recover_after = 4;
  }

let config ?(window = default_config.window)
    ?(min_samples = default_config.min_samples)
    ?(open_threshold = default_config.open_threshold)
    ?(cooldown_s = default_config.cooldown_s)
    ?(max_cooldown_s = default_config.max_cooldown_s)
    ?(base_backoff_s = default_config.base_backoff_s)
    ?(max_backoff_s = default_config.max_backoff_s)
    ?(max_attempts = default_config.max_attempts)
    ?(probe_attempts = default_config.probe_attempts)
    ?(shed_attempts = default_config.shed_attempts)
    ?(recover_after = default_config.recover_after) () =
  if window < 1 then invalid_arg "Degrade_ctl.config: window must be >= 1";
  if min_samples < 1 then
    invalid_arg "Degrade_ctl.config: min_samples must be >= 1";
  if
    open_threshold <= 0.0 || open_threshold > 1.0
    || Float.is_nan open_threshold
  then invalid_arg "Degrade_ctl.config: open_threshold must be in (0,1]";
  if cooldown_s < 0.0 || max_cooldown_s < 0.0 || base_backoff_s < 0.0
     || max_backoff_s < 0.0
  then invalid_arg "Degrade_ctl.config: negative time";
  if max_attempts < 1 || probe_attempts < 1 then
    invalid_arg "Degrade_ctl.config: attempt budgets must be >= 1";
  if shed_attempts < 1 then
    invalid_arg "Degrade_ctl.config: shed_attempts must be >= 1";
  if recover_after < 1 then
    invalid_arg "Degrade_ctl.config: recover_after must be >= 1";
  {
    window;
    min_samples;
    open_threshold;
    cooldown_s;
    max_cooldown_s;
    base_backoff_s;
    max_backoff_s;
    max_attempts;
    probe_attempts;
    shed_attempts;
    recover_after;
  }

type decision = {
  seq : int;
  d_state : state;
  d_level : level;
  d_cooldown_s : float;
  d_reason : string;
}

type t = {
  cfg : config;
  on_decision : decision -> unit;
  outcomes : bool array;  (* ring buffer, true = failure *)
  mutable filled : int;  (* samples in the window, <= cfg.window *)
  mutable cursor : int;
  mutable failures : int;  (* failures currently in the window *)
  mutable st : state;
  mutable lvl : level;
  mutable consec_failures : int;
  mutable consec_successes : int;
  mutable pending_cooldown : float;  (* charged by the next before_attempt *)
  mutable next_cooldown : float;  (* doubles on every re-open *)
  mutable n_opens : int;
  mutable log : decision list;  (* newest first *)
  mutable n_decisions : int;
}

let create ?(config = default_config) ?(on_decision = fun _ -> ()) () =
  {
    cfg = config;
    on_decision;
    outcomes = Array.make config.window false;
    filled = 0;
    cursor = 0;
    failures = 0;
    st = Closed;
    lvl = Normal;
    consec_failures = 0;
    consec_successes = 0;
    pending_cooldown = 0.0;
    next_cooldown = config.cooldown_s;
    n_opens = 0;
    log = [];
    n_decisions = 0;
  }

let state t = t.st
let level t = t.lvl
let opens t = t.n_opens
let decisions t = List.rev t.log

let decide t ?(cooldown = 0.0) reason =
  let d =
    {
      seq = t.n_decisions;
      d_state = t.st;
      d_level = t.lvl;
      d_cooldown_s = cooldown;
      d_reason = reason;
    }
  in
  t.log <- d :: t.log;
  t.n_decisions <- t.n_decisions + 1;
  t.on_decision d

let push_outcome t ~failed =
  if t.filled = t.cfg.window then begin
    (* Evict the oldest sample before overwriting its slot. *)
    if t.outcomes.(t.cursor) then t.failures <- t.failures - 1
  end
  else t.filled <- t.filled + 1;
  t.outcomes.(t.cursor) <- failed;
  if failed then t.failures <- t.failures + 1;
  t.cursor <- (t.cursor + 1) mod t.cfg.window

let clear_window t =
  Array.fill t.outcomes 0 t.cfg.window false;
  t.filled <- 0;
  t.cursor <- 0;
  t.failures <- 0

let failure_rate t =
  if t.filled = 0 then 0.0 else float_of_int t.failures /. float_of_int t.filled

let escalate t =
  t.lvl <- level_of_rank (min (level_rank Shed_rows) (level_rank t.lvl + 1))

let open_breaker t reason =
  t.st <- Open;
  t.n_opens <- t.n_opens + 1;
  t.pending_cooldown <- t.next_cooldown;
  let cooldown = t.pending_cooldown in
  t.next_cooldown <- Float.min t.cfg.max_cooldown_s (t.next_cooldown *. 2.0);
  escalate t;
  decide t ~cooldown reason

let record t ~ok =
  push_outcome t ~failed:(not ok);
  if ok then begin
    t.consec_failures <- 0;
    t.consec_successes <- t.consec_successes + 1;
    (match t.st with
    | Half_open ->
        t.st <- Closed;
        clear_window t;
        decide t "half-open probe validated";
        t.consec_successes <- 1
    | Closed | Open -> ());
    if
      t.consec_successes >= t.cfg.recover_after
      && level_rank t.lvl > 0 && t.st = Closed
    then begin
      t.lvl <- level_of_rank (level_rank t.lvl - 1);
      t.consec_successes <- 0;
      decide t
        (Printf.sprintf "%d consecutive successes, de-escalating"
           t.cfg.recover_after)
    end
  end
  else begin
    t.consec_successes <- 0;
    t.consec_failures <- t.consec_failures + 1;
    match t.st with
    | Half_open -> open_breaker t "half-open probe failed"
    | Closed ->
        let rate = failure_rate t in
        if t.filled >= t.cfg.min_samples && rate >= t.cfg.open_threshold then
          open_breaker t
            (Printf.sprintf "failure rate %.2f >= %.2f over %d" rate
               t.cfg.open_threshold t.filled)
    | Open -> ()
  end

let before_attempt t ~retry =
  let cooldown =
    match t.st with
    | Open ->
        let c = t.pending_cooldown in
        t.pending_cooldown <- 0.0;
        t.st <- Half_open;
        decide t "cooldown elapsed, half-open probe";
        c
    | Closed | Half_open -> 0.0
  in
  let backoff =
    if retry && t.cfg.base_backoff_s > 0.0 then
      Float.min t.cfg.max_backoff_s
        (t.cfg.base_backoff_s
        *. (2.0 ** float_of_int (max 0 (t.consec_failures - 1))))
    else 0.0
  in
  cooldown +. backoff

let attempts_allowed t =
  match t.st with
  | Closed -> t.cfg.max_attempts
  | Open | Half_open -> t.cfg.probe_attempts

let granularity t ~base =
  match t.lvl with
  | Normal -> base
  | Shrink_groups -> max 1 (base / 2)
  | Switch_schedule | Shrink_exchange | Shed_rows -> max 1 (base / 4)

let switch_schedule t = level_rank t.lvl >= level_rank Switch_schedule

let shrink_exchange t = level_rank t.lvl >= level_rank Shrink_exchange

let shed t ~group_attempts =
  t.lvl = Shed_rows && group_attempts >= t.cfg.shed_attempts

let pp_decision fmt d =
  Format.fprintf fmt "#%d %s/%s%s: %s" d.seq
    (state_to_string d.d_state)
    (level_to_string d.d_level)
    (if d.d_cooldown_s > 0.0 then
       Printf.sprintf " (%.1f us cooldown)" (d.d_cooldown_s *. 1e6)
     else "")
    d.d_reason

let pp fmt t =
  Format.fprintf fmt
    "@[<v>degrade controller: %s/%s, %d opening%s, %d decision%s"
    (state_to_string t.st) (level_to_string t.lvl) t.n_opens
    (if t.n_opens = 1 then "" else "s")
    t.n_decisions
    (if t.n_decisions = 1 then "" else "s");
  List.iter (fun d -> Format.fprintf fmt "@   %a" pp_decision d) (decisions t);
  Format.fprintf fmt "@]"
