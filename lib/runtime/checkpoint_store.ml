let magic = "ASCKPT"
let version = 1

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 bytes =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = 0 to Bytes.length bytes - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get bytes i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* Little-endian integer helpers over Buffer. *)
let add_u16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let add_u32 buf v =
  add_u16 buf (v land 0xFFFF);
  add_u16 buf ((v lsr 16) land 0xFFFF)

let add_f64 buf v =
  let bits = Int64.bits_of_float v in
  for b = 0 to 7 do
    Buffer.add_char buf
      (Char.chr
         (Int64.to_int (Int64.shift_right_logical bits (b * 8)) land 0xFF))
  done

type t = {
  st_path : string;
  st_rows : int;
  st_len : int;
  st_meta : string;
  mutable records : (int * int * float array) list;  (* newest first *)
  mutable n_records : int;
}

let path t = t.st_path
let rows t = t.st_rows
let len t = t.st_len
let meta t = t.st_meta
let commits t = t.n_records
let groups t = List.rev t.records

let header_bytes t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf magic;
  add_u16 buf version;
  add_u32 buf t.st_rows;
  add_u32 buf t.st_len;
  add_u32 buf (String.length t.st_meta);
  Buffer.add_string buf t.st_meta;
  let body = Buffer.to_bytes buf in
  add_u32 buf (crc32 body);
  Buffer.to_bytes buf

let record_bytes (lo, hi, values) =
  let buf = Buffer.create (16 + (Array.length values * 8)) in
  add_u32 buf lo;
  add_u32 buf hi;
  add_u32 buf (Array.length values * 8);
  Array.iter (fun v -> add_f64 buf v) values;
  let body = Buffer.to_bytes buf in
  add_u32 buf (crc32 body);
  Buffer.to_bytes buf

(* Snapshot-rename commit protocol: the full store lands in [.tmp],
   reaches the platters (fsync), and replaces [path] in one atomic
   rename. A SIGKILL anywhere leaves a complete old or new snapshot. *)
let persist t =
  let tmp = t.st_path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_bytes oc (header_bytes t);
  List.iter (fun r -> output_bytes oc (record_bytes r)) (List.rev t.records);
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp t.st_path

let create ~path ~rows ~len ?(meta = "") () =
  if rows < 1 || len < 1 then
    invalid_arg "Checkpoint_store.create: rows and len must be >= 1";
  let t =
    { st_path = path; st_rows = rows; st_len = len; st_meta = meta;
      records = []; n_records = 0 }
  in
  persist t;
  t

let commit t ~lo ~hi ~values =
  if lo < 0 || hi > t.st_rows || lo >= hi then
    invalid_arg "Checkpoint_store.commit: bad row range";
  if Array.length values <> (hi - lo) * t.st_len then
    invalid_arg
      (Printf.sprintf
         "Checkpoint_store.commit: payload length %d, expected %d rows * %d"
         (Array.length values) (hi - lo) t.st_len);
  t.records <- (lo, hi, Array.copy values) :: t.records;
  t.n_records <- t.n_records + 1;
  persist t

type loaded = {
  l_rows : int;
  l_len : int;
  l_meta : string;
  l_groups : (int * int * float array) list;
  l_torn : bool;
}

(* Cursor-based parser over the raw file contents; every read is
   bounds-checked so a truncated tail surfaces as [None], never an
   exception. *)
let read_u16 s pos =
  if !pos + 2 > String.length s then None
  else begin
    let v = Char.code s.[!pos] lor (Char.code s.[!pos + 1] lsl 8) in
    pos := !pos + 2;
    Some v
  end

let read_u32 s pos =
  match read_u16 s pos with
  | None -> None
  | Some lo -> (
      match read_u16 s pos with
      | None -> None
      | Some hi -> Some (lo lor (hi lsl 16)))

let read_str s pos n =
  if n < 0 || !pos + n > String.length s then None
  else begin
    let v = String.sub s !pos n in
    pos := !pos + n;
    Some v
  end

let read_f64 s pos =
  if !pos + 8 > String.length s then None
  else begin
    let bits = ref 0L in
    for b = 7 downto 0 do
      bits :=
        Int64.logor
          (Int64.shift_left !bits 8)
          (Int64.of_int (Char.code s.[!pos + b]))
    done;
    pos := !pos + 8;
    Some (Int64.float_of_bits !bits)
  end

let ( let* ) o f = match o with None -> None | Some v -> f v

let parse_record ~rows ~len s pos =
  let start = !pos in
  let* lo = read_u32 s pos in
  let* hi = read_u32 s pos in
  let* payload_len = read_u32 s pos in
  if lo >= hi || hi > rows || payload_len <> (hi - lo) * len * 8 then None
  else begin
    let values = Array.make ((hi - lo) * len) 0.0 in
    let ok = ref true in
    for i = 0 to Array.length values - 1 do
      if !ok then
        match read_f64 s pos with
        | Some v -> values.(i) <- v
        | None -> ok := false
    done;
    if not !ok then None
    else
      let body_end = !pos in
      let* crc = read_u32 s pos in
      if crc <> crc32 (Bytes.of_string (String.sub s start (body_end - start)))
      then None
      else Some (lo, hi, values)
  end

let load ~path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error msg -> Error msg
  | s -> (
      let pos = ref 0 in
      (* The version check gets its own failure path: a valid-magic
         file written by a newer build must be refused with a message
         naming the versions, not misreported as corruption. *)
      let header =
        let* m = read_str s pos (String.length magic) in
        if m <> magic then None
        else
          let* v = read_u16 s pos in
          if v <> version then Some (Error v)
          else
            let* rows = read_u32 s pos in
            let* len = read_u32 s pos in
            let* meta_len = read_u32 s pos in
            let* meta = read_str s pos meta_len in
            let body_end = !pos in
            let* crc = read_u32 s pos in
            if crc <> crc32 (Bytes.of_string (String.sub s 0 body_end)) then
              None
            else Some (Ok (rows, len, meta))
      in
      match header with
      | None ->
          Error
            (Printf.sprintf "%s: not a checkpoint store (bad or torn header)"
               path)
      | Some (Error v) when v > version ->
          Error
            (Printf.sprintf
               "%s: checkpoint store format version %d is newer than this \
                build supports (up to %d); refusing to guess at its layout"
               path v version)
      | Some (Error v) ->
          Error
            (Printf.sprintf
               "%s: unsupported checkpoint store format version %d (this \
                build reads version %d)"
               path v version)
      | Some (Ok (rows, len, meta)) ->
          let groups = ref [] in
          let torn = ref false in
          let stop = ref false in
          while (not !stop) && !pos < String.length s do
            match parse_record ~rows ~len s pos with
            | Some g -> groups := g :: !groups
            | None ->
                (* Torn or corrupt record: drop it and the rest. *)
                torn := true;
                stop := true
          done;
          Ok
            {
              l_rows = rows;
              l_len = len;
              l_meta = meta;
              l_groups = List.rev !groups;
              l_torn = !torn;
            })

let reopen ~path =
  match load ~path with
  | Error e -> Error e
  | Ok l ->
      let t =
        {
          st_path = path;
          st_rows = l.l_rows;
          st_len = l.l_len;
          st_meta = l.l_meta;
          records = List.rev l.l_groups;
          n_records = List.length l.l_groups;
        }
      in
      (* A torn tail was dropped at parse time; re-persisting writes a
         clean snapshot so the damage never resurfaces. *)
      if l.l_torn then persist t;
      Ok (t, l)

let restore l ck y =
  if Checkpoint.rows ck <> l.l_rows then
    invalid_arg
      (Printf.sprintf "Checkpoint_store.restore: checkpoint has %d rows, store %d"
         (Checkpoint.rows ck) l.l_rows);
  if Ascend.Global_tensor.length y <> l.l_rows * l.l_len then
    invalid_arg
      (Printf.sprintf "Checkpoint_store.restore: tensor length %d, store %d*%d"
         (Ascend.Global_tensor.length y) l.l_rows l.l_len);
  let seen = Array.make l.l_rows false in
  let restored = ref 0 in
  List.iter
    (fun (lo, hi, values) ->
      for r = lo to hi - 1 do
        if not seen.(r) then begin
          seen.(r) <- true;
          incr restored
        end;
        for i = 0 to l.l_len - 1 do
          Ascend.Global_tensor.set y ((r * l.l_len) + i)
            values.(((r - lo) * l.l_len) + i)
        done
      done;
      Checkpoint.mark ck ~lo ~hi)
    l.l_groups;
  !restored

let pp_loaded fmt l =
  let rows_covered =
    let seen = Array.make l.l_rows false in
    List.iter
      (fun (lo, hi, _) ->
        for r = lo to hi - 1 do
          seen.(r) <- true
        done)
      l.l_groups;
    Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 seen
  in
  Format.fprintf fmt
    "checkpoint store: %d/%d rows durable in %d commit%s (len %d)%s%s"
    rows_covered l.l_rows
    (List.length l.l_groups)
    (if List.length l.l_groups = 1 then "" else "s")
    l.l_len
    (if l.l_meta = "" then "" else Printf.sprintf ", meta %S" l.l_meta)
    (if l.l_torn then ", TORN TAIL DROPPED" else "")
