(** Self-checking resilient kernel execution.

    A production accelerator fleet cannot assume fault-free hardware:
    silent data corruption on the wire, ECC events and stalled engines
    all happen at scale. This module wraps kernel launches with a
    validate / retry / degrade loop:

    + run the kernel and validate its output against a cheap oracle;
    + on detected corruption, retry with a bounded attempt budget
      (transient faults — e.g. an injected bit flip — are drawn
      independently per attempt, so retries usually recover);
    + when corruption persists past the budget, gracefully degrade to a
      fallback implementation (e.g. from the cube [tcu]/[scanu] path to
      the vector-only CumSum kernel, surviving a faulty cube MTE).

    Retry and degradation counts, and the time overhead of every extra
    attempt, are folded into the returned {!Ascend.Stats.t}
    ([retries]/[degraded] fields; seconds accumulate over attempts).
    With no faults detected the first attempt is the only one, and the
    stats are identical to a plain {!Ascend.Launch} run. *)

type oracle =
  | Checksum
      (** One host pass chaining the dtype rounding, compared at 64
          strided sample positions plus the last element. O(1) space. *)
  | Reference  (** Full element-wise comparison against {!Scan.Reference}. *)

val oracle_to_string : oracle -> string

type 'a report = {
  value : 'a;  (** Result of the last attempt (the validated one if [ok]). *)
  stats : Ascend.Stats.t;
      (** Combined over all attempts; [retries] and [degraded] set. *)
  attempts : int;  (** Total kernel executions, including the fallback. *)
  detections : int;  (** Validation failures observed. *)
  degraded : bool;  (** Whether the fallback path produced [value]. *)
  ok : bool;  (** Whether the final output validated. *)
}

val run :
  ?name:string ->
  ?max_attempts:int ->
  ?fallback:(unit -> 'a * Ascend.Stats.t) ->
  validate:('a -> (unit, string) result) ->
  (unit -> 'a * Ascend.Stats.t) ->
  'a report
(** [run ~validate attempt] executes [attempt] until it validates, at
    most [max_attempts] (default 3) times, then tries [fallback] once
    if provided. Raises [Invalid_argument] when [max_attempts < 1]. *)

val launch :
  ?name:string ->
  ?max_attempts:int ->
  ?fallback:(unit -> unit * Ascend.Stats.t) ->
  Ascend.Device.t ->
  blocks:int ->
  validate:(unit -> (unit, string) result) ->
  (Ascend.Block.t -> unit) list ->
  unit report
(** Resilient {!Ascend.Launch.run_phases}: re-runs the same phase list
    on validation failure. The caller's [validate] inspects the output
    tensors it closed over. *)

val scan :
  ?s:int ->
  ?max_attempts:int ->
  ?oracle:oracle ->
  ?fallback:Scan.Scan_api.algo ->
  ?exclusive:bool ->
  algo:Scan.Scan_api.algo ->
  Ascend.Device.t ->
  input:float array ->
  Ascend.Global_tensor.t report
(** Resilient scan: each attempt loads [input] into a fresh f16 global
    tensor and dispatches {!Scan.Scan_api.run}; outputs validate
    against the selected oracle (default [Checksum]). A [fallback]
    algorithm (typically [Vec_only]) is tried once when all primary
    attempts fail. Requires a functional-mode device. *)

val pp_report :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a report -> unit
