(** Self-checking resilient kernel execution.

    A production accelerator fleet cannot assume fault-free hardware:
    silent data corruption on the wire, ECC events and stalled engines
    all happen at scale. This module wraps kernel launches with a
    validate / retry / degrade loop:

    + run the kernel and validate its output against a cheap oracle;
    + on detected corruption, retry with a bounded attempt budget
      (transient faults — e.g. an injected bit flip — are drawn
      independently per attempt, so retries usually recover);
    + when corruption persists past the budget, gracefully degrade to a
      fallback implementation (e.g. from the cube [tcu]/[scanu] path to
      the vector-only CumSum kernel, surviving a faulty cube MTE).

    Retry and degradation counts, and the time overhead of every extra
    attempt, are folded into the returned {!Ascend.Stats.t}
    ([retries]/[degraded] fields; seconds accumulate over attempts).
    With no faults detected the first attempt is the only one, and the
    stats are identical to a plain {!Ascend.Launch} run. *)

type oracle =
  | Checksum
      (** One host pass chaining the dtype rounding, compared at 64
          strided sample positions plus the last element. O(1) space. *)
  | Reference  (** Full element-wise comparison against {!Scan.Reference}. *)

val oracle_to_string : oracle -> string

type 'a report = {
  value : 'a;  (** Result of the last attempt (the validated one if [ok]). *)
  stats : Ascend.Stats.t;
      (** Combined over all attempts; [retries] and [degraded] set and
          backoff folded into [seconds]. *)
  attempts : int;  (** Total kernel executions, including the fallback. *)
  detections : int;  (** Validation failures observed. *)
  degraded : bool;  (** Whether the fallback path produced [value]. *)
  backoff_seconds : float;  (** Simulated retry backoff folded in. *)
  ok : bool;  (** Whether the final output validated. *)
}

val run :
  ?name:string ->
  ?max_attempts:int ->
  ?backoff_s:float ->
  ?fallback:(unit -> 'a * Ascend.Stats.t) ->
  ?on_event:([ `Retry | `Degrade ] -> unit) ->
  validate:('a -> (unit, string) result) ->
  (unit -> 'a * Ascend.Stats.t) ->
  'a report
(** [run ~validate attempt] executes [attempt] until it validates, at
    most [max_attempts] (default 3) times, then tries [fallback] once
    if provided. A structured degraded-mode abort escaping an attempt
    ({!Ascend.Launch.Deadline_exceeded} or
    {!Ascend.Health.All_cores_dead}) counts as a detection against the
    same budget; the last one is re-raised only when {e no} attempt
    ever produced a value. [backoff_s] arms exponential retry backoff:
    the k-th retry adds [backoff_s * 2^(k-1)] simulated seconds to the
    combined stats. [on_event] fires just before each re-execution
    ([`Retry]) and before the fallback runs ([`Degrade]) — the
    tracing hook ({!Ascend.Trace.note}); it defaults to a no-op.
    Raises [Invalid_argument] when [max_attempts < 1] or
    [backoff_s < 0]. *)

val launch :
  ?name:string ->
  ?max_attempts:int ->
  ?fallback:(unit -> unit * Ascend.Stats.t) ->
  Ascend.Device.t ->
  blocks:int ->
  validate:(unit -> (unit, string) result) ->
  (Ascend.Block.t -> unit) list ->
  unit report
(** Resilient {!Ascend.Launch.run_phases}: re-runs the same phase list
    on validation failure. The caller's [validate] inspects the output
    tensors it closed over. *)

val scan :
  ?s:int ->
  ?max_attempts:int ->
  ?backoff_s:float ->
  ?oracle:oracle ->
  ?fallback:Scan.Scan_api.algo ->
  ?exclusive:bool ->
  algo:Scan.Scan_api.algo ->
  Ascend.Device.t ->
  input:float array ->
  Ascend.Global_tensor.t report
(** Resilient scan: each attempt loads [input] into a fresh f16 global
    tensor and dispatches {!Scan.Scan_api.run}; outputs validate
    against the selected oracle (default [Checksum]). A [fallback]
    algorithm (typically [Vec_only]) is tried once when all primary
    attempts fail. Requires a functional-mode device. *)

val pp_report :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a report -> unit

(** {2 Checkpointed batched scans}

    The batched-scan runner partitions the batch into row groups and
    commits each validated group to a {!Checkpoint}. A mid-batch
    failure — a core death absorbed by the launch replay, a watchdog
    abort, or corruption caught by the per-row oracle — replays only
    the unfinished rows with retry/backoff; checkpointed rows are never
    re-executed. *)

type batched_schedule = U  (** {!Scan.Batched_scan.run_u}. *) | Ul1

val batched_schedule_to_string : batched_schedule -> string

type batched_report = {
  y : Ascend.Global_tensor.t;  (** The [(batch * len)] output tensor. *)
  bstats : Ascend.Stats.t;
      (** Combined over all group launches, backoff folded into
          [seconds] and failed group attempts into [retries]. *)
  checkpoint : Checkpoint.t;
  group_attempts : int;  (** Group launches, including replays. *)
  replayed_rows : int;  (** Rows re-executed after a failed attempt. *)
  restored_rows : int;
      (** Rows recovered from the {!Checkpoint_store} before any
          launch — 0 on a fresh (non-resumed) run. *)
  shed_rows : int;
      (** Rows abandoned by the degradation controller's brownout
          floor; they stay pending in [checkpoint]. *)
  backoff_seconds : float;  (** Simulated retry backoff folded in. *)
  bok : bool;  (** Whether every row checkpointed. *)
}

val batched_scan :
  ?s:int ->
  ?max_attempts:int ->
  ?backoff_s:float ->
  ?granularity:int ->
  ?schedule:batched_schedule ->
  ?store:Checkpoint_store.t ->
  ?ctl:Degrade_ctl.t ->
  ?chaos:Chaos.t ->
  Ascend.Device.t ->
  batch:int ->
  len:int ->
  input:float array ->
  batched_report
(** Checkpointed batched scan of [input] (row-major [(batch, len)]).
    [granularity] caps the rows per group (default: quarter batches).
    Each group retries up to [max_attempts] times with [backoff_s]
    exponential backoff. Requires a functional-mode device; raises
    {!Ascend.Health.All_cores_dead} only when the device dies before
    any group completes a launch and nothing was restored.

    [store] makes the run crash-consistent: the store's surviving
    groups are replayed into the output {e before} any launch (their
    rows are never re-executed), and every newly validated group is
    durably committed, so a process killed at any instant resumes to a
    bit-identical final output. The store's [rows]/[len] must match
    [batch]/[len] ([Invalid_argument] otherwise).

    [ctl] replaces the fixed [max_attempts]/[backoff_s] policy with
    the adaptive {!Degrade_ctl} (circuit breaker + brownout ladder):
    attempt budgets, backoff, group granularity, schedule switching
    and row shedding all come from the controller, which observes
    every attempt outcome.

    [chaos] arms a {!Chaos} scheduler: its due events are applied at
    every group-launch boundary, making an injected storyline a
    deterministic function of the attempt sequence. *)

val pp_batched_report : Format.formatter -> batched_report -> unit
