(* Checkpointed distributed batched scan: Resilient.batched_scan's
   storyline — restore, group launches at chaos boundaries, validate,
   commit — with the group work running as Dist_scan rows across a pod
   instead of a batched kernel on one device.

   Failure semantics layered on top of the single-device runner:

   - a whole-device death (chaos [kill device=D], or every core of a
     device dying under fire) permanently removes the device from the
     pod; the next attempt of the failed group re-runs Dist_scan, whose
     failover rule re-shards the dead device's slots over the
     survivors — output bytes are placement-invariant, so the retried
     group validates against the same reference;
   - a link failure that survives retry/reroute raises Partitioned,
     which counts as a plain failed attempt (the quarantine and the
     brownout ladder decide what happens next);
   - the Shrink_exchange brownout rung halves the exchange group
     (shard slots), cutting link traffic before any rows are shed. *)

open Ascend

type report = {
  py : Global_tensor.t;
  pstats : Stats.t;
  pcheckpoint : Checkpoint.t;
  pgroup_attempts : int;
  preplayed_rows : int;
  prestored_rows : int;
  pshed_rows : int;
  pbackoff_seconds : float;
  plink_seconds : float;
  plink_sends : int;
  plink_retries : int;
  prerouted : int;
  pdevices_lost : int;
  pok : bool;
}

(* Same row oracle as the single-device runner: chain the fp16 host
   reference per row, compare every 64th element plus the tail. *)
let validate_rows ~input ~len y ~lo ~hi =
  let ok = ref true in
  for r = lo to hi - 1 do
    if !ok then begin
      let acc = ref 0.0 in
      for i = 0 to len - 1 do
        acc := Fp16.round (!acc +. input.((r * len) + i));
        if
          (i land 63 = 0 || i = len - 1)
          && Global_tensor.get y ((r * len) + i) <> !acc
        then ok := false
      done
    end
  done;
  !ok

let batched_scan ?(s = 128) ?(max_attempts = 3) ?granularity ?schedule ?store
    ?ctl ?chaos pod ~batch ~len ~input =
  let primary = Pod.primary pod in
  if not (Device.functional primary) then
    invalid_arg "Pod_runner.batched_scan: requires a functional-mode pod";
  if batch < 1 || len < 1 then
    invalid_arg "Pod_runner.batched_scan: batch and len must be positive";
  if Array.length input < batch * len then
    invalid_arg "Pod_runner.batched_scan: input shorter than batch * len";
  if max_attempts < 1 then
    invalid_arg "Pod_runner.batched_scan: max_attempts must be >= 1";
  let base_granularity =
    match granularity with
    | None -> max 1 ((batch + 3) / 4)
    | Some g when g >= 1 -> g
    | Some _ -> invalid_arg "Pod_runner.batched_scan: granularity must be >= 1"
  in
  let base_schedule =
    match schedule with
    | Some sch -> sch
    | None -> Scan.Dist_scan.default_schedule pod
  in
  let other = function
    | Scan.Dist_scan.Ring -> Scan.Dist_scan.All_gather
    | Scan.Dist_scan.All_gather -> Scan.Dist_scan.Ring
  in
  let y = Device.alloc primary Dtype.F16 (batch * len) ~name:"pod_bscan_y" in
  let ck = Checkpoint.create ~rows:batch in
  let note kind name =
    match Device.trace primary with
    | Some tr -> Trace.note tr kind ~name
    | None -> ()
  in
  let restored_rows =
    match store with
    | None -> 0
    | Some st ->
        if Checkpoint_store.rows st <> batch || Checkpoint_store.len st <> len
        then
          invalid_arg
            (Printf.sprintf
               "Pod_runner.batched_scan: store is %d rows x %d, run is %d x %d"
               (Checkpoint_store.rows st) (Checkpoint_store.len st) batch len);
        List.iter
          (fun (lo, hi, values) ->
            for r = lo to hi - 1 do
              for i = 0 to len - 1 do
                Global_tensor.set y ((r * len) + i)
                  values.(((r - lo) * len) + i)
              done
            done;
            Checkpoint.mark ck ~lo ~hi;
            note Trace.Checkpoint
              (Printf.sprintf "rows %d-%d restored from store" lo hi))
          (Checkpoint_store.groups st);
        Checkpoint.done_count ck
  in
  let commits0 = Checkpoint.commits ck in
  let stats_acc = ref [] in
  let group_attempts = ref 0 in
  let replayed_rows = ref 0 in
  let backoff = ref 0.0 in
  let elapsed = ref 0.0 in
  let link_s0 = Pod.link_seconds pod in
  let sends0 = Pod.link_sends pod in
  let retries0 = Pod.link_retries pod in
  let reroutes0 = Pod.reroutes pod in
  let devices_lost = ref 0 in
  let dead_pod = ref false in
  let fail_count = Array.make batch 0 in
  let shed = Array.make batch false in
  let charge_backoff sec =
    if sec > 0.0 then begin
      backoff := !backoff +. sec;
      elapsed := !elapsed +. sec
    end
  in
  (* A device whose last core died under fire is a pod-level death:
     retire it so the next attempt re-shards around it. *)
  let retire_dead_devices () =
    for d = 0 to Pod.num_devices pod - 1 do
      if Pod.alive pod d && Health.num_alive (Device.health (Pod.device pod d)) = 0
      then begin
        Pod.kill_device pod d;
        incr devices_lost;
        note Trace.Death (Printf.sprintf "pod device %d lost" d)
      end
    done;
    if Pod.alive_count pod = 0 then dead_pod := true
  in
  let run_group (lo, hi) =
    let rec go attempt =
      (match chaos with
      | Some ch ->
          let before = Pod.alive_count pod in
          Chaos.before_launch_pod ch pod ~launch_index:!group_attempts
            ~elapsed_s:!elapsed;
          let lost = before - Pod.alive_count pod in
          if lost > 0 then devices_lost := !devices_lost + lost;
          if Pod.alive_count pod = 0 then dead_pod := true
      | None -> ());
      if !dead_pod then false
      else begin
        (match ctl with
        | Some c ->
            charge_backoff (Degrade_ctl.before_attempt c ~retry:(attempt > 1))
        | None -> ());
        incr group_attempts;
        if attempt > 1 then begin
          replayed_rows := !replayed_rows + (hi - lo);
          note Trace.Retry
            (Printf.sprintf "pod rows %d-%d attempt %d" lo hi attempt)
        end;
        let sched =
          match ctl with
          | Some c when Degrade_ctl.switch_schedule c -> other base_schedule
          | _ -> base_schedule
        in
        let shards =
          match ctl with
          | Some c when Degrade_ctl.shrink_exchange c ->
              max 1 (Pod.alive_count pod / 2)
          | _ -> Pod.num_devices pod
        in
        let budget =
          match ctl with
          | Some c -> Degrade_ctl.attempts_allowed c
          | None -> max_attempts
        in
        let outcome =
          match
            for r = lo to hi - 1 do
              let row =
                Array.init len (fun i -> input.((r * len) + i))
              in
              let x =
                Device.of_array primary Dtype.F16
                  ~name:(Printf.sprintf "pod_row%d" r)
                  row
              in
              let rr = Scan.Dist_scan.run ~s ~schedule:sched ~shards pod x in
              for i = 0 to len - 1 do
                Global_tensor.set y ((r * len) + i)
                  (Global_tensor.get rr.Scan.Dist_scan.y i)
              done;
              stats_acc := rr.Scan.Dist_scan.stats :: !stats_acc;
              elapsed :=
                !elapsed
                +. rr.Scan.Dist_scan.stats.Stats.seconds
                +. rr.Scan.Dist_scan.link_seconds
            done
          with
          | () ->
              if validate_rows ~input ~len y ~lo ~hi then `Ok else `Failed
          | exception Launch.Deadline_exceeded _ -> `Failed
          | exception Pod.Partitioned _ ->
              note Trace.Fault
                (Printf.sprintf "pod rows %d-%d: exchange partitioned" lo hi);
              `Failed
          | exception Health.All_cores_dead ->
              retire_dead_devices ();
              if !dead_pod then `Dead else `Failed
        in
        match outcome with
        | `Ok ->
            (match ctl with
            | Some c -> Degrade_ctl.record c ~ok:true
            | None -> ());
            Checkpoint.mark ck ~lo ~hi;
            note Trace.Checkpoint (Printf.sprintf "rows %d-%d committed" lo hi);
            (match store with
            | Some st ->
                let values =
                  Array.init
                    ((hi - lo) * len)
                    (fun i -> Global_tensor.get y ((lo * len) + i))
                in
                Checkpoint_store.commit st ~lo ~hi ~values
            | None -> ());
            true
        | `Failed -> (
            (match ctl with
            | Some c -> Degrade_ctl.record c ~ok:false
            | None -> ());
            for r = lo to hi - 1 do
              fail_count.(r) <- fail_count.(r) + 1
            done;
            match ctl with
            | Some c when Degrade_ctl.shed c ~group_attempts:fail_count.(lo) ->
                for r = lo to hi - 1 do
                  shed.(r) <- true
                done;
                note Trace.Degrade (Printf.sprintf "rows %d-%d shed" lo hi);
                false
            | _ -> if attempt < budget then go (attempt + 1) else false)
        | `Dead -> false
      end
    in
    go 1
  in
  let pending_groups () =
    let g =
      match ctl with
      | Some c -> Degrade_ctl.granularity c ~base:base_granularity
      | None -> base_granularity
    in
    Checkpoint.pending ck ~granularity:g
    |> List.concat_map (fun (lo, hi) ->
           let acc = ref [] in
           let start = ref (-1) in
           for r = lo to hi - 1 do
             if shed.(r) then begin
               if !start >= 0 then begin
                 acc := (!start, r) :: !acc;
                 start := -1
               end
             end
             else if !start < 0 then start := r
           done;
           if !start >= 0 then acc := (!start, hi) :: !acc;
           List.rev !acc)
  in
  let grace = if ctl <> None then 3 else 0 in
  let rec drain stalled =
    match pending_groups () with
    | [] -> ()
    | groups ->
        let any_ok =
          List.fold_left
            (fun acc g -> if !dead_pod then acc else run_group g || acc)
            false groups
        in
        if !dead_pod then ()
        else if any_ok then drain 0
        else if stalled < grace then drain (stalled + 1)
  in
  drain 0;
  let pstats =
    match List.rev !stats_acc with
    | [] ->
        if restored_rows > 0 then Stats.empty ~name:"pod_bscan"
        else raise Health.All_cores_dead
    | stats ->
        let st = Stats.combine ~name:"pod_bscan" stats in
        {
          st with
          Stats.seconds = st.Stats.seconds +. !backoff;
          retries = !group_attempts - (Checkpoint.commits ck - commits0);
        }
  in
  {
    py = y;
    pstats;
    pcheckpoint = ck;
    pgroup_attempts = !group_attempts;
    preplayed_rows = !replayed_rows;
    prestored_rows = restored_rows;
    pshed_rows =
      Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 shed;
    pbackoff_seconds = !backoff;
    plink_seconds = Pod.link_seconds pod -. link_s0;
    plink_sends = Pod.link_sends pod - sends0;
    plink_retries = Pod.link_retries pod - retries0;
    prerouted = Pod.reroutes pod - reroutes0;
    pdevices_lost = !devices_lost;
    pok = Checkpoint.complete ck;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>pod_bscan: %s, %a, %d group attempts, %d rows replayed%s%s%s%s@ \
     links: %d sends, %d retries, %d rerouted, %.1f us%s@ %a@]"
    (if r.pok then "ok"
     else if r.pshed_rows > 0 then "DEGRADED (rows shed)"
     else "FAILED")
    Checkpoint.pp r.pcheckpoint r.pgroup_attempts r.preplayed_rows
    (if r.prestored_rows > 0 then
       Printf.sprintf ", %d rows restored from store" r.prestored_rows
     else "")
    (if r.pshed_rows > 0 then Printf.sprintf ", %d rows shed" r.pshed_rows
     else "")
    (if r.pdevices_lost > 0 then
       Printf.sprintf ", %d device%s lost" r.pdevices_lost
         (if r.pdevices_lost = 1 then "" else "s")
     else "")
    (if r.pbackoff_seconds > 0.0 then
       Printf.sprintf ", %.1f us backoff" (r.pbackoff_seconds *. 1e6)
     else "")
    r.plink_sends r.plink_retries r.prerouted
    (r.plink_seconds *. 1e6)
    ""
    Stats.pp_summary r.pstats
