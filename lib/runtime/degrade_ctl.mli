(** Adaptive degradation controller: a circuit breaker plus a brownout
    ladder, replacing the fixed [max_attempts]/[backoff_s] retry
    constants of the resilient runners with policy driven by the
    observed failure rate.

    The Ascend serving field study (PAPERS.md) finds that recovery and
    degradation {e policy} — not raw kernel speed — dominates tail
    behaviour under failures. This module makes that policy explicit
    and testable:

    {2 Circuit breaker}

    Group-attempt outcomes feed a sliding window. While the failure
    rate stays under [open_threshold] the breaker is {e closed} and
    retries run with the full attempt budget and a small adaptive
    backoff. When the rate trips the threshold the breaker {e opens}:
    the next attempt is preceded by a cooldown pause (simulated
    seconds, charged to the run's stats and doubling on every re-open)
    and executes as a single {e half-open} probe. A successful probe
    closes the breaker and clears the window; a failed one re-opens it
    with a longer cooldown.

    {2 Brownout ladder}

    Every breaker opening escalates one brownout level:

    + [Normal] — full granularity, primary schedule;
    + [Shrink_groups] — halve the checkpoint group granularity, so a
      failure replays fewer rows;
    + [Switch_schedule] — also switch the batched schedule to the
      alternate kernel (a failing cube path is routed around);
    + [Shrink_exchange] — pod-level brownout: also shrink the
      distributed scan's exchange group (fewer shard slots, fewer link
      hops) before any work is given up;
    + [Shed_rows] — also give up on groups that keep failing past
      [shed_attempts] total attempts, shedding their rows so the rest
      of the batch completes.

    Sustained success ([recover_after] consecutive validated groups)
    walks the ladder back down one level at a time.

    Everything is deterministic: no wall clock, no randomness — the
    controller is a pure function of the outcome sequence, so chaos
    scenarios replay to identical decision logs. Every transition is
    appended to {!decisions} and fed to the [on_decision] hook, which
    the resilient runner forwards to trace instant marks and the
    Prometheus registry. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type level =
  | Normal
  | Shrink_groups
  | Switch_schedule
  | Shrink_exchange
  | Shed_rows

val level_to_string : level -> string
val level_rank : level -> int

type config = {
  window : int;  (** Sliding outcome window size. *)
  min_samples : int;  (** Outcomes required before the breaker can trip. *)
  open_threshold : float;  (** Window failure rate in [0,1] that opens it. *)
  cooldown_s : float;  (** First-open cooldown, simulated seconds. *)
  max_cooldown_s : float;  (** Cap for the doubling cooldown. *)
  base_backoff_s : float;  (** Adaptive retry backoff base. *)
  max_backoff_s : float;  (** Per-retry backoff cap. *)
  max_attempts : int;  (** Per-group attempt budget, breaker closed. *)
  probe_attempts : int;  (** Per-group budget for a half-open probe. *)
  shed_attempts : int;  (** Group attempts before [Shed_rows] sheds it. *)
  recover_after : int;  (** Consecutive successes per de-escalation. *)
}

val default_config : config
(** window 8, min_samples 4, open_threshold 0.5, cooldown 4us (cap
    1ms), base backoff 1us (cap 100us), 3 attempts, 1 probe, shed
    after 6, recover after 4. *)

val config :
  ?window:int ->
  ?min_samples:int ->
  ?open_threshold:float ->
  ?cooldown_s:float ->
  ?max_cooldown_s:float ->
  ?base_backoff_s:float ->
  ?max_backoff_s:float ->
  ?max_attempts:int ->
  ?probe_attempts:int ->
  ?shed_attempts:int ->
  ?recover_after:int ->
  unit ->
  config
(** {!default_config} with overrides; raises [Invalid_argument] on a
    non-positive window/budget, a threshold outside (0,1], or a
    negative time. *)

type decision = {
  seq : int;  (** 0-based decision order. *)
  d_state : state;  (** Breaker state after the decision. *)
  d_level : level;  (** Brownout level after the decision. *)
  d_cooldown_s : float;  (** Cooldown charged by this decision (0 if none). *)
  d_reason : string;  (** e.g. ["failure rate 0.63 >= 0.50 over 8"]. *)
}

type t

val create : ?config:config -> ?on_decision:(decision -> unit) -> unit -> t

val state : t -> state
val level : t -> level

val record : t -> ok:bool -> unit
(** Feed one group-attempt outcome; drives every transition. *)

val before_attempt : t -> retry:bool -> float
(** Simulated backoff seconds the caller must charge before the next
    attempt: the pending open-state cooldown (the call moves an [Open]
    breaker to [Half_open]) plus, when [retry], the adaptive
    exponential backoff for the current consecutive-failure streak. *)

val attempts_allowed : t -> int
(** The per-group budget under the current state: [max_attempts]
    closed, [probe_attempts] otherwise. *)

val granularity : t -> base:int -> int
(** The brownout-adjusted checkpoint granularity: [base] at [Normal],
    halved at [Shrink_groups], quartered beyond (never below 1). *)

val switch_schedule : t -> bool
(** Whether the ladder has reached [Switch_schedule]. *)

val shrink_exchange : t -> bool
(** Whether the ladder has reached [Shrink_exchange] (the pod runner
    halves the exchange group while this holds). *)

val shed : t -> group_attempts:int -> bool
(** Whether a group that has burned [group_attempts] attempts should
    be shed ([Shed_rows] level and past the [shed_attempts] budget). *)

val decisions : t -> decision list
(** All transitions, oldest first. *)

val opens : t -> int
(** Times the breaker opened. *)

val pp_decision : Format.formatter -> decision -> unit
val pp : Format.formatter -> t -> unit
