(* Directed inter-device link with a seeded fault stream.

   The RNG is the same splitmix64 as Fault's so link behaviour is as
   reproducible as core-level fault injection: the stream depends only
   on (seed, src, dst) and the number of draws so far. Fault kinds are
   drawn uniformly from [config.fault_kinds]; a Corrupt is modelled
   faithfully — the payload image gets a seeded bit flip and the
   receiver's CRC32 comparison detects it — so corruption can never
   change delivered values, only cost time and retries. *)

type fault_kind = Drop | Corrupt | Stall

let fault_kind_to_string = function
  | Drop -> "drop"
  | Corrupt -> "corrupt"
  | Stall -> "stall"

type config = {
  bandwidth_bytes_per_s : float;
  latency_s : float;
  fault_rate : float;
  fault_kinds : fault_kind list;
  stall_factor : float;
  timeout_s : float;
  max_attempts : int;
  backoff_s : float;
  quarantine_after : int;
}

let default_config =
  {
    bandwidth_bytes_per_s = 25.0e9;
    latency_s = 1.5e-6;
    fault_rate = 0.0;
    fault_kinds = [ Drop; Corrupt; Stall ];
    stall_factor = 4.0;
    timeout_s = 10.0e-6;
    max_attempts = 4;
    backoff_s = 1.0e-6;
    quarantine_after = 3;
  }

let validate_config c =
  if c.bandwidth_bytes_per_s <= 0.0 then
    Error "link bandwidth must be positive"
  else if c.latency_s < 0.0 then Error "link latency must be non-negative"
  else if c.fault_rate < 0.0 || c.fault_rate > 1.0 then
    Error "link fault rate must be in [0, 1]"
  else if c.fault_rate > 0.0 && c.fault_kinds = [] then
    Error "link fault rate is positive but no fault kinds are enabled"
  else if c.stall_factor < 1.0 then Error "link stall factor must be >= 1"
  else if c.timeout_s < 0.0 then Error "link timeout must be non-negative"
  else if c.max_attempts < 1 then Error "link max attempts must be >= 1"
  else if c.backoff_s < 0.0 then Error "link backoff must be non-negative"
  else if c.quarantine_after < 1 then
    Error "link quarantine threshold must be >= 1"
  else Ok ()

(* splitmix64, verbatim from Fault so streams are stylistically
   identical across the fault injectors. *)
type rng = { mutable state : int64 }

let next_u64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let uniform t =
  Int64.to_float (Int64.shift_right_logical (next_u64 t) 11) *. 0x1p-53

let rand_below t bound =
  if bound <= 1 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1) (Int64.of_int bound))

(* CRC32 (IEEE 802.3, reflected) — same polynomial as Checkpoint_store
   so "the wire check" and "the disk check" are the same arithmetic. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 (b : Bytes.t) =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = 0 to Bytes.length b - 1 do
    c := table.((!c lxor Char.code (Bytes.get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

type t = {
  config : config;
  l_src : int;
  l_dst : int;
  rng : rng;
  mutable is_down : bool;
  mutable is_quarantined : bool;
  mutable consec_failures : int;
  mutable n_sends : int;
  mutable n_delivered : int;
  mutable n_retries : int;
  mutable n_drops : int;
  mutable n_crc : int;
  mutable n_stalls : int;
  mutable total_seconds : float;
}

let create ?(config = default_config) ~seed ~src ~dst () =
  (match validate_config config with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Link.create: %s" e));
  let mix =
    Int64.logxor (Int64.of_int seed)
      (Int64.of_int ((src * 8191) + (dst * 131) + 0x5bd1))
  in
  {
    config;
    l_src = src;
    l_dst = dst;
    rng = { state = mix };
    is_down = false;
    is_quarantined = false;
    consec_failures = 0;
    n_sends = 0;
    n_delivered = 0;
    n_retries = 0;
    n_drops = 0;
    n_crc = 0;
    n_stalls = 0;
    total_seconds = 0.0;
  }

let src t = t.l_src
let dst t = t.l_dst

type outcome = {
  delivered : bool;
  attempts : int;
  seconds : float;
  dropped : int;
  crc_detected : int;
  stalled : int;
}

let transfer_time t bytes =
  t.config.latency_s +. (float_of_int bytes /. t.config.bandwidth_bytes_per_s)

(* Model the receiver's CRC check on a corrupted packet: flip one
   seeded bit of a synthetic payload image and compare checksums. A
   single bit flip is always caught by CRC32, so this returns true by
   construction — the point is that the check is real, not assumed. *)
let corrupt_detected t ~bytes =
  let n = max 1 (min bytes 64) in
  let payload = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set payload i (Char.chr ((i * 37 + t.n_sends) land 0xFF))
  done;
  let sent_crc = crc32 payload in
  let bit = rand_below t.rng (n * 8) in
  let byte = bit / 8 in
  Bytes.set payload byte
    (Char.chr (Char.code (Bytes.get payload byte) lxor (1 lsl (bit land 7))));
  crc32 payload <> sent_crc

let send t ~bytes =
  if bytes < 0 then invalid_arg "Link.send: negative byte count";
  t.n_sends <- t.n_sends + 1;
  if t.is_down || t.is_quarantined then begin
    t.consec_failures <- t.consec_failures + 1;
    {
      delivered = false;
      attempts = 0;
      seconds = 0.0;
      dropped = 0;
      crc_detected = 0;
      stalled = 0;
    }
  end
  else begin
    let c = t.config in
    let seconds = ref 0.0 in
    let dropped = ref 0 in
    let crc = ref 0 in
    let stalled = ref 0 in
    let delivered = ref false in
    let attempts = ref 0 in
    while (not !delivered) && !attempts < c.max_attempts do
      incr attempts;
      if !attempts > 1 then
        seconds :=
          !seconds +. (c.backoff_s *. (2.0 ** float_of_int (!attempts - 2)));
      let faulty = c.fault_rate > 0.0 && uniform t.rng < c.fault_rate in
      if not faulty then begin
        seconds := !seconds +. transfer_time t bytes;
        delivered := true
      end
      else
        match List.nth c.fault_kinds (rand_below t.rng (List.length c.fault_kinds)) with
        | Drop ->
            incr dropped;
            seconds := !seconds +. c.timeout_s
        | Corrupt ->
            (* The packet crosses the wire, fails the CRC compare, and
               is discarded by the receiver. *)
            seconds := !seconds +. transfer_time t bytes;
            assert (corrupt_detected t ~bytes);
            incr crc
        | Stall ->
            incr stalled;
            seconds := !seconds +. (transfer_time t bytes *. c.stall_factor);
            delivered := true
    done;
    t.n_retries <- t.n_retries + (!attempts - 1);
    t.n_drops <- t.n_drops + !dropped;
    t.n_crc <- t.n_crc + !crc;
    t.n_stalls <- t.n_stalls + !stalled;
    t.total_seconds <- t.total_seconds +. !seconds;
    if !delivered then begin
      t.n_delivered <- t.n_delivered + 1;
      t.consec_failures <- 0
    end
    else begin
      t.consec_failures <- t.consec_failures + 1;
      if t.consec_failures >= c.quarantine_after then t.is_quarantined <- true
    end;
    {
      delivered = !delivered;
      attempts = !attempts;
      seconds = !seconds;
      dropped = !dropped;
      crc_detected = !crc;
      stalled = !stalled;
    }
  end

let set_down t b = t.is_down <- b
let down t = t.is_down
let quarantined t = t.is_quarantined

let clear_quarantine t =
  t.is_quarantined <- false;
  t.consec_failures <- 0

let sends t = t.n_sends
let delivered t = t.n_delivered
let retries t = t.n_retries
let drops t = t.n_drops
let crc_detected t = t.n_crc
let stalls t = t.n_stalls
let seconds t = t.total_seconds

let pp fmt t =
  Format.fprintf fmt
    "link %d->%d: %d sends, %d delivered, %d retries, %d drops, %d crc, %d stalls, %.3e s%s%s"
    t.l_src t.l_dst t.n_sends t.n_delivered t.n_retries t.n_drops t.n_crc
    t.n_stalls t.total_seconds
    (if t.is_down then " [down]" else "")
    (if t.is_quarantined then " [quarantined]" else "")
