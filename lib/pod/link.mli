(** Inter-device link: a deterministic cost model with its own seeded
    fault stream.

    A link is a {e directed} channel between two devices of a pod. Each
    transfer is charged [latency_s + bytes / bandwidth_bytes_per_s]
    seconds; a seeded splitmix64 stream (independent per ordered device
    pair) injects three fault kinds:

    - {e drop}: the packet vanishes; the sender burns [timeout_s]
      waiting, then retries;
    - {e corrupt}: the packet arrives with a flipped bit; the receiver's
      CRC32 check detects the mismatch and the sender retries (a
      corrupted payload is {e never} delivered, so link faults can bend
      time and retry counters but never output values);
    - {e stall}: the transfer completes but takes [stall_factor] times
      longer.

    Retries back off exponentially ([backoff_s * 2^(attempt-2)]). A send
    that exhausts [max_attempts] is undelivered and counts one
    consecutive failure; [quarantine_after] consecutive failed sends
    quarantine the link (subsequent sends fail fast until
    {!clear_quarantine}). Chaos link outages use {!set_down}.

    Everything is a pure function of the config, the seed and the send
    sequence — two links with the same history behave identically. *)

type fault_kind = Drop | Corrupt | Stall

val fault_kind_to_string : fault_kind -> string

type config = {
  bandwidth_bytes_per_s : float;  (** payload rate; default 25 GB/s *)
  latency_s : float;  (** per-transfer setup cost; default 1.5 us *)
  fault_rate : float;  (** per-attempt fault probability; default 0 *)
  fault_kinds : fault_kind list;  (** kinds the stream draws from *)
  stall_factor : float;  (** slowdown of a stalled transfer *)
  timeout_s : float;  (** time burned by a dropped packet *)
  max_attempts : int;  (** attempts per send before giving up *)
  backoff_s : float;  (** base retry backoff (doubles per retry) *)
  quarantine_after : int;  (** consecutive failed sends to quarantine *)
}

val default_config : config
(** Fault-free 25 GB/s link: 1.5 us latency, 4 attempts, 1 us backoff
    base, 10 us drop timeout, stall factor 4, quarantine after 3
    consecutive failed sends. *)

val validate_config : config -> (unit, string) result

type t

val create : ?config:config -> seed:int -> src:int -> dst:int -> unit -> t
(** The fault stream is seeded from [seed] and the ordered pair
    [(src, dst)], so every link of a pod is independent yet
    reproducible. Raises [Invalid_argument] on an invalid config. *)

val src : t -> int
val dst : t -> int

type outcome = {
  delivered : bool;
  attempts : int;  (** attempts consumed by this send (0 if down) *)
  seconds : float;  (** wall time charged, including backoff *)
  dropped : int;  (** packets lost to drops during this send *)
  crc_detected : int;  (** corruptions caught by the receiver's CRC *)
  stalled : int;  (** transfers that completed slow *)
}

val send : t -> bytes:int -> outcome
(** Push [bytes] through the link. A send on a down or quarantined link
    returns [delivered = false] with zero attempts and zero cost
    (fail fast — the caller reroutes or fails the group). *)

val set_down : t -> bool -> unit
(** Chaos control: force the link down (or back up). *)

val down : t -> bool

val quarantined : t -> bool

val clear_quarantine : t -> unit

(* Lifetime counters. *)

val sends : t -> int
val delivered : t -> int

val retries : t -> int
(** Attempts beyond the first, summed over the link's lifetime. *)

val drops : t -> int
val crc_detected : t -> int
val stalls : t -> int
val seconds : t -> float

val crc32 : Bytes.t -> int
(** The receiver-side checksum (same polynomial as the checkpoint
    store); exposed for tests that model payload verification. *)

val pp : Format.formatter -> t -> unit
