(** A deterministic multi-NPU pod: N {!Ascend.Device} instances plus a
    full matrix of directed {!Link}s.

    Device 0 is the {e primary}: it owns the caller-facing tensors,
    carries the armed trace, and keeps whatever fault/deadline config
    the caller gave it. Devices 1..N-1 are internal — same mode and
    domain count as the primary, no fault injection of their own (pod
    failures are injected at the link and whole-device level).

    The [topology] selects the {e default exchange schedule} for the
    distributed scan (ring or all-gather); the link matrix itself is
    always fully connected so failover can reroute around a quarantined
    or downed link through a relay device. Whole-device death
    ({!kill_device}) is permanent, mirrors {!Ascend.Health} semantics
    (all the device's cores are marked dead so stray launches fail
    fast), and is consulted by the distributed scan's re-sharding rule.

    The pod also keeps a per-device clock and an event log
    (local-scan/fixup/link spans, kills, reroutes) that the observer
    layer exports as one Perfetto process per device. *)

open Ascend

module Link = Link
(** Re-export: [pod] is the library's root module, so [Pod.Link] is the
    link model's public path. *)

type topology = Ring | Fully_connected

val topology_to_string : topology -> string
val topology_of_string : string -> (topology, string) result

type event_kind =
  | Local_scan
  | Fixup
  | Link_send
  | Reroute
  | Device_kill
  | Phase
  | Note

type event = {
  ev_kind : event_kind;
  ev_device : int;  (** owning device (source for link sends) *)
  ev_peer : int option;  (** destination device for link sends *)
  ev_label : string;
  ev_start_s : float;
  ev_dur_s : float;  (** 0 for instants *)
}

type t

val create :
  ?topology:topology ->
  ?link_config:Link.config ->
  ?seed:int ->
  ?mode:Device.mode ->
  ?domains:int ->
  devices:int ->
  unit ->
  t
(** Build a pod of [devices] fresh devices. Raises [Invalid_argument]
    if [devices < 1]. *)

val create_with :
  ?topology:topology ->
  ?link_config:Link.config ->
  ?seed:int ->
  primary:Device.t ->
  devices:int ->
  unit ->
  t
(** Build a pod around an existing device: [primary] becomes device 0
    (keeping its traces, faults and deadline), and [devices - 1]
    internal devices are created with the primary's mode and domain
    count. Raises [Invalid_argument] if [devices < 1]. *)

val num_devices : t -> int
val topology : t -> topology
val seed : t -> int
val device : t -> int -> Device.t
val primary : t -> Device.t

val alive : t -> int -> bool
val alive_count : t -> int
val alive_devices : t -> int list

val kill_device : t -> int -> unit
(** Permanent whole-device death: the pod stops scheduling shards on
    it, and all its cores are marked dead so anything still holding the
    device fails fast. Idempotent. Raises [Invalid_argument] on an
    out-of-range index. *)

val link : t -> src:int -> dst:int -> Link.t
(** The directed link for an ordered device pair. Raises
    [Invalid_argument] if [src = dst] or either index is out of
    range. *)

exception Partitioned of { src : int; dst : int }
(** Raised by {!send} when a transfer fails on the direct link and on
    every relay route — the surviving devices can no longer reach each
    other. *)

type sent = {
  snd_seconds : float;  (** total link time charged for the delivery *)
  snd_attempts : int;  (** link attempts consumed, all routes *)
  snd_via : int option;  (** relay device, when rerouted *)
}

val send : t -> src:int -> dst:int -> bytes:int -> label:string -> sent
(** Deliver [bytes] from [src] to [dst], retrying per the link config,
    reroute through the first alive relay (ascending device order)
    whose two hops both deliver when the direct link fails, and raise
    {!Partitioned} when no route delivers. [src = dst] is free.
    Records link events against the source device's clock. *)

(* Clocks and events, for trace export. *)

val clock : t -> int -> float
val advance_clock : t -> int -> float -> unit
val sync_clocks : t -> unit
(** Barrier: advance every alive device's clock to the pod-wide max. *)

val record : t -> event -> unit
val events : t -> event list
(** Oldest first. *)

(* Pod-wide link counters (summed over the matrix). *)

val link_sends : t -> int
val link_delivered : t -> int
val link_retries : t -> int
val link_drops : t -> int
val link_crc_detected : t -> int
val link_stalls : t -> int
val link_seconds : t -> float
val reroutes : t -> int
val quarantined_links : t -> int

val pp : Format.formatter -> t -> unit
