(* Deterministic multi-device pod: devices + a directed link matrix.

   Determinism contract: the pod's behaviour is a pure function of its
   construction arguments and the sequence of operations applied to it.
   Each directed link owns an independent splitmix64 stream seeded from
   (pod seed, src, dst), so the same storyline replays identically —
   the property the crash/resume harness and the QCheck bit-identity
   suite lean on. *)

open Ascend
module Link = Link

type topology = Ring | Fully_connected

let topology_to_string = function
  | Ring -> "ring"
  | Fully_connected -> "full"

let topology_of_string = function
  | "ring" -> Ok Ring
  | "full" | "fully_connected" | "all" -> Ok Fully_connected
  | s -> Error (Printf.sprintf "unknown topology %S (expected ring or full)" s)

type event_kind =
  | Local_scan
  | Fixup
  | Link_send
  | Reroute
  | Device_kill
  | Phase
  | Note

type event = {
  ev_kind : event_kind;
  ev_device : int;
  ev_peer : int option;
  ev_label : string;
  ev_start_s : float;
  ev_dur_s : float;
}

type t = {
  devices : Device.t array;
  alive : bool array;
  topo : topology;
  links : Link.t option array array;
  pod_seed : int;
  clocks : float array;
  mutable events_rev : event list;
  mutable n_reroutes : int;
}

let build ~topology:topo ~link_config ~seed devices_arr =
  let d = Array.length devices_arr in
  let links =
    Array.init d (fun src ->
        Array.init d (fun dst ->
            if src = dst then None
            else Some (Link.create ?config:link_config ~seed ~src ~dst ())))
  in
  {
    devices = devices_arr;
    alive = Array.make d true;
    topo;
    links;
    pod_seed = seed;
    clocks = Array.make d 0.0;
    events_rev = [];
    n_reroutes = 0;
  }

let create ?(topology = Ring) ?link_config ?(seed = 0) ?mode ?domains ~devices
    () =
  if devices < 1 then
    invalid_arg
      (Printf.sprintf "Pod.create: devices must be >= 1 (got %d)" devices);
  let devs =
    Array.init devices (fun _ -> Device.create ?mode ?domains ())
  in
  build ~topology ~link_config ~seed devs

let create_with ?(topology = Ring) ?link_config ?(seed = 0) ~primary ~devices
    () =
  if devices < 1 then
    invalid_arg
      (Printf.sprintf "Pod.create_with: devices must be >= 1 (got %d)" devices);
  let devs =
    Array.init devices (fun i ->
        if i = 0 then primary
        else
          Device.create ~mode:(Device.mode primary)
            ~domains:(Device.domains primary) ())
  in
  build ~topology ~link_config ~seed devs

let num_devices t = Array.length t.devices
let topology t = t.topo
let seed t = t.pod_seed

let check_index t name i =
  if i < 0 || i >= Array.length t.devices then
    invalid_arg
      (Printf.sprintf "Pod.%s: device %d out of range (pod has %d)" name i
         (Array.length t.devices))

let device t i =
  check_index t "device" i;
  t.devices.(i)

let primary t = t.devices.(0)

let alive t i =
  check_index t "alive" i;
  t.alive.(i)

let alive_count t =
  Array.fold_left (fun acc a -> if a then acc + 1 else acc) 0 t.alive

let alive_devices t =
  let out = ref [] in
  for i = Array.length t.alive - 1 downto 0 do
    if t.alive.(i) then out := i :: !out
  done;
  !out

let record t ev = t.events_rev <- ev :: t.events_rev
let events t = List.rev t.events_rev

let clock t i =
  check_index t "clock" i;
  t.clocks.(i)

let advance_clock t i ds =
  check_index t "advance_clock" i;
  t.clocks.(i) <- t.clocks.(i) +. ds

let sync_clocks t =
  let m = ref 0.0 in
  Array.iteri (fun i c -> if t.alive.(i) && c > !m then m := c) t.clocks;
  Array.iteri
    (fun i c -> if t.alive.(i) && c < !m then t.clocks.(i) <- !m)
    t.clocks

let kill_device t i =
  check_index t "kill_device" i;
  if t.alive.(i) then begin
    t.alive.(i) <- false;
    let dev = t.devices.(i) in
    let health = Device.health dev in
    for c = 0 to Device.num_cores dev - 1 do
      if Health.alive health c then Health.mark_dead ~reason:Health.Marked health ~core:c
    done;
    record t
      {
        ev_kind = Device_kill;
        ev_device = i;
        ev_peer = None;
        ev_label = Printf.sprintf "device %d killed" i;
        ev_start_s = t.clocks.(i);
        ev_dur_s = 0.0;
      }
  end

let link t ~src ~dst =
  check_index t "link" src;
  check_index t "link" dst;
  if src = dst then invalid_arg "Pod.link: src and dst are the same device";
  match t.links.(src).(dst) with
  | Some l -> l
  | None -> assert false

exception Partitioned of { src : int; dst : int }

type sent = { snd_seconds : float; snd_attempts : int; snd_via : int option }

let record_send t ~src ~dst ~label ~seconds =
  record t
    {
      ev_kind = Link_send;
      ev_device = src;
      ev_peer = Some dst;
      ev_label = label;
      ev_start_s = t.clocks.(src);
      ev_dur_s = seconds;
    };
  advance_clock t src seconds

let send t ~src ~dst ~bytes ~label =
  check_index t "send" src;
  check_index t "send" dst;
  if src = dst then { snd_seconds = 0.0; snd_attempts = 0; snd_via = None }
  else begin
    let direct = link t ~src ~dst in
    let o = Link.send direct ~bytes in
    if o.Link.delivered then begin
      record_send t ~src ~dst ~label ~seconds:o.Link.seconds;
      {
        snd_seconds = o.Link.seconds;
        snd_attempts = o.Link.attempts;
        snd_via = None;
      }
    end
    else begin
      (* Failover: relay through the first alive device whose two hops
         both deliver, in ascending device order — deterministic, like
         the re-sharding rule. *)
      let d = Array.length t.devices in
      let rec try_relay r acc_attempts acc_seconds =
        if r >= d then begin
          record t
            {
              ev_kind = Note;
              ev_device = src;
              ev_peer = Some dst;
              ev_label =
                Printf.sprintf "partitioned: %s (no route %d->%d)" label src
                  dst;
              ev_start_s = t.clocks.(src);
              ev_dur_s = 0.0;
            };
          raise (Partitioned { src; dst })
        end
        else if r = src || r = dst || not t.alive.(r) then
          try_relay (r + 1) acc_attempts acc_seconds
        else
          let hop1 = Link.send (link t ~src ~dst:r) ~bytes in
          if not hop1.Link.delivered then
            try_relay (r + 1)
              (acc_attempts + hop1.Link.attempts)
              (acc_seconds +. hop1.Link.seconds)
          else
            let hop2 = Link.send (link t ~src:r ~dst) ~bytes in
            if not hop2.Link.delivered then
              try_relay (r + 1)
                (acc_attempts + hop1.Link.attempts + hop2.Link.attempts)
                (acc_seconds +. hop1.Link.seconds +. hop2.Link.seconds)
            else begin
              t.n_reroutes <- t.n_reroutes + 1;
              let seconds =
                acc_seconds +. hop1.Link.seconds +. hop2.Link.seconds
              in
              record t
                {
                  ev_kind = Reroute;
                  ev_device = src;
                  ev_peer = Some dst;
                  ev_label =
                    Printf.sprintf "%s rerouted via device %d" label r;
                  ev_start_s = t.clocks.(src);
                  ev_dur_s = 0.0;
                };
              record_send t ~src ~dst ~label ~seconds;
              {
                snd_seconds = seconds;
                snd_attempts =
                  acc_attempts + hop1.Link.attempts + hop2.Link.attempts;
                snd_via = Some r;
              }
            end
      in
      try_relay 0 o.Link.attempts o.Link.seconds
    end
  end

let fold_links t f init =
  let acc = ref init in
  Array.iter
    (fun row ->
      Array.iter (function None -> () | Some l -> acc := f !acc l) row)
    t.links;
  !acc

let link_sends t = fold_links t (fun a l -> a + Link.sends l) 0
let link_delivered t = fold_links t (fun a l -> a + Link.delivered l) 0
let link_retries t = fold_links t (fun a l -> a + Link.retries l) 0
let link_drops t = fold_links t (fun a l -> a + Link.drops l) 0
let link_crc_detected t = fold_links t (fun a l -> a + Link.crc_detected l) 0
let link_stalls t = fold_links t (fun a l -> a + Link.stalls l) 0
let link_seconds t = fold_links t (fun a l -> a +. Link.seconds l) 0.0

let reroutes t = t.n_reroutes

let quarantined_links t =
  fold_links t (fun a l -> if Link.quarantined l then a + 1 else a) 0

let pp fmt t =
  Format.fprintf fmt
    "pod: %d devices (%d alive), topology %s, %d link sends (%d retries, %d reroutes, %d quarantined links)"
    (num_devices t) (alive_count t)
    (topology_to_string t.topo)
    (link_sends t) (link_retries t) (reroutes t) (quarantined_links t)
