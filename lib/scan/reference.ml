let inclusive_scan ?(round = Fun.id) x =
  let n = Array.length x in
  let y = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := round (!acc +. x.(i));
    y.(i) <- !acc
  done;
  y

let exclusive_scan ?(round = Fun.id) x =
  let n = Array.length x in
  let y = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    y.(i) <- !acc;
    acc := round (!acc +. x.(i))
  done;
  y

let inclusive_scan_op ?(round = Fun.id) ~combine ~init x =
  let n = Array.length x in
  let y = Array.make n 0.0 in
  let acc = ref init in
  for i = 0 to n - 1 do
    acc := round (combine !acc x.(i));
    y.(i) <- !acc
  done;
  y

let batched_inclusive ?(round = Fun.id) ~batch ~len x =
  if Array.length x <> batch * len then
    invalid_arg "Reference.batched_inclusive: shape mismatch";
  let y = Array.make (batch * len) 0.0 in
  for b = 0 to batch - 1 do
    let acc = ref 0.0 in
    for i = 0 to len - 1 do
      acc := round (!acc +. x.((b * len) + i));
      y.((b * len) + i) <- !acc
    done
  done;
  y

let sum x = Array.fold_left ( +. ) 0.0 x

let split x ~flags =
  let n = Array.length x in
  if Array.length flags <> n then
    invalid_arg "Reference.split: length mismatch";
  let vals = Array.make n 0.0 and idxs = Array.make n 0 in
  let k = ref 0 in
  let place i =
    vals.(!k) <- x.(i);
    idxs.(!k) <- i;
    incr k
  in
  for i = 0 to n - 1 do
    if flags.(i) <> 0.0 then place i
  done;
  for i = 0 to n - 1 do
    if flags.(i) = 0.0 then place i
  done;
  (vals, idxs)

let compress x ~mask =
  let n = Array.length x in
  if Array.length mask <> n then
    invalid_arg "Reference.compress: length mismatch";
  let out = ref [] in
  for i = n - 1 downto 0 do
    if mask.(i) <> 0.0 then out := x.(i) :: !out
  done;
  Array.of_list !out

(* Total-order comparison placing NaNs last, treating -0.0 = 0.0. *)
let cmp_value a b =
  match Float.is_nan a, Float.is_nan b with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare (a +. 0.0) (b +. 0.0)

let stable_sort_with_indices x =
  let n = Array.length x in
  let order = Array.init n Fun.id in
  let cmp i j =
    let c = cmp_value x.(i) x.(j) in
    if c <> 0 then c else Stdlib.compare i j
  in
  (* Array.sort is not stable; the index tiebreak makes it stable. *)
  Array.sort cmp order;
  (Array.map (fun i -> x.(i)) order, order)

let is_sorted x =
  let ok = ref true in
  for i = 1 to Array.length x - 1 do
    if cmp_value x.(i - 1) x.(i) > 0 then ok := false
  done;
  !ok

let top_k x ~k =
  let n = Array.length x in
  if k < 0 || k > n then invalid_arg "Reference.top_k: k out of range";
  let order = Array.init n Fun.id in
  let cmp i j =
    let c = cmp_value x.(j) x.(i) in
    if c <> 0 then c else Stdlib.compare i j
  in
  Array.sort cmp order;
  let order = Array.sub order 0 k in
  (Array.map (fun i -> x.(i)) order, order)

let top_p_threshold_count probs ~p =
  if p < 0.0 || p > 1.0 then
    invalid_arg "Reference.top_p_threshold_count: p out of [0,1]";
  let sorted = Array.copy probs in
  Array.sort (fun a b -> cmp_value b a) sorted;
  let n = Array.length sorted in
  let rec go i acc =
    if i >= n then n
    else
      let acc = acc +. sorted.(i) in
      if acc > p then i + 1 else go (i + 1) acc
  in
  go 0 0.0
