type algo = Op_registry.entry

let algo_of_string name =
  match Op_registry.find name with
  | Some e
    when e.Op_registry.kind = `Scan
         && (not e.Op_registry.caps.Op_registry.batched)
         && not e.Op_registry.caps.Op_registry.masked ->
      Some e
  | Some _ | None -> None

let algo_to_string (e : algo) = e.Op_registry.name

let get name =
  match algo_of_string name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Scan_api.get: unknown scan %S" name)

let all_algos = Op_registry.unary_scans ()

let run ?s ?(exclusive = false) ?devices ~algo device x =
  let cfg =
    { Op_registry.default_config with Op_registry.s; exclusive; devices }
  in
  match Op_registry.run algo cfg device (Op_registry.Tensor x) with
  | Ok (out, stats) -> (
      match out.Op_registry.y with
      | Some y -> (y, stats)
      | None ->
          invalid_arg
            (Printf.sprintf "Scan_api.run: %s returned no output tensor"
               algo.Op_registry.name))
  | Error msg -> invalid_arg ("Scan_api.run: " ^ msg)

(* Bit-pattern float equality: agrees with [=] on ordinary values
   (including 0.0 vs -0.0, which share no bits but compare equal) and,
   unlike [=], treats a NaN as equal to itself — so a NaN-producing
   input reports the first index where the bits genuinely differ
   instead of flagging every NaN position. *)
let float_eq a b =
  a = b || Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let check_against_reference ?(round = Fun.id) ?(exclusive = false) ?expected
    ~input ~output () =
  let expected =
    match expected with
    | Some e -> e
    | None ->
        if exclusive then Reference.exclusive_scan ~round input
        else Reference.inclusive_scan ~round input
  in
  let n = Array.length input in
  if Ascend.Global_tensor.length output <> n then
    Error
      (Printf.sprintf "length mismatch: expected %d, got %d" n
         (Ascend.Global_tensor.length output))
  else begin
    let rec scan i =
      if i >= n then Ok ()
      else
        let got = Ascend.Global_tensor.get output i in
        if float_eq got expected.(i) then scan (i + 1)
        else
          Error
            (Printf.sprintf "index %d: expected %g, got %g" i expected.(i) got)
    in
    scan 0
  end

let check_scan ?(round = Fun.id) ?(exclusive = false) ~algo ~dtype ~input
    ~output () =
  let expected =
    match algo.Op_registry.monoid with
    | Some (module Op : Scan_op.S) when not (String.equal Op.name "sum") ->
        (* Non-sum monoid: build the reference from the operator (the
           default sum reference would flag every element). Exclusive
           is rejected by capability validation before this point. *)
        Some
          (Reference.inclusive_scan_op ~round ~combine:Op.combine
             ~init:(Op.identity dtype) input)
    | _ -> None
  in
  check_against_reference ~round ~exclusive ?expected ~input ~output ()
