(** Host-side oracles used by tests and result validation.

    All oracles accept an optional [round] function applied after every
    accumulation step so they can mirror a kernel's rounding behaviour
    (e.g. [Ascend.Fp16.round] for an fp16 scan whose partials live in
    fp16 buffers). The default is exact double accumulation. *)

val inclusive_scan : ?round:(float -> float) -> float array -> float array

val exclusive_scan : ?round:(float -> float) -> float array -> float array
(** Exclusive scan: [y.(0) = 0], [y.(i) = round (y.(i-1) + x.(i-1))]. *)

val inclusive_scan_op :
  ?round:(float -> float) ->
  combine:(float -> float -> float) ->
  init:float ->
  float array ->
  float array
(** Inclusive scan under an arbitrary monoid (e.g. a {!Scan_op.S}'s
    [combine]/[identity]): [y.(i) = round (combine y.(i-1) x.(i))]
    seeded with [init]. *)

val batched_inclusive :
  ?round:(float -> float) -> batch:int -> len:int -> float array -> float array
(** Row-major [(batch, len)] layout; each row scanned independently. *)

val sum : float array -> float

val split : float array -> flags:float array -> float array * int array
(** Stable split oracle: true-flag elements first, then false-flag
    elements; also returns the source index of each output element.
    Raises [Invalid_argument] on length mismatch. *)

val compress : float array -> mask:float array -> float array
(** Elements whose mask entry is non-zero, in order. *)

val stable_sort_with_indices : float array -> float array * int array
(** Ascending stable sort returning (values, original indices); total
    order with [-0.0 < 0.0] treated as equal and NaNs last (matches the
    fp16 radix order used by the kernels on non-NaN data). *)

val is_sorted : float array -> bool

val top_k : float array -> k:int -> float array * int array
(** The [k] largest values in descending order with their indices;
    stable among equals (lower index first). *)

val top_p_threshold_count : float array -> p:float -> int
(** Number of items a nucleus (top-p) sampler keeps: sort probabilities
    descending, count items until the cumulative sum exceeds [p]
    (inclusive of the crossing item). *)
