open Ascend

(* ------------------------------------------------------------------ *)
(* Tile iteration. *)

let foreach_tile ctx ?(serial = false) ~tile ~n f =
  let ntiles = Kernel_util.ceil_div n tile in
  Block.pipelined ctx ~iters:(if serial then 1 else max 1 ntiles) (fun () ->
      for t = 0 to ntiles - 1 do
        let off = t * tile in
        let len = min tile (n - off) in
        f ~off ~len
      done)

let sub_block ~lo ~hi ~half v =
  let vlo = lo + (v * half) in
  let vhi = min hi (vlo + half) in
  (vlo, vhi)

let foreach_ub_tile ~ub_tile ~vlo ~vhi f =
  let t = ref vlo in
  while !t < vhi do
    let len = min ub_tile (vhi - !t) in
    f ~off:!t ~len;
    t := !t + ub_tile
  done

let block_partition ~n ~blocks ~vpc ~chunk_align ~half_align =
  let chunk = Kernel_util.round_up (Kernel_util.ceil_div n blocks) chunk_align in
  let half = Kernel_util.round_up (Kernel_util.ceil_div chunk vpc) half_align in
  (chunk, half)

(* ------------------------------------------------------------------ *)
(* Partial propagation (Algorithm 1, lines 11-13, generic in the
   operator). *)

(* One tile-batched op replaces the historical per-row vec_scalar +
   Vec.get loop; Vec.scan_rows reproduces its charges, instruction
   counts and data bit for bit. *)
let propagate_rows (module Op : Scan_op.S) ctx ~vec ~ub ~len ~s ~partial =
  partial :=
    Vec.scan_rows ctx ~vec ~op:Op.vec_binop ~buf:ub ~len ~s ~init:!partial ()

let finish_tile (module Op : Scan_op.S) ctx ?(vec = 0) ?src ~ub ~dst ~off ~len
    ~s ~partial () =
  Option.iter
    (fun src ->
      Mte.copy_in ctx ~engine:(Engine.Vec_mte_in vec) ~src ~src_off:off ~dst:ub
        ~len ())
    src;
  propagate_rows (module Op) ctx ~vec ~ub ~len ~s ~partial;
  Mte.copy_out ctx ~engine:(Engine.Vec_mte_out vec) ~src:ub ~dst ~dst_off:off
    ~len ()

let load_cube_encoding (module Op : Scan_op.S) ctx ~engine ~kind ~dtype ~s =
  match Op.cube_encoding with
  | Some which -> Const_mat.load ctx ~engine ~kind ~dtype ~s which
  | None ->
      invalid_arg
        (Printf.sprintf "Scan_core: operator %s has no cube-matrix encoding"
           Op.name)

(* ------------------------------------------------------------------ *)
(* Vector-only two-phase multi-block scan, generic in the operator
   (the decoupled-lookback shape of McScan restricted to the vector
   engines; this is what the bespoke max-scan kernel was). *)

let ub_tile = 8192

(* Phase I: per-vector-sub-block reductions into [r]. *)
let vec_phase1 (module Op : Scan_op.S) ~x ~r ~chunk ~half ~n ~dt ctx =
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let lo = i * chunk in
  let hi = min n (lo + chunk) in
  if hi > lo then begin
    let ubs =
      List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) dt ub_tile)
    in
    let stage =
      List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) dt 16)
    in
    let vtiles = Kernel_util.ceil_div half ub_tile in
    Block.pipelined ctx ~iters:(max 1 vtiles) (fun () ->
        List.iteri
          (fun v ub ->
            let vlo, vhi = sub_block ~lo ~hi ~half v in
            if vhi > vlo then begin
              let acc = ref (Op.identity dt) in
              foreach_ub_tile ~ub_tile ~vlo ~vhi (fun ~off ~len ->
                  Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:x
                    ~src_off:off ~dst:ub ~len ();
                  acc :=
                    Op.combine !acc (Op.vec_reduce ctx ~vec:v ~src:ub ~len ()));
              let st = List.nth stage v in
              Vec.set ctx ~vec:v st 0 !acc;
              Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:st ~dst:r
                ~dst_off:((i * vpc) + v) ~len:1 ()
            end)
          ubs)
  end

(* Phase II: per-tile Hillis-Steele scan under the operator, seeded
   with the reduction of all preceding sub-blocks and the running
   carry. *)
let vec_phase2 (module Op : Scan_op.S) ~x ~y ~r ~chunk ~half ~n ~dt ctx =
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let lo = i * chunk in
  let hi = min n (lo + chunk) in
  if hi > lo then begin
    let rlen = Global_tensor.length r in
    let bufs =
      List.init vpc (fun v ->
          ( Block.alloc ctx (Mem_kind.Ub v) dt ub_tile,
            Block.alloc ctx (Mem_kind.Ub v) dt ub_tile,
            Block.alloc ctx (Mem_kind.Ub v) (Global_tensor.dtype r) rlen ))
    in
    let vtiles = Kernel_util.ceil_div half ub_tile in
    Block.pipelined ctx ~iters:(max 1 vtiles) (fun () ->
        List.iteri
          (fun v (ub, tmp, rub) ->
            let vlo, vhi = sub_block ~lo ~hi ~half v in
            if vhi > vlo then begin
              Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:r ~dst:rub
                ~len:rlen ();
              let k = (i * vpc) + v in
              let base =
                if k = 0 then Op.identity dt
                else Op.vec_reduce ctx ~vec:v ~src:rub ~len:k ()
              in
              let partial = ref base in
              foreach_ub_tile ~ub_tile ~vlo ~vhi (fun ~off ~len ->
                  Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:x
                    ~src_off:off ~dst:ub ~len ();
                  Kernel_util.hillis_steele_tile ctx ~vec:v ~op:Op.vec_binop
                    ~buf:ub ~tmp ~len;
                  partial :=
                    Vec.scan_rows ctx ~vec:v ~op:Op.vec_binop ~buf:ub ~len
                      ~s:len ~init:!partial ();
                  Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:ub
                    ~dst:y ~dst_off:off ~len ())
            end)
          bufs)
  end

let run_vec_blocks (module Op : Scan_op.S) ?blocks ~kernel_name ~suffix device
    x =
  let dt = Global_tensor.dtype x in
  if not (List.exists (Dtype.equal dt) Op.dtypes) then
    invalid_arg
      (Printf.sprintf "%s: unsupported dtype %s" kernel_name
         (Dtype.to_string dt));
  let n = Global_tensor.length x in
  if n = 0 then invalid_arg (Printf.sprintf "%s: empty input" kernel_name);
  let blocks =
    match blocks with
    | Some b -> b
    | None -> Scheduler.blocks (Scheduler.plan device ~n)
  in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let chunk, half =
    block_partition ~n ~blocks ~vpc ~chunk_align:ub_tile ~half_align:ub_tile
  in
  let name = Global_tensor.name x in
  let y = Device.alloc device dt n ~name:(name ^ suffix) in
  let r = Device.alloc device dt (blocks * vpc) ~name:(name ^ suffix ^ "_r") in
  (* The identity must pre-fill r so empty sub-blocks are neutral. *)
  if Device.functional device then Global_tensor.fill r (Op.identity dt);
  let stats =
    Launch.run_phases ~name:kernel_name device ~blocks
      [
        vec_phase1 (module Op) ~x ~r ~chunk ~half ~n ~dt;
        vec_phase2 (module Op) ~x ~y ~r ~chunk ~half ~n ~dt;
      ]
  in
  (y, stats)
