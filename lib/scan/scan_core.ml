open Ascend

(* ------------------------------------------------------------------ *)
(* Pipeline schedules. *)

type schedule = Serial | Double | Triple

let schedule_name = function
  | Serial -> "serial"
  | Double -> "double"
  | Triple -> "triple"

let default_schedule = ref Triple
let current_schedule () = !default_schedule

let with_schedule sched f =
  let prev = !default_schedule in
  default_schedule := sched;
  Fun.protect ~finally:(fun () -> default_schedule := prev) f

(* Inbound copies go async under any pipelined schedule; outbound
   copies go async only under [Triple] (the 3-stage shape) — and only
   for kernels with a dedicated store buffer, which opt in via the
   walker's [out] parameter. *)
let stage_in ctx ~schedule ~engine ~src ?(src_off = 0) ~dst ?(dst_off = 0) ~len
    () =
  match schedule with
  | Serial -> Mte.copy_in ctx ~engine ~src ~src_off ~dst ~dst_off ~len ()
  | Double | Triple ->
      Mte.copy_in_async ctx ~engine ~src ~src_off ~dst ~dst_off ~len ()

let stage_out ctx ~schedule ~engine ~src ?(src_off = 0) ~dst ?(dst_off = 0)
    ~len () =
  match schedule with
  | Serial | Double -> Mte.copy_out ctx ~engine ~src ~src_off ~dst ~dst_off ~len ()
  | Triple -> Mte.copy_out_async ctx ~engine ~src ~src_off ~dst ~dst_off ~len ()

(* The double-buffered pipeline walker every kernel is built on.

   [load ~slot t] stages item [t]'s inputs into ping-pong slot [slot]
   (via {!stage_in} on [in_engine]); [work ~slot t] consumes the slot —
   compute plus stores. Under [Double]/[Triple] the walker issues
   [load (t+1)] before [work t] and paces slot re-use with AscendC
   commit/wait groups, so copy-in of the next tile overlaps compute of
   the current one. [out = Some (engine, slots)] additionally makes the
   walker pace [slots] ping-pong store buffers: [work] must then issue
   its stores with {!stage_out} on that engine (async under [Triple]),
   and the walker's wait keeps a store in flight while the next item
   computes — the 3-stage shape. Kernels whose compute tile doubles as
   the store source (in-place propagation) pass [out = None] and store
   synchronously; their loads still overlap compute and stores.

   WAR safety of the 2-slot rotation: [load (t+1)] targets the slot
   last consumed by [work (t-1)], which the issuing lane has already
   completed, and — when [out] paces stores — last stored by iteration
   [t-1-(slots-1)], whose group the walker has already waited.

   [Serial] is the no-overlap ablation: everything synchronous with a
   full barrier between items, charging the serial sum of all engine
   work (the historical [no_pipeline] semantics). *)
let pipeline ctx ?schedule ?out ~in_engine ~n ~load ~work () =
  let schedule =
    match schedule with Some s -> s | None -> !default_schedule
  in
  let out = match schedule with Triple -> out | Serial | Double -> None in
  (match schedule with
  | Serial ->
      for t = 0 to n - 1 do
        load ~slot:0 t;
        work ~slot:0 t;
        Block.wait_all ctx
      done
  | Double | Triple ->
      if n > 0 then begin
        load ~slot:0 0;
        Mte.commit_group ctx ~engine:in_engine;
        for t = 0 to n - 1 do
          (match out with
          | Some (oe, slots) when t > 0 ->
              Mte.wait_group ctx ~engine:oe ~outstanding:(slots - 1)
          | _ -> ());
          if t + 1 < n then begin
            load ~slot:((t + 1) land 1) (t + 1);
            Mte.commit_group ctx ~engine:in_engine
          end;
          Mte.wait_group ctx ~engine:in_engine
            ~outstanding:(if t + 1 < n then 1 else 0);
          work ~slot:(t land 1) t;
          match out with
          | Some (oe, _) -> Mte.commit_group ctx ~engine:oe
          | None -> ()
        done;
        match out with
        | Some (oe, _) -> Mte.wait_group ctx ~engine:oe ~outstanding:0
        | None -> ()
      end)

(* [pipeline] over [tile]-sized slices of [0, n): the walker shape of
   every tiled kernel. *)
let pipeline_tiles ctx ?schedule ?out ~in_engine ~tile ~n ~load ~work () =
  let ntiles = Kernel_util.ceil_div n tile in
  let slice t = (t * tile, min tile (n - (t * tile))) in
  pipeline ctx ?schedule ?out ~in_engine ~n:ntiles
    ~load:(fun ~slot t ->
      let off, len = slice t in
      load ~slot ~off ~len)
    ~work:(fun ~slot t ->
      let off, len = slice t in
      work ~slot ~off ~len)
    ()

(* ------------------------------------------------------------------ *)
(* Tile iteration (legacy [Block.pipelined] lowering — kept for kernels
   that have not moved to the explicit walker). *)

let foreach_tile ctx ?(serial = false) ~tile ~n f =
  let ntiles = Kernel_util.ceil_div n tile in
  Block.pipelined ctx ~iters:(if serial then 1 else max 1 ntiles) (fun () ->
      for t = 0 to ntiles - 1 do
        let off = t * tile in
        let len = min tile (n - off) in
        f ~off ~len
      done)

let sub_block ~lo ~hi ~half v =
  let vlo = lo + (v * half) in
  let vhi = min hi (vlo + half) in
  (vlo, vhi)

let foreach_ub_tile ~ub_tile ~vlo ~vhi f =
  let t = ref vlo in
  while !t < vhi do
    let len = min ub_tile (vhi - !t) in
    f ~off:!t ~len;
    t := !t + ub_tile
  done

let block_partition ~n ~blocks ~vpc ~chunk_align ~half_align =
  let chunk = Kernel_util.round_up (Kernel_util.ceil_div n blocks) chunk_align in
  let half = Kernel_util.round_up (Kernel_util.ceil_div chunk vpc) half_align in
  (chunk, half)

(* ------------------------------------------------------------------ *)
(* Partial propagation (Algorithm 1, lines 11-13, generic in the
   operator). *)

(* One tile-batched op replaces the historical per-row vec_scalar +
   Vec.get loop; Vec.scan_rows reproduces its charges, instruction
   counts and data bit for bit. *)
let propagate_rows (module Op : Scan_op.S) ctx ~vec ~ub ~len ~s ~partial =
  partial :=
    Vec.scan_rows ctx ~vec ~op:Op.vec_binop ~buf:ub ~len ~s ~init:!partial ()

let finish_tile (module Op : Scan_op.S) ctx ?(vec = 0) ?await ?src ~ub ~dst
    ~off ~len ~s ~partial () =
  (* [await] names the producing engine of [src] (typically the cube
     core's outbound MTE): the vector core's lane must not read [src]
     from GM before everything issued there — async stores included —
     has landed. *)
  Option.iter
    (fun on -> Block.await_engine ctx ~lane_of:(Engine.Vec_mte_in vec) ~on)
    await;
  Option.iter
    (fun src ->
      Mte.copy_in ctx ~engine:(Engine.Vec_mte_in vec) ~src ~src_off:off ~dst:ub
        ~len ())
    src;
  propagate_rows (module Op) ctx ~vec ~ub ~len ~s ~partial;
  Mte.copy_out ctx ~engine:(Engine.Vec_mte_out vec) ~src:ub ~dst ~dst_off:off
    ~len ()

let load_cube_encoding (module Op : Scan_op.S) ctx ~engine ~kind ~dtype ~s =
  match Op.cube_encoding with
  | Some which -> Const_mat.load ctx ~engine ~kind ~dtype ~s which
  | None ->
      invalid_arg
        (Printf.sprintf "Scan_core: operator %s has no cube-matrix encoding"
           Op.name)

(* ------------------------------------------------------------------ *)
(* Vector-only two-phase multi-block scan, generic in the operator
   (the decoupled-lookback shape of McScan restricted to the vector
   engines; this is what the bespoke max-scan kernel was). *)

let ub_tile = 8192

(* Phase I: per-vector-sub-block reductions into [r]. Each vector core
   runs its own double-buffered load/reduce pipeline on its own lane;
   issuing them one after another in program text still overlaps them
   on the timeline, because lanes are independent. *)
let vec_phase1 (module Op : Scan_op.S) ~x ~r ~chunk ~half ~n ~dt ctx =
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let lo = i * chunk in
  let hi = min n (lo + chunk) in
  if hi > lo then begin
    let schedule = !default_schedule in
    let ubs =
      List.init vpc (fun v ->
          Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) dt ub_tile))
    in
    let stage =
      List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) dt 16)
    in
    List.iteri
      (fun v slots ->
        let vlo, vhi = sub_block ~lo ~hi ~half v in
        if vhi > vlo then begin
          let acc = ref (Op.identity dt) in
          pipeline_tiles ctx ~schedule ~in_engine:(Engine.Vec_mte_in v)
            ~tile:ub_tile ~n:(vhi - vlo)
            ~load:(fun ~slot ~off ~len ->
              stage_in ctx ~schedule ~engine:(Engine.Vec_mte_in v) ~src:x
                ~src_off:(vlo + off) ~dst:slots.(slot) ~len ())
            ~work:(fun ~slot ~off:_ ~len ->
              acc :=
                Op.combine !acc
                  (Op.vec_reduce ctx ~vec:v ~src:slots.(slot) ~len ()))
            ();
          let st = List.nth stage v in
          Vec.set ctx ~vec:v st 0 !acc;
          Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:st ~dst:r
            ~dst_off:((i * vpc) + v) ~len:1 ()
        end)
      ubs
  end

(* Phase II: per-tile Hillis-Steele scan under the operator, seeded
   with the reduction of all preceding sub-blocks and the running
   carry. *)
let vec_phase2 (module Op : Scan_op.S) ~x ~y ~r ~chunk ~half ~n ~dt ctx =
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let lo = i * chunk in
  let hi = min n (lo + chunk) in
  if hi > lo then begin
    let rlen = Global_tensor.length r in
    let schedule = !default_schedule in
    let bufs =
      List.init vpc (fun v ->
          ( Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) dt ub_tile),
            Block.alloc ctx (Mem_kind.Ub v) dt ub_tile,
            Block.alloc ctx (Mem_kind.Ub v) (Global_tensor.dtype r) rlen ))
    in
    List.iteri
      (fun v (slots, tmp, rub) ->
        let vlo, vhi = sub_block ~lo ~hi ~half v in
        if vhi > vlo then begin
          Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:r ~dst:rub
            ~len:rlen ();
          let k = (i * vpc) + v in
          let base =
            if k = 0 then Op.identity dt
            else Op.vec_reduce ctx ~vec:v ~src:rub ~len:k ()
          in
          let partial = ref base in
          (* The scanned slot is also the store source (in-place
             propagation), so stores stay synchronous; loads still
             run ahead of compute. *)
          pipeline_tiles ctx ~schedule ~in_engine:(Engine.Vec_mte_in v)
            ~tile:ub_tile ~n:(vhi - vlo)
            ~load:(fun ~slot ~off ~len ->
              stage_in ctx ~schedule ~engine:(Engine.Vec_mte_in v) ~src:x
                ~src_off:(vlo + off) ~dst:slots.(slot) ~len ())
            ~work:(fun ~slot ~off ~len ->
              let ub = slots.(slot) in
              Kernel_util.hillis_steele_tile ctx ~vec:v ~op:Op.vec_binop
                ~buf:ub ~tmp ~len;
              partial :=
                Vec.scan_rows ctx ~vec:v ~op:Op.vec_binop ~buf:ub ~len ~s:len
                  ~init:!partial ();
              Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:ub ~dst:y
                ~dst_off:(vlo + off) ~len ())
            ()
        end)
      bufs
  end

let run_vec_blocks (module Op : Scan_op.S) ?blocks ~kernel_name ~suffix device
    x =
  let dt = Global_tensor.dtype x in
  if not (List.exists (Dtype.equal dt) Op.dtypes) then
    invalid_arg
      (Printf.sprintf "%s: unsupported dtype %s" kernel_name
         (Dtype.to_string dt));
  let n = Global_tensor.length x in
  if n = 0 then invalid_arg (Printf.sprintf "%s: empty input" kernel_name);
  let blocks =
    match blocks with
    | Some b -> b
    | None -> Scheduler.blocks (Scheduler.plan device ~n)
  in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let chunk, half =
    block_partition ~n ~blocks ~vpc ~chunk_align:ub_tile ~half_align:ub_tile
  in
  let name = Global_tensor.name x in
  let y = Device.alloc device dt n ~name:(name ^ suffix) in
  let r = Device.alloc device dt (blocks * vpc) ~name:(name ^ suffix ^ "_r") in
  (* The identity must pre-fill r so empty sub-blocks are neutral. *)
  if Device.functional device then Global_tensor.fill r (Op.identity dt);
  let stats =
    Launch.run_phases ~name:kernel_name device ~blocks
      [
        vec_phase1 (module Op) ~x ~r ~chunk ~half ~n ~dt;
        vec_phase2 (module Op) ~x ~y ~r ~chunk ~half ~n ~dt;
      ]
  in
  (y, stats)
