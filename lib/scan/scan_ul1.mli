(** ScanUL1 (Algorithm 2): single-cube scan via Equation 1.

    For each tile [z] of length [s^2], viewed as the [s x s] row-major
    matrix [A], the cube unit evaluates

    {[ scan(z) = A @ U_s + L_s^- @ A @ 1_s ]}

    as the sequence [C1 = A @ 1], [C2 = A @ U], [C2 += L^- @ C1]: the
    first two multiplications share the left operand [A] in L0A, and the
    third uses the cube accumulation buffer, so each input element is
    loaded into the cube core exactly once. A single vector core then
    only adds one scalar (the previous tile's last value) per whole
    tile, an [s]-fold reduction of vector work compared to ScanU. *)

val run :
  ?s:int ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** Default [s = 128]. Input must be [F16]; output is [F16]. *)

(** {2 Building blocks} (reused by the batched kernel) *)

type bufs
(** The per-block cube-side buffer set: ping-pong L0A input slots, the
    L0B operand, the C1 accumulator and ping-pong C2 result slots in
    L0C, and the U / L^- / 1 constants plus a C1 staging area in L1. *)

val alloc_bufs : Ascend.Block.t -> s:int -> bufs

val load_tile :
  Ascend.Block.t ->
  schedule:Scan_core.schedule ->
  x:Ascend.Global_tensor.t ->
  off:int ->
  len:int ->
  bufs:bufs ->
  slot:int ->
  unit
(** Stage tile [x\[off, off+len)] into L0A slot [slot] (async under a
    pipelined schedule) — the load stage of the walker. *)

val compute_tile :
  Ascend.Block.t ->
  schedule:Scan_core.schedule ->
  y:Ascend.Global_tensor.t ->
  off:int ->
  len:int ->
  s:int ->
  bufs:bufs ->
  slot:int ->
  unit
(** Evaluate Equation 1 over the staged slot and store C2 slot [slot]
    to [y\[off, off+len)] — the work stage of the walker. *)

val cube_tile :
  Ascend.Block.t ->
  x:Ascend.Global_tensor.t ->
  y:Ascend.Global_tensor.t ->
  off:int ->
  len:int ->
  s:int ->
  bufs:bufs ->
  unit
(** Whole tile with synchronous copies on slot 0 ([load_tile] then
    [compute_tile] under [Serial]), for callers outside the pipeline
    walker. *)
