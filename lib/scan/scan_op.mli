(** Associative operators the tiled-scan engine is generic over.

    A scan kernel is one tiling strategy; the monoid it scans under is
    an interchangeable module of this signature. The engine needs the
    algebra (identity, combine), the vector-engine spellings of the
    same operation (element-wise binop, broadcast-scalar fold, block
    reduction), the constant-matrix encoding that turns tile-local
    scans into a matmul on the cube core (when one exists), and the
    data types the operator is defined over. *)

module type S = sig
  val name : string

  val identity : Ascend.Dtype.t -> float
  (** Neutral element, per data type (e.g. the most negative
      representable value for [Max]). *)

  val combine : float -> float -> float
  (** Host-side fold, used for scalar carries and reference checksums.
      Must be associative with {!identity} as the neutral element. *)

  val vec_binop : Ascend.Vec.binop
  (** Element-wise tensor-tensor form ({!Ascend.Vec.binop}). *)

  val vec_scalar :
    Ascend.Block.t ->
    ?vec:int ->
    src:Ascend.Local_tensor.t ->
    ?src_off:int ->
    dst:Ascend.Local_tensor.t ->
    ?dst_off:int ->
    scalar:float ->
    len:int ->
    unit ->
    unit
  (** Tensor-scalar broadcast form (e.g. {!Ascend.Vec.adds} /
      {!Ascend.Vec.maxs}): folds one scalar into every element. *)

  val vec_reduce :
    Ascend.Block.t ->
    ?vec:int ->
    src:Ascend.Local_tensor.t ->
    ?src_off:int ->
    len:int ->
    unit ->
    float
  (** Whole-block reduction to a scalar (e.g. {!Ascend.Vec.reduce_sum}). *)

  val cube_encoding : Const_mat.which option
  (** Constant matrix [M] with [x @ M] = per-row local scans under this
      operator, or [None] when the operator has no matmul formulation
      (max/min over the reals have none — the cube core only
      multiplies-and-adds). *)

  val dtypes : Ascend.Dtype.t list
  (** Data types the operator's kernels accept. *)
end

module Sum : S
(** [+] over f16/f32 (and i8 through the McScan widening path);
    cube-encodable via the upper-triangular ones matrix. *)

module Max : S
(** [max] over f16/f32/i32; vector-only (no cube encoding). *)
