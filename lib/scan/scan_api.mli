(** Unified front end over the scan kernels.

    An algorithm is an {!Op_registry} entry: the former closed variant
    is gone, and any unary scan registered in the registry — including
    ones added by other libraries — dispatches through {!run} with no
    change here. *)

type algo = Op_registry.entry

val algo_of_string : string -> algo option
(** Resolve a registry name or alias to a unary scan entry (one tensor
    in, one out); batched/masked entries and non-scan operators resolve
    to [None]. *)

val algo_to_string : algo -> string
(** The canonical registry name. *)

val get : string -> algo
(** Like {!algo_of_string}, raising [Invalid_argument] on unknown
    names — for test and example code with known-good literals. *)

val all_algos : algo list
(** Every registered unary scan, in registration order. *)

val run :
  ?s:int ->
  ?exclusive:bool ->
  ?devices:int ->
  algo:algo ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** Dispatch through the registry. [devices] feeds the pod size of
    pod-backed entries ([dist_scan]) and is ignored by single-device
    kernels. Capability violations (exclusive on a non-supporting
    kernel, unsupported dtype) and operator-side parameter errors
    surface as [Invalid_argument]; use {!Op_registry.run} directly for
    the [result]-typed error path. *)

val check_against_reference :
  ?round:(float -> float) ->
  ?exclusive:bool ->
  ?expected:float array ->
  input:float array ->
  output:Ascend.Global_tensor.t ->
  unit ->
  (unit, string) result
(** Compare a kernel output against {!Reference} (or an explicit
    [expected] array, e.g. a max-scan reference), stopping at the first
    mismatch; the error carries that index and both values. Floats are
    compared by bit pattern so NaN outputs check cleanly against NaN
    references. *)

val check_scan :
  ?round:(float -> float) ->
  ?exclusive:bool ->
  algo:algo ->
  dtype:Ascend.Dtype.t ->
  input:float array ->
  output:Ascend.Global_tensor.t ->
  unit ->
  (unit, string) result
(** Monoid-aware {!check_against_reference}: the expected array is
    built from the algorithm's registered operator (sum, max, ...), so
    one check call works for every registry scan. *)
