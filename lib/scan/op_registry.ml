open Ascend

type caps = {
  dtypes : Dtype.t list;
  exclusive : bool;
  batched : bool;
  segmented : bool;
  masked : bool;
}

type config = {
  s : int option;
  exclusive : bool;
  blocks : int option;
  batch : int option;
  len : int option;
  bits : int option;
  k : int option;
  p : float option;
  theta : float option;
  seed : int option;
  devices : int option;
}

let default_config =
  {
    s = None;
    exclusive = false;
    blocks = None;
    batch = None;
    len = None;
    bits = None;
    k = None;
    p = None;
    theta = None;
    seed = None;
    devices = None;
  }

type input =
  | Tensor of Global_tensor.t
  | Masked of { x : Global_tensor.t; mask : Global_tensor.t }

type output = { y : Global_tensor.t option; aux : (string * float) list }

type entry = {
  name : string;
  aliases : string list;
  kind : [ `Scan | `Op ];
  caps : caps;
  monoid : (module Scan_op.S) option;
  describe : string;
  run : config -> Device.t -> input -> output * Stats.t;
}

(* Entries hold closures, so they must never be compared structurally;
   the name is the identity. *)
let equal a b = String.equal a.name b.name

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64
let order : entry list ref = ref []

let register e =
  List.iter
    (fun key ->
      if Hashtbl.mem registry key then
        invalid_arg
          (Printf.sprintf "Op_registry.register: duplicate operator name %S"
             key))
    (e.name :: e.aliases);
  List.iter (fun key -> Hashtbl.replace registry key e) (e.name :: e.aliases);
  order := e :: !order

let all () = List.rev !order
let find name = Hashtbl.find_opt registry name
let scans () = List.filter (fun e -> e.kind = `Scan) (all ())

(* Unary scans: one tensor in, one tensor out — the entries a generic
   cross-kernel test matrix or CLI scan dispatch can enumerate. *)
let unary_scans () =
  List.filter
    (fun e -> e.kind = `Scan && (not e.caps.batched) && not e.caps.masked)
    (all ())

let dtype_list dtypes = String.concat "/" (List.map Dtype.to_string dtypes)

let validate e cfg input =
  let dtype_ok dt = List.exists (Dtype.equal dt) e.caps.dtypes in
  let input_err =
    match input with
    | Tensor x ->
        if e.caps.masked then
          Some (Printf.sprintf "%s requires a mask/flags input" e.name)
        else if not (dtype_ok (Global_tensor.dtype x)) then
          Some
            (Printf.sprintf "%s: unsupported dtype %s (supported: %s)" e.name
               (Dtype.to_string (Global_tensor.dtype x))
               (dtype_list e.caps.dtypes))
        else None
    | Masked { x; mask = _ } ->
        if not e.caps.masked then
          Some (Printf.sprintf "%s takes a single tensor input" e.name)
        else if not (dtype_ok (Global_tensor.dtype x)) then
          Some
            (Printf.sprintf "%s: unsupported dtype %s (supported: %s)" e.name
               (Dtype.to_string (Global_tensor.dtype x))
               (dtype_list e.caps.dtypes))
        else None
  in
  match input_err with
  | Some msg -> Error msg
  | None ->
      if cfg.exclusive && not e.caps.exclusive then
        Error (Printf.sprintf "%s does not support exclusive scans" e.name)
      else if e.caps.batched && (cfg.batch = None || cfg.len = None) then
        Error (Printf.sprintf "%s requires batch and len" e.name)
      else
        match cfg.devices with
        | Some v when v < 1 ->
            Error (Printf.sprintf "devices: device count must be >= 1 (got %d)" v)
        | _ -> Ok ()

(* The one source of truth for the README operator table: the CLI's
   --list-ops prints exactly this, and CI diffs it against the README
   section so the two can never drift. *)
let pp_markdown_table fmt () =
  Format.fprintf fmt "| Operator | Aliases | Kind | Dtypes | Capabilities | Description |@.";
  Format.fprintf fmt "|---|---|---|---|---|---|@.";
  List.iter
    (fun e ->
      let capabilities =
        List.filter_map
          (fun (flag, label) -> if flag then Some label else None)
          [
            (e.caps.exclusive, "exclusive");
            (e.caps.batched, "batched");
            (e.caps.segmented, "segmented");
            (e.caps.masked, "masked");
          ]
      in
      let or_dash = function [] -> "-" | l -> String.concat ", " l in
      Format.fprintf fmt "| %s | %s | %s | %s | %s | %s |@." e.name
        (or_dash e.aliases)
        (match e.kind with `Scan -> "scan" | `Op -> "op")
        (String.concat ", " (List.map Dtype.to_string e.caps.dtypes))
        (or_dash capabilities) e.describe)
    (all ())

let run e cfg device input =
  match validate e cfg input with
  | Error _ as err -> err
  | Ok () -> (
      match e.run cfg device input with
      | out -> Ok out
      | exception Invalid_argument msg -> Error msg)

(* ------------------------------------------------------------------ *)
(* The scan kernels register here (in the defining library, so linking
   the library always populates them — side-effect registration in a
   separate unreferenced module would be dropped by the linker). *)

let tensor_in = function
  | Tensor x -> x
  | Masked _ -> invalid_arg "expected a single tensor input"

let simple run1 cfg device input =
  let y, st = run1 cfg device (tensor_in input) in
  ({ y = Some y; aux = [] }, st)

let caps ?(dtypes = [ Dtype.F16 ]) ?(exclusive = false) ?(batched = false)
    ?(segmented = false) ?(masked = false) () =
  { dtypes; exclusive; batched; segmented; masked }

let sum = Some (module Scan_op.Sum : Scan_op.S)

let () =
  register
    {
      name = "vec_only";
      aliases = [ "cumsum" ];
      kind = `Scan;
      caps = caps ~dtypes:[ Dtype.F16; Dtype.F32 ] ();
      monoid = sum;
      describe = "CumSum baseline: single block, vector core only";
      (* [s] is ignored: the CumSum tile shape is fixed at 128 x 128. *)
      run = simple (fun _cfg device x -> Scan_vec_only.run device x);
    };
  register
    {
      name = "scanu";
      aliases = [ "u"; "scan_u" ];
      kind = `Scan;
      caps = caps ();
      monoid = sum;
      describe = "Algorithm 1: cube local scans + vector propagation";
      run = simple (fun cfg device x -> Scan_u.run ?s:cfg.s device x);
    };
  register
    {
      name = "scanul1";
      aliases = [ "ul1"; "scan_ul1" ];
      kind = `Scan;
      caps = caps ();
      monoid = sum;
      describe = "Algorithm 2: three-matmul tiles staged through L1";
      run = simple (fun cfg device x -> Scan_ul1.run ?s:cfg.s device x);
    };
  register
    {
      name = "mcscan";
      aliases = [ "mc" ];
      kind = `Scan;
      caps = caps ~dtypes:[ Dtype.F16; Dtype.I8 ] ~exclusive:true ();
      monoid = sum;
      describe = "Algorithm 3: two-phase multi-core scan";
      run =
        simple (fun cfg device x ->
            Mcscan.run ?s:cfg.s ?blocks:cfg.blocks ~exclusive:cfg.exclusive
              device x);
    };
  register
    {
      name = "tcu";
      aliases = [];
      kind = `Scan;
      caps = caps ();
      monoid = sum;
      describe = "Recursive matmul-only scan (TCU-model extension)";
      run = simple (fun cfg device x -> Tcu_scan.run ?s:cfg.s device x);
    };
  register
    {
      name = "max_scan";
      aliases = [ "maxscan"; "max" ];
      kind = `Scan;
      caps = caps ~dtypes:Scan_op.Max.(dtypes) ();
      monoid = Some (module Scan_op.Max : Scan_op.S);
      describe = "Running maximum: vector-only two-phase engine";
      run = simple (fun cfg device x -> Max_scan.run ?blocks:cfg.blocks device x);
    };
  register
    {
      name = "segmented_scan";
      aliases = [ "segscan" ];
      kind = `Scan;
      caps = caps ~segmented:true ~masked:true ();
      monoid = sum;
      describe = "Segmented sum over (value, start-flag) pairs";
      run =
        (fun cfg device input ->
          match input with
          | Masked { x; mask } ->
              let y, st =
                Segmented_scan.run ?blocks:cfg.blocks device ~x ~flags:mask ()
              in
              ({ y = Some y; aux = [] }, st)
          | Tensor _ ->
              invalid_arg "segmented_scan requires a mask/flags input");
    };
  register
    {
      name = "batched_u";
      aliases = [ "bu" ];
      kind = `Scan;
      caps = caps ~batched:true ();
      monoid = sum;
      describe = "Batched ScanU: row pairs per block, both vector cores";
      run =
        simple (fun cfg device x ->
            let batch = Option.get cfg.batch and len = Option.get cfg.len in
            Batched_scan.run_u ?s:cfg.s device ~batch ~len x);
    };
  register
    {
      name = "batched_ul1";
      aliases = [ "bul1" ];
      kind = `Scan;
      caps = caps ~batched:true ();
      monoid = sum;
      describe = "Batched ScanUL1: one full row scan per block";
      run =
        simple (fun cfg device x ->
            let batch = Option.get cfg.batch and len = Option.get cfg.len in
            Batched_scan.run_ul1 ?s:cfg.s device ~batch ~len x);
    };
  register
    {
      name = "dist_scan";
      aliases = [ "dscan"; "pod_scan" ];
      kind = `Scan;
      caps = caps ();
      monoid = sum;
      describe = "Distributed pod scan: local scans + link prefix exchange";
      (* The caller's device becomes the pod's primary, so its armed
         trace, faults and deadline apply to the shards it executes. *)
      run =
        simple (fun cfg device x ->
            let devices = Option.value ~default:2 cfg.devices in
            let pod =
              Pod.create_with ~topology:Pod.Ring ~primary:device
                ~devices ()
            in
            let r = Dist_scan.run ?s:cfg.s pod x in
            (r.Dist_scan.y, r.Dist_scan.stats));
    }
