open Ascend

let ub_tile = 8192

type bufs = {
  v : Local_tensor.t array;  (* 2 ping-pong value slots *)
  f : Local_tensor.t array;  (* 2 ping-pong flag slots *)
  tmp_v : Local_tensor.t;
  tmp_f : Local_tensor.t;
  zero : Local_tensor.t;
}

(* The value/flag staging tiles are doubled so the copy-in of tile
   [t+1] overlaps the segmented scan of tile [t]; the scratch buffers
   are only live inside one tile's compute and stay single. *)
let alloc_bufs ctx ~vec =
  let ub dt n = Block.alloc ctx (Mem_kind.Ub vec) dt n in
  let b =
    {
      v = Array.init 2 (fun _ -> ub Dtype.F16 ub_tile);
      f = Array.init 2 (fun _ -> ub Dtype.I8 ub_tile);
      tmp_v = ub Dtype.F16 ub_tile;
      tmp_f = ub Dtype.I8 ub_tile;
      zero = ub Dtype.F16 ub_tile;
    }
  in
  Vec.dup ctx ~vec ~dst:b.zero ~scalar:0.0 ~len:ub_tile ();
  b

(* Load stage of the walker: stage one tile's values and flags into
   slot [slot] (both copies join the same commit group, so one
   wait_group covers the pair). *)
let load_tile ctx ~schedule ~vec ~b ~x ~flags ~off ~len ~slot =
  Scan_core.stage_in ctx ~schedule ~engine:(Engine.Vec_mte_in vec) ~src:x
    ~src_off:off ~dst:b.v.(slot) ~len ();
  Scan_core.stage_in ctx ~schedule ~engine:(Engine.Vec_mte_in vec) ~src:flags
    ~src_off:off ~dst:b.f.(slot) ~len ()

(* Work stage: scan the staged pairs in place and return (last value
   with [base] applied, tile had a boundary). The applied last value is
   the carry into the next tile. *)
let compute_tile ctx ~vec ~b ~len ~base ~slot =
  Kernel_util.segmented_hillis_steele_tile ctx ~vec ~v:b.v.(slot)
    ~f:b.f.(slot) ~tmp_v:b.tmp_v ~tmp_f:b.tmp_f ~zero:b.zero ~len;
  (* Elements not preceded by an in-tile boundary continue the incoming
     segment: add the carry there. *)
  Vec.adds ctx ~vec ~src:b.v.(slot) ~dst:b.tmp_v ~scalar:base ~len ();
  Vec.select ctx ~vec ~mask:b.f.(slot) ~src0:b.v.(slot) ~src1:b.tmp_v
    ~dst:b.v.(slot) ~len ();
  let last_v = Vec.get ctx ~vec b.v.(slot) (len - 1) in
  let last_f = Vec.get ctx ~vec b.f.(slot) (len - 1) <> 0.0 in
  (last_v, last_f)

(* Phase I: per-sub-block carries (end value from base 0, had-boundary
   flag) into rv / rf — the recomputation pass. Each vector core runs
   its own 2-stage pipeline; cores overlap because their lanes are
   independent. *)
let phase1 ~x ~flags ~rv ~rf ~chunk ~half ~n ctx =
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let lo = i * chunk in
  let hi = min n (lo + chunk) in
  if hi > lo then begin
    let schedule = Scan_core.current_schedule () in
    let bufs = List.init vpc (fun v -> alloc_bufs ctx ~vec:v) in
    let stage_v =
      List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) Dtype.F32 16)
    in
    let stage_f =
      List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) Dtype.I8 16)
    in
    List.iteri
      (fun v b ->
        let vlo, vhi = Scan_core.sub_block ~lo ~hi ~half v in
        if vhi > vlo then begin
          let carry = ref 0.0 and seen = ref false in
          Scan_core.pipeline_tiles ctx ~schedule
            ~in_engine:(Engine.Vec_mte_in v) ~tile:ub_tile ~n:(vhi - vlo)
            ~load:(fun ~slot ~off ~len ->
              load_tile ctx ~schedule ~vec:v ~b ~x ~flags ~off:(vlo + off)
                ~len ~slot)
            ~work:(fun ~slot ~off:_ ~len ->
              let last_v, last_f =
                compute_tile ctx ~vec:v ~b ~len ~base:!carry ~slot
              in
              carry := last_v;
              seen := !seen || last_f)
            ();
          let k = (i * vpc) + v in
          Vec.set ctx ~vec:v (List.nth stage_v v) 0 !carry;
          Vec.set ctx ~vec:v (List.nth stage_f v) 0
            (if !seen then 1.0 else 0.0);
          Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v)
            ~src:(List.nth stage_v v) ~dst:rv ~dst_off:k ~len:1 ();
          Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v)
            ~src:(List.nth stage_f v) ~dst:rf ~dst_off:k ~len:1 ()
        end)
      bufs
  end

(* Phase II: fold the carries of all preceding sub-blocks, then rescan
   each tile applying the running carry and write the output. The scan
   rewrites the staged tile in place, so stores stay synchronous. *)
let phase2 ~x ~flags ~y ~rv ~rf ~chunk ~half ~n ctx =
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let lo = i * chunk in
  let hi = min n (lo + chunk) in
  if hi > lo then begin
    let schedule = Scan_core.current_schedule () in
    let rlen = Global_tensor.length rv in
    let bufs = List.init vpc (fun v -> alloc_bufs ctx ~vec:v) in
    let rvub =
      List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) Dtype.F32 rlen)
    in
    let rfub =
      List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) Dtype.I8 rlen)
    in
    List.iteri
      (fun v b ->
        let vlo, vhi = Scan_core.sub_block ~lo ~hi ~half v in
        if vhi > vlo then begin
          let k = (i * vpc) + v in
          Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:rv
            ~dst:(List.nth rvub v) ~len:rlen ();
          Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:rf
            ~dst:(List.nth rfub v) ~len:rlen ();
          (* Serial fold over at most blocks*vpc carries. *)
          let base = ref 0.0 in
          for j = 0 to k - 1 do
            let vj = Vec.get ctx ~vec:v (List.nth rvub v) j in
            let fj = Vec.get ctx ~vec:v (List.nth rfub v) j in
            base := Fp16.round (if fj <> 0.0 then vj else !base +. vj)
          done;
          let carry = ref !base in
          Scan_core.pipeline_tiles ctx ~schedule
            ~in_engine:(Engine.Vec_mte_in v) ~tile:ub_tile ~n:(vhi - vlo)
            ~load:(fun ~slot ~off ~len ->
              load_tile ctx ~schedule ~vec:v ~b ~x ~flags ~off:(vlo + off)
                ~len ~slot)
            ~work:(fun ~slot ~off ~len ->
              let last_v, _ =
                compute_tile ctx ~vec:v ~b ~len ~base:!carry ~slot
              in
              carry := last_v;
              Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v)
                ~src:b.v.(slot) ~dst:y ~dst_off:(vlo + off) ~len ())
            ()
        end)
      bufs
  end

let run ?blocks device ~x ~flags () =
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Segmented_scan.run: x must be f16";
  if not (Dtype.equal (Global_tensor.dtype flags) Dtype.I8) then
    invalid_arg "Segmented_scan.run: flags must be i8";
  let n = Global_tensor.length x in
  if Global_tensor.length flags <> n then
    invalid_arg "Segmented_scan.run: length mismatch";
  if n = 0 then invalid_arg "Segmented_scan.run: empty input";
  let blocks =
    match blocks with
    | Some b -> b
    | None -> Scheduler.blocks (Scheduler.plan device ~n)
  in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let chunk, half =
    Scan_core.block_partition ~n ~blocks ~vpc ~chunk_align:ub_tile
      ~half_align:ub_tile
  in
  let name = Global_tensor.name x in
  let y = Device.alloc device Dtype.F16 n ~name:(name ^ "_segscan") in
  let rv = Device.alloc device Dtype.F32 (blocks * vpc) ~name:(name ^ "_seg_rv") in
  let rf = Device.alloc device Dtype.I8 (blocks * vpc) ~name:(name ^ "_seg_rf") in
  let stats =
    Launch.run_phases ~name:"segmented_scan" device ~blocks
      [
        phase1 ~x ~flags ~rv ~rf ~chunk ~half ~n;
        phase2 ~x ~flags ~y ~rv ~rf ~chunk ~half ~n;
      ]
  in
  (y, stats)
