(** Operator registry: one extension point for kernels and operators.

    Every scan kernel (this library) and scan-based operator (the [ops]
    library, via its [Ops_registry.install]) registers a named entry
    with its aliases, capabilities, operator monoid, and a uniform run
    function. Front-ends — CLI subcommands, bench tables, cross-kernel
    test matrices — enumerate the registry instead of keeping parallel
    hand-maintained lists, and capability queries replace ad-hoc
    pattern matching on a closed variant.

    The scan kernels register at module initialisation of this module
    itself, so merely linking the [scan] library populates them. *)

open Ascend

type caps = {
  dtypes : Dtype.t list;  (** Input data types accepted. *)
  exclusive : bool;  (** Supports exclusive scans. *)
  batched : bool;  (** Needs [batch]/[len] config; input is row-major. *)
  segmented : bool;  (** Computes per-segment results. *)
  masked : bool;  (** Requires a second mask/flags input tensor. *)
}

type config = {
  s : int option;  (** Tile side (kernel default when [None]). *)
  exclusive : bool;
  blocks : int option;
  batch : int option;
  len : int option;
  bits : int option;  (** Radix key width. *)
  k : int option;  (** Selection count (top-k). *)
  p : float option;  (** Nucleus mass (top-p). *)
  theta : float option;  (** Uniform draw for sampling. *)
  seed : int option;
  devices : int option;
      (** Pod size for distributed entries (must be [>= 1] when set;
          others ignore it). *)
}

val default_config : config
(** Everything unset: each operator applies its own defaults. *)

type input =
  | Tensor of Global_tensor.t
  | Masked of { x : Global_tensor.t; mask : Global_tensor.t }

type output = {
  y : Global_tensor.t option;
      (** Main result tensor ([None] for pure-scalar operators). *)
  aux : (string * float) list;
      (** Scalar results (e.g. [("token", 42.)], [("count", n)]). *)
}

type entry = {
  name : string;  (** Canonical name, unique across the registry. *)
  aliases : string list;  (** Alternate spellings, also unique. *)
  kind : [ `Scan | `Op ];
  caps : caps;
  monoid : (module Scan_op.S) option;
      (** The associative operator a scan entry runs under ([None] for
          non-scan operators); front-ends use it for references and
          checksums. *)
  describe : string;  (** One-line description for [--list-ops]. *)
  run : config -> Device.t -> input -> output * Stats.t;
      (** May raise [Invalid_argument] on bad parameters; use {!run}
          for the uniform [Error] path. *)
}

val equal : entry -> entry -> bool
(** By {!entry.name}. Entries contain closures — never compare them
    with the polymorphic [=]. *)

val register : entry -> unit
(** Raises [Invalid_argument] when a name or alias is already taken. *)

val all : unit -> entry list
(** Every entry, in registration order. *)

val find : string -> entry option
(** Look up by canonical name or alias. *)

val scans : unit -> entry list
(** The [`Scan]-kind entries. *)

val unary_scans : unit -> entry list
(** Scan entries taking one tensor in, one tensor out (not batched,
    not masked) — what a cross-kernel matrix enumerates. *)

val validate : entry -> config -> input -> (unit, string) result
(** Capability pre-check: input arity, dtype support, exclusive
    support, batched parameters — everything knowable without
    launching. *)

val pp_markdown_table : Format.formatter -> unit -> unit
(** The full registry as a GitHub-markdown table (name, aliases, kind,
    dtypes, capabilities, description) in registration order — what the
    CLI's [--list-ops] prints and what the README embeds; CI diffs the
    two. *)

val run :
  entry ->
  config ->
  Device.t ->
  input ->
  (output * Stats.t, string) result
(** {!validate}, then the entry's run function with [Invalid_argument]
    mapped onto [Error] — the uniform error path front-ends rely on
    (the CLI turns [Error] into exit 2). *)
