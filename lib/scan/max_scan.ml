(* Inclusive max-scan: the vector-only two-phase engine instantiated
   with the Max operator (max has no matmul encoding, so the cube
   kernels do not apply). *)

let run ?blocks device x =
  Scan_core.run_vec_blocks
    (module Scan_op.Max)
    ?blocks ~kernel_name:"max_scan" ~suffix:"_maxscan" device x
