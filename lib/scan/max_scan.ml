open Ascend

let ub_tile = 8192

(* The most negative representable value acts as the identity. *)
let identity dt = Dtype.min_value dt

(* Phase I: per-vector-sub-block max reductions into [r]. *)
let phase1 ~x ~r ~chunk ~half ~n ~dt ctx =
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let lo = i * chunk in
  let hi = min n (lo + chunk) in
  if hi > lo then begin
    let ubs =
      List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) dt ub_tile)
    in
    let stage =
      List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) dt 16)
    in
    let vtiles = Kernel_util.ceil_div half ub_tile in
    Block.pipelined ctx ~iters:(max 1 vtiles) (fun () ->
        List.iteri
          (fun v ub ->
            let vlo = lo + (v * half) in
            let vhi = min hi (vlo + half) in
            if vhi > vlo then begin
              let acc = ref (identity dt) in
              let t = ref vlo in
              while !t < vhi do
                let len = min ub_tile (vhi - !t) in
                Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:x
                  ~src_off:!t ~dst:ub ~len ();
                acc := Float.max !acc (Vec.reduce_max ctx ~vec:v ~src:ub ~len ());
                t := !t + ub_tile
              done;
              let st = List.nth stage v in
              Vec.set ctx ~vec:v st 0 !acc;
              Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:st ~dst:r
                ~dst_off:((i * vpc) + v) ~len:1 ()
            end)
          ubs)
  end

(* Phase II: per-tile Hillis-Steele max scan, seeded with the max of
   all preceding sub-blocks and the running carry. *)
let phase2 ~x ~y ~r ~chunk ~half ~n ~dt ctx =
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let lo = i * chunk in
  let hi = min n (lo + chunk) in
  if hi > lo then begin
    let rlen = Global_tensor.length r in
    let bufs =
      List.init vpc (fun v ->
          ( Block.alloc ctx (Mem_kind.Ub v) dt ub_tile,
            Block.alloc ctx (Mem_kind.Ub v) dt ub_tile,
            Block.alloc ctx (Mem_kind.Ub v) (Global_tensor.dtype r) rlen ))
    in
    let vtiles = Kernel_util.ceil_div half ub_tile in
    Block.pipelined ctx ~iters:(max 1 vtiles) (fun () ->
        List.iteri
          (fun v (ub, tmp, rub) ->
            let vlo = lo + (v * half) in
            let vhi = min hi (vlo + half) in
            if vhi > vlo then begin
              Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:r ~dst:rub
                ~len:rlen ();
              let k = (i * vpc) + v in
              let base =
                if k = 0 then identity dt
                else Vec.reduce_max ctx ~vec:v ~src:rub ~len:k ()
              in
              let partial = ref base in
              let t = ref vlo in
              while !t < vhi do
                let len = min ub_tile (vhi - !t) in
                Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:x
                  ~src_off:!t ~dst:ub ~len ();
                Kernel_util.hillis_steele_tile ctx ~vec:v ~op:Vec.Max ~buf:ub
                  ~tmp ~len;
                Vec.maxs ctx ~vec:v ~src:ub ~dst:ub ~scalar:!partial ~len ();
                partial := Vec.get ctx ~vec:v ub (len - 1);
                Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:ub ~dst:y
                  ~dst_off:!t ~len ();
                t := !t + ub_tile
              done
            end)
          bufs)
  end

let run ?blocks device x =
  let dt = Global_tensor.dtype x in
  (match dt with
  | Dtype.F16 | Dtype.F32 | Dtype.I32 -> ()
  | d ->
      invalid_arg
        (Printf.sprintf "Max_scan.run: unsupported dtype %s" (Dtype.to_string d)));
  let n = Global_tensor.length x in
  if n = 0 then invalid_arg "Max_scan.run: empty input";
  let blocks =
    match blocks with
    | Some b -> b
    | None -> Scheduler.blocks (Scheduler.plan device ~n)
  in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let chunk = Kernel_util.round_up (Kernel_util.ceil_div n blocks) ub_tile in
  let half = Kernel_util.round_up (Kernel_util.ceil_div chunk vpc) ub_tile in
  let name = Global_tensor.name x in
  let y = Device.alloc device dt n ~name:(name ^ "_maxscan") in
  let r = Device.alloc device dt (blocks * vpc) ~name:(name ^ "_maxscan_r") in
  (* The identity must pre-fill r so empty sub-blocks are neutral. *)
  if Device.functional device then
    for k = 0 to (blocks * vpc) - 1 do
      Global_tensor.set r k (identity dt)
    done;
  let stats =
    Launch.run_phases ~name:"max_scan" device ~blocks
      [
        phase1 ~x ~r ~chunk ~half ~n ~dt;
        phase2 ~x ~y ~r ~chunk ~half ~n ~dt;
      ]
  in
  (y, stats)
