(** Batched scans: the prefix sum of a batch of equal-length arrays.

    The input is one [F16] global tensor in row-major [(batch, len)]
    layout; each row is scanned independently.

    Two schedules are provided, mirroring Section 4.2:

    - {!run_u} builds on ScanU and exploits the 2-to-1
      vector-to-cube-core ratio of the split 910B architecture: each
      cube core computes the tile-local scans of {e two} batch rows,
      and the AI core's two vector cores complete the prefix of one row
      each. All 40 vector cores are busy once the batch size reaches
      twice the AI-core count.
    - {!run_ul1} extends ScanUL1: each AI core runs a complete ScanUL1
      on a separate row, so at most one vector core per AI core is used
      but the per-row vector work is [s] times smaller.

    Their complementary regimes are the subject of Figures 5 and 12:
    ScanU wins for large batches of short rows, ScanUL1 for small
    batches of long rows.

    Both take an optional row window and output tensor, the substrate
    of the checkpointed runner in [Runtime.Resilient.batched_scan]:
    [~rows:(lo, hi)] scans only rows [lo <= j < hi] (writing into the
    matching slice of [y] and leaving other rows untouched), and
    [~y] reuses a caller-provided [(batch * len)] F16 output so a
    resumed run keeps the rows already finished. Defaults reproduce
    the plain full-batch behaviour bit-for-bit. *)

val run_u :
  ?s:int ->
  ?rows:int * int ->
  ?y:Ascend.Global_tensor.t ->
  Ascend.Device.t ->
  batch:int ->
  len:int ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t

val run_ul1 :
  ?s:int ->
  ?rows:int * int ->
  ?y:Ascend.Global_tensor.t ->
  Ascend.Device.t ->
  batch:int ->
  len:int ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t
