open Ascend

type bufs = {
  l0a : Local_tensor.t;
  l0b : Local_tensor.t;
  c1 : Local_tensor.t;
  c2 : Local_tensor.t;
  c1_l1 : Local_tensor.t;
  u_l1 : Local_tensor.t;
  lminus_l1 : Local_tensor.t;
  ones_l1 : Local_tensor.t;
}

let alloc_bufs ctx ~s =
  let tile = s * s in
  {
    l0a = Block.alloc ctx Mem_kind.L0a Dtype.F16 tile;
    l0b = Block.alloc ctx Mem_kind.L0b Dtype.F16 tile;
    c1 = Block.alloc ctx Mem_kind.L0c Dtype.F32 tile;
    c2 = Block.alloc ctx Mem_kind.L0c Dtype.F32 tile;
    c1_l1 = Block.alloc ctx Mem_kind.L1 Dtype.F16 tile;
    u_l1 =
      Scan_core.load_cube_encoding
        (module Scan_op.Sum)
        ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L1 ~dtype:Dtype.F16 ~s;
    lminus_l1 =
      Const_mat.load ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L1
        ~dtype:Dtype.F16 ~s Const_mat.Strict_lower;
    ones_l1 =
      Const_mat.load ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L1
        ~dtype:Dtype.F16 ~s Const_mat.Ones;
  }

(* One ScanUL1 tile (Algorithm 2, lines 6-13): local scan of length
   [len] <= s^2 at [x[off ..]], written to [y[off ..]]. For tail tiles
   with fewer than [s] rows the L^- operand is the [rows x rows]
   leading submatrix (the strided L1 -> L0A copy extracts it; we charge
   the full-matrix move, which is conservative). *)
let cube_tile ctx ~x ~y ~off ~len ~s ~bufs =
  let rows = Kernel_util.ceil_div len s in
  Mte.copy_in ctx ~engine:Engine.Cube_mte_in ~src:x ~src_off:off ~dst:bufs.l0a
    ~len ();
  (* C1 = A @ 1 (accumulation off; A stays resident in L0A). *)
  Mte.copy_local ctx ~engine:Engine.Cube ~src:bufs.ones_l1 ~dst:bufs.l0b
    ~len:(s * s) ();
  Cube.mmad ctx ~a:bufs.l0a ~b:bufs.l0b ~c:bufs.c1 ~m:rows ~k:s ~n:s
    ~accumulate:false;
  (* Stage C1 in L1, casting the fp32 accumulator back to fp16 so it
     can be a matmul operand again. *)
  Mte.copy_local ctx ~engine:Engine.Cube ~src:bufs.c1 ~dst:bufs.c1_l1
    ~len:(rows * s) ();
  (* C2 = A @ U. *)
  Mte.copy_local ctx ~engine:Engine.Cube ~src:bufs.u_l1 ~dst:bufs.l0b
    ~len:(s * s) ();
  Cube.mmad ctx ~a:bufs.l0a ~b:bufs.l0b ~c:bufs.c2 ~m:rows ~k:s ~n:s
    ~accumulate:false;
  (* C2 += L^- @ C1 (accumulation on; all input buffers free after). *)
  Mte.copy_local ctx ~engine:Engine.Cube ~src:bufs.lminus_l1 ~dst:bufs.l0a
    ~len:(s * s) ();
  Mte.copy_local ctx ~engine:Engine.Cube ~src:bufs.c1_l1 ~dst:bufs.l0b
    ~len:(rows * s) ();
  Cube.mmad ctx ~a:bufs.l0a ~b:bufs.l0b ~c:bufs.c2 ~m:rows ~k:rows ~n:s
    ~accumulate:true;
  Mte.copy_out ctx ~engine:Engine.Cube_mte_out ~src:bufs.c2 ~dst:y
    ~dst_off:off ~len ()

let run ?(s = 128) device x =
  if s <= 0 then invalid_arg "Scan_ul1.run: s must be positive";
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Scan_ul1.run: input must be f16";
  let n = Global_tensor.length x in
  let y =
    Device.alloc device Dtype.F16 n ~name:(Global_tensor.name x ^ "_scanul1")
  in
  let tile = s * s in
  let body ctx =
    let bufs = alloc_bufs ctx ~s in
    let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 tile in
    let partial = ref (Scan_op.Sum.identity Dtype.F16) in
    Scan_core.foreach_tile ctx ~tile ~n (fun ~off ~len ->
        cube_tile ctx ~x ~y ~off ~len ~s ~bufs;
        (* Vector unit: the whole tile is one propagation row, so the
           epilogue is a single scalar fold. *)
        Scan_core.finish_tile
          (module Scan_op.Sum)
          ctx ~src:y ~ub ~dst:y ~off ~len ~s:tile ~partial ())
  in
  let stats = Launch.run ~name:"scan_ul1" device ~blocks:1 body in
  (y, stats)
