open Ascend

type bufs = {
  l0a : Local_tensor.t array;  (* 2 ping-pong input/operand slots *)
  l0b : Local_tensor.t;
  c1 : Local_tensor.t;
  c2 : Local_tensor.t array;  (* 2 ping-pong result accumulators *)
  c1_l1 : Local_tensor.t;
  u_l1 : Local_tensor.t;
  lminus_l1 : Local_tensor.t;
  ones_l1 : Local_tensor.t;
}

(* Two f16 input slots fill L0A exactly (2 x 32 KB); C1 plus two C2
   slots take 192 of L0C's 256 KB. The doubled slots are what let the
   tile walker overlap copy-in, the mmad chain and copy-out across
   tile iterations. *)
let alloc_bufs ctx ~s =
  let tile = s * s in
  {
    l0a = Array.init 2 (fun _ -> Block.alloc ctx Mem_kind.L0a Dtype.F16 tile);
    l0b = Block.alloc ctx Mem_kind.L0b Dtype.F16 tile;
    c1 = Block.alloc ctx Mem_kind.L0c Dtype.F32 tile;
    c2 = Array.init 2 (fun _ -> Block.alloc ctx Mem_kind.L0c Dtype.F32 tile);
    c1_l1 = Block.alloc ctx Mem_kind.L1 Dtype.F16 tile;
    u_l1 =
      Scan_core.load_cube_encoding
        (module Scan_op.Sum)
        ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L1 ~dtype:Dtype.F16 ~s;
    lminus_l1 =
      Const_mat.load ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L1
        ~dtype:Dtype.F16 ~s Const_mat.Strict_lower;
    ones_l1 =
      Const_mat.load ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L1
        ~dtype:Dtype.F16 ~s Const_mat.Ones;
  }

(* One ScanUL1 tile (Algorithm 2, lines 6-13), split into the pipeline
   stages the walker schedules: [load_tile] stages the input into L0A
   slot [slot]; [compute_tile] runs the three matmuls and stores C2.
   For tail tiles with fewer than [s] rows the L^- operand is the
   [rows x rows] leading submatrix (the strided L1 -> L0A copy extracts
   it; we charge the full-matrix move, which is conservative). *)
let load_tile ctx ~schedule ~x ~off ~len ~bufs ~slot =
  Scan_core.stage_in ctx ~schedule ~engine:Engine.Cube_mte_in ~src:x
    ~src_off:off ~dst:bufs.l0a.(slot) ~len ()

let compute_tile ctx ~schedule ~y ~off ~len ~s ~bufs ~slot =
  let rows = Kernel_util.ceil_div len s in
  let l0a = bufs.l0a.(slot) and c2 = bufs.c2.(slot) in
  (* C1 = A @ 1 (accumulation off; A stays resident in L0A). *)
  Mte.copy_local ctx ~engine:Engine.Cube ~src:bufs.ones_l1 ~dst:bufs.l0b
    ~len:(s * s) ();
  Cube.mmad ctx ~a:l0a ~b:bufs.l0b ~c:bufs.c1 ~m:rows ~k:s ~n:s
    ~accumulate:false;
  (* Stage C1 in L1, casting the fp32 accumulator back to fp16 so it
     can be a matmul operand again. *)
  Mte.copy_local ctx ~engine:Engine.Cube ~src:bufs.c1 ~dst:bufs.c1_l1
    ~len:(rows * s) ();
  (* C2 = A @ U. *)
  Mte.copy_local ctx ~engine:Engine.Cube ~src:bufs.u_l1 ~dst:bufs.l0b
    ~len:(s * s) ();
  Cube.mmad ctx ~a:l0a ~b:bufs.l0b ~c:c2 ~m:rows ~k:s ~n:s ~accumulate:false;
  (* C2 += L^- @ C1 (accumulation on; all input buffers free after). *)
  Mte.copy_local ctx ~engine:Engine.Cube ~src:bufs.lminus_l1 ~dst:l0a
    ~len:(s * s) ();
  Mte.copy_local ctx ~engine:Engine.Cube ~src:bufs.c1_l1 ~dst:bufs.l0b
    ~len:(rows * s) ();
  Cube.mmad ctx ~a:l0a ~b:bufs.l0b ~c:c2 ~m:rows ~k:rows ~n:s ~accumulate:true;
  Scan_core.stage_out ctx ~schedule ~engine:Engine.Cube_mte_out ~src:c2 ~dst:y
    ~dst_off:off ~len ()

(* Whole-tile form for callers that run outside the pipeline walker
   (the TCU carry-tree kernel): synchronous copies, slot 0. *)
let cube_tile ctx ~x ~y ~off ~len ~s ~bufs =
  load_tile ctx ~schedule:Scan_core.Serial ~x ~off ~len ~bufs ~slot:0;
  compute_tile ctx ~schedule:Scan_core.Serial ~y ~off ~len ~s ~bufs ~slot:0

let run ?(s = 128) device x =
  if s <= 0 then invalid_arg "Scan_ul1.run: s must be positive";
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Scan_ul1.run: input must be f16";
  let n = Global_tensor.length x in
  let y =
    Device.alloc device Dtype.F16 n ~name:(Global_tensor.name x ^ "_scanul1")
  in
  let tile = s * s in
  let body ctx =
    let schedule = Scan_core.current_schedule () in
    let bufs = alloc_bufs ctx ~s in
    let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 tile in
    let partial = ref (Scan_op.Sum.identity Dtype.F16) in
    Scan_core.pipeline_tiles ctx ~schedule ~out:(Engine.Cube_mte_out, 2)
      ~in_engine:Engine.Cube_mte_in ~tile ~n
      ~load:(fun ~slot ~off ~len ->
        load_tile ctx ~schedule ~x ~off ~len ~bufs ~slot)
      ~work:(fun ~slot ~off ~len ->
        compute_tile ctx ~schedule ~y ~off ~len ~s ~bufs ~slot;
        (* Vector unit: the whole tile is one propagation row, so the
           epilogue is a single scalar fold, overlapping the cube's
           next tile on its own lane. *)
        Scan_core.finish_tile
          (module Scan_op.Sum)
          ctx ~await:Engine.Cube_mte_out ~src:y ~ub ~dst:y ~off ~len ~s:tile
          ~partial ())
      ()
  in
  let stats = Launch.run ~name:"scan_ul1" device ~blocks:1 body in
  (y, stats)
