open Ascend

let check ~batch ~len x =
  if batch <= 0 || len <= 0 then
    invalid_arg "Batched_scan: batch and len must be positive";
  if Global_tensor.length x < batch * len then
    invalid_arg "Batched_scan: tensor shorter than batch * len";
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Batched_scan: input must be f16"

(* Resolve the optional row window and output tensor shared by both
   schedules. Restricting [rows] scans only those rows (the others are
   left untouched in [y]) — the replay granule of the checkpointed
   runner in [Runtime.Resilient]. *)
let resolve ~batch ~len ~rows ~y ~suffix device x =
  let row_lo, row_hi =
    match rows with
    | None -> (0, batch)
    | Some (lo, hi) ->
        if lo < 0 || hi > batch || lo >= hi then
          invalid_arg
            (Printf.sprintf
               "Batched_scan: row range [%d,%d) outside batch [0,%d)" lo hi
               batch);
        (lo, hi)
  in
  let y =
    match y with
    | None ->
        Device.alloc device Dtype.F16 (batch * len)
          ~name:(Global_tensor.name x ^ suffix)
    | Some y ->
        if Global_tensor.length y < batch * len then
          invalid_arg "Batched_scan: output tensor shorter than batch * len";
        if not (Dtype.equal (Global_tensor.dtype y) Dtype.F16) then
          invalid_arg "Batched_scan: output must be f16";
        y
  in
  (row_lo, row_hi, y)

(* ScanU-based schedule: block [i] owns row pairs [p = i, i+B, ...];
   the cube core interleaves the tile-local scans of both rows of the
   pair, vector core [v] finishes row [2p + v]. *)
let run_u ?(s = 128) ?rows ?y device ~batch ~len x =
  if s <= 0 then invalid_arg "Batched_scan.run_u: s must be positive";
  check ~batch ~len x;
  let row_lo, row_hi, y =
    resolve ~batch ~len ~rows ~y ~suffix:"_bscanu" device x
  in
  let tile = s * s in
  let ntiles = Kernel_util.ceil_div len tile in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let p_lo = row_lo / vpc in
  let p_hi = Kernel_util.ceil_div row_hi vpc in
  let blocks = Scheduler.blocks (Scheduler.plan device ~n:(p_hi - p_lo)) in
  let body ctx =
    let i = Block.idx ctx in
    let mine =
      List.filter
        (fun p -> p mod blocks = i)
        (List.init (p_hi - p_lo) (fun k -> p_lo + k))
    in
    if mine <> [] then begin
      let schedule = Scan_core.current_schedule () in
      let l0a =
        Array.init 2 (fun _ -> Block.alloc ctx Mem_kind.L0a Dtype.F16 tile)
      in
      let l0c =
        Array.init 2 (fun _ -> Block.alloc ctx Mem_kind.L0c Dtype.F32 tile)
      in
      let u =
        Scan_core.load_cube_encoding
          (module Scan_op.Sum)
          ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L0b ~dtype:Dtype.F16 ~s
      in
      let ubs =
        List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) Dtype.F16 tile)
      in
      (* Flatten the (pair, tile, row) nest into one item stream so the
         cube pipeline double-buffers straight across row and pair
         boundaries — the ping-pong slots never drain between rows. *)
      let items =
        List.concat_map
          (fun p ->
            List.concat_map
              (fun t ->
                List.filter_map
                  (fun v ->
                    let j = (p * vpc) + v in
                    if j >= row_lo && j < row_hi && j < batch then
                      Some (t, v, (j * len) + (t * tile),
                            min tile (len - (t * tile)))
                    else None)
                  (List.init vpc Fun.id))
              (List.init ntiles Fun.id))
          mine
        |> Array.of_list
      in
      let partials = Array.make vpc 0.0 in
      Scan_core.pipeline ctx ~schedule ~out:(Engine.Cube_mte_out, 2)
        ~in_engine:Engine.Cube_mte_in ~n:(Array.length items)
        ~load:(fun ~slot k ->
          let _, _, off, tlen = items.(k) in
          Scan_core.stage_in ctx ~schedule ~engine:Engine.Cube_mte_in ~src:x
            ~src_off:off ~dst:l0a.(slot) ~len:tlen ())
        ~work:(fun ~slot k ->
          let t, v, off, tlen = items.(k) in
          let rows = Kernel_util.ceil_div tlen s in
          Cube.mmad ctx ~a:l0a.(slot) ~b:u ~c:l0c.(slot) ~m:rows ~k:s ~n:s
            ~accumulate:false;
          Scan_core.stage_out ctx ~schedule ~engine:Engine.Cube_mte_out
            ~src:l0c.(slot) ~dst:y ~dst_off:off ~len:tlen ();
          if t = 0 then partials.(v) <- 0.0;
          let partial = ref partials.(v) in
          Scan_core.finish_tile
            (module Scan_op.Sum)
            ctx ~vec:v ~await:Engine.Cube_mte_out ~src:y ~ub:(List.nth ubs v)
            ~dst:y ~off ~len:tlen ~s ~partial ();
          partials.(v) <- !partial)
        ()
    end
  in
  let stats = Launch.run ~name:"batched_scan_u" device ~blocks body in
  (y, stats)

(* ScanUL1-based schedule: block [i] runs a full ScanUL1 on every row
   [j = i, i+B, ...] using its cube core and vector core 0. *)
let run_ul1 ?(s = 128) ?rows ?y device ~batch ~len x =
  if s <= 0 then invalid_arg "Batched_scan.run_ul1: s must be positive";
  check ~batch ~len x;
  let row_lo, row_hi, y =
    resolve ~batch ~len ~rows ~y ~suffix:"_bscanul1" device x
  in
  let tile = s * s in
  let ntiles = Kernel_util.ceil_div len tile in
  let blocks = Scheduler.blocks (Scheduler.plan device ~n:(row_hi - row_lo)) in
  let body ctx =
    let i = Block.idx ctx in
    let mine =
      List.filter
        (fun j -> j mod blocks = i)
        (List.init (row_hi - row_lo) (fun k -> row_lo + k))
    in
    if mine <> [] then begin
      let schedule = Scan_core.current_schedule () in
      let bufs = Scan_ul1.alloc_bufs ctx ~s in
      let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 tile in
      (* One flat item stream over (row, tile) so the L0A/C2 ping-pong
         slots stay full across row boundaries. *)
      let items =
        List.concat_map
          (fun j ->
            List.init ntiles (fun t ->
                (t, (j * len) + (t * tile), min tile (len - (t * tile)))))
          mine
        |> Array.of_list
      in
      let partial = ref (Scan_op.Sum.identity Dtype.F16) in
      Scan_core.pipeline ctx ~schedule ~out:(Engine.Cube_mte_out, 2)
        ~in_engine:Engine.Cube_mte_in ~n:(Array.length items)
        ~load:(fun ~slot k ->
          let _, off, tlen = items.(k) in
          Scan_ul1.load_tile ctx ~schedule ~x ~off ~len:tlen ~bufs ~slot)
        ~work:(fun ~slot k ->
          let t, off, tlen = items.(k) in
          if t = 0 then partial := Scan_op.Sum.identity Dtype.F16;
          Scan_ul1.compute_tile ctx ~schedule ~y ~off ~len:tlen ~s ~bufs ~slot;
          Scan_core.finish_tile
            (module Scan_op.Sum)
            ctx ~await:Engine.Cube_mte_out ~src:y ~ub ~dst:y ~off ~len:tlen
            ~s:tile ~partial ())
        ()
    end
  in
  let stats = Launch.run ~name:"batched_scan_ul1" device ~blocks body in
  (y, stats)
