(** Monoid-generic tiled-scan engine.

    The structural skeleton shared by every scan kernel — tile
    iteration under the double-buffering pipeline, block/sub-block
    partitioning, and the partial-propagation epilogue — parameterised
    by a {!Scan_op.S} operator module. The kernels in this library are
    thin instances: they pick a tiling and a local-scan step (cube
    matmul, [CumSum], Hillis-Steele) and delegate the rest here. *)

open Ascend

(** {2 Pipeline schedules} *)

type schedule =
  | Serial  (** No overlap: sync copies, full barrier between tiles. *)
  | Double  (** 2-stage: async copy-in of tile [t+1] overlaps work on [t]. *)
  | Triple
      (** 3-stage: additionally, async copy-out of tile [t-1] overlaps
          work on [t] (kernels with a dedicated store buffer). *)

val schedule_name : schedule -> string

val default_schedule : schedule ref
(** The schedule kernels run under when not overridden per call.
    Defaults to [Triple]. *)

val current_schedule : unit -> schedule

val with_schedule : schedule -> (unit -> 'a) -> 'a
(** Run [f] with {!default_schedule} temporarily replaced — how the
    equivalence tests and the pipeline bench run one kernel under
    several schedules. Restores the previous schedule on exit. *)

val stage_in :
  Block.t ->
  schedule:schedule ->
  engine:Engine.t ->
  src:Global_tensor.t ->
  ?src_off:int ->
  dst:Local_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  unit
(** {!Ascend.Mte.copy_in}, async under [Double]/[Triple]. *)

val stage_out :
  Block.t ->
  schedule:schedule ->
  engine:Engine.t ->
  src:Local_tensor.t ->
  ?src_off:int ->
  dst:Global_tensor.t ->
  ?dst_off:int ->
  len:int ->
  unit ->
  unit
(** {!Ascend.Mte.copy_out}, async under [Triple] only. Use only for
    stores the enclosing {!pipeline}'s [out] parameter paces. *)

val pipeline :
  Block.t ->
  ?schedule:schedule ->
  ?out:Engine.t * int ->
  in_engine:Engine.t ->
  n:int ->
  load:(slot:int -> int -> unit) ->
  work:(slot:int -> int -> unit) ->
  unit ->
  unit
(** The double-buffered pipeline walker. [load ~slot t] stages item
    [t]'s inputs into ping-pong slot [slot] with {!stage_in} on
    [in_engine]; [work ~slot t] consumes them. Under [Double]/[Triple]
    the walker issues [load (t+1)] before [work t] and paces the two
    slots with commit/wait groups; [out = (engine, slots)] (honoured
    under [Triple]) additionally paces [slots] ping-pong store buffers
    whose stores [work] issues via {!stage_out}. [schedule] defaults
    to {!default_schedule}. *)

val pipeline_tiles :
  Block.t ->
  ?schedule:schedule ->
  ?out:Engine.t * int ->
  in_engine:Engine.t ->
  tile:int ->
  n:int ->
  load:(slot:int -> off:int -> len:int -> unit) ->
  work:(slot:int -> off:int -> len:int -> unit) ->
  unit ->
  unit
(** {!pipeline} over [tile]-sized slices of [0, n): [load]/[work]
    receive each slice's offset and clipped length. *)

val foreach_tile :
  Block.t ->
  ?serial:bool ->
  tile:int ->
  n:int ->
  (off:int -> len:int -> unit) ->
  unit
(** Run the tile body for every [tile]-sized slice of [0, n) inside one
    legacy {!Ascend.Block.pipelined} section ([iters] = tile count;
    [serial] is the no-pipelining ablation hook). Kept for kernels that
    have not moved to the explicit {!pipeline} walker. *)

val sub_block : lo:int -> hi:int -> half:int -> int -> int * int
(** [sub_block ~lo ~hi ~half v] is the [(vlo, vhi)] range of block
    chunk [\[lo, hi)] owned by vector core [v]. *)

val foreach_ub_tile :
  ub_tile:int -> vlo:int -> vhi:int -> (off:int -> len:int -> unit) -> unit
(** Iterate a sub-block in UB-sized slices. *)

val block_partition :
  n:int -> blocks:int -> vpc:int -> chunk_align:int -> half_align:int ->
  int * int
(** [(chunk, half)]: per-block chunk of [n] rounded up to [chunk_align]
    and per-vector-core half-chunk rounded up to [half_align] (the
    partition arithmetic of the multi-core kernels). *)

val propagate_rows :
  (module Scan_op.S) ->
  Block.t ->
  vec:int ->
  ub:Local_tensor.t ->
  len:int ->
  s:int ->
  partial:float ref ->
  unit
(** Vector-core prefix propagation over per-[s]-row local scans held in
    UB: fold the running partial into each row in place with the
    operator's scalar form, then update it from the row's last entry
    (Algorithm 1, lines 11-13). With [s >= len] this degenerates to the
    single whole-tile fold used by the one-row epilogues. *)

val finish_tile :
  (module Scan_op.S) ->
  Block.t ->
  ?vec:int ->
  ?await:Engine.t ->
  ?src:Global_tensor.t ->
  ub:Local_tensor.t ->
  dst:Global_tensor.t ->
  off:int ->
  len:int ->
  s:int ->
  partial:float ref ->
  unit ->
  unit
(** The tile epilogue every kernel shares: optionally stage the
    tile-local scan result from [src] in GM into [ub], propagate the
    running partial through its [s]-rows, and write the finished prefix
    to [dst]. [src] is omitted when the local result is already in UB
    (the vector-only kernels). [await] names the engine that produced
    [src] (the cube core's outbound MTE): the vector lane first waits
    for everything issued there, the cross-lane dependency of the
    cube-to-vector hand-off. *)

val load_cube_encoding :
  (module Scan_op.S) ->
  Block.t ->
  engine:Engine.t ->
  kind:Mem_kind.t ->
  dtype:Dtype.t ->
  s:int ->
  Local_tensor.t
(** Load the operator's constant scan matrix ({!Scan_op.S.cube_encoding});
    raises [Invalid_argument] for operators with no matmul formulation. *)

val ub_tile : int
(** UB tile size (elements) of the vector-only two-phase engine. *)

val run_vec_blocks :
  (module Scan_op.S) ->
  ?blocks:int ->
  kernel_name:string ->
  suffix:string ->
  Device.t ->
  Global_tensor.t ->
  Global_tensor.t * Stats.t
(** Vector-only two-phase multi-block scan under the operator: phase I
    reduces every vector-core sub-block into an intermediate tensor
    [r]; phase II folds the preceding entries of [r] into a base and
    rescans each UB tile with {!Kernel_util.hillis_steele_tile} under
    the operator's binop. This is the whole of the former bespoke
    max-scan kernel, for any {!Scan_op.S}. *)
