(** Monoid-generic tiled-scan engine.

    The structural skeleton shared by every scan kernel — tile
    iteration under the double-buffering pipeline, block/sub-block
    partitioning, and the partial-propagation epilogue — parameterised
    by a {!Scan_op.S} operator module. The kernels in this library are
    thin instances: they pick a tiling and a local-scan step (cube
    matmul, [CumSum], Hillis-Steele) and delegate the rest here. *)

open Ascend

val foreach_tile :
  Block.t ->
  ?serial:bool ->
  tile:int ->
  n:int ->
  (off:int -> len:int -> unit) ->
  unit
(** Run the tile body for every [tile]-sized slice of [0, n) inside one
    {!Ascend.Block.pipelined} section ([iters] = tile count, so the
    section is charged at double-buffered throughput; [serial] is the
    no-pipelining ablation hook and charges the serial sum). *)

val sub_block : lo:int -> hi:int -> half:int -> int -> int * int
(** [sub_block ~lo ~hi ~half v] is the [(vlo, vhi)] range of block
    chunk [\[lo, hi)] owned by vector core [v]. *)

val foreach_ub_tile :
  ub_tile:int -> vlo:int -> vhi:int -> (off:int -> len:int -> unit) -> unit
(** Iterate a sub-block in UB-sized slices. *)

val block_partition :
  n:int -> blocks:int -> vpc:int -> chunk_align:int -> half_align:int ->
  int * int
(** [(chunk, half)]: per-block chunk of [n] rounded up to [chunk_align]
    and per-vector-core half-chunk rounded up to [half_align] (the
    partition arithmetic of the multi-core kernels). *)

val propagate_rows :
  (module Scan_op.S) ->
  Block.t ->
  vec:int ->
  ub:Local_tensor.t ->
  len:int ->
  s:int ->
  partial:float ref ->
  unit
(** Vector-core prefix propagation over per-[s]-row local scans held in
    UB: fold the running partial into each row in place with the
    operator's scalar form, then update it from the row's last entry
    (Algorithm 1, lines 11-13). With [s >= len] this degenerates to the
    single whole-tile fold used by the one-row epilogues. *)

val finish_tile :
  (module Scan_op.S) ->
  Block.t ->
  ?vec:int ->
  ?src:Global_tensor.t ->
  ub:Local_tensor.t ->
  dst:Global_tensor.t ->
  off:int ->
  len:int ->
  s:int ->
  partial:float ref ->
  unit ->
  unit
(** The tile epilogue every kernel shares: optionally stage the
    tile-local scan result from [src] in GM into [ub], propagate the
    running partial through its [s]-rows, and write the finished prefix
    to [dst]. [src] is omitted when the local result is already in UB
    (the vector-only kernels). *)

val load_cube_encoding :
  (module Scan_op.S) ->
  Block.t ->
  engine:Engine.t ->
  kind:Mem_kind.t ->
  dtype:Dtype.t ->
  s:int ->
  Local_tensor.t
(** Load the operator's constant scan matrix ({!Scan_op.S.cube_encoding});
    raises [Invalid_argument] for operators with no matmul formulation. *)

val ub_tile : int
(** UB tile size (elements) of the vector-only two-phase engine. *)

val run_vec_blocks :
  (module Scan_op.S) ->
  ?blocks:int ->
  kernel_name:string ->
  suffix:string ->
  Device.t ->
  Global_tensor.t ->
  Global_tensor.t * Stats.t
(** Vector-only two-phase multi-block scan under the operator: phase I
    reduces every vector-core sub-block into an intermediate tensor
    [r]; phase II folds the preceding entries of [r] into a base and
    rescans each UB tile with {!Kernel_util.hillis_steele_tile} under
    the operator's binop. This is the whole of the former bespoke
    max-scan kernel, for any {!Scan_op.S}. *)
