open Ascend

let ub_tile = 8192

let finalize device ~name ~partials ~count =
  let out = Device.alloc device Dtype.F32 1 ~name:(name ^ "_sum") in
  let body ctx =
    if Block.idx ctx = 0 then begin
      let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F32 count in
      Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:partials ~dst:ub
        ~len:count ();
      let total = Vec.reduce_sum ctx ~src:ub ~len:count () in
      let st = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F32 16 in
      Vec.set ctx st 0 total;
      Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:st ~dst:out ~len:1 ()
    end
  in
  (out, body)

let run_cube ?(s = 128) device x =
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Cube_reduce.run_cube: input must be f16";
  let n = Global_tensor.length x in
  if n = 0 then invalid_arg "Cube_reduce.run_cube: empty input";
  let tile = s * s in
  let plan = Scheduler.plan device ~n in
  let blocks = Scheduler.blocks plan in
  let chunk = Scheduler.chunk plan ~n ~grain:tile in
  let name = Global_tensor.name x in
  let partials = Device.alloc device Dtype.F32 blocks ~name:(name ^ "_partials") in
  (* Row sums see every lane of a row, so the tail tile's stale L0A
     lanes must be zero-padded (a DataCopy from a zero page). *)
  let zeros = Device.alloc device Dtype.F16 tile ~name:(name ^ "_zeropage") in
  let phase1 ctx =
    let i = Block.idx ctx in
    let lo = i * chunk in
    let hi = min n (lo + chunk) in
    if hi > lo then begin
      let schedule = Scan_core.current_schedule () in
      (* Two L0A slots fill L0A exactly (2 x s^2 f16 = 64 KiB): the
         next tile's DataCopy overlaps the current accumulate matmul.
         The arena is reset afterwards to make room for [row1]. *)
      let l0a =
        Array.init 2 (fun _ -> Block.alloc ctx Mem_kind.L0a Dtype.F16 tile)
      in
      let acc = Block.alloc ctx Mem_kind.L0c Dtype.F32 tile in
      let c2 = Block.alloc ctx Mem_kind.L0c Dtype.F32 s in
      let ones_l1 =
        Const_mat.load ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L1
          ~dtype:Dtype.F16 ~s Const_mat.Ones
      in
      let l0b = Block.alloc ctx Mem_kind.L0b Dtype.F16 tile in
      let acc_l1 = Block.alloc ctx Mem_kind.L1 Dtype.F16 tile in
      Mte.copy_local ctx ~engine:Engine.Cube ~src:ones_l1 ~dst:l0b
        ~len:tile ();
      let ntiles = Kernel_util.ceil_div (hi - lo) tile in
      Scan_core.pipeline ctx ~schedule ~in_engine:Engine.Cube_mte_in
        ~n:ntiles
        ~load:(fun ~slot t ->
          let off = lo + (t * tile) in
          let len = min tile (hi - off) in
          let rows = Kernel_util.ceil_div len s in
          Scan_core.stage_in ctx ~schedule ~engine:Engine.Cube_mte_in
            ~src:x ~src_off:off ~dst:l0a.(slot) ~len ();
          if len < rows * s then
            Scan_core.stage_in ctx ~schedule ~engine:Engine.Cube_mte_in
              ~src:zeros ~dst:l0a.(slot) ~dst_off:len
              ~len:((rows * s) - len) ())
        ~work:(fun ~slot t ->
          let off = lo + (t * tile) in
          let len = min tile (hi - off) in
          let rows = Kernel_util.ceil_div len s in
          (* C += A_t @ 1: column j of C accumulates the row sums. *)
          Cube.mmad ctx ~a:l0a.(slot) ~b:l0b ~c:acc ~m:rows ~k:s ~n:s
            ~accumulate:(t > 0))
        ();
      Block.reset_mem ctx Mem_kind.L0a;
      (* Collapse C's rows with one more matmul: 1_{1 x s} @ C. *)
      Mte.copy_local ctx ~engine:Engine.Cube ~src:acc ~dst:acc_l1 ~len:tile ();
      Mte.copy_local ctx ~engine:Engine.Cube ~src:acc_l1 ~dst:l0b ~len:tile ();
      let row1 = Block.alloc ctx Mem_kind.L0a Dtype.F16 s in
      if Block.functional ctx then begin
        for j = 0 to s - 1 do
          Local_tensor.set row1 j 1.0
        done;
        Local_tensor.set_structure row1 Local_tensor.All_ones
      end
      else Local_tensor.set_structure row1 Local_tensor.All_ones;
      Block.charge ~op:"l1_to_l0" ctx Engine.Cube
        (Cost_model.local_copy_cycles (Block.cost ctx) ~bytes:(2 * s));
      Cube.mmad ctx ~a:row1 ~b:l0b ~c:c2 ~m:1 ~k:s ~n:s ~accumulate:false;
      Mte.copy_out ctx ~engine:Engine.Cube_mte_out ~src:c2 ~dst:partials
        ~dst_off:i ~len:1 ()
    end
  in
  let out, phase2 = finalize device ~name ~partials ~count:blocks in
  let stats =
    Launch.run_phases ~name:"cube_reduce" device ~blocks [ phase1; phase2 ]
  in
  let total = if Device.functional device then Global_tensor.get out 0 else 0.0 in
  (total, out, stats)

let run_vec device x =
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Cube_reduce.run_vec: input must be f16";
  let n = Global_tensor.length x in
  if n = 0 then invalid_arg "Cube_reduce.run_vec: empty input";
  let blocks = Scheduler.blocks (Scheduler.plan device ~n) in
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let nvec = blocks * vpc in
  let chunk = Kernel_util.ceil_div n nvec in
  let name = Global_tensor.name x in
  let partials = Device.alloc device Dtype.F32 nvec ~name:(name ^ "_vpartials") in
  let phase1 ctx =
    let i = Block.idx ctx in
    let schedule = Scan_core.current_schedule () in
    let ubs =
      Array.init vpc (fun v ->
          Array.init 2 (fun _ ->
              Block.alloc ctx (Mem_kind.Ub v) Dtype.F16 ub_tile))
    in
    let stage =
      Array.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) Dtype.F32 16)
    in
    for v = 0 to vpc - 1 do
      let lo = ((i * vpc) + v) * chunk in
      let hi = min n (lo + chunk) in
      if hi > lo then begin
        let acc = ref 0.0 in
        Scan_core.pipeline_tiles ctx ~schedule
          ~in_engine:(Engine.Vec_mte_in v) ~tile:ub_tile ~n:(hi - lo)
          ~load:(fun ~slot ~off ~len ->
            Scan_core.stage_in ctx ~schedule ~engine:(Engine.Vec_mte_in v)
              ~src:x ~src_off:(lo + off) ~dst:ubs.(v).(slot) ~len ())
          ~work:(fun ~slot ~off:_ ~len ->
            acc := !acc +. Vec.reduce_sum ctx ~vec:v ~src:ubs.(v).(slot) ~len ())
          ();
        Vec.set ctx ~vec:v stage.(v) 0 !acc;
        Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:stage.(v)
          ~dst:partials ~dst_off:((i * vpc) + v) ~len:1 ()
      end
    done
  in
  let out, phase2 = finalize device ~name ~partials ~count:nvec in
  let stats =
    Launch.run_phases ~name:"vec_reduce" device ~blocks [ phase1; phase2 ]
  in
  let total = if Device.functional device then Global_tensor.get out 0 else 0.0 in
  (total, out, stats)
