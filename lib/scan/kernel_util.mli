(** Building blocks shared by the scan kernels. *)

val cube_local_scans :
  Ascend.Block.t ->
  x:Ascend.Global_tensor.t ->
  off:int ->
  len:int ->
  s:int ->
  l0a:Ascend.Local_tensor.t ->
  u:Ascend.Local_tensor.t ->
  l0c:Ascend.Local_tensor.t ->
  y:Ascend.Global_tensor.t ->
  unit
(** Cube-core stage of one [s^2]-tile: load [x\[off, off+len)] into
    L0A, multiply by [U_s] (local scans of the rows), and stream the
    result to [y] in GM (the L0C -> GM copy casts to [y]'s data type). *)

val hillis_steele_tile :
  Ascend.Block.t ->
  vec:int ->
  op:Ascend.Vec.binop ->
  buf:Ascend.Local_tensor.t ->
  tmp:Ascend.Local_tensor.t ->
  len:int ->
  unit
(** In-UB inclusive scan of [buf.(0 .. len)] under [op] (Add, Max, ...)
    with the log-step Hillis-Steele network: [ceil (log2 len)] rounds of
    one shifted {!Ascend.Vec.binop} plus one stitch copy. [tmp] is a
    scratch tile of the same data type and at least [len] elements.
    This is the vector-only building block the cube-based scans replace
    (and the inner loop of the {!Max_scan} and {!Segmented_scan}
    kernels, which have no matmul formulation). *)

val segmented_hillis_steele_tile :
  Ascend.Block.t ->
  vec:int ->
  v:Ascend.Local_tensor.t ->
  f:Ascend.Local_tensor.t ->
  tmp_v:Ascend.Local_tensor.t ->
  tmp_f:Ascend.Local_tensor.t ->
  zero:Ascend.Local_tensor.t ->
  len:int ->
  unit
(** In-UB inclusive {e segmented} scan of the (value, segment-start
    flag) pairs under the standard segmented-sum operator
    [(v2,f2) . (v1,f1) = ((if f2 then v2 else v1+v2), f1 or f2)]:
    per round, the shifted contribution is masked by the current flags
    with a vector select. [f] and [tmp_f] are int8; [zero] is a
    zero-filled value tile. After the call [v] holds the segmented
    inclusive scan and [f.(i)] is non-zero iff a segment boundary lies
    in [(0, i\]]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b = (a + b - 1) / b] for positive [b]. *)

val round_up : int -> int -> int
(** Smallest multiple of [m] that is [>= a]. *)
