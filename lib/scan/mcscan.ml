open Ascend

let ub_tile_elems = 16384

(* UB staging tiles never hold more than one vector core's sub-block
   ([half] elements), so cap the allocation accordingly. The copy
   granularity — and with it every charge — is unchanged: a sub-block
   range fits in one tile either way. *)
let ub_elems ~half = max 1 (min ub_tile_elems half)

(* Phase I: cube computes tile-local scans into [loc]; vector cores
   re-read the input and write per-vector-sub-block sums into [r].
   The cube walker is the full 3-stage pipeline (ping-pong L0A loads,
   ping-pong L0C stores); each vector core runs its own 2-stage
   load/reduce pipeline on its own lane, overlapping the cube's by
   construction (lanes are independent). *)
let phase1 ~x ~loc ~r ~s ~chunk ~half ~n ~in_dt ctx =
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let tile = s * s in
  let lo = i * chunk in
  let hi = min n (lo + chunk) in
  let blen = hi - lo in
  if blen > 0 then begin
    let schedule = Scan_core.current_schedule () in
    let l0a =
      Array.init 2 (fun _ -> Block.alloc ctx Mem_kind.L0a in_dt tile)
    in
    let acc_dt =
      match in_dt with Dtype.I8 -> Dtype.I32 | _ -> Dtype.F32
    in
    let l0c =
      Array.init 2 (fun _ -> Block.alloc ctx Mem_kind.L0c acc_dt tile)
    in
    let u =
      Scan_core.load_cube_encoding
        (module Scan_op.Sum)
        ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L0b ~dtype:in_dt ~s
    in
    let ub_n = ub_elems ~half in
    let ubs =
      List.init vpc (fun v ->
          Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) in_dt ub_n))
    in
    let stage =
      List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v)
                                (Global_tensor.dtype r) 16)
    in
    (* Cube units: local scans of all s-rows of the block. *)
    Scan_core.pipeline_tiles ctx ~schedule ~out:(Engine.Cube_mte_out, 2)
      ~in_engine:Engine.Cube_mte_in ~tile ~n:blen
      ~load:(fun ~slot ~off ~len ->
        Scan_core.stage_in ctx ~schedule ~engine:Engine.Cube_mte_in ~src:x
          ~src_off:(lo + off) ~dst:l0a.(slot) ~len ())
      ~work:(fun ~slot ~off ~len ->
        let rows = Kernel_util.ceil_div len s in
        Cube.mmad ctx ~a:l0a.(slot) ~b:u ~c:l0c.(slot) ~m:rows ~k:s ~n:s
          ~accumulate:false;
        Scan_core.stage_out ctx ~schedule ~engine:Engine.Cube_mte_out
          ~src:l0c.(slot) ~dst:loc ~dst_off:(lo + off) ~len ())
      ();
    (* Vector units, in parallel: recompute the reductions. *)
    List.iteri
      (fun v slots ->
        let vlo, vhi = Scan_core.sub_block ~lo ~hi ~half v in
        if vhi > vlo then begin
          let acc = ref (Scan_op.Sum.identity in_dt) in
          Scan_core.pipeline_tiles ctx ~schedule
            ~in_engine:(Engine.Vec_mte_in v) ~tile:ub_n ~n:(vhi - vlo)
            ~load:(fun ~slot ~off ~len ->
              Scan_core.stage_in ctx ~schedule ~engine:(Engine.Vec_mte_in v)
                ~src:x ~src_off:(vlo + off) ~dst:slots.(slot) ~len ())
            ~work:(fun ~slot ~off:_ ~len ->
              acc :=
                Scan_op.Sum.combine !acc
                  (Scan_op.Sum.vec_reduce ctx ~vec:v ~src:slots.(slot) ~len ()))
            ();
          let st = List.nth stage v in
          Vec.set ctx ~vec:v st 0 !acc;
          Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:st ~dst:r
            ~dst_off:((i * vpc) + v) ~len:1 ()
        end)
      ubs
  end

(* Phase II: every vector core scans [r] locally, then propagates the
   running partial through the tile-local scans of its sub-block. *)
let phase2 ~loc ~y ~r ~s ~chunk ~half ~n ~out_dt ~exclusive ctx =
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let lo = i * chunk in
  let hi = min n (lo + chunk) in
  if hi > lo then begin
    let rlen = Global_tensor.length r in
    let rubs =
      List.init vpc (fun v ->
          Block.alloc ctx (Mem_kind.Ub v) (Global_tensor.dtype r) rlen)
    in
    let ub_n = ub_elems ~half in
    let ubs =
      List.init vpc (fun v ->
          Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) out_dt ub_n))
    in
    let zeros =
      List.init vpc (fun v -> Block.alloc ctx (Mem_kind.Ub v) out_dt 16)
    in
    (* Each vector core runs its own 2-stage pipeline: the copy-in of
       tile [t+1] overlaps the propagation of tile [t]. The propagation
       rewrites the staged tile in place, so stores stay synchronous
       (the slot is only reused once its store has retired). Cores
       overlap each other by construction — their lanes are
       independent. *)
    for v = 0 to vpc - 1 do
      let vlo, vhi = Scan_core.sub_block ~lo ~hi ~half v in
      if vhi > vlo then begin
        let rub = List.nth rubs v in
        Mte.copy_in ctx ~engine:(Engine.Vec_mte_in v) ~src:r ~dst:rub
          ~len:rlen ();
        let k = (i * vpc) + v in
        let base =
          if k = 0 then Scan_op.Sum.identity out_dt
          else Scan_op.Sum.vec_reduce ctx ~vec:v ~src:rub ~len:k ()
        in
        let partial = ref base in
        let slots = List.nth ubs v in
        Scan_core.pipeline_tiles ctx
          ~schedule:(Scan_core.current_schedule ())
          ~in_engine:(Engine.Vec_mte_in v) ~tile:ub_n ~n:(vhi - vlo)
          ~load:(fun ~slot ~off ~len ->
            Scan_core.stage_in ctx
              ~schedule:(Scan_core.current_schedule ())
              ~engine:(Engine.Vec_mte_in v) ~src:loc ~src_off:(vlo + off)
              ~dst:slots.(slot) ~len ())
          ~work:(fun ~slot ~off ~len ->
            let off = vlo + off in
            let ub = slots.(slot) in
            Scan_core.propagate_rows
              (module Scan_op.Sum)
              ctx ~vec:v ~ub ~len ~s ~partial;
            if exclusive then begin
              (* Shift right by one; the global first element
                 becomes zero and the last inclusive value is
                 discarded. *)
              let wlen = if off + len >= n then len - 1 else len in
              if wlen > 0 then
                Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:ub
                  ~dst:y ~dst_off:(off + 1) ~len:wlen ();
              if off = 0 then begin
                let z = List.nth zeros v in
                Vec.set ctx ~vec:v z 0 0.0;
                Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:z
                  ~dst:y ~dst_off:0 ~len:1 ()
              end
            end
            else
              Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:ub
                ~dst:y ~dst_off:off ~len ())
          ()
      end
    done
  end

let run ?(s = 128) ?blocks ?(exclusive = false) device x =
  if s <= 0 || s land 1 = 1 then
    invalid_arg "Mcscan.run: s must be positive and even";
  let in_dt = Global_tensor.dtype x in
  let loc_dt, out_dt =
    match in_dt with
    | Dtype.F16 -> (Dtype.F16, Dtype.F16)
    | Dtype.I8 -> (Dtype.I16, Dtype.I32)
    | d ->
        invalid_arg
          (Printf.sprintf "Mcscan.run: unsupported input dtype %s"
             (Dtype.to_string d))
  in
  let n = Global_tensor.length x in
  if n = 0 then invalid_arg "Mcscan.run: empty input";
  let blocks =
    match blocks with
    | Some b -> b
    | None -> Scheduler.blocks (Scheduler.plan device ~n)
  in
  if blocks < 1 then invalid_arg "Mcscan.run: blocks must be >= 1";
  let vpc = (Device.cost device).Cost_model.vec_per_core in
  let tile = s * s in
  (* Block chunks are tile-aligned; vector sub-blocks are row-aligned
     halves of the chunk ([s] is even so [chunk / vpc] stays a multiple
     of [s] whenever it is itself rounded to rows). *)
  let chunk, half =
    Scan_core.block_partition ~n ~blocks ~vpc ~chunk_align:tile ~half_align:s
  in
  let name = Global_tensor.name x in
  let loc = Device.alloc device loc_dt n ~name:(name ^ "_mcscan_loc") in
  let y = Device.alloc device out_dt n ~name:(name ^ "_mcscan_out") in
  let r =
    Device.alloc device
      (match in_dt with Dtype.I8 -> Dtype.I32 | _ -> Dtype.F32)
      (blocks * vpc)
      ~name:(name ^ "_mcscan_r")
  in
  let stats =
    Launch.run_phases
      ~name:(if exclusive then "mcscan_exclusive" else "mcscan")
      device ~blocks
      [
        phase1 ~x ~loc ~r ~s ~chunk ~half ~n ~in_dt;
        phase2 ~loc ~y ~r ~s ~chunk ~half ~n ~out_dt ~exclusive;
      ]
  in
  (* [loc] and [r] are kernel-internal intermediates; recycle their
     storage so back-to-back launches reuse it. *)
  Global_tensor.retire loc;
  Global_tensor.retire r;
  (y, stats)
