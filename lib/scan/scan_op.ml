open Ascend

module type S = sig
  val name : string
  val identity : Dtype.t -> float
  val combine : float -> float -> float

  val vec_binop : Vec.binop

  val vec_scalar :
    Block.t ->
    ?vec:int ->
    src:Local_tensor.t ->
    ?src_off:int ->
    dst:Local_tensor.t ->
    ?dst_off:int ->
    scalar:float ->
    len:int ->
    unit ->
    unit

  val vec_reduce :
    Block.t ->
    ?vec:int ->
    src:Local_tensor.t ->
    ?src_off:int ->
    len:int ->
    unit ->
    float

  val cube_encoding : Const_mat.which option
  val dtypes : Dtype.t list
end

module Sum : S = struct
  let name = "sum"
  let identity _ = 0.0
  let combine = ( +. )
  let vec_binop = Vec.Add
  let vec_scalar = Vec.adds
  let vec_reduce = Vec.reduce_sum
  let cube_encoding = Some Const_mat.Upper
  let dtypes = [ Dtype.F16; Dtype.F32; Dtype.I8 ]
end

module Max : S = struct
  let name = "max"
  let identity = Dtype.min_value
  let combine = Float.max
  let vec_binop = Vec.Max
  let vec_scalar = Vec.maxs
  let vec_reduce = Vec.reduce_max
  let cube_encoding = None
  let dtypes = [ Dtype.F16; Dtype.F32; Dtype.I32 ]
end
