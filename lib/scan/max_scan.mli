(** Multi-core running-maximum scan (vector cores only).

    Maximum has no matrix-multiplication formulation, so this kernel is
    purely vectorial: it is exactly
    {!Scan_core.run_vec_blocks}[ (module Scan_op.Max)] — within each UB
    tile a log-step Hillis-Steele network (see
    {!Kernel_util.hillis_steele_tile}), across tiles and blocks the
    same two-phase recomputation structure as MCScan with
    max-reductions instead of sums.

    Used by {!Segmented_scan} to locate each position's most recent
    segment boundary, and generally useful for running-max features. *)

val run :
  ?blocks:int ->
  Ascend.Device.t ->
  Ascend.Global_tensor.t ->
  Ascend.Global_tensor.t * Ascend.Stats.t
(** Inclusive running maximum. Input must be [F16], [F32] or [I32];
    the output has the same data type. *)
