open Ascend

(* CumSum baseline: the local-scan step is the composite vector CumSum
   instruction; tiling and the carry epilogue come from the generic
   core (the whole tile is one propagation row). The input stages
   through two ping-pong UB tiles so the copy-in of tile [t+1] overlaps
   the CumSum of tile [t]; the single output tile keeps the f32 case
   exactly within the 192 KB UB (2 x 64 KB in + 64 KB out), so stores
   stay synchronous. *)
let run ?(rows = 128) ?(cols = 128) device x =
  let n = Global_tensor.length x in
  let dt = Global_tensor.dtype x in
  (match dt with
  | Dtype.F16 | Dtype.F32 -> ()
  | d ->
      invalid_arg
        (Printf.sprintf "Scan_vec_only.run: unsupported input dtype %s"
           (Dtype.to_string d)));
  let y = Device.alloc device dt n ~name:(Global_tensor.name x ^ "_cumsum") in
  let tile = rows * cols in
  let body ctx =
    let schedule = Scan_core.current_schedule () in
    let ub_in = Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub 0) dt tile) in
    let ub_out = Block.alloc ctx (Mem_kind.Ub 0) dt tile in
    let partial = ref (Scan_op.Sum.identity dt) in
    Scan_core.pipeline_tiles ctx ~schedule ~in_engine:(Engine.Vec_mte_in 0)
      ~tile ~n
      ~load:(fun ~slot ~off ~len ->
        Scan_core.stage_in ctx ~schedule ~engine:(Engine.Vec_mte_in 0) ~src:x
          ~src_off:off ~dst:ub_in.(slot) ~len ())
      ~work:(fun ~slot ~off ~len ->
        let trows = Kernel_util.ceil_div len cols in
        Vec.cumsum ctx ~src:ub_in.(slot) ~dst:ub_out ~rows:trows ~cols ();
        Scan_core.finish_tile
          (module Scan_op.Sum)
          ctx ~ub:ub_out ~dst:y ~off ~len ~s:tile ~partial ())
      ()
  in
  let stats = Launch.run ~name:"cumsum_vec_only" device ~blocks:1 body in
  (y, stats)
