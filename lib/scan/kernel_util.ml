open Ascend

let ceil_div a b = (a + b - 1) / b
let round_up a m = ceil_div a m * m

let hillis_steele_tile ctx ~vec ~op ~buf ~tmp ~len =
  let d = ref 1 in
  while !d < len do
    (* tmp.(i) = op buf.(i) buf.(i-d) for i >= d. Elements below [d]
       are already final for this step, so only the shifted tail is
       written back — one combine plus one (len - d)-element copy, both
       charged to the vector engine. *)
    Vec.binop ctx ~vec op ~src0:buf ~src0_off:!d ~src1:buf ~src1_off:0
      ~dst:tmp ~dst_off:!d ~len:(len - !d) ();
    Vec.copy ctx ~vec ~src:tmp ~src_off:!d ~dst:buf ~dst_off:!d
      ~len:(len - !d) ();
    d := !d * 2
  done

let segmented_hillis_steele_tile ctx ~vec ~v ~f ~tmp_v ~tmp_f ~zero ~len =
  let d = ref 1 in
  while !d < len do
    (* Contribution from d positions back, zeroed where the current
       element already starts (or follows a start within d). *)
    Vec.select ctx ~vec ~mask_off:!d ~mask:f ~src0_off:0 ~src0:zero
      ~src1_off:0 ~src1:v ~dst_off:!d ~dst:tmp_v ~len:(len - !d) ();
    Vec.binop ctx ~vec Vec.Add ~src0:v ~src0_off:!d ~src1:tmp_v
      ~src1_off:!d ~dst:v ~dst_off:!d ~len:(len - !d) ();
    (* Flags propagate by OR, through a copy to avoid aliasing. *)
    Vec.copy ctx ~vec ~src:f ~dst:tmp_f ~len ();
    Vec.bit_op ctx ~vec Vec.Or ~src0:tmp_f ~src0_off:!d ~src1:tmp_f
      ~src1_off:0 ~dst:f ~dst_off:!d ~len:(len - !d) ();
    d := !d * 2
  done

let cube_local_scans ctx ~x ~off ~len ~s ~l0a ~u ~l0c ~y =
  let rows = ceil_div len s in
  Mte.copy_in ctx ~engine:Engine.Cube_mte_in ~src:x ~src_off:off ~dst:l0a ~len ();
  Cube.mmad ctx ~a:l0a ~b:u ~c:l0c ~m:rows ~k:s ~n:s ~accumulate:false;
  Mte.copy_out ctx ~engine:Engine.Cube_mte_out ~src:l0c ~dst:y ~dst_off:off
    ~len ()
