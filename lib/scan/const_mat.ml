open Ascend

type which = Upper | Lower | Strict_lower | Ones | Ident

let expected ~s:_ which ~i ~j =
  match which with
  | Upper -> if i <= j then 1.0 else 0.0
  | Lower -> if i >= j then 1.0 else 0.0
  | Strict_lower -> if i > j then 1.0 else 0.0
  | Ones -> 1.0
  | Ident -> if i = j then 1.0 else 0.0

let structure_of = function
  | Upper -> Local_tensor.Upper_ones
  | Lower -> Local_tensor.Lower_ones
  | Strict_lower -> Local_tensor.Strict_lower_ones
  | Ones -> Local_tensor.All_ones
  | Ident -> Local_tensor.Identity

(* Bulk structured fill: zero the tile, then write each row's span of
   ones — the stored values match the historical per-element loop
   exactly (0.0 and 1.0 are exact in every dtype). [zeroed] skips the
   zeroing pass when the caller knows the tensor is already
   all-zero (a fresh {!Block.alloc}). *)
let fill_into ~zeroed lt ~s which =
  Local_tensor.touch lt;
  let buf = Local_tensor.buffer lt in
  if not zeroed then Host_buffer.fill_range buf ~off:0 ~len:(s * s) 0.0;
  (match which with
  | Upper ->
      for i = 0 to s - 1 do
        Host_buffer.fill_range buf ~off:((i * s) + i) ~len:(s - i) 1.0
      done
  | Lower ->
      for i = 0 to s - 1 do
        Host_buffer.fill_range buf ~off:(i * s) ~len:(i + 1) 1.0
      done
  | Strict_lower ->
      for i = 1 to s - 1 do
        Host_buffer.fill_range buf ~off:(i * s) ~len:i 1.0
      done
  | Ones -> Host_buffer.fill_range buf ~off:0 ~len:(s * s) 1.0
  | Ident ->
      for i = 0 to s - 1 do
        Host_buffer.set buf ((i * s) + i) 1.0
      done);
  Local_tensor.set_structure lt (structure_of which)

let fill lt ~s which =
  if Local_tensor.length lt < s * s then
    invalid_arg "Const_mat.fill: tensor shorter than s*s";
  fill_into ~zeroed:false lt ~s which

let load ctx ~engine ~kind ~dtype ~s which =
  if s <= 0 then invalid_arg "Const_mat.load: s must be positive";
  let lt = Block.alloc ctx kind dtype (s * s) in
  (* Charged as one DataCopy of the statically pre-allocated GM
     constant into the cube hierarchy. *)
  let bytes = s * s * Dtype.size_bytes dtype in
  Block.charge ~op:"datacopy_const" ~bytes ctx engine
    (Cost_model.mte_copy_cycles (Block.cost ctx) ~bytes);
  Block.note_gm_traffic ctx ~read:bytes ~write:0;
  if Block.functional ctx then fill_into ~zeroed:true lt ~s which
  else Local_tensor.set_structure lt (structure_of which);
  lt
