open Ascend

type which = Upper | Lower | Strict_lower | Ones | Ident

let expected ~s:_ which ~i ~j =
  match which with
  | Upper -> if i <= j then 1.0 else 0.0
  | Lower -> if i >= j then 1.0 else 0.0
  | Strict_lower -> if i > j then 1.0 else 0.0
  | Ones -> 1.0
  | Ident -> if i = j then 1.0 else 0.0

let structure_of = function
  | Upper -> Local_tensor.Upper_ones
  | Lower -> Local_tensor.Lower_ones
  | Strict_lower -> Local_tensor.Strict_lower_ones
  | Ones -> Local_tensor.All_ones
  | Ident -> Local_tensor.Identity

let fill lt ~s which =
  if Local_tensor.length lt < s * s then
    invalid_arg "Const_mat.fill: tensor shorter than s*s";
  for i = 0 to s - 1 do
    for j = 0 to s - 1 do
      Local_tensor.set lt ((i * s) + j) (expected ~s which ~i ~j)
    done
  done;
  Local_tensor.set_structure lt (structure_of which)

let load ctx ~engine ~kind ~dtype ~s which =
  if s <= 0 then invalid_arg "Const_mat.load: s must be positive";
  let lt = Block.alloc ctx kind dtype (s * s) in
  (* Charged as one DataCopy of the statically pre-allocated GM
     constant into the cube hierarchy. *)
  let bytes = s * s * Dtype.size_bytes dtype in
  Block.charge ~op:"datacopy_const" ~bytes ctx engine
    (Cost_model.mte_copy_cycles (Block.cost ctx) ~bytes);
  Block.note_gm_traffic ctx ~read:bytes ~write:0;
  if Block.functional ctx then fill lt ~s which
  else Local_tensor.set_structure lt (structure_of which);
  lt
