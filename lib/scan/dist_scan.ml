(* Distributed scan: shard-local scans -> prefix exchange -> fixup.

   Placement invariance is the load-bearing property here. Shard
   geometry is fixed by the logical shard count (pod creation geometry
   by default), never by which devices survive; every simulated device
   is identical; and the fixup adds the same prefix values wherever a
   shard lands. So output bytes AND the combined launch Stats are
   bit-identical for any surviving-device subset — only the link-side
   counters (reported separately) depend on placement. The exchange
   schedules fold shard totals in ascending shard order with one fp16
   rounding per step, so Ring and All_gather are numerically identical
   and differ only in link traffic and critical path. *)

open Ascend
module P = Pod

type schedule = Ring | All_gather

let schedule_to_string = function Ring -> "ring" | All_gather -> "allgather"

let schedule_of_string = function
  | "ring" -> Ok Ring
  | "allgather" | "all_gather" | "all-gather" -> Ok All_gather
  | s ->
      Error
        (Printf.sprintf "unknown schedule %S (expected ring or allgather)" s)

let default_schedule pod =
  match P.topology pod with P.Ring -> Ring | P.Fully_connected -> All_gather

(* One device-prefix packet on the wire: an 8-byte header (shard index,
   epoch) plus the fp16 total padded to the 32-byte link flit. *)
let prefix_packet_bytes = 32

type report = {
  y : Global_tensor.t;
  stats : Stats.t;
  shards : (int * int * int) list;
  link_seconds : float;
  exchange_sends : int;
  exchange_retries : int;
  rerouted : int;
}

let phase pod label ~start_s =
  P.sync_clocks pod;
  let now =
    List.fold_left (fun m i -> Float.max m (P.clock pod i)) 0.0
      (P.alive_devices pod)
  in
  P.record pod
    {
      P.ev_kind = P.Phase;
      ev_device = 0;
      ev_peer = None;
      ev_label = label;
      ev_start_s = start_s;
      ev_dur_s = Float.max 0.0 (now -. start_s);
    };
  now

let run ?s ?schedule ?shards ?local pod x =
  let d = P.num_devices pod in
  if P.alive_count pod = 0 then raise Health.All_cores_dead;
  let primary = P.primary pod in
  let functional = Device.functional primary in
  let n = Global_tensor.length x in
  let dt = Global_tensor.dtype x in
  if not (Dtype.equal dt Dtype.F16) then
    invalid_arg
      (Printf.sprintf "Dist_scan.run: input must be f16 (got %s)"
         (Dtype.to_string dt));
  let nshards =
    match shards with
    | None -> d
    | Some k ->
        if k < 1 then invalid_arg "Dist_scan.run: shards must be >= 1";
        min k d
  in
  let sched = match schedule with Some s -> s | None -> default_schedule pod in
  let local_scan =
    match local with
    | Some f -> f
    | None -> fun dev xs -> Mcscan.run ?s dev xs
  in
  (* Failover rule: shard i runs on device i when alive, else on the
     next alive device in ascending cyclic order — deterministic, like
     the core-level replacement in Health/Scheduler. *)
  let exec_of i =
    let i = i mod d in
    if P.alive pod i then i
    else
      let rec go k =
        if k = d then raise Health.All_cores_dead
        else
          let c = (i + k) mod d in
          if P.alive pod c then c else go (k + 1)
      in
      go 1
  in
  let bounds =
    Array.init nshards (fun i -> (i * n / nshards, (i + 1) * n / nshards))
  in
  let execs = Array.init nshards exec_of in
  P.sync_clocks pod;
  let t_local = P.clock pod execs.(0) in
  let sends0 = P.link_sends pod in
  let retries0 = P.link_retries pod in
  let reroutes0 = P.reroutes pod in
  let link_s0 = P.link_seconds pod in
  (* Phase 1: shard-local scans, conceptually parallel across devices
     (each executor's clock advances independently). *)
  let shard_y = Array.make nshards None in
  let totals = Array.make nshards 0.0 in
  let stats_rev = ref [] in
  for i = 0 to nshards - 1 do
    let lo, hi = bounds.(i) in
    let len = hi - lo in
    if len > 0 then begin
      let e = execs.(i) in
      let dev = P.device pod e in
      let name = Printf.sprintf "dist_shard%d" i in
      let xs =
        if functional then
          Device.of_array dev dt ~name
            (Array.init len (fun j -> Global_tensor.get x (lo + j)))
        else Device.alloc dev dt len ~name
      in
      let t0 = P.clock pod e in
      let ys, st = local_scan dev xs in
      shard_y.(i) <- Some ys;
      stats_rev := st :: !stats_rev;
      P.advance_clock pod e st.Stats.seconds;
      P.record pod
        {
          P.ev_kind = P.Local_scan;
          ev_device = e;
          ev_peer = None;
          ev_label = Printf.sprintf "shard %d: local scan (%d elems)" i len;
          ev_start_s = t0;
          ev_dur_s = st.Stats.seconds;
        };
      if functional then totals.(i) <- Global_tensor.get ys (len - 1)
    end
  done;
  let t_exchange = phase pod "local scans" ~start_s:t_local in
  (* Prefix chain: ascending shard order, one fp16 rounding per fold —
     the value every exchange schedule delivers. *)
  let prefixes = Array.make nshards 0.0 in
  let running = ref 0.0 in
  for i = 0 to nshards - 1 do
    prefixes.(i) <- !running;
    running := Fp16.round (!running +. totals.(i))
  done;
  (* Phase 2: move the totals over the links. Same-physical-device
     hops are free; failed links retry, reroute, or raise
     Partitioned. *)
  (match sched with
  | Ring ->
      for i = 0 to nshards - 2 do
        ignore
          (P.send pod ~src:execs.(i) ~dst:execs.(i + 1)
             ~bytes:prefix_packet_bytes
             ~label:(Printf.sprintf "prefix[%d]" (i + 1)))
      done
  | All_gather ->
      for i = 0 to nshards - 1 do
        for j = 0 to nshards - 1 do
          if i <> j then
            ignore
              (P.send pod ~src:execs.(i) ~dst:execs.(j)
                 ~bytes:prefix_packet_bytes
                 ~label:(Printf.sprintf "total[%d]" i))
        done
      done);
  let t_fixup = phase pod "prefix exchange" ~start_s:t_exchange in
  (* Phase 3: per-shard fixup — a real vector kernel adding the shard
     prefix on the executing device. Shard 0's prefix is the identity
     and is skipped, as is any zero prefix (adding 0.0 is a no-op the
     single-device kernels don't charge either). Cost-only mode has no
     values, so it charges every non-first shard. *)
  for i = 0 to nshards - 1 do
    let lo, hi = bounds.(i) in
    let len = hi - lo in
    let wanted =
      len > 0 && i > 0 && ((not functional) || prefixes.(i) <> 0.0)
    in
    if wanted then begin
      let e = execs.(i) in
      let dev = P.device pod e in
      let ys = Option.get shard_y.(i) in
      let scalar = prefixes.(i) in
      let t0 = P.clock pod e in
      let st =
        Launch.run ~name:(Printf.sprintf "dist_fixup%d" i) dev ~blocks:1
          (fun ctx ->
            let tile = 16384 in
            let schedule = Scan_core.current_schedule () in
            let ub =
              Array.init 2 (fun _ ->
                  Block.alloc ctx (Mem_kind.Ub 0) dt (min tile len))
            in
            Scan_core.pipeline_tiles ctx ~schedule
              ~in_engine:(Engine.Vec_mte_in 0) ~tile ~n:len
              ~load:(fun ~slot ~off ~len ->
                Scan_core.stage_in ctx ~schedule
                  ~engine:(Engine.Vec_mte_in 0) ~src:ys ~src_off:off
                  ~dst:ub.(slot) ~len ())
              ~work:(fun ~slot ~off ~len ->
                Vec.adds ctx ~src:ub.(slot) ~dst:ub.(slot) ~scalar ~len ();
                Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0)
                  ~src:ub.(slot) ~dst:ys ~dst_off:off ~len ())
              ())
      in
      stats_rev := st :: !stats_rev;
      P.advance_clock pod e st.Stats.seconds;
      P.record pod
        {
          P.ev_kind = P.Fixup;
          ev_device = e;
          ev_peer = None;
          ev_label = Printf.sprintf "shard %d: fixup (+%g)" i scalar;
          ev_start_s = t0;
          ev_dur_s = st.Stats.seconds;
        }
    end
  done;
  ignore (phase pod "fixup" ~start_s:t_fixup);
  (* Gather the sharded outputs into one tensor on the primary. This is
     a host-side view change (a real pod would leave the result
     sharded), so it charges nothing. *)
  let y = Device.alloc primary dt n ~name:"dist_scan_y" in
  if functional then
    for i = 0 to nshards - 1 do
      let lo, hi = bounds.(i) in
      match shard_y.(i) with
      | Some ys ->
          for j = 0 to hi - lo - 1 do
            Global_tensor.set y (lo + j) (Global_tensor.get ys j)
          done
      | None -> ()
    done;
  let stats =
    match List.rev !stats_rev with
    | [] ->
        (* n = 0: nothing launched; an empty Stats keeps the API total. *)
        Stats.empty ~name:"dist_scan"
    | l -> Stats.combine ~name:"dist_scan" l
  in
  {
    y;
    stats;
    shards =
      Array.to_list (Array.mapi (fun i (lo, hi) -> (lo, hi, execs.(i))) bounds);
    link_seconds = P.link_seconds pod -. link_s0;
    exchange_sends = P.link_sends pod - sends0;
    exchange_retries = P.link_retries pod - retries0;
    rerouted = P.reroutes pod - reroutes0;
  }
