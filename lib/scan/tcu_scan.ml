open Ascend

(* Phase A: tile-local UL1 scans across all blocks; the last value of
   every tile is extracted into the carry array [t]. *)
let phase_local ~x ~y ~t ~s ~n ctx =
  let tile = s * s in
  let ntiles = Kernel_util.ceil_div n tile in
  let blocks = Block.num_blocks ctx in
  let i = Block.idx ctx in
  let mine = List.filter (fun k -> k mod blocks = i)
               (List.init ntiles Fun.id) in
  if mine <> [] then begin
    let schedule = Scan_core.current_schedule () in
    let bufs = Scan_ul1.alloc_bufs ctx ~s in
    let carry = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 16 in
    let items = Array.of_list mine in
    Scan_core.pipeline ctx ~schedule ~out:(Engine.Cube_mte_out, 2)
      ~in_engine:Engine.Cube_mte_in ~n:(Array.length items)
      ~load:(fun ~slot j ->
        let k = items.(j) in
        let off = k * tile in
        let len = min tile (n - off) in
        Scan_ul1.load_tile ctx ~schedule ~x ~off ~len ~bufs ~slot)
      ~work:(fun ~slot j ->
        let k = items.(j) in
        let off = k * tile in
        let len = min tile (n - off) in
        Scan_ul1.compute_tile ctx ~schedule ~y ~off ~len ~s ~bufs ~slot;
        (* Extract the tile's last (inclusive) value into t.(k); the
           vector MTE lane first joins the cube store stream so it
           reads the tile after the (possibly async) store retires. *)
        Block.await_engine ctx ~lane_of:(Engine.Vec_mte_in 0)
          ~on:Engine.Cube_mte_out;
        Mte.copy_in ctx ~engine:(Engine.Vec_mte_in 0) ~src:y
          ~src_off:(off + len - 1) ~dst:carry ~len:1 ();
        Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:carry ~dst:t
          ~dst_off:k ~len:1 ())
      ()
  end

(* Phase B: broadcast-add the scanned carry of the previous tile. *)
let phase_add ~y ~scanned_t ~s ~n ctx =
  let tile = s * s in
  let ntiles = Kernel_util.ceil_div n tile in
  let blocks = Block.num_blocks ctx in
  let i = Block.idx ctx in
  let vpc = (Block.cost ctx).Cost_model.vec_per_core in
  let mine = List.filter (fun k -> k mod blocks = i)
               (List.init ntiles Fun.id) in
  if mine <> [] then begin
    let schedule = Scan_core.current_schedule () in
    let ubs =
      List.init vpc (fun v ->
          Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) Dtype.F16 tile))
    in
    let carries =
      List.init vpc (fun v ->
          Array.init 2 (fun _ -> Block.alloc ctx (Mem_kind.Ub v) Dtype.F16 16))
    in
    (* Tiles alternate between the AI core's vector cores; each core
       runs its own 2-stage pipeline over its share of the tiles
       (add-in-place, so stores stay synchronous). *)
    for v = 0 to vpc - 1 do
      let items =
        List.filteri (fun idx _ -> idx mod vpc = v) mine
        |> List.filter (fun k -> k > 0)
        |> Array.of_list
      in
      let ub = List.nth ubs v and carry = List.nth carries v in
      Scan_core.pipeline ctx ~schedule ~in_engine:(Engine.Vec_mte_in v)
        ~n:(Array.length items)
        ~load:(fun ~slot j ->
          let k = items.(j) in
          let off = k * tile in
          let len = min tile (n - off) in
          Scan_core.stage_in ctx ~schedule ~engine:(Engine.Vec_mte_in v)
            ~src:scanned_t ~src_off:(k - 1) ~dst:carry.(slot) ~len:1 ();
          Scan_core.stage_in ctx ~schedule ~engine:(Engine.Vec_mte_in v)
            ~src:y ~src_off:off ~dst:ub.(slot) ~len ())
        ~work:(fun ~slot j ->
          let k = items.(j) in
          let off = k * tile in
          let len = min tile (n - off) in
          let c = Vec.get ctx ~vec:v carry.(slot) 0 in
          Vec.adds ctx ~vec:v ~src:ub.(slot) ~dst:ub.(slot) ~scalar:c ~len ();
          Mte.copy_out ctx ~engine:(Engine.Vec_mte_out v) ~src:ub.(slot)
            ~dst:y ~dst_off:off ~len ())
        ()
    done
  end

let rec scan_rec ?(s = 128) device x ~depth =
  let n = Global_tensor.length x in
  let tile = s * s in
  let name = Global_tensor.name x in
  if n <= tile then begin
    let y, stats = Scan_ul1.run ~s device x in
    (y, [ stats ])
  end
  else begin
    let ntiles = Kernel_util.ceil_div n tile in
    let y = Device.alloc device Dtype.F16 n ~name:(name ^ "_tcu_y") in
    let t =
      Device.alloc device Dtype.F16 ntiles
        ~name:(Printf.sprintf "%s_tcu_carry%d" name depth)
    in
    let blocks = Scheduler.blocks (Scheduler.plan device ~n:ntiles) in
    let s1 =
      Launch.run ~name:(Printf.sprintf "tcu_local_d%d" depth) device ~blocks
        (phase_local ~x ~y ~t ~s ~n)
    in
    let scanned_t, rec_stats = scan_rec ~s device t ~depth:(depth + 1) in
    let s2 =
      Launch.run ~name:(Printf.sprintf "tcu_add_d%d" depth) device ~blocks
        (phase_add ~y ~scanned_t ~s ~n)
    in
    (y, (s1 :: rec_stats) @ [ s2 ])
  end

let run ?(s = 128) device x =
  if s <= 0 then invalid_arg "Tcu_scan.run: s must be positive";
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Tcu_scan.run: input must be f16";
  if Global_tensor.length x = 0 then invalid_arg "Tcu_scan.run: empty input";
  let y, stats = scan_rec ~s device x ~depth:0 in
  (y, Stats.combine ~name:"tcu_scan" stats)
