open Ascend

let run ?(s = 128) ?(no_pipeline = false) device x =
  if s <= 0 then invalid_arg "Scan_u.run: s must be positive";
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Scan_u.run: input must be f16";
  let n = Global_tensor.length x in
  let y = Device.alloc device Dtype.F16 n ~name:(Global_tensor.name x ^ "_scanu") in
  let tile = s * s in
  let body ctx =
    let l0a = Block.alloc ctx Mem_kind.L0a Dtype.F16 tile in
    let l0c = Block.alloc ctx Mem_kind.L0c Dtype.F32 tile in
    let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 tile in
    let u =
      Scan_core.load_cube_encoding
        (module Scan_op.Sum)
        ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L0b ~dtype:Dtype.F16 ~s
    in
    let partial = ref (Scan_op.Sum.identity Dtype.F16) in
    (* no_pipeline is the A2 ablation hook: serial tile iteration makes
       the section time the serial sum of all engine work. *)
    Scan_core.foreach_tile ctx ~serial:no_pipeline ~tile ~n (fun ~off ~len ->
        Kernel_util.cube_local_scans ctx ~x ~off ~len ~s ~l0a ~u ~l0c ~y;
        (* The vector core waits for the cube result in GM, finishes
           the prefix in place, and writes it back. *)
        Scan_core.finish_tile
          (module Scan_op.Sum)
          ctx ~vec:0 ~src:y ~ub ~dst:y ~off ~len ~s ~partial ())
  in
  let stats = Launch.run ~name:"scan_u" device ~blocks:1 body in
  (y, stats)
