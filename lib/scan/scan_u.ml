open Ascend

let run ?(s = 128) ?(no_pipeline = false) device x =
  if s <= 0 then invalid_arg "Scan_u.run: s must be positive";
  if not (Dtype.equal (Global_tensor.dtype x) Dtype.F16) then
    invalid_arg "Scan_u.run: input must be f16";
  let n = Global_tensor.length x in
  let y = Device.alloc device Dtype.F16 n ~name:(Global_tensor.name x ^ "_scanu") in
  let tile = s * s in
  let body ctx =
    (* no_pipeline is the A2 ablation hook: the Serial schedule runs
       every copy synchronously with a full barrier between tiles, so
       the block charges the serial sum of all engine work. *)
    let schedule =
      if no_pipeline then Scan_core.Serial else Scan_core.current_schedule ()
    in
    (* Ping-pong slots: two f16 input tiles fill L0A exactly (2 x 32 KB)
       and two f32 accumulators take half of L0C, so copy-in of tile
       [t+1], the mmad of tile [t] and copy-out of tile [t-1] all
       overlap — the 3-stage pipeline of the paper's ScanU. *)
    let l0a = Array.init 2 (fun _ -> Block.alloc ctx Mem_kind.L0a Dtype.F16 tile) in
    let l0c = Array.init 2 (fun _ -> Block.alloc ctx Mem_kind.L0c Dtype.F32 tile) in
    let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 tile in
    let u =
      Scan_core.load_cube_encoding
        (module Scan_op.Sum)
        ctx ~engine:Engine.Cube_mte_in ~kind:Mem_kind.L0b ~dtype:Dtype.F16 ~s
    in
    let partial = ref (Scan_op.Sum.identity Dtype.F16) in
    Scan_core.pipeline_tiles ctx ~schedule
      ~out:(Engine.Cube_mte_out, 2) ~in_engine:Engine.Cube_mte_in ~tile ~n
      ~load:(fun ~slot ~off ~len ->
        Scan_core.stage_in ctx ~schedule ~engine:Engine.Cube_mte_in ~src:x
          ~src_off:off ~dst:l0a.(slot) ~len ())
      ~work:(fun ~slot ~off ~len ->
        let rows = Kernel_util.ceil_div len s in
        Cube.mmad ctx ~a:l0a.(slot) ~b:u ~c:l0c.(slot) ~m:rows ~k:s ~n:s
          ~accumulate:false;
        Scan_core.stage_out ctx ~schedule ~engine:Engine.Cube_mte_out
          ~src:l0c.(slot) ~dst:y ~dst_off:off ~len ();
        (* The vector core waits for the cube result in GM, finishes
           the prefix in place, and writes it back; its lane overlaps
           the cube's next tile. *)
        Scan_core.finish_tile
          (module Scan_op.Sum)
          ctx ~vec:0 ~await:Engine.Cube_mte_out ~src:y ~ub ~dst:y ~off ~len ~s
          ~partial ())
      ()
  in
  let stats = Launch.run ~name:"scan_u" device ~blocks:1 body in
  (y, stats)
