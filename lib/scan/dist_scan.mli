(** Distributed scan across a {!Pod}: local scan per device →
    device-prefix exchange over the links → local fixup.

    The input (resident on the pod's primary device) is split into one
    contiguous shard per {e logical} shard slot — by default one slot
    per pod device, fixed by the pod's creation geometry, {e not} by
    which devices currently survive. Shard [i] runs on device [i] when
    it is alive, otherwise on the next alive device in ascending cyclic
    order (the same deterministic failover rule {!Ascend.Health} /
    the scheduler apply to cores). Because every device is an identical
    simulated instance, the kernel launches — and therefore the output
    bytes and the combined {!Ascend.Stats} — are bit-identical for any
    surviving subset; only the link-time side channel
    ([link_seconds], retries) depends on placement, which is why it is
    reported separately and {e not} folded into [stats].

    Two exchange schedules move the shard totals:

    - {b Ring}: the running prefix hops executor-to-executor in shard
      order (d-1 sequential sends);
    - {b All-gather}: every executor broadcasts its total and each
      receiver folds the prefix chain locally (d(d-1) sends, one
      round).

    Both schedules fold totals in ascending shard order with one fp16
    rounding per step, so they are numerically identical; they differ
    only in link traffic and critical path. The fixup is a real vector
    kernel ([Vec.adds] of the shard prefix) on the executing device.

    Exactness: like the in-device blocked scans, [dist_scan] equals the
    chained sequential reference bit-for-bit whenever the partial sums
    are exactly representable in fp16 (the 0/1 and ternary inputs every
    enumerating test uses); for general data it carries the standard
    blocked-scan rounding caveat. *)

open Ascend

type schedule = Ring | All_gather

val schedule_to_string : schedule -> string
val schedule_of_string : string -> (schedule, string) result

val default_schedule : Pod.t -> schedule
(** Ring pods exchange in a ring; fully-connected pods all-gather. *)

type report = {
  y : Global_tensor.t;  (** gathered output, on the primary device *)
  stats : Stats.t;
  (** combined local-scan + fixup launch stats — placement-invariant *)
  shards : (int * int * int) list;
  (** [(lo, hi, executing device)] per shard slot, in slot order *)
  link_seconds : float;  (** link time charged for the exchange *)
  exchange_sends : int;  (** link sends issued (excl. same-device) *)
  exchange_retries : int;  (** link attempts beyond the first *)
  rerouted : int;  (** sends delivered through a relay *)
}

val run :
  ?s:int ->
  ?schedule:schedule ->
  ?shards:int ->
  ?local:(Device.t -> Global_tensor.t -> Global_tensor.t * Stats.t) ->
  Pod.t ->
  Global_tensor.t ->
  report
(** Scan [x] (on the pod's primary) across the pod. [shards] defaults
    to the pod's device count; the brownout ladder shrinks it to cut
    exchange traffic. [local] defaults to {!Mcscan.run} and runs each
    shard on its executing device. Raises
    [Ascend.Health.All_cores_dead] when no pod device is alive, and
    propagates {!Pod.Partitioned} when the exchange cannot be
    delivered. *)
