(* Command-line driver for the simulated Ascend scan library.

   Subcommands:
     scan     run a scan algorithm over a synthetic workload
     batched  run a batched scan (optionally checkpointed)
     sort     run the radix sort (and optionally the bitonic baseline)
     topp     run one top-p sampling step
     info     print the device / cost-model description

   Examples:
     ascend_scan_cli scan --algo mcscan -n 65536 --check
     ascend_scan_cli scan --algo mcscan -n 1048576 --kill-core 3@5000
     ascend_scan_cli scan --algo scanul1 -n 65536 -s 64 --cost-only
     ascend_scan_cli batched --batch 64 --len 16384 --checkpoint
     ascend_scan_cli sort -n 262144 --baseline
     ascend_scan_cli topp -n 32768 -p 0.9 --theta 0.3 *)

open Cmdliner

(* Pull in the [ops] registry entries: without this forcing call the
   linker would drop the registration module and --list-ops would only
   show the scan kernels. *)
let () = Ops.Ops_registry.install ()

(* Argument-validation failures beyond what cmdliner can express; they
   exit 2 with a usage pointer, unlike runtime kernel errors (exit 1). *)
exception Usage_error of string

let is_sum_monoid (algo : Scan.Scan_api.algo) =
  match algo.Scan.Op_registry.monoid with
  | Some (module Op : Scan.Scan_op.S) -> String.equal Op.name "sum"
  | None -> false

let check_n n =
  if n < 1 then
    raise (Usage_error (Printf.sprintf "N must be >= 1 (got %d)" n))

let make_device ?faults ?(kills = []) ?quarantine ?deadline ?(sanitize = false)
    ?domains cost_only =
  (match domains with
  | Some d when d < 1 ->
      raise
        (Usage_error
           (Printf.sprintf "--domains: domain count must be >= 1 (got %d)" d))
  | _ -> ());
  let num_cores = Ascend.Cost_model.default.Ascend.Cost_model.num_ai_cores in
  List.iter
    (fun (core, _) ->
      if core >= num_cores then
        raise
          (Usage_error
             (Printf.sprintf "--kill-core: core %d out of range [0,%d)" core
                num_cores)))
    kills;
  (match deadline with
  | Some d when d <= 0.0 ->
      raise (Usage_error "--deadline: budget must be a positive cycle count")
  | _ -> ());
  (match quarantine with
  | Some q when q < 1 ->
      raise (Usage_error "--quarantine: fault budget must be >= 1")
  | _ -> ());
  let fault =
    match (faults, kills, quarantine) with
    | None, [], None -> None
    | _ ->
        (* Kills and quarantine ride on the fault config; without
           --inject-faults the injector runs at rate 0 (no transient
           faults, persistent modes only). *)
        let seed, rate = Option.value ~default:(0, 0.0) faults in
        Some
          (Ascend.Fault.config ~seed ~rate ~kills ?quarantine_after:quarantine
             ())
  in
  Ascend.Device.create
    ~mode:(if cost_only then Ascend.Device.Cost_only else Ascend.Device.Functional)
    ?fault ~sanitize ?deadline_cycles:deadline ?domains ()

let print_stats st = Format.printf "%a@." Ascend.Stats.pp st

(* Post-run robustness reports: the fault log and the sanitizer
   diagnostics, whenever the corresponding flag armed them. *)
let print_robustness device =
  (match Ascend.Device.fault device with
  | Some f -> Format.printf "%a@." Ascend.Fault.pp_summary f
  | None -> ());
  (match Ascend.Device.sanitizer device with
  | Some san -> Format.printf "%a@." Ascend.Sanitizer.pp_report san
  | None -> ());
  let health = Ascend.Device.health device in
  if
    Ascend.Health.deaths health <> []
    || Ascend.Health.num_alive health < Ascend.Device.num_cores device
  then Format.printf "%a@." Ascend.Health.pp health

(* Observability options (tracing, stats export, metrics), shared by
   the kernel-running subcommands. Arming happens before the run (the
   recorder hooks the launch engine), emission after. *)

type obs_opts = {
  trace_file : string option;
  stats_json_file : string option;
  metrics : bool;
  profile_file : string option;
}

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let obs_term =
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record every simulated instruction and write a Chrome \
             trace-event JSON file (load it in Perfetto or \
             chrome://tracing, or inspect it with $(b,trace summary)).")
  in
  let stats_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Write the run statistics as a JSON document.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print Prometheus text-format counters and histograms for the \
             run on stdout.")
  in
  let profile_arg =
    Arg.(
      value
      & opt ~vopt:(Some "profile.json") (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:
            "Record the run, reconstruct the launch DAG from the trace, and \
             print the critical-path profile (per-engine blame, what-if \
             analysis, roofline); also writes the profile document to \
             $(docv) (default $(b,profile.json)).")
  in
  Term.(
    const (fun trace_file stats_json_file metrics profile_file ->
        { trace_file; stats_json_file; metrics; profile_file })
    $ trace_arg $ stats_json_arg $ metrics_arg $ profile_arg)

let arm_obs device obs =
  if obs.trace_file <> None || obs.metrics || obs.profile_file <> None then
    ignore (Ascend.Device.arm_trace device)

(* Critical-path profile of a parsed trace document: print the
   human-readable report and write the combined profile.json
   (blame + what-if + roofline). Shared by the --profile run flag and
   the offline [profile] subcommand. *)
let emit_profile ?out doc =
  match Obs.Critical_path.of_json doc with
  | Error e ->
      Format.eprintf "profile: %s@." e;
      exit 1
  | Ok p ->
      Format.printf "%a" Obs.Critical_path.pp p;
      Format.printf "%a" (fun ppf -> Obs.Whatif.pp ppf) p;
      (match out with
      | Some file ->
          let merged =
            match (Obs.Critical_path.report p, Obs.Whatif.report p) with
            | Obs.Jsonw.Obj a, Obs.Jsonw.Obj b ->
                Obs.Jsonw.Obj
                  (a
                  @ List.filter (fun (k, _) -> k <> "baseline_cycles") b)
            | a, _ -> a
          in
          write_file file (Obs.Jsonw.to_string merged);
          Format.printf "profile json -> %s@." file
      | None -> ())

let emit_obs ?extra device obs st =
  let trace = Ascend.Device.trace device in
  (match (obs.trace_file, trace) with
  | Some file, Some tr ->
      (match Ascend.Trace.check tr with
      | Ok () -> ()
      | Error e ->
          (* A consistency failure is a simulator bug, not a user error:
             still write the file (it is the evidence), but say so. *)
          Format.eprintf "trace: internal consistency check FAILED: %s@." e);
      write_file file (Obs.Chrome_trace.to_string tr);
      Format.printf "trace: %d events -> %s@."
        (Ascend.Trace.event_count tr)
        file
  | _ -> ());
  (match (obs.profile_file, trace) with
  | Some out, Some tr -> emit_profile ~out (Obs.Chrome_trace.json tr)
  | _ -> ());
  (match obs.stats_json_file with
  | Some file ->
      write_file file (Obs.Stats_json.to_string st);
      Format.printf "stats json -> %s@." file
  | None -> ());
  if obs.metrics then begin
    let m = Obs.Metrics.create () in
    Obs.Metrics.observe_stats m st;
    Option.iter (Obs.Metrics.observe_trace m) trace;
    (* Critical-path gauges (per-phase overlap ratio, makespan blame)
       ride along whenever a recording exists — --metrics arms one. *)
    Option.iter
      (fun tr ->
        match Obs.Critical_path.of_json (Obs.Chrome_trace.json tr) with
        | Ok p -> Obs.Metrics.observe_profile m p
        | Error e -> Format.eprintf "metrics: profile skipped: %s@." e)
      trace;
    (* Subcommand-specific series (resilient reports, controller
       decisions) ride on the same registry and exposition. *)
    (match extra with Some f -> f m | None -> ());
    Format.printf "%a" Obs.Metrics.pp_prometheus m
  end

(* Common options. *)

let n_arg =
  Arg.(value & opt int 65536 & info [ "n"; "length" ] ~docv:"N" ~doc:"Input length.")

let s_arg =
  Arg.(
    value
    & opt int 128
    & info [ "s"; "tile" ] ~docv:"S" ~doc:"Matrix tile size (16..128).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let cost_only_arg =
  Arg.(
    value & flag
    & info [ "cost-only" ]
        ~doc:"Skip functional computation; model timing only (allows huge N).")

let faults_conv =
  let parse s =
    match Ascend.Fault.parse_spec s with
    | Ok v -> Ok v
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"SEED:RATE"
    (parse, fun fmt (seed, rate) -> Format.fprintf fmt "%d:%g" seed rate)

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "inject-faults" ] ~docv:"SEED:RATE"
        ~doc:
          "Arm the deterministic fault injector: each MTE transfer faults \
           with probability RATE, drawn from a splitmix64 stream seeded with \
           SEED.")

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Arm the hardware sanitizer: record out-of-bounds tensor accesses \
           and cross-block global-memory hazards, and print the report.")

let kill_conv =
  let parse s =
    match Ascend.Health.parse_kill_spec s with
    | Ok v -> Ok v
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"CORE[@CYCLE]"
    (parse, fun fmt (core, cycle) -> Format.fprintf fmt "%d@%g" core cycle)

let kill_arg =
  Arg.(
    value
    & opt_all kill_conv []
    & info [ "kill-core" ] ~docv:"CORE[@CYCLE]"
        ~doc:
          "Kill AI core CORE once it has executed CYCLE busy cycles (0, the \
           default, kills it before the first launch). Repeatable. The \
           scheduler re-shards all kernels over the surviving cores; results \
           stay bit-identical.")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"CYCLES"
        ~doc:
          "Arm the launch watchdog: abort any launch whose compute critical \
           path exceeds CYCLES cycles (exit 1 with a structured error \
           instead of silently inflated stats).")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Dispatch the independent blocks of each launch phase across N \
           host domains (OCaml 5 runtime threads). Outputs and simulated \
           statistics are bit-identical to the sequential schedule; only \
           host wall-clock time changes. Defaults to \
           $(b,ASCEND_SIM_DOMAINS), or 1.")

let quarantine_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "quarantine" ] ~docv:"N"
        ~doc:
          "Permanently quarantine a core after N injected faults land on it \
           (persistent-health scoring on top of --inject-faults).")

(* scan subcommand. *)

let scan_cmd =
  let algo_arg =
    let algo_conv =
      Arg.conv ~docv:"ALGO"
        ( (fun s ->
            match Scan.Scan_api.algo_of_string s with
            | Some a -> Ok a
            | None -> Error (`Msg ("unknown algorithm: " ^ s))),
          fun fmt a ->
            Format.pp_print_string fmt (Scan.Scan_api.algo_to_string a) )
    in
    Arg.(
      value
      & opt algo_conv (Scan.Scan_api.get "mcscan")
      & info [ "algo"; "a" ] ~docv:"ALGO"
          ~doc:
            ("Algorithm: "
            ^ String.concat ", "
                (List.map Scan.Scan_api.algo_to_string Scan.Scan_api.all_algos)
            ^ " (any registry name or alias)."))
  in
  let exclusive_arg =
    Arg.(
      value & flag
      & info [ "exclusive" ]
          ~doc:"Exclusive scan (entries with the exclusive capability only).")
  in
  let check_arg =
    Arg.(value & flag & info [ "check" ] ~doc:"Validate against the reference oracle.")
  in
  let resilient_arg =
    Arg.(
      value & flag
      & info [ "resilient" ]
          ~doc:
            "Run through the self-checking resilient launcher: validate the \
             output against a checksum oracle, retry on detected corruption \
             and degrade to the vector-only kernel when retries are \
             exhausted. Requires functional mode.")
  in
  let devices_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "devices" ] ~docv:"D"
          ~doc:
            "Pod size for pod-backed entries ($(b,dist_scan) runs its shards \
             across D simulated devices); ignored by single-device kernels.")
  in
  let run algo n s exclusive devices cost_only check resilient faults kills
      quarantine deadline sanitize domains seed obs =
    check_n n;
    (match devices with
    | Some d when d < 1 ->
        raise
          (Usage_error
             (Printf.sprintf "--devices: device count must be >= 1 (got %d)" d))
    | _ -> ());
    (* Capability violations are argument errors (exit 2), not runtime
       kernel failures: check the registry before touching the device. *)
    if exclusive && not algo.Scan.Op_registry.caps.Scan.Op_registry.exclusive
    then
      raise
        (Usage_error
           (Printf.sprintf "--exclusive: %s does not support exclusive scans"
              (Scan.Scan_api.algo_to_string algo)));
    if resilient && cost_only then
      raise (Usage_error "--resilient requires functional mode (drop --cost-only)");
    let device =
      make_device ?faults ~kills ?quarantine ?deadline ~sanitize ?domains
        cost_only
    in
    arm_obs device obs;
    let gen i = if (i + seed) mod 53 = 0 then 1.0 else 0.0 in
    if resilient then begin
      let input = Array.init n gen in
      let oracle =
        if check then Runtime.Resilient.Reference else Runtime.Resilient.Checksum
      in
      (* The vector-only kernel is a valid degradation target only for
         entries computing the same (sum) monoid. *)
      let fallback =
        if is_sum_monoid algo then Some (Scan.Scan_api.get "vec_only") else None
      in
      let r =
        Runtime.Resilient.scan ~s ~exclusive ~oracle ?fallback ~algo device
          ~input
      in
      Format.printf "%a@."
        (Runtime.Resilient.pp_report (fun fmt y ->
             Format.fprintf fmt "y[n-1] = %g"
               (Ascend.Global_tensor.get y (n - 1))))
        r;
      print_stats r.Runtime.Resilient.stats;
      print_robustness device;
      emit_obs device obs r.Runtime.Resilient.stats
        ~extra:(fun m -> Obs.Metrics.observe_report m r);
      if not r.Runtime.Resilient.ok then exit 1
    end
    else begin
      let x =
        if cost_only then Ascend.Device.alloc device Ascend.Dtype.F16 n ~name:"x"
        else Ascend.Device.of_array device Ascend.Dtype.F16 ~name:"x" (Array.init n gen)
      in
      let y, st = Scan.Scan_api.run ~s ~exclusive ?devices ~algo device x in
      print_stats st;
      Format.printf "effective scan bandwidth: %.1f GB/s@."
        (Workload.Metrics.scan_bandwidth st ~n ~esize:2 /. 1e9);
      print_robustness device;
      emit_obs device obs st;
      if check && not cost_only then begin
        let input = Array.init n gen in
        match
          Scan.Scan_api.check_scan ~round:Ascend.Fp16.round ~exclusive ~algo
            ~dtype:Ascend.Dtype.F16 ~input ~output:y ()
        with
        | Ok () -> Format.printf "check: ok@."
        | Error e ->
            Format.printf "check: FAILED (%s)@." e;
            exit 1
      end
    end
  in
  let term =
    Term.(
      const run $ algo_arg $ n_arg $ s_arg $ exclusive_arg $ devices_arg
      $ cost_only_arg $ check_arg $ resilient_arg $ faults_arg $ kill_arg
      $ quarantine_arg $ deadline_arg $ sanitize_arg $ domains_arg $ seed_arg
      $ obs_term)
  in
  Cmd.v (Cmd.info "scan" ~doc:"Run a parallel scan algorithm.") term

(* batched subcommand. *)

let batched_cmd =
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch"; "b" ] ~docv:"B" ~doc:"Number of independent rows.")
  in
  let len_arg =
    Arg.(
      value & opt int 16384
      & info [ "len"; "l" ] ~docv:"L" ~doc:"Length of each row.")
  in
  let algo_arg =
    (* The accepted schedules are the registry's batched entries mapped
       to the resilient runner's schedule type; registering a new
       batched kernel extends this enum through the name mapping. *)
    let schedules =
      List.filter_map
        (fun (e : Scan.Op_registry.entry) ->
          if not e.Scan.Op_registry.caps.Scan.Op_registry.batched then None
          else
            match e.Scan.Op_registry.name with
            | "batched_u" -> Some ("u", Runtime.Resilient.U)
            | "batched_ul1" -> Some ("ul1", Runtime.Resilient.Ul1)
            | _ -> None)
        (Scan.Op_registry.scans ())
    in
    Arg.(
      value
      & opt (enum schedules) Runtime.Resilient.U
      & info [ "algo"; "a" ] ~docv:"ALGO"
          ~doc:"Batched schedule: u (ScanU per row) or ul1 (L1-resident).")
  in
  let checkpoint_arg =
    Arg.(
      value & flag
      & info [ "checkpoint" ]
          ~doc:
            "Run through the checkpointed resilient runner: commit validated \
             row groups and replay only unfinished rows after a mid-batch \
             failure. Requires functional mode.")
  in
  let granularity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "granularity" ] ~docv:"ROWS"
          ~doc:
            "Rows per checkpoint group (default: quarter batches). Only \
             meaningful with --checkpoint.")
  in
  let run batch len s algo checkpoint granularity cost_only faults kills
      quarantine deadline sanitize domains seed obs =
    if batch < 1 then raise (Usage_error "--batch must be >= 1");
    if len < 1 then raise (Usage_error "--len must be >= 1");
    (match granularity with
    | Some g when g < 1 -> raise (Usage_error "--granularity must be >= 1")
    | _ -> ());
    if checkpoint && cost_only then
      raise
        (Usage_error "--checkpoint requires functional mode (drop --cost-only)");
    let device =
      make_device ?faults ~kills ?quarantine ?deadline ~sanitize ?domains
        cost_only
    in
    arm_obs device obs;
    let gen i = if (i + seed) mod 53 = 0 then 1.0 else 0.0 in
    if checkpoint then begin
      let input = Array.init (batch * len) gen in
      let r =
        Runtime.Resilient.batched_scan ~s ?granularity ~backoff_s:1e-6
          ~schedule:algo device ~batch ~len ~input
      in
      Format.printf "%a@." Runtime.Resilient.pp_batched_report r;
      print_stats r.Runtime.Resilient.bstats;
      print_robustness device;
      emit_obs device obs r.Runtime.Resilient.bstats
        ~extra:(fun m -> Obs.Metrics.observe_batched_report m r);
      if not r.Runtime.Resilient.bok then exit 1
    end
    else begin
      let x =
        if cost_only then
          Ascend.Device.alloc device Ascend.Dtype.F16 (batch * len) ~name:"x"
        else
          Ascend.Device.of_array device Ascend.Dtype.F16 ~name:"x"
            (Array.init (batch * len) gen)
      in
      let _, st =
        match algo with
        | Runtime.Resilient.U -> Scan.Batched_scan.run_u ~s device ~batch ~len x
        | Runtime.Resilient.Ul1 ->
            Scan.Batched_scan.run_ul1 ~s device ~batch ~len x
      in
      print_stats st;
      print_robustness device;
      emit_obs device obs st
    end
  in
  let term =
    Term.(
      const run $ batch_arg $ len_arg $ s_arg $ algo_arg $ checkpoint_arg
      $ granularity_arg $ cost_only_arg $ faults_arg $ kill_arg
      $ quarantine_arg $ deadline_arg $ sanitize_arg $ domains_arg $ seed_arg
      $ obs_term)
  in
  Cmd.v
    (Cmd.info "batched"
       ~doc:"Run a batched scan (one scan per row, optionally checkpointed).")
    term

(* sort subcommand. *)

let sort_cmd =
  let baseline_arg =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Also run the bitonic torch.sort model.")
  in
  let bits_arg =
    Arg.(value & opt int 16 & info [ "bits" ] ~docv:"BITS" ~doc:"Radix passes (u16 keys).")
  in
  let run n s bits baseline cost_only faults kills quarantine deadline sanitize
      domains seed obs =
    check_n n;
    let device =
      make_device ?faults ~kills ?quarantine ?deadline ~sanitize ?domains
        cost_only
    in
    arm_obs device obs;
    (* Fewer than 16 bits selects the low-precision u16 key path. *)
    let dtype = if bits < 16 then Ascend.Dtype.U16 else Ascend.Dtype.F16 in
    let x =
      if cost_only then Ascend.Device.alloc device dtype n ~name:"keys"
      else if bits < 16 then
        Ascend.Device.of_array device dtype ~name:"keys"
          (Array.init n (fun i ->
               float_of_int ((i * 2654435761) land ((1 lsl bits) - 1))))
      else
        Ascend.Device.of_array device dtype ~name:"keys"
          (Workload.Generators.uniform_f16 ~seed ~lo:(-100.0) ~hi:100.0 n)
    in
    let r = Ops.Radix_sort.run ~s ~bits device x in
    print_stats r.Ops.Radix_sort.stats;
    print_robustness device;
    if not cost_only then begin
      let sorted = ref true in
      for i = 1 to n - 1 do
        if
          Ascend.Global_tensor.get r.Ops.Radix_sort.values (i - 1)
          > Ascend.Global_tensor.get r.Ops.Radix_sort.values i
        then sorted := false
      done;
      Format.printf "sorted: %b@." !sorted
    end;
    if baseline then
      if bits < 16 then
        Format.printf "baseline: skipped (torch.sort model takes f16 keys)@."
      else if n land (n - 1) <> 0 then
        Format.printf "baseline: skipped (bitonic model needs a power-of-two n)@."
      else begin
        let _, st = Ops.Baseline.sort device x in
        print_stats st;
        Format.printf "radix speedup over torch.sort: %.2fx@."
          (st.Ascend.Stats.seconds
          /. r.Ops.Radix_sort.stats.Ascend.Stats.seconds)
      end;
    (* Emit after the optional baseline so the trace covers every
       launch of the invocation. *)
    emit_obs device obs r.Ops.Radix_sort.stats
  in
  let term =
    Term.(
      const run $ n_arg $ s_arg $ bits_arg $ baseline_arg $ cost_only_arg
      $ faults_arg $ kill_arg $ quarantine_arg $ deadline_arg $ sanitize_arg
      $ domains_arg $ seed_arg $ obs_term)
  in
  Cmd.v (Cmd.info "sort" ~doc:"Run the cube-split radix sort.") term

(* topp subcommand. *)

let topp_cmd =
  let p_arg =
    Arg.(value & opt float 0.9 & info [ "p" ] ~docv:"P" ~doc:"Nucleus mass.")
  in
  let theta_arg =
    Arg.(value & opt float 0.4 & info [ "theta" ] ~docv:"T" ~doc:"Uniform draw in [0,1).")
  in
  let run n s p theta cost_only seed =
    let device = make_device cost_only in
    let probs =
      if cost_only then Ascend.Device.alloc device Ascend.Dtype.F16 n ~name:"probs"
      else
        Ascend.Device.of_array device Ascend.Dtype.F16 ~name:"probs"
          (Workload.Generators.softmax_probs ~seed n)
    in
    let r = Ops.Topp.sample ~s device ~probs ~p ~theta in
    print_stats r.Ops.Topp.stats;
    (match r.Ops.Topp.token with
    | Some tok -> Format.printf "token: %d (nucleus %d tokens)@." tok r.Ops.Topp.kept
    | None -> Format.printf "token: n/a (cost-only)@.")
  in
  let term =
    Term.(const run $ n_arg $ s_arg $ p_arg $ theta_arg $ cost_only_arg $ seed_arg)
  in
  Cmd.v (Cmd.info "topp" ~doc:"Run one top-p (nucleus) sampling step.") term

(* reduce subcommand. *)

let reduce_cmd =
  let engine_arg =
    Arg.(
      value
      & opt (enum [ ("cube", `Cube); ("vec", `Vec) ]) `Cube
      & info [ "engine" ] ~docv:"ENGINE" ~doc:"cube (matmul-only) or vec.")
  in
  let run n s engine cost_only seed =
    let device = make_device cost_only in
    let x =
      if cost_only then Ascend.Device.alloc device Ascend.Dtype.F16 n ~name:"x"
      else
        Ascend.Device.of_array device Ascend.Dtype.F16 ~name:"x"
          (Workload.Generators.small_ints ~seed ~max_value:3 n)
    in
    let total, _, st =
      match engine with
      | `Cube -> Scan.Cube_reduce.run_cube ~s device x
      | `Vec -> Scan.Cube_reduce.run_vec device x
    in
    print_stats st;
    if not cost_only then Format.printf "sum: %g@." total
  in
  let term =
    Term.(const run $ n_arg $ s_arg $ engine_arg $ cost_only_arg $ seed_arg)
  in
  Cmd.v (Cmd.info "reduce" ~doc:"Run a sum reduction (cube or vector engines).") term

(* topk subcommand. *)

let topk_cmd =
  let k_arg =
    Arg.(value & opt int 256 & info [ "k" ] ~docv:"K" ~doc:"Number of largest values.")
  in
  let algo_arg =
    Arg.(
      value
      & opt (enum [ ("stock", `Stock); ("quickselect", `Quick); ("radix", `Radix) ]) `Radix
      & info [ "impl" ] ~docv:"IMPL" ~doc:"stock, quickselect or radix.")
  in
  let run n k algo seed =
    let device = make_device false in
    let x =
      Ascend.Device.of_array device Ascend.Dtype.F16 ~name:"x"
        (Workload.Generators.uniform_f16 ~seed ~lo:(-100.0) ~hi:100.0 n)
    in
    let out, st =
      match algo with
      | `Stock -> Ops.Baseline.topk device x ~k
      | `Quick -> Ops.Topk.run device x ~k
      | `Radix -> Ops.Radix_select.run device x ~k
    in
    print_stats st;
    Format.printf "top-3: %g %g %g@."
      (Ascend.Global_tensor.get out 0)
      (Ascend.Global_tensor.get out (min 1 (k - 1)))
      (Ascend.Global_tensor.get out (min 2 (k - 1)))
  in
  let term = Term.(const run $ n_arg $ k_arg $ algo_arg $ seed_arg) in
  Cmd.v (Cmd.info "topk" ~doc:"Run a top-k selection.") term

(* chaos subcommand group: scenario-driven failure storylines over the
   checkpointed batched runner, with crash-consistent resume.

   chaos run    --scenario FILE [--store FILE]   fresh run; a [crash]
                event self-SIGKILLs (default) so the store is the only
                survivor — exactly the failure being rehearsed.
   chaos resume --scenario FILE --store FILE     continue a killed run
                from the store (crash events are skipped: one
                storyline, one host crash).
   chaos report --scenario FILE [--store FILE]   validate and print a
                scenario, and the durable state of a store. *)

let chaos_cmd =
  let scenario_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "scenario" ] ~docv:"FILE"
          ~doc:
            "Chaos scenario file (see $(b,chaos report) and DESIGN.md §4e \
             for the DSL). Malformed files exit 2.")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "Crash-consistent checkpoint store path: validated row groups \
             are durably committed there, and $(b,chaos resume) continues \
             from them.")
  in
  let batch_arg =
    Arg.(
      value & opt int 32
      & info [ "batch"; "b" ] ~docv:"B" ~doc:"Number of independent rows.")
  in
  let len_arg =
    Arg.(
      value & opt int 4096
      & info [ "len"; "l" ] ~docv:"L" ~doc:"Length of each row.")
  in
  let granularity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "granularity" ] ~docv:"ROWS"
          ~doc:
            "Base rows per checkpoint group (default: quarter batches); the \
             degradation controller shrinks it under brownout.")
  in
  let crash_mode_arg =
    Arg.(
      value
      & opt (enum [ ("sigkill", `Sigkill); ("raise", `Raise) ]) `Sigkill
      & info [ "crash-mode" ] ~docv:"MODE"
          ~doc:
            "What a $(b,crash) event does: $(b,sigkill) (default) kills this \
             process with SIGKILL — the e2e harness's real mid-batch death — \
             while $(b,raise) aborts with a clean error (exit 1) for \
             in-process testing.")
  in
  let load_scenario file =
    match Runtime.Chaos.load file with
    | Ok sc -> sc
    | Error msg -> raise (Usage_error msg)
  in
  (* The store's meta pins everything that shapes the bytes being
     resumed: scenario identity plus run geometry. A resume with a
     different scenario, size or workload would silently splice
     incompatible rows together — refuse it up front. *)
  let meta_of sc ~batch ~len ~s ~seed =
    Printf.sprintf "%s|seed=%d|batch=%d|len=%d|s=%d|wseed=%d"
      sc.Runtime.Chaos.sc_name sc.Runtime.Chaos.sc_seed batch len s seed
  in
  let run_or_resume ~resume scenario_file store_path batch len s granularity
      crash_mode seed obs =
    if batch < 1 then raise (Usage_error "--batch must be >= 1");
    if len < 1 then raise (Usage_error "--len must be >= 1");
    (match granularity with
    | Some g when g < 1 -> raise (Usage_error "--granularity must be >= 1")
    | _ -> ());
    let sc = load_scenario scenario_file in
    let meta = meta_of sc ~batch ~len ~s ~seed in
    let store =
      match (store_path, resume) with
      | None, true -> raise (Usage_error "chaos resume requires --store FILE")
      | None, false -> None
      | Some path, false ->
          Some (Runtime.Checkpoint_store.create ~path ~rows:batch ~len ~meta ())
      | Some path, true -> (
          match Runtime.Checkpoint_store.reopen ~path with
          | Error e -> raise (Usage_error ("--store: " ^ e))
          | Ok (st, l) ->
              if Runtime.Checkpoint_store.meta st <> meta then
                raise
                  (Usage_error
                     (Printf.sprintf
                        "--store: meta mismatch: store was written by %S, \
                         this invocation is %S"
                        (Runtime.Checkpoint_store.meta st)
                        meta));
              Format.printf "%a@." Runtime.Checkpoint_store.pp_loaded l;
              Some st)
    in
    let device =
      Ascend.Device.create ~mode:Ascend.Device.Functional
        ~fault:(Runtime.Chaos.fault_config sc) ()
    in
    arm_obs device obs;
    let ctl =
      Runtime.Degrade_ctl.create
        ~on_decision:(fun d ->
          match Ascend.Device.trace device with
          | Some tr ->
              Ascend.Trace.note tr Ascend.Trace.Degrade
                ~name:(Format.asprintf "%a" Runtime.Degrade_ctl.pp_decision d)
          | None -> ())
        ()
    in
    let on_crash msg =
      match crash_mode with
      | `Raise -> raise (Runtime.Chaos.Host_crash msg)
      | `Sigkill ->
          (* The committed store is the only thing meant to survive;
             flush the narrative first so the harness log is honest. *)
          Format.printf "chaos: %s -- dying with SIGKILL@." msg;
          Format.pp_print_flush Format.std_formatter ();
          flush stdout;
          flush stderr;
          Unix.kill (Unix.getpid ()) Sys.sigkill
    in
    let ch = Runtime.Chaos.arm ~skip_crashes:resume ~on_crash sc in
    let gen i = if (i + seed) mod 53 = 0 then 1.0 else 0.0 in
    let input = Array.init (batch * len) gen in
    let r =
      Runtime.Resilient.batched_scan ~s ?granularity ?store ~ctl ~chaos:ch
        device ~batch ~len ~input
    in
    Format.printf "%a@." Runtime.Resilient.pp_batched_report r;
    (match Runtime.Chaos.fired ch with
    | [] -> Format.printf "chaos: no events fired@."
    | evs ->
        List.iter
          (fun (i, d) -> Format.printf "chaos launch %d: %s@." i d)
          evs);
    Format.printf "%a@." Runtime.Degrade_ctl.pp ctl;
    (match store with
    | Some st ->
        Format.printf "store: %d commits durable at %s@."
          (Runtime.Checkpoint_store.commits st)
          (Runtime.Checkpoint_store.path st)
    | None -> ());
    print_stats r.Runtime.Resilient.bstats;
    print_robustness device;
    emit_obs device obs r.Runtime.Resilient.bstats ~extra:(fun m ->
        Obs.Metrics.observe_batched_report m r;
        Obs.Metrics.observe_ctl m ctl);
    if not r.Runtime.Resilient.bok then exit 1
  in
  let run_term ~resume =
    Term.(
      const (run_or_resume ~resume)
      $ scenario_arg $ store_arg $ batch_arg $ len_arg $ s_arg
      $ granularity_arg $ crash_mode_arg $ seed_arg $ obs_term)
  in
  let run_cmd =
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Run a checkpointed batched scan under a chaos scenario: the \
            scenario's kills, storms and stalls fire deterministically at \
            group-launch boundaries, the adaptive degradation controller \
            absorbs them, and a $(b,crash) event kills the process \
            mid-batch (resume with $(b,chaos resume)).")
      (run_term ~resume:false)
  in
  let resume_cmd =
    Cmd.v
      (Cmd.info "resume"
         ~doc:
           "Resume a chaos run killed mid-batch: restore every durably \
            committed row group from $(b,--store) (never re-executing \
            them), then finish the remaining rows. The final output is \
            bit-identical to an uninterrupted run.")
      (run_term ~resume:true)
  in
  let report_cmd =
    let run scenario_file store_path =
      let sc = load_scenario scenario_file in
      Format.printf "%a@." Runtime.Chaos.pp_scenario sc;
      match store_path with
      | None -> ()
      | Some path -> (
          match Runtime.Checkpoint_store.load ~path with
          | Ok l -> Format.printf "%a@." Runtime.Checkpoint_store.pp_loaded l
          | Error e ->
              Format.eprintf "chaos report: %s@." e;
              exit 1)
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Validate and pretty-print a chaos scenario (malformed files \
            exit 2), and the durable contents of a checkpoint store when \
            $(b,--store) is given.")
      Term.(const run $ scenario_arg $ store_arg)
  in
  Cmd.group
    (Cmd.info "chaos"
       ~doc:
         "Deterministic chaos engineering: scripted failure storylines, \
          crash-consistent checkpointing and adaptive degradation.")
    [ run_cmd; resume_cmd; report_cmd ]

(* pod subcommand group: the distributed runner under chaos, with the
   same run/resume/report shape as [chaos] but a multi-device pod
   behind the launches. The store's meta additionally pins the pod
   geometry (devices, topology): resuming a 4-device run on a 2-device
   pod would re-shard the remaining rows differently than the bytes
   already committed claim, so it is refused up front. *)

let pod_cmd =
  let scenario_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"FILE"
          ~doc:
            "Chaos scenario file; pod scenarios may add $(b,kill device=D) \
             and $(b,link src=A dst=B for=N) events. Malformed files exit 2.")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "Crash-consistent checkpoint store path; $(b,pod resume) \
             continues from it and refuses a store whose pinned pod \
             geometry differs.")
  in
  let batch_arg =
    Arg.(
      value & opt int 32
      & info [ "batch"; "b" ] ~docv:"B" ~doc:"Number of independent rows.")
  in
  let len_arg =
    Arg.(
      value & opt int 4096
      & info [ "len"; "l" ] ~docv:"L" ~doc:"Length of each row.")
  in
  let granularity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "granularity" ] ~docv:"ROWS"
          ~doc:"Base rows per checkpoint group (default: quarter batches).")
  in
  let devices_arg =
    Arg.(
      value & opt int 4
      & info [ "devices" ] ~docv:"D" ~doc:"Pod size (simulated NPUs).")
  in
  let topology_arg =
    Arg.(
      value
      & opt (enum [ ("ring", Pod.Ring); ("full", Pod.Fully_connected) ]) Pod.Ring
      & info [ "topology" ] ~docv:"TOPO"
          ~doc:"Pod topology: $(b,ring) or $(b,full) (fully connected).")
  in
  let schedule_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [
                  ("ring", Scan.Dist_scan.Ring);
                  ("allgather", Scan.Dist_scan.All_gather);
                ]))
          None
      & info [ "schedule" ] ~docv:"SCHED"
          ~doc:
            "Prefix-exchange schedule: $(b,ring) or $(b,allgather) \
             (default: the topology's native schedule).")
  in
  let pod_trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pod-trace" ] ~docv:"FILE"
          ~doc:
            "Write the pod-level Chrome trace (one Perfetto process per \
             device, link-transfer spans, phase timeline).")
  in
  let crash_mode_arg =
    Arg.(
      value
      & opt (enum [ ("sigkill", `Sigkill); ("raise", `Raise) ]) `Sigkill
      & info [ "crash-mode" ] ~docv:"MODE"
          ~doc:
            "What a $(b,crash) event does: $(b,sigkill) (default) or \
             $(b,raise) (clean exit 1).")
  in
  let load_scenario file =
    match Runtime.Chaos.load file with
    | Ok sc -> sc
    | Error msg -> raise (Usage_error msg)
  in
  let meta_of sc ~batch ~len ~s ~seed ~devices ~topology =
    Printf.sprintf "pod|%s|seed=%d|batch=%d|len=%d|s=%d|wseed=%d|devices=%d|topology=%s"
      (match sc with
      | Some sc -> sc.Runtime.Chaos.sc_name
      | None -> "-")
      (match sc with Some sc -> sc.Runtime.Chaos.sc_seed | None -> 0)
      batch len s seed devices
      (Pod.topology_to_string topology)
  in
  let run_or_resume ~resume scenario_file store_path batch len s granularity
      devices topology schedule pod_trace crash_mode seed obs =
    if batch < 1 then raise (Usage_error "--batch must be >= 1");
    if len < 1 then raise (Usage_error "--len must be >= 1");
    if devices < 1 then
      raise
        (Usage_error
           (Printf.sprintf "--devices: device count must be >= 1 (got %d)"
              devices));
    (match granularity with
    | Some g when g < 1 -> raise (Usage_error "--granularity must be >= 1")
    | _ -> ());
    let sc = Option.map load_scenario scenario_file in
    let meta = meta_of sc ~batch ~len ~s ~seed ~devices ~topology in
    let store =
      match (store_path, resume) with
      | None, true -> raise (Usage_error "pod resume requires --store FILE")
      | None, false -> None
      | Some path, false ->
          Some (Runtime.Checkpoint_store.create ~path ~rows:batch ~len ~meta ())
      | Some path, true -> (
          match Runtime.Checkpoint_store.reopen ~path with
          | Error e -> raise (Usage_error ("--store: " ^ e))
          | Ok (st, l) ->
              if Runtime.Checkpoint_store.meta st <> meta then
                raise
                  (Usage_error
                     (Printf.sprintf
                        "--store: meta mismatch: store was written by %S, \
                         this invocation is %S"
                        (Runtime.Checkpoint_store.meta st)
                        meta));
              Format.printf "%a@." Runtime.Checkpoint_store.pp_loaded l;
              Some st)
    in
    let primary =
      Ascend.Device.create ~mode:Ascend.Device.Functional
        ?fault:(Option.map Runtime.Chaos.fault_config sc)
        ()
    in
    arm_obs primary obs;
    let pod = Pod.create_with ~topology ~primary ~devices () in
    let ctl =
      Runtime.Degrade_ctl.create
        ~on_decision:(fun d ->
          match Ascend.Device.trace primary with
          | Some tr ->
              Ascend.Trace.note tr Ascend.Trace.Degrade
                ~name:(Format.asprintf "%a" Runtime.Degrade_ctl.pp_decision d)
          | None -> ())
        ()
    in
    let on_crash msg =
      match crash_mode with
      | `Raise -> raise (Runtime.Chaos.Host_crash msg)
      | `Sigkill ->
          Format.printf "pod chaos: %s -- dying with SIGKILL@." msg;
          Format.pp_print_flush Format.std_formatter ();
          flush stdout;
          flush stderr;
          Unix.kill (Unix.getpid ()) Sys.sigkill
    in
    let chaos =
      Option.map (fun sc -> Runtime.Chaos.arm ~skip_crashes:resume ~on_crash sc) sc
    in
    let gen i = if (i + seed) mod 53 = 0 then 1.0 else 0.0 in
    let input = Array.init (batch * len) gen in
    let r =
      Runtime.Pod_runner.batched_scan ~s ?granularity ?schedule ?store ~ctl
        ?chaos pod ~batch ~len ~input
    in
    Format.printf "%a@." Runtime.Pod_runner.pp_report r;
    (match chaos with
    | Some ch -> (
        match Runtime.Chaos.fired ch with
        | [] -> Format.printf "pod chaos: no events fired@."
        | evs ->
            List.iter
              (fun (i, d) -> Format.printf "pod chaos launch %d: %s@." i d)
              evs)
    | None -> ());
    Format.printf "%a@." Runtime.Degrade_ctl.pp ctl;
    Format.printf "%a@." Pod.pp pod;
    (match store with
    | Some st ->
        Format.printf "store: %d commits durable at %s@."
          (Runtime.Checkpoint_store.commits st)
          (Runtime.Checkpoint_store.path st)
    | None -> ());
    (match pod_trace with
    | Some file ->
        write_file file (Obs.Pod_trace.to_string pod);
        Format.printf "pod trace: %d events -> %s@."
          (List.length (Pod.events pod))
          file
    | None -> ());
    print_stats r.Runtime.Pod_runner.pstats;
    print_robustness primary;
    (* Pod runs profile the pod-level trace: the critical path crosses
       link-transfer spans between devices, which the per-device trace
       cannot see. *)
    (match obs.profile_file with
    | Some out -> emit_profile ~out (Obs.Pod_trace.json pod)
    | None -> ());
    emit_obs primary { obs with profile_file = None }
      r.Runtime.Pod_runner.pstats;
    if not r.Runtime.Pod_runner.pok then exit 1
  in
  let run_term ~resume =
    Term.(
      const (run_or_resume ~resume)
      $ scenario_arg $ store_arg $ batch_arg $ len_arg $ s_arg
      $ granularity_arg $ devices_arg $ topology_arg $ schedule_arg
      $ pod_trace_arg $ crash_mode_arg $ seed_arg $ obs_term)
  in
  let run_cmd =
    Cmd.v
      (Cmd.info "run"
         ~doc:
           "Run a checkpointed batched scan distributed across a simulated \
            multi-NPU pod, optionally under a chaos scenario with link \
            faults and whole-device kills. Device deaths re-shard the scan \
            over the survivors with bit-identical output.")
      (run_term ~resume:false)
  in
  let resume_cmd =
    Cmd.v
      (Cmd.info "resume"
         ~doc:
           "Resume a pod run killed mid-batch from its checkpoint store \
            (committed row groups are never re-executed); the store's \
            pinned pod geometry must match this invocation.")
      (run_term ~resume:true)
  in
  let report_cmd =
    let run scenario_file store_path =
      (match scenario_file with
      | Some file ->
          Format.printf "%a@." Runtime.Chaos.pp_scenario (load_scenario file)
      | None -> ());
      match store_path with
      | None -> ()
      | Some path -> (
          match Runtime.Checkpoint_store.load ~path with
          | Ok l -> Format.printf "%a@." Runtime.Checkpoint_store.pp_loaded l
          | Error e ->
              Format.eprintf "pod report: %s@." e;
              exit 1)
    in
    Cmd.v
      (Cmd.info "report"
         ~doc:
           "Validate and pretty-print a pod chaos scenario and/or the \
            durable contents of a checkpoint store.")
      Term.(const run $ scenario_arg $ store_arg)
  in
  Cmd.group
    (Cmd.info "pod"
       ~doc:
         "Distributed scans on a simulated multi-NPU pod: link/device \
          fault injection, failover re-sharding and crash-consistent \
          resume.")
    [ run_cmd; resume_cmd; report_cmd ]

(* trace subcommand group: offline inspection of recorded trace
   files. Both tools run from the JSON alone, so traces produced on
   another machine (or checked into CI artifacts) work too. *)

let trace_file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"Chrome trace-event JSON file (from --trace).")

let parse_trace_file file =
  let contents =
    try read_file file with Sys_error msg -> raise (Usage_error msg)
  in
  match Obs.Jsonw.parse contents with
  | Ok doc -> doc
  | Error e ->
      raise (Usage_error (Printf.sprintf "%s: invalid JSON: %s" file e))

let trace_cmd =
  let file_arg = trace_file_arg in
  let parse_file = parse_trace_file in
  let summary_cmd =
    let run file =
      match Obs.Trace_summary.of_json (parse_file file) with
      | Ok summaries -> Format.printf "%a" Obs.Trace_summary.pp summaries
      | Error e ->
          Format.eprintf "trace summary: %s@." e;
          exit 1
    in
    Cmd.v
      (Cmd.info "summary"
         ~doc:
           "Print per-phase engine occupancy and the bounding resource \
            (busiest engine, or HBM/L2 bandwidth) for each launch in a \
            recorded trace.")
      Term.(const run $ file_arg)
  in
  let validate_cmd =
    let run file =
      match Obs.Chrome_trace.validate (parse_file file) with
      | Ok c ->
          Format.printf
            "valid: %d events (%d spans, %d instants, %d flows) across %d \
             processes@."
            c.Obs.Chrome_trace.events c.Obs.Chrome_trace.spans
            c.Obs.Chrome_trace.instants c.Obs.Chrome_trace.flows
            c.Obs.Chrome_trace.processes
      | Error e ->
          Format.eprintf "trace validate: INVALID: %s@." e;
          exit 1
    in
    Cmd.v
      (Cmd.info "validate"
         ~doc:
           "Check a trace file against the Chrome trace-event schema \
            (required fields, non-negative durations, monotone tracks); \
            exit 1 when invalid.")
      Term.(const run $ file_arg)
  in
  Cmd.group
    (Cmd.info "trace" ~doc:"Inspect recorded trace files.")
    [ summary_cmd; validate_cmd ]

(* profile subcommand: offline critical-path analysis of a recorded
   trace file (device or pod schema). *)

let profile_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) (Some "profile.json")
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:
            "Where to write the profile document (default \
             $(b,profile.json)); $(b,-o none) prints the report only.")
  in
  let run file out =
    let out = match out with Some "none" -> None | o -> o in
    emit_profile ?out (parse_trace_file file)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Reconstruct the launch DAG from a recorded trace (flow events + \
          exact cycle endpoints), print critical-path blame, what-if \
          analysis and roofline utilization, and write the profile \
          document. Works on device traces ($(b,--trace)) and pod traces \
          ($(b,--pod-trace)).")
    Term.(const run $ trace_file_arg $ out_arg)

(* Every-registered-op tracing smoke check (rides next to --list-ops so
   "what ops exist" and "do they all trace cleanly" live in one place). *)

let trace_smoke () =
  let failures = ref 0 in
  let fail (e : Scan.Op_registry.entry) msg =
    incr failures;
    Format.printf "%-18s FAILED: %s@." e.Scan.Op_registry.name msg
  in
  List.iter
    (fun ((e : Scan.Op_registry.entry), result) ->
      match result with
      | Error msg -> fail e msg
      | Ok (_, None) -> fail e "no trace recorded"
      | Ok (_, Some tr) -> (
          match Ascend.Trace.check tr with
          | Error msg -> fail e msg
          | Ok () ->
              if Ascend.Trace.dropped tr > 0 then
                fail e
                  (Printf.sprintf "%d dropped events" (Ascend.Trace.dropped tr))
              else
                Format.printf "%-18s ok: %d events@." e.Scan.Op_registry.name
                  (Ascend.Trace.event_count tr)))
    (Workload.Op_driver.run_all ());
  if !failures > 0 then begin
    Format.printf "trace smoke: %d operator(s) FAILED@." !failures;
    exit 1
  end
  else Format.printf "trace smoke: all registered operators traced cleanly@."

(* info subcommand. *)

let info_cmd =
  let run () =
    Format.printf "%a@." Ascend.Cost_model.pp Ascend.Cost_model.default
  in
  Cmd.v (Cmd.info "info" ~doc:"Print the simulated device description.")
    Term.(const run $ const ())

let () =
  let doc = "Parallel scans and scan-based operators on a simulated Ascend accelerator." in
  (* Top-level --list-ops: print the operator table straight from the
     registry (the README embeds this output; CI diffs the two). *)
  let default =
    let list_ops_arg =
      Arg.(
        value & flag
        & info [ "list-ops" ]
            ~doc:
              "Print every registered operator (name, aliases, kind, dtypes, \
               capabilities) as a markdown table and exit.")
    in
    let trace_smoke_arg =
      Arg.(
        value & flag
        & info [ "trace-smoke" ]
            ~doc:
              "Run every registered operator once under tracing and check \
               that the recorder captured a consistent event stream (zero \
               dropped events, monotone per-engine tracks); exit 1 on any \
               violation.")
    in
    Term.(
      ret
        (const (fun list_ops smoke ->
             if list_ops then begin
               Format.printf "%a" Scan.Op_registry.pp_markdown_table ();
               `Ok ()
             end
             else if smoke then begin
               trace_smoke ();
               `Ok ()
             end
             else `Help (`Pager, None))
        $ list_ops_arg $ trace_smoke_arg))
  in
  let main = Cmd.group ~default (Cmd.info "ascend_scan_cli" ~doc) [ scan_cmd; batched_cmd; sort_cmd; topp_cmd; reduce_cmd; topk_cmd; info_cmd; trace_cmd; profile_cmd; chaos_cmd; pod_cmd ] in
  (* Unknown flags and malformed arguments exit 2 with a usage pointer
     rather than cmdliner's 124; runtime kernel errors (e.g. a kernel
     aborted by injected fault corruption) exit 1 with a clean message
     instead of an uncaught exception backtrace. *)
  let code =
    try
      let c = Cmd.eval ~catch:false main in
      if c = Cmd.Exit.cli_error then 2 else c
    with
    | Usage_error msg ->
        Format.eprintf "ascend_scan_cli: error: %s@." msg;
        Format.eprintf "usage: ascend_scan_cli COMMAND [OPTION]... (see --help)@.";
        2
    | Ascend.Launch.Deadline_exceeded { name; budget_cycles; spent_cycles } ->
        Format.eprintf
          "ascend_scan_cli: deadline exceeded in %s: %.0f cycles spent of a \
           %.0f-cycle budget@."
          name spent_cycles budget_cycles;
        1
    | Ascend.Health.All_cores_dead ->
        Format.eprintf
          "ascend_scan_cli: all AI cores dead: no surviving core to schedule \
           on@.";
        1
    | Runtime.Chaos.Host_crash msg ->
        Format.eprintf "ascend_scan_cli: simulated host crash: %s@." msg;
        1
    | Invalid_argument msg | Failure msg ->
        Format.eprintf "ascend_scan_cli: runtime error: %s@." msg;
        1
  in
  exit code
