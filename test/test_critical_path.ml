(* Critical-path profiler tests.

   The contracts under test:
   - reconstruction: the critical-path length recomputed from the
     exported trace bytes (spans + flow edges) is bit-identical to the
     engine-model block makespan, for every registered operator under
     every pipeline schedule (Serial / Double / Triple) — checked both
     exhaustively at a fixed size and as a QCheck property over random
     input lengths;
   - the analysis itself: a hand-built diamond DAG produces the known
     critical path and the known per-span slack values;
   - derived outputs: the profile report is byte-identical across host
     domain counts. *)

open Ascend

let () = Ops.Ops_registry.install ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let n = 1024
let schedules = Scan.Scan_core.[ Serial; Double; Triple ]

let trace_of ?(n = n) ?(domains = 1) entry ~schedule =
  Scan.Scan_core.with_schedule schedule (fun () ->
      match Workload.Op_driver.run ~n ~domains entry with
      | Ok (_, Some tr) -> tr
      | Ok (_, None) -> Alcotest.fail "driver returned no trace"
      | Error msg ->
          Alcotest.failf "%s: %s" entry.Scan.Op_registry.name msg)

let profile_of tr =
  match Obs.Critical_path.of_json (Obs.Chrome_trace.json tr) with
  | Ok p -> p
  | Error msg -> Alcotest.failf "profile failed: %s" msg

(* Engine-model elapsed cycles per block, phase-major in block order —
   the ground truth the profiler must reproduce from the bytes. Blocks
   that issued nothing (idle tail blocks of a launch wider than the
   work) export no spans and are invisible to the profiler. *)
let recorded_makespans tr =
  List.concat_map
    (fun (l : Trace.launch_rec) ->
      List.concat_map
        (fun (p : Trace.phase_rec) ->
          List.filter_map
            (fun (b : Trace.block_rec) ->
              if b.Trace.b_spans = [] then None else Some b.Trace.b_cycles)
            p.Trace.ph_blocks)
        l.Trace.ln_phases)
    (Trace.launches tr)

let profiled_makespans (p : Obs.Critical_path.t) =
  Obs.Critical_path.(
    List.concat_map
      (fun l ->
        List.concat_map
          (fun ph -> List.map (fun b -> b.bk_cycles) ph.ph_blocks)
          l.ln_phases)
      p.launches)

let bits = Int64.bits_of_float
let same_float a b = Int64.equal (bits a) (bits b)

(* The reconstruction contract, as an assertion usable from both the
   exhaustive matrix and the QCheck property: every block's recomputed
   critical-path length equals the recorded makespan bitwise. *)
let assert_cp_equals_makespan ~what tr =
  let p = profile_of tr in
  let recorded = List.sort Float.compare (recorded_makespans tr) in
  let got = List.sort Float.compare (profiled_makespans p) in
  if List.length recorded <> List.length got then
    Alcotest.failf "%s: %d recorded blocks, %d profiled" what
      (List.length recorded) (List.length got);
  List.iter2
    (fun r g ->
      if not (same_float r g) then
        Alcotest.failf "%s: block makespan %h reconstructed as %h" what r g)
    recorded got;
  check_bool (what ^ ": blocks profiled") true (recorded <> []);
  check_bool (what ^ ": critical path non-empty") true
    (p.Obs.Critical_path.cp_spans > 0)

let test_cp_matrix (entry : Scan.Op_registry.entry) schedule () =
  let what =
    Printf.sprintf "%s/%s" entry.Scan.Op_registry.name
      (Scan.Scan_core.schedule_name schedule)
  in
  assert_cp_equals_makespan ~what (trace_of entry ~schedule)

(* ------------------------------------------------------------------ *)
(* QCheck: the contract holds at arbitrary input lengths.             *)

let prop_cp_equals_makespan =
  let entries = Array.of_list (Scan.Op_registry.all ()) in
  let gen =
    QCheck.make
      ~print:(fun (i, s, n) ->
        Printf.sprintf "%s/%s n=%d" entries.(i).Scan.Op_registry.name
          (Scan.Scan_core.schedule_name (List.nth schedules s))
          n)
      QCheck.Gen.(
        triple (int_bound (Array.length entries - 1)) (int_bound 2)
          (int_range 16 2048))
  in
  QCheck.Test.make ~count:15 ~name:"cp = makespan (random op/schedule/n)" gen
    (fun (i, s, n) ->
      let entry = entries.(i) in
      let schedule = List.nth schedules s in
      let what =
        Printf.sprintf "%s/%s n=%d" entry.Scan.Op_registry.name
          (Scan.Scan_core.schedule_name schedule)
          n
      in
      assert_cp_equals_makespan ~what (trace_of ~n entry ~schedule);
      true)

(* ------------------------------------------------------------------ *)
(* Diamond fixture: a -> {b, c} -> d with known path and slack.       *)

(*   a (vec, 0..10) -> b (mte_in, 10..30)  -> d (vec, 30..40)
                    \-> c (mte_out, 10..15) -/
   Critical path a, b, d (makespan 40); only c has slack (15). *)
let diamond_trace () =
  let tr = Trace.create () in
  let b = Trace.block_builder tr ~idx:0 ~core:0 in
  let span ~track ~engine ~queue ~op ~start ~cycles =
    Trace.Block_builder.span b ~track ~engine ~queue ~op ~start ~cycles
      ~bytes:0
  in
  let a = span ~track:0 ~engine:"vec0" ~queue:"V" ~op:"a" ~start:0.0 ~cycles:10.0 in
  let bb =
    span ~track:1 ~engine:"vec0.mte_in" ~queue:"MTE2" ~op:"b" ~start:10.0
      ~cycles:20.0
  in
  let c =
    span ~track:2 ~engine:"vec0.mte_out" ~queue:"MTE3" ~op:"c" ~start:10.0
      ~cycles:5.0
  in
  let d = span ~track:0 ~engine:"vec0" ~queue:"V" ~op:"d" ~start:30.0 ~cycles:10.0 in
  Trace.Block_builder.edge b ~kind:Trace.Lane ~src:a ~dst:bb;
  Trace.Block_builder.edge b ~kind:Trace.Lane ~src:a ~dst:c;
  Trace.Block_builder.edge b ~kind:Trace.Group ~src:bb ~dst:d;
  Trace.Block_builder.edge b ~kind:Trace.Group ~src:c ~dst:d;
  let br = Trace.Block_builder.finish b ~cycles:40.0 in
  let clock = Trace.clock_hz tr in
  let seconds = 40.0 /. clock in
  let phase =
    {
      Stats.compute_seconds = seconds;
      bandwidth_seconds = 0.0;
      seconds;
      gm_bytes = 0;
      footprint_bytes = 0;
      bandwidth_bound = false;
    }
  in
  Trace.record_launch tr ~name:"diamond" ~seconds ~latency_cycles:0.0
    ~sync_cycles:0.0 ~phases:[ (phase, [ br ]) ];
  (tr, (a, bb, c, d))

let test_diamond () =
  let tr, (a, bb, c, d) = diamond_trace () in
  (match Trace.check tr with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fixture trace inconsistent: %s" msg);
  let p = profile_of tr in
  let blk =
    match profiled_makespans p with
    | [ _ ] ->
        Obs.Critical_path.(
          List.hd (List.hd (List.hd p.launches).ln_phases).ph_blocks)
    | l -> Alcotest.failf "expected 1 block, profiled %d" (List.length l)
  in
  check_bool "makespan 40" true (same_float 40.0 blk.Obs.Critical_path.bk_cycles);
  (* sid of each fixture span, recovered by op label. *)
  let sid op =
    let s =
      List.find
        (fun s -> s.Obs.Critical_path.x_op = op)
        (Array.to_list blk.Obs.Critical_path.bk_spans)
    in
    s.Obs.Critical_path.x_sid
  in
  Alcotest.(check (list int))
    "critical path is a -> b -> d"
    [ sid "a"; sid "b"; sid "d" ]
    blk.Obs.Critical_path.bk_cp;
  (* Slack aligns with bk_spans (ascending sid = issue order). *)
  let slack_of id =
    let spans = blk.Obs.Critical_path.bk_spans in
    let i = ref (-1) in
    Array.iteri (fun j s -> if s.Obs.Critical_path.x_sid = id then i := j) spans;
    blk.Obs.Critical_path.bk_slack.(!i)
  in
  List.iter
    (fun (label, id, expect) ->
      let got = slack_of id in
      if not (same_float expect got) then
        Alcotest.failf "slack(%s): expected %g, got %g" label expect got)
    [ ("a", a, 0.0); ("b", bb, 0.0); ("c", c, 15.0); ("d", d, 0.0) ];
  check_int "cp spans counted" 3 p.Obs.Critical_path.cp_spans

(* ------------------------------------------------------------------ *)
(* Profile report bytes are host-domain independent.                  *)

let test_report_domain_identity () =
  let entry = Option.get (Scan.Op_registry.find "mcscan") in
  let report ~domains =
    let tr = trace_of ~domains entry ~schedule:Scan.Scan_core.Triple in
    Obs.Jsonw.to_string (Obs.Critical_path.report (profile_of tr))
  in
  let r1 = report ~domains:1 in
  check_string "report identical across domains 1/2" r1 (report ~domains:2);
  check_string "report identical across domains 1/4" r1 (report ~domains:4)

(* ------------------------------------------------------------------ *)

let () =
  let matrix =
    List.concat_map
      (fun (e : Scan.Op_registry.entry) ->
        List.map
          (fun schedule ->
            Alcotest.test_case
              (Printf.sprintf "%s/%s" e.Scan.Op_registry.name
                 (Scan.Scan_core.schedule_name schedule))
              `Quick (test_cp_matrix e schedule))
          schedules)
      (Scan.Op_registry.all ())
  in
  Alcotest.run "critical_path"
    [
      ("cp=makespan", matrix);
      ("property", [ QCheck_alcotest.to_alcotest prop_cp_equals_makespan ]);
      ( "analysis",
        [
          Alcotest.test_case "diamond dag" `Quick test_diamond;
          Alcotest.test_case "report domain identity" `Quick
            test_report_domain_identity;
        ] );
    ]
