(* Tests of the operator registry itself: name/alias resolution
   round-trips over every registered entry (scans and ops), uniform
   capability-violation Error paths, and identity semantics for
   entries, which hold closures and must never be compared
   structurally. *)

open Ascend

(* Force the [ops] library's registrations so the whole registry is
   under test, exactly as the CLI sees it. *)
let () = Ops.Ops_registry.install ()

let check_bool = Alcotest.(check bool)
let entries = Scan.Op_registry.all ()

let arb_entry =
  QCheck.make
    ~print:(fun (e : Scan.Op_registry.entry) -> e.Scan.Op_registry.name)
    QCheck.Gen.(oneofl entries)

(* Pair every entry with one of its names (canonical or alias). *)
let arb_entry_key =
  QCheck.make
    ~print:(fun ((e : Scan.Op_registry.entry), key) ->
      e.Scan.Op_registry.name ^ " via " ^ key)
    QCheck.Gen.(
      let* e = oneofl entries in
      let* key = oneofl (e.Scan.Op_registry.name :: e.Scan.Op_registry.aliases) in
      return (e, key))

let prop_name_roundtrip =
  QCheck.Test.make ~name:"find (name e) = Some e for every operator"
    ~count:(4 * List.length entries)
    arb_entry
    (fun e ->
      match Scan.Op_registry.find e.Scan.Op_registry.name with
      | Some e' -> Scan.Op_registry.equal e e'
      | None -> false)

let prop_alias_resolution =
  QCheck.Test.make ~name:"every alias resolves to its entry"
    ~count:(4 * List.length entries)
    arb_entry_key
    (fun (e, key) ->
      match Scan.Op_registry.find key with
      | Some e' -> Scan.Op_registry.equal e e'
      | None -> false)

let prop_scan_api_roundtrip =
  QCheck.Test.make ~name:"Scan_api: of_string (to_string k) = Some k"
    ~count:(4 * List.length Scan.Scan_api.all_algos)
    (QCheck.make
       ~print:Scan.Scan_api.algo_to_string
       QCheck.Gen.(oneofl Scan.Scan_api.all_algos))
    (fun a ->
      match Scan.Scan_api.algo_of_string (Scan.Scan_api.algo_to_string a) with
      | Some b -> Scan.Op_registry.equal a b
      | None -> false)

let test_names_unique () =
  (* Name and alias sets are globally disjoint — [register] enforces it
     at registration time; this asserts the final state. *)
  let keys =
    List.concat_map
      (fun (e : Scan.Op_registry.entry) ->
        e.Scan.Op_registry.name :: e.Scan.Op_registry.aliases)
      entries
  in
  let sorted = List.sort_uniq String.compare keys in
  Alcotest.(check int) "no duplicate names or aliases" (List.length keys)
    (List.length sorted)

let test_duplicate_registration_rejected () =
  let e = List.hd entries in
  check_bool "re-registering an existing name raises" true
    (try
       Scan.Op_registry.register e;
       false
     with Invalid_argument _ -> true)

let test_equal_is_by_name () =
  let a = Scan.Scan_api.get "scanu" and b = Scan.Scan_api.get "scanul1" in
  check_bool "same entry equal" true (Scan.Op_registry.equal a a);
  check_bool "distinct entries differ" false (Scan.Op_registry.equal a b);
  (* The whole point of [equal]: a looked-up entry equals itself even
     through different lookup paths (alias vs canonical name). *)
  let via_alias = Option.get (Scan.Op_registry.find "u") in
  check_bool "alias lookup equals name lookup" true
    (Scan.Op_registry.equal a via_alias)

(* Uniform error paths: capability violations come back as [Error]
   from [Op_registry.run] — never as an exception, never kernel-specific
   ad-hoc text the caller must pattern-match. *)

let dev () = Device.create ()
let cfg = Scan.Op_registry.default_config

let expect_error name what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: %s was accepted" name what

let test_exclusive_rejected_uniformly () =
  let d = dev () in
  let x = Device.of_array d Dtype.F16 ~name:"x" [| 1.0; 2.0 |] in
  let excl = { cfg with Scan.Op_registry.exclusive = true } in
  List.iter
    (fun (e : Scan.Op_registry.entry) ->
      if not e.Scan.Op_registry.caps.Scan.Op_registry.exclusive then
        expect_error e.Scan.Op_registry.name "exclusive"
          (Scan.Op_registry.run e excl d (Scan.Op_registry.Tensor x)))
    (Scan.Op_registry.unary_scans ())

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_unsupported_dtype_rejected () =
  let d = dev () in
  let xi = Device.of_array d Dtype.I32 ~name:"xi" [| 1.0 |] in
  List.iter
    (fun name ->
      let e = Scan.Scan_api.get name in
      match Scan.Op_registry.run e cfg d (Scan.Op_registry.Tensor xi) with
      | Error msg ->
          check_bool (name ^ " error names the dtype") true (contains msg "i32")
      | Ok _ -> Alcotest.failf "%s accepted an i32 input" name)
    [ "scanu"; "vec_only"; "mcscan"; "tcu" ]

let test_input_arity_checked () =
  let d = dev () in
  let x = Device.of_array d Dtype.F16 ~name:"x" [| 1.0; 2.0 |] in
  let mask = Device.of_array d Dtype.I8 ~name:"m" [| 1.0; 0.0 |] in
  (* A masked operator given a bare tensor... *)
  expect_error "segmented_scan" "bare tensor"
    (Scan.Op_registry.run
       (Option.get (Scan.Op_registry.find "segmented_scan"))
       cfg d (Scan.Op_registry.Tensor x));
  (* ... and a unary scan given a masked pair. *)
  expect_error "scanu" "masked input"
    (Scan.Op_registry.run (Scan.Scan_api.get "scanu") cfg d
       (Scan.Op_registry.Masked { x; mask }))

let test_batched_requires_shape () =
  let d = dev () in
  let x = Device.of_array d Dtype.F16 ~name:"x" (Array.make 16 1.0) in
  expect_error "batched_u" "missing batch/len"
    (Scan.Op_registry.run
       (Option.get (Scan.Op_registry.find "batched_u"))
       cfg d (Scan.Op_registry.Tensor x))

let test_op_param_errors_are_errors () =
  (* Operator-side parameter validation (k missing) funnels through the
     same Error path as capability violations. *)
  let d = dev () in
  let x = Device.of_array d Dtype.F16 ~name:"x" (Array.make 64 1.0) in
  expect_error "topk" "missing k"
    (Scan.Op_registry.run
       (Option.get (Scan.Op_registry.find "topk"))
       cfg d (Scan.Op_registry.Tensor x))

(* The acceptance path for new monoids: the max scan registered like
   any other kernel is reachable by name, runs over f32, and checks
   against its own (max) reference with the generic checker. *)
let test_max_scan_through_registry () =
  let d = dev () in
  let data = Array.init 5000 (fun i -> float_of_int ((i * 13 mod 101) - 50)) in
  let x = Device.of_array d Dtype.F32 ~name:"x" data in
  let algo = Scan.Scan_api.get "max_scan" in
  match Scan.Op_registry.run algo cfg d (Scan.Op_registry.Tensor x) with
  | Error msg -> Alcotest.failf "max_scan via registry: %s" msg
  | Ok (out, _) -> (
      let y = Option.get out.Scan.Op_registry.y in
      match
        Scan.Scan_api.check_scan ~algo ~dtype:Dtype.F32 ~input:data ~output:y
          ()
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "max_scan reference check: %s" e)

let () =
  Alcotest.run "registry"
    [
      ( "roundtrip",
        List.map QCheck_alcotest.to_alcotest
          [ prop_name_roundtrip; prop_alias_resolution; prop_scan_api_roundtrip ]
        @ [
            Alcotest.test_case "names unique" `Quick test_names_unique;
            Alcotest.test_case "duplicate rejected" `Quick
              test_duplicate_registration_rejected;
            Alcotest.test_case "equality by name" `Quick test_equal_is_by_name;
          ] );
      ( "errors",
        [
          Alcotest.test_case "exclusive rejected uniformly" `Quick
            test_exclusive_rejected_uniformly;
          Alcotest.test_case "unsupported dtype" `Quick
            test_unsupported_dtype_rejected;
          Alcotest.test_case "input arity" `Quick test_input_arity_checked;
          Alcotest.test_case "batched shape required" `Quick
            test_batched_requires_shape;
          Alcotest.test_case "operator params" `Quick
            test_op_param_errors_are_errors;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "max scan f32 via registry" `Quick
            test_max_scan_through_registry;
        ] );
    ]
