(* Degraded-mode execution tests: core health tracking, fault-aware
   re-sharding over surviving cores, watchdog deadlines and checkpointed
   batched scans.

   The central invariant: every multi-core kernel partitions its work
   purely from [(Block.idx, num_blocks)], so re-sharding over ANY
   surviving-core subset must be bit-identical to the healthy run and
   to the host reference — only the timeline stretches. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let num_cores = Cost_model.default.Cost_model.num_ai_cores

let dev_with_kills kills =
  Device.create ~fault:(Fault.config ~seed:0 ~rate:0.0 ~kills ()) ()

(* ------------------------------------------------------------------ *)
(* Health monitor unit tests.                                         *)

let test_health_basics () =
  let h = Health.create ~num_cores:4 () in
  check_int "all alive" 4 (Health.num_alive h);
  Health.mark_dead h ~core:2;
  check_int "one dead" 3 (Health.num_alive h);
  check_bool "dead core not alive" false (Health.alive h 2);
  Alcotest.(check (list int)) "alive set" [ 0; 1; 3 ] (Health.alive_cores h);
  (* Idempotent: marking again records no second death. *)
  Health.mark_dead h ~core:2;
  check_int "one death record" 1 (List.length (Health.deaths h))

let test_health_kill_threshold () =
  let h = Health.create ~num_cores:4 ~kills:[ (1, 100.0) ] () in
  check_bool "alive before threshold" true (Health.alive h 1);
  Health.note_cycles h ~core:1 99.0;
  check_bool "still alive at 99" true (Health.alive h 1);
  Health.note_cycles h ~core:1 1.0;
  check_bool "dead at 100" false (Health.alive h 1);
  check_int "three survivors" 3 (Health.num_alive h);
  (* A kill at cycle 0 is dead before any work. *)
  let h0 = Health.create ~num_cores:4 ~kills:[ (0, 0.0) ] () in
  check_bool "cycle-0 kill pre-dead" false (Health.alive h0 0)

let test_health_quarantine () =
  let h = Health.create ~num_cores:4 ~quarantine_after:2 () in
  Health.note_fault h ~core:3 ~cycle:10.0;
  check_bool "one fault below budget" true (Health.alive h 3);
  (match Health.note_fault h ~core:3 ~cycle:20.0 with
  | () -> Alcotest.fail "expected Core_dead on quarantine"
  | exception Health.Core_dead { core; _ } -> check_int "raised core" 3 core);
  check_bool "quarantined" false (Health.alive h 3);
  match Health.deaths h with
  | [ (3, _, Health.Quarantined 2) ] -> ()
  | _ -> Alcotest.fail "expected a quarantine death record"

let test_parse_kill_spec () =
  let ok s = match Health.parse_kill_spec s with Ok v -> v | Error e -> Alcotest.fail e in
  let bad s =
    match Health.parse_kill_spec s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  Alcotest.(check (pair int (float 0.0))) "bare core" (3, 0.0) (ok "3");
  Alcotest.(check (pair int (float 0.0))) "core at cycle" (7, 5000.0) (ok "7@5000");
  List.iter bad [ "-1"; "3@-5"; "3@nan"; "3@inf"; "x"; "3@"; "@5"; "1@2@3"; "" ]

let test_parse_fault_spec () =
  let bad s =
    match Fault.parse_spec s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  (match Fault.parse_spec "42:0.001" with
  | Ok (42, rate) when rate = 0.001 -> ()
  | _ -> Alcotest.fail "rejected a valid spec");
  (* Satellite (a): negative seeds, out-of-range rates and non-integer
     seeds must all be rejected (the CLI exits 2 on these). *)
  List.iter bad
    [ "-1:0.5"; "3:1.5"; "3:-0.1"; "3:nan"; "3.5:0.1"; "x:0.1"; "3"; "3:0.1:9"; "" ]

(* ------------------------------------------------------------------ *)
(* Scheduler unit tests.                                              *)

let test_scheduler_healthy_plan () =
  let d = Device.create () in
  let p = Scheduler.plan d ~n:1000 in
  check_int "healthy plan = full grid" num_cores (Scheduler.blocks p);
  check_bool "not degraded" false (Scheduler.degraded p);
  check_int "chunk covers n" 1000
    (min 1000 (Scheduler.chunk p ~n:1000 ~grain:16 * Scheduler.blocks p))

let test_scheduler_degraded_plan () =
  let d = dev_with_kills [ (0, 0.0); (5, 0.0); (19, 0.0) ] in
  let p = Scheduler.plan d ~n:1000 in
  check_int "plan shrinks" (num_cores - 3) (Scheduler.blocks p);
  check_bool "degraded" true (Scheduler.degraded p);
  check_bool "dead cores excluded" false
    (List.exists (fun c -> c = 0 || c = 5 || c = 19) (Scheduler.alive p))

let test_scheduler_all_dead () =
  let d = dev_with_kills (List.init num_cores (fun c -> (c, 0.0))) in
  match Scheduler.plan d ~n:10 with
  | _ -> Alcotest.fail "expected All_cores_dead"
  | exception Health.All_cores_dead -> ()

(* ------------------------------------------------------------------ *)
(* Checkpoint unit tests.                                             *)

let test_checkpoint_pending () =
  let ck = Runtime.Checkpoint.create ~rows:10 in
  Alcotest.(check (list (pair int int)))
    "initial pending, granularity 4"
    [ (0, 4); (4, 8); (8, 10) ]
    (Runtime.Checkpoint.pending ck ~granularity:4);
  Runtime.Checkpoint.mark ck ~lo:4 ~hi:8;
  Alcotest.(check (list (pair int int)))
    "hole-aware pending"
    [ (0, 4); (8, 10) ]
    (Runtime.Checkpoint.pending ck ~granularity:4);
  check_int "done count" 4 (Runtime.Checkpoint.done_count ck);
  check_bool "not complete" false (Runtime.Checkpoint.complete ck);
  Runtime.Checkpoint.mark ck ~lo:0 ~hi:4;
  Runtime.Checkpoint.mark ck ~lo:8 ~hi:10;
  check_bool "complete" true (Runtime.Checkpoint.complete ck);
  check_int "three commits" 3 (Runtime.Checkpoint.commits ck);
  Alcotest.(check (list (pair int int)))
    "nothing pending" []
    (Runtime.Checkpoint.pending ck ~granularity:4)

(* ------------------------------------------------------------------ *)
(* Zero-failure path: the scheduler refactor must be invisible.       *)

let test_healthy_path_identical () =
  let n = 50000 in
  let data = Array.init n (fun i -> if i mod 37 = 0 then 1.0 else 0.0) in
  let d = Device.create () in
  let x = Device.of_array d Dtype.F16 ~name:"x" data in
  let y, st = Scan.Mcscan.run d x in
  check_int "full launch width" num_cores st.Stats.blocks;
  check_int "all cores used" num_cores st.Stats.cores_used;
  (match
     Scan.Scan_api.check_against_reference ~round:Fp16.round ~input:data
       ~output:y ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* A healthy device with a fault config behaves identically to one
     without: same result, same simulated time. *)
  let d2 = dev_with_kills [] in
  let x2 = Device.of_array d2 Dtype.F16 ~name:"x" data in
  let y2, st2 = Scan.Mcscan.run d2 x2 in
  check_bool "bit-identical" true
    (Array.init n (Global_tensor.get y) = Array.init n (Global_tensor.get y2));
  Alcotest.(check (float 0.0)) "time-identical" st.Stats.seconds st2.Stats.seconds

(* ------------------------------------------------------------------ *)
(* Mid-run kills: bit-identity and faithful death records.            *)

let test_mid_run_kill_bit_identical () =
  let n = 60000 in
  let data = Array.init n (fun i -> if (i + 5) mod 31 = 0 then 1.0 else 0.0) in
  List.iter
    (fun kill_cycle ->
      let d = dev_with_kills [ (3, kill_cycle) ] in
      let x = Device.of_array d Dtype.F16 ~name:"x" data in
      let y, _ = Scan.Mcscan.run d x in
      (match
         Scan.Scan_api.check_against_reference ~round:Fp16.round ~input:data
           ~output:y ()
       with
      | Ok () -> ()
      | Error e -> Alcotest.failf "kill@%g: %s" kill_cycle e);
      check_bool
        (Printf.sprintf "death recorded (kill@%g)" kill_cycle)
        true
        (Health.deaths (Device.health d) <> []
        || not (Health.alive (Device.health d) 3)))
    [ 100.0; 2000.0; 5000.0 ]

let test_mid_run_kill_matches_healthy_in_rounding_regime () =
  (* Once partial sums pass 2048 the fp16 grid spacing is 2.0 and the
     blocked kernel no longer matches the *sequential* reference
     bit-for-bit — a property of the rounding regime, independent of
     faults. The degraded-mode invariant is against the healthy run:
     a mid-run kill must reproduce it exactly, rounding noise and all. *)
  let n = 262144 in
  let data = Array.init n (fun i -> if i mod 53 = 0 then 1.0 else 0.0) in
  let run kills =
    let d = dev_with_kills kills in
    let x = Device.of_array d Dtype.F16 ~name:"x" data in
    let y, _ = Scan.Mcscan.run d x in
    (Array.init n (Global_tensor.get y), d)
  in
  let healthy, _ = run [] in
  let killed, d = run [ (3, 5000.0) ] in
  check_bool "kill fired" false (Health.alive (Device.health d) 3);
  check_bool "sums reach the rounding regime" true
    (healthy.(n - 1) > 2048.0);
  check_bool "bit-identical to healthy run" true (healthy = killed)

let test_quarantine_self_heals () =
  (* quarantine_after = 1: the very first injected fault kills its core
     BEFORE the corrupt payload lands, the block replays cleanly on a
     survivor — so a high fault rate still yields the exact result
     (unless every core dies, which this rate cannot reach). *)
  let n = 30000 in
  let data = Array.init n (fun i -> if i mod 41 = 0 then 1.0 else 0.0) in
  let d =
    Device.create
      ~fault:(Fault.config ~seed:7 ~rate:0.05 ~quarantine_after:1 ())
      ()
  in
  let x = Device.of_array d Dtype.F16 ~name:"x" data in
  let y, _ = Scan.Mcscan.run d x in
  (match
     Scan.Scan_api.check_against_reference ~round:Fp16.round ~input:data
       ~output:y ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "self-heal failed: %s" e);
  check_bool "at least one quarantine" true
    (List.exists
       (fun (_, _, r) -> match r with Health.Quarantined _ -> true | _ -> false)
       (Health.deaths (Device.health d)))

(* ------------------------------------------------------------------ *)
(* Watchdog deadlines.                                                *)

let test_watchdog_fires () =
  let n = 200000 in
  let d = Device.create ~mode:Device.Cost_only ~deadline_cycles:500.0 () in
  let x = Device.alloc d Dtype.F16 n ~name:"x" in
  match Scan.Mcscan.run d x with
  | _ -> Alcotest.fail "expected Deadline_exceeded"
  | exception Launch.Deadline_exceeded { budget_cycles; spent_cycles; _ } ->
      check_bool "budget recorded" true (budget_cycles = 500.0);
      check_bool "overspend recorded" true (spent_cycles > 500.0)

let test_watchdog_generous_budget_passes () =
  let n = 50000 in
  let d = Device.create ~mode:Device.Cost_only ~deadline_cycles:1e9 () in
  let x = Device.alloc d Dtype.F16 n ~name:"x" in
  let _, st = Scan.Mcscan.run d x in
  check_int "completed" num_cores st.Stats.blocks

let test_resilient_absorbs_deadline () =
  (* A watchdog abort inside the resilient loop counts as a detection;
     with no recovery possible (the budget never grows) the report is
     not ok, but with a budget-free fallback the run degrades. *)
  let input = Array.init 30000 (fun i -> if i mod 37 = 0 then 1.0 else 0.0) in
  let tight () =
    let d = Device.create ~deadline_cycles:500.0 () in
    let x = Device.of_array d Dtype.F16 ~name:"x" input in
    Scan.Scan_api.run ~algo:(Scan.Scan_api.get "mcscan") d x
  in
  let loose () =
    let d = Device.create () in
    let x = Device.of_array d Dtype.F16 ~name:"x" input in
    Scan.Scan_api.run ~algo:(Scan.Scan_api.get "mcscan") d x
  in
  let validate y =
    Scan.Scan_api.check_against_reference ~round:Fp16.round ~input ~output:y ()
  in
  let r = Runtime.Resilient.run ~max_attempts:2 ~fallback:loose ~validate tight in
  check_bool "recovered via fallback" true r.Runtime.Resilient.ok;
  check_bool "degraded" true r.Runtime.Resilient.degraded;
  check_int "two aborted attempts detected" 2 r.Runtime.Resilient.detections

(* ------------------------------------------------------------------ *)
(* Property: bit-identity across ANY surviving-core subset.           *)

(* Generator: a sampled kill set of 1..19 distinct cores (at least one
   survivor) plus a kill cycle regime (0 = pre-dead, else mid-run). *)
let arb_kill_set =
  let gen =
    QCheck.Gen.(
      let* k = int_range 1 (num_cores - 1) in
      let perm = Array.init num_cores Fun.id in
      let* () = shuffle_a perm in
      let* cycle = oneofl [ 0.0; 500.0; 3000.0 ] in
      return (Array.to_list (Array.sub perm 0 k), cycle))
  in
  QCheck.make
    ~print:(fun (cores, cyc) ->
      Printf.sprintf "kill %s @ %g"
        (String.concat "," (List.map string_of_int cores))
        cyc)
    gen

let scan_input = Array.init 30000 (fun i -> if i mod 37 = 0 then 1.0 else 0.0)

let flags_input =
  Array.init 30000 (fun i -> if (i * 7) mod 13 < 2 then 1.0 else 0.0)

let degraded_device (cores, cycle) =
  dev_with_kills (List.map (fun c -> (c, cycle)) cores)

let prop_mcscan_any_subset =
  QCheck.Test.make ~name:"mcscan bit-identical on any surviving subset"
    ~count:25 arb_kill_set (fun ks ->
      let d = degraded_device ks in
      let x = Device.of_array d Dtype.F16 ~name:"x" scan_input in
      let y, _ = Scan.Mcscan.run d x in
      Scan.Scan_api.check_against_reference ~round:Fp16.round ~input:scan_input
        ~output:y ()
      = Ok ())

let prop_scan_algos_any_subset =
  QCheck.Test.make ~name:"scanu/scanul1/tcu bit-identical on any subset"
    ~count:10 arb_kill_set (fun ks ->
      List.for_all
        (fun algo ->
          let d = degraded_device ks in
          let x = Device.of_array d Dtype.F16 ~name:"x" scan_input in
          let y, _ = Scan.Scan_api.run ~algo d x in
          Scan.Scan_api.check_against_reference ~round:Fp16.round
            ~input:scan_input ~output:y ()
          = Ok ())
        [ (Scan.Scan_api.get "scanu"); (Scan.Scan_api.get "scanul1"); (Scan.Scan_api.get "tcu") ])

let prop_segmented_any_subset =
  QCheck.Test.make ~name:"segmented scan bit-identical on any subset"
    ~count:15 arb_kill_set (fun ks ->
      let d = degraded_device ks in
      let x = Device.of_array d Dtype.F16 ~name:"x" scan_input in
      let flags = Device.of_array d Dtype.I8 ~name:"f" flags_input in
      let y, _ = Scan.Segmented_scan.run d ~x ~flags () in
      let expect =
        (* Host oracle: running sum resetting at raised flags. *)
        let acc = ref 0.0 in
        Array.mapi
          (fun i v ->
            if flags_input.(i) <> 0.0 then acc := 0.0;
            acc := !acc +. v;
            !acc)
          scan_input
      in
      Array.init (Array.length scan_input) (Global_tensor.get y) = expect)

let prop_max_scan_any_subset =
  QCheck.Test.make ~name:"max scan bit-identical on any subset" ~count:15
    arb_kill_set (fun ks ->
      let d = degraded_device ks in
      let x = Device.of_array d Dtype.F16 ~name:"x" scan_input in
      let y, _ = Scan.Max_scan.run d x in
      let expect =
        let acc = ref neg_infinity in
        Array.map
          (fun v ->
            acc := Float.max !acc v;
            !acc)
          scan_input
      in
      Array.init (Array.length scan_input) (Global_tensor.get y) = expect)

let prop_split_any_subset =
  QCheck.Test.make ~name:"split bit-identical on any subset" ~count:15
    arb_kill_set (fun ks ->
      let d = degraded_device ks in
      let x = Device.of_array d Dtype.F16 ~name:"x" scan_input in
      let flags = Device.of_array d Dtype.I8 ~name:"f" flags_input in
      let r = Ops.Split.run d ~x ~flags () in
      let expect, _ = Scan.Reference.split scan_input ~flags:flags_input in
      Array.init (Array.length scan_input)
        (Global_tensor.get r.Ops.Split.values)
      = expect)

let prop_batched_any_subset =
  QCheck.Test.make ~name:"batched scans bit-identical on any subset" ~count:10
    arb_kill_set (fun ks ->
      let batch = 6 and len = 3000 in
      let data =
        Array.init (batch * len) (fun i -> if i mod 31 = 0 then 1.0 else 0.0)
      in
      let expect =
        Scan.Reference.batched_inclusive ~round:Fp16.round ~batch ~len data
      in
      List.for_all
        (fun run ->
          let d = degraded_device ks in
          let x = Device.of_array d Dtype.F16 ~name:"x" data in
          let y, _ = run d ~batch ~len x in
          Array.init (batch * len) (Global_tensor.get y) = expect)
        [ (fun d ~batch ~len x -> Scan.Batched_scan.run_u d ~batch ~len x);
          (fun d ~batch ~len x -> Scan.Batched_scan.run_ul1 d ~batch ~len x) ])

(* ------------------------------------------------------------------ *)
(* Checkpointed batched scan end-to-end.                              *)

let test_checkpointed_batched_with_kill () =
  let batch = 16 and len = 4096 in
  let input =
    Array.init (batch * len) (fun i -> if i mod 41 = 0 then 1.0 else 0.0)
  in
  let d = dev_with_kills [ (0, 2000.0) ] in
  let r =
    Runtime.Resilient.batched_scan ~granularity:4 d ~batch ~len ~input
  in
  check_bool "complete" true r.Runtime.Resilient.bok;
  check_int "all rows" batch
    (Runtime.Checkpoint.done_count r.Runtime.Resilient.checkpoint);
  let expect =
    Scan.Reference.batched_inclusive ~round:Fp16.round ~batch ~len input
  in
  check_bool "bit-identical" true
    (Array.init (batch * len) (Global_tensor.get r.Runtime.Resilient.y)
    = expect)

let test_checkpointed_batched_replays_only_pending () =
  (* Under transient corruption the failed groups are retried; rows
     already checkpointed are never re-executed, so replayed_rows stays
     strictly below group_attempts * granularity. *)
  let batch = 16 and len = 2048 in
  let input =
    Array.init (batch * len) (fun i -> if i mod 29 = 0 then 1.0 else 0.0)
  in
  let d = Device.create ~fault:(Fault.config ~seed:9 ~rate:0.02 ()) () in
  let r =
    Runtime.Resilient.batched_scan ~granularity:4 ~max_attempts:6
      ~backoff_s:1e-7 d ~batch ~len ~input
  in
  check_bool "complete despite faults" true r.Runtime.Resilient.bok;
  check_bool "some groups retried" true (r.Runtime.Resilient.group_attempts > 4);
  check_bool "retries folded into stats" true
    (r.Runtime.Resilient.bstats.Stats.retries
    = r.Runtime.Resilient.group_attempts
      - Runtime.Checkpoint.commits r.Runtime.Resilient.checkpoint);
  let expect =
    Scan.Reference.batched_inclusive ~round:Fp16.round ~batch ~len input
  in
  check_bool "bit-identical" true
    (Array.init (batch * len) (Global_tensor.get r.Runtime.Resilient.y)
    = expect)

let () =
  Alcotest.run "degraded"
    [
      ( "health",
        [
          Alcotest.test_case "basics" `Quick test_health_basics;
          Alcotest.test_case "kill threshold" `Quick test_health_kill_threshold;
          Alcotest.test_case "quarantine" `Quick test_health_quarantine;
          Alcotest.test_case "parse kill spec" `Quick test_parse_kill_spec;
          Alcotest.test_case "parse fault spec" `Quick test_parse_fault_spec;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "healthy plan" `Quick test_scheduler_healthy_plan;
          Alcotest.test_case "degraded plan" `Quick test_scheduler_degraded_plan;
          Alcotest.test_case "all dead" `Quick test_scheduler_all_dead;
        ] );
      ( "checkpoint",
        [ Alcotest.test_case "pending groups" `Quick test_checkpoint_pending ] );
      ( "identity",
        [
          Alcotest.test_case "healthy path" `Quick test_healthy_path_identical;
          Alcotest.test_case "mid-run kill" `Quick
            test_mid_run_kill_bit_identical;
          Alcotest.test_case "mid-run kill, rounding regime" `Quick
            test_mid_run_kill_matches_healthy_in_rounding_regime;
          Alcotest.test_case "quarantine self-heals" `Quick
            test_quarantine_self_heals;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "fires" `Quick test_watchdog_fires;
          Alcotest.test_case "generous budget" `Quick
            test_watchdog_generous_budget_passes;
          Alcotest.test_case "resilient absorbs" `Quick
            test_resilient_absorbs_deadline;
        ] );
      ( "subset-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mcscan_any_subset;
            prop_scan_algos_any_subset;
            prop_segmented_any_subset;
            prop_max_scan_any_subset;
            prop_split_any_subset;
            prop_batched_any_subset;
          ] );
      ( "checkpointed-batched",
        [
          Alcotest.test_case "kill mid-batch" `Quick
            test_checkpointed_batched_with_kill;
          Alcotest.test_case "replays only pending" `Quick
            test_checkpointed_batched_replays_only_pending;
        ] );
    ]
