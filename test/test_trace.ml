(* Tracing subsystem tests.

   The contracts under test:
   - recording is deterministic: the exported Chrome trace JSON is
     byte-identical across host domain counts, for every registered
     operator (the trace is keyed by simulated cycles and block ids,
     never by host scheduling);
   - the recorder is internally consistent for every operator: zero
     dropped events, monotone per-engine tracks, spans inside their
     block window;
   - the exported JSON survives its own validator and parser, and the
     occupancy summary derived from it never exceeds 100% per engine;
   - the Stats additions (launch counting under [combine], the
     zero-time guards) behave. *)

open Ascend

let () = Ops.Ops_registry.install ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Small enough to keep ~16 ops x 2 domain counts fast, large enough
   that every kernel schedules several blocks. *)
let n = 1024

let trace_of entry ~domains =
  match Workload.Op_driver.run ~n ~domains entry with
  | Ok (st, Some tr) -> (st, tr)
  | Ok (_, None) -> Alcotest.fail "driver returned no trace"
  | Error msg ->
      Alcotest.failf "%s: %s" entry.Scan.Op_registry.name msg

(* ------------------------------------------------------------------ *)
(* Determinism across host domains, per registered operator.          *)

let test_domain_identity (entry : Scan.Op_registry.entry) () =
  let _, tr1 = trace_of entry ~domains:1 in
  let _, tr4 = trace_of entry ~domains:4 in
  let j1 = Obs.Chrome_trace.to_string tr1 in
  let j4 = Obs.Chrome_trace.to_string tr4 in
  check_string "trace JSON identical across domains 1/4" j1 j4

(* ------------------------------------------------------------------ *)
(* Recorder consistency, per registered operator.                     *)

let test_consistency (entry : Scan.Op_registry.entry) () =
  let _, tr = trace_of entry ~domains:1 in
  (match Trace.check tr with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "inconsistent trace: %s" msg);
  check_int "no dropped events" 0 (Trace.dropped tr);
  check_bool "events recorded" true (Trace.event_count tr > 0);
  match Obs.Chrome_trace.validate (Obs.Chrome_trace.json tr) with
  | Ok counts -> check_bool "validator accepts" true (counts.Obs.Chrome_trace.events > 0)
  | Error msg -> Alcotest.failf "invalid chrome trace: %s" msg

(* Every engine span survives the export, plus one timeline span per
   launch and one per phase. *)
let test_span_accounting () =
  let entry = Option.get (Scan.Op_registry.find "mcscan") in
  let _, tr = trace_of entry ~domains:1 in
  match Obs.Chrome_trace.validate (Obs.Chrome_trace.json tr) with
  | Ok counts ->
      let launches = Trace.launches tr in
      let expected =
        Trace.span_count tr
        + List.length launches
        + List.fold_left
            (fun acc l -> acc + List.length l.Trace.ln_phases)
            0 launches
      in
      check_int "spans = engine spans + launch spans + phase spans"
        expected counts.Obs.Chrome_trace.spans
  | Error msg -> Alcotest.failf "invalid chrome trace: %s" msg

(* ------------------------------------------------------------------ *)
(* JSON round-trip and summary bounds.                                *)

let test_json_roundtrip () =
  let entry = Option.get (Scan.Op_registry.find "scanu") in
  let _, tr = trace_of entry ~domains:1 in
  let s = Obs.Chrome_trace.to_string tr in
  match Obs.Jsonw.parse s with
  | Error msg -> Alcotest.failf "emitted JSON does not parse: %s" msg
  | Ok doc ->
      check_string "print/parse/print is a fixpoint" s
        (Obs.Jsonw.to_string doc)

let test_occupancy_bounds () =
  List.iter
    (fun name ->
      let entry = Option.get (Scan.Op_registry.find name) in
      let _, tr = trace_of entry ~domains:1 in
      let doc = Obs.Chrome_trace.json tr in
      match Obs.Trace_summary.of_json doc with
      | Error msg -> Alcotest.failf "%s: %s" name msg
      | Ok phases ->
          check_bool "at least one phase" true (phases <> []);
          List.iter
            (fun (p : Obs.Trace_summary.phase_sum) ->
              check_bool "bounding resource named" true
                (p.Obs.Trace_summary.bounding <> "");
              List.iter
                (fun (engine, occ) ->
                  if occ < 0.0 || occ > 1.0 +. 1e-6 then
                    Alcotest.failf "%s phase %d: engine %s occupancy %g out \
                                    of [0,1]"
                      name p.Obs.Trace_summary.index engine occ)
                p.Obs.Trace_summary.engines)
            phases)
    [ "scanu"; "mcscan"; "vec_only" ]

(* ------------------------------------------------------------------ *)
(* Stats satellites: combine launch counting and zero-time guards.    *)

let stats_of name =
  let entry = Option.get (Scan.Op_registry.find name) in
  match Workload.Op_driver.run ~n ~traced:false entry with
  | Ok (st, _) -> st
  | Error msg -> Alcotest.failf "%s: %s" name msg

let test_combine_launches () =
  let a = stats_of "scanu" and b = stats_of "mcscan" and c = stats_of "tcu" in
  check_int "single launch" 1 a.Stats.launches;
  let left = Stats.combine ~name:"t" [ Stats.combine ~name:"t" [ a; b ]; c ] in
  let right = Stats.combine ~name:"t" [ a; Stats.combine ~name:"t" [ b; c ] ] in
  let flat = Stats.combine ~name:"t" [ a; b; c ] in
  check_bool "combine associates (simulated fields)" true
    (Stats.equal_simulated left right);
  check_bool "combine flattens (simulated fields)" true
    (Stats.equal_simulated left flat);
  check_int "launches sum" 3 flat.Stats.launches;
  check_bool "per-launch host seconds defined" true
    (Float.is_finite (Stats.host_seconds_per_launch flat))

let test_zero_time_guards () =
  let st = stats_of "scanu" in
  let frozen = { st with Stats.seconds = 0.0 } in
  let u = Stats.core_utilization frozen in
  check_int "utilization keeps core count"
    (Array.length st.Stats.core_busy)
    (Array.length u);
  Array.iter (fun v -> check_bool "zero-seconds utilization is 0" true (v = 0.0)) u;
  (match st.Stats.phases with
  | p :: _ ->
      let zero = { p with Stats.seconds = 0.0 } in
      check_bool "zero-seconds phase occupancy is 0" true
        (Stats.phase_occupancy zero ~busy_cycles:1000.0
           ~clock_hz:(Trace.clock_hz (Trace.create ()))
        = 0.0);
      check_bool "zero-clock phase occupancy is 0" true
        (Stats.phase_occupancy p ~busy_cycles:1000.0 ~clock_hz:0.0 = 0.0)
  | [] -> Alcotest.fail "scanu produced no phases");
  (* Real runs stay in range. *)
  Array.iter
    (fun v -> check_bool "utilization non-negative" true (v >= 0.0))
    (Stats.core_utilization st)

let test_recording_off_by_default () =
  let d = Device.create () in
  check_bool "no recorder unless armed" true (Device.trace d = None);
  let tr = Device.arm_trace d in
  check_bool "armed recorder attached" true (Device.trace d = Some tr)

(* ------------------------------------------------------------------ *)

let () =
  let per_op label f =
    List.map
      (fun (e : Scan.Op_registry.entry) ->
        Alcotest.test_case
          (Printf.sprintf "%s: %s" label e.Scan.Op_registry.name)
          `Quick (f e))
      (Scan.Op_registry.all ())
  in
  Alcotest.run "trace"
    [
      ("domain-identity", per_op "domains 1=4" test_domain_identity);
      ("consistency", per_op "check+validate" test_consistency);
      ( "export",
        [
          Alcotest.test_case "span accounting" `Quick test_span_accounting;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "occupancy bounds" `Quick test_occupancy_bounds;
        ] );
      ( "stats",
        [
          Alcotest.test_case "combine launches" `Quick test_combine_launches;
          Alcotest.test_case "zero-time guards" `Quick test_zero_time_guards;
          Alcotest.test_case "recording off by default" `Quick
            test_recording_off_by_default;
        ] );
    ]
