(* Tests of the self-checking resilient launcher: retry on injected
   corruption, zero overhead at fault rate 0, and graceful degradation
   to the vector-only kernel under a persistently faulty cube engine. *)

open Ascend
open Runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let n = 65536
let input = Array.init n (fun i -> if (i + 3) mod 53 = 0 then 1.0 else 0.0)

let reference_ok output =
  Scan.Scan_api.check_against_reference ~round:Fp16.round ~input ~output ()

(* Acceptance (a): with a pinned seed an injected fault corrupts the
   first mcscan attempt; the launcher detects it against the reference
   oracle and the retry recovers, because each attempt draws fresh
   faults from the stream. *)
let test_bitflip_caught_and_retried () =
  let d = Device.create ~fault:(Fault.config ~seed:3 ~rate:0.05 ()) () in
  let r =
    Resilient.scan ~oracle:Resilient.Reference ~fallback:(Scan.Scan_api.get "vec_only")
      ~algo:(Scan.Scan_api.get "mcscan") d ~input
  in
  check_bool "recovered" true r.Resilient.ok;
  check_bool "fault was detected" true (r.Resilient.detections >= 1);
  check_bool "took a retry" true (r.Resilient.attempts >= 2);
  check_bool "no degradation needed" true (not r.Resilient.degraded);
  check_int "retries in stats" (r.Resilient.attempts - 1)
    r.Resilient.stats.Stats.retries;
  check_bool "faults in stats" true
    (List.length r.Resilient.stats.Stats.faults >= 1);
  match reference_ok r.Resilient.value with
  | Ok () -> ()
  | Error e -> Alcotest.failf "final output wrong: %s" e

(* Acceptance (c): at fault rate 0 the resilient wrapper runs exactly
   one attempt whose simulated time matches a plain launch within 5%
   (it is exact: validation happens on the host, off the clock), with
   bit-identical output. *)
let test_rate_zero_overhead () =
  let plain_d = Device.create () in
  let x = Device.of_array plain_d Dtype.F16 ~name:"x" input in
  let y_plain, st_plain = Scan.Scan_api.run ~algo:(Scan.Scan_api.get "mcscan") plain_d x in
  let r = Resilient.scan ~algo:(Scan.Scan_api.get "mcscan") (Device.create ()) ~input in
  check_bool "validated" true r.Resilient.ok;
  check_int "single attempt" 1 r.Resilient.attempts;
  check_int "no retries" 0 r.Resilient.stats.Stats.retries;
  check_int "no degradation" 0 r.Resilient.stats.Stats.degraded;
  let overhead =
    (r.Resilient.stats.Stats.seconds -. st_plain.Stats.seconds)
    /. st_plain.Stats.seconds
  in
  check_bool "overhead < 5%" true (Float.abs overhead < 0.05);
  for i = 0 to n - 1 do
    if Global_tensor.get r.Resilient.value i <> Global_tensor.get y_plain i
    then Alcotest.failf "output differs from plain run at %d" i
  done

(* A permanently faulty cube engine (every cube-side transfer flips a
   bit) defeats every ScanU attempt, but the vector-only fallback never
   touches the cube MTEs and lands clean: graceful degradation. *)
let test_degrade_to_vec_only () =
  let fault =
    Fault.config ~kinds:[ Fault.Bit_flip ] ~scope:Fault.Cube_mtes ~seed:1
      ~rate:1.0 ()
  in
  let d = Device.create ~fault () in
  let r =
    Resilient.scan ~max_attempts:2 ~oracle:Resilient.Reference
      ~fallback:(Scan.Scan_api.get "vec_only") ~algo:(Scan.Scan_api.get "scanu") d ~input
  in
  check_bool "fallback saved the run" true r.Resilient.ok;
  check_bool "degraded" true r.Resilient.degraded;
  check_int "primary attempts + fallback" 3 r.Resilient.attempts;
  check_int "detections" 2 r.Resilient.detections;
  check_int "degraded in stats" 1 r.Resilient.stats.Stats.degraded;
  match reference_ok r.Resilient.value with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fallback output wrong: %s" e

(* Resilient.run generic loop: a flaky computation that succeeds on the
   third call is retried exactly that often. *)
let dummy_stats () = Launch.run (Device.create ()) ~blocks:1 (fun _ -> ())

let test_run_retry_loop () =
  let calls = ref 0 in
  let st = dummy_stats () in
  let attempt () =
    incr calls;
    (!calls, st)
  in
  let validate v = if v >= 3 then Ok () else Error "too early" in
  let r = Resilient.run ~max_attempts:5 ~validate attempt in
  check_bool "ok" true r.Resilient.ok;
  check_int "three attempts" 3 r.Resilient.attempts;
  check_int "two detections" 2 r.Resilient.detections;
  check_int "retries in stats" 2 r.Resilient.stats.Stats.retries

let test_run_exhausted_without_fallback () =
  let st = dummy_stats () in
  let r =
    Resilient.run ~max_attempts:2 ~validate:(fun _ -> Error "always")
      (fun () -> (0, st))
  in
  check_bool "failed" true (not r.Resilient.ok);
  check_int "both attempts burned" 2 r.Resilient.attempts;
  check_bool "not degraded" true (not r.Resilient.degraded)

let test_run_validation () =
  check_bool "max_attempts < 1 rejected" true
    (try
       ignore
         (Resilient.run ~max_attempts:0
            ~validate:(fun _ -> Ok ())
            (fun () -> (0, dummy_stats ())));
       false
     with Invalid_argument _ -> true);
  check_bool "cost-only device rejected" true
    (try
       ignore
         (Resilient.scan ~algo:(Scan.Scan_api.get "mcscan")
            (Device.create ~mode:Device.Cost_only ())
            ~input:[| 1.0 |]);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "resilient"
    [
      ( "scan",
        [
          Alcotest.test_case "bitflip caught + retried" `Quick
            test_bitflip_caught_and_retried;
          Alcotest.test_case "rate-0 overhead" `Quick test_rate_zero_overhead;
          Alcotest.test_case "degrade to vec_only" `Quick
            test_degrade_to_vec_only;
        ] );
      ( "loop",
        [
          Alcotest.test_case "retry loop" `Quick test_run_retry_loop;
          Alcotest.test_case "exhausted" `Quick
            test_run_exhausted_without_fallback;
          Alcotest.test_case "validation" `Quick test_run_validation;
        ] );
    ]
