(* Golden-stats snapshot: runs every pre-existing kernel and a sample
   of scan-based operators at fixed inputs, under host domains 1 AND 4,
   and serialises (output digest, full simulated Stats) per case —
   checked against TWO committed goldens with different contracts:

   - [golden_digests.expected] — the output contract. Only the
     [# domains] / [case ... digest=...] lines: what the kernels
     compute. Byte-identical forever; there is deliberately no flag
     that regenerates it. If this mismatches, a kernel's numerical
     behaviour changed and the change is wrong (or must introduce a
     new case name, never alter an existing digest).

   - [golden_timing.expected] — the timing contract. The full Stats
     serialisation (cycles, busy, traffic, op counts). Versioned: a
     scheduling/cost-model change MAY regenerate it, but every
     regeneration appends a one-line justification to the file header.

   Usage:
     golden_stats.exe                     compare against both goldens
     golden_stats.exe --write --why "…"   regenerate the TIMING golden,
                                          appending "## vN: …" to its
                                          header (digests stay frozen) *)

open Ascend

(* ------------------------------------------------------------------ *)
(* Serialisation. Floats print as %h (hex, lossless); lists are kept
   in the order Stats produces them so ordering changes are caught
   too. *)

let fnv_prime = 0x100000001b3L
let fnv_offset = 0xcbf29ce484222325L

let digest_fold h bits =
  let h = ref h in
  for b = 0 to 7 do
    let byte = Int64.to_int (Int64.logand (Int64.shift_right_logical bits (b * 8)) 0xffL) in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) fnv_prime
  done;
  !h

let digest_tensor t =
  let n = Global_tensor.length t in
  let h = ref (digest_fold fnv_offset (Int64.of_int n)) in
  for i = 0 to n - 1 do
    h := digest_fold !h (Int64.bits_of_float (Global_tensor.get t i))
  done;
  !h

let digest_ints h ints =
  List.fold_left (fun h i -> digest_fold h (Int64.of_int i)) h ints

let buf = Buffer.create (1 lsl 16)
let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt

let emit_phase (p : Stats.phase) =
  pr "  phase compute=%h bandwidth=%h seconds=%h gm=%d fp=%d bound=%b\n"
    p.Stats.compute_seconds p.Stats.bandwidth_seconds p.Stats.seconds
    p.Stats.gm_bytes p.Stats.footprint_bytes p.Stats.bandwidth_bound

let emit_stats (st : Stats.t) =
  pr "  name=%s seconds=%h blocks=%d cores=%d read=%d write=%d\n" st.Stats.name
    st.Stats.seconds st.Stats.blocks st.Stats.cores_used st.Stats.gm_read_bytes
    st.Stats.gm_write_bytes;
  List.iter emit_phase st.Stats.phases;
  List.iter (fun (e, c) -> pr "  engine %s=%h\n" e c) st.Stats.engine_busy;
  Array.iteri (fun i c -> if c <> 0.0 then pr "  core %d=%h\n" i c)
    st.Stats.core_busy;
  List.iter (fun (o, c) -> pr "  op %s=%d\n" o c) st.Stats.op_counts;
  pr "  faults=%d retries=%d degraded=%d\n"
    (List.length st.Stats.faults) st.Stats.retries st.Stats.degraded

let case name ~digest st = pr "case %s digest=%Lx\n" name digest; emit_stats st

(* ------------------------------------------------------------------ *)
(* Fixed inputs. *)

let n = 30000
let scan_data = Array.init n (fun i -> if i mod 37 = 0 then 1.0 else 0.0)

let mixed_data =
  Array.init n (fun i ->
      if i mod 37 = 0 then 2.0 else if i mod 5 = 0 then -0.5 else 0.25)

let i8_data = Array.init n (fun i -> float_of_int ((i mod 7) - 3))
let flags_data = Array.init n (fun i -> if (i * 7) mod 13 < 2 then 1.0 else 0.0)
let small = Array.sub mixed_data 0 4097

let run_cases dev =
  let of_array dt name a = Device.of_array dev dt ~name a in
  let scans =
    [
      ("vec_only_f16", Dtype.F16, scan_data,
       fun x -> Scan.Scan_vec_only.run dev x);
      ("vec_only_f32", Dtype.F32, mixed_data,
       fun x -> Scan.Scan_vec_only.run dev x);
      ("scanu_f16", Dtype.F16, scan_data, fun x -> Scan.Scan_u.run dev x);
      ("scanul1_f16", Dtype.F16, scan_data, fun x -> Scan.Scan_ul1.run dev x);
      ("mcscan_f16", Dtype.F16, scan_data, fun x -> Scan.Mcscan.run dev x);
      ("mcscan_f16_exclusive", Dtype.F16, scan_data,
       fun x -> Scan.Mcscan.run ~exclusive:true dev x);
      ("mcscan_i8", Dtype.I8, i8_data, fun x -> Scan.Mcscan.run dev x);
      ("tcu_f16", Dtype.F16, scan_data, fun x -> Scan.Tcu_scan.run dev x);
      ("max_scan_f16", Dtype.F16, mixed_data, fun x -> Scan.Max_scan.run dev x);
      ("max_scan_f32", Dtype.F32, mixed_data, fun x -> Scan.Max_scan.run dev x);
      ("scanu_small", Dtype.F16, small, fun x -> Scan.Scan_u.run dev x);
      ("scanul1_small", Dtype.F16, small, fun x -> Scan.Scan_ul1.run dev x);
      ("vec_only_small", Dtype.F16, small, fun x -> Scan.Scan_vec_only.run dev x);
      ("mcscan_small", Dtype.F16, small, fun x -> Scan.Mcscan.run dev x);
      ("max_scan_small", Dtype.F16, small, fun x -> Scan.Max_scan.run dev x);
    ]
  in
  List.iter
    (fun (name, dt, data, run) ->
      let x = of_array dt "x" data in
      let y, st = run x in
      case name ~digest:(digest_tensor y) st)
    scans;
  (* Segmented scan. *)
  let x = of_array Dtype.F16 "x" scan_data in
  let flags = of_array Dtype.I8 "f" flags_data in
  let y, st = Scan.Segmented_scan.run dev ~x ~flags () in
  case "segmented_f16" ~digest:(digest_tensor y) st;
  (* Batched scans. *)
  let batch = 4 and blen = 8192 in
  let bdata =
    Array.init (batch * blen) (fun i -> if i mod 31 = 0 then 1.0 else 0.0)
  in
  let bx = of_array Dtype.F16 "bx" bdata in
  let y, st = Scan.Batched_scan.run_u dev ~batch ~len:blen bx in
  case "batched_u" ~digest:(digest_tensor y) st;
  let y, st = Scan.Batched_scan.run_ul1 dev ~batch ~len:blen bx in
  case "batched_ul1" ~digest:(digest_tensor y) st;
  (* Scan-based operators. *)
  let cx = of_array Dtype.F16 "cx" mixed_data in
  let cm = of_array Dtype.I8 "cm" flags_data in
  let r = Ops.Compress.run dev ~x:cx ~mask:cm () in
  case "compress"
    ~digest:(digest_ints (digest_tensor r.Ops.Compress.values)
               [ r.Ops.Compress.count ])
    r.Ops.Compress.stats;
  let sdata = Workload.Generators.uniform_f16 ~seed:7 ~lo:(-100.0) ~hi:100.0 8192 in
  let sx = of_array Dtype.F16 "sx" sdata in
  let r = Ops.Radix_sort.run dev sx in
  case "radix_sort" ~digest:(digest_tensor r.Ops.Radix_sort.values)
    r.Ops.Radix_sort.stats;
  let probs = Workload.Generators.softmax_probs ~seed:11 4096 in
  let pt = of_array Dtype.F16 "probs" probs in
  let r = Ops.Topp.sample dev ~probs:pt ~p:0.9 ~theta:0.35 in
  case "topp"
    ~digest:(digest_ints fnv_offset
               [ (match r.Ops.Topp.token with Some t -> t | None -> -1);
                 r.Ops.Topp.kept ])
    r.Ops.Topp.stats;
  let w = of_array Dtype.F16 "w" probs in
  let tok, st = Ops.Weighted_sampling.sample dev ~weights:w ~theta:0.4 in
  case "weighted_sampling" ~digest:(digest_ints fnv_offset [ tok ]) st

let render () =
  Buffer.clear buf;
  List.iter
    (fun domains ->
      pr "# domains=%d\n" domains;
      run_cases (Device.create ~domains ()))
    [ 1; 4 ];
  Buffer.contents buf

(* Resolve relative to the executable so both `dune runtest` (cwd =
   _build sandbox) and direct invocation work. *)
let path name = Filename.concat (Filename.dirname Sys.executable_name) name
let digests_path = path "golden_digests.expected"
let timing_path = path "golden_timing.expected"

let read_file p =
  let ic = open_in_bin p in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let lines s = String.split_on_char '\n' s
let is_header l = String.length l >= 3 && String.sub l 0 3 = "## "

let is_digest_line l =
  let pre p =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  pre "case " || pre "# domains="

(* The digest view of a render: case and domains lines only. *)
let digests_of text =
  String.concat ""
    (List.filter_map
       (fun l -> if is_digest_line l then Some (l ^ "\n") else None)
       (lines text))

(* First differing line, for diagnosis. *)
let report_diff ~got ~want =
  let rec first_diff i = function
    | g :: gs, w :: ws ->
        if String.equal g w then first_diff (i + 1) (gs, ws)
        else Printf.eprintf "line %d:\n  want: %s\n  got:  %s\n" i w g
    | g :: _, [] -> Printf.eprintf "line %d: extra line: %s\n" i g
    | [], w :: _ -> Printf.eprintf "line %d: missing line: %s\n" i w
    | [], [] -> ()
  in
  first_diff 1 (lines got, lines want)

let () =
  let argv = Array.to_list Sys.argv in
  let write = List.mem "--write" argv in
  let why =
    let rec find = function
      | "--why" :: w :: _ -> Some w
      | _ :: tl -> find tl
      | [] -> None
    in
    find argv
  in
  let got = render () in
  if write then begin
    (* Only the timing golden is writable; its header accumulates one
       justification line per regeneration. *)
    let why =
      match why with
      | Some w when String.trim w <> "" -> String.trim w
      | _ ->
          prerr_endline
            "golden stats: --write requires --why \"<one-line justification>\"";
          exit 2
    in
    let old_header =
      if Sys.file_exists timing_path then
        List.filter is_header (lines (read_file timing_path))
      else []
    in
    let version = List.length old_header + 1 in
    let oc = open_out timing_path in
    List.iter (fun l -> output_string oc (l ^ "\n")) old_header;
    Printf.fprintf oc "## v%d: %s\n" version why;
    output_string oc got;
    close_out oc;
    Printf.printf "wrote %s (v%d; digests golden untouched)\n" timing_path
      version
  end
  else begin
    let fail = ref false in
    (* Output contract: frozen forever. *)
    let want_digests = read_file digests_path in
    let got_digests = digests_of got in
    if not (String.equal got_digests want_digests) then begin
      report_diff ~got:got_digests ~want:want_digests;
      prerr_endline
        "golden stats: OUTPUT DIGEST MISMATCH — kernel outputs changed. \
         This golden is frozen: fix the kernel, do not regenerate.";
      fail := true
    end;
    (* Timing contract: versioned. *)
    let want_timing =
      String.concat "\n"
        (List.filter (fun l -> not (is_header l)) (lines (read_file timing_path)))
    in
    if not (String.equal got want_timing) then begin
      report_diff ~got ~want:want_timing;
      prerr_endline
        "golden stats: TIMING MISMATCH — if the scheduling/cost change is \
         intended, regenerate with --write --why \"...\"";
      fail := true
    end;
    if !fail then exit 1;
    print_endline "golden stats: OK"
  end
