(* Unit tests of the binary16 codec. *)

open Ascend

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 0.0))
let check_bool = Alcotest.(check bool)

let test_constants () =
  check_float "zero" 0.0 (Fp16.to_float Fp16.zero);
  check_float "one" 1.0 (Fp16.to_float Fp16.one);
  check_float "neg zero" (-0.0) (Fp16.to_float Fp16.neg_zero);
  check_bool "neg zero sign" true (1.0 /. Fp16.to_float Fp16.neg_zero < 0.0);
  check_float "+inf" infinity (Fp16.to_float Fp16.pos_infinity);
  check_float "-inf" neg_infinity (Fp16.to_float Fp16.neg_infinity);
  check_bool "nan" true (Float.is_nan (Fp16.to_float Fp16.nan))

let test_exact_values () =
  List.iter
    (fun v -> check_float (string_of_float v) v (Fp16.round v))
    [ 0.0; 1.0; -1.0; 0.5; -0.5; 2.0; 1024.0; 2048.0; 65504.0; -65504.0;
      0.25; 0.125; 1.5; 3.0; 100.0; -100.0; 2.0 ** -14.0; 2.0 ** -24.0 ]

let test_integer_exactness () =
  (* All integers up to 2048 are exactly representable. *)
  for i = 0 to 2048 do
    let v = float_of_int i in
    if Fp16.round v <> v then
      Alcotest.failf "integer %d not exact in fp16" i
  done;
  (* 2049 is not. *)
  check_bool "2049 rounds" true (Fp16.round 2049.0 <> 2049.0)

let test_rounding_nearest_even () =
  (* Between 2048 and 2050 the spacing is 2; 2049 ties to even 2048. *)
  check_float "2049 -> 2048" 2048.0 (Fp16.round 2049.0);
  check_float "2051 -> 2052" 2052.0 (Fp16.round 2051.0);
  (* 1 + 2^-11 is exactly between 1 and 1+2^-10; ties to even (1.0). *)
  check_float "tie to even at 1" 1.0 (Fp16.round (1.0 +. (2.0 ** -11.0)));
  check_float "above tie rounds up"
    (1.0 +. (2.0 ** -10.0))
    (Fp16.round (1.0 +. (2.0 ** -11.0) +. (2.0 ** -20.0)))

let test_overflow_underflow () =
  check_float "overflow" infinity (Fp16.round 65520.0);
  check_float "neg overflow" neg_infinity (Fp16.round (-65520.0));
  check_float "max stays" 65504.0 (Fp16.round 65505.0);
  check_float "underflow to zero" 0.0 (Fp16.round (2.0 ** -26.0));
  check_bool "tiny negative keeps sign" true
    (1.0 /. Fp16.round (-.(2.0 ** -26.0)) < 0.0);
  (* Smallest subnormal survives. *)
  check_float "min subnormal" (2.0 ** -24.0) (Fp16.round (2.0 ** -24.0))

let test_subnormals () =
  (* 3 * 2^-24 is a subnormal with two bits set. *)
  let v = 3.0 *. (2.0 ** -24.0) in
  check_float "subnormal exact" v (Fp16.round v);
  let h = Fp16.of_float v in
  check_int "subnormal exponent field" 0 (Fp16.bits_exponent h);
  check_int "subnormal mantissa" 3 (Fp16.bits_mantissa h)

let test_bit_fields () =
  let h = Fp16.of_float (-1.5) in
  check_int "sign" 1 (Fp16.bits_sign h);
  check_int "exponent" 15 (Fp16.bits_exponent h);
  check_int "mantissa" 512 (Fp16.bits_mantissa h)

let test_roundtrip_all_finite () =
  (* Every finite bit pattern decodes and re-encodes to itself. *)
  for bits = 0 to 0xFFFF do
    if Fp16.is_finite bits then begin
      let v = Fp16.to_float bits in
      let bits' = Fp16.of_float v in
      if bits <> bits' && not (bits = 0x8000 && bits' = 0x8000) then
        if not (v = 0.0 && bits land 0x7FFF = 0) then
          Alcotest.failf "roundtrip failed for 0x%04X (%g -> 0x%04X)" bits v
            bits'
    end
  done

(* Every NaN bit pattern (any payload, either sign) decodes to a float
   NaN and re-encodes to the canonical quiet NaN. *)
let test_nan_payloads () =
  for bits = 0 to 0xFFFF do
    if Fp16.is_nan bits then begin
      if not (Float.is_nan (Fp16.to_float bits)) then
        Alcotest.failf "0x%04X decodes to a non-NaN" bits;
      check_int
        (Printf.sprintf "payload 0x%04X canonicalized" bits)
        Fp16.nan
        (Fp16.of_float (Fp16.to_float bits))
    end
  done

let test_infinity_roundtrip () =
  check_int "+inf pattern" Fp16.pos_infinity (Fp16.of_float infinity);
  check_int "-inf pattern" Fp16.neg_infinity (Fp16.of_float neg_infinity);
  check_int "huge overflows to +inf" Fp16.pos_infinity (Fp16.of_float 1e10);
  check_int "-huge overflows to -inf" Fp16.neg_infinity (Fp16.of_float (-1e10));
  check_float "inf survives add" infinity (Fp16.add infinity 1.0);
  check_bool "inf - inf is nan" true (Float.is_nan (Fp16.sub infinity infinity))

(* All 1023 positive (and negative) subnormal patterns round-trip
   exactly through the float domain. *)
let test_all_subnormals_roundtrip () =
  for m = 1 to 0x3FF do
    let v = float_of_int m *. (2.0 ** -24.0) in
    if Fp16.round v <> v then Alcotest.failf "subnormal %d not exact" m;
    check_int (Printf.sprintf "+subnormal %d" m) m (Fp16.of_float v);
    check_int
      (Printf.sprintf "-subnormal %d" m)
      (0x8000 lor m)
      (Fp16.of_float (-.v))
  done

(* Values straddling representability boundaries: the overflow
   threshold, the subnormal/normal seam and the underflow tie. *)
let test_rounding_boundaries () =
  (* Halfway between max finite (65504) and the next step (65536):
     below stays finite, the midpoint ties up into overflow. *)
  check_float "just below overflow midpoint" 65504.0 (Fp16.round 65519.0);
  check_float "overflow midpoint" infinity (Fp16.round 65520.0);
  let min_normal = 2.0 ** -14.0 in
  let max_subnormal = 1023.0 *. (2.0 ** -24.0) in
  check_float "max subnormal exact" max_subnormal (Fp16.round max_subnormal);
  (* The midpoint of the subnormal/normal seam ties to the even
     mantissa, i.e. the smallest normal. *)
  check_float "seam midpoint ties to normal" min_normal
    (Fp16.round ((min_normal +. max_subnormal) /. 2.0));
  (* 2^-25 is halfway between 0 and the smallest subnormal: ties to
     even zero; anything above rounds up to the subnormal. *)
  check_float "underflow tie to zero" 0.0 (Fp16.round (2.0 ** -25.0));
  check_float "just above underflow tie"
    (2.0 ** -24.0)
    (Fp16.round ((2.0 ** -25.0) *. 1.001))

(* The historical decoder ([Float.pow]-based), kept inline as the
   oracle for the table-driven [to_float]: every one of the 65536 bit
   patterns must decode to the bit-identical double (NaN patterns by
   predicate — the payload is not preserved in either version). *)
let reference_to_float h =
  let sign = if Fp16.bits_sign h = 1 then -1.0 else 1.0 in
  let e = Fp16.bits_exponent h in
  let m = Fp16.bits_mantissa h in
  if e = 31 then if m = 0 then sign *. infinity else Float.nan
  else if e = 0 then sign *. float_of_int m *. 0x1p-24
  else sign *. float_of_int (m lor 0x400) *. Float.pow 2.0 (float_of_int (e - 25))

let test_table_matches_reference_exhaustive () =
  for bits = 0 to 0xFFFF do
    let v = Fp16.to_float bits and r = reference_to_float bits in
    if Float.is_nan r then begin
      if not (Float.is_nan v) then
        Alcotest.failf "0x%04X: expected NaN, table gives %h" bits v
    end
    else if Int64.bits_of_float v <> Int64.bits_of_float r then
      Alcotest.failf "0x%04X: table %h <> reference %h" bits v r
  done

(* An independent binary16 encoder, used as the oracle for the bias-add
   bit trick in [Fp16.of_float]: round the double to float32 through
   [Int32.bits_of_float] (the same first step), then classify and round
   with [frexp]/[ldexp] float arithmetic instead of bit manipulation.
   Every scaling is by a power of two and the scaled significand has at
   most 24 significant bits, so each intermediate is exact in a double
   and the round-to-nearest-even comparison is exact too. *)
let reference_of_float f =
  let g = Int32.float_of_bits (Int32.bits_of_float f) in
  let sign = if Float.sign_bit g then 0x8000 else 0 in
  if Float.is_nan g then sign lor 0x7E00
  else
    let a = Float.abs g in
    if a >= 65520.0 then sign lor 0x7C00
    else if a = 0.0 then sign
    else
      let rne scaled =
        let fl = Float.floor scaled in
        let rest = scaled -. fl in
        let k = int_of_float fl in
        if rest > 0.5 || (rest = 0.5 && k land 1 = 1) then k + 1 else k
      in
      let e = snd (Float.frexp a) in
      if e - 1 >= -14 then begin
        (* Normal half range: scale so the integer part is the 11-bit
           significand, round, and re-normalise a mantissa carry. *)
        let q = rne (Float.ldexp a (11 - e)) in
        let q, e = if q = 2048 then (1024, e + 1) else (q, e) in
        sign lor (((e - 1 + 15) lsl 10) lor (q land 0x3FF))
      end
      else begin
        (* Subnormal half range: quantum is 2^-24; a carry to 1024
           lands exactly on the smallest normal encoding 0x0400. *)
        let q = rne (Float.ldexp a 24) in
        sign lor q
      end

let check_encode ctx v =
  let got = Fp16.of_float v and want = reference_of_float v in
  if got <> want then
    Alcotest.failf "%s: of_float %h = 0x%04X, reference 0x%04X" ctx v got want

(* All 65536 half payloads, re-encoded from their decoded double: the
   bit trick and the arithmetic reference must agree on every one
   (including the NaN payloads, which both canonicalize). *)
let test_encode_matches_reference_payloads () =
  for bits = 0 to 0xFFFF do
    check_encode (Printf.sprintf "payload 0x%04X" bits) (Fp16.to_float bits)
  done

(* Every rounding decision in the finite range: for each adjacent pair
   of positive finite half values, the exact midpoint (the RNE tie) and
   the doubles just below and above it, with both signs. Covers the
   subnormal band, the subnormal/normal seam, every normal ulp and the
   overflow boundary at 65520. *)
let test_encode_matches_reference_midpoints () =
  for h = 0 to 0x7BFF do
    let lo = Fp16.to_float h in
    let hi = if h = 0x7BFF then 65536.0 else Fp16.to_float (h + 1) in
    let mid = (lo +. hi) /. 2.0 in
    List.iter
      (fun v ->
        check_encode (Printf.sprintf "between 0x%04X and 0x%04X" h (h + 1)) v;
        check_encode "negated" (-.v))
      [ lo; mid; Float.pred mid; Float.succ mid ]
  done

(* The f32 single-rounding step: a structured sweep over the float32
   encoding space (every exponent, mantissa patterns around the 13
   dropped bits) plus denormal/inf/NaN edges, driven through
   [Int32.float_of_bits] so subnormal doubles, huge doubles and payload
   NaNs all appear. *)
let test_encode_matches_reference_f32_sweep () =
  let mantissas =
    [ 0x0; 0x1; 0xFFE; 0xFFF; 0x1000; 0x1001; 0x1FFF; 0x2000; 0x2001;
      0x3FFF; 0x7FF000; 0x7FFFFF ]
  in
  for e = 0 to 255 do
    List.iter
      (fun m ->
        List.iter
          (fun s ->
            let bits = Int32.of_int ((s lsl 31) lor (e lsl 23) lor m) in
            check_encode
              (Printf.sprintf "f32 bits 0x%08lX" bits)
              (Int32.float_of_bits bits))
          [ 0; 1 ])
      mantissas
  done;
  List.iter (check_encode "edge")
    [ infinity; neg_infinity; Float.nan; -.Float.nan; 0.0; -0.0;
      65519.999999; 65520.0; 65520.000001; -65520.0; 65504.0; 65536.0;
      0x1p-24; 0x1p-25; 0x1p-26; -0x1p-25; 0x1.8p-25; 0x1p-14; 0x1p-15;
      0x1.ffcp-15; 4.940656458412465e-324; Float.max_float;
      Int64.float_of_bits 0x7FF0000000000001L;
      Int64.float_of_bits 0xFFF8000000001234L ]

let prop_encode_matches_reference =
  QCheck.Test.make ~name:"of_float matches arithmetic reference" ~count:5000
    QCheck.float
    (fun v -> Fp16.of_float v = reference_of_float v)

let test_nan_handling () =
  check_int "nan canonical" Fp16.nan (Fp16.of_float Float.nan);
  check_bool "is_nan" true (Fp16.is_nan (Fp16.of_float Float.nan));
  check_bool "inf not nan" false (Fp16.is_nan Fp16.pos_infinity);
  check_bool "inf is infinite" true (Fp16.is_infinite Fp16.pos_infinity)

let test_arith () =
  check_float "add rounds" 2048.0 (Fp16.add 2048.0 1.0);
  check_float "add exact" 3.0 (Fp16.add 1.0 2.0);
  check_float "mul" 6.0 (Fp16.mul 2.0 3.0);
  check_float "sub" (-1.0) (Fp16.sub 1.0 2.0)

let test_compare_value () =
  check_bool "order" true (Fp16.compare_value (Fp16.of_float 1.0) (Fp16.of_float 2.0) < 0);
  check_int "-0 = +0" 0 (Fp16.compare_value Fp16.neg_zero Fp16.zero);
  check_bool "nan last" true (Fp16.compare_value Fp16.nan Fp16.pos_infinity > 0)

let prop_roundtrip =
  QCheck.Test.make ~name:"of_float . to_float = id on patterns" ~count:2000
    QCheck.(int_bound 0xFFFF)
    (fun bits ->
      QCheck.assume (Fp16.is_finite bits && bits <> 0x8000);
      Fp16.of_float (Fp16.to_float bits) = bits)

let prop_round_idempotent =
  QCheck.Test.make ~name:"round is idempotent" ~count:2000
    QCheck.(float_bound_inclusive 65504.0)
    (fun v -> Fp16.round (Fp16.round v) = Fp16.round v)

let prop_round_monotone =
  QCheck.Test.make ~name:"round is monotone" ~count:2000
    QCheck.(pair (float_bound_inclusive 60000.0) (float_bound_inclusive 60000.0))
    (fun (a, b) ->
      let a, b = (Float.min a b, Float.max a b) in
      Fp16.round a <= Fp16.round b)

let prop_round_error_bound =
  QCheck.Test.make ~name:"relative rounding error <= 2^-11" ~count:2000
    QCheck.(float_range 0.001 60000.0)
    (fun v -> Float.abs (Fp16.round v -. v) <= Float.abs v *. (2.0 ** -11.0))

let () =
  Alcotest.run "fp16"
    [
      ( "codec",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "exact values" `Quick test_exact_values;
          Alcotest.test_case "integer exactness" `Quick test_integer_exactness;
          Alcotest.test_case "round to nearest even" `Quick
            test_rounding_nearest_even;
          Alcotest.test_case "overflow/underflow" `Quick
            test_overflow_underflow;
          Alcotest.test_case "subnormals" `Quick test_subnormals;
          Alcotest.test_case "bit fields" `Quick test_bit_fields;
          Alcotest.test_case "roundtrip all finite" `Quick
            test_roundtrip_all_finite;
          Alcotest.test_case "nan handling" `Quick test_nan_handling;
          Alcotest.test_case "nan payloads" `Quick test_nan_payloads;
          Alcotest.test_case "infinity roundtrip" `Quick
            test_infinity_roundtrip;
          Alcotest.test_case "all subnormals" `Quick
            test_all_subnormals_roundtrip;
          Alcotest.test_case "rounding boundaries" `Quick
            test_rounding_boundaries;
          Alcotest.test_case "decode table exhaustive" `Quick
            test_table_matches_reference_exhaustive;
          Alcotest.test_case "encode vs reference, all payloads" `Quick
            test_encode_matches_reference_payloads;
          Alcotest.test_case "encode vs reference, all midpoints" `Quick
            test_encode_matches_reference_midpoints;
          Alcotest.test_case "encode vs reference, f32 sweep" `Quick
            test_encode_matches_reference_f32_sweep;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "compare" `Quick test_compare_value;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_encode_matches_reference;
            prop_round_idempotent;
            prop_round_monotone;
            prop_round_error_bound;
          ] );
    ]
