(* Unit tests of the binary16 codec. *)

open Ascend

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 0.0))
let check_bool = Alcotest.(check bool)

let test_constants () =
  check_float "zero" 0.0 (Fp16.to_float Fp16.zero);
  check_float "one" 1.0 (Fp16.to_float Fp16.one);
  check_float "neg zero" (-0.0) (Fp16.to_float Fp16.neg_zero);
  check_bool "neg zero sign" true (1.0 /. Fp16.to_float Fp16.neg_zero < 0.0);
  check_float "+inf" infinity (Fp16.to_float Fp16.pos_infinity);
  check_float "-inf" neg_infinity (Fp16.to_float Fp16.neg_infinity);
  check_bool "nan" true (Float.is_nan (Fp16.to_float Fp16.nan))

let test_exact_values () =
  List.iter
    (fun v -> check_float (string_of_float v) v (Fp16.round v))
    [ 0.0; 1.0; -1.0; 0.5; -0.5; 2.0; 1024.0; 2048.0; 65504.0; -65504.0;
      0.25; 0.125; 1.5; 3.0; 100.0; -100.0; 2.0 ** -14.0; 2.0 ** -24.0 ]

let test_integer_exactness () =
  (* All integers up to 2048 are exactly representable. *)
  for i = 0 to 2048 do
    let v = float_of_int i in
    if Fp16.round v <> v then
      Alcotest.failf "integer %d not exact in fp16" i
  done;
  (* 2049 is not. *)
  check_bool "2049 rounds" true (Fp16.round 2049.0 <> 2049.0)

let test_rounding_nearest_even () =
  (* Between 2048 and 2050 the spacing is 2; 2049 ties to even 2048. *)
  check_float "2049 -> 2048" 2048.0 (Fp16.round 2049.0);
  check_float "2051 -> 2052" 2052.0 (Fp16.round 2051.0);
  (* 1 + 2^-11 is exactly between 1 and 1+2^-10; ties to even (1.0). *)
  check_float "tie to even at 1" 1.0 (Fp16.round (1.0 +. (2.0 ** -11.0)));
  check_float "above tie rounds up"
    (1.0 +. (2.0 ** -10.0))
    (Fp16.round (1.0 +. (2.0 ** -11.0) +. (2.0 ** -20.0)))

let test_overflow_underflow () =
  check_float "overflow" infinity (Fp16.round 65520.0);
  check_float "neg overflow" neg_infinity (Fp16.round (-65520.0));
  check_float "max stays" 65504.0 (Fp16.round 65505.0);
  check_float "underflow to zero" 0.0 (Fp16.round (2.0 ** -26.0));
  check_bool "tiny negative keeps sign" true
    (1.0 /. Fp16.round (-.(2.0 ** -26.0)) < 0.0);
  (* Smallest subnormal survives. *)
  check_float "min subnormal" (2.0 ** -24.0) (Fp16.round (2.0 ** -24.0))

let test_subnormals () =
  (* 3 * 2^-24 is a subnormal with two bits set. *)
  let v = 3.0 *. (2.0 ** -24.0) in
  check_float "subnormal exact" v (Fp16.round v);
  let h = Fp16.of_float v in
  check_int "subnormal exponent field" 0 (Fp16.bits_exponent h);
  check_int "subnormal mantissa" 3 (Fp16.bits_mantissa h)

let test_bit_fields () =
  let h = Fp16.of_float (-1.5) in
  check_int "sign" 1 (Fp16.bits_sign h);
  check_int "exponent" 15 (Fp16.bits_exponent h);
  check_int "mantissa" 512 (Fp16.bits_mantissa h)

let test_roundtrip_all_finite () =
  (* Every finite bit pattern decodes and re-encodes to itself. *)
  for bits = 0 to 0xFFFF do
    if Fp16.is_finite bits then begin
      let v = Fp16.to_float bits in
      let bits' = Fp16.of_float v in
      if bits <> bits' && not (bits = 0x8000 && bits' = 0x8000) then
        if not (v = 0.0 && bits land 0x7FFF = 0) then
          Alcotest.failf "roundtrip failed for 0x%04X (%g -> 0x%04X)" bits v
            bits'
    end
  done

(* Every NaN bit pattern (any payload, either sign) decodes to a float
   NaN and re-encodes to the canonical quiet NaN. *)
let test_nan_payloads () =
  for bits = 0 to 0xFFFF do
    if Fp16.is_nan bits then begin
      if not (Float.is_nan (Fp16.to_float bits)) then
        Alcotest.failf "0x%04X decodes to a non-NaN" bits;
      check_int
        (Printf.sprintf "payload 0x%04X canonicalized" bits)
        Fp16.nan
        (Fp16.of_float (Fp16.to_float bits))
    end
  done

let test_infinity_roundtrip () =
  check_int "+inf pattern" Fp16.pos_infinity (Fp16.of_float infinity);
  check_int "-inf pattern" Fp16.neg_infinity (Fp16.of_float neg_infinity);
  check_int "huge overflows to +inf" Fp16.pos_infinity (Fp16.of_float 1e10);
  check_int "-huge overflows to -inf" Fp16.neg_infinity (Fp16.of_float (-1e10));
  check_float "inf survives add" infinity (Fp16.add infinity 1.0);
  check_bool "inf - inf is nan" true (Float.is_nan (Fp16.sub infinity infinity))

(* All 1023 positive (and negative) subnormal patterns round-trip
   exactly through the float domain. *)
let test_all_subnormals_roundtrip () =
  for m = 1 to 0x3FF do
    let v = float_of_int m *. (2.0 ** -24.0) in
    if Fp16.round v <> v then Alcotest.failf "subnormal %d not exact" m;
    check_int (Printf.sprintf "+subnormal %d" m) m (Fp16.of_float v);
    check_int
      (Printf.sprintf "-subnormal %d" m)
      (0x8000 lor m)
      (Fp16.of_float (-.v))
  done

(* Values straddling representability boundaries: the overflow
   threshold, the subnormal/normal seam and the underflow tie. *)
let test_rounding_boundaries () =
  (* Halfway between max finite (65504) and the next step (65536):
     below stays finite, the midpoint ties up into overflow. *)
  check_float "just below overflow midpoint" 65504.0 (Fp16.round 65519.0);
  check_float "overflow midpoint" infinity (Fp16.round 65520.0);
  let min_normal = 2.0 ** -14.0 in
  let max_subnormal = 1023.0 *. (2.0 ** -24.0) in
  check_float "max subnormal exact" max_subnormal (Fp16.round max_subnormal);
  (* The midpoint of the subnormal/normal seam ties to the even
     mantissa, i.e. the smallest normal. *)
  check_float "seam midpoint ties to normal" min_normal
    (Fp16.round ((min_normal +. max_subnormal) /. 2.0));
  (* 2^-25 is halfway between 0 and the smallest subnormal: ties to
     even zero; anything above rounds up to the subnormal. *)
  check_float "underflow tie to zero" 0.0 (Fp16.round (2.0 ** -25.0));
  check_float "just above underflow tie"
    (2.0 ** -24.0)
    (Fp16.round ((2.0 ** -25.0) *. 1.001))

(* The historical decoder ([Float.pow]-based), kept inline as the
   oracle for the table-driven [to_float]: every one of the 65536 bit
   patterns must decode to the bit-identical double (NaN patterns by
   predicate — the payload is not preserved in either version). *)
let reference_to_float h =
  let sign = if Fp16.bits_sign h = 1 then -1.0 else 1.0 in
  let e = Fp16.bits_exponent h in
  let m = Fp16.bits_mantissa h in
  if e = 31 then if m = 0 then sign *. infinity else Float.nan
  else if e = 0 then sign *. float_of_int m *. 0x1p-24
  else sign *. float_of_int (m lor 0x400) *. Float.pow 2.0 (float_of_int (e - 25))

let test_table_matches_reference_exhaustive () =
  for bits = 0 to 0xFFFF do
    let v = Fp16.to_float bits and r = reference_to_float bits in
    if Float.is_nan r then begin
      if not (Float.is_nan v) then
        Alcotest.failf "0x%04X: expected NaN, table gives %h" bits v
    end
    else if Int64.bits_of_float v <> Int64.bits_of_float r then
      Alcotest.failf "0x%04X: table %h <> reference %h" bits v r
  done

let test_nan_handling () =
  check_int "nan canonical" Fp16.nan (Fp16.of_float Float.nan);
  check_bool "is_nan" true (Fp16.is_nan (Fp16.of_float Float.nan));
  check_bool "inf not nan" false (Fp16.is_nan Fp16.pos_infinity);
  check_bool "inf is infinite" true (Fp16.is_infinite Fp16.pos_infinity)

let test_arith () =
  check_float "add rounds" 2048.0 (Fp16.add 2048.0 1.0);
  check_float "add exact" 3.0 (Fp16.add 1.0 2.0);
  check_float "mul" 6.0 (Fp16.mul 2.0 3.0);
  check_float "sub" (-1.0) (Fp16.sub 1.0 2.0)

let test_compare_value () =
  check_bool "order" true (Fp16.compare_value (Fp16.of_float 1.0) (Fp16.of_float 2.0) < 0);
  check_int "-0 = +0" 0 (Fp16.compare_value Fp16.neg_zero Fp16.zero);
  check_bool "nan last" true (Fp16.compare_value Fp16.nan Fp16.pos_infinity > 0)

let prop_roundtrip =
  QCheck.Test.make ~name:"of_float . to_float = id on patterns" ~count:2000
    QCheck.(int_bound 0xFFFF)
    (fun bits ->
      QCheck.assume (Fp16.is_finite bits && bits <> 0x8000);
      Fp16.of_float (Fp16.to_float bits) = bits)

let prop_round_idempotent =
  QCheck.Test.make ~name:"round is idempotent" ~count:2000
    QCheck.(float_bound_inclusive 65504.0)
    (fun v -> Fp16.round (Fp16.round v) = Fp16.round v)

let prop_round_monotone =
  QCheck.Test.make ~name:"round is monotone" ~count:2000
    QCheck.(pair (float_bound_inclusive 60000.0) (float_bound_inclusive 60000.0))
    (fun (a, b) ->
      let a, b = (Float.min a b, Float.max a b) in
      Fp16.round a <= Fp16.round b)

let prop_round_error_bound =
  QCheck.Test.make ~name:"relative rounding error <= 2^-11" ~count:2000
    QCheck.(float_range 0.001 60000.0)
    (fun v -> Float.abs (Fp16.round v -. v) <= Float.abs v *. (2.0 ** -11.0))

let () =
  Alcotest.run "fp16"
    [
      ( "codec",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "exact values" `Quick test_exact_values;
          Alcotest.test_case "integer exactness" `Quick test_integer_exactness;
          Alcotest.test_case "round to nearest even" `Quick
            test_rounding_nearest_even;
          Alcotest.test_case "overflow/underflow" `Quick
            test_overflow_underflow;
          Alcotest.test_case "subnormals" `Quick test_subnormals;
          Alcotest.test_case "bit fields" `Quick test_bit_fields;
          Alcotest.test_case "roundtrip all finite" `Quick
            test_roundtrip_all_finite;
          Alcotest.test_case "nan handling" `Quick test_nan_handling;
          Alcotest.test_case "nan payloads" `Quick test_nan_payloads;
          Alcotest.test_case "infinity roundtrip" `Quick
            test_infinity_roundtrip;
          Alcotest.test_case "all subnormals" `Quick
            test_all_subnormals_roundtrip;
          Alcotest.test_case "rounding boundaries" `Quick
            test_rounding_boundaries;
          Alcotest.test_case "decode table exhaustive" `Quick
            test_table_matches_reference_exhaustive;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "compare" `Quick test_compare_value;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_round_idempotent;
            prop_round_monotone;
            prop_round_error_bound;
          ] );
    ]
