(* Tests of the pod subsystem: link fault/retry behaviour, the
   distributed scan's placement-invariance contract (bit-identical
   output and stats across pod sizes and surviving-device subsets),
   the pod chaos DSL verbs, the checkpoint-store version guard, and
   the checkpointed pod runner. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let bytes_of y =
  Array.init (Global_tensor.length y) (fun i ->
      Int64.bits_of_float (Global_tensor.get y i))

(* Sparse 0/1 rows keep every partial sum exactly representable in
   fp16, so the distributed scan must equal the single-device scan bit
   for bit (the same contract the blocked-scan tests rely on). *)
let gen_input n seed = Array.init n (fun i -> if (i + seed) mod 7 = 0 then 1.0 else 0.0)

let single_device_scan input =
  let device = Device.create ~mode:Device.Functional () in
  let x = Device.of_array device Dtype.F16 ~name:"x" input in
  Scan.Mcscan.run device x

let dist_scan_on ?schedule ~devices ~kill input =
  let pod = Pod.create ~devices () in
  List.iter (Pod.kill_device pod) kill;
  let x = Device.of_array (Pod.primary pod) Dtype.F16 ~name:"x" input in
  Scan.Dist_scan.run ?schedule pod x

(* --- link model ----------------------------------------------------- *)

let test_link_delivers_and_charges () =
  let l = Pod.Link.create ~seed:1 ~src:0 ~dst:1 () in
  let o = Pod.Link.send l ~bytes:1024 in
  check_bool "delivered" true o.Pod.Link.delivered;
  check_int "one attempt" 1 o.Pod.Link.attempts;
  check_bool "time charged" true (o.Pod.Link.seconds > 0.0);
  check_int "counted" 1 (Pod.Link.sends l)

let test_link_faults_are_deterministic () =
  let run () =
    let cfg = { Pod.Link.default_config with Pod.Link.fault_rate = 0.4 } in
    let l = Pod.Link.create ~config:cfg ~seed:7 ~src:0 ~dst:1 () in
    List.init 50 (fun _ ->
        let o = Pod.Link.send l ~bytes:256 in
        (o.Pod.Link.delivered, o.Pod.Link.attempts))
  in
  check_bool "same fault stream" true (run () = run ())

let test_link_quarantines_after_exhaustion () =
  let cfg =
    {
      Pod.Link.default_config with
      Pod.Link.fault_rate = 1.0;
      fault_kinds = [ Pod.Link.Drop ];
      max_attempts = 2;
      quarantine_after = 2;
    }
  in
  let l = Pod.Link.create ~config:cfg ~seed:3 ~src:0 ~dst:1 () in
  let o1 = Pod.Link.send l ~bytes:64 in
  check_bool "exhausted" true (not o1.Pod.Link.delivered);
  ignore (Pod.Link.send l ~bytes:64);
  check_bool "quarantined" true (Pod.Link.quarantined l);
  (* Quarantined links fail fast without burning attempts. *)
  let o3 = Pod.Link.send l ~bytes:64 in
  check_int "fail-fast" 0 o3.Pod.Link.attempts

let test_link_crc_detects_corruption () =
  let cfg =
    {
      Pod.Link.default_config with
      Pod.Link.fault_rate = 1.0;
      fault_kinds = [ Pod.Link.Corrupt ];
      max_attempts = 4;
    }
  in
  let l = Pod.Link.create ~config:cfg ~seed:5 ~src:0 ~dst:1 () in
  ignore (Pod.Link.send l ~bytes:128);
  check_bool "every corruption detected" true (Pod.Link.crc_detected l > 0)

(* --- pod construction and routing ----------------------------------- *)

let test_pod_rejects_zero_devices () =
  Alcotest.check_raises "devices=0"
    (Invalid_argument "Pod.create: devices must be >= 1 (got 0)") (fun () ->
      ignore (Pod.create ~devices:0 ()))

let test_send_reroutes_around_down_link () =
  let pod = Pod.create ~devices:3 () in
  Pod.Link.set_down (Pod.link pod ~src:0 ~dst:1) true;
  let s = Pod.send pod ~src:0 ~dst:1 ~bytes:64 ~label:"t" in
  check_bool "rerouted via relay" true (s.Pod.snd_via = Some 2);
  check_int "reroute counted" 1 (Pod.reroutes pod)

let test_send_raises_partitioned () =
  let pod = Pod.create ~devices:2 () in
  Pod.Link.set_down (Pod.link pod ~src:0 ~dst:1) true;
  Alcotest.check_raises "no route"
    (Pod.Partitioned { src = 0; dst = 1 })
    (fun () -> ignore (Pod.send pod ~src:0 ~dst:1 ~bytes:64 ~label:"t"))

(* --- distributed scan: placement invariance -------------------------- *)

let prop_dist_equals_single =
  let arb =
    QCheck.make
      ~print:(fun (n, seed, d) -> Printf.sprintf "n=%d seed=%d devices=%d" n seed d)
      QCheck.Gen.(
        triple (int_range 1 3000) (int_range 0 100) (int_range 1 8))
  in
  QCheck.Test.make ~name:"dist_scan(d devices) = single-device scan" ~count:40
    arb (fun (n, seed, d) ->
      let input = gen_input n seed in
      let yref, _ = single_device_scan input in
      let r = dist_scan_on ~devices:d ~kill:[] input in
      bytes_of yref = bytes_of r.Scan.Dist_scan.y)

let prop_dist_survives_subset =
  let arb =
    QCheck.make
      ~print:(fun (n, seed, mask) -> Printf.sprintf "n=%d seed=%d mask=%d" n seed mask)
      QCheck.Gen.(
        triple (int_range 1 2000) (int_range 0 100) (int_range 0 14))
  in
  (* mask picks a proper subset of a 4-device pod to kill (never all
     four): output AND placement-invariant stats must match the
     full-pod run exactly. *)
  QCheck.Test.make
    ~name:"dist_scan bit-identical for any surviving subset" ~count:40 arb
    (fun (n, seed, mask) ->
      let input = gen_input n seed in
      let full = dist_scan_on ~devices:4 ~kill:[] input in
      let kill = List.filter (fun d -> mask land (1 lsl d) <> 0) [ 0; 1; 2; 3 ] in
      let part = dist_scan_on ~devices:4 ~kill input in
      bytes_of full.Scan.Dist_scan.y = bytes_of part.Scan.Dist_scan.y
      && Stats.equal_simulated full.Scan.Dist_scan.stats
           part.Scan.Dist_scan.stats)

let test_dist_all_dead_raises () =
  let pod = Pod.create ~devices:2 () in
  Pod.kill_device pod 0;
  Pod.kill_device pod 1;
  let x = Device.of_array (Pod.primary pod) Dtype.F16 ~name:"x" (gen_input 64 0) in
  Alcotest.check_raises "no survivors" Health.All_cores_dead (fun () ->
      ignore (Scan.Dist_scan.run pod x))

let test_schedules_agree () =
  let input = gen_input 1234 3 in
  let ring = dist_scan_on ~schedule:Scan.Dist_scan.Ring ~devices:4 ~kill:[] input in
  let ag =
    dist_scan_on ~schedule:Scan.Dist_scan.All_gather ~devices:4 ~kill:[] input
  in
  check_bool "outputs equal" true
    (bytes_of ring.Scan.Dist_scan.y = bytes_of ag.Scan.Dist_scan.y);
  check_bool "all-gather sends more" true
    (ag.Scan.Dist_scan.exchange_sends > ring.Scan.Dist_scan.exchange_sends)

let test_link_faults_leave_output_intact () =
  let input = gen_input 999 4 in
  let clean = dist_scan_on ~devices:4 ~kill:[] input in
  let cfg = { Pod.Link.default_config with Pod.Link.fault_rate = 0.5 } in
  let pod = Pod.create ~devices:4 ~link_config:cfg ~seed:13 () in
  let x = Device.of_array (Pod.primary pod) Dtype.F16 ~name:"x" input in
  let noisy = Scan.Dist_scan.run pod x in
  check_bool "output unchanged by link faults" true
    (bytes_of clean.Scan.Dist_scan.y = bytes_of noisy.Scan.Dist_scan.y);
  check_bool "retries happened" true (noisy.Scan.Dist_scan.exchange_retries > 0)

(* --- registry entry -------------------------------------------------- *)

let test_registry_dist_scan () =
  let e =
    match Scan.Op_registry.find "dist_scan" with
    | Some e -> e
    | None -> Alcotest.fail "dist_scan not registered"
  in
  let input = gen_input 777 1 in
  let device = Device.create ~mode:Device.Functional () in
  let x = Device.of_array device Dtype.F16 ~name:"x" input in
  let cfg =
    { Scan.Op_registry.default_config with Scan.Op_registry.devices = Some 3 }
  in
  (match Scan.Op_registry.run e cfg device (Scan.Op_registry.Tensor x) with
  | Ok (out, _) ->
      let y = Option.get out.Scan.Op_registry.y in
      let yref, _ = single_device_scan input in
      check_bool "registry path bit-identical" true (bytes_of yref = bytes_of y)
  | Error e -> Alcotest.failf "registry run failed: %s" e);
  match
    Scan.Op_registry.run e
      { cfg with Scan.Op_registry.devices = Some 0 }
      device (Scan.Op_registry.Tensor x)
  with
  | Error msg ->
      check_string "validation message" "devices: device count must be >= 1 (got 0)" msg
  | Ok _ -> Alcotest.fail "devices=0 accepted"

(* --- chaos DSL: pod verbs -------------------------------------------- *)

let parse_ok text =
  match Runtime.Chaos.parse text with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let parse_err text =
  match Runtime.Chaos.parse text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let test_parse_pod_verbs () =
  let sc =
    parse_ok
      "name podsc\nseed 2\nat launch 1 kill device=3\nat launch 2 link src=0 dst=1 for=2\n"
  in
  check_int "two events" 2 (List.length sc.Runtime.Chaos.sc_events)

let test_parse_pod_errors () =
  let has needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let e1 = parse_err "name x\nat launch 1 kill core=1 device=2\n" in
  check_bool "kill exactly-one" true (has "exactly one of core=C or device=D" e1);
  let e2 = parse_err "name x\nat launch 1 kill\n" in
  check_bool "kill missing arg" true (has "core=C or device=D" e2);
  let e3 = parse_err "name x\nat launch 1 link src=0 for=1\n" in
  check_bool "link missing dst" true (has "dst" e3);
  let e4 = parse_err "name x\nat launch 1 link src=1 dst=1 for=1\n" in
  check_bool "link self-loop" true (has "src" e4)

let test_chaos_kills_pod_device () =
  let sc = parse_ok "name k\nseed 1\nat launch 0 kill device=1\n" in
  let ch = Runtime.Chaos.arm ~on_crash:(fun _ -> ()) sc in
  let pod = Pod.create ~devices:3 () in
  Runtime.Chaos.before_launch_pod ch pod ~launch_index:0 ~elapsed_s:0.0;
  check_bool "device 1 dead" true (not (Pod.alive pod 1));
  check_int "two survivors" 2 (Pod.alive_count pod)

(* --- checkpoint store version guard ---------------------------------- *)

let test_store_refuses_newer_version () =
  let path = Filename.temp_file "ascend_pod_v2" ".ckpt" in
  let buf = Buffer.create 64 in
  Buffer.add_string buf "ASCKPT";
  let add_u16 v =
    Buffer.add_char buf (Char.chr (v land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))
  in
  let add_u32 v =
    add_u16 (v land 0xFFFF);
    add_u16 ((v lsr 16) land 0xFFFF)
  in
  add_u16 (Runtime.Checkpoint_store.version + 1);
  add_u32 4;
  add_u32 8;
  add_u32 0;
  let crc = Runtime.Checkpoint_store.crc32 (Buffer.to_bytes buf) in
  add_u32 crc;
  let oc = open_out_bin path in
  output_bytes oc (Buffer.to_bytes buf);
  close_out oc;
  (match Runtime.Checkpoint_store.load ~path with
  | Ok _ -> Alcotest.fail "newer-versioned store accepted"
  | Error msg ->
      let has needle hay =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      check_bool
        (Printf.sprintf "names the version (%s)" msg)
        true
        (has "newer than this build" msg));
  Sys.remove path

(* --- checkpointed pod runner ----------------------------------------- *)

let test_pod_runner_completes () =
  let batch = 8 and len = 256 in
  let input = gen_input (batch * len) 0 in
  let pod = Pod.create ~devices:3 () in
  let r = Runtime.Pod_runner.batched_scan pod ~batch ~len ~input in
  check_bool "ok" true r.Runtime.Pod_runner.pok;
  check_int "no devices lost" 0 r.Runtime.Pod_runner.pdevices_lost;
  (* Spot-check one row tail against the host fp16 chain. *)
  let acc = ref 0.0 in
  for i = 0 to len - 1 do
    acc := Fp16.round (!acc +. input.((3 * len) + i))
  done;
  check_bool "row 3 tail" true
    (Global_tensor.get r.Runtime.Pod_runner.py ((3 * len) + (len - 1)) = !acc)

let test_pod_runner_survives_device_kill () =
  let batch = 8 and len = 256 in
  let input = gen_input (batch * len) 5 in
  let clean = Runtime.Pod_runner.batched_scan (Pod.create ~devices:3 ()) ~batch ~len ~input in
  let sc = parse_ok "name k\nseed 1\nat launch 1 kill device=2\n" in
  let ch = Runtime.Chaos.arm ~on_crash:(fun _ -> ()) sc in
  let pod = Pod.create ~devices:3 () in
  let r = Runtime.Pod_runner.batched_scan ~chaos:ch pod ~batch ~len ~input in
  check_bool "ok after device kill" true r.Runtime.Pod_runner.pok;
  check_int "one device lost" 1 r.Runtime.Pod_runner.pdevices_lost;
  check_bool "output bit-identical to full pod" true
    (bytes_of clean.Runtime.Pod_runner.py = bytes_of r.Runtime.Pod_runner.py)

let () =
  Alcotest.run "pod"
    [
      ( "link",
        [
          Alcotest.test_case "delivers and charges" `Quick
            test_link_delivers_and_charges;
          Alcotest.test_case "deterministic fault stream" `Quick
            test_link_faults_are_deterministic;
          Alcotest.test_case "quarantine after exhaustion" `Quick
            test_link_quarantines_after_exhaustion;
          Alcotest.test_case "crc detects corruption" `Quick
            test_link_crc_detects_corruption;
        ] );
      ( "pod",
        [
          Alcotest.test_case "rejects zero devices" `Quick
            test_pod_rejects_zero_devices;
          Alcotest.test_case "reroutes around down link" `Quick
            test_send_reroutes_around_down_link;
          Alcotest.test_case "raises partitioned" `Quick
            test_send_raises_partitioned;
        ] );
      ( "dist_scan",
        [
          QCheck_alcotest.to_alcotest prop_dist_equals_single;
          QCheck_alcotest.to_alcotest prop_dist_survives_subset;
          Alcotest.test_case "all devices dead raises" `Quick
            test_dist_all_dead_raises;
          Alcotest.test_case "ring and all-gather agree" `Quick
            test_schedules_agree;
          Alcotest.test_case "link faults leave output intact" `Quick
            test_link_faults_leave_output_intact;
          Alcotest.test_case "registry entry" `Quick test_registry_dist_scan;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "parse pod verbs" `Quick test_parse_pod_verbs;
          Alcotest.test_case "parse pod errors" `Quick test_parse_pod_errors;
          Alcotest.test_case "kill device fires" `Quick
            test_chaos_kills_pod_device;
        ] );
      ( "store",
        [
          Alcotest.test_case "refuses newer version" `Quick
            test_store_refuses_newer_version;
        ] );
      ( "pod_runner",
        [
          Alcotest.test_case "completes" `Quick test_pod_runner_completes;
          Alcotest.test_case "survives device kill" `Quick
            test_pod_runner_survives_device_kill;
        ] );
    ]
