(* End-to-end crash harness: a REAL process death, not a simulated one.

   The parent forks a child that runs a chaos batched scan against a
   checkpoint store; the scenario's crash event makes the child
   SIGKILL itself mid-batch (after some retries have made the store's
   partial state interesting). The parent observes the WSIGNALED
   status, reopens the store exactly like `chaos resume` does, and
   finishes the batch — then proves:

   - the child was killed by SIGKILL (the crash was real);
   - the store held partial progress (0 < commits < groups);
   - the resumed output is byte-for-byte identical to an
     uninterrupted reference run of the same storyline;
   - no committed row was ever re-executed (the resume's commits are
     row-disjoint from the crashed run's);
   - no rows were lost;
   - with tracing armed the resumed run's recording passes
     Trace.check.

   Runs under `dune runtest` via a rule in test/dune; exits 1 on any
   violation. *)

open Ascend
open Runtime

let batch = 32
let len = 2048
let input = Array.init (batch * len) (fun i -> if i mod 53 = 0 then 1.0 else 0.0)

let scenario_text =
  "name harness-crash\n\
   seed 11\n\
   at launch 1 storm rate=0.3 kinds=dropped_copy for=2\n\
   at launch 4 crash\n"

let failures = ref 0

let check name ok =
  if ok then Printf.printf "  ok: %s\n%!" name
  else begin
    incr failures;
    Printf.printf "  FAILED: %s\n%!" name
  end

let scenario =
  match Chaos.parse scenario_text with
  | Ok sc -> sc
  | Error e ->
      Printf.printf "harness: scenario parse error: %s\n%!" e;
      exit 1

let make_device () =
  Device.create ~mode:Device.Functional
    ~fault:(Chaos.fault_config scenario) ()

let run_batched ?store ?trace_ref ~skip_crashes ~on_crash () =
  let device = make_device () in
  (match trace_ref with
  | Some r -> r := Some (Device.arm_trace device)
  | None -> ());
  let ctl = Degrade_ctl.create () in
  let ch = Chaos.arm ~skip_crashes ~on_crash scenario in
  Resilient.batched_scan ?store ~ctl ~chaos:ch device ~batch ~len ~input

let bytes_of r = Array.init (batch * len) (Global_tensor.get r.Resilient.y)

let () =
  Printf.printf "chaos harness: fork, SIGKILL mid-batch, resume\n%!";
  let store_path = Filename.temp_file "chaos_harness_" ".ckpt" in
  (* Reference: the same storyline, crash skipped, in this process. *)
  let ref_r =
    run_batched ~skip_crashes:true ~on_crash:(fun _ -> ()) ()
  in
  check "reference run completes" ref_r.Resilient.bok;
  let ref_bytes = bytes_of ref_r in
  (* Child: runs with the store and dies by its own hand. *)
  (match Unix.fork () with
  | 0 ->
      (* In the child. Exit codes other than death-by-signal are
         failures the parent will flag. *)
      let store =
        Checkpoint_store.create ~path:store_path ~rows:batch ~len ()
      in
      let r =
        run_batched ~store ~skip_crashes:false
          ~on_crash:(fun _ -> Unix.kill (Unix.getpid ()) Sys.sigkill)
          ()
      in
      (* Reaching here means the crash event never fired. *)
      ignore r;
      Stdlib.exit 3
  | pid -> (
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WSIGNALED s when s = Sys.sigkill ->
          check "child died of SIGKILL" true
      | Unix.WEXITED 3 ->
          check "child died of SIGKILL (crash event never fired)" false
      | Unix.WEXITED c ->
          check (Printf.sprintf "child died of SIGKILL (exited %d)" c) false
      | Unix.WSIGNALED s ->
          check (Printf.sprintf "child died of SIGKILL (signal %d)" s) false
      | Unix.WSTOPPED _ -> check "child died of SIGKILL (stopped)" false);
      (* Parent: resume from whatever the child made durable. *)
      match Checkpoint_store.reopen ~path:store_path with
      | Error e ->
          check (Printf.sprintf "store reopens (%s)" e) false
      | Ok (store, l) ->
          check "store parsed with no torn tail (atomic commit)"
            (not l.Checkpoint_store.l_torn);
          let commits_at_crash = Checkpoint_store.commits store in
          check
            (Printf.sprintf "partial progress durable (%d commits)"
               commits_at_crash)
            (commits_at_crash > 0);
          check "crash was mid-batch, not at the end"
            (List.fold_left
               (fun acc (lo, hi, _) -> acc + (hi - lo))
               0
               (Checkpoint_store.groups store)
            < batch);
          let trace_ref = ref None in
          let res_r =
            run_batched ~store ~trace_ref ~skip_crashes:true
              ~on_crash:(fun _ -> ())
              ()
          in
          check "resumed run completes" res_r.Resilient.bok;
          check "rows were restored from the store"
            (res_r.Resilient.restored_rows > 0);
          check "no rows lost"
            (Checkpoint.done_count res_r.Resilient.checkpoint = batch);
          check "resume equals replay, byte for byte"
            (bytes_of res_r = ref_bytes);
          (* Zero re-executed committed rows: the resume's new commits
             must be row-disjoint from the crashed run's. *)
          let all = Checkpoint_store.groups store in
          let restored = Array.make batch false in
          List.iteri
            (fun i (lo, hi, _) ->
              if i < commits_at_crash then
                for r = lo to hi - 1 do
                  restored.(r) <- true
                done)
            all;
          let reexec = ref 0 in
          List.iteri
            (fun i (lo, hi, _) ->
              if i >= commits_at_crash then
                for r = lo to hi - 1 do
                  if restored.(r) then incr reexec
                done)
            all;
          check "zero re-executed committed rows" (!reexec = 0);
          (match !trace_ref with
          | Some tr -> (
              match Trace.check tr with
              | Ok () -> check "resumed trace is check-clean" true
              | Error e ->
                  check (Printf.sprintf "resumed trace is check-clean (%s)" e)
                    false)
          | None -> check "resumed trace recorded" false)));
  (try Sys.remove store_path with Sys_error _ -> ());
  (try Sys.remove (store_path ^ ".tmp") with Sys_error _ -> ());
  if !failures > 0 then begin
    Printf.printf "chaos harness: %d check(s) FAILED\n%!" !failures;
    exit 1
  end;
  Printf.printf "chaos harness: all checks passed\n%!"
