(* Unit tests of block timing semantics, local allocation, and the
   launch-level scheduling / bandwidth model. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_floatish msg a b = Alcotest.(check (float 1e-9)) msg a b

let device () = Device.create ()

(* Event-timeline semantics: synchronous charges chain on their lane
   (cube-side engines share lane 0), while different lanes only meet
   at the final makespan. *)
let test_same_lane_chains () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Block.charge ctx Engine.Cube 100.0;
  Block.charge ctx Engine.Cube_mte_out 50.0;
  check_floatish "same lane = sum" 150.0 (Block.elapsed_cycles ctx)

let test_lanes_overlap () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Block.charge ctx Engine.Cube 100.0;
  Block.charge ctx (Engine.Vec 0) 50.0;
  check_floatish "lanes overlap = max" 100.0 (Block.elapsed_cycles ctx)

let test_async_wait_group () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  (* Async copy of 100 cycles: the lane cursor does not move... *)
  Block.charge_async ctx Engine.Cube_mte_in 100.0;
  Block.commit_group ctx Engine.Cube_mte_in;
  check_floatish "async leaves lane" 0.0 (Block.lane_clock ctx Engine.Cube);
  check_floatish "async advances queue" 100.0
    (Block.engine_clock ctx Engine.Cube_mte_in);
  (* ...until the group is waited, which joins the lane at its end. *)
  Block.wait_group ctx Engine.Cube_mte_in ~outstanding:0;
  check_floatish "wait joins lane" 100.0 (Block.lane_clock ctx Engine.Cube);
  (* A compute op issued now starts at 100 on the same lane. *)
  Block.charge ctx Engine.Cube 25.0;
  check_floatish "chained after wait" 125.0 (Block.elapsed_cycles ctx)

let test_wait_group_outstanding () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  (* Two single-copy groups of 100 cycles each, back to back on the
     queue: waiting down to one outstanding group joins the lane at
     the FIRST group's end only. *)
  Block.charge_async ctx Engine.Cube_mte_in 100.0;
  Block.commit_group ctx Engine.Cube_mte_in;
  Block.charge_async ctx Engine.Cube_mte_in 100.0;
  Block.commit_group ctx Engine.Cube_mte_in;
  Block.wait_group ctx Engine.Cube_mte_in ~outstanding:1;
  check_floatish "waited to depth 1" 100.0 (Block.lane_clock ctx Engine.Cube);
  Block.wait_group ctx Engine.Cube_mte_in ~outstanding:0;
  check_floatish "drained" 200.0 (Block.lane_clock ctx Engine.Cube);
  Alcotest.check_raises "negative outstanding"
    (Invalid_argument "Block.wait_group: outstanding must be >= 0") (fun () ->
      Block.wait_group ctx Engine.Cube_mte_in ~outstanding:(-1))

let test_await_engine () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Block.charge_async ctx Engine.Cube_mte_out 80.0;
  (* The vector lane joins the cube store queue's clock. *)
  Block.await_engine ctx ~lane_of:(Engine.Vec_mte_in 0) ~on:Engine.Cube_mte_out;
  Block.charge ctx (Engine.Vec 0) 10.0;
  check_floatish "vec after cube store" 90.0 (Block.elapsed_cycles ctx)

(* The legacy [pipelined] wrapper lowers an [iters > 1] section onto
   the overlap semantics: every charge queues on its engine from the
   section entry, so the section costs the longest engine stream — the
   fill term of the old closed-form [max + (sum - max)/iters] is now a
   real issue-timeline effect, not an analytic surcharge. *)
let test_pipelined_overlap () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Block.pipelined ctx ~iters:10 (fun () ->
      Block.charge ctx Engine.Cube 1000.0;
      Block.charge ctx (Engine.Vec 0) 400.0;
      Block.charge ctx (Engine.Vec_mte_in 0) 100.0);
  check_floatish "pipelined = busiest engine" 1000.0
    (Block.elapsed_cycles ctx);
  (* The section joins all lanes at its makespan: later work chains
     after it even on an engine that was idle inside. *)
  Block.charge ctx Engine.Scalar 5.0;
  check_floatish "section is a barrier" 1005.0 (Block.elapsed_cycles ctx)

let test_pipelined_iters_one_is_serial () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  (* iters = 1: plain event semantics — documented as "no pipelining
     across iterations", so same-lane ops chain... *)
  Block.pipelined ctx ~iters:1 (fun () ->
      Block.charge ctx Engine.Cube 10.0;
      Block.charge ctx Engine.Cube_mte_out 20.0);
  check_floatish "iters=1 chains a lane" 30.0 (Block.elapsed_cycles ctx);
  (* ...but independent lanes still overlap (the old closed form
     wrongly serialised them). *)
  let ctx2 = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Block.pipelined ctx2 ~iters:1 (fun () ->
      Block.charge ctx2 Engine.Cube 10.0;
      Block.charge ctx2 (Engine.Vec 0) 20.0);
  check_floatish "iters=1 lanes overlap" 20.0 (Block.elapsed_cycles ctx2)

let test_pipelined_no_nesting () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Alcotest.check_raises "nesting"
    (Invalid_argument "Block.pipelined: sections do not nest") (fun () ->
      Block.pipelined ctx ~iters:2 (fun () ->
          Block.pipelined ctx ~iters:2 (fun () -> ())))

let test_alloc_capacity () =
  let dev = device () in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  (* L0A holds 64 KiB = 32768 f16 elements. *)
  let _ = Block.alloc ctx Mem_kind.L0a Dtype.F16 16384 in
  let _ = Block.alloc ctx Mem_kind.L0a Dtype.F16 16384 in
  check_bool "alloc overflow raises" true
    (try
       ignore (Block.alloc ctx Mem_kind.L0a Dtype.F16 1);
       false
     with Failure _ -> true);
  Block.reset_mem ctx Mem_kind.L0a;
  let t = Block.alloc ctx Mem_kind.L0a Dtype.F16 32768 in
  check_int "post-reset full alloc" 32768 (Local_tensor.length t)

let test_gm_traffic_and_touched () =
  let dev = device () in
  let x = Device.alloc dev Dtype.F16 1000 ~name:"x" in
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  Block.note_gm_traffic ctx ~read:100 ~write:50;
  Block.note_touched ctx x;
  Block.note_touched ctx x;
  let r = Block.finish ctx in
  check_int "read" 100 r.Block.gm_read_bytes;
  check_int "write" 50 r.Block.gm_write_bytes;
  check_int "touched dedup" 1 (List.length r.Block.touched);
  check_int "touched bytes" 2000 (snd (List.hd r.Block.touched))

let test_launch_compute_bound () =
  let dev = device () in
  let cm = Device.cost dev in
  (* One block burning 1.8e6 cycles = 1 ms of compute, no traffic. *)
  let st =
    Launch.run dev ~blocks:1 (fun ctx -> Block.charge ctx Engine.Cube 1.8e6)
  in
  check_floatish "time = launch + compute"
    (cm.Cost_model.kernel_launch_seconds +. 1e-3)
    st.Stats.seconds;
  check_bool "not bandwidth bound" false
    (List.hd st.Stats.phases).Stats.bandwidth_bound

let test_launch_round_robin () =
  let dev = device () in
  (* 40 blocks of equal cost on 20 cores: 2 per core. *)
  let st =
    Launch.run dev ~blocks:40 (fun ctx -> Block.charge ctx Engine.Cube 1.8e6)
  in
  let cm = Device.cost dev in
  check_floatish "two rounds" (cm.Cost_model.kernel_launch_seconds +. 2e-3)
    st.Stats.seconds;
  check_int "cores used" 20 st.Stats.cores_used

let test_launch_bandwidth_cap () =
  (* Shrink L2 so a small tensor's footprint spills to HBM: 20 blocks
     each claiming 40 MB of traffic -> 800 MB at 800 GB/s = 1 ms,
     dominating negligible compute. *)
  let cost = { Cost_model.default with Cost_model.l2_capacity_bytes = 1024 } in
  let dev = Device.create ~cost () in
  let big = Device.alloc dev Dtype.F16 4096 ~name:"big" in
  let st =
    Launch.run dev ~blocks:20 (fun ctx ->
        Block.note_touched ctx big;
        Block.note_gm_traffic ctx ~read:(40 * 1000 * 1000) ~write:0;
        Block.charge ctx Engine.Cube 100.0)
  in
  let expected = cost.Cost_model.kernel_launch_seconds +. 1e-3 in
  check_floatish "bandwidth bound time" expected st.Stats.seconds;
  check_bool "flagged bandwidth bound" true
    (List.hd st.Stats.phases).Stats.bandwidth_bound

let test_launch_l2_bandwidth () =
  let dev = device () in
  let cm = Device.cost dev in
  (* Small footprint: the same traffic runs at the L2 rate. *)
  let small = Device.alloc dev Dtype.F16 1024 ~name:"small" in
  let st =
    Launch.run dev ~blocks:1 (fun ctx ->
        Block.note_touched ctx small;
        Block.note_gm_traffic ctx ~read:(4 * 1000 * 1000) ~write:0)
  in
  let expected =
    cm.Cost_model.kernel_launch_seconds
    +. (4e6 /. cm.Cost_model.l2_bandwidth)
  in
  check_floatish "l2 rate" expected st.Stats.seconds

let test_phases_add_sync () =
  let dev = device () in
  let cm = Device.cost dev in
  let nop _ = () in
  let st1 = Launch.run_phases dev ~blocks:1 [ nop ] in
  let st3 = Launch.run_phases dev ~blocks:1 [ nop; nop; nop ] in
  check_floatish "two syncs"
    (2.0 *. cm.Cost_model.sync_all_seconds)
    (st3.Stats.seconds -. st1.Stats.seconds)

let test_launch_validation () =
  let dev = device () in
  Alcotest.check_raises "no phases"
    (Invalid_argument "Launch.run_phases: no phases") (fun () ->
      ignore (Launch.run_phases dev ~blocks:1 []));
  Alcotest.check_raises "blocks < 1"
    (Invalid_argument "Launch.run_phases: blocks must be >= 1") (fun () ->
      ignore (Launch.run dev ~blocks:0 (fun _ -> ())))

let test_stats_combine () =
  let dev = device () in
  let mk () = Launch.run dev ~blocks:2 (fun ctx ->
      Block.charge ctx Engine.Cube 1000.0;
      Block.note_gm_traffic ctx ~read:10 ~write:20)
  in
  let a = mk () and b = mk () in
  let c = Stats.combine ~name:"both" [ a; b ] in
  check_floatish "seconds add" (a.Stats.seconds +. b.Stats.seconds)
    c.Stats.seconds;
  check_int "reads add" 40 c.Stats.gm_read_bytes;
  check_int "writes add" 80 c.Stats.gm_write_bytes;
  check_int "phases concat" 2 (List.length c.Stats.phases);
  let busy name st =
    match List.assoc_opt name st.Stats.engine_busy with
    | Some v -> v
    | None -> Alcotest.failf "engine %s missing" name
  in
  check_floatish "busy adds" (busy "cube" a +. busy "cube" b) (busy "cube" c)

let test_device_modes () =
  let dev = Device.create ~mode:Device.Cost_only () in
  check_bool "not functional" false (Device.functional dev);
  let t = Device.alloc dev Dtype.F16 100 ~name:"t" in
  check_bool "unbacked" false (Global_tensor.is_backed t);
  check_bool "buffer raises" true
    (try
       ignore (Global_tensor.buffer t);
       false
     with Invalid_argument _ -> true);
  let devf = device () in
  let tf = Device.of_array devf Dtype.F16 ~name:"tf" [| 1.0; 2.0 |] in
  check_floatish "of_array" 2.0 (Global_tensor.get tf 1);
  check_int "allocated bytes" (100 * 2 + 0) (Device.allocated_bytes dev)

let () =
  Alcotest.run "block_launch"
    [
      ( "block",
        [
          Alcotest.test_case "same-lane chain" `Quick test_same_lane_chains;
          Alcotest.test_case "lanes overlap" `Quick test_lanes_overlap;
          Alcotest.test_case "async wait_group" `Quick test_async_wait_group;
          Alcotest.test_case "wait_group depth" `Quick
            test_wait_group_outstanding;
          Alcotest.test_case "await engine" `Quick test_await_engine;
          Alcotest.test_case "pipelined overlap" `Quick test_pipelined_overlap;
          Alcotest.test_case "iters=1 serial" `Quick
            test_pipelined_iters_one_is_serial;
          Alcotest.test_case "no nesting" `Quick test_pipelined_no_nesting;
          Alcotest.test_case "alloc capacity" `Quick test_alloc_capacity;
          Alcotest.test_case "traffic/touched" `Quick
            test_gm_traffic_and_touched;
        ] );
      ( "launch",
        [
          Alcotest.test_case "compute bound" `Quick test_launch_compute_bound;
          Alcotest.test_case "round robin" `Quick test_launch_round_robin;
          Alcotest.test_case "bandwidth cap" `Quick test_launch_bandwidth_cap;
          Alcotest.test_case "l2 bandwidth" `Quick test_launch_l2_bandwidth;
          Alcotest.test_case "phase syncs" `Quick test_phases_add_sync;
          Alcotest.test_case "validation" `Quick test_launch_validation;
          Alcotest.test_case "stats combine" `Quick test_stats_combine;
          Alcotest.test_case "device modes" `Quick test_device_modes;
        ] );
    ]
