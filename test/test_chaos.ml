(* Tests of the chaos subsystem: the scenario DSL parser, the
   deterministic armed scheduler, the adaptive degradation
   controller's state machine, and the in-process crash/resume
   storyline (resume-equals-replay, byte for byte). *)

open Ascend
open Runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- scenario parser ------------------------------------------------ *)

let parse_ok text =
  match Chaos.parse text with
  | Ok sc -> sc
  | Error e -> Alcotest.failf "unexpected parse error: %s" e

let parse_err text =
  match Chaos.parse text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> e

let test_parse_full_scenario () =
  let sc =
    parse_ok
      "# comment\n\
       name full\n\
       seed 9\n\
       rate 0.25\n\
       at launch 2 storm rate=0.8 kinds=bit_flip,dropped_copy scope=cube \
       factor=4 for=3\n\
       at launch 4 kill core=3\n\
       at launch 6 quarantine core=5 for=4\n\
       at time 2.5e-3 stall factor=16 for=2\n\
       at launch 9 crash\n"
  in
  check_string "name" "full" sc.Chaos.sc_name;
  check_int "seed" 9 sc.Chaos.sc_seed;
  Alcotest.(check (float 1e-9)) "rate" 0.25 sc.Chaos.sc_rate;
  check_int "events" 5 (List.length sc.Chaos.sc_events);
  (match (List.nth sc.Chaos.sc_events 0).Chaos.action with
  | Chaos.Storm { rate; kinds; scope; stall_factor; for_launches } ->
      Alcotest.(check (float 1e-9)) "storm rate" 0.8 rate;
      check_int "storm kinds" 2 (List.length kinds);
      check_bool "storm scope" true (scope = Fault.Cube_mtes);
      check_bool "storm factor" true (stall_factor = Some 4.0);
      check_int "storm window" 3 for_launches
  | a -> Alcotest.failf "expected storm, got %s" (Chaos.action_to_string a));
  match (List.nth sc.Chaos.sc_events 3).Chaos.action with
  | Chaos.Storm { rate; kinds; _ } ->
      (* stall desugars to a rate-1 engine_stall storm *)
      Alcotest.(check (float 1e-9)) "stall rate" 1.0 rate;
      check_bool "stall kind" true (kinds = [ Fault.Engine_stall ])
  | a -> Alcotest.failf "expected stall storm, got %s" (Chaos.action_to_string a)

let test_parse_errors_carry_line_numbers () =
  let cases =
    [
      ("at launch 1 explode core=1\n", "line 1");
      ("seed 1\nrate 2.0\n", "line 2");
      ("name x\nseed -3\n", "line 2");
      ("at launch 1 kill\n", "core");
      ("at launch 1 storm rate=0.5\n", "for");
      ("at launch 1 quarantine core=1 for=0\n", "for");
      ("at launch 1 storm rate=0.5 kinds=meteor for=1\n", "meteor");
      ("bogus directive\n", "bogus");
    ]
  in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  List.iter
    (fun (text, needle) ->
      let e = parse_err text in
      check_bool
        (Printf.sprintf "%S mentions %S (got %S)" text needle e)
        true (contains e needle))
    cases

(* --- armed scheduler ------------------------------------------------ *)

let storyline text ~launches =
  let sc = parse_ok text in
  let device =
    Device.create ~mode:Device.Functional ~fault:(Chaos.fault_config sc) ()
  in
  let ch = Chaos.arm ~skip_crashes:true sc in
  for i = 0 to launches - 1 do
    Chaos.before_launch ch device ~launch_index:i ~elapsed_s:0.0
  done;
  (Chaos.fired ch, device)

let test_scheduler_is_deterministic () =
  let text =
    "seed 5\n\
     at launch 1 kill core=2\n\
     at launch 2 storm rate=0.5 for=2\n\
     at launch 6 quarantine core=4 for=3\n"
  in
  let log_a, _ = storyline text ~launches:12 in
  let log_b, _ = storyline text ~launches:12 in
  check_bool "same storyline fires the same log" true (log_a = log_b);
  check_bool "something fired" true (log_a <> [])

let test_quarantine_revives () =
  let log, device =
    storyline "at launch 1 quarantine core=2 for=3\n" ~launches:8
  in
  let health = Device.health device in
  check_bool "core alive again" true (Health.alive health 2);
  check_bool "revive logged" true
    (List.exists (fun (_, m) -> m = "quarantine expired, core 2 revived") log);
  (* generation must distinguish dead->revived from never-touched *)
  check_bool "generation advanced" true (Health.generation health >= 2)

let test_storm_restores_base_policy () =
  let log, device =
    storyline "rate 0.001\nat launch 1 storm rate=0.9 for=2\n" ~launches:6
  in
  (match Device.fault device with
  | Some f ->
      Alcotest.(check (float 1e-9))
        "base rate restored" 0.001 (Fault.config_of f).Fault.rate
  | None -> Alcotest.fail "device has no fault model");
  check_bool "restore logged" true
    (List.exists
       (fun (_, m) -> m = "storm expired, base policy restored")
       log)

let test_crash_raises_host_crash () =
  let sc = parse_ok "at launch 2 crash\n" in
  let device =
    Device.create ~mode:Device.Functional ~fault:(Chaos.fault_config sc) ()
  in
  let ch = Chaos.arm sc in
  Chaos.before_launch ch device ~launch_index:0 ~elapsed_s:0.0;
  check_bool "not crashed yet" true (not (Chaos.crashed ch));
  (match Chaos.before_launch ch device ~launch_index:2 ~elapsed_s:0.0 with
  | () -> Alcotest.fail "expected Host_crash"
  | exception Chaos.Host_crash _ -> ());
  check_bool "crashed" true (Chaos.crashed ch)

(* --- degradation controller ---------------------------------------- *)

let feed ctl outcomes = List.iter (fun ok -> Degrade_ctl.record ctl ~ok) outcomes

let test_breaker_opens_and_recovers () =
  let decisions = ref [] in
  let ctl =
    Degrade_ctl.create ~on_decision:(fun d -> decisions := d :: !decisions) ()
  in
  check_bool "starts closed" true (Degrade_ctl.state ctl = Degrade_ctl.Closed);
  check_int "full budget when closed" 3 (Degrade_ctl.attempts_allowed ctl);
  (* 4 straight failures: rate 1.0 over >= min_samples trips it *)
  feed ctl [ false; false; false; false ];
  check_bool "open after failures" true (Degrade_ctl.state ctl = Degrade_ctl.Open);
  check_bool "escalated" true
    (Degrade_ctl.level ctl = Degrade_ctl.Shrink_groups);
  check_int "probe budget when open" 1 (Degrade_ctl.attempts_allowed ctl);
  (* before_attempt charges the cooldown and half-opens the breaker *)
  let cooldown = Degrade_ctl.before_attempt ctl ~retry:false in
  check_bool "cooldown charged" true (cooldown > 0.0);
  check_bool "half-open probe" true
    (Degrade_ctl.state ctl = Degrade_ctl.Half_open);
  (* a successful probe closes it *)
  Degrade_ctl.record ctl ~ok:true;
  check_bool "closed after good probe" true
    (Degrade_ctl.state ctl = Degrade_ctl.Closed);
  (* sustained success de-escalates back to Normal *)
  feed ctl [ true; true; true; true ];
  check_bool "recovered to normal" true
    (Degrade_ctl.level ctl = Degrade_ctl.Normal);
  check_bool "decisions were streamed" true (!decisions <> [])

let test_failed_probe_doubles_cooldown () =
  let ctl = Degrade_ctl.create () in
  feed ctl [ false; false; false; false ];
  let c1 = Degrade_ctl.before_attempt ctl ~retry:false in
  Degrade_ctl.record ctl ~ok:false;
  check_bool "re-opened" true (Degrade_ctl.state ctl = Degrade_ctl.Open);
  let c2 = Degrade_ctl.before_attempt ctl ~retry:false in
  check_bool
    (Printf.sprintf "cooldown doubled (%.2g -> %.2g)" c1 c2)
    true (c2 > c1)

let test_ladder_escalates_to_shedding () =
  let ctl = Degrade_ctl.create () in
  let trip () =
    feed ctl [ false; false; false; false ];
    (* half-open, then fail the probe to re-open and escalate *)
    ignore (Degrade_ctl.before_attempt ctl ~retry:false);
    Degrade_ctl.record ctl ~ok:false
  in
  trip ();
  check_bool "level 2" true (Degrade_ctl.level ctl = Degrade_ctl.Switch_schedule);
  check_bool "schedule switched" true (Degrade_ctl.switch_schedule ctl);
  trip ();
  check_bool "level 3" true (Degrade_ctl.level ctl = Degrade_ctl.Shrink_exchange);
  check_bool "exchange shrunk" true (Degrade_ctl.shrink_exchange ctl);
  check_bool "not yet shedding" true
    (not (Degrade_ctl.shed ctl ~group_attempts:7));
  trip ();
  check_bool "level 4" true (Degrade_ctl.level ctl = Degrade_ctl.Shed_rows);
  check_bool "sheds past budget" true
    (Degrade_ctl.shed ctl ~group_attempts:7);
  check_bool "keeps young groups" true
    (not (Degrade_ctl.shed ctl ~group_attempts:2));
  check_int "granularity quartered" 2 (Degrade_ctl.granularity ctl ~base:8)

let test_controller_is_deterministic () =
  let run () =
    let ctl = Degrade_ctl.create () in
    feed ctl [ false; false; true; false; false; false ];
    ignore (Degrade_ctl.before_attempt ctl ~retry:true);
    feed ctl [ false; true; true; true; true; true ];
    List.map
      (fun (d : Degrade_ctl.decision) ->
        (d.Degrade_ctl.seq, d.Degrade_ctl.d_state, d.Degrade_ctl.d_level,
         d.Degrade_ctl.d_cooldown_s, d.Degrade_ctl.d_reason))
      (Degrade_ctl.decisions ctl)
  in
  check_bool "same outcome sequence, same decisions" true (run () = run ())

(* --- crash + resume, in process ------------------------------------ *)

let batch = 32
let len = 2048
let input = Array.init (batch * len) (fun i -> if i mod 53 = 0 then 1.0 else 0.0)

let crash_scenario =
  "name crash\n\
   seed 11\n\
   at launch 1 storm rate=0.3 kinds=dropped_copy for=2\n\
   at launch 4 crash\n"

let run_batched ?store ~skip_crashes sc =
  let device =
    Device.create ~mode:Device.Functional ~fault:(Chaos.fault_config sc) ()
  in
  let ctl = Degrade_ctl.create () in
  let ch = Chaos.arm ~skip_crashes sc in
  Resilient.batched_scan ?store ~ctl ~chaos:ch device ~batch ~len ~input

let bytes_of r =
  Array.init (batch * len) (Global_tensor.get r.Resilient.y)

let test_crash_resume_is_byte_identical () =
  let sc = parse_ok crash_scenario in
  (* reference storyline without the crash *)
  let ref_r = run_batched ~skip_crashes:true sc in
  check_bool "reference completes" true ref_r.Resilient.bok;
  let path = Filename.temp_file "test_chaos_" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
    (fun () ->
      let store = Checkpoint_store.create ~path ~rows:batch ~len () in
      (match run_batched ~store ~skip_crashes:false sc with
      | _ -> Alcotest.fail "expected Host_crash mid-batch"
      | exception Chaos.Host_crash _ -> ());
      let commits_at_crash = Checkpoint_store.commits store in
      check_bool "partial progress durable" true
        (commits_at_crash > 0 && commits_at_crash < batch);
      (* a fresh process: reopen and resume *)
      let resumed, l =
        match Checkpoint_store.reopen ~path with
        | Ok v -> v
        | Error e -> Alcotest.failf "reopen: %s" e
      in
      check_bool "no torn tail (atomic rename)" true
        (not l.Checkpoint_store.l_torn);
      let res_r = run_batched ~store:resumed ~skip_crashes:true sc in
      check_bool "resume completes" true res_r.Resilient.bok;
      check_bool "rows were restored, not recomputed" true
        (res_r.Resilient.restored_rows > 0);
      check_int "no rows lost" batch
        (Checkpoint.done_count res_r.Resilient.checkpoint);
      (* the acceptance bar: byte-for-byte equal to the uninterrupted run *)
      check_bool "resume equals replay, byte for byte" true
        (bytes_of ref_r = bytes_of res_r);
      (* committed rows are never re-executed: the resume's new commits
         are row-disjoint from what the crashed run persisted *)
      let all = Checkpoint_store.groups resumed in
      let restored = Array.make batch false in
      List.iteri
        (fun i (lo, hi, _) ->
          if i < commits_at_crash then
            for r = lo to hi - 1 do
              restored.(r) <- true
            done)
        all;
      let reexec = ref 0 in
      List.iteri
        (fun i (lo, hi, _) ->
          if i >= commits_at_crash then
            for r = lo to hi - 1 do
              if restored.(r) then incr reexec
            done)
        all;
      check_int "zero re-executed committed rows" 0 !reexec)

let test_fully_covered_store_launches_nothing () =
  let sc = parse_ok "seed 1\n" in
  let path = Filename.temp_file "test_chaos_full_" ".ckpt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (path ^ ".tmp") with Sys_error _ -> ())
    (fun () ->
      let store = Checkpoint_store.create ~path ~rows:batch ~len () in
      let full = run_batched ~store ~skip_crashes:true sc in
      check_bool "first run completes" true full.Resilient.bok;
      let resumed =
        match Checkpoint_store.reopen ~path with
        | Ok (st, _) -> st
        | Error e -> Alcotest.failf "reopen: %s" e
      in
      let res = run_batched ~store:resumed ~skip_crashes:true sc in
      check_bool "resume completes" true res.Resilient.bok;
      check_int "every row restored" batch res.Resilient.restored_rows;
      check_int "zero launches" 0 res.Resilient.bstats.Stats.launches;
      check_bool "bytes still identical" true (bytes_of full = bytes_of res))

let test_trace_stays_consistent_under_chaos () =
  let sc =
    parse_ok "seed 5\nat launch 1 kill core=2\nat launch 2 storm rate=0.4 \
              kinds=dropped_copy for=2\n"
  in
  let device =
    Device.create ~mode:Device.Functional ~fault:(Chaos.fault_config sc) ()
  in
  let tr = Device.arm_trace device in
  let ctl = Degrade_ctl.create () in
  let ch = Chaos.arm ~skip_crashes:true sc in
  let r = Resilient.batched_scan ~ctl ~chaos:ch device ~batch ~len ~input in
  check_bool "completes" true r.Resilient.bok;
  (match Trace.check tr with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trace inconsistent: %s" e);
  check_bool "chaos events visible in trace" true (Trace.mark_count tr > 0)

let () =
  Alcotest.run "chaos"
    [
      ( "parser",
        [
          Alcotest.test_case "full scenario" `Quick test_parse_full_scenario;
          Alcotest.test_case "errors carry line numbers" `Quick
            test_parse_errors_carry_line_numbers;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "deterministic" `Quick
            test_scheduler_is_deterministic;
          Alcotest.test_case "quarantine revives" `Quick test_quarantine_revives;
          Alcotest.test_case "storm restores policy" `Quick
            test_storm_restores_base_policy;
          Alcotest.test_case "crash raises" `Quick test_crash_raises_host_crash;
        ] );
      ( "degrade_ctl",
        [
          Alcotest.test_case "breaker opens and recovers" `Quick
            test_breaker_opens_and_recovers;
          Alcotest.test_case "failed probe doubles cooldown" `Quick
            test_failed_probe_doubles_cooldown;
          Alcotest.test_case "ladder reaches shedding" `Quick
            test_ladder_escalates_to_shedding;
          Alcotest.test_case "deterministic decisions" `Quick
            test_controller_is_deterministic;
        ] );
      ( "crash_resume",
        [
          Alcotest.test_case "byte-identical resume" `Quick
            test_crash_resume_is_byte_identical;
          Alcotest.test_case "full store launches nothing" `Quick
            test_fully_covered_store_launches_nothing;
          Alcotest.test_case "trace stays consistent" `Quick
            test_trace_stays_consistent_under_chaos;
        ] );
    ]
