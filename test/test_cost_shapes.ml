(* Performance-model shape tests: the qualitative claims of the paper
   must hold in the simulator (who wins, orderings, saturation). These
   run in cost-only mode so they can use paper-scale inputs cheaply. *)

open Ascend

let check_bool = Alcotest.(check bool)

let dev () = Device.create ~mode:Device.Cost_only ()

let seconds (_, (st : Stats.t)) = st.Stats.seconds

let test_fig3_single_core_ordering () =
  (* For large inputs: vec_only slower than ScanU slower than ScanUL1,
     with ratios in the bands the paper reports (5x and 9.6x +- 35%). *)
  let d = dev () in
  let x = Device.alloc d Dtype.F16 (1 lsl 22) ~name:"x" in
  let t_vec = seconds (Scan.Scan_vec_only.run d x) in
  let t_u = seconds (Scan.Scan_u.run d x) in
  let t_ul1 = seconds (Scan.Scan_ul1.run d x) in
  let r_u = t_vec /. t_u and r_ul1 = t_vec /. t_ul1 in
  check_bool "ordering" true (t_vec > t_u && t_u > t_ul1);
  check_bool (Printf.sprintf "scanu speedup ~5x (got %.2f)" r_u) true
    (r_u > 3.2 && r_u < 6.8);
  check_bool (Printf.sprintf "scanul1 speedup ~9.6x (got %.2f)" r_ul1) true
    (r_ul1 > 6.2 && r_ul1 < 13.0);
  check_bool "ul1 about 2x of u" true
    (t_u /. t_ul1 > 1.5 && t_u /. t_ul1 < 2.6)

let test_fig8_mcscan_saturation () =
  (* Large MCScan reaches roughly 37.5% of the 800 GB/s peak and the
     tile size ordering is s=128 > s=64 > s=32. *)
  let d = dev () in
  let n = 1 lsl 27 in
  let x = Device.alloc d Dtype.F16 n ~name:"x" in
  let bw s =
    let _, st = Scan.Mcscan.run ~s d x in
    Workload.Metrics.scan_bandwidth st ~n ~esize:2
  in
  let b32 = bw 32 and b64 = bw 64 and b128 = bw 128 in
  check_bool "s ordering" true (b128 > b64 && b64 > b32);
  let pct = Workload.Metrics.percent_of_peak b128 in
  check_bool (Printf.sprintf "saturation ~37.5%% (got %.1f%%)" pct) true
    (pct > 30.0 && pct < 45.0)

let test_fig8_clone_near_peak () =
  (* The copy yardstick approaches the memory bandwidth. *)
  let d = dev () in
  let n = 1 lsl 27 in
  let x = Device.alloc d Dtype.F16 n ~name:"x" in
  let _, st = Ops.Baseline.clone d x in
  let bw = Workload.Metrics.scan_bandwidth st ~n ~esize:2 in
  check_bool
    (Printf.sprintf "clone near peak (got %.0f GB/s)" (bw /. 1e9))
    true
    (Workload.Metrics.percent_of_peak bw > 80.0)

let test_headline_mcscan_vs_scanu () =
  (* The multi-core speedup over single-cube ScanU saturates around
     15.2x on 20 cores (accept 11-19x). *)
  let d = dev () in
  let x = Device.alloc d Dtype.F16 (1 lsl 27) ~name:"x" in
  let t_u = seconds (Scan.Scan_u.run d x) in
  let t_mc = seconds (Scan.Mcscan.run d x) in
  let sp = t_u /. t_mc in
  check_bool (Printf.sprintf "speedup ~15.2x (got %.1f)" sp) true
    (sp > 11.0 && sp < 20.0)

let test_fig9_int8_throughput () =
  (* int8 inputs process more elements per second than fp16 (~10%). *)
  let d = dev () in
  let n = 1 lsl 27 in
  let xf = Device.alloc d Dtype.F16 n ~name:"xf" in
  let xi = Device.alloc d Dtype.I8 n ~name:"xi" in
  let tf = seconds (Scan.Mcscan.run d xf) in
  let ti = seconds (Scan.Mcscan.run d xi) in
  let gain = tf /. ti in
  check_bool (Printf.sprintf "int8 gain ~1.1x (got %.2f)" gain) true
    (gain > 1.02 && gain < 1.25)

let test_fig10_compress_vs_masked_select () =
  let d = dev () in
  let n = 1 lsl 22 in
  let x = Device.alloc d Dtype.F16 n ~name:"x" in
  let mask = Device.alloc d Dtype.I8 n ~name:"m" in
  let r = Ops.Compress.run d ~x ~mask () in
  let bw = Workload.Metrics.scan_bandwidth r.Ops.Compress.stats ~n ~esize:2 in
  check_bool
    (Printf.sprintf "compress ~160 GB/s (got %.0f)" (bw /. 1e9))
    true
    (bw > 100.0e9 && bw < 260.0e9);
  let _, _, st_base = Ops.Baseline.masked_select d ~x ~mask in
  check_bool "baseline much slower" true
    (st_base.Stats.seconds > 10.0 *. r.Ops.Compress.stats.Stats.seconds)

let test_fig11_radix_crossover () =
  (* torch.sort wins below ~0.5M elements, radix wins above, with the
     large-N advantage in the 1.3x-3.3x band. *)
  let d = dev () in
  let time_pair n =
    let x = Device.alloc d Dtype.F16 n ~name:"x" in
    let r = Ops.Radix_sort.run d x in
    let _, st = Ops.Baseline.sort d x in
    (r.Ops.Radix_sort.stats.Stats.seconds, st.Stats.seconds)
  in
  let r_small, b_small = time_pair (1 lsl 16) in
  check_bool "baseline wins at 64K" true (b_small < r_small);
  let r_big, b_big = time_pair (1 lsl 23) in
  let adv = b_big /. r_big in
  check_bool (Printf.sprintf "radix wins at 8M (%.2fx)" adv) true
    (adv > 1.2 && adv < 4.5)

let test_fig12_batched_bandwidth () =
  (* Batch 40 rows of 65K: s=128 reaches ~400 GB/s, s=16 is poor. *)
  let d = dev () in
  let batch = 40 and len = 65536 in
  let x = Device.alloc d Dtype.F16 (batch * len) ~name:"xb" in
  let bw s =
    let _, st = Scan.Batched_scan.run_u ~s d ~batch ~len x in
    Workload.Metrics.scan_bandwidth st ~n:(batch * len) ~esize:2
  in
  let b128 = bw 128 and b16 = bw 16 in
  check_bool
    (Printf.sprintf "s=128 ~400 GB/s (got %.0f)" (b128 /. 1e9))
    true
    (b128 > 300.0e9 && b128 < 480.0e9);
  check_bool "s=16 poor" true (b16 < 0.4 *. b128)

let test_fig5_crossover_regions () =
  (* ScanU-based batched wins for large batch & short rows; ScanUL1
     wins for small batch & long rows. *)
  let d = dev () in
  let ratio ~batch ~len =
    let x = Device.alloc d Dtype.F16 (batch * len) ~name:"xb" in
    let _, su = Scan.Batched_scan.run_u d ~batch ~len x in
    let _, sl = Scan.Batched_scan.run_ul1 d ~batch ~len x in
    sl.Stats.seconds /. su.Stats.seconds
  in
  check_bool "batch 40, len 2K: ScanU wins" true (ratio ~batch:40 ~len:2048 > 1.0);
  check_bool "batch 4, len 64K: ScanUL1 wins" true
    (ratio ~batch:4 ~len:65536 < 1.0)

let test_fig13_topp_scaling () =
  (* The baseline top-p pipeline scales much worse with vocab size. *)
  let d = dev () in
  let time f vocab =
    let probs = Device.alloc d Dtype.F16 vocab ~name:"p" in
    (f ~probs).Ops.Topp.stats.Stats.seconds
  in
  let ours v = time (fun ~probs -> Ops.Topp.sample d ~probs ~p:0.9 ~theta:0.4) v in
  let base v =
    time (fun ~probs -> Ops.Topp.sample_baseline d ~probs ~p:0.9 ~theta:0.4) v
  in
  let v = 1 lsl 20 in
  check_bool "ours faster at 1M vocab" true (ours v < base v);
  (* Baseline degrades faster as the vocabulary grows. *)
  let g_ours = ours (4 * v) /. ours v in
  let g_base = base (4 * v) /. base v in
  check_bool "baseline scales worse" true (g_base > g_ours)

let test_tcu_competitive_at_scale () =
  (* The log-depth extension loses at small N (launch overhead per
     level) but is within 2x of MCScan at large N. *)
  let d = dev () in
  let small = Device.alloc d Dtype.F16 (1 lsl 16) ~name:"s" in
  let big = Device.alloc d Dtype.F16 (1 lsl 26) ~name:"b" in
  let t_tcu_small = seconds (Scan.Tcu_scan.run d small) in
  let t_mc_small = seconds (Scan.Mcscan.run d small) in
  check_bool "mcscan wins small" true (t_mc_small < t_tcu_small);
  let t_tcu_big = seconds (Scan.Tcu_scan.run d big) in
  let t_mc_big = seconds (Scan.Mcscan.run d big) in
  check_bool "tcu within 2x at scale" true (t_tcu_big < 2.0 *. t_mc_big)

let test_cost_only_runs_everything () =
  (* The cost-only path of each operator must execute without data. *)
  let d = dev () in
  let n = 1 lsl 18 in
  let x = Device.alloc d Dtype.F16 n ~name:"x" in
  let mask = Device.alloc d Dtype.I8 n ~name:"m" in
  ignore (Scan.Scan_api.run ~algo:(Scan.Scan_api.get "mcscan") d x);
  ignore (Ops.Split.run d ~x ~flags:mask ());
  ignore (Ops.Compress.run d ~x ~mask ());
  ignore (Ops.Radix_sort.run ~with_indices:true d x);
  ignore (Ops.Weighted_sampling.sample d ~weights:x ~theta:0.3);
  ignore (Ops.Topp.sample d ~probs:x ~p:0.9 ~theta:0.3);
  ignore (Ops.Baseline.clone d x);
  ignore (Ops.Baseline.sort d x);
  check_bool "all ran" true true

let () =
  Alcotest.run "cost_shapes"
    [
      ( "paper shapes",
        [
          Alcotest.test_case "fig3 single-core" `Quick
            test_fig3_single_core_ordering;
          Alcotest.test_case "fig8 saturation" `Quick
            test_fig8_mcscan_saturation;
          Alcotest.test_case "fig8 clone" `Quick test_fig8_clone_near_peak;
          Alcotest.test_case "headline speedup" `Quick
            test_headline_mcscan_vs_scanu;
          Alcotest.test_case "fig9 int8" `Quick test_fig9_int8_throughput;
          Alcotest.test_case "fig10 compress" `Quick
            test_fig10_compress_vs_masked_select;
          Alcotest.test_case "fig11 radix crossover" `Slow
            test_fig11_radix_crossover;
          Alcotest.test_case "fig12 batched" `Quick
            test_fig12_batched_bandwidth;
          Alcotest.test_case "fig5 regions" `Quick test_fig5_crossover_regions;
          Alcotest.test_case "fig13 topp" `Quick test_fig13_topp_scaling;
          Alcotest.test_case "tcu extension" `Quick
            test_tcu_competitive_at_scale;
          Alcotest.test_case "cost-only coverage" `Quick
            test_cost_only_runs_everything;
        ] );
    ]
