(* Unit tests of the deterministic fault-injection model: the seeded
   stream, the per-kind payload effects, and the fault log carried in
   launch stats. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let n = 20000
let input = Array.init n (fun i -> if i mod 37 = 0 then 1.0 else 0.0)

let run_mcscan ?fault () =
  let d = Device.create ?fault () in
  let x = Device.of_array d Dtype.F16 ~name:"x" input in
  Scan.Mcscan.run d x

let event_fingerprint (e : Fault.event) =
  Printf.sprintf "%d:%s:%s:%s:%s:%d:%d" e.seq
    (Fault.kind_to_string e.kind)
    e.op e.engine e.tensor e.index e.bit

(* The same seed reproduces the exact same fault schedule. *)
let test_determinism () =
  let fault = Fault.config ~seed:11 ~rate:0.25 () in
  let _, st1 = run_mcscan ~fault () in
  let _, st2 = run_mcscan ~fault () in
  check_bool "some faults fired" true (List.length st1.Stats.faults > 0);
  Alcotest.(check (list string))
    "identical logs"
    (List.map event_fingerprint st1.Stats.faults)
    (List.map event_fingerprint st2.Stats.faults)

(* Rate 0: no events, and output bit-identical to a faultless device. *)
let test_rate_zero () =
  let y0, st0 = run_mcscan () in
  let y1, st1 = run_mcscan ~fault:(Fault.config ~seed:1 ~rate:0.0 ()) () in
  check_int "no faults clean" 0 (List.length st0.Stats.faults);
  check_int "no faults at rate 0" 0 (List.length st1.Stats.faults);
  for i = 0 to n - 1 do
    if Global_tensor.get y0 i <> Global_tensor.get y1 i then
      Alcotest.failf "output differs at %d" i
  done

(* draw at rate 1 with a single kind always produces that kind, records
   an event, and keeps flip coordinates inside the transfer. *)
let test_draw_flip () =
  let f =
    Fault.create (Fault.config ~kinds:[ Fault.Bit_flip ] ~seed:5 ~rate:1.0 ())
  in
  for i = 0 to 9 do
    match
      Fault.draw f ~engine:(Engine.Vec_mte_in 0) ~op:"datacopy_in" ~tensor:"x"
        ~dst_off:(i * 16) ~len:16 ~elem_bits:16
    with
    | Fault.Flip { index; bit } ->
        check_bool "index in range" true (index >= 0 && index < 16);
        check_bool "bit in range" true (bit >= 0 && bit < 16)
    | _ -> Alcotest.fail "expected Flip"
  done;
  check_int "all recorded" 10 (Fault.count f);
  check_int "all flips" 10 (Fault.count_kind f Fault.Bit_flip);
  (* Event indices are absolute (dst_off + relative flip index). *)
  List.iteri
    (fun i (e : Fault.event) ->
      check_bool "absolute index" true
        (e.index >= i * 16 && e.index < (i + 1) * 16))
    (Fault.events f)

(* Out-of-scope engines and empty transfers never fault. *)
let test_scope_and_empty () =
  let f =
    Fault.create (Fault.config ~scope:Fault.Cube_mtes ~seed:5 ~rate:1.0 ())
  in
  (match
     Fault.draw f ~engine:(Engine.Vec_mte_in 0) ~op:"datacopy_in" ~tensor:"x"
       ~dst_off:0 ~len:16 ~elem_bits:16
   with
  | Fault.No_fault -> ()
  | _ -> Alcotest.fail "vec transfer faulted under Cube_mtes scope");
  (match
     Fault.draw f ~engine:Engine.Cube_mte_in ~op:"datacopy_in" ~tensor:"x"
       ~dst_off:0 ~len:0 ~elem_bits:16
   with
  | Fault.No_fault -> ()
  | _ -> Alcotest.fail "empty transfer faulted");
  check_int "nothing recorded" 0 (Fault.count f)

(* flip_in_buffer respects the fp16 encoding: flipping a mantissa bit
   of 1.0 (0x3C00) yields another representable half, and flipping it
   back restores the original value. *)
let test_flip_in_buffer_f16 () =
  let b = Host_buffer.create Dtype.F16 4 in
  Host_buffer.fill b 1.0;
  Fault.flip_in_buffer b ~index:2 ~bit:9;
  check_bool "value changed" true (Host_buffer.get b 2 <> 1.0);
  check_bool "other lanes intact" true (Host_buffer.get b 1 = 1.0);
  Fault.flip_in_buffer b ~index:2 ~bit:9;
  check_bool "flip is involutive" true (Host_buffer.get b 2 = 1.0)

let test_flip_in_buffer_int () =
  let b = Host_buffer.create Dtype.I32 2 in
  Host_buffer.set b 0 5.0;
  Fault.flip_in_buffer b ~index:0 ~bit:1;
  check_bool "int bit flipped" true (Host_buffer.get b 0 = 7.0)

(* Engine stalls cost time without corrupting data. *)
let test_stall_only () =
  let y0, st0 = run_mcscan () in
  let fault =
    Fault.config ~kinds:[ Fault.Engine_stall ] ~seed:9 ~rate:1.0 ()
  in
  let y1, st1 = run_mcscan ~fault () in
  check_bool "stalls fired" true (List.length st1.Stats.faults > 0);
  List.iter
    (fun (e : Fault.event) ->
      check_bool "only stalls" true (e.kind = Fault.Engine_stall))
    st1.Stats.faults;
  check_bool "stalls cost time" true (st1.Stats.seconds > st0.Stats.seconds);
  for i = 0 to n - 1 do
    if Global_tensor.get y0 i <> Global_tensor.get y1 i then
      Alcotest.failf "stall corrupted data at %d" i
  done

(* Dropped copies at rate 1 wreck the scan, and the reference oracle
   notices. *)
let test_drop_corrupts () =
  let fault =
    Fault.config ~kinds:[ Fault.Dropped_copy ] ~seed:2 ~rate:1.0 ()
  in
  let y, st = run_mcscan ~fault () in
  check_bool "drops fired" true (List.length st.Stats.faults > 0);
  match
    Scan.Scan_api.check_against_reference ~round:Fp16.round ~input ~output:y ()
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dropped copies went undetected"

let test_config_validation () =
  check_bool "rate > 1 rejected" true
    (try
       ignore (Fault.config ~seed:1 ~rate:1.5 ());
       false
     with Invalid_argument _ -> true);
  check_bool "empty kinds rejected" true
    (try
       ignore (Fault.config ~kinds:[] ~seed:1 ~rate:0.5 ());
       false
     with Invalid_argument _ -> true);
  check_bool "stall factor < 1 rejected" true
    (try
       ignore (Fault.config ~stall_factor:0.5 ~seed:1 ~rate:0.5 ());
       false
     with Invalid_argument _ -> true)

(* Satellite: allocation/context boundary guards. *)
let test_boundary_guards () =
  let d = Device.create () in
  check_bool "negative alloc rejected" true
    (try
       ignore (Device.alloc d Dtype.F16 (-1) ~name:"bad");
       false
     with Invalid_argument _ -> true);
  check_bool "num_blocks < 1 rejected" true
    (try
       ignore (Block.make ~device:d ~idx:0 ~num_blocks:0);
       false
     with Invalid_argument _ -> true);
  check_bool "idx out of range rejected" true
    (try
       ignore (Block.make ~device:d ~idx:3 ~num_blocks:2);
       false
     with Invalid_argument _ -> true);
  check_bool "negative idx rejected" true
    (try
       ignore (Block.make ~device:d ~idx:(-1) ~num_blocks:2);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "fault"
    [
      ( "stream",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "rate zero" `Quick test_rate_zero;
          Alcotest.test_case "draw flip" `Quick test_draw_flip;
          Alcotest.test_case "scope and empty" `Quick test_scope_and_empty;
          Alcotest.test_case "config validation" `Quick test_config_validation;
        ] );
      ( "payload",
        [
          Alcotest.test_case "flip f16" `Quick test_flip_in_buffer_f16;
          Alcotest.test_case "flip int" `Quick test_flip_in_buffer_int;
          Alcotest.test_case "stall only" `Quick test_stall_only;
          Alcotest.test_case "drop corrupts" `Quick test_drop_corrupts;
        ] );
      ( "guards",
        [ Alcotest.test_case "boundaries" `Quick test_boundary_guards ] );
    ]
