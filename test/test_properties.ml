(* Property-based tests (QCheck) of the core invariants, using exact
   integer data paths so floating-point rounding cannot mask bugs. *)

open Ascend

(* Generator: small non-negative int8 values as floats. *)
let small_mask_array =
  QCheck.Gen.(
    let* n = int_range 1 3000 in
    array_size (return n) (map (fun b -> if b then 1.0 else 0.0) bool))

let small_int_array =
  QCheck.Gen.(
    let* n = int_range 1 3000 in
    array_size (return n) (map float_of_int (int_range (-5) 5)))

let arb_mask = QCheck.make ~print:(fun a -> string_of_int (Array.length a)) small_mask_array
let arb_ints = QCheck.make ~print:(fun a -> string_of_int (Array.length a)) small_int_array

let run_i8_scan ?(exclusive = false) data =
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.I8 ~name:"x" data in
  let y, _ = Scan.Mcscan.run ~exclusive dev x in
  Array.init (Array.length data) (Global_tensor.get y)

let prop_scan_matches_reference =
  QCheck.Test.make ~name:"mcscan i8 = reference (exact)" ~count:60 arb_ints
    (fun data -> run_i8_scan data = Scan.Reference.inclusive_scan data)

let prop_exclusive_is_shifted_inclusive =
  QCheck.Test.make ~name:"exclusive = shift of inclusive" ~count:40 arb_ints
    (fun data ->
      let inc = run_i8_scan data and exc = run_i8_scan ~exclusive:true data in
      let n = Array.length data in
      exc.(0) = 0.0
      && Array.for_all Fun.id (Array.init (n - 1) (fun i -> exc.(i + 1) = inc.(i))))

let prop_scan_last_is_sum =
  QCheck.Test.make ~name:"last scan value = sum" ~count:40 arb_ints
    (fun data ->
      let y = run_i8_scan data in
      y.(Array.length data - 1) = Scan.Reference.sum data)

let prop_scan_of_concat =
  QCheck.Test.make ~name:"scan(a ++ b) tail = scan(b) + sum(a)" ~count:30
    (QCheck.pair arb_ints arb_ints) (fun (a, b) ->
      let y = run_i8_scan (Array.append a b) in
      let yb = run_i8_scan b in
      let sa = Scan.Reference.sum a in
      Array.for_all Fun.id
        (Array.init (Array.length b) (fun i ->
             y.(Array.length a + i) = yb.(i) +. sa)))

let prop_split_is_stable_permutation =
  QCheck.Test.make ~name:"split = stable permutation" ~count:40
    (QCheck.pair arb_ints arb_mask) (fun (values, flags) ->
      let n = min (Array.length values) (Array.length flags) in
      QCheck.assume (n > 0);
      let values = Array.sub values 0 n and flags = Array.sub flags 0 n in
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.I16 ~name:"x" values in
      let f = Device.of_array dev Dtype.I8 ~name:"f" flags in
      let r = Ops.Split.run ~with_indices:true dev ~x ~flags:f () in
      let exp_vals, exp_idx = Scan.Reference.split values ~flags in
      let gi = Option.get r.Ops.Split.indices in
      Array.for_all Fun.id
        (Array.init n (fun i ->
             Global_tensor.get r.Ops.Split.values i = exp_vals.(i)
             && int_of_float (Global_tensor.get gi i) = exp_idx.(i))))

let prop_compress_count_is_popcount =
  QCheck.Test.make ~name:"compress count = popcount of mask" ~count:40
    arb_mask (fun mask ->
      let n = Array.length mask in
      let dev = Device.create () in
      let x =
        Device.of_array dev Dtype.F16 ~name:"x"
          (Array.init n (fun i -> float_of_int (i mod 100)))
      in
      let m = Device.of_array dev Dtype.I8 ~name:"m" mask in
      let r = Ops.Compress.run dev ~x ~mask:m () in
      r.Ops.Compress.count
      = Array.fold_left (fun a v -> if v <> 0.0 then a + 1 else a) 0 mask)

let prop_radix_sorts_u16 =
  let arb_u16 =
    QCheck.make
      ~print:(fun a -> string_of_int (Array.length a))
      QCheck.Gen.(
        let* n = int_range 1 2000 in
        array_size (return n) (map float_of_int (int_bound 0xFFFF)))
  in
  QCheck.Test.make ~name:"radix sort on u16 = sorted multiset" ~count:25
    arb_u16 (fun data ->
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.U16 ~name:"x" data in
      let r = Ops.Radix_sort.run dev x in
      let got = Array.init (Array.length data) (Global_tensor.get r.Ops.Radix_sort.values) in
      let expect = Array.copy data in
      Array.sort Float.compare expect;
      got = expect)

let prop_radix_f16_matches_reference =
  let arb_f16 =
    QCheck.make
      ~print:(fun a -> string_of_int (Array.length a))
      QCheck.Gen.(
        let* n = int_range 1 1500 in
        array_size (return n)
          (map (fun u -> Fp16.round (float_of_int (u - 500) /. 8.0))
             (int_bound 1000)))
  in
  QCheck.Test.make ~name:"radix f16 = reference stable sort" ~count:25 arb_f16
    (fun data ->
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.F16 ~name:"x" data in
      let r = Ops.Radix_sort.run dev x in
      let expect, _ = Scan.Reference.stable_sort_with_indices data in
      Array.init (Array.length data) (Global_tensor.get r.Ops.Radix_sort.values)
      = expect)

let prop_batched_equals_rowwise =
  QCheck.Test.make ~name:"batched scan = per-row scans" ~count:20
    (QCheck.pair (QCheck.int_range 1 12) (QCheck.int_range 1 700))
    (fun (batch, len) ->
      let data =
        Array.init (batch * len) (fun i -> float_of_int ((i * 13 mod 3) - 1))
      in
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.F16 ~name:"xb" data in
      let y, _ = Scan.Batched_scan.run_u dev ~batch ~len x in
      let expect = Scan.Reference.batched_inclusive ~batch ~len data in
      Array.for_all Fun.id
        (Array.init (batch * len) (fun i -> Global_tensor.get y i = expect.(i))))

let prop_weighted_sample_in_support =
  QCheck.Test.make ~name:"weighted sample lands on positive weight" ~count:30
    (QCheck.pair arb_mask (QCheck.float_range 0.0 0.999))
    (fun (mask, theta) ->
      QCheck.assume (Array.exists (fun v -> v > 0.0) mask);
      let dev = Device.create () in
      let w = Device.of_array dev Dtype.F16 ~name:"w" mask in
      let idx, _ = Ops.Weighted_sampling.sample dev ~weights:w ~theta in
      idx >= 0 && idx < Array.length mask && mask.(idx) > 0.0)

let prop_scan_algos_agree =
  QCheck.Test.make ~name:"all sum-scan algorithms agree on exact data" ~count:15
    arb_ints (fun data ->
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.F16 ~name:"x" data in
      let sum_algos =
        (* Cross-kernel agreement only holds within one monoid: the
           registry also carries e.g. the max scan. *)
        List.filter
          (fun (algo : Scan.Scan_api.algo) ->
            match algo.Scan.Op_registry.monoid with
            | Some (module Op : Scan.Scan_op.S) -> String.equal Op.name "sum"
            | None -> false)
          Scan.Scan_api.all_algos
      in
      let outs =
        List.map
          (fun algo ->
            let y, _ = Scan.Scan_api.run ~algo dev x in
            Array.init (Array.length data) (Global_tensor.get y))
          sum_algos
      in
      match outs with
      | first :: rest -> List.for_all (fun o -> o = first) rest
      | [] -> false)

let prop_max_scan_monotone_and_idempotent =
  QCheck.Test.make ~name:"max scan is monotone and idempotent" ~count:25
    arb_ints (fun data ->
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.F32 ~name:"x" data in
      let y, _ = Scan.Max_scan.run dev x in
      let arr = Array.init (Array.length data) (Global_tensor.get y) in
      let monotone = ref true in
      Array.iteri (fun i v -> if i > 0 && v < arr.(i - 1) then monotone := false) arr;
      let y2t = Device.of_array dev Dtype.F32 ~name:"y" arr in
      let y2, _ = Scan.Max_scan.run dev y2t in
      !monotone
      && Array.init (Array.length data) (Global_tensor.get y2) = arr)

let prop_segmented_no_flags_is_plain_scan =
  QCheck.Test.make ~name:"segmented scan without flags = plain scan" ~count:20
    arb_ints (fun data ->
      let n = Array.length data in
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.F16 ~name:"x" data in
      let f = Device.of_array dev Dtype.I8 ~name:"f" (Array.make n 0.0) in
      let y, _ = Scan.Segmented_scan.run dev ~x ~flags:f () in
      let expect = Scan.Reference.inclusive_scan data in
      Array.for_all Fun.id
        (Array.init n (fun i -> Global_tensor.get y i = expect.(i))))

let prop_segmented_concat_independence =
  QCheck.Test.make
    ~name:"segmented scan: segments are independent" ~count:20
    (QCheck.pair arb_ints arb_ints) (fun (a, b) ->
      let na = Array.length a and nb = Array.length b in
      let dev = Device.create () in
      let data = Array.append a b in
      let flags = Array.make (na + nb) 0.0 in
      flags.(0) <- 1.0;
      flags.(na) <- 1.0;
      let x = Device.of_array dev Dtype.F16 ~name:"x" data in
      let f = Device.of_array dev Dtype.I8 ~name:"f" flags in
      let y, _ = Scan.Segmented_scan.run dev ~x ~flags:f () in
      let ea = Scan.Reference.inclusive_scan a in
      let eb = Scan.Reference.inclusive_scan b in
      Array.for_all Fun.id (Array.init na (fun i -> Global_tensor.get y i = ea.(i)))
      && Array.for_all Fun.id
           (Array.init nb (fun i -> Global_tensor.get y (na + i) = eb.(i))))

let prop_cube_reduce_equals_vec_reduce =
  QCheck.Test.make ~name:"cube reduce = vec reduce = oracle" ~count:20
    arb_ints (fun data ->
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.F16 ~name:"x" data in
      let a, _, _ = Scan.Cube_reduce.run_cube dev x in
      let b, _, _ = Scan.Cube_reduce.run_vec dev x in
      a = b && a = Scan.Reference.sum data)

let prop_radix_select_is_topk_multiset =
  QCheck.Test.make ~name:"radix select = top-k multiset" ~count:15
    (QCheck.pair arb_ints (QCheck.int_range 1 50)) (fun (data, k) ->
      let n = Array.length data in
      QCheck.assume (k <= n);
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.F16 ~name:"x" data in
      let got, _ = Ops.Radix_select.run dev x ~k in
      let expect, _ = Scan.Reference.top_k data ~k in
      Array.init k (Global_tensor.get got) = expect)

let () =
  Alcotest.run "properties"
    [
      ( "qcheck",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_scan_matches_reference;
            prop_exclusive_is_shifted_inclusive;
            prop_scan_last_is_sum;
            prop_scan_of_concat;
            prop_split_is_stable_permutation;
            prop_compress_count_is_popcount;
            prop_radix_sorts_u16;
            prop_radix_f16_matches_reference;
            prop_batched_equals_rowwise;
            prop_weighted_sample_in_support;
            prop_scan_algos_agree;
            prop_max_scan_monotone_and_idempotent;
            prop_segmented_no_flags_is_plain_scan;
            prop_segmented_concat_independence;
            prop_cube_reduce_equals_vec_reduce;
            prop_radix_select_is_topk_multiset;
          ] );
    ]
