(* QCheck equivalence suite for the bulk Host_buffer kernels: every
   dtype-specialised loop must reproduce the scalar get/set shim it
   replaced bit for bit — same operand order, same rounding, same NaN
   canonicalization — across all dtypes, every operator, and unaligned
   offsets/lengths. Comparisons are on [Int64.bits_of_float] so NaN
   payload differences and -0.0 vs 0.0 are observable. *)

open Ascend

let all_dtypes = Dtype.[ F16; F32; I8; I16; U16; I32 ]

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Whole-buffer bitwise comparison: catches both wrong results in the
   target range and stray writes outside it. *)
let same_buffer a b =
  Host_buffer.length a = Host_buffer.length b
  && (let ok = ref true in
      for i = 0 to Host_buffer.length a - 1 do
        if not (same_float (Host_buffer.get a i) (Host_buffer.get b i)) then
          ok := false
      done;
      !ok)

(* Value generator biased towards the observable corners: NaNs with
   distinct payloads (quieting and canonicalization differ per dtype),
   infinities, signed zeros, fp16/fp32 overflow and subnormal
   boundaries, integer wrap points. *)
let interesting =
  [| 0.0; -0.0; 1.0; -1.0; 0.5; -0.5; 2049.0; 65504.0; 65519.0; 65520.0;
     -65520.0; 1e-8; 0x1p-24; 0x1p-25; 0x1p-14; infinity; neg_infinity;
     Float.nan; -.Float.nan;
     Int64.float_of_bits 0x7FF0000000000001L;
     Int64.float_of_bits 0xFFF8000000001234L;
     3.4e38; -3.4e38; 1e300; 126.5; 127.0; 128.0; -128.5; -129.0; 255.0;
     256.0; 32767.5; -32769.0; 65535.0; 65536.0; 2.147483648e9 |]

let gen_value =
  QCheck.Gen.(
    frequency
      [
        (4, float);
        (4, oneofl (Array.to_list interesting));
        (2, map float_of_int (int_range (-2000) 2000));
        (1, map (fun f -> f *. 0x1p-30) float);
      ])

type case = {
  dt : Dtype.t;  (* destination dtype *)
  dt2 : Dtype.t;  (* source dtype *)
  len : int;
  o0 : int;  (* src0 offset *)
  o1 : int;  (* src1 / mask offset *)
  o2 : int;  (* src2 offset *)
  od : int;  (* dst offset *)
  a0 : float array;  (* length o0 + len *)
  a1 : float array;  (* length o1 + len *)
  a2 : float array;  (* length o2 + len *)
  d0 : float array;  (* initial dst contents, length od + len + 2 *)
  scalar : float;
  seg : int;
  bop : Host_buffer.binop;
  sop : Host_buffer.scalar_op;
}

let gen_case =
  let open QCheck.Gen in
  let* dt = oneofl all_dtypes in
  let* dt2 = oneofl all_dtypes in
  let* len = int_range 1 48 in
  let* o0 = int_range 0 5 in
  let* o1 = int_range 0 5 in
  let* o2 = int_range 0 5 in
  let* od = int_range 0 5 in
  let* a0 = array_size (return (o0 + len)) gen_value in
  let* a1 = array_size (return (o1 + len)) gen_value in
  let* a2 = array_size (return (o2 + len)) gen_value in
  let* d0 = array_size (return (od + len + 2)) gen_value in
  let* scalar = gen_value in
  let* seg = int_range 1 (len + 3) in
  let* bop = oneofl Host_buffer.[ Add; Sub; Mul; Max; Min ] in
  let* sop = oneofl Host_buffer.[ Adds; Muls; Maxs; Mins ] in
  return { dt; dt2; len; o0; o1; o2; od; a0; a1; a2; d0; scalar; seg; bop; sop }

let print_case c =
  let arr a =
    "[|"
    ^ String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%h") a))
    ^ "|]"
  in
  Printf.sprintf
    "dt=%s dt2=%s len=%d o0=%d o1=%d o2=%d od=%d seg=%d scalar=%h\n\
     a0=%s\na1=%s\na2=%s\nd0=%s"
    (Dtype.to_string c.dt) (Dtype.to_string c.dt2) c.len c.o0 c.o1 c.o2 c.od
    c.seg c.scalar (arr c.a0) (arr c.a1) (arr c.a2) (arr c.d0)

let arb_case = QCheck.make ~print:print_case gen_case

let fun_of_binop : Host_buffer.binop -> float -> float -> float = function
  | Host_buffer.Add -> ( +. )
  | Host_buffer.Sub -> ( -. )
  | Host_buffer.Mul -> ( *. )
  | Host_buffer.Max -> Float.max
  | Host_buffer.Min -> Float.min

(* The historical Vec operand order: adds/muls put the element left,
   maxs/mins partially applied the scalar first. *)
let fun_of_scalar_op scalar : Host_buffer.scalar_op -> float -> float = function
  | Host_buffer.Adds -> fun v -> v +. scalar
  | Host_buffer.Muls -> fun v -> v *. scalar
  | Host_buffer.Maxs -> Float.max scalar
  | Host_buffer.Mins -> Float.min scalar

let test ~name prop = QCheck.Test.make ~name ~count:400 arb_case prop

let prop_map2_binop =
  test ~name:"map2_binop = scalar shim" (fun c ->
      let src0 = Host_buffer.of_array c.dt2 c.a0 in
      let src1 = Host_buffer.of_array c.dt2 c.a1 in
      let bulk = Host_buffer.of_array c.dt c.d0 in
      let shim = Host_buffer.of_array c.dt c.d0 in
      Host_buffer.map2_binop c.bop ~src0 ~src0_off:c.o0 ~src1 ~src1_off:c.o1
        ~dst:bulk ~dst_off:c.od ~len:c.len;
      let f = fun_of_binop c.bop in
      for i = 0 to c.len - 1 do
        Host_buffer.set shim (c.od + i)
          (f
             (Host_buffer.get src0 (c.o0 + i))
             (Host_buffer.get src1 (c.o1 + i)))
      done;
      same_buffer bulk shim)

let prop_map1_scalar =
  test ~name:"map1_scalar = scalar shim" (fun c ->
      let src = Host_buffer.of_array c.dt2 c.a0 in
      let bulk = Host_buffer.of_array c.dt c.d0 in
      let shim = Host_buffer.of_array c.dt c.d0 in
      Host_buffer.map1_scalar c.sop ~src ~src_off:c.o0 ~dst:bulk ~dst_off:c.od
        ~scalar:c.scalar ~len:c.len;
      let f = fun_of_scalar_op c.scalar c.sop in
      for i = 0 to c.len - 1 do
        Host_buffer.set shim (c.od + i) (f (Host_buffer.get src (c.o0 + i)))
      done;
      same_buffer bulk shim)

let prop_map1_f =
  test ~name:"map1_f = scalar shim" (fun c ->
      let f v = (v *. 0.5) +. c.scalar in
      let src = Host_buffer.of_array c.dt2 c.a0 in
      let bulk = Host_buffer.of_array c.dt c.d0 in
      let shim = Host_buffer.of_array c.dt c.d0 in
      Host_buffer.map1_f f ~src ~src_off:c.o0 ~dst:bulk ~dst_off:c.od
        ~len:c.len;
      for i = 0 to c.len - 1 do
        Host_buffer.set shim (c.od + i) (f (Host_buffer.get src (c.o0 + i)))
      done;
      same_buffer bulk shim)

let prop_map2_f =
  test ~name:"map2_f = scalar shim" (fun c ->
      let f a b = ((a -. b) *. 0.5) +. c.scalar in
      let src0 = Host_buffer.of_array c.dt2 c.a0 in
      let src1 = Host_buffer.of_array c.dt2 c.a1 in
      let bulk = Host_buffer.of_array c.dt c.d0 in
      let shim = Host_buffer.of_array c.dt c.d0 in
      Host_buffer.map2_f f ~src0 ~src0_off:c.o0 ~src1 ~src1_off:c.o1 ~dst:bulk
        ~dst_off:c.od ~len:c.len;
      for i = 0 to c.len - 1 do
        Host_buffer.set shim (c.od + i)
          (f
             (Host_buffer.get src0 (c.o0 + i))
             (Host_buffer.get src1 (c.o1 + i)))
      done;
      same_buffer bulk shim)

let prop_select_range =
  test ~name:"select_range = scalar shim" (fun c ->
      let mask = Host_buffer.of_array c.dt2 c.a1 in
      let src0 = Host_buffer.of_array c.dt2 c.a0 in
      let src1 = Host_buffer.of_array c.dt2 c.a2 in
      let bulk = Host_buffer.of_array c.dt c.d0 in
      let shim = Host_buffer.of_array c.dt c.d0 in
      Host_buffer.select_range ~mask ~mask_off:c.o1 ~src0 ~src0_off:c.o0 ~src1
        ~src1_off:c.o2 ~dst:bulk ~dst_off:c.od ~len:c.len;
      for i = 0 to c.len - 1 do
        Host_buffer.set shim (c.od + i)
          (if Host_buffer.get mask (c.o1 + i) <> 0.0 then
             Host_buffer.get src0 (c.o0 + i)
           else Host_buffer.get src1 (c.o2 + i))
      done;
      same_buffer bulk shim)

let prop_fill_range =
  test ~name:"fill_range = scalar shim" (fun c ->
      let bulk = Host_buffer.of_array c.dt c.d0 in
      let shim = Host_buffer.of_array c.dt c.d0 in
      Host_buffer.fill_range bulk ~off:c.od ~len:c.len c.scalar;
      for i = 0 to c.len - 1 do
        Host_buffer.set shim (c.od + i) c.scalar
      done;
      same_buffer bulk shim)

let prop_arange_range =
  test ~name:"arange_range = scalar shim" (fun c ->
      let bulk = Host_buffer.of_array c.dt c.d0 in
      let shim = Host_buffer.of_array c.dt c.d0 in
      Host_buffer.arange_range bulk ~off:c.od ~start:c.scalar ~len:c.len;
      for i = 0 to c.len - 1 do
        Host_buffer.set shim (c.od + i) (c.scalar +. float_of_int i)
      done;
      same_buffer bulk shim)

let prop_blit =
  test ~name:"blit (same-dtype and converting) = scalar shim" (fun c ->
      let src = Host_buffer.of_array c.dt2 c.a0 in
      let bulk = Host_buffer.of_array c.dt c.d0 in
      let shim = Host_buffer.of_array c.dt c.d0 in
      Host_buffer.blit ~src ~src_off:c.o0 ~dst:bulk ~dst_off:c.od ~len:c.len;
      for i = 0 to c.len - 1 do
        Host_buffer.set shim (c.od + i) (Host_buffer.get src (c.o0 + i))
      done;
      same_buffer bulk shim)

let prop_blit_overlap =
  test ~name:"overlapping same-buffer blit is memmove" (fun c ->
      (* d0 has length od + len + 2; shift by up to 2 in either
         direction so source and destination ranges overlap. *)
      let shift = (c.seg mod 5) - 2 in
      let src_off = max 0 (min 2 (2 + shift)) in
      let dst_off = max 0 (min 2 (2 - shift)) in
      let bulk = Host_buffer.of_array c.dt c.d0 in
      let snapshot = Host_buffer.to_array bulk in
      Host_buffer.blit ~src:bulk ~src_off ~dst:bulk ~dst_off ~len:c.len;
      let shim = Host_buffer.of_array c.dt c.d0 in
      for i = 0 to c.len - 1 do
        Host_buffer.set shim (dst_off + i) snapshot.(src_off + i)
      done;
      same_buffer bulk shim)

let prop_reduce_add =
  test ~name:"reduce_add = forward double fold" (fun c ->
      let b = Host_buffer.of_array c.dt2 c.a0 in
      let acc = ref 0.0 in
      for i = 0 to c.len - 1 do
        acc := !acc +. Host_buffer.get b (c.o0 + i)
      done;
      same_float (Host_buffer.reduce_add b ~off:c.o0 ~len:c.len) !acc)

let prop_reduce_max =
  test ~name:"reduce_max = Float.max fold from -inf" (fun c ->
      let b = Host_buffer.of_array c.dt2 c.a0 in
      let acc = ref neg_infinity in
      for i = 0 to c.len - 1 do
        acc := Float.max !acc (Host_buffer.get b (c.o0 + i))
      done;
      same_float (Host_buffer.reduce_max b ~off:c.o0 ~len:c.len) !acc)

let prop_scan_accum =
  test ~name:"scan_accum = scalar cumsum shim" (fun c ->
      let src = Host_buffer.of_array c.dt2 c.a0 in
      let bulk = Host_buffer.of_array c.dt c.d0 in
      let shim = Host_buffer.of_array c.dt c.d0 in
      let got = Host_buffer.scan_accum ~src ~dst:bulk ~len:c.len in
      let acc = ref 0.0 in
      for i = 0 to c.len - 1 do
        Host_buffer.set shim i (!acc +. Host_buffer.get src i);
        acc := Host_buffer.get shim i
      done;
      same_float got !acc && same_buffer bulk shim)

let prop_scan_segment =
  test ~name:"scan_segment = scalar carry shim" (fun c ->
      let bulk = Host_buffer.of_array c.dt c.d0 in
      let shim = Host_buffer.of_array c.dt c.d0 in
      let got =
        Host_buffer.scan_segment c.bop bulk ~off:c.od ~len:c.len ~seg:c.seg
          ~init:c.scalar
      in
      (* Combine with the carry in the map1_scalar operand order:
         Add/Sub/Mul put the element left, Max/Min the carry left. *)
      let combine carry v =
        match c.bop with
        | Host_buffer.Add -> v +. carry
        | Host_buffer.Sub -> v -. carry
        | Host_buffer.Mul -> v *. carry
        | Host_buffer.Max -> Float.max carry v
        | Host_buffer.Min -> Float.min carry v
      in
      let carry = ref c.scalar in
      let pos = ref 0 in
      while !pos < c.len do
        let row_len = min c.seg (c.len - !pos) in
        let base = c.od + !pos in
        let cr = !carry in
        for j = base to base + row_len - 1 do
          Host_buffer.set shim j (combine cr (Host_buffer.get shim j))
        done;
        carry := Host_buffer.get shim (base + row_len - 1);
        pos := !pos + row_len
      done;
      same_float got !carry && same_buffer bulk shim)

let prop_of_array_roundtrip =
  test ~name:"of_array/to_array roundtrip = per-element round" (fun c ->
      let b = Host_buffer.of_array c.dt c.d0 in
      let back = Host_buffer.to_array b in
      Array.length back = Array.length c.d0
      && (let ok = ref true in
          Array.iteri
            (fun i v ->
              if not (same_float back.(i) (Dtype.round c.dt v)) then ok := false)
            c.d0;
          !ok))

(* The storage invariant behind every bulk fast path: an fp16 buffer
   element is exactly [Fp16.round] of what was stored, bit for bit —
   pinning Host_buffer's internal encoder to the public codec. *)
let prop_f16_set_is_fp16_round =
  QCheck.Test.make ~name:"F16 set/get = Fp16.round" ~count:2000
    (QCheck.make ~print:(Printf.sprintf "%h") gen_value)
    (fun v ->
      let b = Host_buffer.create Dtype.F16 1 in
      Host_buffer.set b 0 v;
      same_float (Host_buffer.get b 0) (Fp16.round v))

let prop_f32_set_is_round_f32 =
  QCheck.Test.make ~name:"F32 set/get = Dtype.round_f32" ~count:2000
    (QCheck.make ~print:(Printf.sprintf "%h") gen_value)
    (fun v ->
      let b = Host_buffer.create Dtype.F32 1 in
      Host_buffer.set b 0 v;
      same_float (Host_buffer.get b 0) (Dtype.round_f32 v))

let () =
  Alcotest.run "bulk"
    [
      ( "equivalence",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_map2_binop;
            prop_map1_scalar;
            prop_map1_f;
            prop_map2_f;
            prop_select_range;
            prop_fill_range;
            prop_arange_range;
            prop_blit;
            prop_blit_overlap;
            prop_reduce_add;
            prop_reduce_max;
            prop_scan_accum;
            prop_scan_segment;
            prop_of_array_roundtrip;
            prop_f16_set_is_fp16_round;
            prop_f32_set_is_round_f32;
          ] );
    ]
