(* Golden-trace snapshot: one small ScanU launch under tracing, the
   exported Chrome trace JSON compared byte-for-byte against the
   committed [golden_trace.expected]. The trace is a function of the
   simulated schedule alone, so any change to this file is a change to
   what the simulator claims the hardware did — either an intended
   cost-model/kernel change (regenerate with --write and review the
   diff) or a recording regression.

   Usage:
     golden_trace.exe            compare against golden_trace.expected
     golden_trace.exe --write    regenerate the expected file *)

let n = 4096

let run () =
  let entry =
    match Scan.Op_registry.find "scanu" with
    | Some e -> e
    | None -> failwith "scanu not registered"
  in
  match Workload.Op_driver.run ~n ~domains:1 entry with
  | Ok (_, Some tr) -> (
      match Ascend.Trace.check tr with
      | Ok () -> Obs.Chrome_trace.to_string tr ^ "\n"
      | Error msg -> failwith ("inconsistent trace: " ^ msg))
  | Ok (_, None) -> failwith "driver returned no trace"
  | Error msg -> failwith msg

let expected_path =
  Filename.concat (Filename.dirname Sys.executable_name) "golden_trace.expected"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let () =
  let actual = run () in
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "--write" then begin
    let oc = open_out_bin expected_path in
    output_string oc actual;
    close_out oc;
    Printf.printf "golden_trace: wrote %s (%d bytes)\n" expected_path
      (String.length actual)
  end
  else begin
    let expected = read_file expected_path in
    if String.equal actual expected then
      print_endline "golden_trace: ok (byte-identical)"
    else begin
      (* Locate the first divergence for a usable failure message. *)
      let limit = min (String.length actual) (String.length expected) in
      let i = ref 0 in
      while !i < limit && actual.[!i] = expected.[!i] do
        incr i
      done;
      Printf.eprintf
        "golden_trace: MISMATCH at byte %d (expected %d bytes, got %d)\n" !i
        (String.length expected) (String.length actual);
      let context s =
        let lo = max 0 (!i - 60)
        and hi = min (String.length s) (!i + 60) in
        String.sub s lo (hi - lo)
      in
      Printf.eprintf "  expected: ...%s...\n" (context expected);
      Printf.eprintf "  actual:   ...%s...\n" (context actual);
      Printf.eprintf
        "  (intended schedule change? regenerate: golden_trace.exe --write)\n";
      exit 1
    end
  end
