(* Pipeline-equivalence and async-hazard tests.

   1. QCheck equivalence: for every registry entry and every dtype it
      accepts, running under the asynchronous double/triple-buffered
      schedules must produce output buffers BIT-identical to the fully
      serial schedule on the same corner-biased random input — async
      DataCopy is a timing construct only, never a numeric one.

   2. A unit matrix of wait_group misuse, showing each hazard pattern
      is caught by the sanitizer with a clear diagnostic. *)

open Ascend
module Reg = Scan.Op_registry

let () = Ops.Ops_registry.install ()

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Corner-biased value generator (after test_bulk's): NaNs, infinities,
   signed zeros, fp16 overflow / subnormal boundaries, integer wrap
   points — the values most likely to expose a schedule-dependent
   rounding or conversion divergence. *)

let interesting =
  [| 0.0; -0.0; 1.0; -1.0; 0.5; -0.5; 2049.0; 65504.0; 65519.0; 65520.0;
     -65520.0; 1e-8; 0x1p-24; 0x1p-25; 0x1p-14; infinity; neg_infinity;
     Float.nan; -.Float.nan;
     Int64.float_of_bits 0x7FF0000000000001L;
     Int64.float_of_bits 0xFFF8000000001234L;
     3.4e38; -3.4e38; 1e300; 126.5; 127.0; 128.0; -128.5; -129.0; 255.0;
     256.0; 32767.5; -32769.0; 65535.0; 65536.0; 2.147483648e9 |]

let gen_value =
  QCheck.Gen.(
    frequency
      [
        (4, float);
        (4, oneofl (Array.to_list interesting));
        (2, map float_of_int (int_range (-2000) 2000));
        (1, map (fun f -> f *. 0x1p-30) float);
      ])

(* Probability-consuming operators (top-p, weighted sampling) need a
   non-degenerate distribution; everything else takes the corner mix. *)
let gen_data ~corner n =
  QCheck.Gen.(
    if corner then array_size (return n) gen_value
    else array_size (return n) (float_range 0.001 1.0))

let gen_flags n =
  QCheck.Gen.(
    array_size (return n) (map (fun b -> if b then 1.0 else 0.0) bool))

type eq_case = { len : int; data : float array; flags : float array }

let gen_case ~corner =
  QCheck.Gen.(
    let* len = int_range 16 5000 in
    let len = len * 4 / 4 in
    let* data = gen_data ~corner len in
    let* flags = gen_flags len in
    return { len; data; flags })

let arb_case ~corner =
  QCheck.make
    ~print:(fun c ->
      Printf.sprintf "len=%d data[0..3]=%h %h %h %h" c.len c.data.(0)
        c.data.(1) c.data.(2) c.data.(3))
    (gen_case ~corner)

(* ------------------------------------------------------------------ *)
(* Uniform entry runner under an explicit schedule. *)

let config_for (entry : Reg.entry) ~n =
  let batched = entry.Reg.caps.Reg.batched in
  {
    Reg.default_config with
    (* Small tiles so even modest inputs span many pipeline
       iterations; [vec_only] ignores [s] by design. *)
    Reg.s = Some 16;
    batch = (if batched then Some 4 else None);
    len = (if batched then Some (n / 4) else None);
    k = Some 64;
    p = Some 0.9;
    theta = Some 0.4;
    seed = Some 3;
  }

let run_entry (entry : Reg.entry) ~dtype ~sched c =
  Scan.Scan_core.with_schedule sched (fun () ->
      let dev = Device.create () in
      let x = Device.of_array dev dtype ~name:"px" c.data in
      let input =
        if entry.Reg.caps.Reg.masked then
          Reg.Masked
            { x; mask = Device.of_array dev Dtype.I8 ~name:"pm" c.flags }
        else Reg.Tensor x
      in
      Reg.run entry (config_for entry ~n:c.len) dev input)

let tensor_bits t =
  Array.init (Global_tensor.length t) (fun i ->
      Int64.bits_of_float (Global_tensor.get t i))

let outputs_equal (a : Reg.output) (b : Reg.output) =
  (match (a.Reg.y, b.Reg.y) with
  | None, None -> true
  | Some ya, Some yb -> tensor_bits ya = tensor_bits yb
  | _ -> false)
  && a.Reg.aux = b.Reg.aux

let equivalence_prop entry dtype c =
  match
    ( run_entry entry ~dtype ~sched:Scan.Scan_core.Serial c,
      run_entry entry ~dtype ~sched:Scan.Scan_core.Double c,
      run_entry entry ~dtype ~sched:Scan.Scan_core.Triple c )
  with
  | Ok (os, _), Ok (o2, _), Ok (o3, _) ->
      outputs_equal os o2 && outputs_equal os o3
  | Error es, Error e2, Error e3 ->
      (* Uniform rejection must not depend on the schedule either. *)
      String.equal es e2 && String.equal es e3
  | _ -> false

let equivalence_tests =
  List.concat_map
    (fun (entry : Reg.entry) ->
      let corner =
        (* Samplers fold probabilities; feed them a valid distribution. *)
        not
          (List.mem entry.Reg.name [ "topp"; "weighted_sampling"; "topk" ])
      in
      List.map
        (fun dtype ->
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:8
               ~name:
                 (Printf.sprintf "%s %s: async == serial" entry.Reg.name
                    (Dtype.to_string dtype))
               (arb_case ~corner)
               (equivalence_prop entry dtype)))
        entry.Reg.caps.Reg.dtypes)
    (Reg.all ())

(* ------------------------------------------------------------------ *)
(* wait_group misuse matrix: every row is a distinct async-discipline
   mistake; each must surface as exactly the expected Async_hazard
   diagnostics, with clean rows staying clean. *)

let san_device () =
  let dev = Device.create ~sanitize:true () in
  (dev, Option.get (Device.sanitizer dev))

let hazards san = Sanitizer.count_kind san Sanitizer.Async_hazard

let with_block dev f =
  let ctx = Block.make ~device:dev ~idx:0 ~num_blocks:1 in
  f ctx;
  ignore (Block.finish ctx)

let mk_input dev n = Device.of_array dev Dtype.F16 ~name:"hx" (Array.make n 1.0)

let test_use_before_any_wait () =
  let dev, san = san_device () in
  let x = mk_input dev 64 in
  with_block dev (fun ctx ->
      let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      let out = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      Mte.copy_in_async ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub
        ~len:64 ();
      Vec.adds ctx ~src:ub ~dst:out ~scalar:1.0 ~len:64 ());
  check_int "uncommitted use flagged" 1 (hazards san);
  match
    List.find_opt
      (fun d -> d.Sanitizer.kind = Sanitizer.Async_hazard)
      (Sanitizer.diagnostics san)
  with
  | None -> Alcotest.fail "no async diagnostic"
  | Some d ->
      check_bool "op names the consumer" true
        (String.length d.Sanitizer.op >= 4
        && String.sub d.Sanitizer.op 0 4 = "Vec.");
      check_bool "message explains the fix" true
        (let msg = d.Sanitizer.message in
         let has sub =
           let n = String.length msg and m = String.length sub in
           let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
           go 0
         in
         has "wait_group")

let test_use_before_wait_of_committed_group () =
  let dev, san = san_device () in
  let x = mk_input dev 64 in
  with_block dev (fun ctx ->
      let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      Mte.copy_in_async ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub
        ~len:64 ();
      Mte.commit_group ctx ~engine:(Engine.Vec_mte_in 0);
      (* Committed but never waited: still in flight. *)
      let out = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      Vec.adds ctx ~src:ub ~dst:out ~scalar:1.0 ~len:64 ());
  check_int "committed-unwaited use flagged" 1 (hazards san)

let test_wait_too_shallow () =
  let dev, san = san_device () in
  let x = mk_input dev 64 in
  with_block dev (fun ctx ->
      let ub0 = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      let ub1 = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      Mte.copy_in_async ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub0
        ~len:64 ();
      Mte.commit_group ctx ~engine:(Engine.Vec_mte_in 0);
      Mte.copy_in_async ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub1
        ~len:64 ();
      Mte.commit_group ctx ~engine:(Engine.Vec_mte_in 0);
      (* Depth 1 retires only the FIRST group: ub0 is safe, ub1 is not. *)
      Mte.wait_group ctx ~engine:(Engine.Vec_mte_in 0) ~outstanding:1;
      let out = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      Vec.adds ctx ~src:ub0 ~dst:out ~scalar:1.0 ~len:64 ();
      check_int "older group is safe" 0 (hazards san);
      Vec.adds ctx ~src:ub1 ~dst:out ~scalar:1.0 ~len:64 ());
  check_int "younger group flagged" 1 (hazards san)

let test_wrong_engine_wait () =
  let dev, san = san_device () in
  let x = mk_input dev 64 in
  with_block dev (fun ctx ->
      let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      Mte.copy_in_async ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub
        ~len:64 ();
      Mte.commit_group ctx ~engine:(Engine.Vec_mte_in 0);
      (* Waiting on a DIFFERENT queue retires nothing relevant. *)
      Mte.wait_group ctx ~engine:Engine.Cube_mte_in ~outstanding:0;
      let out = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      Vec.adds ctx ~src:ub ~dst:out ~scalar:1.0 ~len:64 ());
  check_int "wrong-queue wait flagged" 1 (hazards san)

let test_proper_wait_is_clean () =
  let dev, san = san_device () in
  let x = mk_input dev 64 in
  with_block dev (fun ctx ->
      let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      Mte.copy_in_async ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub
        ~len:64 ();
      Mte.commit_group ctx ~engine:(Engine.Vec_mte_in 0);
      Mte.wait_group ctx ~engine:(Engine.Vec_mte_in 0) ~outstanding:0;
      Vec.adds ctx ~src:ub ~dst:ub ~scalar:1.0 ~len:64 ();
      Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~dst:x ~len:64
        ());
  check_int "disciplined pipeline clean" 0 (hazards san)

let test_sync_mte_consumer_flagged () =
  let dev, san = san_device () in
  let x = mk_input dev 64 in
  with_block dev (fun ctx ->
      let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      Mte.copy_in_async ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub
        ~len:64 ();
      (* Storing a tile whose fill is still in flight is the
         store-side variant of the same bug. *)
      Mte.copy_out ctx ~engine:(Engine.Vec_mte_out 0) ~src:ub ~dst:x ~len:64
        ());
  check_int "async src of sync store flagged" 1 (hazards san)

let test_mmad_consumer_flagged () =
  let dev, san = san_device () in
  let x = mk_input dev 256 in
  with_block dev (fun ctx ->
      let a = Block.alloc ctx Mem_kind.L0a Dtype.F16 256 in
      let b = Block.alloc ctx Mem_kind.L0b Dtype.F16 256 in
      let c = Block.alloc ctx Mem_kind.L0c Dtype.F32 256 in
      Mte.copy_in_async ctx ~engine:Engine.Cube_mte_in ~src:x ~dst:a ~len:256
        ();
      Mte.copy_in ctx ~engine:Engine.Cube_mte_in ~src:x ~dst:b ~len:256 ();
      Cube.mmad ctx ~a ~b ~c ~m:16 ~k:16 ~n:16 ~accumulate:false);
  check_int "mmad on in-flight operand flagged" 1 (hazards san)

let test_wait_all_retires_everything () =
  let dev, san = san_device () in
  let x = mk_input dev 64 in
  with_block dev (fun ctx ->
      let ub = Block.alloc ctx (Mem_kind.Ub 0) Dtype.F16 64 in
      Mte.copy_in_async ctx ~engine:(Engine.Vec_mte_in 0) ~src:x ~dst:ub
        ~len:64 ();
      (* A full barrier retires even uncommitted copies. *)
      Block.wait_all ctx;
      Vec.adds ctx ~src:ub ~dst:ub ~scalar:1.0 ~len:64 ());
  check_int "wait_all clean" 0 (hazards san)

let () =
  Alcotest.run "pipeline"
    [
      ("equivalence", equivalence_tests);
      ( "wait_group misuse",
        [
          Alcotest.test_case "use before any wait" `Quick
            test_use_before_any_wait;
          Alcotest.test_case "committed but unwaited" `Quick
            test_use_before_wait_of_committed_group;
          Alcotest.test_case "wait too shallow" `Quick test_wait_too_shallow;
          Alcotest.test_case "wrong engine waited" `Quick
            test_wrong_engine_wait;
          Alcotest.test_case "proper wait clean" `Quick
            test_proper_wait_is_clean;
          Alcotest.test_case "sync store of in-flight tile" `Quick
            test_sync_mte_consumer_flagged;
          Alcotest.test_case "mmad on in-flight operand" `Quick
            test_mmad_consumer_flagged;
          Alcotest.test_case "wait_all retires all" `Quick
            test_wait_all_retires_everything;
        ] );
    ]
