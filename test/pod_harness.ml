(* Pod crash harness: a REAL process death in the middle of a
   distributed, checkpointed pod run.

   Same shape as chaos_harness, one level up the hierarchy: the parent
   forks a child that runs a pod batched scan (device kill at launch 1,
   then a host crash) against a checkpoint store; the crash event makes
   the child SIGKILL itself mid-batch. The parent observes WSIGNALED,
   reopens the store exactly like `pod resume` does, and finishes the
   batch on a fresh pod — then proves:

   - the child was killed by SIGKILL (the crash was real);
   - the store held partial progress (0 < commits < groups);
   - the resumed output is byte-for-byte identical to an
     uninterrupted reference run of the same storyline — despite the
     reference losing a device mid-run and the resume running on a
     full pod (placement invariance);
   - no committed row-group was ever re-executed (resume commits are
     row-disjoint from the crashed run's);
   - no rows were lost.

   Runs under `dune runtest` via a rule in test/dune; exits 1 on any
   violation. *)

open Ascend
open Runtime

let batch = 16
let len = 1024
let devices = 3
let input = Array.init (batch * len) (fun i -> if i mod 53 = 0 then 1.0 else 0.0)

let scenario_text =
  "name pod-harness-crash\n\
   seed 17\n\
   at launch 1 kill device=2\n\
   at launch 2 crash\n"

let failures = ref 0

let check name ok =
  if ok then Printf.printf "  ok: %s\n%!" name
  else begin
    incr failures;
    Printf.printf "  FAILED: %s\n%!" name
  end

let scenario =
  match Chaos.parse scenario_text with
  | Ok sc -> sc
  | Error e ->
      Printf.printf "pod harness: scenario parse error: %s\n%!" e;
      exit 1

let run_batched ?store ?chaos () =
  let pod = Pod.create ~devices () in
  Pod_runner.batched_scan ?store ?chaos pod ~batch ~len ~input

let bytes_of r =
  Array.init (batch * len) (fun i ->
      Int64.bits_of_float (Global_tensor.get r.Pod_runner.py i))

let () =
  (* A fork-based harness cannot coexist with spawned domains (the
     runtime forbids [Unix.fork] once other domains exist, and the
     reference run below would lazily spawn the pool under
     ASCEND_SIM_DOMAINS > 1). Pin this process to sequential launches;
     host-domain parallelism is exercised by the regular suite. *)
  Unix.putenv "ASCEND_SIM_DOMAINS" "1";
  Printf.printf "pod harness: fork, SIGKILL mid-batch, resume\n%!";
  let store_path = Filename.temp_file "pod_harness_" ".ckpt" in
  (* Reference: the same storyline (device kill included, crash
     skipped) in this process, no store. *)
  let ref_r =
    run_batched
      ~chaos:(Chaos.arm ~skip_crashes:true ~on_crash:(fun _ -> ()) scenario)
      ()
  in
  check "reference run completes" ref_r.Pod_runner.pok;
  check "reference lost a device" (ref_r.Pod_runner.pdevices_lost = 1);
  let ref_bytes = bytes_of ref_r in
  (* A clean full-pod run agrees with the attrition run bit for bit:
     the re-sharding rule is placement-invariant. *)
  let clean_r = run_batched () in
  check "device kill leaves bytes unchanged" (bytes_of clean_r = ref_bytes);
  (* Child: runs with the store and dies by its own hand. *)
  (match Unix.fork () with
  | 0 ->
      let store =
        Checkpoint_store.create ~path:store_path ~rows:batch ~len
          ~meta:"pod-harness" ()
      in
      let on_crash _ = Unix.kill (Unix.getpid ()) Sys.sigkill in
      let r =
        run_batched ~store
          ~chaos:(Chaos.arm ~skip_crashes:false ~on_crash scenario)
          ()
      in
      (* Reaching here means the crash event never fired. *)
      ignore r;
      Stdlib.exit 3
  | pid -> (
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WSIGNALED s when s = Sys.sigkill ->
          check "child died of SIGKILL" true
      | Unix.WEXITED 3 ->
          check "child died of SIGKILL (crash event never fired)" false
      | Unix.WEXITED c ->
          check (Printf.sprintf "child died of SIGKILL (exited %d)" c) false
      | Unix.WSIGNALED s ->
          check (Printf.sprintf "child died of SIGKILL (signal %d)" s) false
      | Unix.WSTOPPED _ -> check "child died of SIGKILL (stopped)" false);
      match Checkpoint_store.reopen ~path:store_path with
      | Error e -> check (Printf.sprintf "store reopens (%s)" e) false
      | Ok (store, l) ->
          check "store parsed with no torn tail (atomic commit)"
            (not l.Checkpoint_store.l_torn);
          check "store meta preserved"
            (l.Checkpoint_store.l_meta = "pod-harness");
          let commits_at_crash = Checkpoint_store.commits store in
          check
            (Printf.sprintf "partial progress durable (%d commits)"
               commits_at_crash)
            (commits_at_crash > 0);
          check "crash was mid-batch, not at the end"
            (List.fold_left
               (fun acc (lo, hi, _) -> acc + (hi - lo))
               0
               (Checkpoint_store.groups store)
            < batch);
          (* Parent: resume on a FRESH full pod — the store carries the
             progress, not the pod. *)
          let res_r =
            run_batched ~store
              ~chaos:(Chaos.arm ~skip_crashes:true ~on_crash:(fun _ -> ())
                        scenario)
              ()
          in
          check "resumed run completes" res_r.Pod_runner.pok;
          check "rows were restored from the store"
            (res_r.Pod_runner.prestored_rows > 0);
          check "no rows lost"
            (Checkpoint.done_count res_r.Pod_runner.pcheckpoint = batch);
          check "resume equals replay, byte for byte"
            (bytes_of res_r = ref_bytes);
          (* Zero re-executed committed row-groups: the resume's new
             commits must be row-disjoint from the crashed run's. *)
          let all = Checkpoint_store.groups store in
          let restored = Array.make batch false in
          List.iteri
            (fun i (lo, hi, _) ->
              if i < commits_at_crash then
                for r = lo to hi - 1 do
                  restored.(r) <- true
                done)
            all;
          let reexec = ref 0 in
          List.iteri
            (fun i (lo, hi, _) ->
              if i >= commits_at_crash then
                for r = lo to hi - 1 do
                  if restored.(r) then incr reexec
                done)
            all;
          check "zero re-executed committed row-groups" (!reexec = 0)));
  (try Sys.remove store_path with Sys_error _ -> ());
  (try Sys.remove (store_path ^ ".tmp") with Sys_error _ -> ());
  if !failures > 0 then begin
    Printf.printf "pod harness: %d check(s) FAILED\n%!" !failures;
    exit 1
  end;
  Printf.printf "pod harness: all checks passed\n%!"
