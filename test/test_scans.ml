(* Integration tests: every scan kernel against the reference oracle,
   across edge-case lengths, tile sizes, data types and variants. *)

open Ascend

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Sparse 0/1 inputs keep fp16 arithmetic exact for every kernel's
   rounding order as long as the total stays below 2049 (true up to
   n = 75 000 with a 1-in-37 density); the ternary pattern bounds all
   prefixes in [-1, 1]. *)
let input_01 n = Array.init n (fun i -> if i mod 37 = 0 then 1.0 else 0.0)

let input_ternary n =
  Array.init n (fun i -> float_of_int ((i * 11 mod 3) - 1))

let run_and_check ?(exclusive = false) ~name ~algo ?s data =
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let y, stats = Scan.Scan_api.run ?s ~exclusive ~algo dev x in
  (match
     Scan.Scan_api.check_scan ~round:Fp16.round ~exclusive ~algo
       ~dtype:Dtype.F16 ~input:data ~output:y ()
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: %s" name e);
  check_bool (name ^ " time positive") true (stats.Stats.seconds > 0.0);
  stats

(* Entries running under the sum monoid — the ones whose outputs must
   agree bit-for-bit with each other on exact inputs. *)
let is_sum algo =
  match algo.Scan.Op_registry.monoid with
  | Some (module Op : Scan.Scan_op.S) -> String.equal Op.name "sum"
  | None -> false

let lengths = [ 1; 2; 127; 128; 129; 4095; 4096; 4097; 16384; 16385; 50000 ]

let algo_cases algo algo_name =
  List.map
    (fun n ->
      Alcotest.test_case (Printf.sprintf "%s n=%d" algo_name n) `Quick
        (fun () ->
          ignore (run_and_check ~name:algo_name ~algo (input_01 n));
          ignore (run_and_check ~name:algo_name ~algo (input_ternary n))))
    lengths

let small_s_cases algo algo_name =
  List.map
    (fun s ->
      Alcotest.test_case (Printf.sprintf "%s s=%d" algo_name s) `Quick
        (fun () ->
          ignore (run_and_check ~name:algo_name ~algo ~s (input_01 5000))))
    [ 16; 32; 64; 128 ]

let test_exclusive_mcscan () =
  List.iter
    (fun n ->
      ignore
        (run_and_check ~exclusive:true ~name:"mcscan excl"
           ~algo:(Scan.Scan_api.get "mcscan")
           (input_01 n)))
    [ 1; 2; 128; 4097; 50000 ]

let test_exclusive_unsupported () =
  (* Capability violations surface uniformly as [Error] from the
     registry for every non-supporting entry, and as [Invalid_argument]
     through the legacy [Scan_api.run] wrapper. *)
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" (input_01 16) in
  let cfg =
    { Scan.Op_registry.default_config with Scan.Op_registry.exclusive = true }
  in
  List.iter
    (fun algo ->
      let name = Scan.Scan_api.algo_to_string algo in
      if not algo.Scan.Op_registry.caps.Scan.Op_registry.exclusive then begin
        (match
           Scan.Op_registry.run algo cfg dev (Scan.Op_registry.Tensor x)
         with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s: exclusive accepted" name);
        check_bool (name ^ " exclusive raises via Scan_api") true
          (try
             ignore (Scan.Scan_api.run ~exclusive:true ~algo dev x);
             false
           with Invalid_argument _ -> true)
      end)
    Scan.Scan_api.all_algos

let test_int8_mcscan () =
  let dev = Device.create () in
  List.iter
    (fun n ->
      let data = Array.init n (fun i -> if i mod 2 = 0 then 1.0 else 0.0) in
      let x = Device.of_array dev Dtype.I8 ~name:"mask" data in
      let y, _ = Scan.Mcscan.run dev x in
      check_bool "output dtype i32" true
        (Dtype.equal (Global_tensor.dtype y) Dtype.I32);
      let expect = Scan.Reference.inclusive_scan data in
      for i = 0 to n - 1 do
        if Global_tensor.get y i <> expect.(i) then
          Alcotest.failf "i8 scan n=%d idx=%d: %g <> %g" n i
            (Global_tensor.get y i) expect.(i)
      done)
    [ 1; 130; 16384; 100000 ]

let test_int8_values_beyond_f16 () =
  (* 70000 ones: the int32 outputs exceed both int16 and fp16 integer
     exactness; the i32 path must stay exact. *)
  let n = 70000 in
  let dev = Device.create () in
  let data = Array.make n 1.0 in
  let x = Device.of_array dev Dtype.I8 ~name:"ones" data in
  let y, _ = Scan.Mcscan.run dev x in
  Alcotest.(check (float 0.0)) "last" (float_of_int n) (Global_tensor.get y (n - 1))

let test_int8_negative_values () =
  let n = 3000 in
  let dev = Device.create () in
  let data = Array.init n (fun i -> float_of_int ((i mod 11) - 5)) in
  let x = Device.of_array dev Dtype.I8 ~name:"signed" data in
  let y, _ = Scan.Mcscan.run dev x in
  let expect = Scan.Reference.inclusive_scan data in
  for i = 0 to n - 1 do
    if Global_tensor.get y i <> expect.(i) then
      Alcotest.failf "signed i8 idx=%d: %g <> %g" i (Global_tensor.get y i)
        expect.(i)
  done

let test_mcscan_block_counts () =
  List.iter
    (fun blocks ->
      let dev = Device.create () in
      let data = input_01 40000 in
      let x = Device.of_array dev Dtype.F16 ~name:"x" data in
      let y, _ = Scan.Mcscan.run ~blocks dev x in
      match
        Scan.Scan_api.check_against_reference ~round:Fp16.round ~input:data
          ~output:y ()
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "blocks=%d: %s" blocks e)
    [ 1; 2; 3; 7; 20; 33 ]

let test_all_algorithms_agree () =
  let data = input_01 30000 in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let outputs =
    List.map
      (fun algo -> fst (Scan.Scan_api.run ~algo dev x))
      (List.filter is_sum Scan.Scan_api.all_algos)
  in
  match outputs with
  | first :: rest ->
      List.iteri
        (fun j y ->
          for i = 0 to 29999 do
            if Global_tensor.get y i <> Global_tensor.get first i then
              Alcotest.failf "algo %d disagrees at %d" j i
          done)
        rest
  | [] -> Alcotest.fail "no algorithms"

let test_validation_errors () =
  let dev = Device.create () in
  let xi = Device.of_array dev Dtype.I32 ~name:"xi" [| 1.0 |] in
  check_bool "scanu wrong dtype" true
    (try
       ignore (Scan.Scan_u.run dev xi);
       false
     with Invalid_argument _ -> true);
  check_bool "mcscan odd s" true
    (try
       let x = Device.of_array dev Dtype.F16 ~name:"x" [| 1.0 |] in
       ignore (Scan.Mcscan.run ~s:3 dev x);
       false
     with Invalid_argument _ -> true)

let test_traffic_accounting () =
  (* Every scan must read at least N and write at least N elements. *)
  let n = 20000 in
  let data = input_01 n in
  List.iter
    (fun algo ->
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.F16 ~name:"x" data in
      let _, st = Scan.Scan_api.run ~algo dev x in
      check_bool
        (Scan.Scan_api.algo_to_string algo ^ " reads >= input")
        true
        (st.Stats.gm_read_bytes >= 2 * n);
      check_bool
        (Scan.Scan_api.algo_to_string algo ^ " writes >= output")
        true
        (st.Stats.gm_write_bytes >= 2 * n))
    Scan.Scan_api.all_algos

let test_vec_only_tile_shapes () =
  let data = input_01 20000 in
  List.iter
    (fun (rows, cols) ->
      let dev = Device.create () in
      let x = Device.of_array dev Dtype.F16 ~name:"x" data in
      let y, _ = Scan.Scan_vec_only.run ~rows ~cols dev x in
      match
        Scan.Scan_api.check_against_reference ~round:Fp16.round ~input:data
          ~output:y ()
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "rows=%d cols=%d: %s" rows cols e)
    [ (32, 32); (64, 64); (128, 128); (64, 256); (1, 512) ]

let test_instruction_mix () =
  (* Structural assertions via the per-launch instruction mix: ScanU
     issues one Mmad per s^2-tile, ScanUL1 exactly three. *)
  let n = 5 * 128 * 128 in
  let data = input_01 n in
  let dev = Device.create () in
  let x = Device.of_array dev Dtype.F16 ~name:"x" data in
  let _, st_u = Scan.Scan_u.run dev x in
  check_int "scanu mmads" 5 (Stats.op_count st_u "mmad");
  let _, st_l = Scan.Scan_ul1.run dev x in
  check_int "scanul1 mmads" 15 (Stats.op_count st_l "mmad");
  (* The vec-only baseline never touches the cube. *)
  let _, st_v = Scan.Scan_vec_only.run dev x in
  check_int "vec-only has no mmad" 0 (Stats.op_count st_v "mmad");
  check_bool "vec-only uses cumsum api" true
    (Stats.op_count st_v "cumsum_api" > 0);
  (* MCScan: one mmad per tile plus vector reductions in phase I. *)
  let _, st_m = Scan.Mcscan.run dev x in
  check_int "mcscan mmads" 5 (Stats.op_count st_m "mmad");
  check_bool "mcscan reduces" true (Stats.op_count st_m "reduce_sum" > 0)

let test_algo_names_roundtrip () =
  List.iter
    (fun a ->
      match Scan.Scan_api.(algo_of_string (algo_to_string a)) with
      | Some b when Scan.Op_registry.equal b a -> ()
      | _ -> Alcotest.fail "name roundtrip")
    Scan.Scan_api.all_algos;
  check_int "unknown" 0
    (match Scan.Scan_api.algo_of_string "nope" with Some _ -> 1 | None -> 0)

(* The per-algorithm correctness matrix enumerates the registry: a new
   unary scan entry joins every length (and, where meaningful, tile
   size) case with no edit here. *)
let small_s_algos = [ "scanu"; "scanul1"; "mcscan" ]

let per_algo_suites =
  List.map
    (fun algo ->
      let name = Scan.Scan_api.algo_to_string algo in
      let cases =
        algo_cases algo name
        @
        if List.mem name small_s_algos then small_s_cases algo name else []
      in
      (name, cases))
    Scan.Scan_api.all_algos

let () =
  Alcotest.run "scans"
    (per_algo_suites
    @ [
      ( "variants",
        [
          Alcotest.test_case "mcscan exclusive" `Quick test_exclusive_mcscan;
          Alcotest.test_case "exclusive unsupported" `Quick
            test_exclusive_unsupported;
          Alcotest.test_case "int8 masks" `Quick test_int8_mcscan;
          Alcotest.test_case "int8 beyond f16 range" `Quick
            test_int8_values_beyond_f16;
          Alcotest.test_case "int8 negatives" `Quick test_int8_negative_values;
          Alcotest.test_case "block counts" `Quick test_mcscan_block_counts;
          Alcotest.test_case "algorithms agree" `Quick
            test_all_algorithms_agree;
          Alcotest.test_case "validation" `Quick test_validation_errors;
          Alcotest.test_case "traffic accounting" `Quick
            test_traffic_accounting;
          Alcotest.test_case "cumsum tile shapes" `Quick
            test_vec_only_tile_shapes;
          Alcotest.test_case "instruction mix" `Quick test_instruction_mix;
          Alcotest.test_case "algo names" `Quick test_algo_names_roundtrip;
        ] );
      ])
